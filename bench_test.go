// Benchmarks regenerating every table and figure of the paper's evaluation
// (one testing.B benchmark per table/figure; see cmd/experiments for the
// full-size run) plus micro-benchmarks of the core kernels. Table-level
// benchmarks run at a reduced scale on a design subset so the whole suite
// completes in minutes; absolute times therefore differ from the full
// experiments, but every paper-shape relation (who wins, by what factor) is
// asserted by the unit tests and recorded in EXPERIMENTS.md.
package fastgr_test

import (
	"fmt"
	"io"
	"testing"

	"fastgr"
	"fastgr/internal/bench"
	"fastgr/internal/design"
	"fastgr/internal/geom"
	"fastgr/internal/gpu"
	"fastgr/internal/grid"
	"fastgr/internal/maze"
	"fastgr/internal/pattern"
	"fastgr/internal/patterngpu"
	"fastgr/internal/route"
	"fastgr/internal/sched"
	"fastgr/internal/stt"
)

// benchCfg keeps table benchmarks tractable: the smallest design pair at a
// small scale.
func benchCfg() bench.Config {
	return bench.Config{Scale: 0.003, Designs: []string{"18test5", "18test5m"}}
}

func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := bench.NewSuite(benchCfg())
		rows := bench.TableIII(s)
		bench.PrintTableIII(io.Discard, rows)
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := bench.NewSuite(bench.Config{
			Scale:   0.003,
			Designs: []string{"19test9", "19test7", "19test9m"},
		})
		bench.PrintFig3(io.Discard, bench.Fig3(s))
	}
}

func BenchmarkTableV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := bench.NewSuite(bench.Config{Scale: 0.003, Designs: []string{"18test10", "18test10m"}})
		bench.PrintTableV(io.Discard, bench.TableV(s))
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := bench.NewSuite(bench.Config{Scale: 0.003, Designs: []string{"18test5m"}})
		bench.PrintFig12(io.Discard, bench.Fig12(s))
	}
}

func BenchmarkTableVI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := bench.NewSuite(benchCfg())
		bench.PrintTableVI(io.Discard, bench.TableVI(s))
	}
}

func BenchmarkTableVII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := bench.NewSuite(benchCfg())
		bench.PrintTableVII(io.Discard, bench.TableVII(s))
	}
}

func BenchmarkTableVIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := bench.NewSuite(benchCfg())
		bench.PrintTableVIII(io.Discard, bench.TableVIII(s))
	}
}

func BenchmarkTableIX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := bench.NewSuite(benchCfg())
		bench.PrintTableIX(io.Discard, bench.TableIX(s))
	}
}

func BenchmarkTableX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := bench.NewSuite(benchCfg())
		bench.PrintTableX(io.Discard, bench.TableX(s))
	}
}

// ----------------------------------------------------------- micro-benches

func microSetup(b *testing.B) (*grid.Graph, []*stt.Tree) {
	b.Helper()
	d := design.MustGenerate("18test5m", 0.003)
	g := grid.NewFromDesign(d)
	trees := make([]*stt.Tree, 0, 200)
	for _, n := range d.Nets[:200] {
		trees = append(trees, stt.Build(n))
	}
	return g, trees
}

// BenchmarkLShapePatternCPU measures the sequential L-shape DP — the
// baseline side of Table VIII's 9.324x.
func BenchmarkLShapePatternCPU(b *testing.B) {
	g, trees := microSetup(b)
	cfg := pattern.Config{Mode: pattern.LShape}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range trees {
			pattern.SolveCPU(g, t, cfg)
		}
	}
}

// BenchmarkHybridPatternCPU measures the sequential hybrid-shape DP.
func BenchmarkHybridPatternCPU(b *testing.B) {
	g, trees := microSetup(b)
	cfg := pattern.Config{Mode: pattern.Hybrid, Selection: true, T1: 4, T2: 30}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range trees {
			pattern.SolveCPU(g, t, cfg)
		}
	}
}

// BenchmarkGPUPatternBatch measures the batched kernel path (functional
// evaluation plus the device timing model).
func BenchmarkGPUPatternBatch(b *testing.B) {
	g, trees := microSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := patterngpu.New(gpu.RTX3090(), pattern.Config{Mode: pattern.LShape})
		r.RouteBatch(g, trees)
	}
}

// BenchmarkMazeRoute measures windowed 3-D Dijkstra rerouting.
func BenchmarkMazeRoute(b *testing.B) {
	d := design.MustGenerate("18test5m", 0.003)
	g := grid.NewFromDesign(d)
	nets := d.Nets[:50]
	pins := make([][]geom.Point3, len(nets))
	wins := make([]geom.Rect, len(nets))
	for i, n := range nets {
		pins[i] = route.PinTerminals(stt.Build(n))
		wins[i] = n.BBox().Inflate(4).ClampTo(g.W, g.H)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range nets {
			if _, _, err := maze.RouteNet(g, nets[j].ID, pins[j], wins[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPatternStageExec measures host-parallel batch pattern solving:
// the same batch solved by 1, 2 and 4 executor workers. Results are
// bit-identical across sub-benchmarks; only wall-clock moves.
func BenchmarkPatternStageExec(b *testing.B) {
	g, trees := microSetup(b)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r := patterngpu.New(gpu.RTX3090(), pattern.Config{Mode: pattern.LShape})
			r.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.RouteBatch(g, trees)
			}
		})
	}
}

// BenchmarkMazeScratch compares repeated RouteNet calls on the same windows
// with a fresh search state per call (the seed behaviour) against one
// reusable maze.Search — the allocs/op column is the point.
func BenchmarkMazeScratch(b *testing.B) {
	d := design.MustGenerate("18test5m", 0.003)
	g := grid.NewFromDesign(d)
	nets := d.Nets[:50]
	pins := make([][]geom.Point3, len(nets))
	wins := make([]geom.Rect, len(nets))
	for i, n := range nets {
		pins[i] = route.PinTerminals(stt.Build(n))
		wins[i] = n.BBox().Inflate(4).ClampTo(g.W, g.H)
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range nets {
				if _, _, err := maze.RouteNet(g, nets[j].ID, pins[j], wins[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("reused", func(b *testing.B) {
		s := maze.NewSearch()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range nets {
				if _, _, err := s.RouteNet(g, nets[j].ID, pins[j], wins[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkSteinerTree measures tree construction plus edge shifting.
func BenchmarkSteinerTree(b *testing.B) {
	d := design.MustGenerate("18test8", 0.003)
	g := grid.NewFromDesign(d)
	est := g.Estimator2D()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range d.Nets[:500] {
			t := stt.Build(n)
			t.Shift(est)
		}
	}
}

// BenchmarkBatchExtraction measures Algorithm 1 over a full design.
func BenchmarkBatchExtraction(b *testing.B) {
	d := design.MustGenerate("18test8m", 0.004)
	nets := append([]*design.Net(nil), d.Nets...)
	sched.SortNets(nets, sched.HPWLAsc)
	tasks := make([]sched.Task, len(nets))
	for i, n := range nets {
		tasks[i] = sched.Task{ID: i, BBox: n.BBox()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.ExtractBatches(tasks)
	}
}

// BenchmarkConflictGraph measures conflict-graph construction + orientation.
func BenchmarkConflictGraph(b *testing.B) {
	d := design.MustGenerate("18test8m", 0.004)
	tasks := make([]sched.Task, len(d.Nets))
	for i, n := range d.Nets {
		tasks[i] = sched.Task{ID: i, BBox: n.BBox()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.BuildGraph(tasks, d.GridW, d.GridH)
	}
}

// BenchmarkMinPlusVecMat measures the inner min-plus kernel (eq. 7).
func BenchmarkMinPlusVecMat(b *testing.B) {
	const L = 9
	w := make([]float64, L)
	m := make([]float64, L*L)
	for i := range w {
		w[i] = float64(i)
	}
	for i := range m {
		m[i] = float64(i % 17)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pattern.MinPlusVecMat(w, m, L)
	}
}

// BenchmarkEndToEndFastGRH measures a whole quality-oriented routing run.
func BenchmarkEndToEndFastGRH(b *testing.B) {
	d := design.MustGenerate("18test5m", 0.003)
	opt := fastgr.DefaultOptions(fastgr.FastGRH)
	opt.T1, opt.T2 = 5, 27
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fastgr.Route(d, opt); err != nil {
			b.Fatal(err)
		}
	}
}
