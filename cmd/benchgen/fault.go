package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"fastgr/internal/atomicio"
	"fastgr/internal/design"
	"fastgr/internal/fault"
	"fastgr/internal/geom"
	"fastgr/internal/gpu"
	"fastgr/internal/grid"
	"fastgr/internal/maze"
	"fastgr/internal/pattern"
	"fastgr/internal/patterngpu"
	"fastgr/internal/route"
	"fastgr/internal/stt"
)

// maxFaultOverheadPct is the containment tax budget: arming the fault
// layer with injection disabled (a nil injector, a maze budget too high
// to trip) may cost at most this much over the unarmed paths. tier1.sh
// runs `benchgen -fault` and fails the build past this line on either
// the pattern or the maze side.
const maxFaultOverheadPct = 2.0

// pairedOverheadPct times base and test in adjacent single-sample pairs
// (ABBA order, so neither side systematically runs first) and reports
// two estimates of test's overhead over base — the median per-pair
// ratio and the ratio of the two floors (each side's minimum over
// hundreds of samples) — plus the lower of the two, which is what the
// gate compares against the budget.
//
// The gate hunts a sub-1% intrinsic cost on a shared machine whose
// noise is an order of magnitude larger, and each estimator is inflated
// by a different noise mechanism: the floor ratio by one side never
// catching a clean scheduling window, the pair median by periodic
// disturbances (GC pacing, frequency steps) resonating with the pair
// cadence and shifting every ratio the same way — both were observed
// here, never together. A real regression raises the floor AND every
// pair, so gating on the minimum of the two keeps the gate's teeth
// while making a false failure need two independent noise mechanisms to
// fire in one run.
func pairedOverheadPct(pairs, iters int, base, test func()) (baseNs, testNs int64, medianPct, floorPct, pct float64) {
	timeNs := func(fn func()) int64 {
		start := time.Now()
		for n := 0; n < iters; n++ {
			fn()
		}
		return time.Since(start).Nanoseconds() / int64(iters)
	}
	base() // warm up caches and the allocator once, untimed
	test()
	baseNs, testNs = 1<<63-1, 1<<63-1
	ratios := make([]float64, 0, pairs)
	for r := 0; r < pairs; r++ {
		var b, t int64
		if r%2 == 0 {
			b = timeNs(base)
			t = timeNs(test)
		} else {
			t = timeNs(test)
			b = timeNs(base)
		}
		if b < baseNs {
			baseNs = b
		}
		if t < testNs {
			testNs = t
		}
		ratios = append(ratios, float64(t)/float64(b))
	}
	sort.Float64s(ratios)
	med := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		med = (med + ratios[len(ratios)/2-1]) / 2
	}
	medianPct = 100 * (med - 1)
	floorPct = 100 * (float64(testNs)/float64(baseNs) - 1)
	pct = medianPct
	if floorPct < pct {
		pct = floorPct
	}
	return baseNs, testNs, medianPct, floorPct, pct
}

type faultReport struct {
	Design  string  `json:"design"`
	Scale   float64 `json:"scale"`
	Workers int     `json:"workers"`

	// Pattern side: RouteBatch unarmed vs. armed with a zero-probability
	// containment layer (per-net Run wrappers, kernel RunOnce, error
	// collection — everything but actual injections). The gated overhead
	// is the lower of the median-pair and floor estimates (see
	// pairedOverheadPct for why).
	PatternPlainNsPerOp  int64   `json:"pattern_plain_ns_per_op"`
	PatternArmedNsPerOp  int64   `json:"pattern_armed_ns_per_op"`
	PatternMedianPairPct float64 `json:"pattern_median_pair_pct"`
	PatternFloorPct      float64 `json:"pattern_floor_pct"`
	PatternOverheadPct   float64 `json:"pattern_overhead_pct"`

	// Maze side: the A*+warm-cache search with no budget vs. a budget so
	// high it never trips (the per-expansion limit check armed).
	MazeUnbudgetedNsPerOp int64   `json:"maze_unbudgeted_ns_per_op"`
	MazeBudgetedNsPerOp   int64   `json:"maze_budgeted_ns_per_op"`
	MazeMedianPairPct     float64 `json:"maze_median_pair_pct"`
	MazeFloorPct          float64 `json:"maze_floor_pct"`
	MazeOverheadPct       float64 `json:"maze_overhead_pct"`

	MaxOverheadPct float64 `json:"max_overhead_pct"`

	// Meta fingerprints the measurement host for -regress (stamp.go).
	Meta BenchMeta `json:"meta"`
}

// runFault measures the disabled-injection cost of the fault containment
// layer on the pattern-batch and maze workloads and writes the record as
// JSON. It returns an error — failing the build — when either side
// exceeds the overhead budget.
func runFault(out string) error {
	rep := faultReport{
		Design:         "18test5m",
		Scale:          hostparScale,
		Workers:        4,
		MaxOverheadPct: maxFaultOverheadPct,
	}
	d := design.MustGenerate("18test5m", hostparScale)

	// Pattern side: the runObs fixture, unarmed vs. zero-probability armed.
	{
		const pairs, iters = 600, 1
		g := grid.NewFromDesign(d)
		trees := make([]*stt.Tree, 0, 200)
		for _, n := range d.Nets[:200] {
			trees = append(trees, stt.Build(n))
		}
		newRouter := func() *patterngpu.Router {
			r := patterngpu.New(gpu.RTX3090(), pattern.Config{Mode: pattern.LShape})
			r.Workers = rep.Workers
			return r
		}
		plain := newRouter()
		armed := newRouter()
		armed.CPU = gpu.XeonGold6226R()
		armed.Fault = fault.New(fault.Options{Seed: 1}, nil) // nil injector: never fires
		rep.PatternPlainNsPerOp, rep.PatternArmedNsPerOp, rep.PatternMedianPairPct, rep.PatternFloorPct, rep.PatternOverheadPct = pairedOverheadPct(pairs, iters,
			func() { plain.RouteBatch(g, trees) },
			func() { armed.RouteBatch(g, trees) },
		)
	}

	// Maze side: the mazebench net set on a warm cost field, unlimited
	// budget vs. an untrippable one.
	{
		const pairs, iters = 400, 2
		g := grid.NewFromDesign(d)
		g.WarmCostCache()
		nets := d.Nets[:50]
		pins := make([][]geom.Point3, len(nets))
		wins := make([]geom.Rect, len(nets))
		for i, n := range nets {
			pins[i] = route.PinTerminals(stt.Build(n))
			wins[i] = n.BBox().Inflate(4).ClampTo(g.W, g.H)
		}
		round := func(s *maze.Search) error {
			for j := range nets {
				if _, _, err := s.RouteNet(g, nets[j].ID, pins[j], wins[j]); err != nil {
					return err
				}
			}
			return nil
		}
		unbudgeted, budgeted := maze.NewSearch(), maze.NewSearch()
		budgeted.SetBudget(1 << 62)
		var roundErr error
		run := func(s *maze.Search) func() {
			return func() {
				if err := round(s); err != nil && roundErr == nil {
					roundErr = err
				}
			}
		}
		rep.MazeUnbudgetedNsPerOp, rep.MazeBudgetedNsPerOp, rep.MazeMedianPairPct, rep.MazeFloorPct, rep.MazeOverheadPct = pairedOverheadPct(pairs, iters,
			run(unbudgeted), run(budgeted))
		if roundErr != nil {
			return fmt.Errorf("fault bench maze round: %w", roundErr)
		}
	}

	rep.Meta = currentBenchMeta()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	} else {
		if err := atomicio.WriteFile(out, data); err != nil {
			return err
		}
		fmt.Printf("fault containment overhead record written to %s\n", out)
	}
	if rep.PatternOverheadPct > maxFaultOverheadPct {
		return fmt.Errorf("disabled-injection pattern overhead %.2f%% exceeds the %.1f%% budget (plain %d ns/op, armed %d ns/op)",
			rep.PatternOverheadPct, maxFaultOverheadPct, rep.PatternPlainNsPerOp, rep.PatternArmedNsPerOp)
	}
	if rep.MazeOverheadPct > maxFaultOverheadPct {
		return fmt.Errorf("budget-check maze overhead %.2f%% exceeds the %.1f%% budget (unbudgeted %d ns/op, budgeted %d ns/op)",
			rep.MazeOverheadPct, maxFaultOverheadPct, rep.MazeUnbudgetedNsPerOp, rep.MazeBudgetedNsPerOp)
	}
	return nil
}
