package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"fastgr/internal/atomicio"
	"fastgr/internal/design"
	"fastgr/internal/geom"
	"fastgr/internal/gpu"
	"fastgr/internal/grid"
	"fastgr/internal/maze"
	"fastgr/internal/pattern"
	"fastgr/internal/patterngpu"
	"fastgr/internal/route"
	"fastgr/internal/stt"
)

// hostparScale pins the workload so numbers stay comparable across commits
// (it matches the bench_test.go micro-benchmark fixtures and the recorded
// seed baseline).
const hostparScale = 0.003

// seedMazeBaseline is the seed commit's BenchmarkMazeRoute (the same 50-net
// 18test5m workload the maze entries below run) measured before the
// host-parallel execution layer landed: per-call search-state allocation and
// a container/heap-based priority queue.
var seedMazeBaseline = hostparEntry{NsPerOp: 13680918, AllocsPerOp: 108449, BytesPerOp: 3400272}

type hostparEntry struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`

	// Worker-sweep bookkeeping (pattern_batch entries only). A sweep point
	// asking for more workers than GOMAXPROCS can actually run is recorded
	// as skipped instead of being measured: its timing would say nothing
	// about scaling, only about oversubscription on this host.
	Workers          int    `json:"workers,omitempty"`
	EffectiveWorkers int    `json:"effective_workers,omitempty"`
	Skipped          bool   `json:"skipped,omitempty"`
	SkipReason       string `json:"skip_reason,omitempty"`
}

func entry(r testing.BenchmarkResult) hostparEntry {
	return hostparEntry{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

type hostparReport struct {
	Design     string  `json:"design"`
	Scale      float64 `json:"scale"`
	GoMaxProcs int     `json:"gomaxprocs"`
	// SeedMazeBaseline is the pre-optimization reference ("before");
	// everything else is measured by this run ("after").
	SeedMazeBaseline hostparEntry            `json:"seed_maze_baseline"`
	MazeFresh        hostparEntry            `json:"maze_fresh"`
	MazeReused       hostparEntry            `json:"maze_reused_scratch"`
	PatternBatch     map[string]hostparEntry `json:"pattern_batch_by_workers"`

	// Meta fingerprints the measurement host for -regress (stamp.go).
	Meta BenchMeta `json:"meta"`
}

// runHostpar measures the host-parallel execution micro-benchmarks — maze
// rerouting with fresh vs. reused scratch, and batch pattern solving by
// worker count — and writes them as JSON (stdout or -o).
func runHostpar(out string) error {
	d := design.MustGenerate("18test5m", hostparScale)
	g := grid.NewFromDesign(d)

	// Maze workload: the bench_test.go BenchmarkMazeScratch fixture.
	nets := d.Nets[:50]
	pins := make([][]geom.Point3, len(nets))
	wins := make([]geom.Rect, len(nets))
	for i, n := range nets {
		pins[i] = route.PinTerminals(stt.Build(n))
		wins[i] = n.BBox().Inflate(4).ClampTo(g.W, g.H)
	}
	mazeRound := func(b *testing.B, s *maze.Search) {
		for j := range nets {
			var err error
			if s != nil {
				_, _, err = s.RouteNet(g, nets[j].ID, pins[j], wins[j])
			} else {
				_, _, err = maze.RouteNet(g, nets[j].ID, pins[j], wins[j])
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	rep := hostparReport{
		Design:           "18test5m",
		Scale:            hostparScale,
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		SeedMazeBaseline: seedMazeBaseline,
		PatternBatch:     map[string]hostparEntry{},
	}
	rep.MazeFresh = entry(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mazeRound(b, nil)
		}
	}))
	rep.MazeReused = entry(testing.Benchmark(func(b *testing.B) {
		s := maze.NewSearch()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mazeRound(b, s)
		}
	}))

	// Pattern workload: one conflict-free 200-net batch.
	trees := make([]*stt.Tree, 0, 200)
	for _, n := range d.Nets[:200] {
		trees = append(trees, stt.Build(n))
	}
	for _, workers := range []int{1, 2, 4} {
		key := fmt.Sprintf("workers=%d", workers)
		if mp := runtime.GOMAXPROCS(0); mp < workers {
			rep.PatternBatch[key] = hostparEntry{
				Workers:          workers,
				EffectiveWorkers: mp,
				Skipped:          true,
				SkipReason: fmt.Sprintf(
					"GOMAXPROCS=%d cannot run %d workers in parallel; timing would measure oversubscription, not scaling", mp, workers),
			}
			continue
		}
		r := patterngpu.New(gpu.RTX3090(), pattern.Config{Mode: pattern.LShape})
		r.Workers = workers
		e := entry(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r.RouteBatch(g, trees)
			}
		}))
		e.Workers = workers
		e.EffectiveWorkers = workers
		rep.PatternBatch[key] = e
	}

	rep.Meta = currentBenchMeta()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := atomicio.WriteFile(out, data); err != nil {
		return err
	}
	fmt.Printf("host-parallel benchmark record written to %s\n", out)
	return nil
}
