package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"fastgr/internal/atomicio"
	"fastgr/internal/lint"
)

// lintReport records the cost of the static invariant net so analyzer
// runtime stays visible as the tree grows: fastgrlint is a tier-1 gate,
// and a gate that creeps from seconds to minutes is a regression like
// any other.
type lintReport struct {
	Packages    int     `json:"packages"`
	Files       int     `json:"files"`
	Findings    int     `json:"findings"`
	WallMs      float64 `json:"wall_ms"`
	FilesPerSec float64 `json:"files_per_sec"`

	// Per-phase cost: load/flowgraph plus one entry per enabled check,
	// so a slow check is identifiable without re-profiling.
	Checks map[string]lintCheckStat `json:"checks"`

	// The runtime gate: wall_ms against the frozen pre-flow-layer
	// baseline. -regress fails the build when the full suite costs more
	// than max_wall_ratio times the old one.
	BaselineWallMs float64 `json:"baseline_wall_ms"`
	WallRatio      float64 `json:"wall_ratio"`
	MaxWallRatio   float64 `json:"max_wall_ratio"`

	// Meta fingerprints the measurement host for -regress (stamp.go).
	Meta BenchMeta `json:"meta"`
}

// lintCheckStat is one phase's share of the run.
type lintCheckStat struct {
	WallMs   float64 `json:"wall_ms"`
	Findings int     `json:"findings"`
}

// lintBaselineWallMs is the measured full-suite wall time before the
// interprocedural flow layer existed (the PR 3 artifact), the
// denominator of the runtime gate.
const lintBaselineWallMs = 2958.791

// lintMaxWallRatio caps how much the flow layer may slow the full
// suite relative to that baseline.
const lintMaxWallRatio = 2.0

// runLint measures one cold run of the full suite (loading, type
// checking and every check, gofmt verification included) over the whole
// module — the same configuration tier1.sh gates on.
func runLint(out string) error {
	moduleDir, err := lintModuleRoot()
	if err != nil {
		return err
	}
	start := time.Now()
	loader, err := lint.NewLoader(moduleDir)
	if err != nil {
		return err
	}
	runner := &lint.Runner{Loader: loader, Policy: lint.DefaultPolicy(), Gofmt: true}
	findings, err := runner.Run("./...")
	if err != nil {
		return err
	}
	wall := time.Since(start)

	dirs, err := loader.PackageDirs([]string{"./..."})
	if err != nil {
		return err
	}
	files := 0
	for _, dir := range dirs {
		p, err := loader.LoadDir(dir)
		if err != nil {
			continue
		}
		files += len(p.FileNames)
	}

	rep := lintReport{
		Packages:       len(dirs),
		Files:          files,
		Findings:       len(findings),
		WallMs:         float64(wall.Microseconds()) / 1e3,
		Checks:         map[string]lintCheckStat{},
		BaselineWallMs: lintBaselineWallMs,
		MaxWallRatio:   lintMaxWallRatio,
	}
	if wall > 0 {
		rep.FilesPerSec = float64(files) / wall.Seconds()
	}
	rep.WallRatio = rep.WallMs / lintBaselineWallMs
	for _, st := range runner.Stats() {
		rep.Checks[st.Check] = lintCheckStat{WallMs: st.WallMs, Findings: st.Findings}
	}
	rep.Meta = currentBenchMeta()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	} else if err := atomicio.WriteFile(out, data); err != nil {
		return err
	}
	fmt.Printf("lint: %d packages, %d files, %d findings in %.0fms (%.0f files/sec, %.2fx baseline)\n",
		rep.Packages, rep.Files, rep.Findings, rep.WallMs, rep.FilesPerSec, rep.WallRatio)
	if rep.WallRatio > lintMaxWallRatio {
		return fmt.Errorf("lint suite took %.0fms, %.2fx the %.0fms baseline (limit %.1fx)",
			rep.WallMs, rep.WallRatio, rep.BaselineWallMs, lintMaxWallRatio)
	}
	return nil
}

// lintModuleRoot walks up from the working directory to the nearest
// go.mod.
func lintModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
