// Command benchgen generates the synthetic ICCAD-2019-style benchmarks,
// prints Table III, and optionally serializes a design to a file. It also
// measures the host-parallel execution micro-benchmarks and records them as
// JSON, so the repository carries a perf trajectory baseline.
//
// Usage:
//
//	benchgen -list
//	benchgen -table3 -scale 0.01
//	benchgen -design 19test7m -scale 0.02 -o 19test7m.txt
//	benchgen -hostpar -o BENCH_hostpar.json
//	benchgen -obs -o BENCH_obs.json
//	benchgen -lint -o BENCH_lint.json
//	benchgen -maze -o BENCH_maze.json
//	benchgen -fault -o BENCH_fault.json
//	benchgen -shard -o BENCH_shard.json
//	benchgen -serve -o BENCH_serve.json
//	benchgen -regress [-baseline-ref HEAD]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fastgr/internal/atomicio"
	"fastgr/internal/bench"
	"fastgr/internal/design"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list benchmark names")
		table3   = flag.Bool("table3", false, "print Table III (benchmark statistics)")
		name     = flag.String("design", "", "generate this benchmark")
		scale    = flag.Float64("scale", 0.01, "benchmark scale in (0,1]")
		out      = flag.String("o", "", "write the output to this file (default stdout)")
		hostpar  = flag.Bool("hostpar", false, "measure host-parallel execution benchmarks and emit JSON")
		obsFlag  = flag.Bool("obs", false, "measure observability overhead on the pattern stage and emit JSON (fails if disabled-mode overhead exceeds the budget)")
		lintFlag = flag.Bool("lint", false, "measure the fastgrlint suite over the whole module and emit JSON (files/sec, findings)")
		mazeFlag = flag.Bool("maze", false, "measure the maze kernel (dijkstra/astar x cold/warm cost cache) and emit JSON (fails if astar+warm misses the speedup gate)")
		faultBmk = flag.Bool("fault", false, "measure the fault containment layer's disabled-injection overhead and emit JSON (fails past the budget)")
		shardBmk = flag.Bool("shard", false, "sweep sharded vs monolithic routing and emit JSON (fails if K=4 misses the peak-heap reduction or quality-parity gates)")
		serveBmk = flag.Bool("serve", false, "measure the fastgrd daemon path vs direct core.Route and job latency under concurrent submitters, and emit JSON (fails past the overhead budget)")
		regress  = flag.Bool("regress", false, "re-validate every BENCH_*.json against its recorded gates and diff against the committed baseline (fails on a gate breach; warns on drift)")
		baseline = flag.String("baseline-ref", "HEAD", "git ref holding the baseline BENCH_*.json files for -regress")
	)
	flag.Parse()

	switch {
	case *regress:
		if err := runRegress(*baseline); err != nil {
			fatal(err)
		}
	case *hostpar:
		if err := runHostpar(*out); err != nil {
			fatal(err)
		}
	case *obsFlag:
		if err := runObs(*out); err != nil {
			fatal(err)
		}
	case *lintFlag:
		if err := runLint(*out); err != nil {
			fatal(err)
		}
	case *mazeFlag:
		if err := runMaze(*out); err != nil {
			fatal(err)
		}
	case *faultBmk:
		if err := runFault(*out); err != nil {
			fatal(err)
		}
	case *shardBmk:
		if err := runShard(*out); err != nil {
			fatal(err)
		}
	case *serveBmk:
		if err := runServe(*out); err != nil {
			fatal(err)
		}
	case *list:
		for _, n := range design.AllNames() {
			spec, _ := design.SpecByName(n)
			fmt.Printf("%-10s %8d nets %5dx%-5d %d layers\n",
				spec.Name, spec.Nets, spec.GridW, spec.GridH, spec.Layers)
		}
	case *table3:
		s := bench.NewSuite(bench.Config{Scale: *scale})
		bench.PrintTableIII(os.Stdout, bench.TableIII(s))
	case *name != "":
		d, err := design.Generate(*name, *scale)
		if err != nil {
			fatal(err)
		}
		var w io.Writer = os.Stdout
		var af *atomicio.File
		if *out != "" {
			af, err = atomicio.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer af.Abort()
			w = af
		}
		if err := design.Write(w, d); err != nil {
			fatal(err)
		}
		if af != nil {
			if err := af.Commit(); err != nil {
				fatal(err)
			}
		}
		if *out != "" {
			st := design.ComputeStats(d)
			fmt.Printf("%s: %d nets, %d pins, %dx%d, %d layers -> %s\n",
				st.Name, st.Nets, st.Pins, st.GridW, st.GridH, st.Layers, *out)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}
