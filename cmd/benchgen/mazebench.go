package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"

	"fastgr/internal/atomicio"
	"fastgr/internal/design"
	"fastgr/internal/geom"
	"fastgr/internal/grid"
	"fastgr/internal/maze"
	"fastgr/internal/route"
	"fastgr/internal/stt"
)

// minMazeSpeedup is the perf gate for the cost-cache + A* work: the A*
// kernel on a warm cost field must beat the seed configuration (Dijkstra on
// an unwarmed graph) by at least this factor on the recorded workload, with
// strictly fewer settled nodes. tier1.sh runs `benchgen -maze` and fails
// the build below this line.
const minMazeSpeedup = 1.5

type mazeEntry struct {
	NsPerOp int64 `json:"ns_per_op"`
	// Expansions/Pushes are per round (50 nets), identical on every round
	// of a variant: the searches never commit demand, so the grid — and
	// therefore the geometry — is frozen during measurement.
	Expansions int64 `json:"expansions"`
	Pushes     int64 `json:"pushes"`
}

type mazeReport struct {
	Design string  `json:"design"`
	Scale  float64 `json:"scale"`
	Nets   int     `json:"nets"`
	// Variants: algorithm x cost-field state. "dijkstra/cold" is the seed
	// configuration; "astar/warm" is what the router ships.
	Variants map[string]mazeEntry `json:"variants"`

	SpeedupAStarWarm  float64 `json:"speedup_astar_warm_vs_dijkstra_cold"`
	ExpansionRatio    float64 `json:"expansion_ratio_astar_vs_dijkstra"`
	MinSpeedupAllowed float64 `json:"min_speedup_allowed"`

	// Meta fingerprints the measurement host for -regress (stamp.go).
	Meta BenchMeta `json:"meta"`
}

// runMaze measures the maze kernel over {dijkstra,astar} x {cold,warm
// cost cache} on the hostpar maze workload (50 nets of 18test5m, inflated
// windows, seeded congestion) and writes BENCH_maze.json. It returns an
// error — failing the build — when the A*+warm-cache variant does not
// clear the speedup gate against the seed Dijkstra-cold configuration.
func runMaze(out string) error {
	const reps, iters = 6, 2
	d := design.MustGenerate("18test5m", hostparScale)

	// Two graphs with identical congestion: variants must not share one
	// because warming is a persistent graph-state change.
	mkGraph := func() *grid.Graph {
		g := grid.NewFromDesign(d)
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 400; i++ {
			l := 2 + rng.Intn(3)
			x, y := rng.Intn(g.W-1), rng.Intn(g.H-1)
			if g.HasWireEdge(l, x, y) {
				if g.Dir(l) == grid.Horizontal {
					g.AddSegDemand(l, geom.Point{X: x, Y: y}, geom.Point{X: x + 1, Y: y}, rng.Intn(10))
				} else {
					g.AddSegDemand(l, geom.Point{X: x, Y: y}, geom.Point{X: x, Y: y + 1}, rng.Intn(10))
				}
			}
		}
		return g
	}
	gCold, gWarm := mkGraph(), mkGraph()
	gWarm.WarmCostCache()

	nets := d.Nets[:50]
	pins := make([][]geom.Point3, len(nets))
	wins := make([]geom.Rect, len(nets))
	for i, n := range nets {
		pins[i] = route.PinTerminals(stt.Build(n))
		wins[i] = n.BBox().Inflate(4).ClampTo(gCold.W, gCold.H)
	}

	type variant struct {
		key string
		g   *grid.Graph
		alg maze.Algorithm
	}
	variants := []variant{
		{"dijkstra/cold", gCold, maze.Dijkstra},
		{"dijkstra/warm", gWarm, maze.Dijkstra},
		{"astar/cold", gCold, maze.AStar},
		{"astar/warm", gWarm, maze.AStar},
	}

	round := func(v variant, s *maze.Search) (maze.Stats, error) {
		var total maze.Stats
		for j := range nets {
			_, st, err := s.RouteNet(v.g, nets[j].ID, pins[j], wins[j])
			if err != nil {
				return total, err
			}
			total.Expansions += st.Expansions
			total.Pushes += st.Pushes
		}
		return total, nil
	}

	rep := mazeReport{
		Design:            "18test5m",
		Scale:             hostparScale,
		Nets:              len(nets),
		Variants:          map[string]mazeEntry{},
		MinSpeedupAllowed: minMazeSpeedup,
	}

	// One untimed round per variant collects the (round-invariant)
	// expansion counts; the timed rounds interleave all variants
	// round-robin so clock drift hits each one equally.
	searches := make([]*maze.Search, len(variants))
	fns := make([]func(), len(variants))
	var roundErr error
	for i, v := range variants {
		v := v
		searches[i] = maze.NewSearch()
		searches[i].SetAlgorithm(v.alg)
		st, err := round(v, searches[i])
		if err != nil {
			return fmt.Errorf("maze bench %s: %w", v.key, err)
		}
		rep.Variants[v.key] = mazeEntry{Expansions: st.Expansions, Pushes: st.Pushes}
		s := searches[i]
		fns[i] = func() {
			if _, err := round(v, s); err != nil && roundErr == nil {
				roundErr = err
			}
		}
	}
	ns := minNsPerOp(reps, iters, fns...)
	if roundErr != nil {
		return roundErr
	}
	for i, v := range variants {
		e := rep.Variants[v.key]
		e.NsPerOp = ns[i]
		rep.Variants[v.key] = e
	}

	seed, ship := rep.Variants["dijkstra/cold"], rep.Variants["astar/warm"]
	rep.SpeedupAStarWarm = float64(seed.NsPerOp) / float64(ship.NsPerOp)
	rep.ExpansionRatio = float64(ship.Expansions) / float64(seed.Expansions)

	rep.Meta = currentBenchMeta()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	} else {
		if err := atomicio.WriteFile(out, data); err != nil {
			return err
		}
		fmt.Printf("maze kernel benchmark record written to %s\n", out)
	}
	if rep.SpeedupAStarWarm < minMazeSpeedup {
		return fmt.Errorf("astar+warm-cache maze kernel is only %.2fx the seed dijkstra-cold (%d vs %d ns/op); the gate is %.1fx",
			rep.SpeedupAStarWarm, ship.NsPerOp, seed.NsPerOp, minMazeSpeedup)
	}
	if ship.Expansions >= seed.Expansions {
		return fmt.Errorf("astar settled %d nodes, not fewer than dijkstra's %d", ship.Expansions, seed.Expansions)
	}
	return nil
}
