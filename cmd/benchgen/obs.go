package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"fastgr/internal/atomicio"
	"fastgr/internal/design"
	"fastgr/internal/gpu"
	"fastgr/internal/grid"
	"fastgr/internal/obs"
	"fastgr/internal/pattern"
	"fastgr/internal/patterngpu"
	"fastgr/internal/stt"
)

// maxDisabledOverheadPct is the observability tax budget: with no
// observer attached, the instrumented pattern stage may cost at most
// this much over the frozen uninstrumented twin (RouteBatchBaseline).
// tier1.sh runs `benchgen -obs` and fails the build past this line.
const maxDisabledOverheadPct = 2.0

type obsReport struct {
	Design  string  `json:"design"`
	Scale   float64 `json:"scale"`
	Workers int     `json:"workers"`
	// BaselineNsPerOp is RouteBatchBaseline — the uninstrumented twin,
	// measured in this same process so the comparison never crosses a
	// machine or compiler version.
	BaselineNsPerOp int64 `json:"baseline_ns_per_op"`
	// DisabledNsPerOp is the instrumented RouteBatch with no observer:
	// the hot path pays nil checks only.
	DisabledNsPerOp int64 `json:"disabled_ns_per_op"`
	// EnabledNsPerOp has the tracer on and the metrics registry attached.
	EnabledNsPerOp int64 `json:"enabled_ns_per_op"`

	DisabledOverheadPct    float64 `json:"disabled_overhead_pct"`
	EnabledOverheadPct     float64 `json:"enabled_overhead_pct"`
	MaxDisabledOverheadPct float64 `json:"max_disabled_overhead_pct"`

	// Meta fingerprints the measurement host for -regress (stamp.go).
	Meta BenchMeta `json:"meta"`
}

// minNsPerOp hand-rolls the timing instead of testing.Benchmark: a fixed
// iteration count, repetitions interleaved round-robin across all the
// compared variants (so clock-frequency drift hits every variant
// equally), and the minimum per variant. That is far more stable for an
// A/B overhead comparison than independently auto-tuned runs.
func minNsPerOp(reps, iters int, fns ...func()) []int64 {
	best := make([]int64, len(fns))
	for i, fn := range fns {
		fn() // warm up caches and the allocator once, untimed
		best[i] = 1<<63 - 1
	}
	for r := 0; r < reps; r++ {
		for i, fn := range fns {
			start := time.Now()
			for n := 0; n < iters; n++ {
				fn()
			}
			if ns := time.Since(start).Nanoseconds() / int64(iters); ns < best[i] {
				best[i] = ns
			}
		}
	}
	return best
}

// runObs measures the observability overhead on the pattern-stage batch
// workload (the BenchmarkPatternStageExec fixture) and writes the record
// as JSON. It returns an error — failing the build — when the
// disabled-mode overhead exceeds the budget.
func runObs(out string) error {
	const reps, iters = 8, 25
	d := design.MustGenerate("18test5m", hostparScale)
	g := grid.NewFromDesign(d)
	trees := make([]*stt.Tree, 0, 200)
	for _, n := range d.Nets[:200] {
		trees = append(trees, stt.Build(n))
	}
	newRouter := func() *patterngpu.Router {
		r := patterngpu.New(gpu.RTX3090(), pattern.Config{Mode: pattern.LShape})
		r.Workers = 4
		return r
	}

	rep := obsReport{
		Design:                 "18test5m",
		Scale:                  hostparScale,
		Workers:                4,
		MaxDisabledOverheadPct: maxDisabledOverheadPct,
	}

	base := newRouter()
	off := newRouter() // Obs stays nil: the disabled mode every user pays
	on := newRouter()
	on.Obs = &obs.Observer{
		Tracer:  obs.NewTracer(1<<16, on.Workers),
		Metrics: obs.NewRegistry(),
	}
	ns := minNsPerOp(reps, iters,
		func() { base.RouteBatchBaseline(g, trees) },
		func() { off.RouteBatch(g, trees) },
		func() { on.RouteBatch(g, trees) },
	)
	rep.BaselineNsPerOp, rep.DisabledNsPerOp, rep.EnabledNsPerOp = ns[0], ns[1], ns[2]

	pct := func(ns int64) float64 {
		return 100 * float64(ns-rep.BaselineNsPerOp) / float64(rep.BaselineNsPerOp)
	}
	rep.DisabledOverheadPct = pct(rep.DisabledNsPerOp)
	rep.EnabledOverheadPct = pct(rep.EnabledNsPerOp)

	rep.Meta = currentBenchMeta()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	} else {
		if err := atomicio.WriteFile(out, data); err != nil {
			return err
		}
		fmt.Printf("observability overhead record written to %s\n", out)
	}
	if rep.DisabledOverheadPct > maxDisabledOverheadPct {
		return fmt.Errorf("disabled-mode observability overhead %.2f%% exceeds the %.1f%% budget (baseline %d ns/op, disabled %d ns/op)",
			rep.DisabledOverheadPct, maxDisabledOverheadPct,
			rep.BaselineNsPerOp, rep.DisabledNsPerOp)
	}
	return nil
}
