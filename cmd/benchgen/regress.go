package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// The bench regression watchdog: `benchgen -regress` re-validates every
// committed BENCH_*.json against its own recorded gates and diffs the
// gated metrics against the committed baseline (`git show <ref>:<file>`).
// A gate breach fails the run — that is the tier1 wire. Drift against
// the baseline only warns: wall-clock benchmarks on shared hosts are
// noisy, and the committed gates, not the previous run, are the
// contract. Baselines whose BenchMeta fingerprint differs (other host
// shape, toolchain or schema version) are refused with a notice instead
// of diffed — a cross-host comparison is noise dressed up as signal.

// gateDir is the direction a gated metric must satisfy.
type gateDir int

const (
	atMost  gateDir = iota // metric <= limit
	atLeast                // metric >= limit
)

type gate struct {
	metric string // JSON field holding the measured value
	limit  string // JSON field holding the committed limit
	dir    gateDir
}

// benchGates maps every bench artifact to its gates. Files with no
// gates (informational trajectories) still get meta and drift checks.
var benchGates = map[string][]gate{
	"BENCH_obs.json": {
		{metric: "disabled_overhead_pct", limit: "max_disabled_overhead_pct", dir: atMost},
	},
	"BENCH_fault.json": {
		{metric: "pattern_overhead_pct", limit: "max_overhead_pct", dir: atMost},
		{metric: "maze_overhead_pct", limit: "max_overhead_pct", dir: atMost},
	},
	"BENCH_maze.json": {
		{metric: "speedup_astar_warm_vs_dijkstra_cold", limit: "min_speedup_allowed", dir: atLeast},
	},
	"BENCH_shard.json": {
		{metric: "heap_ratio_k4", limit: "max_heap_ratio_k4", dir: atMost},
		{metric: "score_drift_pct", limit: "max_score_drift_pct", dir: atMost},
	},
	"BENCH_serve.json": {
		{metric: "overhead_pct", limit: "max_overhead_pct", dir: atMost},
	},
	"BENCH_hostpar.json": nil,
	"BENCH_lint.json": {
		{metric: "wall_ratio", limit: "max_wall_ratio", dir: atMost},
	},
}

// driftWarnPct is how much a gated metric may move in the bad direction
// versus the committed baseline before -regress prints a drift warning.
const driftWarnPct = 25.0

// benchDoc is one parsed BENCH_*.json: the flat numeric fields plus the
// meta stamp.
type benchDoc struct {
	fields map[string]float64
	meta   *BenchMeta
}

func parseBenchDoc(data []byte) (benchDoc, error) {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return benchDoc{}, err
	}
	doc := benchDoc{fields: map[string]float64{}}
	for k, v := range raw {
		if k == "meta" {
			var m BenchMeta
			if err := json.Unmarshal(v, &m); err != nil {
				return benchDoc{}, fmt.Errorf("meta: %w", err)
			}
			doc.meta = &m
			continue
		}
		var f float64
		if err := json.Unmarshal(v, &f); err == nil {
			doc.fields[k] = f
		}
	}
	return doc, nil
}

// runRegress validates every bench artifact in the module root. It
// returns an error — failing tier1 — when an artifact is missing,
// unparseable, unstamped, or breaches one of its own gates.
func runRegress(baselineRef string) error {
	moduleDir, err := lintModuleRoot()
	if err != nil {
		return err
	}
	names := make([]string, 0, len(benchGates))
	for name := range benchGates {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	for _, name := range names {
		for _, msg := range regressOne(moduleDir, baselineRef, name) {
			failures = append(failures, name+": "+msg)
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "regress: FAIL", f)
		}
		return fmt.Errorf("%d bench regression(s)", len(failures))
	}
	fmt.Printf("regress: %d artifacts clean against %s\n", len(names), baselineRef)
	return nil
}

// regressOne checks one artifact and returns its failures. Notices and
// drift warnings print but do not fail.
func regressOne(moduleDir, baselineRef, name string) []string {
	data, err := os.ReadFile(filepath.Join(moduleDir, name))
	if err != nil {
		return []string{fmt.Sprintf("missing artifact (%v)", err)}
	}
	doc, err := parseBenchDoc(data)
	if err != nil {
		return []string{fmt.Sprintf("unparseable: %v", err)}
	}
	if doc.meta == nil {
		return []string{"no meta stamp; regenerate with this benchgen"}
	}
	var failures []string
	for _, g := range benchGates[name] {
		metric, okM := doc.fields[g.metric]
		limit, okL := doc.fields[g.limit]
		if !okM || !okL {
			failures = append(failures,
				fmt.Sprintf("gate fields %s/%s missing", g.metric, g.limit))
			continue
		}
		if (g.dir == atMost && metric > limit) || (g.dir == atLeast && metric < limit) {
			op := "<="
			if g.dir == atLeast {
				op = ">="
			}
			failures = append(failures,
				fmt.Sprintf("gate breached: %s=%.4g, want %s %s=%.4g", g.metric, metric, op, g.limit, limit))
		}
	}

	// Baseline comparison — informational. `git show` fails when the
	// artifact is new on this branch; that is a notice, not a failure.
	out, err := exec.Command("git", "-C", moduleDir, "show", baselineRef+":"+name).Output()
	if err != nil {
		fmt.Printf("regress: %s: no baseline at %s (new artifact?)\n", name, baselineRef)
		return failures
	}
	base, err := parseBenchDoc(out)
	if err != nil || base.meta == nil {
		fmt.Printf("regress: %s: baseline at %s unstamped; skipping drift check\n", name, baselineRef)
		return failures
	}
	if ok, reason := doc.meta.comparableWith(*base.meta); !ok {
		fmt.Printf("regress: %s: refusing baseline comparison: %s\n", name, reason)
		return failures
	}
	for _, g := range benchGates[name] {
		cur, okC := doc.fields[g.metric]
		prev, okP := base.fields[g.metric]
		if !okC || !okP || prev == 0 {
			continue
		}
		// Positive drift = moved in the bad direction for this gate.
		drift := (cur - prev) / math.Abs(prev) * 100
		if g.dir == atLeast {
			drift = -drift
		}
		if drift > driftWarnPct {
			fmt.Printf("regress: %s: WARN %s drifted %.1f%% against %s (%.4g -> %.4g); gate still holds\n",
				name, g.metric, drift, baselineRef, prev, cur)
		}
	}
	return failures
}
