package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"fastgr/internal/atomicio"
	"fastgr/internal/core"
	"fastgr/internal/design"
	"fastgr/internal/guide"
	"fastgr/internal/obs"
	"fastgr/internal/serve"
)

// maxServeOverheadPct is the daemon tax budget: routing a design through
// fastgrd's job pipeline (journal, queue, containment wiring, guide
// write) may cost at most this much over calling core.Route directly
// with the same options and emitting the same guide file. tier1.sh runs
// `benchgen -serve` and fails the build past this line.
const maxServeOverheadPct = 5.0

// serveScale pins the bench workload. Big enough that one job's service
// time dwarfs scheduling noise, small enough that the latency sweep's
// dozens of jobs stay inside a CI budget.
const serveScale = 0.005

// serveLatency is one row of the concurrency sweep: p50/p99 client
// submit-to-done latency with N submitters hammering the daemon.
type serveLatency struct {
	Submitters int     `json:"submitters"`
	Jobs       int     `json:"jobs"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
}

type serveReport struct {
	Design  string  `json:"design"`
	Scale   float64 `json:"scale"`
	Runners int     `json:"runners"`

	// Overhead side: min-of-samples service time through the daemon
	// pipeline (journal transitions + route + guide write, read from the
	// serve.job_service_ns histogram so client polling never pollutes it)
	// against min-of-samples direct execution (generate + core.Route +
	// guide file), interleaved ABBA like the other paired benches.
	DirectNsPerOp int64   `json:"direct_ns_per_op"`
	DaemonNsPerOp int64   `json:"daemon_ns_per_op"`
	OverheadPct   float64 `json:"overhead_pct"`

	// Latency side: client-observed submit-to-done under rising
	// concurrency. Informational — queueing delay is supposed to grow.
	Latency []serveLatency `json:"latency"`

	MaxOverheadPct float64   `json:"max_overhead_pct"`
	Meta           BenchMeta `json:"meta"`
}

// runServe measures the fastgrd daemon path against direct core.Route
// execution and sweeps job latency over 1/4/16 concurrent submitters,
// writing the record as JSON. It returns an error — failing the build —
// when the daemon-path overhead exceeds the budget.
func runServe(out string) error {
	rep := serveReport{
		Design:         "18test5m",
		Scale:          serveScale,
		Runners:        4,
		MaxOverheadPct: maxServeOverheadPct,
	}

	dir, err := os.MkdirTemp("", "benchserve-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	reg := obs.NewRegistry()
	srv, err := serve.New(serve.Config{
		Dir:      dir,
		Runners:  rep.Runners,
		QueueCap: 64,
		Obs:      &obs.Observer{Metrics: reg, Health: obs.NewHealth()},
	})
	if err != nil {
		return err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return err
	}
	defer srv.Drain(time.Minute)
	base := "http://" + srv.Addr()

	spec := serve.JobSpec{Design: rep.Design, Scale: rep.Scale}

	// Overhead: ABBA pairs. The daemon sample is the server-side service
	// time — the delta of the job-service histogram's sum across one job —
	// so the client's poll cadence cancels out of the comparison. The
	// direct side attaches the same metrics registry the daemon gives its
	// jobs: the observability tax has its own bench (BENCH_obs); this gate
	// isolates the daemon pipeline itself.
	const pairs = 6
	rep.DirectNsPerOp, rep.DaemonNsPerOp = int64(1)<<62, int64(1)<<62
	directOpt := directServeOptions(rep.Scale)
	directOpt.Obs = &obs.Observer{Metrics: reg, Health: obs.NewHealth()}
	directOnce := func() (int64, error) {
		start := time.Now()
		d, err := design.Generate(rep.Design, rep.Scale)
		if err != nil {
			return 0, err
		}
		res, err := core.Route(d, directOpt)
		if err != nil {
			return 0, err
		}
		if err := writeDirectGuides(dir, res); err != nil {
			return 0, err
		}
		return time.Since(start).Nanoseconds(), nil
	}
	h := reg.Histogram(obs.MServeJobNs, obs.Pow2Buckets(1<<20, 24))
	daemonOnce := func() (int64, error) {
		before := h.Sum()
		id, err := submitServeJob(base, spec)
		if err != nil {
			return 0, err
		}
		if err := waitServeJob(base, id, 2*time.Minute); err != nil {
			return 0, err
		}
		return h.Sum() - before, nil
	}
	for r := 0; r < pairs; r++ {
		order := []func() (int64, error){directOnce, daemonOnce}
		dst := []*int64{&rep.DirectNsPerOp, &rep.DaemonNsPerOp}
		if r%2 == 1 {
			order[0], order[1] = order[1], order[0]
			dst[0], dst[1] = dst[1], dst[0]
		}
		for i, fn := range order {
			ns, err := fn()
			if err != nil {
				return fmt.Errorf("serve bench pair %d: %w", r, err)
			}
			if ns < *dst[i] {
				*dst[i] = ns
			}
		}
	}
	rep.OverheadPct = 100 * (float64(rep.DaemonNsPerOp)/float64(rep.DirectNsPerOp) - 1)

	// Latency sweep: each submitter pushes jobsPer jobs back to back and
	// times submit → terminal; the row aggregates every sample.
	const jobsPer = 2
	for _, n := range []int{1, 4, 16} {
		samples := make([]float64, 0, n*jobsPer)
		var mu sync.Mutex
		var wg sync.WaitGroup
		errs := make([]error, n)
		for w := 0; w < n; w++ {
			wg.Add(1)
			//lint:ignore goroutine-hygiene concurrent HTTP submitters modeling independent clients; joined by wg.Wait below
			go func(w int) {
				defer wg.Done()
				for k := 0; k < jobsPer; k++ {
					start := time.Now()
					id, err := submitServeJob(base, spec)
					if err == nil {
						err = waitServeJob(base, id, 5*time.Minute)
					}
					if err != nil {
						errs[w] = err
						return
					}
					ms := float64(time.Since(start).Nanoseconds()) / 1e6
					mu.Lock()
					samples = append(samples, ms)
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return fmt.Errorf("serve bench latency sweep n=%d: %w", n, err)
			}
		}
		sort.Float64s(samples)
		rep.Latency = append(rep.Latency, serveLatency{
			Submitters: n,
			Jobs:       len(samples),
			P50Ms:      samples[len(samples)/2],
			P99Ms:      samples[int(math.Ceil(0.99*float64(len(samples))))-1],
		})
	}

	rep.Meta = currentBenchMeta()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	} else {
		if err := atomicio.WriteFile(out, data); err != nil {
			return err
		}
		fmt.Printf("serve daemon overhead record written to %s\n", out)
	}
	if rep.OverheadPct > maxServeOverheadPct {
		return fmt.Errorf("daemon-path overhead %.2f%% exceeds the %.1f%% budget (direct %d ns/op, daemon %d ns/op)",
			rep.OverheadPct, maxServeOverheadPct, rep.DirectNsPerOp, rep.DaemonNsPerOp)
	}
	return nil
}

// directServeOptions mirrors what the daemon resolves for the bench
// spec: the fastgr CLI defaults with scaled thresholds.
func directServeOptions(scale float64) core.Options {
	opt := core.DefaultOptions(core.FastGRL)
	st := func(full int) int {
		v := int(float64(full)*math.Sqrt(scale) + 0.5)
		if v < 2 {
			v = 2
		}
		return v
	}
	opt.T1, opt.T2 = st(100), st(500)
	return opt
}

// writeDirectGuides emits guides the way the CLI (and the daemon) do,
// so the direct side pays the same artifact cost.
func writeDirectGuides(dir string, res *core.Result) error {
	guides := guide.FromResult(res)
	if err := guide.Covers(res, guides); err != nil {
		return err
	}
	f, err := atomicio.Create(dir + "/direct.guides")
	if err != nil {
		return err
	}
	defer f.Abort()
	if err := guide.Write(f, guides); err != nil {
		return err
	}
	return f.Commit()
}

// submitServeJob POSTs a job and returns its ID.
func submitServeJob(base string, spec serve.JobSpec) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("submit: status %d: %s", resp.StatusCode, b)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	return out.ID, nil
}

// waitServeJob polls a job until it is done (any other terminal state is
// an error here — the bench never cancels).
func waitServeJob(base, id string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return err
		}
		var j serve.Job
		err = json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch j.State {
		case serve.StateDone:
			return nil
		case serve.StateFailed, serve.StateCancelled:
			return fmt.Errorf("job %s ended %s: %s", id, j.State, j.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still %s after %v", id, j.State, budget)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
