package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"fastgr/internal/atomicio"
	"fastgr/internal/core"
	"fastgr/internal/design"
)

// The sharded-vs-monolithic sweep runs the largest Table III design that
// fits the harness through the full pipeline once monolithically and once
// per shard count, and records quality and peak-heap high-water for each.
// tier1.sh runs `benchgen -shard` and fails the build when sharding stops
// paying for itself.
const (
	shardDesignName = "19test9m"
	shardScale      = 0.005
	shardWorkers    = 4

	// maxShardHeapRatio gates the memory claim: the K=4 run's peak-heap
	// growth over its pre-route baseline must be at most this fraction of
	// the monolithic run's. The monolithic pipeline materializes the
	// full-grid cost cache with prefix-sum arrays; the sharded pipeline
	// serves the same values from transient leaf-window caches and never
	// warms the parent, so its high-water should sit well below half.
	maxShardHeapRatio = 0.5

	// maxShardScoreDriftPct bounds quality drift: every sharded run's
	// eq. 15 score must stay within this percentage of the monolithic
	// run's. (Sharded runs are bit-identical across K by construction —
	// TestShardDeterminism — but monolithic-vs-sharded may differ
	// slightly because windowed caches skip the prefix-sum rounding.)
	maxShardScoreDriftPct = 10.0
)

type shardRun struct {
	Shards           int     `json:"shards"`
	ShardLeaves      int     `json:"shard_leaves,omitempty"`
	BoundaryNets     int     `json:"boundary_nets,omitempty"`
	BoundaryReroutes int     `json:"boundary_reroutes,omitempty"`
	Wirelength       int     `json:"wirelength"`
	Vias             int     `json:"vias"`
	Overflow         int     `json:"overflow"`
	Score            float64 `json:"score"`
	BaselineHeap     uint64  `json:"baseline_heap_bytes"`
	PeakHeap         uint64  `json:"peak_heap_bytes"`
	DeltaHeap        uint64  `json:"delta_heap_bytes"`
	WallMs           float64 `json:"wall_ms"`
}

type shardReport struct {
	Design  string  `json:"design"`
	Scale   float64 `json:"scale"`
	Variant string  `json:"variant"`
	Workers int     `json:"workers"`

	Monolithic shardRun   `json:"monolithic"`
	Sharded    []shardRun `json:"sharded"`

	// HeapRatioK4 is delta(K=4)/delta(monolithic), gated below
	// MaxHeapRatioK4; ScoreDriftPct is the worst |score_K - score_mono|
	// drift across the sweep, gated below MaxScoreDriftPct.
	HeapRatioK4      float64 `json:"heap_ratio_k4"`
	MaxHeapRatioK4   float64 `json:"max_heap_ratio_k4"`
	ScoreDriftPct    float64 `json:"score_drift_pct"`
	MaxScoreDriftPct float64 `json:"max_score_drift_pct"`

	// Meta fingerprints the measurement host for -regress (stamp.go).
	Meta BenchMeta `json:"meta"`
}

// runShard sweeps the full pipeline monolithically and at K ∈ {1, 2, 4}
// shards, records quality/overflow/peak-heap per run, and writes the JSON
// record. It returns an error — failing the build — when the K=4 heap
// high-water misses the reduction gate or any sharded score drifts from
// the monolithic one.
func runShard(out string) error {
	d := design.MustGenerate(shardDesignName, shardScale)

	doRun := func(shards int) (shardRun, error) {
		// A full collection before the baseline read so the previous run's
		// garbage is not charged to this one; Route itself samples with
		// HeapGC so its high-water is equally garbage-free.
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		opt := core.DefaultOptions(core.FastGRH)
		opt.T1, opt.T2 = 4, 40
		opt.ExecWorkers = shardWorkers
		opt.Shards = shards
		opt.HeapGC = true
		start := time.Now()
		res, err := core.Route(d, opt)
		if err != nil {
			return shardRun{}, fmt.Errorf("shards=%d: %w", shards, err)
		}
		r := res.Report
		sr := shardRun{
			Shards:           shards,
			ShardLeaves:      r.ShardLeaves,
			BoundaryNets:     r.BoundaryNets,
			BoundaryReroutes: r.BoundaryReroutes,
			Wirelength:       r.Quality.Wirelength,
			Vias:             r.Quality.Vias,
			Overflow:         r.Quality.Shorts,
			Score:            r.Score,
			BaselineHeap:     ms.HeapAlloc,
			PeakHeap:         r.PeakHeapBytes,
			WallMs:           float64(time.Since(start).Microseconds()) / 1e3,
		}
		if r.PeakHeapBytes > ms.HeapAlloc {
			sr.DeltaHeap = r.PeakHeapBytes - ms.HeapAlloc
		}
		return sr, nil
	}

	rep := shardReport{
		Design:           shardDesignName,
		Scale:            shardScale,
		Variant:          "FastGR-H",
		Workers:          shardWorkers,
		MaxHeapRatioK4:   maxShardHeapRatio,
		MaxScoreDriftPct: maxShardScoreDriftPct,
	}
	var err error
	if rep.Monolithic, err = doRun(0); err != nil {
		return err
	}
	var k4 *shardRun
	for _, k := range []int{1, 2, 4} {
		sr, err := doRun(k)
		if err != nil {
			return err
		}
		rep.Sharded = append(rep.Sharded, sr)
		if k == 4 {
			k4 = &rep.Sharded[len(rep.Sharded)-1]
		}
		drift := 100 * (sr.Score - rep.Monolithic.Score) / rep.Monolithic.Score
		if drift < 0 {
			drift = -drift
		}
		if drift > rep.ScoreDriftPct {
			rep.ScoreDriftPct = drift
		}
	}
	rep.HeapRatioK4 = float64(k4.DeltaHeap) / float64(rep.Monolithic.DeltaHeap)

	rep.Meta = currentBenchMeta()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	} else {
		if err := atomicio.WriteFile(out, data); err != nil {
			return err
		}
		fmt.Printf("sharded routing benchmark record written to %s\n", out)
	}
	if rep.HeapRatioK4 > maxShardHeapRatio {
		return fmt.Errorf("K=4 peak-heap delta is %.2fx the monolithic one (gate %.2fx): %d vs %d bytes",
			rep.HeapRatioK4, maxShardHeapRatio, k4.DeltaHeap, rep.Monolithic.DeltaHeap)
	}
	if rep.ScoreDriftPct > maxShardScoreDriftPct {
		return fmt.Errorf("sharded score drifts %.2f%% from monolithic (gate %.1f%%)",
			rep.ScoreDriftPct, maxShardScoreDriftPct)
	}
	return nil
}
