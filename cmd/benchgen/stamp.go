package main

import (
	"fmt"
	"os/exec"
	"runtime"
	"strings"
)

// benchSchemaVersion versions the BENCH_*.json layout. Bump it when a
// report's fields change meaning — -regress refuses to compare across
// versions instead of producing false alarms.
const benchSchemaVersion = 1

// BenchMeta stamps every BENCH_*.json with the context the numbers were
// measured in. Wall-clock benchmarks are host measurements: comparing a
// 4-core container run against a 32-core bare-metal baseline produces
// noise dressed up as regression, so -regress only diffs runs whose
// fingerprints agree.
type BenchMeta struct {
	SchemaVersion int    `json:"schema_version"`
	GoMaxProcs    int    `json:"gomaxprocs"`
	NumCPU        int    `json:"num_cpu"`
	GoVersion     string `json:"go_version"`
	// Git is `git describe --always --dirty` at measurement time, or
	// "unknown" outside a repository. Informational only — it never
	// gates a comparison.
	Git string `json:"git"`
}

func currentBenchMeta() BenchMeta {
	git := "unknown"
	if out, err := exec.Command("git", "describe", "--always", "--dirty").Output(); err == nil {
		if s := strings.TrimSpace(string(out)); s != "" {
			git = s
		}
	}
	return BenchMeta{
		SchemaVersion: benchSchemaVersion,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		GoVersion:     runtime.Version(),
		Git:           git,
	}
}

// comparableWith reports whether numbers measured under m may be diffed
// against numbers measured under base, and if not, why.
func (m BenchMeta) comparableWith(base BenchMeta) (bool, string) {
	switch {
	case m.SchemaVersion != base.SchemaVersion:
		return false, fmt.Sprintf("schema v%d vs baseline v%d", m.SchemaVersion, base.SchemaVersion)
	case m.GoMaxProcs != base.GoMaxProcs || m.NumCPU != base.NumCPU:
		return false, fmt.Sprintf("host %dx%d procs vs baseline %dx%d",
			m.GoMaxProcs, m.NumCPU, base.GoMaxProcs, base.NumCPU)
	case m.GoVersion != base.GoVersion:
		return false, fmt.Sprintf("toolchain %s vs baseline %s", m.GoVersion, base.GoVersion)
	}
	return true, ""
}
