// Command experiments regenerates the paper's evaluation tables and figures
// (Section IV) on the synthetic benchmark suite.
//
// Usage:
//
//	experiments                        # everything, 1% scale, all designs
//	experiments -exp fig3,tablevii     # a subset
//	experiments -scale 0.02 -designs 18test5,18test5m
//
// Experiment names: table3, fig3, tablev, fig12, tablevi, tablevii,
// tableviii, tableix, tablex.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fastgr/internal/bench"
)

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated experiments (or 'all')")
		scale   = flag.Float64("scale", 0.01, "benchmark scale in (0,1]")
		designs = flag.String("designs", "", "comma-separated design subset (default: all twelve)")
		verbose = flag.Bool("v", false, "log each routing run")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.Scale = *scale
	if *designs != "" {
		cfg.Designs = strings.Split(*designs, ",")
	}
	suite := bench.NewSuite(cfg)
	if *verbose {
		suite.Verbose = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "[%s] "+format+"\n",
				append([]interface{}{time.Now().Format("15:04:05")}, args...)...)
		}
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	ran := 0
	run := func(name string, fn func()) {
		if all || want[name] {
			fn()
			fmt.Println()
			ran++
		}
	}

	start := time.Now()
	run("table3", func() { bench.PrintTableIII(os.Stdout, bench.TableIII(suite)) })
	run("fig3", func() { bench.PrintFig3(os.Stdout, bench.Fig3(suite)) })
	run("tablev", func() { bench.PrintTableV(os.Stdout, bench.TableV(suite)) })
	run("fig12", func() { bench.PrintFig12(os.Stdout, bench.Fig12(suite)) })
	run("tablevi", func() { bench.PrintTableVI(os.Stdout, bench.TableVI(suite)) })
	run("tablevii", func() { bench.PrintTableVII(os.Stdout, bench.TableVII(suite)) })
	run("tableviii", func() { bench.PrintTableVIII(os.Stdout, bench.TableVIII(suite)) })
	run("tableix", func() { bench.PrintTableIX(os.Stdout, bench.TableIX(suite)) })
	run("tablex", func() { bench.PrintTableX(os.Stdout, bench.TableX(suite)) })

	// Extras beyond the paper's numbered tables (opt-in, not part of
	// 'all'): -exp tablexfine,zerocopy,edgeshift,devsweep.
	if want["tablexfine"] {
		bench.PrintTableXFine(os.Stdout, bench.TableXFine(suite))
		fmt.Println()
		ran++
	}
	if want["zerocopy"] {
		bench.PrintZeroCopyAblation(os.Stdout, bench.ZeroCopyAblation(suite))
		fmt.Println()
		ran++
	}
	if want["edgeshift"] {
		bench.PrintEdgeShiftAblation(os.Stdout, bench.EdgeShiftAblation(suite))
		fmt.Println()
		ran++
	}
	if want["devsweep"] {
		bench.PrintDeviceSweep(os.Stdout, bench.DeviceSweep(suite, cfg.Designs[0]))
		fmt.Println()
		ran++
	}
	if want["staircase"] {
		bench.PrintStaircaseAblation(os.Stdout, bench.StaircaseAblation(suite))
		fmt.Println()
		ran++
	}
	if want["history"] {
		bench.PrintHistoryAblation(os.Stdout, bench.HistoryAblation(suite))
		fmt.Println()
		ran++
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: nothing matched %q\n", *exps)
		os.Exit(2)
	}
	fmt.Printf("experiments done in %v (scale %.4f)\n", time.Since(start).Round(time.Millisecond), *scale)
}
