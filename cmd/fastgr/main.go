// Command fastgr routes a benchmark (or a design file) with one of the three
// router variants and prints the routing report. It is the CLI face of the
// library: generate or load a design, run CUGR / FastGRL / FastGRH, and
// optionally dump the routing guides.
//
// Usage:
//
//	fastgr -design 18test5m -scale 0.01 -router fastgrh
//	fastgr -in mydesign.txt -router cugr -guides guides.txt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"fastgr/internal/atomicio"
	"fastgr/internal/core"
	"fastgr/internal/design"
	"fastgr/internal/dr"
	"fastgr/internal/fault"
	"fastgr/internal/guide"
	"fastgr/internal/maze"
	"fastgr/internal/metrics"
	"fastgr/internal/obs"
	"fastgr/internal/obs/opsrv"
	"fastgr/internal/sched"
)

func main() {
	var (
		designName = flag.String("design", "18test5m", "benchmark name to generate (see cmd/benchgen -list)")
		scale      = flag.Float64("scale", 0.01, "benchmark scale in (0,1]")
		inFile     = flag.String("in", "", "route a design file instead of a generated benchmark")
		router     = flag.String("router", "fastgrl", "router variant: cugr | fastgrl | fastgrh")
		scheme     = flag.String("sort", "hpwl-asc", "net ordering: pins-asc|pins-desc|hpwl-asc|hpwl-desc|area-asc|area-desc")
		iters      = flag.Int("rrr", 3, "rip-up and reroute iterations")
		t1         = flag.Int("t1", 0, "selection threshold t1 (0 = scale the paper's 100)")
		t2         = flag.Int("t2", 0, "selection threshold t2 (0 = scale the paper's 500)")
		noSel      = flag.Bool("no-selection", false, "apply the hybrid kernel to every net (FastGRH only)")
		guides     = flag.String("guides", "", "write routing guides to this file")
		evalDR     = flag.Bool("dr", false, "evaluate the solution with the detailed-routing track assigner")
		workers    = flag.Int("exec-workers", 0, "host worker goroutines executing the router (0 = library default); never changes the reported result")
		shards     = flag.Int("shards", 0, "spatial shard count: route leaf regions concurrently against windowed cost caches (0 = monolithic pipeline; any count >= 1 yields identical output)")
		mazeAlg    = flag.String("maze-alg", "astar", "maze search algorithm: astar | dijkstra (identical geometry, different expansion counts)")
		traceOut   = flag.String("trace", "", "write a Chrome trace_event timeline to this file (open at ui.perfetto.dev)")
		metricsOut = flag.String("metrics-out", "", "write the metrics registry and report as JSON to this file")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		listenAddr = flag.String("listen", "", "serve the ops endpoints (/metrics, /healthz, /tracez, /debug/pprof) on this address for the duration of the run")
		stallAfter = flag.Duration("stall-after", 0, "with -listen: /healthz turns 503 when a running stage reports no progress for this long (0 = never)")
		journalOut = flag.String("journal", "", "write a structured JSON-lines run journal (stage boundaries and rip-up iterations) to this file, crash-safely")
		faultProb  = flag.Float64("fault-prob", 0, "arm the chaos injector: per-site failure probability in [0,1]; never changes the routed result")
		faultSeed  = flag.Int64("fault-seed", 0, "chaos injection seed (with -fault-prob 0, arms the containment layer silently)")
		mazeBudget = flag.Int64("maze-budget", 0, "per-net maze expansion budget; over-budget nets keep their pattern route (0 = unlimited)")
	)
	flag.Parse()

	if *inFile == "" && (*scale <= 0 || *scale > 1) {
		fatal(fmt.Errorf("-scale %v outside (0,1] — benchmarks are generated at a fraction of full size", *scale))
	}
	if *workers < 0 {
		fatal(fmt.Errorf("-exec-workers %d is negative (use 0 for the library default)", *workers))
	}
	if *shards < 0 || *shards > 4096 {
		fatal(fmt.Errorf("-shards %d outside [0, 4096] (0 = monolithic pipeline)", *shards))
	}

	d, err := loadDesign(*inFile, *designName, *scale)
	if err != nil {
		fatal(err)
	}

	variant, err := parseVariant(*router)
	if err != nil {
		fatal(err)
	}
	opt := core.DefaultOptions(variant)
	opt.RRRIters = *iters
	opt.SelectionOff = *noSel
	if *workers > 0 {
		opt.ExecWorkers = *workers
	}
	opt.Shards = *shards
	if s, ok := parseScheme(*scheme); ok {
		opt.Scheme = s
	} else {
		fatal(fmt.Errorf("unknown sorting scheme %q", *scheme))
	}
	switch *mazeAlg {
	case "astar":
		opt.MazeAlgorithm = maze.AStar
	case "dijkstra":
		opt.MazeAlgorithm = maze.Dijkstra
	default:
		fatal(fmt.Errorf("unknown maze algorithm %q (want astar or dijkstra)", *mazeAlg))
	}
	if *t1 > 0 {
		opt.T1 = *t1
	} else if *inFile == "" {
		opt.T1 = scaleThreshold(100, *scale)
	}
	if *t2 > 0 {
		opt.T2 = *t2
	} else if *inFile == "" {
		opt.T2 = scaleThreshold(500, *scale)
	}
	if *faultProb < 0 || *faultProb > 1 {
		fatal(fmt.Errorf("-fault-prob %v outside [0,1]", *faultProb))
	}
	if *mazeBudget < 0 {
		fatal(fmt.Errorf("-maze-budget %d is negative", *mazeBudget))
	}
	opt.MazeBudget = *mazeBudget
	if *faultProb > 0 || *faultSeed != 0 {
		opt.Fault = &fault.Options{Seed: *faultSeed, Probs: fault.UniformProbs(*faultProb)}
	}

	if *pprofAddr != "" {
		//lint:ignore goroutine-hygiene pprof listener lives for the whole process and touches no routing state
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "fastgr: pprof:", err)
			}
		}()
	}
	// The flight recorder is passive: attaching it never changes the
	// routed geometry, the modeled times or the reported quality.
	var o *obs.Observer
	if *traceOut != "" || *metricsOut != "" || *listenAddr != "" || *journalOut != "" {
		o = &obs.Observer{Metrics: obs.NewRegistry(), Health: obs.NewHealth()}
		if *traceOut != "" || *listenAddr != "" {
			o.Tracer = obs.NewTracer(1<<18, opt.ExecWorkers)
		}
		opt.Obs = o
	}
	var journal *obs.Journal
	if *journalOut != "" {
		journal = obs.NewJournal(*journalOut)
		opt.Journal = journal
	}
	if *listenAddr != "" {
		srv, err := opsrv.Start(*listenAddr, opsrv.Config{Obs: o, StallAfter: *stallAfter})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("ops endpoints on http://%s (/metrics /healthz /tracez /debug/pprof)\n", srv.Addr())
	}

	res, err := core.Route(d, opt)
	if err != nil {
		fatal(err)
	}
	printReport(res)
	if o != nil {
		fmt.Println()
		obs.WriteSummary(os.Stdout, o.Metrics.Snapshot())
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, o.Tracer); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (%d spans, %d dropped)\n",
			*traceOut, o.Tracer.Recorded()-o.Tracer.Dropped(), o.Tracer.Dropped())
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, o, res); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}
	if journal != nil {
		if err := journal.Err(); err != nil {
			fatal(fmt.Errorf("journal: %w", err))
		}
		fmt.Printf("journal written to %s (%d events)\n", *journalOut, journal.Events())
	}

	if *evalDR {
		m, err := dr.EvaluateChecked(res.Grid, res.Routes)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\ndetailed routing (track assignment): WL=%d vias=%d shorts=%d spacing=%d\n",
			m.Wirelength, m.Vias, m.Shorts, m.Spacing)
	}
	if *guides != "" {
		if err := writeGuides(*guides, res); err != nil {
			fatal(err)
		}
		fmt.Printf("guides written to %s\n", *guides)
	}
}

func loadDesign(inFile, name string, scale float64) (*design.Design, error) {
	if inFile != "" {
		f, err := os.Open(inFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return design.Read(f)
	}
	return design.Generate(name, scale)
}

func parseVariant(s string) (core.Variant, error) {
	switch strings.ToLower(s) {
	case "cugr":
		return core.CUGR, nil
	case "fastgrl", "l":
		return core.FastGRL, nil
	case "fastgrh", "h":
		return core.FastGRH, nil
	}
	return 0, fmt.Errorf("unknown router %q (want cugr, fastgrl or fastgrh)", s)
}

func parseScheme(s string) (sched.Scheme, bool) {
	for _, sc := range sched.Schemes {
		if sc.String() == s {
			return sc, true
		}
	}
	return 0, false
}

func scaleThreshold(full int, scale float64) int {
	v := int(float64(full)*math.Sqrt(scale) + 0.5)
	if v < 2 {
		v = 2
	}
	return v
}

func printReport(res *core.Result) {
	r := res.Report
	fmt.Printf("design   %s (%d nets, %dx%d, %d layers)\n",
		r.Design, len(res.Design.Nets), res.Grid.W, res.Grid.H, res.Grid.L)
	fmt.Printf("router   %s\n", r.Variant)
	fmt.Printf("quality  WL=%d vias=%d shorts=%d score=%.1f\n",
		r.Quality.Wirelength, r.Quality.Vias, r.Quality.Shorts, r.Score)
	fmt.Printf("modeled  PATTERN=%v MAZE=%v TOTAL=%v\n",
		r.Times.Pattern, r.Times.Maze, r.Times.Total)
	fmt.Printf("wall     plan=%v pattern=%v maze=%v total=%v\n",
		r.Times.PlanWall, r.Times.PatternWall, r.Times.MazeWall, r.Times.WallTotal)
	fmt.Printf("stages   batches=%d nets-to-ripup=%d hybrid-edges=%d/%d pattern-score=%.1f\n",
		r.PatternBatches, r.NetsToRipup, r.HybridEdges, r.TotalEdges, r.PatternScore)
	fmt.Printf("heap     peak=%.1f MiB\n", float64(r.PeakHeapBytes)/(1<<20))
	// Every variant prints every row: a reader diffing two runs should
	// never wonder whether a stat was zero or just omitted.
	fmt.Printf("shards   k=%d leaves=%d boundary-nets=%d reroutes=%d reconcile=%v\n",
		r.Shards, r.ShardLeaves, r.BoundaryNets, r.BoundaryReroutes, r.ReconcileTime)
	fmt.Printf("fault    failed-nets=%d skipped-nets=%d kernel-fallbacks=%d budget-fallbacks=%d\n",
		r.Fault.FailedNets, r.Fault.SkippedNets, r.Fault.KernelFallbacks, r.Fault.BudgetFallbacks)
	for i, it := range r.RRR {
		fmt.Printf("  rrr[%d] nets=%d expansions=%d taskgraph=%v batch=%v shorts=%d score=%.1f\n",
			i, it.Nets, it.Expansions, it.TaskGraphTime, it.BatchTime, it.Quality.Shorts, it.Score)
	}
}

func writeTrace(path string, t *obs.Tracer) error {
	f, err := atomicio.Create(path)
	if err != nil {
		return err
	}
	defer f.Abort()
	if err := obs.WriteTrace(f, t); err != nil {
		return err
	}
	return f.Commit()
}

// writeMetrics dumps the metrics registry next to the report facts an
// external dashboard would want: quality, the modeled/wall split, and
// the per-iteration eq.-15 trajectory.
func writeMetrics(path string, o *obs.Observer, res *core.Result) error {
	r := res.Report
	out := struct {
		Design  string          `json:"design"`
		Variant string          `json:"variant"`
		Quality metrics.Quality `json:"quality"`
		Score   float64         `json:"score"`
		Times   core.StageTimes `json:"times"`

		PatternScore float64          `json:"patternScore"`
		RRR          []core.IterStats `json:"rrr"`

		Metrics obs.Snapshot `json:"metrics"`
	}{
		Design:       r.Design,
		Variant:      r.Variant,
		Quality:      r.Quality,
		Score:        r.Score,
		Times:        r.Times,
		PatternScore: r.PatternScore,
		RRR:          r.RRR,
		Metrics:      o.M().Snapshot(),
	}
	f, err := atomicio.Create(path)
	if err != nil {
		return err
	}
	defer f.Abort()
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	return f.Commit()
}

// writeGuides emits CUGR-style routing guides, verifying the coverage
// contract (every routed wire and via inside its net's boxes) first.
func writeGuides(path string, res *core.Result) error {
	guides := guide.FromResult(res)
	if err := guide.Covers(res, guides); err != nil {
		return fmt.Errorf("guide contract violated: %w", err)
	}
	f, err := atomicio.Create(path)
	if err != nil {
		return err
	}
	defer f.Abort()
	if err := guide.Write(f, guides); err != nil {
		return err
	}
	return f.Commit()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fastgr:", err)
	os.Exit(1)
}
