// Command fastgr routes a benchmark (or a design file) with one of the three
// router variants and prints the routing report. It is the CLI face of the
// library: generate or load a design, run CUGR / FastGRL / FastGRH, and
// optionally dump the routing guides.
//
// Usage:
//
//	fastgr -design 18test5m -scale 0.01 -router fastgrh
//	fastgr -in mydesign.txt -router cugr -guides guides.txt
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"fastgr/internal/core"
	"fastgr/internal/design"
	"fastgr/internal/dr"
	"fastgr/internal/guide"
	"fastgr/internal/sched"
)

func main() {
	var (
		designName = flag.String("design", "18test5m", "benchmark name to generate (see cmd/benchgen -list)")
		scale      = flag.Float64("scale", 0.01, "benchmark scale in (0,1]")
		inFile     = flag.String("in", "", "route a design file instead of a generated benchmark")
		router     = flag.String("router", "fastgrl", "router variant: cugr | fastgrl | fastgrh")
		scheme     = flag.String("sort", "hpwl-asc", "net ordering: pins-asc|pins-desc|hpwl-asc|hpwl-desc|area-asc|area-desc")
		iters      = flag.Int("rrr", 3, "rip-up and reroute iterations")
		t1         = flag.Int("t1", 0, "selection threshold t1 (0 = scale the paper's 100)")
		t2         = flag.Int("t2", 0, "selection threshold t2 (0 = scale the paper's 500)")
		noSel      = flag.Bool("no-selection", false, "apply the hybrid kernel to every net (FastGRH only)")
		guides     = flag.String("guides", "", "write routing guides to this file")
		evalDR     = flag.Bool("dr", false, "evaluate the solution with the detailed-routing track assigner")
		workers    = flag.Int("exec-workers", 0, "host worker goroutines executing the router (0 = library default); never changes the reported result")
	)
	flag.Parse()

	d, err := loadDesign(*inFile, *designName, *scale)
	if err != nil {
		fatal(err)
	}

	variant, err := parseVariant(*router)
	if err != nil {
		fatal(err)
	}
	opt := core.DefaultOptions(variant)
	opt.RRRIters = *iters
	opt.SelectionOff = *noSel
	if *workers > 0 {
		opt.ExecWorkers = *workers
	}
	if s, ok := parseScheme(*scheme); ok {
		opt.Scheme = s
	} else {
		fatal(fmt.Errorf("unknown sorting scheme %q", *scheme))
	}
	if *t1 > 0 {
		opt.T1 = *t1
	} else if *inFile == "" {
		opt.T1 = scaleThreshold(100, *scale)
	}
	if *t2 > 0 {
		opt.T2 = *t2
	} else if *inFile == "" {
		opt.T2 = scaleThreshold(500, *scale)
	}

	res, err := core.Route(d, opt)
	if err != nil {
		fatal(err)
	}
	printReport(res)

	if *evalDR {
		m := dr.Evaluate(res.Grid, res.Routes)
		fmt.Printf("\ndetailed routing (track assignment): WL=%d vias=%d shorts=%d spacing=%d\n",
			m.Wirelength, m.Vias, m.Shorts, m.Spacing)
	}
	if *guides != "" {
		if err := writeGuides(*guides, res); err != nil {
			fatal(err)
		}
		fmt.Printf("guides written to %s\n", *guides)
	}
}

func loadDesign(inFile, name string, scale float64) (*design.Design, error) {
	if inFile != "" {
		f, err := os.Open(inFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return design.Read(f)
	}
	return design.Generate(name, scale)
}

func parseVariant(s string) (core.Variant, error) {
	switch strings.ToLower(s) {
	case "cugr":
		return core.CUGR, nil
	case "fastgrl", "l":
		return core.FastGRL, nil
	case "fastgrh", "h":
		return core.FastGRH, nil
	}
	return 0, fmt.Errorf("unknown router %q (want cugr, fastgrl or fastgrh)", s)
}

func parseScheme(s string) (sched.Scheme, bool) {
	for _, sc := range sched.Schemes {
		if sc.String() == s {
			return sc, true
		}
	}
	return 0, false
}

func scaleThreshold(full int, scale float64) int {
	v := int(float64(full)*math.Sqrt(scale) + 0.5)
	if v < 2 {
		v = 2
	}
	return v
}

func printReport(res *core.Result) {
	r := res.Report
	fmt.Printf("design   %s (%d nets, %dx%d, %d layers)\n",
		r.Design, len(res.Design.Nets), res.Grid.W, res.Grid.H, res.Grid.L)
	fmt.Printf("router   %s\n", r.Variant)
	fmt.Printf("quality  WL=%d vias=%d shorts=%d score=%.1f\n",
		r.Quality.Wirelength, r.Quality.Vias, r.Quality.Shorts, r.Score)
	fmt.Printf("modeled  PATTERN=%v MAZE=%v TOTAL=%v\n",
		r.Times.Pattern, r.Times.Maze, r.Times.Total)
	fmt.Printf("wall     plan=%v pattern=%v maze=%v\n",
		r.Times.PlanWall, r.Times.PatternWall, r.Times.MazeWall)
	fmt.Printf("stages   batches=%d nets-to-ripup=%d hybrid-edges=%d/%d\n",
		r.PatternBatches, r.NetsToRipup, r.HybridEdges, r.TotalEdges)
	for i, it := range r.RRR {
		fmt.Printf("  rrr[%d] nets=%d expansions=%d taskgraph=%v batch=%v\n",
			i, it.Nets, it.Expansions, it.TaskGraphTime, it.BatchTime)
	}
}

// writeGuides emits CUGR-style routing guides, verifying the coverage
// contract (every routed wire and via inside its net's boxes) first.
func writeGuides(path string, res *core.Result) error {
	guides := guide.FromResult(res)
	if err := guide.Covers(res, guides); err != nil {
		return fmt.Errorf("guide contract violated: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return guide.Write(f, guides)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fastgr:", err)
	os.Exit(1)
}
