// Command fastgrd is the routing-as-a-service daemon: it serves the
// internal/serve job API (submit, status, guides, cancel) alongside the
// opsrv observability endpoints on one address, journals every job
// state transition crash-safely under -dir, and drains gracefully on
// SIGINT/SIGTERM — admission stops, in-flight jobs finish or checkpoint
// within -drain-budget, and the process exits 0.
//
// Usage:
//
//	fastgrd -listen localhost:8080 -dir /var/lib/fastgrd
//	curl -X POST localhost:8080/v1/jobs -d '{"design":"18test5m","scale":0.01}'
//	curl localhost:8080/v1/jobs/job-000001
//	curl localhost:8080/v1/jobs/job-000001/guides
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fastgr/internal/obs"
	"fastgr/internal/serve"
)

func main() {
	var (
		listenAddr  = flag.String("listen", "localhost:8080", "address to serve the job API and ops endpoints on")
		dir         = flag.String("dir", "fastgrd-state", "state directory: job journal and guide artifacts")
		runners     = flag.Int("runners", 2, "concurrent routing jobs")
		queueCap    = flag.Int("queue-cap", 16, "max queued+running jobs before admission rejects with 429")
		maxBytes    = flag.Int64("queue-bytes", 4<<30, "max summed per-job memory estimates before 429")
		drainBudget = flag.Duration("drain-budget", 30*time.Second, "SIGTERM: time in-flight jobs get to finish before being checkpointed back to the queue")
		stallAfter  = flag.Duration("stall-after", 0, "/healthz turns 503 when a running stage reports no progress for this long (0 = never)")
	)
	flag.Parse()

	o := &obs.Observer{Metrics: obs.NewRegistry(), Health: obs.NewHealth()}
	srv, err := serve.New(serve.Config{
		Dir:        *dir,
		Runners:    *runners,
		QueueCap:   *queueCap,
		MaxBytes:   *maxBytes,
		Obs:        o,
		StallAfter: *stallAfter,
	})
	if err != nil {
		fatal(err)
	}
	if err := srv.Start(*listenAddr); err != nil {
		fatal(err)
	}
	fmt.Printf("fastgrd serving on http://%s (job API under /v1/jobs; ops: /metrics /healthz /tracez)\n", srv.Addr())
	fmt.Printf("state dir %s, %d runners, queue cap %d\n", *dir, *runners, *queueCap)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("fastgrd: %v — draining (budget %v)\n", got, *drainBudget)
	if err := srv.Drain(*drainBudget); err != nil {
		fatal(err)
	}
	fmt.Println("fastgrd: drained, bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fastgrd:", err)
	os.Exit(1)
}
