// Command fastgrlint runs the repo's static invariant net (package
// internal/lint) over the tree: determinism-critical packages may not
// read the wall clock or the global rand source, map iteration may not
// produce order-sensitive output, goroutines spawn only through the
// executor packages, recover() lives only in the fault containment
// package, internal/obs stays nil-safe, and atomically accessed fields
// stay atomic everywhere. See DESIGN.md, "Static invariants".
//
// Usage:
//
//	fastgrlint [-fmt] [packages]
//
// Packages are directories relative to the module root; "dir/..."
// walks recursively and the default is "./...". Exit status is 0 on a
// clean tree, 1 when there are findings, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fastgr/internal/lint"
)

func main() {
	gofmt := flag.Bool("fmt", false, "also verify every .go file (tests included) is gofmt-formatted")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: fastgrlint [-fmt] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	moduleDir, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(moduleDir)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	runner := &lint.Runner{Loader: loader, Policy: lint.DefaultPolicy(), Gofmt: *gofmt}
	findings, err := runner.Run(patterns...)
	if err != nil {
		fatal(err)
	}
	for _, f := range findings {
		fmt.Println(f.Render(moduleDir))
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "fastgrlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("fastgrlint: no go.mod found above the working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fastgrlint:", err)
	os.Exit(2)
}
