// Command fastgrlint runs the repo's static invariant net (package
// internal/lint) over the tree: determinism-critical packages may not
// read the wall clock or the global rand source, map iteration may not
// produce order-sensitive output, goroutines spawn only through the
// executor packages, recover() lives only in the fault containment
// package, internal/obs stays nil-safe, and atomically accessed fields
// stay atomic everywhere. On top of the per-function checks, the
// interprocedural flow layer (internal/lint/flow) verifies that
// wall-clock taint never reaches routing data (walltaint), durable
// writes route through internal/atomicio (writeroute), worker-reachable
// code honors the shard coordinator discipline (shardisolation), and
// registered metrics stay in lock-step with the Prometheus exposition
// table (promdrift). See DESIGN.md, "Static invariants".
//
// Usage:
//
//	fastgrlint [-fmt] [-self] [packages]
//
// Packages are directories relative to the module root; "dir/..."
// walks recursively and the default is "./...". -self instead runs the
// analyzer over its own implementation plus the fixture module and
// verifies both against their contracts (clean tree, golden findings).
// Exit status is 0 on a clean tree, 1 when there are findings, 2 on
// usage or load errors. Packages whose imports degraded to placeholder
// packages are reported as warnings on stderr (reduced analysis
// coverage), without affecting the exit status.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fastgr/internal/lint"
)

func main() {
	gofmt := flag.Bool("fmt", false, "also verify every .go file (tests included) is gofmt-formatted")
	self := flag.Bool("self", false, "run the analyzer over internal/lint and the fixture module; verify hygiene and goldens")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: fastgrlint [-fmt] [-self] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	moduleDir, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	if *self {
		runSelf(moduleDir)
		return
	}
	loader, err := lint.NewLoader(moduleDir)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	runner := &lint.Runner{Loader: loader, Policy: lint.DefaultPolicy(), Gofmt: *gofmt}
	findings, err := runner.Run(patterns...)
	if err != nil {
		fatal(err)
	}
	warnDegraded(loader, patterns, moduleDir)
	for _, f := range findings {
		fmt.Println(f.Render(moduleDir))
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "fastgrlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// runSelf is the -self mode: the analyzer's own hygiene gate. Exit 1 on
// any divergence so tier1 can wire it as a step.
func runSelf(moduleDir string) {
	problems, err := lint.SelfCheck(moduleDir, filepath.Join("internal", "lint"))
	if err != nil {
		fatal(err)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "fastgrlint: self-check: %d divergence(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("fastgrlint: self-check clean (internal/lint + fixture module)")
}

// warnDegraded reports every analyzed package whose imports fell back
// to placeholder packages: the run still completed, but typed
// refinements (detmap, atomic-consistency, the flow engines) saw less
// than the whole truth there. Warnings only — the exit code is the
// findings', not the environment's.
func warnDegraded(loader *lint.Loader, patterns []string, moduleDir string) {
	dirs, err := loader.PackageDirs(patterns)
	if err != nil {
		return
	}
	for _, dir := range dirs {
		p, err := loader.LoadDir(dir)
		if err != nil {
			continue
		}
		if deg := loader.DegradedImports(p); len(deg) > 0 {
			fmt.Fprintf(os.Stderr, "fastgrlint: warning: %s: degraded analysis (placeholder imports: %s)\n",
				p.Path, strings.Join(deg, ", "))
		}
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("fastgrlint: no go.mod found above the working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fastgrlint:", err)
	os.Exit(2)
}
