// Congestion analysis: route a design, collapse the 3-D demand onto the 2-D
// grid and render an ASCII heat map with the hottest G-cells — the
// congestion-predictor role global routing plays for placement (Section I).
package main

import (
	"fmt"
	"sort"

	"fastgr/internal/core"
	"fastgr/internal/design"
)

func main() {
	d := design.MustGenerate("18test8m", 0.004)
	opt := core.DefaultOptions(core.FastGRL)
	opt.T1, opt.T2 = 6, 32

	res, err := core.Route(d, opt)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s routed: WL=%d shorts=%d\n\n", d.Name,
		res.Report.Quality.Wirelength, res.Report.Quality.Shorts)

	cells := res.Grid.CongestionMap2D()
	w, h := res.Grid.W, res.Grid.H

	// ASCII heat map, downsampled to at most 64 columns.
	step := (w + 63) / 64
	shades := []byte(" .:-=+*#%@")
	fmt.Println("utilization heat map (@ = hottest):")
	for y := 0; y < h; y += step {
		row := make([]byte, 0, w/step+1)
		for x := 0; x < w; x += step {
			// Max utilization in the downsample window.
			u := 0.0
			for dy := 0; dy < step && y+dy < h; dy++ {
				for dx := 0; dx < step && x+dx < w; dx++ {
					c := cells[(y+dy)*w+(x+dx)]
					if c.Capacity > 0 {
						if v := float64(c.Demand) / float64(c.Capacity); v > u {
							u = v
						}
					}
				}
			}
			idx := int(u * float64(len(shades)))
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			row = append(row, shades[idx])
		}
		fmt.Println(string(row))
	}

	// Top-5 hot spots.
	type hot struct {
		x, y int
		util float64
	}
	var hots []hot
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := cells[y*w+x]
			if c.Capacity > 0 {
				hots = append(hots, hot{x, y, float64(c.Demand) / float64(c.Capacity)})
			}
		}
	}
	sort.Slice(hots, func(i, j int) bool { return hots[i].util > hots[j].util })
	fmt.Println("\nhottest G-cells:")
	for i := 0; i < 5 && i < len(hots); i++ {
		fmt.Printf("  (%3d,%3d) utilization %.2f\n", hots[i].x, hots[i].y, hots[i].util)
	}
}
