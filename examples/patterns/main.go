// Pattern routing anatomy: route one two-pin net across a congested region
// with the L-shape, Z-shape and hybrid-shape kernels and print each
// solution's geometry and cost — a visual version of Figs. 2, 8 and 9.
package main

import (
	"fmt"

	"fastgr/internal/design"
	"fastgr/internal/geom"
	"fastgr/internal/grid"
	"fastgr/internal/pattern"
	"fastgr/internal/stt"
)

func main() {
	// A 24x24 four-layer grid with a congested band across the middle rows.
	d := &design.Design{
		Name: "demo", GridW: 24, GridH: 24, NumLayers: 4,
		LayerCapacity: []int{1, 8, 8, 8}, ViaCapacity: 16,
		Nets: []*design.Net{{ID: 0, Name: "demo", Pins: []design.Pin{
			{Pos: geom.Point{X: 2, Y: 2}, Layer: 1},
			{Pos: geom.Point{X: 20, Y: 18}, Layer: 1},
		}}},
	}
	if err := d.Validate(); err != nil {
		panic(err)
	}
	g := grid.NewFromDesign(d)

	// Saturate the boundary rows of the net's bounding box on every
	// horizontal layer: the rows every L-shape must use.
	for _, l := range []int{1, 3} {
		for _, y := range []int{2, 18} {
			for x := 2; x < 20; x++ {
				g.AddSegDemand(l, geom.Point{X: x, Y: y}, geom.Point{X: x + 1, Y: y}, 20)
			}
		}
	}

	net := d.Nets[0]
	tree := stt.Build(net)

	for _, cfg := range []struct {
		name string
		c    pattern.Config
	}{
		{"L-shape ", pattern.Config{Mode: pattern.LShape}},
		{"Z-shape ", pattern.Config{Mode: pattern.ZShape}},
		{"hybrid  ", pattern.Config{Mode: pattern.Hybrid}},
	} {
		res := pattern.SolveCPU(g, tree, cfg.c)
		fmt.Printf("%s cost=%8.2f  wirelength=%d vias=%d  DP ops=%d\n",
			cfg.name, res.Cost, res.Route.Wirelength(g), res.Route.ViaCount(g),
			res.Ops.Total())
		for _, p := range res.Route.Paths {
			for _, s := range p.Segs {
				fmt.Printf("    wire layer %d: %v -> %v\n", s.Layer, s.A, s.B)
			}
			for _, v := range p.Vias {
				fmt.Printf("    via  (%d,%d): layers %d..%d\n", v.X, v.Y, v.L1, v.L2)
			}
		}
	}
	fmt.Println("\nthe hybrid kernel dodges the congested boundary rows by bending")
	fmt.Println("inside the bounding box, at the price of two extra via stacks.")
}
