// Quickstart: generate a small benchmark, route it with all three router
// variants and compare runtime and quality — the 60-second tour of the
// library.
package main

import (
	"fmt"

	"fastgr/internal/core"
	"fastgr/internal/design"
)

func main() {
	// A 0.5%-scale twin of the ICCAD-2019 design 18test5m: ~360 nets on a
	// five-layer grid. Generation is deterministic.
	d := design.MustGenerate("18test5m", 0.005)
	fmt.Printf("design %s: %d nets, %dx%d G-cells, %d layers\n\n",
		d.Name, len(d.Nets), d.GridW, d.GridH, d.NumLayers)

	for _, variant := range []core.Variant{core.CUGR, core.FastGRL, core.FastGRH} {
		opt := core.DefaultOptions(variant)
		// Selection thresholds scale with the benchmark (paper: 100/500 at
		// full size).
		opt.T1, opt.T2 = 7, 35

		res, err := core.Route(d, opt)
		if err != nil {
			panic(err)
		}
		r := res.Report
		fmt.Printf("%-8s  TOTAL=%-12v (PATTERN=%v + MAZE=%v)\n",
			r.Variant, r.Times.Total, r.Times.Pattern, r.Times.Maze)
		fmt.Printf("          WL=%d vias=%d shorts=%d score=%.1f nets-to-ripup=%d\n\n",
			r.Quality.Wirelength, r.Quality.Vias, r.Quality.Shorts, r.Score, r.NetsToRipup)
	}
	fmt.Println("FastGRL = CUGR quality at a fraction of the runtime;")
	fmt.Println("FastGRH trades a little runtime for fewer violations.")
}
