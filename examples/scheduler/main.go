// Scheduler walkthrough: build a task conflict graph from a hand-made set of
// routing tasks, extract the root batch, orient the conflict edges into a
// DAG (Fig. 6 / Section III-B) and compare the two parallelization
// strategies — batch-barrier vs. task-graph — on skewed task durations.
package main

import (
	"fmt"
	"time"

	"fastgr/internal/geom"
	"fastgr/internal/sched"
	"fastgr/internal/taskflow"
)

func main() {
	// A miniature of a rip-up iteration's conflict structure: one congested
	// hot spot where a stack of 12 nets all overlap (they must serialize),
	// surrounded by 48 independent nets elsewhere on the die. The barrier
	// strategy drains the hot spot one batch at a time, stalling the whole
	// machine; the task graph lets the independent work flow around it.
	var tasks []sched.Task
	for i := 0; i < 12; i++ {
		tasks = append(tasks, sched.Task{
			ID:   len(tasks),
			BBox: geom.NewRect(geom.Point{X: 10, Y: 10}, geom.Point{X: 20, Y: 20}),
		})
	}
	for i := 0; i < 48; i++ {
		lo := geom.Point{X: 40 + (i%12)*10, Y: 40 + (i/12)*10}
		hi := geom.Point{X: lo.X + 6, Y: lo.Y + 6}
		tasks = append(tasks, sched.Task{ID: len(tasks), BBox: geom.NewRect(lo, hi)})
	}

	g := sched.BuildGraph(tasks, 200, 200)
	fmt.Printf("%d tasks, %d conflict edges\n", len(g.Tasks), g.Edges)
	fmt.Print("root batch: ")
	for i, in := range g.RootBatch {
		if in {
			fmt.Printf("%d ", i)
		}
	}
	fmt.Println()

	// Hot-spot nets reroute quickly (small windows); the independent nets
	// are larger rip-ups.
	durations := make([]time.Duration, len(tasks))
	for i := range durations {
		if i < 12 {
			durations[i] = 3 * time.Millisecond
		} else {
			durations[i] = 12 * time.Millisecond
		}
	}

	// Batch-barrier strategy (the widely adopted baseline).
	var idBatches [][]int
	for _, b := range sched.ExtractBatches(tasks) {
		var ids []int
		for _, t := range b {
			ids = append(ids, t.ID)
		}
		idBatches = append(idBatches, ids)
	}
	const workers = 16
	batch := taskflow.BatchMakespan(idBatches, durations, workers)
	dag := taskflow.Makespan(g, durations, workers)
	cp := taskflow.CriticalPath(g, durations)
	seq := taskflow.SumDurations(durations)

	fmt.Printf("\nsequential          %v\n", seq)
	fmt.Printf("batch-barrier (16w) %v  (%d batches)\n", batch, len(idBatches))
	fmt.Printf("task graph    (16w) %v\n", dag)
	fmt.Printf("critical path       %v (no schedule can beat this)\n", cp)
	fmt.Printf("\nscheduler speedup over batch-barrier: %.2fx\n",
		float64(batch)/float64(dag))

	// And execute for real with the dependency-respecting worker pool.
	done := make(chan int, len(tasks))
	taskflow.Run(g, 4, func(task int) { done <- task })
	close(done)
	count := 0
	for range done {
		count++
	}
	fmt.Printf("executed %d/%d tasks with the Taskflow-style worker pool\n", count, len(tasks))
}
