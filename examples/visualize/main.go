// Visualize: route a design and write SVG pictures — the congestion heat
// map, the chip's worst-congestion net's Steiner tree and routed geometry —
// into ./out (created if needed).
package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"fastgr/internal/atomicio"
	"fastgr/internal/core"
	"fastgr/internal/design"
	"fastgr/internal/route"
	"fastgr/internal/viz"
)

func main() {
	d := design.MustGenerate("18test5m", 0.005)
	opt := core.DefaultOptions(core.FastGRH)
	opt.T1, opt.T2 = 7, 35
	res, err := core.Route(d, opt)
	if err != nil {
		panic(err)
	}

	outDir := "out"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		panic(err)
	}
	// Render to memory and land the bytes through the crash-safe writer:
	// an interrupted run never leaves a torn SVG in out/.
	write := func(name string, fn func(w io.Writer) error) {
		path := filepath.Join(outDir, name)
		var buf bytes.Buffer
		if err := fn(&buf); err != nil {
			panic(err)
		}
		if err := atomicio.WriteFile(path, buf.Bytes()); err != nil {
			panic(err)
		}
		fmt.Println("wrote", path)
	}

	// 1. Congestion heat map of the routed chip.
	write("congestion.svg", func(f io.Writer) error {
		return viz.WriteCongestionSVG(f, res.Grid)
	})

	// 2. The largest multi-pin net: its Steiner tree and its routed
	// geometry (wires colored by metal layer, vias as dots).
	big := d.Nets[0]
	for _, n := range d.Nets {
		if len(n.Pins) > len(big.Pins) {
			big = n
		}
	}
	write("tree.svg", func(f io.Writer) error {
		return viz.WriteTreeSVG(f, d.GridW, d.GridH, res.Trees[big.ID])
	})
	write("net.svg", func(f io.Writer) error {
		pins := route.PinTerminals(res.Trees[big.ID])
		return viz.WriteRouteSVG(f, res.Grid, []*route.NetRoute{res.Routes[big.ID]}, pins)
	})

	// 3. Every net at once — the full routing plan.
	write("all_nets.svg", func(f io.Writer) error {
		return viz.WriteRouteSVG(f, res.Grid, res.Routes, nil)
	})

	fmt.Printf("\n%s: %d-pin net %s rendered; open out/*.svg in a browser\n",
		d.Name, len(big.Pins), big.Name)
}
