// Package fastgr is a Go reproduction of "FastGR: Global Routing on CPU-GPU
// with Heterogeneous Task Graph Scheduler" (Liu et al., DATE 2022 / TCAD'23):
// a two-stage global router with GPU-friendly pattern routing kernels
// (L-shape, Z-shape and hybrid-shape with selection) and a task-graph
// scheduler for the rip-up-and-reroute iterations.
//
// This top-level package is a thin facade over the implementation packages;
// see DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
//
//	d, _ := fastgr.GenerateBenchmark("18test5m", 0.01)
//	res, _ := fastgr.Route(d, fastgr.DefaultOptions(fastgr.FastGRH))
//	fmt.Println(res.Report.Quality, res.Report.Times.Total)
package fastgr

import (
	"fastgr/internal/core"
	"fastgr/internal/design"
	"fastgr/internal/dr"
	"fastgr/internal/drcu"
)

// Router variants, matching the paper's evaluation.
const (
	// CUGR is the sequential baseline: CPU L-shape pattern routing and
	// batch-barrier parallel rip-up-and-reroute.
	CUGR = core.CUGR
	// FastGRL is the runtime-oriented variant: GPU L-shape kernel plus the
	// task-graph scheduler.
	FastGRL = core.FastGRL
	// FastGRH is the quality-oriented variant: GPU hybrid-shape kernel with
	// selection plus the task-graph scheduler.
	FastGRH = core.FastGRH
)

// Re-exported core types; consult the internal packages for the full API
// surface (grid graphs, Steiner trees, pattern kernels, schedulers).
type (
	// Variant selects a router configuration.
	Variant = core.Variant
	// Options configures a routing run.
	Options = core.Options
	// Result is a routed design plus its report.
	Result = core.Result
	// Report carries quality metrics and modeled stage times.
	Report = core.Report
	// Design is a global-routing instance.
	Design = design.Design
	// DRMetrics is the detailed-routing evaluation of a solution.
	DRMetrics = dr.Metrics
)

// DefaultOptions returns the paper-faithful configuration for a variant.
func DefaultOptions(v Variant) Options { return core.DefaultOptions(v) }

// Route runs the full two-stage global routing flow on a design.
func Route(d *Design, opt Options) (*Result, error) { return core.Route(d, opt) }

// GenerateBenchmark builds a synthetic twin of an ICCAD-2019 benchmark
// ("18test5" ... "19test9m") at the given scale in (0, 1].
func GenerateBenchmark(name string, scale float64) (*Design, error) {
	return design.Generate(name, scale)
}

// BenchmarkNames lists the twelve supported benchmark names.
func BenchmarkNames() []string { return design.AllNames() }

// EvaluateDetailedRouting runs the track-assignment detailed-routing
// evaluator over a routing result (the Table X metric set).
func EvaluateDetailedRouting(res *Result) DRMetrics {
	return dr.Evaluate(res.Grid, res.Routes)
}

// FineDRMetrics is the outcome of Dr.CU-style fine-grid detailed routing.
type FineDRMetrics = drcu.Metrics

// DetailedRoute actually routes the result's nets on a 3x-refined grid
// constrained to their guides (the Dr.CU substitute behind Table X's fine
// variant).
func DetailedRoute(res *Result) FineDRMetrics {
	return drcu.Evaluate(res, drcu.DefaultConfig())
}
