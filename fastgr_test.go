package fastgr_test

import (
	"testing"

	"fastgr"
)

func TestFacadeRoundTrip(t *testing.T) {
	d, err := fastgr.GenerateBenchmark("18test5m", 0.003)
	if err != nil {
		t.Fatal(err)
	}
	opt := fastgr.DefaultOptions(fastgr.FastGRL)
	opt.T1, opt.T2 = 5, 27
	res, err := fastgr.Route(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Quality.Wirelength == 0 {
		t.Fatal("facade routing produced no wirelength")
	}
	m := fastgr.EvaluateDetailedRouting(res)
	if m.Wirelength < res.Report.Quality.Wirelength {
		t.Fatalf("DR wirelength %d below GR %d", m.Wirelength, res.Report.Quality.Wirelength)
	}
}

func TestFacadeBenchmarkNames(t *testing.T) {
	names := fastgr.BenchmarkNames()
	if len(names) != 12 {
		t.Fatalf("want 12 benchmark names, got %d", len(names))
	}
	if _, err := fastgr.GenerateBenchmark("not-a-design", 0.5); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestFacadeVariants(t *testing.T) {
	for _, v := range []fastgr.Variant{fastgr.CUGR, fastgr.FastGRL, fastgr.FastGRH} {
		opt := fastgr.DefaultOptions(v)
		if opt.RRRIters != 3 || opt.Workers != 16 {
			t.Fatalf("%v: unexpected defaults %+v", v, opt)
		}
	}
}
