module fastgr

go 1.22
