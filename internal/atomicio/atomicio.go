// Package atomicio writes artifact files crash-safely: content goes to
// a temp file in the destination directory and reaches the final name
// only through os.Rename, which is atomic on POSIX filesystems. An
// interrupted run — a panic mid-encode, a killed process, a full disk —
// therefore never leaves a truncated BENCH_*.json or trace file where a
// previous good artifact stood; it leaves either the old file or the new
// one, plus at worst an orphaned *.tmp.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
)

// File is an in-progress atomic write. Write content, then Commit to
// publish it under the final name, or Abort to discard it. Exactly one
// of the two must be called; Abort after Commit is a no-op, so
// `defer f.Abort()` right after Create is the idiomatic cleanup.
type File struct {
	tmp  *os.File
	path string
	done bool
}

// Create opens a temp file next to path (same directory, so the final
// rename cannot cross filesystems).
func Create(path string) (*File, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, fmt.Errorf("atomicio: %w", err)
	}
	return &File{tmp: tmp, path: path}, nil
}

// Write appends to the temp file.
func (f *File) Write(p []byte) (int, error) { return f.tmp.Write(p) }

// Commit flushes the temp file to disk and renames it over the final
// path. On any error the temp file is removed and the destination is
// untouched.
func (f *File) Commit() error {
	if f.done {
		return fmt.Errorf("atomicio: double commit of %s", f.path)
	}
	f.done = true
	if err := f.tmp.Sync(); err != nil {
		f.discard()
		return fmt.Errorf("atomicio: sync %s: %w", f.path, err)
	}
	if err := f.tmp.Close(); err != nil {
		os.Remove(f.tmp.Name())
		return fmt.Errorf("atomicio: close %s: %w", f.path, err)
	}
	if err := os.Rename(f.tmp.Name(), f.path); err != nil {
		os.Remove(f.tmp.Name())
		return fmt.Errorf("atomicio: publish %s: %w", f.path, err)
	}
	return nil
}

// Abort discards the temp file, leaving the destination untouched. Safe
// to call after Commit (no-op), which makes it deferrable.
func (f *File) Abort() {
	if f.done {
		return
	}
	f.done = true
	f.discard()
}

func (f *File) discard() {
	f.tmp.Close()
	os.Remove(f.tmp.Name())
}

// WriteFile is the one-shot convenience: atomically replace path's
// content. The crash-safe sibling of os.WriteFile.
func WriteFile(path string, data []byte) error {
	f, err := Create(path)
	if err != nil {
		return err
	}
	defer f.Abort()
	if _, err := f.Write(data); err != nil {
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	return f.Commit()
}
