package atomicio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFile(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new" {
		t.Fatalf("content = %q, want %q", got, "new")
	}
}

func TestAbortLeavesDestinationUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, []byte("good")); err != nil {
		t.Fatal(err)
	}
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("half-writ")); err != nil {
		t.Fatal(err)
	}
	f.Abort()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "good" {
		t.Fatalf("abort clobbered the destination: %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("abort left temp file %s behind", e.Name())
		}
	}
}

func TestAbortAfterCommitIsNoOp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Abort()
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	f.Abort() // deferred-style double call
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Fatalf("content = %q after abort-after-commit", got)
	}
}

func TestDoubleCommitErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err == nil {
		t.Fatal("second Commit should error")
	}
}

func TestTempLivesInDestinationDir(t *testing.T) {
	dir := t.TempDir()
	f, err := Create(filepath.Join(dir, "out.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Abort()
	if filepath.Dir(f.tmp.Name()) != dir {
		t.Fatalf("temp file %s not in destination dir %s (rename could cross filesystems)",
			f.tmp.Name(), dir)
	}
}

func TestCreateInMissingDirErrors(t *testing.T) {
	if _, err := Create(filepath.Join(t.TempDir(), "no", "such", "dir", "x")); err == nil {
		t.Fatal("Create into a missing directory should error")
	}
}
