package bench

import (
	"fmt"
	"io"
	"time"

	"fastgr/internal/core"
	"fastgr/internal/gpu"
	"fastgr/internal/pattern"
)

// The paper motivates two design choices beyond its numbered tables: the
// zero-copy technique that keeps host<->device transfer "within 1s"
// (Section IV-E) and the congestion-aware edge shifting in the planning
// stage (Fig. 5). These ablations quantify both on this implementation.

// ZeroCopyRow compares pattern-stage time with zero-copy against explicit
// PCIe transfers for one design.
type ZeroCopyRow struct {
	Design       string
	ZeroCopy     time.Duration // pattern time with zero-copy mapping
	PCIe         time.Duration // pattern time with explicit copies
	TransferGain float64       // PCIe / ZeroCopy
}

// ZeroCopyAblation reruns the FastGRL pattern stage with the device's
// zero-copy mapping disabled.
func ZeroCopyAblation(s *Suite) []ZeroCopyRow {
	var rows []ZeroCopyRow
	for _, name := range s.Cfg.Designs {
		zc := s.Run(name, core.FastGRL).Report

		opt := s.options(runKey{design: name, variant: core.FastGRL, rrrIters: -1})
		opt.Device.ZeroCopy = false
		res, err := core.Route(s.Design(name), opt)
		if err != nil {
			panic(fmt.Sprintf("bench: zero-copy ablation on %s: %v", name, err))
		}
		row := ZeroCopyRow{
			Design:   name,
			ZeroCopy: zc.Times.Pattern,
			PCIe:     res.Report.Times.Pattern,
		}
		if row.ZeroCopy > 0 {
			row.TransferGain = float64(row.PCIe) / float64(row.ZeroCopy)
		}
		rows = append(rows, row)
	}
	return rows
}

// PrintZeroCopyAblation writes the transfer ablation.
func PrintZeroCopyAblation(w io.Writer, rows []ZeroCopyRow) {
	fmt.Fprintf(w, "Ablation: zero-copy vs. explicit PCIe transfer (PATTERN stage, FastGRL)\n")
	fmt.Fprintf(w, "%-10s %14s %14s %8s\n", "design", "zero-copy(ms)", "pcie(ms)", "ratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %14s %14s %7.2fx\n", r.Design, ms(r.ZeroCopy), ms(r.PCIe), r.TransferGain)
	}
}

// EdgeShiftRow compares quality with and without the planning-stage edge
// shifting for one design.
type EdgeShiftRow struct {
	Design               string
	ShortsWith           int
	ShortsWithout        int
	ScoreWith            float64
	ScoreWithout         float64
	RipupWith, RipupNoES int
}

// EdgeShiftAblation reruns FastGRL with edge shifting disabled.
func EdgeShiftAblation(s *Suite) []EdgeShiftRow {
	var rows []EdgeShiftRow
	for _, name := range s.Cfg.Designs {
		with := s.Run(name, core.FastGRL).Report

		opt := s.options(runKey{design: name, variant: core.FastGRL, rrrIters: -1})
		opt.NoEdgeShift = true
		res, err := core.Route(s.Design(name), opt)
		if err != nil {
			panic(fmt.Sprintf("bench: edge-shift ablation on %s: %v", name, err))
		}
		rows = append(rows, EdgeShiftRow{
			Design:        name,
			ShortsWith:    with.Quality.Shorts,
			ShortsWithout: res.Report.Quality.Shorts,
			ScoreWith:     with.Score,
			ScoreWithout:  res.Report.Score,
			RipupWith:     with.NetsToRipup,
			RipupNoES:     res.Report.NetsToRipup,
		})
	}
	return rows
}

// PrintEdgeShiftAblation writes the planning ablation.
func PrintEdgeShiftAblation(w io.Writer, rows []EdgeShiftRow) {
	fmt.Fprintf(w, "Ablation: congestion-aware edge shifting (FastGRL)\n")
	fmt.Fprintf(w, "%-10s %8s %8s %12s %12s %8s %8s\n",
		"design", "S with", "S w/o", "score with", "score w/o", "rip w", "rip w/o")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %8d %12.1f %12.1f %8d %8d\n",
			r.Design, r.ShortsWith, r.ShortsWithout, r.ScoreWith, r.ScoreWithout,
			r.RipupWith, r.RipupNoES)
	}
}

// DeviceSweepRow scales the simulated device and reports the L-kernel
// pattern time — a what-if study on GPU generations.
type DeviceSweepRow struct {
	Design  string
	SMs     int
	Pattern time.Duration
}

// DeviceSweep reruns the FastGRL pattern stage with 1/4x, 1/2x, 1x and 2x
// the RTX 3090's SM count.
func DeviceSweep(s *Suite, name string) []DeviceSweepRow {
	base := gpu.RTX3090()
	var rows []DeviceSweepRow
	for _, sms := range []int{base.SMCount / 4, base.SMCount / 2, base.SMCount, base.SMCount * 2} {
		opt := s.options(runKey{design: name, variant: core.FastGRL, rrrIters: -1})
		opt.Device.SMCount = sms
		res, err := core.Route(s.Design(name), opt)
		if err != nil {
			panic(fmt.Sprintf("bench: device sweep on %s: %v", name, err))
		}
		rows = append(rows, DeviceSweepRow{Design: name, SMs: sms, Pattern: res.Report.Times.Pattern})
	}
	return rows
}

// PrintDeviceSweep writes the SM-count sweep.
func PrintDeviceSweep(w io.Writer, rows []DeviceSweepRow) {
	fmt.Fprintf(w, "Ablation: pattern-stage time vs. simulated SM count\n")
	fmt.Fprintf(w, "%-10s %6s %14s\n", "design", "SMs", "PATTERN(ms)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %6d %14s\n", r.Design, r.SMs, ms(r.Pattern))
	}
}

// StaircaseRow compares the hybrid kernel against the three-bend staircase
// extension (Section IV-F's "more bend points") on one design.
type StaircaseRow struct {
	Design                    string
	HybridTime, StairTime     time.Duration
	HybridShorts, StairShorts int
	HybridScore, StairScore   float64
}

// StaircaseAblation runs the FastGRH pipeline with the staircase kernel in
// place of the hybrid kernel.
func StaircaseAblation(s *Suite) []StaircaseRow {
	var rows []StaircaseRow
	mode := pattern.Staircase
	for _, name := range s.Cfg.Designs {
		h := s.Run(name, core.FastGRH).Report
		opt := s.options(runKey{design: name, variant: core.FastGRH, rrrIters: -1})
		opt.PatternModeOverride = &mode
		res, err := core.Route(s.Design(name), opt)
		if err != nil {
			panic(fmt.Sprintf("bench: staircase ablation on %s: %v", name, err))
		}
		rows = append(rows, StaircaseRow{
			Design:       name,
			HybridTime:   h.Times.Pattern,
			StairTime:    res.Report.Times.Pattern,
			HybridShorts: h.Quality.Shorts,
			StairShorts:  res.Report.Quality.Shorts,
			HybridScore:  h.Score,
			StairScore:   res.Report.Score,
		})
	}
	return rows
}

// PrintStaircaseAblation writes the extension study.
func PrintStaircaseAblation(w io.Writer, rows []StaircaseRow) {
	fmt.Fprintf(w, "Extension: three-bend staircase kernel vs. hybrid (Section IV-F)\n")
	fmt.Fprintf(w, "%-10s %12s %12s %8s %8s %12s %12s\n",
		"design", "hyb PAT(ms)", "stair PAT", "hyb S", "stair S", "hyb score", "stair score")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12s %12s %8d %8d %12.1f %12.1f\n",
			r.Design, ms(r.HybridTime), ms(r.StairTime),
			r.HybridShorts, r.StairShorts, r.HybridScore, r.StairScore)
	}
}

// HistoryRow compares plain rip-up-and-reroute against negotiated-congestion
// (history-based) rip-up on one design.
type HistoryRow struct {
	Design                  string
	PlainShorts, HistShorts int
	PlainScore, HistScore   float64
	PlainMazeTime, HistMaze time.Duration
}

// HistoryAblation reruns FastGRL with Archer-style history enabled.
func HistoryAblation(s *Suite) []HistoryRow {
	var rows []HistoryRow
	for _, name := range s.Cfg.Designs {
		plain := s.Run(name, core.FastGRL).Report
		opt := s.options(runKey{design: name, variant: core.FastGRL, rrrIters: -1})
		opt.HistoryRRR = true
		res, err := core.Route(s.Design(name), opt)
		if err != nil {
			panic(fmt.Sprintf("bench: history ablation on %s: %v", name, err))
		}
		rows = append(rows, HistoryRow{
			Design:        name,
			PlainShorts:   plain.Quality.Shorts,
			HistShorts:    res.Report.Quality.Shorts,
			PlainScore:    plain.Score,
			HistScore:     res.Report.Score,
			PlainMazeTime: plain.Times.Maze,
			HistMaze:      res.Report.Times.Maze,
		})
	}
	return rows
}

// PrintHistoryAblation writes the negotiation study.
func PrintHistoryAblation(w io.Writer, rows []HistoryRow) {
	fmt.Fprintf(w, "Ablation: history-based (negotiated) rip-up and reroute (FastGRL)\n")
	fmt.Fprintf(w, "%-10s %8s %8s %12s %12s %10s %10s\n",
		"design", "S plain", "S hist", "score plain", "score hist", "maze pl", "maze hist")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %8d %12.1f %12.1f %10s %10s\n",
			r.Design, r.PlainShorts, r.HistShorts, r.PlainScore, r.HistScore,
			ms(r.PlainMazeTime), ms(r.HistMaze))
	}
}
