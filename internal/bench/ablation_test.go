package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestZeroCopyAblation(t *testing.T) {
	s := NewSuite(Config{Scale: 0.003, Designs: []string{"18test5m"}})
	rows := ZeroCopyAblation(s)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	// Explicit PCIe copies must cost more than zero-copy mapping: the paper
	// adopts zero-copy exactly because transfers would otherwise dominate.
	if r.PCIe <= r.ZeroCopy {
		t.Fatalf("PCIe pattern time %v not above zero-copy %v", r.PCIe, r.ZeroCopy)
	}
	if r.TransferGain <= 1 {
		t.Fatalf("transfer gain %v", r.TransferGain)
	}
	var buf bytes.Buffer
	PrintZeroCopyAblation(&buf, rows)
	if !strings.Contains(buf.String(), "zero-copy") {
		t.Fatal("printout incomplete")
	}
}

func TestEdgeShiftAblation(t *testing.T) {
	s := NewSuite(Config{Scale: 0.003, Designs: []string{"18test5m"}})
	rows := EdgeShiftAblation(s)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.ScoreWith <= 0 || r.ScoreWithout <= 0 {
		t.Fatalf("empty ablation row: %+v", r)
	}
	// Shifting reacts only to blockage-induced cost gradients at planning
	// time (the grid is empty before the pattern stage), so on designs whose
	// Steiner points avoid blockages both runs may legitimately coincide;
	// the flag's effect on trees is asserted in the stt package tests.
	var buf bytes.Buffer
	PrintEdgeShiftAblation(&buf, rows)
	if !strings.Contains(buf.String(), "edge shifting") {
		t.Fatal("printout incomplete")
	}
}

func TestDeviceSweep(t *testing.T) {
	s := NewSuite(Config{Scale: 0.003, Designs: []string{"18test5m"}})
	rows := DeviceSweep(s, "18test5m")
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More SMs never slow the pattern stage down.
	for i := 1; i < len(rows); i++ {
		if rows[i].SMs <= rows[i-1].SMs {
			t.Fatal("sweep not ascending in SM count")
		}
		if rows[i].Pattern > rows[i-1].Pattern {
			t.Fatalf("pattern time grew with more SMs: %v -> %v",
				rows[i-1].Pattern, rows[i].Pattern)
		}
	}
	var buf bytes.Buffer
	PrintDeviceSweep(&buf, rows)
	if !strings.Contains(buf.String(), "SM count") {
		t.Fatal("printout incomplete")
	}
}

func TestTableXFine(t *testing.T) {
	s := NewSuite(Config{Scale: 0.003, Designs: []string{"18test5m"}})
	rows := TableXFine(s)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	for _, m := range []int{r.CUGR.Wirelength, r.GRL.Wirelength, r.GRH.Wirelength} {
		if m == 0 {
			t.Fatalf("empty fine DR metrics: %+v", r)
		}
	}
	if r.CUGR.Unrouted+r.GRL.Unrouted+r.GRH.Unrouted != 0 {
		t.Fatalf("nets unroutable within guides: %+v", r)
	}
	var buf bytes.Buffer
	PrintTableXFine(&buf, rows)
	if !strings.Contains(buf.String(), "fine-grid") {
		t.Fatal("printout incomplete")
	}
}

func TestStaircaseAblation(t *testing.T) {
	s := NewSuite(Config{Scale: 0.003, Designs: []string{"18test5m"}})
	rows := StaircaseAblation(s)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	// The staircase kernel evaluates strictly more candidates: its modeled
	// pattern time cannot be below the hybrid kernel's.
	if r.StairTime < r.HybridTime {
		t.Fatalf("staircase pattern time %v below hybrid %v", r.StairTime, r.HybridTime)
	}
	if r.StairScore <= 0 || r.HybridScore <= 0 {
		t.Fatalf("empty row: %+v", r)
	}
	var buf bytes.Buffer
	PrintStaircaseAblation(&buf, rows)
	if !strings.Contains(buf.String(), "staircase") {
		t.Fatal("printout incomplete")
	}
}

func TestHistoryAblation(t *testing.T) {
	s := NewSuite(Config{Scale: 0.003, Designs: []string{"18test5m"}})
	rows := HistoryAblation(s)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.PlainScore <= 0 || r.HistScore <= 0 {
		t.Fatalf("empty row: %+v", r)
	}
	var buf bytes.Buffer
	PrintHistoryAblation(&buf, rows)
	if !strings.Contains(buf.String(), "negotiated") {
		t.Fatal("printout incomplete")
	}
}
