// Package bench regenerates every table and figure of the paper's
// evaluation (Section IV) on the synthetic benchmark suite: Fig. 3 (runtime
// breakdown), Table III (benchmarks), Tables IV/V (sorting schemes), Fig. 12
// (selection threshold sweep), Table VI (selection ablation), Table VII
// (overall results), Table VIII (runtime breakdown per stage), Table IX
// (solution quality) and Table X (detailed-routing quality).
//
// Experiments share routing runs through a memoizing Suite, and every
// reported number is deterministic (modeled stage times; see DESIGN.md), so
// the tables are reproducible run to run.
package bench

import (
	"fmt"
	"math"

	"fastgr/internal/core"
	"fastgr/internal/design"
	"fastgr/internal/sched"
)

// Config scopes an experiment run.
type Config struct {
	// Scale shrinks every benchmark (1.0 = full contest size). Net counts
	// scale linearly, grid sides and HPWL-based thresholds by sqrt(Scale).
	Scale float64
	// Designs restricts the benchmark list (default: all twelve).
	Designs []string
}

// DefaultConfig runs all twelve designs at 1% scale, which keeps the full
// experiment suite within minutes on a laptop-class machine while preserving
// the congestion regimes (see DESIGN.md).
func DefaultConfig() Config {
	return Config{Scale: 0.01, Designs: design.AllNames()}
}

// T1 returns the small/medium selection threshold (paper: 100) scaled to the
// benchmark size.
func (c Config) T1() int {
	return maxInt(2, int(math.Round(100*math.Sqrt(c.Scale))))
}

// T2 returns the medium/large selection threshold (paper: 500) scaled to the
// benchmark size.
func (c Config) T2() int {
	return maxInt(c.T1()+2, int(math.Round(500*math.Sqrt(c.Scale))))
}

// ScaleThreshold converts any full-scale HPWL threshold to this config's
// scale (used by the Fig. 12 sweep).
func (c Config) ScaleThreshold(full int) int {
	return maxInt(2, int(math.Round(float64(full)*math.Sqrt(c.Scale))))
}

// runKey identifies one memoized routing run.
type runKey struct {
	design    string
	variant   core.Variant
	selOff    bool
	t2        int // 0 = config default
	rrrScheme sched.Scheme
	hasScheme bool
	rrrIters  int // -1 = default
}

// Suite memoizes routing runs across experiments.
type Suite struct {
	Cfg     Config
	designs map[string]*design.Design
	runs    map[runKey]*core.Result
	// Verbose, when set, prints one line per routing run as it happens.
	Verbose func(format string, args ...interface{})
}

// NewSuite builds an experiment suite.
func NewSuite(cfg Config) *Suite {
	if len(cfg.Designs) == 0 {
		cfg.Designs = design.AllNames()
	}
	return &Suite{
		Cfg:     cfg,
		designs: make(map[string]*design.Design),
		runs:    make(map[runKey]*core.Result),
	}
}

// Design returns the (memoized) generated benchmark.
func (s *Suite) Design(name string) *design.Design {
	if d, ok := s.designs[name]; ok {
		return d
	}
	d := design.MustGenerate(name, s.Cfg.Scale)
	s.designs[name] = d
	return d
}

// options builds the core options for a run key.
func (s *Suite) options(k runKey) core.Options {
	opt := core.DefaultOptions(k.variant)
	opt.T1 = s.Cfg.T1()
	opt.T2 = s.Cfg.T2()
	if k.t2 != 0 {
		opt.T2 = k.t2
	}
	opt.SelectionOff = k.selOff
	if k.hasScheme {
		sc := k.rrrScheme
		opt.RRRSchemeOverride = &sc
	}
	if k.rrrIters >= 0 {
		opt.RRRIters = k.rrrIters
	}
	return opt
}

func (s *Suite) run(k runKey) *core.Result {
	if res, ok := s.runs[k]; ok {
		return res
	}
	if s.Verbose != nil {
		s.Verbose("routing %s with %v (selOff=%v t2=%d)", k.design, k.variant, k.selOff, k.t2)
	}
	res, err := core.Route(s.Design(k.design), s.options(k))
	if err != nil {
		panic(fmt.Sprintf("bench: routing %s/%v failed: %v", k.design, k.variant, err))
	}
	s.runs[k] = res
	return res
}

// Run routes a design with a standard variant configuration (memoized).
func (s *Suite) Run(name string, v core.Variant) *core.Result {
	return s.run(runKey{design: name, variant: v, rrrIters: -1})
}

// RunSelectionOff routes with the hybrid kernel applied to every net.
func (s *Suite) RunSelectionOff(name string) *core.Result {
	return s.run(runKey{design: name, variant: core.FastGRH, selOff: true, rrrIters: -1})
}

// RunWithT2 routes FastGRH with an explicit T2 threshold (Fig. 12 sweep).
func (s *Suite) RunWithT2(name string, t2 int) *core.Result {
	return s.run(runKey{design: name, variant: core.FastGRH, t2: t2, rrrIters: -1})
}

// RunWithRRRScheme routes FastGRL with a sorting-scheme override in the
// rip-up-and-reroute iterations only (Table V).
func (s *Suite) RunWithRRRScheme(name string, scheme sched.Scheme) *core.Result {
	return s.run(runKey{design: name, variant: core.FastGRL, rrrScheme: scheme, hasScheme: true, rrrIters: -1})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// geoMean returns the geometric mean of positive ratios, the aggregation the
// paper uses for speedup averages.
func geoMean(ratios []float64) float64 {
	if len(ratios) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range ratios {
		sum += math.Log(r)
	}
	return math.Exp(sum / float64(len(ratios)))
}

// mean returns the arithmetic mean, skipping NaN entries — the undefined
// sentinel metrics.ImprovementPct returns for zero-base comparisons, which
// must not poison a table's average (0 when nothing is defined).
func mean(vals []float64) float64 {
	s, n := 0.0, 0
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		s += v
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}
