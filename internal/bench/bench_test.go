package bench

import (
	"bytes"
	"strings"
	"testing"

	"fastgr/internal/core"
	"fastgr/internal/sched"
)

// fastCfg keeps unit tests quick: two designs at a small scale.
func fastCfg() Config {
	return Config{Scale: 0.004, Designs: []string{"18test5", "18test5m"}}
}

func TestConfigThresholds(t *testing.T) {
	full := Config{Scale: 1}
	if full.T1() != 100 || full.T2() != 500 {
		t.Fatalf("full-scale thresholds %d/%d, want 100/500", full.T1(), full.T2())
	}
	small := Config{Scale: 0.01}
	if small.T1() != 10 || small.T2() != 50 {
		t.Fatalf("1%% thresholds %d/%d, want 10/50", small.T1(), small.T2())
	}
	if small.T2() <= small.T1() {
		t.Fatal("T2 must exceed T1")
	}
	if small.ScaleThreshold(1000) != 100 {
		t.Fatalf("ScaleThreshold(1000) = %d", small.ScaleThreshold(1000))
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Scale != 0.01 || len(cfg.Designs) != 12 {
		t.Fatalf("unexpected default config: %+v", cfg)
	}
}

func TestSuiteMemoizesRuns(t *testing.T) {
	s := NewSuite(fastCfg())
	a := s.Run("18test5m", core.FastGRL)
	b := s.Run("18test5m", core.FastGRL)
	if a != b {
		t.Fatal("identical runs not memoized")
	}
	if s.Design("18test5m") != s.Design("18test5m") {
		t.Fatal("designs not memoized")
	}
	// Different keys must not collide.
	c := s.Run("18test5m", core.FastGRH)
	if c == a {
		t.Fatal("different variants shared a run")
	}
	d := s.RunSelectionOff("18test5m")
	if d == c {
		t.Fatal("selection-off shared the selection-on run")
	}
	e := s.RunWithT2("18test5m", 999)
	if e == c {
		t.Fatal("custom T2 shared the default run")
	}
	f := s.RunWithRRRScheme("18test5m", sched.PinsDesc)
	if f == a {
		t.Fatal("scheme override shared the default run")
	}
}

func TestTableIII(t *testing.T) {
	s := NewSuite(fastCfg())
	rows := TableIII(s)
	if len(rows) != 6 {
		t.Fatalf("Table III rows = %d, want 6 base designs", len(rows))
	}
	var buf bytes.Buffer
	PrintTableIII(&buf, rows)
	if !strings.Contains(buf.String(), "18test5") {
		t.Fatal("printout missing design names")
	}
}

func TestFig3(t *testing.T) {
	s := NewSuite(Config{Scale: 0.004, Designs: []string{"19test9", "19test7", "19test9m"}})
	rows := Fig3(s)
	if len(rows) != 3 {
		t.Fatalf("Fig3 rows = %d", len(rows))
	}
	byName := map[string]Fig3Row{}
	for _, r := range rows {
		byName[r.Design] = r
		if r.PatternFrac < 0 || r.PatternFrac > 1 {
			t.Fatalf("fraction out of range: %+v", r)
		}
	}
	// The paper's shape: 19test9m is MAZE-dominated, 19test9 PATTERN-heavy.
	if byName["19test9m"].PatternFrac >= 0.5 {
		t.Fatalf("19test9m should be MAZE-dominated, pattern frac %.2f",
			byName["19test9m"].PatternFrac)
	}
	if byName["19test9"].PatternFrac <= byName["19test9m"].PatternFrac {
		t.Fatal("9-layer design should be more PATTERN-dominated than its m twin")
	}
	var buf bytes.Buffer
	PrintFig3(&buf, rows)
	if !strings.Contains(buf.String(), "19test9m") {
		t.Fatal("printout incomplete")
	}
}

func TestTableV(t *testing.T) {
	// Use the small designs for speed; the experiment logic is identical.
	s := NewSuite(Config{Scale: 0.003, Designs: []string{"18test10", "18test10m"}})
	rows := tableVOn(s, []string{"18test10m"})
	if len(rows) != len(sched.Schemes) {
		t.Fatalf("rows = %d, want %d", len(rows), len(sched.Schemes))
	}
	for _, r := range rows {
		if r.Total != r.Pattern+r.Maze {
			t.Fatalf("scheme %v: TOTAL mismatch", r.Scheme)
		}
		if r.Score != r.Quality.Score() {
			t.Fatalf("scheme %v: score mismatch", r.Scheme)
		}
	}
	// Schemes must actually change something (maze time or quality).
	allSame := true
	for _, r := range rows[1:] {
		if r.Maze != rows[0].Maze || r.Quality != rows[0].Quality {
			allSame = false
		}
	}
	if allSame {
		t.Fatal("all sorting schemes produced identical results")
	}
	var buf bytes.Buffer
	PrintTableV(&buf, rows)
	if !strings.Contains(buf.String(), "hpwl-asc") {
		t.Fatal("printout missing schemes")
	}
}

func TestFig12(t *testing.T) {
	s := NewSuite(Config{Scale: 0.003, Designs: []string{"18test5m"}})
	res := Fig12(s)
	if len(res.Rows) != 10 {
		t.Fatalf("sweep points = %d, want 10", len(res.Rows))
	}
	for i, r := range res.Rows {
		if r.T2Full != (i+1)*100 {
			t.Fatalf("row %d T2Full = %d", i, r.T2Full)
		}
		if r.Pattern <= 0 || r.Score <= 0 {
			t.Fatalf("row %d empty: %+v", i, r)
		}
	}
	// Pattern runtime is non-decreasing in t2 (more hybrid candidates).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Pattern < res.Rows[i-1].Pattern {
			t.Fatalf("pattern time decreased from t2=%d to t2=%d",
				res.Rows[i-1].T2Full, res.Rows[i].T2Full)
		}
	}
	if res.BaselinePattern <= 0 || res.BaselineScore <= 0 {
		t.Fatal("missing CUGR baselines")
	}
	var buf bytes.Buffer
	PrintFig12(&buf, res)
	if !strings.Contains(buf.String(), "baseline CUGR") {
		t.Fatal("printout missing baseline")
	}
}

func TestTableVI(t *testing.T) {
	s := NewSuite(fastCfg())
	sum := TableVI(s)
	if len(sum.Rows) != 2 {
		t.Fatalf("rows = %d", len(sum.Rows))
	}
	if sum.PatternSpeedup < 1 {
		t.Fatalf("selection should speed up the pattern stage, got %.3fx", sum.PatternSpeedup)
	}
	var buf bytes.Buffer
	PrintTableVI(&buf, sum)
	if !strings.Contains(buf.String(), "selection") {
		t.Fatal("printout incomplete")
	}
}

func TestTableVII(t *testing.T) {
	s := NewSuite(fastCfg())
	sum := TableVII(s)
	if len(sum.Rows) != 2 {
		t.Fatalf("rows = %d", len(sum.Rows))
	}
	if sum.GRLSpeedup <= 1 {
		t.Fatalf("FastGRL speedup %.3fx not above 1", sum.GRLSpeedup)
	}
	for _, r := range sum.Rows {
		if r.CUGRTotal <= 0 || r.GRLTotal <= 0 || r.GRHTotal <= 0 {
			t.Fatalf("empty totals: %+v", r)
		}
	}
	var buf bytes.Buffer
	PrintTableVII(&buf, sum)
	if !strings.Contains(buf.String(), "geo-mean speedup") {
		t.Fatal("printout incomplete")
	}
}

func TestTableVIII(t *testing.T) {
	s := NewSuite(fastCfg())
	sum := TableVIII(s)
	if sum.LKernelSpeedup <= 1 {
		t.Fatalf("L kernel speedup %.3fx not above 1", sum.LKernelSpeedup)
	}
	if sum.HKernelSpeedup > sum.LKernelSpeedup {
		t.Fatal("hybrid kernel should not be faster than the L kernel")
	}
	var buf bytes.Buffer
	PrintTableVIII(&buf, sum)
	if !strings.Contains(buf.String(), "L kernel") {
		t.Fatal("printout incomplete")
	}
}

func TestTableIX(t *testing.T) {
	s := NewSuite(fastCfg())
	sum := TableIX(s)
	if len(sum.Rows) != 2 {
		t.Fatalf("rows = %d", len(sum.Rows))
	}
	for _, r := range sum.Rows {
		if r.GRL.Wirelength == 0 || r.GRH.Wirelength == 0 {
			t.Fatalf("empty quality: %+v", r)
		}
	}
	var buf bytes.Buffer
	PrintTableIX(&buf, sum)
	if !strings.Contains(buf.String(), "shorts improvement") {
		t.Fatal("printout incomplete")
	}
}

func TestTableX(t *testing.T) {
	s := NewSuite(fastCfg())
	rows := TableX(s)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, m := range []struct{ wl, vias int }{
			{r.CUGR.Wirelength, r.CUGR.Vias},
			{r.GRL.Wirelength, r.GRL.Vias},
			{r.GRH.Wirelength, r.GRH.Vias},
		} {
			if m.wl == 0 || m.vias == 0 {
				t.Fatalf("empty DR metrics: %+v", r)
			}
		}
	}
	var buf bytes.Buffer
	PrintTableX(&buf, rows)
	if !strings.Contains(buf.String(), "detailed routing") {
		t.Fatal("printout incomplete")
	}
}

func TestGeoMeanAndMean(t *testing.T) {
	if g := geoMean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Fatalf("geoMean(2,8) = %v, want 4", g)
	}
	if geoMean(nil) != 0 {
		t.Fatal("geoMean(nil) != 0")
	}
	if m := mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean = %v", m)
	}
	if mean(nil) != 0 {
		t.Fatal("mean(nil) != 0")
	}
}

// TestSuiteOutputDeterministic locks the whole-pipeline determinism claim:
// two fresh suites must print byte-identical tables (no wall clock, map
// order, or goroutine scheduling may leak into any reported number).
func TestSuiteOutputDeterministic(t *testing.T) {
	render := func() string {
		s := NewSuite(Config{Scale: 0.003, Designs: []string{"18test5", "18test5m"}})
		var buf bytes.Buffer
		PrintTableVII(&buf, TableVII(s))
		PrintTableVIII(&buf, TableVIII(s))
		PrintTableIX(&buf, TableIX(s))
		PrintTableX(&buf, TableX(s))
		PrintFig3(&buf, Fig3(NewSuite(Config{Scale: 0.003,
			Designs: []string{"19test9", "19test7", "19test9m"}})))
		return buf.String()
	}
	a := render()
	b := render()
	if a != b {
		t.Fatal("experiment output is not byte-identical across runs")
	}
	if len(a) < 500 {
		t.Fatalf("suspiciously short output: %d bytes", len(a))
	}
}
