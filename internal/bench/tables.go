package bench

import (
	"fmt"
	"io"
	"time"

	"fastgr/internal/core"
	"fastgr/internal/design"
	"fastgr/internal/dr"
	"fastgr/internal/metrics"
	"fastgr/internal/sched"
)

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond))
}

// ---------------------------------------------------------------- Table III

// TableIIIRow is one benchmark's statistics.
type TableIIIRow struct {
	Stats design.Stats
}

// TableIII generates the benchmark-statistics table (base designs, as in the
// paper; the "m" twins differ only in layer count).
func TableIII(s *Suite) []TableIIIRow {
	var rows []TableIIIRow
	for _, name := range design.BaseNames() {
		rows = append(rows, TableIIIRow{Stats: design.ComputeStats(s.Design(name))})
	}
	return rows
}

// PrintTableIII writes the table in the paper's layout.
func PrintTableIII(w io.Writer, rows []TableIIIRow) {
	fmt.Fprintf(w, "Table III: ICCAD2019-style benchmarks (scaled synthetic twins)\n")
	fmt.Fprintf(w, "%-10s %10s %10s %12s %8s %10s\n", "design", "#nets", "#pins", "grid", "#layers", "avgHPWL")
	for _, r := range rows {
		st := r.Stats
		fmt.Fprintf(w, "%-10s %10d %10d %6dx%-5d %8d %10.2f\n",
			st.Name, st.Nets, st.Pins, st.GridW, st.GridH, st.Layers, st.AvgHPWL)
	}
	fmt.Fprintf(w, "(each design also has an <name>m twin with 5 metal layers)\n")
}

// ------------------------------------------------------------------- Fig. 3

// Fig3Row is the runtime breakdown of the baseline router on one design.
type Fig3Row struct {
	Design      string
	Pattern     time.Duration
	Maze        time.Duration
	PatternFrac float64
}

// Fig3 reproduces the CUGR runtime breakdown on the three designs the paper
// plots: a PATTERN-dominated one, a balanced one and a MAZE-dominated one.
func Fig3(s *Suite) []Fig3Row {
	var rows []Fig3Row
	for _, name := range []string{"19test9", "19test7", "19test9m"} {
		res := s.Run(name, core.CUGR)
		t := res.Report.Times
		total := t.Pattern + t.Maze
		frac := 0.0
		if total > 0 {
			frac = float64(t.Pattern) / float64(total)
		}
		rows = append(rows, Fig3Row{Design: name, Pattern: t.Pattern, Maze: t.Maze, PatternFrac: frac})
	}
	return rows
}

// PrintFig3 writes the breakdown with proportion bars.
func PrintFig3(w io.Writer, rows []Fig3Row) {
	fmt.Fprintf(w, "Fig. 3: runtime breakdown of the baseline (CUGR) router\n")
	fmt.Fprintf(w, "%-10s %12s %12s %10s\n", "design", "PATTERN(ms)", "MAZE(ms)", "PATTERN%%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12s %12s %9.1f%%  ", r.Design, ms(r.Pattern), ms(r.Maze), r.PatternFrac*100)
		n := int(r.PatternFrac*30 + 0.5)
		for i := 0; i < 30; i++ {
			if i < n {
				fmt.Fprint(w, "#")
			} else {
				fmt.Fprint(w, "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// --------------------------------------------------------------- Table IV/V

// TableVRow is one (scheme, design) sorting-scheme measurement.
type TableVRow struct {
	Scheme  sched.Scheme
	Design  string
	Total   time.Duration
	Pattern time.Duration
	Maze    time.Duration
	Quality metrics.Quality
	Score   float64
}

// TableV evaluates the six inter-net sorting schemes of Table IV, applied in
// the rip-up-and-reroute iterations only, on the two designs the paper uses.
func TableV(s *Suite) []TableVRow {
	return tableVOn(s, []string{"18test10", "18test10m"})
}

func tableVOn(s *Suite, names []string) []TableVRow {
	var rows []TableVRow
	for _, name := range names {
		for _, scheme := range sched.Schemes {
			res := s.RunWithRRRScheme(name, scheme)
			r := res.Report
			rows = append(rows, TableVRow{
				Scheme:  scheme,
				Design:  name,
				Total:   r.Times.Total,
				Pattern: r.Times.Pattern,
				Maze:    r.Times.Maze,
				Quality: r.Quality,
				Score:   r.Score,
			})
		}
	}
	return rows
}

// PrintTableV writes the sorting-scheme comparison.
func PrintTableV(w io.Writer, rows []TableVRow) {
	fmt.Fprintf(w, "Table V: sorting schemes (substituted in rip-up and reroute only)\n")
	fmt.Fprintf(w, "%-10s %-10s %10s %12s %10s %9s %8s %7s %12s\n",
		"design", "scheme", "TOTAL(ms)", "PATTERN(ms)", "MAZE(ms)", "WL", "vias", "shorts", "score")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-10s %10s %12s %10s %9d %8d %7d %12.1f\n",
			r.Design, r.Scheme, ms(r.Total), ms(r.Pattern), ms(r.Maze),
			r.Quality.Wirelength, r.Quality.Vias, r.Quality.Shorts, r.Score)
	}
}

// ------------------------------------------------------------------ Fig. 12

// Fig12Row is one point of the t2 threshold sweep.
type Fig12Row struct {
	T2Full  int // full-scale threshold value (100..1000)
	T2      int // scaled value actually used
	Pattern time.Duration
	Score   float64
}

// Fig12Result is the sweep plus the CUGR baselines (the dashed lines).
type Fig12Result struct {
	Design          string
	Rows            []Fig12Row
	BaselinePattern time.Duration
	BaselineScore   float64
}

// Fig12 sweeps the selection threshold t2 from 100 to 1000 (full-scale
// units) with t1 fixed at 100 on 18test5m, as in the paper.
func Fig12(s *Suite) Fig12Result {
	const name = "18test5m"
	out := Fig12Result{Design: name}
	base := s.Run(name, core.CUGR)
	out.BaselinePattern = base.Report.Times.Pattern
	out.BaselineScore = base.Report.Score
	for full := 100; full <= 1000; full += 100 {
		t2 := s.Cfg.ScaleThreshold(full)
		res := s.RunWithT2(name, t2)
		out.Rows = append(out.Rows, Fig12Row{
			T2Full:  full,
			T2:      t2,
			Pattern: res.Report.Times.Pattern,
			Score:   res.Report.Score,
		})
	}
	return out
}

// PrintFig12 writes the sweep series.
func PrintFig12(w io.Writer, r Fig12Result) {
	fmt.Fprintf(w, "Fig. 12: %s with t1=100, varying t2 (full-scale units)\n", r.Design)
	fmt.Fprintf(w, "%-8s %-8s %14s %14s\n", "t2", "t2(scl)", "PATTERN(ms)", "score")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8d %-8d %14s %14.1f\n", row.T2Full, row.T2, ms(row.Pattern), row.Score)
	}
	fmt.Fprintf(w, "baseline CUGR: PATTERN=%sms score=%.1f\n", ms(r.BaselinePattern), r.BaselineScore)
}

// ----------------------------------------------------------------- Table VI

// TableVIRow compares FastGRH with and without the selection technique.
type TableVIRow struct {
	Design                   string
	PatternSel, PatternNoSel time.Duration
	TotalSel, TotalNoSel     time.Duration
	RipupSel, RipupNoSel     int
	ShortsSel, ShortsNoSel   int
}

// TableVISummary aggregates the ablation the way the paper quotes it.
type TableVISummary struct {
	Rows []TableVIRow
	// PatternSpeedup and TotalSpeedup are geometric means of
	// no-selection/with-selection time ratios (paper: 2.304x and 1.888x).
	PatternSpeedup float64
	TotalSpeedup   float64
	// RipupIncreasePct is the mean increase in nets passed to rip-up caused
	// by selection (paper: +21.1%).
	RipupIncreasePct float64
	// ShortsImprovementPct is the mean shorts improvement from selection
	// (paper: 14.742%).
	ShortsImprovementPct float64
}

// TableVI runs the selection ablation on every design.
func TableVI(s *Suite) TableVISummary {
	var sum TableVISummary
	var pat, tot, rip, sh []float64
	for _, name := range s.Cfg.Designs {
		sel := s.Run(name, core.FastGRH).Report
		nosel := s.RunSelectionOff(name).Report
		row := TableVIRow{
			Design:       name,
			PatternSel:   sel.Times.Pattern,
			PatternNoSel: nosel.Times.Pattern,
			TotalSel:     sel.Times.Total,
			TotalNoSel:   nosel.Times.Total,
			RipupSel:     sel.NetsToRipup,
			RipupNoSel:   nosel.NetsToRipup,
			ShortsSel:    sel.Quality.Shorts,
			ShortsNoSel:  nosel.Quality.Shorts,
		}
		sum.Rows = append(sum.Rows, row)
		if row.PatternSel > 0 {
			pat = append(pat, float64(row.PatternNoSel)/float64(row.PatternSel))
		}
		if row.TotalSel > 0 {
			tot = append(tot, float64(row.TotalNoSel)/float64(row.TotalSel))
		}
		if row.RipupNoSel > 0 {
			rip = append(rip, float64(row.RipupSel-row.RipupNoSel)/float64(row.RipupNoSel)*100)
		}
		sh = append(sh, metrics.ImprovementPct(float64(row.ShortsNoSel), float64(row.ShortsSel)))
	}
	sum.PatternSpeedup = geoMean(pat)
	sum.TotalSpeedup = geoMean(tot)
	sum.RipupIncreasePct = mean(rip)
	sum.ShortsImprovementPct = mean(sh)
	return sum
}

// PrintTableVI writes the ablation study.
func PrintTableVI(w io.Writer, sum TableVISummary) {
	fmt.Fprintf(w, "Table VI: FastGRH selection ablation (sel = with selection)\n")
	fmt.Fprintf(w, "%-10s %12s %12s %11s %11s %8s %8s %8s %8s\n",
		"design", "PAT sel(ms)", "PAT all(ms)", "TOT sel", "TOT all", "rip sel", "rip all", "S sel", "S all")
	for _, r := range sum.Rows {
		fmt.Fprintf(w, "%-10s %12s %12s %11s %11s %8d %8d %8d %8d\n",
			r.Design, ms(r.PatternSel), ms(r.PatternNoSel), ms(r.TotalSel), ms(r.TotalNoSel),
			r.RipupSel, r.RipupNoSel, r.ShortsSel, r.ShortsNoSel)
	}
	fmt.Fprintf(w, "selection pattern speedup %.3fx | total speedup %.3fx | rip-up increase %+.1f%% | shorts improvement %.3f%%\n",
		sum.PatternSpeedup, sum.TotalSpeedup, sum.RipupIncreasePct, sum.ShortsImprovementPct)
}

// ---------------------------------------------------------------- Table VII

// TableVIIRow is one design's overall comparison.
type TableVIIRow struct {
	Design                        string
	CUGRTotal, GRLTotal, GRHTotal time.Duration
	CUGRScore, GRLScore, GRHScore float64
	GRLSpeedup, GRHSpeedup        float64
}

// TableVIISummary is the overall-results table.
type TableVIISummary struct {
	Rows []TableVIIRow
	// Geometric-mean speedups over CUGR (paper: 2.489x and 1.970x).
	GRLSpeedup, GRHSpeedup float64
}

// TableVII runs all three routers on every design.
func TableVII(s *Suite) TableVIISummary {
	var sum TableVIISummary
	var ls, hs []float64
	for _, name := range s.Cfg.Designs {
		c := s.Run(name, core.CUGR).Report
		l := s.Run(name, core.FastGRL).Report
		h := s.Run(name, core.FastGRH).Report
		row := TableVIIRow{
			Design:    name,
			CUGRTotal: c.Times.Total, GRLTotal: l.Times.Total, GRHTotal: h.Times.Total,
			CUGRScore: c.Score, GRLScore: l.Score, GRHScore: h.Score,
		}
		if l.Times.Total > 0 {
			row.GRLSpeedup = float64(c.Times.Total) / float64(l.Times.Total)
			ls = append(ls, row.GRLSpeedup)
		}
		if h.Times.Total > 0 {
			row.GRHSpeedup = float64(c.Times.Total) / float64(h.Times.Total)
			hs = append(hs, row.GRHSpeedup)
		}
		sum.Rows = append(sum.Rows, row)
	}
	sum.GRLSpeedup = geoMean(ls)
	sum.GRHSpeedup = geoMean(hs)
	return sum
}

// PrintTableVII writes the overall results.
func PrintTableVII(w io.Writer, sum TableVIISummary) {
	fmt.Fprintf(w, "Table VII: overall results (TOTAL = PATTERN + MAZE, modeled)\n")
	fmt.Fprintf(w, "%-10s | %10s %12s | %10s %12s %6s | %10s %12s %6s\n",
		"design", "CUGR(ms)", "score", "GRL(ms)", "score", "spd", "GRH(ms)", "score", "spd")
	for _, r := range sum.Rows {
		fmt.Fprintf(w, "%-10s | %10s %12.1f | %10s %12.1f %5.2fx | %10s %12.1f %5.2fx\n",
			r.Design, ms(r.CUGRTotal), r.CUGRScore,
			ms(r.GRLTotal), r.GRLScore, r.GRLSpeedup,
			ms(r.GRHTotal), r.GRHScore, r.GRHSpeedup)
	}
	fmt.Fprintf(w, "geo-mean speedup: FastGRL %.3fx (paper 2.489x), FastGRH %.3fx (paper 1.970x)\n",
		sum.GRLSpeedup, sum.GRHSpeedup)
}

// --------------------------------------------------------------- Table VIII

// TableVIIIRow is one design's stage-level runtime breakdown.
type TableVIIIRow struct {
	Design string
	// Pattern stage: sequential CPU vs the two GPU kernels.
	PatternSeq, PatternGRL, PatternGRH time.Duration
	LKernelSpeedup, HKernelSpeedup     float64
	// Maze stage: batch-barrier vs task-graph models (FastGRL run).
	MazeBatch, MazeTaskGraph time.Duration
	SchedulerSpeedup         float64
	// Nets passed to rip-up per router.
	RipCUGR, RipGRL, RipGRH int
}

// TableVIIISummary is the runtime-breakdown table.
type TableVIIISummary struct {
	Rows []TableVIIIRow
	// Geometric means (paper: 9.324x L kernel, 2.070x hybrid kernel,
	// 2.501x scheduler).
	LKernelSpeedup, HKernelSpeedup, SchedulerSpeedup float64
	// RipReductionGRLPct / RipReductionGRHPct: mean reduction of nets to
	// rip up vs CUGR (paper: 2.4% and 23.3%).
	RipReductionGRLPct, RipReductionGRHPct float64
}

// TableVIII computes the per-stage breakdown.
func TableVIII(s *Suite) TableVIIISummary {
	var sum TableVIIISummary
	var lk, hk, sk, rl, rh []float64
	for _, name := range s.Cfg.Designs {
		c := s.Run(name, core.CUGR).Report
		l := s.Run(name, core.FastGRL).Report
		h := s.Run(name, core.FastGRH).Report
		row := TableVIIIRow{
			Design:        name,
			PatternSeq:    c.PatternSeqTime,
			PatternGRL:    l.Times.Pattern,
			PatternGRH:    h.Times.Pattern,
			MazeBatch:     l.MazeBatchTime,
			MazeTaskGraph: l.MazeTaskGraphTime,
			RipCUGR:       c.NetsToRipup,
			RipGRL:        l.NetsToRipup,
			RipGRH:        h.NetsToRipup,
		}
		if l.Times.Pattern > 0 {
			row.LKernelSpeedup = float64(c.PatternSeqTime) / float64(l.Times.Pattern)
			lk = append(lk, row.LKernelSpeedup)
		}
		if h.Times.Pattern > 0 {
			// As in the paper, the hybrid kernel's acceleration is measured
			// against the sequentially executed (L-shape) strategy; it is
			// lower than the L kernel's because the hybrid kernel evaluates
			// (M+N)xLxLxL candidates instead of LxL (Section IV-E).
			row.HKernelSpeedup = float64(c.PatternSeqTime) / float64(h.Times.Pattern)
			hk = append(hk, row.HKernelSpeedup)
		}
		if row.MazeTaskGraph > 0 {
			row.SchedulerSpeedup = float64(row.MazeBatch) / float64(row.MazeTaskGraph)
			sk = append(sk, row.SchedulerSpeedup)
		}
		if row.RipCUGR > 0 {
			rl = append(rl, float64(row.RipCUGR-row.RipGRL)/float64(row.RipCUGR)*100)
			rh = append(rh, float64(row.RipCUGR-row.RipGRH)/float64(row.RipCUGR)*100)
		}
		sum.Rows = append(sum.Rows, row)
	}
	sum.LKernelSpeedup = geoMean(lk)
	sum.HKernelSpeedup = geoMean(hk)
	sum.SchedulerSpeedup = geoMean(sk)
	sum.RipReductionGRLPct = mean(rl)
	sum.RipReductionGRHPct = mean(rh)
	return sum
}

// PrintTableVIII writes the stage breakdown.
func PrintTableVIII(w io.Writer, sum TableVIIISummary) {
	fmt.Fprintf(w, "Table VIII: runtime breakdown (PATTERN kernels and MAZE scheduling)\n")
	fmt.Fprintf(w, "%-10s %10s %9s %6s %9s %6s | %9s %9s %6s | %6s %6s %6s\n",
		"design", "seq(ms)", "GRL(ms)", "spd", "GRH(ms)", "spd", "batch", "taskg", "spd", "ripC", "ripL", "ripH")
	for _, r := range sum.Rows {
		fmt.Fprintf(w, "%-10s %10s %9s %5.1fx %9s %5.1fx | %9s %9s %5.2fx | %6d %6d %6d\n",
			r.Design, ms(r.PatternSeq), ms(r.PatternGRL), r.LKernelSpeedup,
			ms(r.PatternGRH), r.HKernelSpeedup,
			ms(r.MazeBatch), ms(r.MazeTaskGraph), r.SchedulerSpeedup,
			r.RipCUGR, r.RipGRL, r.RipGRH)
	}
	fmt.Fprintf(w, "geo-mean: L kernel %.3fx (paper 9.324x) | hybrid kernel %.3fx (paper 2.070x) | scheduler %.3fx (paper 2.501x)\n",
		sum.LKernelSpeedup, sum.HKernelSpeedup, sum.SchedulerSpeedup)
	fmt.Fprintf(w, "nets-to-ripup reduction vs CUGR: FastGRL %.1f%% (paper 2.4%%), FastGRH %.1f%% (paper 23.3%%)\n",
		sum.RipReductionGRLPct, sum.RipReductionGRHPct)
}

// ----------------------------------------------------------------- Table IX

// TableIXRow compares solution quality of the two FastGR variants.
type TableIXRow struct {
	Design   string
	GRL, GRH metrics.Quality
	GRLScore float64
	GRHScore float64
}

// TableIXSummary is the solution-quality table.
type TableIXSummary struct {
	Rows []TableIXRow
	// ShortsImprovementPct is the mean improvement of FastGRH over FastGRL
	// in shorts (paper: 27.855%).
	ShortsImprovementPct float64
}

// TableIX compares FastGRL and FastGRH quality on every design.
func TableIX(s *Suite) TableIXSummary {
	var sum TableIXSummary
	var imp []float64
	for _, name := range s.Cfg.Designs {
		l := s.Run(name, core.FastGRL).Report
		h := s.Run(name, core.FastGRH).Report
		sum.Rows = append(sum.Rows, TableIXRow{
			Design: name,
			GRL:    l.Quality, GRH: h.Quality,
			GRLScore: l.Score, GRHScore: h.Score,
		})
		imp = append(imp, metrics.ImprovementPct(float64(l.Quality.Shorts), float64(h.Quality.Shorts)))
	}
	sum.ShortsImprovementPct = mean(imp)
	return sum
}

// PrintTableIX writes the quality comparison.
func PrintTableIX(w io.Writer, sum TableIXSummary) {
	fmt.Fprintf(w, "Table IX: solution quality (FastGRL vs FastGRH)\n")
	fmt.Fprintf(w, "%-10s | %9s %8s %7s %12s | %9s %8s %7s %12s\n",
		"design", "L WL", "L vias", "L S", "L score", "H WL", "H vias", "H S", "H score")
	for _, r := range sum.Rows {
		fmt.Fprintf(w, "%-10s | %9d %8d %7d %12.1f | %9d %8d %7d %12.1f\n",
			r.Design, r.GRL.Wirelength, r.GRL.Vias, r.GRL.Shorts, r.GRLScore,
			r.GRH.Wirelength, r.GRH.Vias, r.GRH.Shorts, r.GRHScore)
	}
	fmt.Fprintf(w, "mean shorts improvement of FastGRH over FastGRL: %.3f%% (paper 27.855%%)\n",
		sum.ShortsImprovementPct)
}

// ------------------------------------------------------------------ Table X

// TableXRow is the detailed-routing evaluation of one design under all three
// routers' guides.
type TableXRow struct {
	Design         string
	CUGR, GRL, GRH dr.Metrics
}

// TableX evaluates detailed-routing quality under each router's guides.
func TableX(s *Suite) []TableXRow {
	var rows []TableXRow
	for _, name := range s.Cfg.Designs {
		c := s.Run(name, core.CUGR)
		l := s.Run(name, core.FastGRL)
		h := s.Run(name, core.FastGRH)
		rows = append(rows, TableXRow{
			Design: name,
			CUGR:   dr.Evaluate(c.Grid, c.Routes),
			GRL:    dr.Evaluate(l.Grid, l.Routes),
			GRH:    dr.Evaluate(h.Grid, h.Routes),
		})
	}
	return rows
}

// PrintTableX writes the post-detailed-routing comparison.
func PrintTableX(w io.Writer, rows []TableXRow) {
	fmt.Fprintf(w, "Table X: quality after detailed routing (track-assignment evaluator)\n")
	fmt.Fprintf(w, "%-10s | %-28s | %-28s | %-28s\n", "design",
		"CUGR  WL/vias/shorts/spc", "FastGRL  WL/vias/shorts/spc", "FastGRH  WL/vias/shorts/spc")
	f := func(m dr.Metrics) string {
		return fmt.Sprintf("%8d %7d %5d %5d", m.Wirelength, m.Vias, m.Shorts, m.Spacing)
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s | %s | %s | %s\n", r.Design, f(r.CUGR), f(r.GRL), f(r.GRH))
	}
}
