package bench

import (
	"fmt"
	"io"

	"fastgr/internal/core"
	"fastgr/internal/drcu"
)

// TableXFineRow is the fine-grid detailed-routing evaluation of one design
// under all three routers' guides — the Dr.CU-style counterpart of Table X
// (package dr provides the fast track-assignment estimate; package drcu
// actually routes on a refined grid).
type TableXFineRow struct {
	Design         string
	CUGR, GRL, GRH drcu.Metrics
}

// TableXFine detail-routes every design's guides with the fine-grid router.
func TableXFine(s *Suite) []TableXFineRow {
	cfg := drcu.DefaultConfig()
	var rows []TableXFineRow
	for _, name := range s.Cfg.Designs {
		rows = append(rows, TableXFineRow{
			Design: name,
			CUGR:   drcu.Evaluate(s.Run(name, core.CUGR), cfg),
			GRL:    drcu.Evaluate(s.Run(name, core.FastGRL), cfg),
			GRH:    drcu.Evaluate(s.Run(name, core.FastGRH), cfg),
		})
	}
	return rows
}

// PrintTableXFine writes the fine-grid detailed-routing comparison.
func PrintTableXFine(w io.Writer, rows []TableXFineRow) {
	fmt.Fprintf(w, "Table X (fine): quality after Dr.CU-style fine-grid detailed routing\n")
	fmt.Fprintf(w, "%-10s | %-30s | %-30s | %-30s\n", "design",
		"CUGR  WL/vias/shorts/spc", "FastGRL  WL/vias/shorts/spc", "FastGRH  WL/vias/shorts/spc")
	f := func(m drcu.Metrics) string {
		return fmt.Sprintf("%9d %8d %5d %5d", m.Wirelength, m.Vias, m.Shorts, m.Spacing)
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s | %s | %s | %s\n", r.Design, f(r.CUGR), f(r.GRL), f(r.GRH))
		if u := r.CUGR.Unrouted + r.GRL.Unrouted + r.GRH.Unrouted; u > 0 {
			fmt.Fprintf(w, "%-10s   (%d nets unroutable within guides)\n", "", u)
		}
	}
}
