package core

import (
	"context"
	"fmt"
)

// Cancellation. RouteContext threads a context through the pipeline,
// checked at coordinator points only — the single-threaded instants
// between parallel sections (a pattern batch boundary, the top of a
// rip-up iteration, a sharded stitch pass). Workers never observe the
// context, so a run that completes is bit-identical whether or not a
// context was attached; a run that is cancelled stops at the next
// checkpoint with every committed route intact and the partial Report
// preserved in the returned Result.

// CancelError reports a run aborted at a coordinator checkpoint by its
// context (cancellation or deadline). The Result returned alongside it
// holds the partial report: every stage and iteration that committed
// before the checkpoint, with quality and totals folded over the routes
// committed so far.
type CancelError struct {
	// Stage is the pipeline stage whose checkpoint observed the
	// cancellation: "plan", "pattern", "rrr" or "stitch".
	Stage string
	// Iter is the rip-up iteration about to start when the run stopped;
	// -1 outside the rip-up stage.
	Iter int
	// Cause is the context's error: context.Canceled or
	// context.DeadlineExceeded.
	Cause error
}

func (e *CancelError) Error() string {
	if e.Iter >= 0 {
		return fmt.Sprintf("core: run cancelled at %s iteration %d: %v", e.Stage, e.Iter, e.Cause)
	}
	return fmt.Sprintf("core: run cancelled at %s stage: %v", e.Stage, e.Cause)
}

func (e *CancelError) Unwrap() error { return e.Cause }

// checkpoint polls the run's context at a coordinator point. It never
// blocks: a live context costs one channel poll, and the nil context
// (Route without a context) costs one comparison, so attaching a
// context cannot perturb a completed run.
func (r *runner) checkpoint(stage string, iter int) error {
	if r.ctx == nil {
		return nil
	}
	select {
	case <-r.ctx.Done():
		return &CancelError{Stage: stage, Iter: iter, Cause: context.Cause(r.ctx)}
	default:
		return nil
	}
}
