package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"fastgr/internal/design"
	"fastgr/internal/fault"
	"fastgr/internal/obs"
)

// chaosProbs is the main sweep's injection table: rich degrade paths
// (task exhaustion ~1.6% per task at p=0.25^3, kernel fallbacks, solve
// retries, budget trips) without firing on the plan/scan sites, whose
// failures abort the whole run — the prob-1 abort path gets its own
// dedicated test below.
func chaosProbs() map[string]float64 {
	return map[string]float64{
		fault.SiteTask:   0.25,
		fault.SiteKernel: 0.15,
		fault.SiteSolve:  0.02,
		fault.SiteBudget: 0.05,
	}
}

// chaosRoute runs one variant under injection with a fresh registry and
// returns the result plus the fault counter snapshot.
func chaosRoute(t *testing.T, v Variant, seed int64, workers int) (*Result, obs.Snapshot) {
	t.Helper()
	d := design.MustGenerate("18test5m", testScale)
	opt := DefaultOptions(v)
	opt.T1, opt.T2 = 4, 40
	opt.ExecWorkers = workers
	reg := obs.NewRegistry()
	opt.Obs = &obs.Observer{Metrics: reg}
	opt.Fault = &fault.Options{Seed: seed, Probs: chaosProbs()}
	res, err := Route(d, opt)
	if err != nil {
		t.Fatalf("%v seed=%d workers=%d: chaos run aborted: %v", v, seed, workers, err)
	}
	return res, reg.Snapshot()
}

// TestChaosContainment is the tentpole acceptance suite: every variant ×
// chaos seed × worker count must (a) survive injection without an
// uncontained panic, (b) satisfy the fault accounting equation, and (c)
// produce a bit-identical Report and routed geometry at every worker
// count. Runs under -race in tier1.
func TestChaosContainment(t *testing.T) {
	for _, v := range []Variant{CUGR, FastGRL, FastGRH} {
		for _, seed := range []int64{3, 11} {
			t.Run(fmt.Sprintf("%v/seed=%d", v, seed), func(t *testing.T) {
				type outcome struct {
					rep  Report
					snap obs.Snapshot
				}
				var ref *outcome
				anyInjected := false
				for _, workers := range []int{1, 2, 8} {
					res, snap := chaosRoute(t, v, seed, workers)
					inj := snap.Counters[obs.MFaultInjected]
					rec := snap.Counters[obs.MFaultRecovered]
					deg := snap.Counters[obs.MFaultDegraded]
					if inj != rec+deg {
						t.Fatalf("workers=%d: accounting equation violated: injected=%d recovered=%d degraded=%d",
							workers, inj, rec, deg)
					}
					if inj > 0 {
						anyInjected = true
					}
					o := &outcome{rep: res.Report, snap: snap}
					if ref == nil {
						ref = o
						continue
					}
					// The full Report — quality, modeled times, fault stats —
					// must be bit-identical across worker counts, host
					// measurements (wall clocks, heap high-water) aside.
					a, b := ref.rep, o.rep
					a.Times.PlanWall, b.Times.PlanWall = 0, 0
					a.Times.PatternWall, b.Times.PatternWall = 0, 0
					a.Times.MazeWall, b.Times.MazeWall = 0, 0
					a.Times.WallTotal, b.Times.WallTotal = 0, 0
					a.PeakHeapBytes, b.PeakHeapBytes = 0, 0
					if !reflect.DeepEqual(a, b) {
						t.Fatalf("report differs between 1 and %d workers under chaos:\n%+v\nvs\n%+v",
							workers, a, b)
					}
					if ref.snap.Counters[obs.MFaultInjected] != inj ||
						ref.snap.Counters[obs.MFaultDegraded] != deg ||
						ref.snap.Counters[obs.MFaultRecovered] != rec {
						t.Fatalf("fault counters differ between 1 and %d workers: %v vs inj=%d rec=%d deg=%d",
							workers, ref.snap.Counters, inj, rec, deg)
					}
				}
				if !anyInjected {
					t.Fatalf("%v seed=%d: chaos table never fired — the suite is vacuous", v, seed)
				}
			})
		}
	}
}

// TestChaosGeometryIdenticalAcrossWorkers pins the routed geometry (not
// just the Report) for one chaos configuration across worker counts.
func TestChaosGeometryIdenticalAcrossWorkers(t *testing.T) {
	ref, _ := chaosRoute(t, FastGRH, 3, 1)
	for _, workers := range []int{2, 8} {
		got, _ := chaosRoute(t, FastGRH, 3, workers)
		for _, n := range ref.Design.Nets {
			a, b := ref.Routes[n.ID], got.Routes[n.ID]
			if (a == nil) != (b == nil) {
				t.Fatalf("workers=%d: net %s routed on one side only", workers, n.Name)
			}
			if a != nil && !reflect.DeepEqual(a.Paths, b.Paths) {
				t.Fatalf("workers=%d: net %s geometry differs under chaos", workers, n.Name)
			}
		}
	}
}

// TestChaosZeroProbabilityByteIdentical: arming the containment layer
// with a zero-probability table must be byte-identical to not arming it
// at all — the production no-cost guarantee, report and geometry both.
func TestChaosZeroProbabilityByteIdentical(t *testing.T) {
	for _, v := range []Variant{CUGR, FastGRH} {
		plain := routeVariant(t, "18test5m", v, nil)
		armed := routeVariant(t, "18test5m", v, func(o *Options) {
			o.Fault = &fault.Options{Seed: 123, Probs: fault.UniformProbs(0)}
		})
		a, b := plain.Report, armed.Report
		a.Times.PlanWall, b.Times.PlanWall = 0, 0
		a.Times.PatternWall, b.Times.PatternWall = 0, 0
		a.Times.MazeWall, b.Times.MazeWall = 0, 0
		a.Times.WallTotal, b.Times.WallTotal = 0, 0
		a.PeakHeapBytes, b.PeakHeapBytes = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: zero-probability armed report differs from unarmed:\n%+v\nvs\n%+v", v, a, b)
		}
		for _, n := range plain.Design.Nets {
			if !reflect.DeepEqual(plain.Routes[n.ID].Paths, armed.Routes[n.ID].Paths) {
				t.Fatalf("%v: net %s geometry differs with zero-probability armed layer", v, n.Name)
			}
		}
		if b.Fault != (FaultStats{}) {
			t.Fatalf("%v: zero-probability run recorded fault stats: %+v", v, b.Fault)
		}
	}
}

// TestChaosPlanSiteSurfacesWorkError: a plan-site failure cannot degrade
// (every stage needs every tree), so it must surface as a typed
// WorkError — identically at every worker count.
func TestChaosPlanSiteSurfacesWorkError(t *testing.T) {
	d := design.MustGenerate("18test5m", testScale)
	var refMsg string
	var refCounts [3]int64
	for _, workers := range []int{1, 2, 8} {
		opt := DefaultOptions(CUGR)
		opt.T1, opt.T2 = 4, 40
		opt.ExecWorkers = workers
		reg := obs.NewRegistry()
		opt.Obs = &obs.Observer{Metrics: reg}
		opt.Fault = &fault.Options{Seed: 1, Probs: map[string]float64{fault.SitePlan: 1}}
		_, err := Route(d, opt)
		var we *fault.WorkError
		if !errors.As(err, &we) {
			t.Fatalf("workers=%d: want *WorkError, got %v", workers, err)
		}
		if we.Site != fault.SitePlan || we.Unit != 0 || !we.Contained {
			t.Fatalf("workers=%d: unexpected WorkError %+v", workers, we)
		}
		s := reg.Snapshot()
		counts := [3]int64{
			s.Counters[obs.MFaultInjected],
			s.Counters[obs.MFaultRecovered],
			s.Counters[obs.MFaultDegraded],
		}
		// Probability 1 on every attempt: n nets × 3 attempts injected,
		// 2n recovered, n degraded.
		n := int64(len(d.Nets))
		if counts != [3]int64{3 * n, 2 * n, n} {
			t.Fatalf("workers=%d: counters %v, want [%d %d %d]", workers, counts, 3*n, 2*n, n)
		}
		if workers == 1 {
			refMsg, refCounts = err.Error(), counts
			continue
		}
		if err.Error() != refMsg || counts != refCounts {
			t.Fatalf("workers=%d: abort differs from 1 worker: %q vs %q", workers, err.Error(), refMsg)
		}
	}
}

// TestMazeBudgetFallbackKeepsPatternRoute: a real (non-injected) budget
// ceiling makes over-budget nets keep a committed route and records the
// fallback; the run still completes and stays deterministic.
func TestMazeBudgetFallbackKeepsPatternRoute(t *testing.T) {
	run := func(workers int) *Result {
		return routeVariant(t, "18test5m", FastGRH, func(o *Options) {
			o.MazeBudget = 30 // tight: most rip-up searches trip
			o.ExecWorkers = workers
		})
	}
	res := run(4)
	if res.Report.Fault.BudgetFallbacks == 0 {
		t.Fatal("a 30-expansion budget should trip on this design")
	}
	for _, n := range res.Design.Nets {
		if res.Routes[n.ID] == nil {
			t.Fatalf("net %s lost its route to a budget fallback", n.Name)
		}
	}
	ref := run(1)
	a, b := ref.Report, res.Report
	a.Times.PlanWall, b.Times.PlanWall = 0, 0
	a.Times.PatternWall, b.Times.PatternWall = 0, 0
	a.Times.MazeWall, b.Times.MazeWall = 0, 0
	a.Times.WallTotal, b.Times.WallTotal = 0, 0
	a.PeakHeapBytes, b.PeakHeapBytes = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("budgeted report differs across worker counts:\n%+v\nvs\n%+v", a, b)
	}
}
