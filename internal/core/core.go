// Package core assembles the paper's global-routing framework (Fig. 5):
// pattern routing planning (Steiner trees + edge shifting + net ordering +
// Algorithm-1 batching), the pattern routing stage (CPU-sequential for the
// CUGR baseline, batched GPU kernels for FastGR), and the rip-up-and-reroute
// iterations (batch-barrier parallel maze routing for the baseline,
// task-graph-scheduled maze routing for FastGR).
//
// Three router variants are provided, matching the evaluation:
//
//	CUGR     — sequential L-shape pattern routing + batch-barrier RRR.
//	FastGRL  — GPU L-shape kernel + task-graph scheduler (runtime-oriented).
//	FastGRH  — GPU hybrid-shape kernel with selection + task-graph scheduler
//	           (quality-oriented).
//
// Reported stage times come from the deterministic models described in
// DESIGN.md (simulated GPU clock, 16-worker makespan, op-count CPU time);
// wall-clock on the host is recorded alongside.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"fastgr/internal/design"
	"fastgr/internal/fault"
	"fastgr/internal/gpu"
	"fastgr/internal/grid"
	"fastgr/internal/maze"
	"fastgr/internal/metrics"
	"fastgr/internal/obs"
	"fastgr/internal/par"
	"fastgr/internal/pattern"
	"fastgr/internal/patterngpu"
	"fastgr/internal/route"
	"fastgr/internal/sched"
	"fastgr/internal/shard"
	"fastgr/internal/stt"
	"fastgr/internal/taskflow"
)

// Variant selects the router configuration.
type Variant int

const (
	CUGR Variant = iota
	FastGRL
	FastGRH
)

func (v Variant) String() string {
	switch v {
	case CUGR:
		return "CUGR"
	case FastGRL:
		return "FastGRL"
	default:
		return "FastGRH"
	}
}

// Options configures one routing run.
type Options struct {
	Variant Variant
	// Scheme orders nets in both stages; the paper settles on ascending
	// bounding-box half perimeter (Section IV-C).
	Scheme sched.Scheme
	// RRRSchemeOverride, when non-nil, replaces Scheme in the rip-up and
	// reroute iterations only — the Table V experiment.
	RRRSchemeOverride *sched.Scheme
	// RRRIters is the number of rip-up-and-reroute iterations (paper: 3).
	RRRIters int
	// T1, T2 are the selection thresholds on two-pin-net HPWL (paper: 100
	// and 500 at full scale; experiments scale them with the design).
	T1, T2 int
	// SelectionOff applies the hybrid kernel to every two-pin net — the
	// Table VI ablation.
	SelectionOff bool
	// NoEdgeShift disables the congestion-aware edge shifting of the
	// planning stage (an ablation of Fig. 5's planning box).
	NoEdgeShift bool
	// PatternModeOverride, when non-nil, replaces the variant's pattern
	// kernel — e.g. pattern.Staircase to exercise the three-bend extension
	// of Section IV-F on the full pipeline.
	PatternModeOverride *pattern.Mode
	// HistoryRRR enables negotiated-congestion history (Archer-style, the
	// paper's reference [22]): chronically overflowed edges accumulate a
	// persistent penalty across rip-up iterations.
	HistoryRRR bool
	// HistoryBump is the per-overflow-unit history increment added after
	// each iteration (only with HistoryRRR).
	HistoryBump float64
	// MazeMargin inflates each net's maze search window (and its conflict
	// footprint) beyond its bounding box.
	MazeMargin int
	// MazeAlgorithm selects the rip-up search strategy. The zero value is
	// maze.AStar; maze.Dijkstra is the unguided baseline. Routed geometry
	// is bit-identical either way (the A* bound is strictly admissible
	// under the default cost parameters) — only expansion counts, and with
	// them the modeled maze times, differ.
	MazeAlgorithm maze.Algorithm
	// Workers is the modeled CPU worker count for parallel-RRR makespans
	// (paper host: 16 cores).
	Workers int
	// ExecWorkers is the number of real goroutines used to execute the
	// pipeline's parallel sections — planning, batch pattern solving, the
	// overflow scan and the rip-up task graph. Functional parallelism only:
	// results and all reported (modeled) times are bit-identical for every
	// worker count; only the wall-clock columns change.
	ExecWorkers int
	// Device is the simulated GPU; CPU models the host.
	Device gpu.Spec
	CPU    gpu.CPUModel
	// MazeNsPerExpansion converts maze search work (node expansions) into
	// modeled time; heap-based Dijkstra costs tens of ns per settled node.
	MazeNsPerExpansion float64
	// Obs, when non-nil, attaches the flight recorder (internal/obs):
	// stage/batch/iteration/task spans and the pipeline metrics registry.
	// Observability is passive — routed geometry, modeled times and quality
	// are bit-identical with it on, off, or at any ExecWorkers count; the
	// determinism suite runs with tracing enabled to enforce that.
	Obs *obs.Observer
	// Journal, when non-nil, receives the structured run journal: one
	// "stage" event per stage boundary and one "iter" event per rip-up
	// iteration (see journal.go for the payloads). Passive like Obs, and
	// crash-safe: the journal republishes atomically at every event, so
	// a run killed mid-flight leaves a complete, parseable trajectory.
	Journal *obs.Journal
	// Containment, when non-nil, is a pre-armed fault containment layer
	// the run uses instead of building one from Fault. Callers that need
	// the layer's per-site accounting after the run (fault.Snapshot —
	// the daemon reports it per job) construct it themselves and pass it
	// here; Fault is ignored when Containment is set.
	Containment *fault.Containment
	// Fault, when non-nil, arms the fault containment layer (internal/fault)
	// around every parallel work unit: panics and injected faults are
	// retried, exhausted units degrade (a failed reroute keeps its pattern
	// route, a failed kernel batch falls back to the CPU path) and the
	// Report's FaultStats records the damage. nil runs the uncontained
	// fast paths — bit-identical to builds predating the layer. For a
	// fixed (Fault.Seed, Fault.Probs, MazeBudget), results remain
	// bit-identical at every ExecWorkers count.
	Fault *fault.Options
	// MazeBudget caps the expansions one rip-up maze search may spend;
	// a net that exceeds it keeps its pattern route (recorded as a budget
	// fallback). 0 is unlimited. Works with or without Fault.
	MazeBudget int64
	// Shards selects the sharded spatial pipeline (internal/shard): the
	// grid is bisected into leaf regions on pin density, intra-leaf nets
	// route against leaf-windowed cost caches with up to Shards leaf
	// groups running concurrently, and boundary nets are split at the
	// cuts, stitched, and reconciled at coordinator points. Routed output
	// is bit-identical for every Shards >= 1 (the cut tree never depends
	// on the count); 0, the default, is the monolithic pipeline,
	// bit-identical to builds predating sharding. Sharded and monolithic
	// outputs may differ: the monolithic pattern stage reads segment
	// costs through full-grid prefix sums, whose rounding a windowed
	// cache deliberately avoids.
	Shards int
	// HeapGC forces a garbage collection before each peak-heap sample so
	// PeakHeapBytes measures live bytes, not allocator slack. Benchmarks
	// set it; it changes no routed result, only wall-clock.
	HeapGC bool
}

// FaultStats aggregates the containment outcomes of one run. The counts
// come from the deterministic control flow (not from metric reads), so
// they are part of the bit-identical Report contract.
type FaultStats struct {
	// FailedNets counts rip-up tasks whose containment attempts were
	// exhausted; the nets keep their previous committed route.
	FailedNets int
	// SkippedNets counts rip-up tasks never run because a task-graph
	// dependency failed (FastGR scheduling only; the batch-barrier
	// baseline has no dependents to skip).
	SkippedNets int
	// KernelFallbacks counts pattern-stage batches degraded to the CPU
	// baseline path.
	KernelFallbacks int
	// BudgetFallbacks counts rip-up searches abandoned over budget
	// (configured or injected); those nets keep their pattern route.
	BudgetFallbacks int
}

// DefaultOptions returns the paper-faithful configuration for a variant.
func DefaultOptions(v Variant) Options {
	return Options{
		Variant:            v,
		Scheme:             sched.HPWLAsc,
		RRRIters:           3,
		T1:                 100,
		T2:                 500,
		MazeMargin:         4,
		Workers:            16,
		ExecWorkers:        4,
		Device:             gpu.RTX3090(),
		CPU:                gpu.XeonGold6226R(),
		MazeNsPerExpansion: 45,
	}
}

// StageTimes reports stage durations on two deliberately separate clocks:
//
//   - Pattern, Maze and Total are MODELED times — the simulated GPU kernel
//     clock, the P-worker makespan models and the expansion cost model of
//     DESIGN.md. Total is Pattern + Maze only, the two stages the paper's
//     runtime tables compare (the planning stage is identical across
//     variants), and is a pure function of the design and options.
//   - The *Wall fields are HOST wall-clock measurements of this process,
//     and WallTotal = PlanWall + PatternWall + MazeWall covers the whole
//     pipeline including planning. Wall times vary run to run and with
//     ExecWorkers; they must never be compared against, or summed into,
//     the modeled columns.
type StageTimes struct {
	Pattern time.Duration // modeled pattern routing stage
	Maze    time.Duration // modeled rip-up-and-reroute iterations
	Total   time.Duration // modeled Pattern + Maze (excludes planning)

	PlanWall    time.Duration
	PatternWall time.Duration
	MazeWall    time.Duration
	WallTotal   time.Duration // wall Plan + Pattern + Maze
}

// IterStats records one rip-up-and-reroute iteration.
type IterStats struct {
	Nets          int           // nets ripped up in this iteration
	Expansions    int64         // total maze expansions
	TaskGraphTime time.Duration // modeled DAG-schedule makespan
	BatchTime     time.Duration // modeled batch-barrier makespan
	ConflictEdges int
	// Quality and Score snapshot the eq.-15 metrics after this iteration
	// committed — the per-iteration trajectory of how rip-up trades
	// wirelength and vias for shorts. Deterministic like every other
	// reported metric (the snapshot is a pure function of grid state).
	Quality metrics.Quality
	Score   float64
	// FailedNets / SkippedNets / BudgetFallbacks are this iteration's
	// containment outcomes (see FaultStats); all zero without faults.
	FailedNets      int
	SkippedNets     int
	BudgetFallbacks int
}

// Report is the measurable outcome of one routing run.
type Report struct {
	Design  string
	Variant string

	Quality metrics.Quality
	Score   float64

	Times StageTimes

	// Pattern stage accounting.
	PatternBatches int
	PatternSeqOps  int64         // total DP work (sequential-CPU currency)
	PatternSeqTime time.Duration // modeled single-core time of that work
	HybridEdges    int           // two-pin nets routed by the hybrid kernel
	TotalEdges     int

	// PatternQuality and PatternScore snapshot eq. 15 right after the
	// pattern stage — the starting point of the RRR quality trajectory
	// recorded per iteration in RRR below.
	PatternQuality metrics.Quality
	PatternScore   float64

	// NetsToRipup is the violating-net count right after the pattern stage.
	NetsToRipup int
	RRR         []IterStats
	// MazeTaskGraphTime / MazeBatchTime sum both scheduling models over all
	// iterations, regardless of variant, for Table VIII's scheduler column.
	MazeTaskGraphTime time.Duration
	MazeBatchTime     time.Duration

	// Fault aggregates containment outcomes across the run; all zero in
	// an unfaulted, unbudgeted run.
	Fault FaultStats

	// Sharded-pipeline accounting; all zero when Shards == 0.
	Shards      int // Options.Shards as run
	ShardLeaves int // leaf regions in the cut tree
	// BoundaryNets counts nets whose Steiner tree straddles a cut and was
	// split into per-leaf fragments.
	BoundaryNets int
	// BoundaryReroutes counts boundary nets rerouted whole by the
	// reconciliation pass after stitching left them overflowed.
	BoundaryReroutes int
	// ReconcileTime is the modeled cost of those reconciliation searches
	// (expansions x MazeNsPerExpansion); it is included in Times.Maze.
	ReconcileTime time.Duration

	// PeakHeapBytes is the high-water HeapAlloc observed at stage
	// boundaries (after planning, after the pattern stage, after each
	// rip-up iteration, at finish). A host measurement like the *Wall
	// fields: it varies run to run and is excluded from the
	// bit-identical Report contract.
	PeakHeapBytes uint64
}

// Result bundles the report with the routed state for downstream consumers
// (detailed-routing evaluation, guide dumps, congestion maps).
type Result struct {
	Report Report
	Grid   *grid.Graph
	Design *design.Design
	Trees  []*stt.Tree       // by net ID
	Routes []*route.NetRoute // by net ID
}

// Route runs the full two-stage flow on a design.
func Route(d *design.Design, opt Options) (*Result, error) {
	return RouteContext(context.Background(), d, opt)
}

// RouteContext is Route under a context. The context is polled at
// coordinator checkpoints only (see cancel.go), so attaching one never
// changes a completed run's output; when it fires, RouteContext returns
// a *CancelError together with a non-nil Result holding the partial
// report and the routes committed so far.
func RouteContext(ctx context.Context, d *design.Design, opt Options) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if opt.RRRIters < 0 || opt.Workers < 0 || opt.Shards < 0 {
		return nil, fmt.Errorf("core: negative option")
	}
	r := &runner{ctx: ctx, d: d, opt: opt}
	return r.run()
}

type runner struct {
	ctx context.Context
	d   *design.Design
	opt Options

	g      *grid.Graph
	pool   *par.Pool
	fc     *fault.Containment
	trees  []*stt.Tree
	routes []*route.NetRoute
	rep    Report

	// jHits/jMisses are the cost-cache counter watermarks from the last
	// journaled iteration (see journalIter).
	jHits, jMisses int64

	// Sharded-pipeline state (see shardpipe.go); nil/empty when Shards == 0.
	shplan    *shard.Plan
	intraLeaf []int          // by net ID: containing leaf ordinal, -1 for boundary nets
	splits    []*shard.Split // by net ID: fragment decomposition of boundary nets
}

func (r *runner) run() (*Result, error) {
	r.g = grid.NewFromDesign(r.d)
	r.g.SetObserver(r.opt.Obs)
	r.pool = par.NewPool(r.opt.ExecWorkers)
	r.pool.SetObserver(r.opt.Obs)
	if r.opt.Containment != nil {
		r.fc = r.opt.Containment
		r.pool.SetFault(r.fc)
	} else if r.opt.Fault != nil {
		r.fc = fault.New(*r.opt.Fault, r.opt.Obs)
		r.pool.SetFault(r.fc)
	}
	r.rep.Design = r.d.Name
	r.rep.Variant = r.opt.Variant.String()

	err := r.stages()
	if err != nil {
		var ce *CancelError
		if !errors.As(err, &ce) {
			return nil, err
		}
		// Cancelled at a coordinator checkpoint: fall through so the
		// partial report — every committed stage and iteration — rides
		// back alongside the error. The interrupted stage never reaches
		// its StageDone, so clear the health tracker here — a daemon
		// sharing one tracker across runs must not see a dead stage
		// "running" forever.
		r.opt.Obs.H().AbortAll()
	}
	r.sampleHeap()
	r.finish()

	return &Result{
		Report: r.rep,
		Grid:   r.g,
		Design: r.d,
		Trees:  r.trees,
		Routes: r.routes,
	}, err
}

// stages runs the pipeline stage sequence, stopping at the first error
// (a stage failure or a *CancelError from a coordinator checkpoint).
func (r *runner) stages() error {
	if err := r.checkpoint("plan", -1); err != nil {
		return err
	}
	if err := r.plan(); err != nil {
		return err
	}
	r.sampleHeap()
	if r.opt.Shards >= 1 {
		r.shardSetup()
		if err := r.shardPatternStage(); err != nil {
			return err
		}
		r.sampleHeap()
		return r.shardRRRStage()
	}
	if err := r.patternStage(); err != nil {
		return err
	}
	r.sampleHeap()
	return r.rrrStage()
}

// sampleHeap folds the current heap high-water into the report. Called at
// stage boundaries only — never inside parallel sections — so the memory
// claim is measured where a budget-constrained host would feel it. With
// HeapGC it reads live bytes; without, allocator-resident bytes.
func (r *runner) sampleHeap() {
	if r.opt.HeapGC {
		runtime.GC()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > r.rep.PeakHeapBytes {
		r.rep.PeakHeapBytes = ms.HeapAlloc
	}
}

// plan builds and congestion-shifts the Steiner tree of every net (the
// pattern routing planning box of Fig. 5). Nets are independent — the
// estimator is a read-only snapshot and each net writes only its own tree
// slot — so construction fans out over the executor pool. Every later
// stage needs every tree, so a net whose planning unit exhausts
// containment aborts the run with its typed error.
func (r *runner) plan() error {
	start := obs.StartStopwatch()
	sp := r.opt.Obs.T().StartSpan("plan", obs.Coordinator)
	defer sp.End()
	r.stageStart("plan")
	est := r.g.Estimator2D()
	maxID := 0
	for _, n := range r.d.Nets {
		if n.ID > maxID {
			maxID = n.ID
		}
	}
	r.trees = make([]*stt.Tree, maxID+1)
	r.routes = make([]*route.NetRoute, maxID+1)
	errs := r.pool.ForUnits(fault.SitePlan, len(r.d.Nets), func(_, i int) error {
		n := r.d.Nets[i]
		t := stt.Build(n)
		if !r.opt.NoEdgeShift {
			t.Shift(est)
		}
		r.trees[n.ID] = t
		return nil
	})
	r.rep.Times.PlanWall = start.Elapsed()
	if len(errs) > 0 {
		return fmt.Errorf("core: planning: %w", errs[0])
	}
	r.stageDone("plan", r.rep.Times.PlanWall, 0)
	return nil
}

// patternStage routes every net with the variant's pattern kernel, batch by
// batch, committing demand after each batch. Batch boundaries are
// coordinator checkpoints: a cancelled run stops between batches with
// every committed batch intact.
func (r *runner) patternStage() error {
	start := obs.StartStopwatch()
	tr := r.opt.Obs.T()
	sp := tr.StartSpan("pattern", obs.Coordinator)
	defer sp.End()
	r.stageStart("pattern")

	ordered := append([]*design.Net(nil), r.d.Nets...)
	sched.SortNets(ordered, r.opt.Scheme)
	tasks := make([]sched.Task, len(ordered))
	for i, n := range ordered {
		tasks[i] = sched.Task{ID: i, BBox: r.trees[n.ID].BBox(), Payload: n}
	}
	batches := sched.ExtractBatches(tasks)
	sched.ObserveBatches(r.opt.Obs.M(), batches)
	r.rep.PatternBatches = len(batches)

	cfg := r.patternConfig()

	switch r.opt.Variant {
	case CUGR:
		// Sequential CPU pattern routing, net by net in batch order. The
		// cost cache is rewarmed at each batch boundary; commits inside the
		// batch dirty the touched lines, whose queries fall back to the
		// direct formula until the next warm.
		var ops int64
		for bi, batch := range batches {
			if err := r.checkpoint("pattern", -1); err != nil {
				return err
			}
			r.g.WarmCostCache()
			bsp := batchSpan(tr, bi)
			for _, task := range batch {
				n := task.Payload.(*design.Net)
				res := pattern.SolveCPU(r.g, r.trees[n.ID], cfg)
				res.Route.Commit(r.g)
				r.routes[n.ID] = res.Route
				ops += res.Ops.Total()
				r.rep.TotalEdges += res.Edges
				r.rep.HybridEdges += res.HybridEdges
			}
			bsp.End()
			r.stageBeat("pattern")
		}
		r.rep.PatternSeqOps = ops
		r.rep.PatternSeqTime = r.opt.CPU.SequentialTime(ops)
		r.rep.Times.Pattern = r.rep.PatternSeqTime
		if m := r.opt.Obs.M(); m != nil {
			m.Counter(obs.MPatternHybrid).Add(int64(r.rep.HybridEdges))
			m.Counter(obs.MPatternLShape).Add(int64(r.rep.TotalEdges - r.rep.HybridEdges))
		}
	default:
		// GPU-friendly pattern routing: one kernel per batch, one block per
		// net (Fig. 7). Host workers solve the batch's nets concurrently;
		// commits stay in batch order below.
		router := patterngpu.New(r.opt.Device, cfg)
		router.Workers = r.pool.Workers()
		router.Obs = r.opt.Obs
		router.Fault = r.fc
		router.CPU = r.opt.CPU
		for bi, batch := range batches {
			if err := r.checkpoint("pattern", -1); err != nil {
				return err
			}
			bsp := batchSpan(tr, bi)
			trees := make([]*stt.Tree, len(batch))
			nets := make([]*design.Net, len(batch))
			for i, task := range batch {
				nets[i] = task.Payload.(*design.Net)
				trees[i] = r.trees[nets[i].ID]
			}
			br := router.RouteBatch(r.g, trees)
			if br.CPUFallback {
				r.rep.Fault.KernelFallbacks++
			}
			for i, res := range br.Results {
				res.Route.Commit(r.g)
				r.routes[nets[i].ID] = res.Route
				r.rep.TotalEdges += res.Edges
				r.rep.HybridEdges += res.HybridEdges
			}
			r.rep.PatternSeqOps += br.SeqOps
			r.rep.Times.Pattern += br.KernelTime
			bsp.End()
			r.stageBeat("pattern")
		}
		r.rep.PatternSeqTime = r.opt.CPU.SequentialTime(r.rep.PatternSeqOps)
	}
	r.rep.PatternQuality = r.snapshotQuality()
	r.rep.PatternScore = r.rep.PatternQuality.Score()
	r.rep.Times.PatternWall = start.Elapsed()
	r.stageDone("pattern", r.rep.Times.PatternWall, r.rep.PatternScore)
	return nil
}

// patternConfig resolves the variant's pattern kernel configuration —
// shared by the monolithic and sharded pattern stages.
func (r *runner) patternConfig() pattern.Config {
	cfg := pattern.Config{Mode: pattern.LShape}
	if r.opt.Variant == FastGRH {
		cfg = pattern.Config{
			Mode:      pattern.Hybrid,
			Selection: !r.opt.SelectionOff,
			T1:        r.opt.T1,
			T2:        r.opt.T2,
		}
	}
	if r.opt.PatternModeOverride != nil {
		cfg.Mode = *r.opt.PatternModeOverride
		if cfg.Mode != pattern.LShape {
			cfg.Selection = !r.opt.SelectionOff
			cfg.T1, cfg.T2 = r.opt.T1, r.opt.T2
		}
	}
	return cfg
}

// batchSpan opens a per-batch span on the stages lane; the formatting
// only runs when tracing is on.
func batchSpan(tr *obs.Tracer, batch int) obs.Span {
	if !tr.On() {
		return obs.Span{}
	}
	return tr.StartSpan(fmt.Sprintf("pattern.batch[%d]", batch), obs.Coordinator)
}

// rrrStage runs the rip-up-and-reroute iterations with the variant's
// scheduling strategy.
func (r *runner) rrrStage() error {
	start := obs.StartStopwatch()
	tr := r.opt.Obs.T()
	stageSp := tr.StartSpan("rrr", obs.Coordinator)
	defer stageSp.End()
	r.stageStart("rrr")
	scheme := r.opt.Scheme
	if r.opt.RRRSchemeOverride != nil {
		scheme = *r.opt.RRRSchemeOverride
	}
	if r.opt.HistoryRRR {
		r.g.EnableHistory()
	}

	// One maze scratch per executor worker, reused across nets and
	// iterations: the search hot path then allocates nothing but the routes
	// it returns. Worker ids come from the executors below, which guarantee
	// a worker id is never used by two goroutines at once.
	searches := make([]*maze.Search, r.pool.Workers())
	for i := range searches {
		searches[i] = maze.NewSearch()
		searches[i].SetAlgorithm(r.opt.MazeAlgorithm)
		searches[i].SetObserver(r.opt.Obs)
		searches[i].SetBudget(r.opt.MazeBudget)
	}

	for iter := 0; iter < r.opt.RRRIters; iter++ {
		if err := r.checkpoint("rrr", iter); err != nil {
			return err
		}
		var iterSp obs.Span
		if tr.On() {
			iterSp = tr.StartSpan(fmt.Sprintf("rrr.iter[%d]", iter), obs.Coordinator)
		}
		violating, scanErr := r.violatingNets()
		if scanErr != nil {
			return scanErr
		}
		if iter == 0 {
			r.rep.NetsToRipup = len(violating)
		}
		if len(violating) == 0 {
			iterSp.End()
			break
		}
		// Rewarm the cost field at the iteration boundary — the last
		// single-threaded point before workers uncommit/reroute/commit in
		// disjoint windows. Mid-iteration mutations invalidate per edge;
		// stale reads fall back to the direct formula, so results are
		// independent of cache state and of the worker count.
		r.g.WarmCostCache()
		sched.SortNets(violating, scheme)

		// Two task views: the execution graph conflicts on the full maze
		// window (tasks with disjoint windows touch disjoint grid state and
		// may safely run concurrently), while the reported scheduling models
		// conflict on the net bounding boxes, as the paper's task graph does.
		tasks := make([]sched.Task, len(violating))
		modelTasks := make([]sched.Task, len(violating))
		for i, n := range violating {
			win := n.BBox().Inflate(r.opt.MazeMargin).ClampTo(r.g.W, r.g.H)
			tasks[i] = sched.Task{ID: i, BBox: win, Payload: n}
			modelTasks[i] = sched.Task{ID: i, BBox: n.BBox(), Payload: n}
		}
		graph := sched.BuildGraph(tasks, r.g.W, r.g.H)
		modelGraph := sched.BuildGraph(modelTasks, r.g.W, r.g.H)

		durations := make([]time.Duration, len(tasks))
		expansions := make([]int64, len(tasks))
		budgetTrips := make([]bool, len(tasks))
		// work reroutes one task; it is retry-safe: injections fire at
		// wrapper entry (before any grid mutation) and the Committed guards
		// make the uncommit/restore idempotent, so a retried unit always
		// starts from the committed old route. A budget trip — real or
		// injected — is a graceful outcome (the net keeps its current
		// route), any other maze error is a hard abort.
		work := func(worker, ti int) error {
			n := tasks[ti].Payload.(*design.Net)
			var sp obs.Span
			if tr.On() {
				sp = tr.StartSpan("maze:"+n.Name, worker)
			}
			defer sp.End()
			if r.fc.InjectBudget(ti, worker) {
				budgetTrips[ti] = true
				return nil
			}
			old := r.routes[n.ID]
			if old.Committed() {
				old.Uncommit(r.g)
			}
			pins := route.PinTerminals(r.trees[n.ID])
			nr, st, err := searches[worker].RouteNet(r.g, n.ID, pins, tasks[ti].BBox)
			if err != nil {
				// Restore the old route so the grid stays consistent.
				if !old.Committed() {
					old.Commit(r.g)
				}
				var be *maze.BudgetError
				if errors.As(err, &be) {
					budgetTrips[ti] = true
					expansions[ti] = st.Expansions
					durations[ti] = time.Duration(float64(st.Expansions) * r.opt.MazeNsPerExpansion)
					r.fc.Degrade(fault.SiteBudget, 1)
					return nil
				}
				return err
			}
			nr.Commit(r.g)
			r.routes[n.ID] = nr
			expansions[ti] = st.Expansions
			durations[ti] = time.Duration(float64(st.Expansions) * r.opt.MazeNsPerExpansion)
			return nil
		}

		iterFailed := 0
		iterSkipped := 0
		if r.opt.Variant == CUGR {
			// Batch-barrier strategy: batches execute in order with a full
			// barrier between them; tasks inside a batch have disjoint maze
			// windows and run on the worker pool (modeled as P-worker
			// parallel below either way). A unit that exhausts containment
			// leaves its net on the old route; an uncontained maze error
			// aborts the iteration.
			for _, batch := range sched.ExtractBatches(tasks) {
				errs := r.pool.ForUnits(fault.SiteTask, len(batch), func(worker, bi int) error {
					return work(worker, batch[bi].ID)
				})
				for _, we := range errs {
					if !we.Contained {
						return fmt.Errorf("core: rip-up iteration %d: %w", iter, we.Cause)
					}
					iterFailed++
				}
			}
		} else {
			frep := taskflow.RunWorkersFault(graph, r.pool.Workers(), r.opt.Obs, r.fc, work)
			if frep.CancelErr != nil {
				return fmt.Errorf("core: rip-up iteration %d: %w", iter, frep.CancelErr)
			}
			iterFailed = len(frep.Failed)
			iterSkipped = len(frep.Skipped)
		}
		r.rep.Fault.FailedNets += iterFailed
		r.rep.Fault.SkippedNets += iterSkipped

		// Both scheduling models over the same recorded durations, on the
		// paper-faithful (bounding-box) conflict structure.
		idBatches := [][]int{}
		for _, b := range sched.ExtractBatches(modelTasks) {
			ids := make([]int, len(b))
			for i, task := range b {
				ids[i] = task.ID
			}
			idBatches = append(idBatches, ids)
		}
		tg := taskflow.Makespan(modelGraph, durations, r.opt.Workers)
		bb := taskflow.BatchMakespan(idBatches, durations, r.opt.Workers)

		var totalExp int64
		for _, e := range expansions {
			totalExp += e
		}
		iterBudget := 0
		for _, tripped := range budgetTrips {
			if tripped {
				iterBudget++
			}
		}
		r.rep.Fault.BudgetFallbacks += iterBudget
		iterQ := r.snapshotQuality()
		st := IterStats{
			Nets:            len(violating),
			Expansions:      totalExp,
			TaskGraphTime:   tg,
			BatchTime:       bb,
			ConflictEdges:   modelGraph.Edges,
			Quality:         iterQ,
			Score:           iterQ.Score(),
			FailedNets:      iterFailed,
			SkippedNets:     iterSkipped,
			BudgetFallbacks: iterBudget,
		}
		r.rep.RRR = append(r.rep.RRR, st)
		if m := r.opt.Obs.M(); m != nil {
			m.Counter(obs.MRRRNets).Add(int64(len(violating)))
			m.Counter(obs.MRRRExpansions).Add(totalExp)
			m.Gauge(obs.MRRRIterations).Set(int64(iter + 1))
			m.Gauge(obs.MRRROverflow).Set(int64(iterQ.Shorts))
		}
		r.rep.MazeTaskGraphTime += tg
		r.rep.MazeBatchTime += bb
		if r.opt.Variant == CUGR {
			r.rep.Times.Maze += bb
		} else {
			r.rep.Times.Maze += tg
		}
		if r.opt.HistoryRRR {
			bump := r.opt.HistoryBump
			if bump <= 0 {
				bump = 0.5
			}
			r.g.BumpOverflowHistory(bump)
		}
		r.sampleHeap()
		r.stageBeat("rrr")
		r.journalIter(iter, st, iterQ)
		iterSp.End()
	}
	r.rep.Times.MazeWall = start.Elapsed()
	score := r.rep.PatternScore
	if n := len(r.rep.RRR); n > 0 {
		score = r.rep.RRR[n-1].Score
	}
	r.stageDone("rrr", r.rep.Times.MazeWall, score)
	return nil
}

// violatingNets returns the nets whose routes cross an over-capacity edge.
// The scan reads only the grid and each net's own route, so it fans out over
// the pool; the result list is assembled in net order to stay deterministic.
// A scan unit exhausting containment aborts the run: a missing flag would
// silently drop a violating net from rip-up.
func (r *runner) violatingNets() ([]*design.Net, error) {
	flags := make([]bool, len(r.d.Nets))
	errs := r.pool.ForUnits(fault.SiteScan, len(r.d.Nets), func(_, i int) error {
		if rt := r.routes[r.d.Nets[i].ID]; rt != nil && rt.HasOverflow(r.g) {
			flags[i] = true
		}
		return nil
	})
	if len(errs) > 0 {
		return nil, fmt.Errorf("core: overflow scan: %w", errs[0])
	}
	var out []*design.Net
	for i, f := range flags {
		if f {
			out = append(out, r.d.Nets[i])
		}
	}
	return out, nil
}

// snapshotQuality evaluates eq. 15 over the current routes and grid — a
// read-only scan, usable mid-pipeline for the per-iteration trajectory.
func (r *runner) snapshotQuality() metrics.Quality {
	var q metrics.Quality
	for _, n := range r.d.Nets {
		if n.ID >= len(r.routes) {
			// A run cancelled before planning finished has no route slots.
			continue
		}
		if rt := r.routes[n.ID]; rt != nil {
			q.Wirelength += rt.Wirelength(r.g)
			q.Vias += rt.ViaCount(r.g)
		}
	}
	wire, via := r.g.Overflow()
	q.Shorts = wire + via
	return q
}

// finish computes final quality, the score and the wall-clock total.
func (r *runner) finish() {
	r.rep.Quality = r.snapshotQuality()
	r.rep.Score = r.rep.Quality.Score()
	r.rep.Times.Total = r.rep.Times.Pattern + r.rep.Times.Maze
	r.rep.Times.WallTotal = r.rep.Times.PlanWall + r.rep.Times.PatternWall + r.rep.Times.MazeWall
}
