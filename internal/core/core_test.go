package core

import (
	"testing"

	"fastgr/internal/design"
	"fastgr/internal/geom"
	"fastgr/internal/route"
	"fastgr/internal/sched"
)

const testScale = 0.005

func routeVariant(t *testing.T, name string, v Variant, mutate func(*Options)) *Result {
	t.Helper()
	d := design.MustGenerate(name, testScale)
	opt := DefaultOptions(v)
	opt.T1, opt.T2 = 4, 40 // thresholds scaled for the small test grids
	if mutate != nil {
		mutate(&opt)
	}
	res, err := Route(d, opt)
	if err != nil {
		t.Fatalf("%s/%v: %v", name, v, err)
	}
	return res
}

func TestAllVariantsRouteAndConnect(t *testing.T) {
	for _, v := range []Variant{CUGR, FastGRL, FastGRH} {
		res := routeVariant(t, "18test5m", v, nil)
		// Every net's route must connect its pins.
		for _, n := range res.Design.Nets {
			r := res.Routes[n.ID]
			if r == nil {
				t.Fatalf("%v: net %s unrouted", v, n.Name)
			}
			if err := r.Validate(res.Grid, route.PinTerminals(res.Trees[n.ID])); err != nil {
				t.Fatalf("%v: net %s: %v", v, n.Name, err)
			}
		}
		rep := res.Report
		if rep.Quality.Wirelength == 0 || rep.Quality.Vias == 0 {
			t.Fatalf("%v: empty quality: %+v", v, rep.Quality)
		}
		if rep.Score != rep.Quality.Score() {
			t.Fatalf("%v: score mismatch", v)
		}
		if rep.Times.Total != rep.Times.Pattern+rep.Times.Maze {
			t.Fatalf("%v: TOTAL != PATTERN+MAZE", v)
		}
	}
}

func TestCommittedDemandMatchesRoutes(t *testing.T) {
	res := routeVariant(t, "18test5m", FastGRL, nil)
	// Grid demand must equal the union of all routes: rip everything up and
	// expect a clean grid (catches commit/uncommit imbalances).
	for _, n := range res.Design.Nets {
		res.Routes[n.ID].Uncommit(res.Grid)
	}
	wire, via := res.Grid.TotalDemand()
	if wire != 0 || via != 0 {
		t.Fatalf("residual demand after full rip-up: wire=%d via=%d", wire, via)
	}
}

func TestCUGRAndFastGRLSameQuality(t *testing.T) {
	// The paper's claim: FastGRL accelerates CUGR "without any quality
	// degradation" — both run the same L-shape DP, so pattern-stage output
	// is identical and final quality nearly so (RRR serialization may
	// differ marginally).
	a := routeVariant(t, "18test5m", CUGR, nil)
	b := routeVariant(t, "18test5m", FastGRL, nil)
	if a.Report.NetsToRipup != b.Report.NetsToRipup {
		t.Fatalf("pattern stages diverged: rip %d vs %d",
			a.Report.NetsToRipup, b.Report.NetsToRipup)
	}
	ra, rb := a.Report.Quality, b.Report.Quality
	if diff := geom.Abs(ra.Shorts - rb.Shorts); diff > geom.Max(3, ra.Shorts/5) {
		t.Fatalf("shorts diverged: %d vs %d", ra.Shorts, rb.Shorts)
	}
	relWL := float64(geom.Abs(ra.Wirelength-rb.Wirelength)) / float64(ra.Wirelength)
	if relWL > 0.02 {
		t.Fatalf("wirelength diverged: %d vs %d", ra.Wirelength, rb.Wirelength)
	}
}

func TestFastGRLFasterThanCUGR(t *testing.T) {
	a := routeVariant(t, "18test5m", CUGR, nil)
	b := routeVariant(t, "18test5m", FastGRL, nil)
	if b.Report.Times.Total >= a.Report.Times.Total {
		t.Fatalf("FastGRL (%v) not faster than CUGR (%v)",
			b.Report.Times.Total, a.Report.Times.Total)
	}
	// Maze side: the task-graph model must beat the batch-barrier model on
	// the same recorded durations.
	if b.Report.MazeTaskGraphTime > b.Report.MazeBatchTime {
		t.Fatalf("task graph (%v) slower than batch barrier (%v)",
			b.Report.MazeTaskGraphTime, b.Report.MazeBatchTime)
	}
}

func TestGPUPatternSpeedupBand(t *testing.T) {
	res := routeVariant(t, "18test5", FastGRL, nil)
	rep := res.Report
	if rep.PatternSeqTime <= rep.Times.Pattern {
		t.Fatalf("GPU pattern (%v) not faster than modeled sequential (%v)",
			rep.Times.Pattern, rep.PatternSeqTime)
	}
	speedup := float64(rep.PatternSeqTime) / float64(rep.Times.Pattern)
	if speedup < 2 || speedup > 200 {
		t.Fatalf("L-kernel speedup %.2fx outside plausible band", speedup)
	}
}

func TestFastGRHUsesHybridKernel(t *testing.T) {
	res := routeVariant(t, "18test5", FastGRH, nil)
	if res.Report.HybridEdges == 0 {
		t.Fatal("FastGRH routed no edges with the hybrid kernel")
	}
	if res.Report.HybridEdges >= res.Report.TotalEdges/2 {
		t.Fatal("selection should keep the hybrid kernel on a small fraction of edges")
	}
	l := routeVariant(t, "18test5", FastGRL, nil)
	if l.Report.HybridEdges != 0 {
		t.Fatal("FastGRL used the hybrid kernel")
	}
}

func TestSelectionOffRoutesEverythingHybrid(t *testing.T) {
	res := routeVariant(t, "18test5m", FastGRH, func(o *Options) { o.SelectionOff = true })
	if res.Report.HybridEdges != res.Report.TotalEdges {
		t.Fatalf("selection off: %d of %d edges hybrid",
			res.Report.HybridEdges, res.Report.TotalEdges)
	}
	sel := routeVariant(t, "18test5m", FastGRH, nil)
	if sel.Report.Times.Pattern >= res.Report.Times.Pattern {
		t.Fatal("selection did not reduce pattern kernel time")
	}
}

func TestRRRReducesShorts(t *testing.T) {
	zero := routeVariant(t, "18test5m", FastGRL, func(o *Options) { o.RRRIters = 0 })
	full := routeVariant(t, "18test5m", FastGRL, nil)
	if full.Report.Quality.Shorts >= zero.Report.Quality.Shorts {
		t.Fatalf("RRR did not reduce shorts: %d -> %d",
			zero.Report.Quality.Shorts, full.Report.Quality.Shorts)
	}
	if len(full.Report.RRR) == 0 || full.Report.NetsToRipup == 0 {
		t.Fatal("RRR iterations not recorded")
	}
	// Iterations shrink: later iterations handle fewer nets.
	iters := full.Report.RRR
	if len(iters) >= 2 && iters[len(iters)-1].Nets > iters[0].Nets {
		t.Fatalf("rip-up set grew across iterations: %+v", iters)
	}
}

func TestRRRSchemeOverride(t *testing.T) {
	s := sched.PinsDesc
	res := routeVariant(t, "18test5m", FastGRL, func(o *Options) { o.RRRSchemeOverride = &s })
	if res.Report.Quality.Wirelength == 0 {
		t.Fatal("override run failed")
	}
}

func TestDeterministicReports(t *testing.T) {
	for _, v := range []Variant{CUGR, FastGRL, FastGRH} {
		a := routeVariant(t, "18test5m", v, nil)
		b := routeVariant(t, "18test5m", v, nil)
		ra, rb := a.Report, b.Report
		// Wall-clock fields differ; everything modeled must be identical.
		if ra.Quality != rb.Quality || ra.Times.Pattern != rb.Times.Pattern ||
			ra.Times.Maze != rb.Times.Maze || ra.NetsToRipup != rb.NetsToRipup ||
			ra.PatternSeqOps != rb.PatternSeqOps {
			t.Fatalf("%v: nondeterministic report:\n%+v\nvs\n%+v", v, ra, rb)
		}
	}
}

func TestParallelExecutionMatchesSequential(t *testing.T) {
	// Task-graph execution with many workers must produce the same result
	// as with one worker: concurrent tasks are conflict-free by construction.
	seq := routeVariant(t, "18test5m", FastGRL, func(o *Options) { o.ExecWorkers = 1 })
	par := routeVariant(t, "18test5m", FastGRL, func(o *Options) { o.ExecWorkers = 8 })
	if seq.Report.Quality != par.Report.Quality {
		t.Fatalf("parallel execution changed quality: %+v vs %+v",
			seq.Report.Quality, par.Report.Quality)
	}
}

func TestVariantString(t *testing.T) {
	if CUGR.String() != "CUGR" || FastGRL.String() != "FastGRL" || FastGRH.String() != "FastGRH" {
		t.Fatal("Variant.String wrong")
	}
}

func TestRouteRejectsInvalidInput(t *testing.T) {
	d := design.MustGenerate("18test5m", testScale)
	opt := DefaultOptions(CUGR)
	opt.RRRIters = -1
	if _, err := Route(d, opt); err == nil {
		t.Fatal("negative iterations accepted")
	}
	bad := *d
	bad.LayerCapacity = nil
	if _, err := Route(&bad, DefaultOptions(CUGR)); err == nil {
		t.Fatal("invalid design accepted")
	}
}

func TestNineLayerDesign(t *testing.T) {
	res := routeVariant(t, "18test5", FastGRH, nil)
	if res.Grid.L != 9 {
		t.Fatalf("layers = %d", res.Grid.L)
	}
	for _, n := range res.Design.Nets[:50] {
		if err := res.Routes[n.ID].Validate(res.Grid, route.PinTerminals(res.Trees[n.ID])); err != nil {
			t.Fatalf("net %s: %v", n.Name, err)
		}
	}
}

func TestHistoryRRR(t *testing.T) {
	base := routeVariant(t, "18test5m", FastGRL, nil)
	hist := routeVariant(t, "18test5m", FastGRL, func(o *Options) {
		o.HistoryRRR = true
	})
	// Negotiation must leave a consistent result; quality commonly improves
	// on chronically contested designs but is not guaranteed to.
	if hist.Report.Quality.Wirelength == 0 {
		t.Fatal("history run produced nothing")
	}
	if !hist.Grid.HistoryEnabled() {
		t.Fatal("history not enabled on the grid")
	}
	if base.Grid.HistoryEnabled() {
		t.Fatal("history leaked into the default run")
	}
	// Deterministic under history too.
	hist2 := routeVariant(t, "18test5m", FastGRL, func(o *Options) {
		o.HistoryRRR = true
	})
	if hist.Report.Quality != hist2.Report.Quality {
		t.Fatal("history RRR nondeterministic")
	}
}
