package core

import (
	"reflect"
	"testing"

	"fastgr/internal/design"
)

// TestExecWorkersDeterminism is the contract of the host-parallel execution
// layer: ExecWorkers is functional parallelism only, so for every variant
// the paper-facing outputs — quality, the modeled stage times, the per-net
// routed geometry and all scheduler statistics — must be byte-for-byte
// identical across worker counts. Only the wall-clock columns may differ.
func TestExecWorkersDeterminism(t *testing.T) {
	d := design.MustGenerate("18test5m", testScale)
	for _, v := range []Variant{CUGR, FastGRL, FastGRH} {
		var base *Result
		var baseWorkers int
		for _, w := range []int{1, 2, 8} {
			opt := DefaultOptions(v)
			opt.T1, opt.T2 = 4, 40
			opt.ExecWorkers = w
			res, err := Route(d, opt)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", v, w, err)
			}
			if base == nil {
				base, baseWorkers = res, w
				if res.Report.NetsToRipup == 0 {
					t.Fatalf("%v: no rip-up work; determinism test exercises nothing", v)
				}
				continue
			}
			a, b := base.Report, res.Report
			if a.Quality != b.Quality {
				t.Errorf("%v: quality differs between %d and %d workers:\n%+v\nvs\n%+v",
					v, baseWorkers, w, a.Quality, b.Quality)
			}
			if a.Times.Pattern != b.Times.Pattern || a.Times.Maze != b.Times.Maze ||
				a.Times.Total != b.Times.Total {
				t.Errorf("%v: modeled stage times differ between %d and %d workers:\n"+
					"PATTERN %v vs %v, MAZE %v vs %v, TOTAL %v vs %v",
					v, baseWorkers, w, a.Times.Pattern, b.Times.Pattern,
					a.Times.Maze, b.Times.Maze, a.Times.Total, b.Times.Total)
			}
			if a.PatternSeqOps != b.PatternSeqOps || a.PatternSeqTime != b.PatternSeqTime ||
				a.PatternBatches != b.PatternBatches ||
				a.HybridEdges != b.HybridEdges || a.TotalEdges != b.TotalEdges {
				t.Errorf("%v: pattern accounting differs between %d and %d workers", v, baseWorkers, w)
			}
			if a.NetsToRipup != b.NetsToRipup ||
				a.MazeTaskGraphTime != b.MazeTaskGraphTime || a.MazeBatchTime != b.MazeBatchTime ||
				!reflect.DeepEqual(a.RRR, b.RRR) {
				t.Errorf("%v: RRR statistics differ between %d and %d workers:\n%+v\nvs\n%+v",
					v, baseWorkers, w, a.RRR, b.RRR)
			}
			for _, n := range d.Nets {
				ra, rb := base.Routes[n.ID], res.Routes[n.ID]
				if (ra == nil) != (rb == nil) {
					t.Fatalf("%v: net %s routed in one run only", v, n.Name)
				}
				if ra != nil && !reflect.DeepEqual(ra.Paths, rb.Paths) {
					t.Fatalf("%v: net %s geometry differs between %d and %d workers:\n%+v\nvs\n%+v",
						v, n.Name, baseWorkers, w, ra.Paths, rb.Paths)
				}
			}
		}
	}
}

// TestExecWorkersDeterminismWithHistory covers the negotiated-congestion
// path too: history bumps depend on overflow state after each iteration,
// which must itself be worker-count independent.
func TestExecWorkersDeterminismWithHistory(t *testing.T) {
	d := design.MustGenerate("18test5m", testScale)
	var base *Result
	for _, w := range []int{1, 8} {
		opt := DefaultOptions(FastGRL)
		opt.T1, opt.T2 = 4, 40
		opt.HistoryRRR = true
		opt.ExecWorkers = w
		res, err := Route(d, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if base == nil {
			base = res
			continue
		}
		if base.Report.Quality != res.Report.Quality ||
			base.Report.Times.Maze != res.Report.Times.Maze {
			t.Fatalf("history RRR not worker-count deterministic:\n%+v\nvs\n%+v",
				base.Report, res.Report)
		}
	}
}
