package core

import (
	"reflect"
	"testing"

	"fastgr/internal/design"
	"fastgr/internal/obs"
)

// TestExecWorkersDeterminism is the contract of the host-parallel execution
// layer: ExecWorkers is functional parallelism only, so for every variant
// the paper-facing outputs — quality, the modeled stage times, the per-net
// routed geometry and all scheduler statistics — must be byte-for-byte
// identical across worker counts. Only the wall-clock columns may differ.
func TestExecWorkersDeterminism(t *testing.T) {
	d := design.MustGenerate("18test5m", testScale)
	for _, v := range []Variant{CUGR, FastGRL, FastGRH} {
		var base *Result
		var baseWorkers int
		for _, w := range []int{1, 2, 8} {
			opt := DefaultOptions(v)
			opt.T1, opt.T2 = 4, 40
			opt.ExecWorkers = w
			res, err := Route(d, opt)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", v, w, err)
			}
			if base == nil {
				base, baseWorkers = res, w
				if res.Report.NetsToRipup == 0 {
					t.Fatalf("%v: no rip-up work; determinism test exercises nothing", v)
				}
				continue
			}
			a, b := base.Report, res.Report
			if a.Quality != b.Quality {
				t.Errorf("%v: quality differs between %d and %d workers:\n%+v\nvs\n%+v",
					v, baseWorkers, w, a.Quality, b.Quality)
			}
			if a.Times.Pattern != b.Times.Pattern || a.Times.Maze != b.Times.Maze ||
				a.Times.Total != b.Times.Total {
				t.Errorf("%v: modeled stage times differ between %d and %d workers:\n"+
					"PATTERN %v vs %v, MAZE %v vs %v, TOTAL %v vs %v",
					v, baseWorkers, w, a.Times.Pattern, b.Times.Pattern,
					a.Times.Maze, b.Times.Maze, a.Times.Total, b.Times.Total)
			}
			if a.PatternSeqOps != b.PatternSeqOps || a.PatternSeqTime != b.PatternSeqTime ||
				a.PatternBatches != b.PatternBatches ||
				a.HybridEdges != b.HybridEdges || a.TotalEdges != b.TotalEdges {
				t.Errorf("%v: pattern accounting differs between %d and %d workers", v, baseWorkers, w)
			}
			if a.NetsToRipup != b.NetsToRipup ||
				a.MazeTaskGraphTime != b.MazeTaskGraphTime || a.MazeBatchTime != b.MazeBatchTime ||
				!reflect.DeepEqual(a.RRR, b.RRR) {
				t.Errorf("%v: RRR statistics differ between %d and %d workers:\n%+v\nvs\n%+v",
					v, baseWorkers, w, a.RRR, b.RRR)
			}
			for _, n := range d.Nets {
				ra, rb := base.Routes[n.ID], res.Routes[n.ID]
				if (ra == nil) != (rb == nil) {
					t.Fatalf("%v: net %s routed in one run only", v, n.Name)
				}
				if ra != nil && !reflect.DeepEqual(ra.Paths, rb.Paths) {
					t.Fatalf("%v: net %s geometry differs between %d and %d workers:\n%+v\nvs\n%+v",
						v, n.Name, baseWorkers, w, ra.Paths, rb.Paths)
				}
			}
		}
	}
}

// TestExecWorkersDeterminismWithTracing extends the contract to the
// flight recorder: with the tracer and metrics registry attached, every
// paper-facing output must stay byte-for-byte identical to an
// observability-free run, at every worker count — tracing is passive.
func TestExecWorkersDeterminismWithTracing(t *testing.T) {
	d := design.MustGenerate("18test5m", testScale)
	for _, v := range []Variant{CUGR, FastGRL, FastGRH} {
		baseOpt := DefaultOptions(v)
		baseOpt.T1, baseOpt.T2 = 4, 40
		baseOpt.ExecWorkers = 1
		base, err := Route(d, baseOpt)
		if err != nil {
			t.Fatalf("%v baseline: %v", v, err)
		}
		for _, w := range []int{1, 2, 8} {
			o := &obs.Observer{
				Tracer:  obs.NewTracer(1<<16, w),
				Metrics: obs.NewRegistry(),
			}
			opt := DefaultOptions(v)
			opt.T1, opt.T2 = 4, 40
			opt.ExecWorkers = w
			opt.Obs = o
			res, err := Route(d, opt)
			if err != nil {
				t.Fatalf("%v workers=%d traced: %v", v, w, err)
			}
			a, b := base.Report, res.Report
			if a.Quality != b.Quality || a.Score != b.Score {
				t.Errorf("%v workers=%d: tracing changed quality:\n%+v\nvs\n%+v",
					v, w, a.Quality, b.Quality)
			}
			if a.Times.Pattern != b.Times.Pattern || a.Times.Maze != b.Times.Maze ||
				a.Times.Total != b.Times.Total {
				t.Errorf("%v workers=%d: tracing changed modeled times", v, w)
			}
			if a.PatternQuality != b.PatternQuality ||
				a.NetsToRipup != b.NetsToRipup || !reflect.DeepEqual(a.RRR, b.RRR) {
				t.Errorf("%v workers=%d: tracing changed RRR statistics:\n%+v\nvs\n%+v",
					v, w, a.RRR, b.RRR)
			}
			for _, n := range d.Nets {
				ra, rb := base.Routes[n.ID], res.Routes[n.ID]
				if (ra == nil) != (rb == nil) ||
					(ra != nil && !reflect.DeepEqual(ra.Paths, rb.Paths)) {
					t.Fatalf("%v workers=%d: tracing changed net %s geometry", v, w, n.Name)
				}
			}
			// The recorder must actually have seen the run.
			if o.Tracer.Recorded() == 0 {
				t.Errorf("%v workers=%d: tracer recorded no spans", v, w)
			}
			s := o.Metrics.Snapshot()
			if s.Counters[obs.MMazeSearches] == 0 {
				t.Errorf("%v workers=%d: no maze searches recorded", v, w)
			}
			if s.Histograms[obs.MBatchSize].Count == 0 {
				t.Errorf("%v workers=%d: no batch sizes recorded", v, w)
			}
		}
	}
}

// TestExecWorkersDeterminismWithHistory covers the negotiated-congestion
// path too: history bumps depend on overflow state after each iteration,
// which must itself be worker-count independent.
func TestExecWorkersDeterminismWithHistory(t *testing.T) {
	d := design.MustGenerate("18test5m", testScale)
	var base *Result
	for _, w := range []int{1, 8} {
		opt := DefaultOptions(FastGRL)
		opt.T1, opt.T2 = 4, 40
		opt.HistoryRRR = true
		opt.ExecWorkers = w
		res, err := Route(d, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if base == nil {
			base = res
			continue
		}
		if base.Report.Quality != res.Report.Quality ||
			base.Report.Times.Maze != res.Report.Times.Maze {
			t.Fatalf("history RRR not worker-count deterministic:\n%+v\nvs\n%+v",
				base.Report, res.Report)
		}
	}
}
