package core

import (
	"time"

	"fastgr/internal/metrics"
	"fastgr/internal/obs"
)

// Run journal event payloads. The journal (Options.Journal) receives one
// "stage" event per pipeline stage boundary and one "iter" event per
// rip-up-and-reroute iteration, in both the monolithic and sharded
// pipelines. Like every other observability sink the journal is passive:
// payloads are read-only snapshots of state the run computes anyway, and
// timestamps live in the journal envelope (package obs), never here —
// core itself stays wall-clock free outside the sanctioned stopwatches.

// stageEvent marks a stage boundary.
type stageEvent struct {
	Stage  string `json:"stage"`
	Status string `json:"status"` // "start" or "done"
	// WallMs is the stage's wall-clock duration, on "done" events only.
	WallMs float64 `json:"wall_ms,omitempty"`
	// Score is the eq.-15 score after the stage committed, for the
	// stages that change routed state (pattern, rrr, stitch).
	Score float64 `json:"score,omitempty"`
	// PeakHeapBytes is the run's heap high-water as of this boundary.
	PeakHeapBytes uint64 `json:"peak_heap_bytes,omitempty"`
}

// iterEvent records one rip-up-and-reroute iteration.
type iterEvent struct {
	Iter       int     `json:"iter"`
	Nets       int     `json:"nets"`
	Expansions int64   `json:"expansions"`
	Wirelength int     `json:"wirelength"`
	Vias       int     `json:"vias"`
	Overflow   int     `json:"overflow"`
	Score      float64 `json:"score"`
	// Cost-cache accounting over this iteration (deltas of the registry
	// counters); HitRate is hits/(hits+misses), 0 when the cache saw no
	// reads or no registry is attached.
	CostHits    int64   `json:"cost_hits"`
	CostMisses  int64   `json:"cost_misses"`
	CostHitRate float64 `json:"cost_hit_rate"`
	// Containment outcomes for this iteration; all zero without faults.
	FailedNets      int `json:"failed_nets"`
	SkippedNets     int `json:"skipped_nets"`
	BudgetFallbacks int `json:"budget_fallbacks"`
	// PeakHeapBytes is the run's heap high-water after this iteration.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
}

// stageStart reports a stage to the health tracker and the journal.
func (r *runner) stageStart(name string) {
	r.opt.Obs.H().StageStart(name)
	r.opt.Journal.Emit("stage", stageEvent{Stage: name, Status: "start"})
}

// stageBeat reports stage progress (a batch or iteration completed).
func (r *runner) stageBeat(name string) {
	r.opt.Obs.H().StageBeat(name)
}

// stageDone closes a stage. score is the post-stage eq.-15 score, 0 for
// stages that do not change routed state (planning).
func (r *runner) stageDone(name string, wall time.Duration, score float64) {
	r.opt.Obs.H().StageDone(name)
	r.opt.Journal.Emit("stage", stageEvent{
		Stage:         name,
		Status:        "done",
		WallMs:        float64(wall) / float64(time.Millisecond),
		Score:         score,
		PeakHeapBytes: r.rep.PeakHeapBytes,
	})
}

// journalIter emits one iteration event and advances the cost-cache
// counter watermarks. iter numbers are each loop's index, so they are
// monotone within a run by construction.
func (r *runner) journalIter(iter int, st IterStats, q metrics.Quality) {
	if r.opt.Journal == nil {
		return
	}
	var hits, misses int64
	if m := r.opt.Obs.M(); m != nil {
		hits = m.Counter(obs.MCostHits).Value() - r.jHits
		misses = m.Counter(obs.MCostMisses).Value() - r.jMisses
		r.jHits += hits
		r.jMisses += misses
	}
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	r.opt.Journal.Emit("iter", iterEvent{
		Iter:            iter,
		Nets:            st.Nets,
		Expansions:      st.Expansions,
		Wirelength:      q.Wirelength,
		Vias:            q.Vias,
		Overflow:        q.Shorts,
		Score:           st.Score,
		CostHits:        hits,
		CostMisses:      misses,
		CostHitRate:     rate,
		FailedNets:      st.FailedNets,
		SkippedNets:     st.SkippedNets,
		BudgetFallbacks: st.BudgetFallbacks,
		PeakHeapBytes:   r.rep.PeakHeapBytes,
	})
}
