package core

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fastgr/internal/design"
	"fastgr/internal/obs"
)

type journalLine struct {
	Seq   int64           `json:"seq"`
	TsMs  int64           `json:"ts_ms"`
	Event string          `json:"event"`
	Data  json.RawMessage `json:"data"`
}

func readJournalLines(t *testing.T, path string) []journalLine {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	defer f.Close()
	var out []journalLine
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var line journalLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("line %d is not valid JSON: %v (%q)", len(out)+1, err, sc.Text())
		}
		out = append(out, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return out
}

// TestRunJournal routes with a journal attached and checks the recorded
// trajectory: valid JSON lines with monotone sequence numbers, paired
// stage events for every pipeline stage, and one iter event per recorded
// rip-up iteration with monotone iteration numbers matching Report.RRR.
func TestRunJournal(t *testing.T) {
	d := design.MustGenerate("18test5m", testScale)
	for _, shards := range []int{0, 2} {
		path := filepath.Join(t.TempDir(), "run.jsonl")
		j := obs.NewJournal(path)
		opt := DefaultOptions(FastGRH)
		opt.T1, opt.T2 = 4, 40
		opt.ExecWorkers = 2
		opt.Shards = shards
		opt.Obs = &obs.Observer{Metrics: obs.NewRegistry()}
		opt.Journal = j
		res, err := Route(d, opt)
		if err != nil {
			t.Fatalf("shards=%d: route: %v", shards, err)
		}
		if err := j.Err(); err != nil {
			t.Fatalf("shards=%d: journal: %v", shards, err)
		}

		lines := readJournalLines(t, path)
		if len(lines) == 0 {
			t.Fatalf("shards=%d: empty journal", shards)
		}
		starts := map[string]int{}
		dones := map[string]int{}
		var iters []int
		for i, line := range lines {
			if line.Seq != int64(i+1) {
				t.Fatalf("shards=%d: seq not monotone at line %d: %d", shards, i+1, line.Seq)
			}
			switch line.Event {
			case "stage":
				var ev struct {
					Stage  string `json:"stage"`
					Status string `json:"status"`
				}
				if err := json.Unmarshal(line.Data, &ev); err != nil {
					t.Fatalf("shards=%d: stage payload: %v", shards, err)
				}
				switch ev.Status {
				case "start":
					starts[ev.Stage]++
				case "done":
					dones[ev.Stage]++
				default:
					t.Fatalf("shards=%d: stage status %q", shards, ev.Status)
				}
			case "iter":
				var ev struct {
					Iter  int     `json:"iter"`
					Nets  int     `json:"nets"`
					Score float64 `json:"score"`
				}
				if err := json.Unmarshal(line.Data, &ev); err != nil {
					t.Fatalf("shards=%d: iter payload: %v", shards, err)
				}
				iters = append(iters, ev.Iter)
				if ev.Nets == 0 {
					t.Errorf("shards=%d: iter %d journaled zero nets", shards, ev.Iter)
				}
				if want := res.Report.RRR[len(iters)-1].Score; ev.Score != want {
					t.Errorf("shards=%d: iter %d score %v, want %v", shards, ev.Iter, ev.Score, want)
				}
			default:
				t.Fatalf("shards=%d: unknown event %q", shards, line.Event)
			}
		}
		for _, stage := range []string{"plan", "pattern", "rrr"} {
			if starts[stage] != 1 || dones[stage] != 1 {
				t.Errorf("shards=%d: stage %s events start=%d done=%d, want 1/1",
					shards, stage, starts[stage], dones[stage])
			}
		}
		if len(iters) != len(res.Report.RRR) {
			t.Fatalf("shards=%d: %d iter events for %d recorded iterations",
				shards, len(iters), len(res.Report.RRR))
		}
		for i, it := range iters {
			if it != i {
				t.Fatalf("shards=%d: iteration numbers not monotone: %v", shards, iters)
			}
		}
	}
}

// TestRunJournalPassive extends the passive-observability contract to
// the journal: attaching one changes no paper-facing output.
func TestRunJournalPassive(t *testing.T) {
	d := design.MustGenerate("18test5m", testScale)
	opt := DefaultOptions(FastGRH)
	opt.T1, opt.T2 = 4, 40
	opt.ExecWorkers = 2
	base, err := Route(d, opt)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	journaled := opt
	journaled.Obs = &obs.Observer{Metrics: obs.NewRegistry(), Health: obs.NewHealth()}
	journaled.Journal = obs.NewJournal(filepath.Join(t.TempDir(), "run.jsonl"))
	res, err := Route(d, journaled)
	if err != nil {
		t.Fatalf("journaled: %v", err)
	}
	a, b := base.Report, res.Report
	if a.Quality != b.Quality || a.Score != b.Score ||
		a.Times.Pattern != b.Times.Pattern || a.Times.Maze != b.Times.Maze ||
		!reflect.DeepEqual(a.RRR, b.RRR) {
		t.Errorf("journal changed reported results:\n%+v\nvs\n%+v", a, b)
	}
	for _, n := range d.Nets {
		ra, rb := base.Routes[n.ID], res.Routes[n.ID]
		if (ra == nil) != (rb == nil) ||
			(ra != nil && !reflect.DeepEqual(ra.Paths, rb.Paths)) {
			t.Fatalf("journal changed net %s geometry", n.Name)
		}
	}
}
