package core_test

// External test package: the guide serializer imports core, so comparing
// guide bytes from inside package core would be an import cycle.

import (
	"bytes"
	"fmt"
	"testing"

	"fastgr/internal/core"
	"fastgr/internal/design"
	"fastgr/internal/geom"
	"fastgr/internal/guide"
)

// crossDesign is a crafted worst case for the splitter: every net's
// bounding box straddles both the vertical and the horizontal center
// cuts, so nothing is intra-leaf and every net goes through the
// fragment/stitch/reconcile machinery. Capacities are tight enough to
// leave rip-up work.
func crossDesign() *design.Design {
	d := &design.Design{
		Name:          "crossall",
		GridW:         64,
		GridH:         64,
		NumLayers:     5,
		LayerCapacity: []int{0, 3, 3, 4, 4},
		ViaCapacity:   6,
	}
	for i := 0; i < 48; i++ {
		n := &design.Net{ID: i, Name: fmt.Sprintf("x%d", i)}
		// Pins on all four sides of the center, so the bbox spans both
		// cut axes regardless of where the pin-median cut lands.
		n.Pins = []design.Pin{
			{Pos: geom.Point{X: 4 + i%9, Y: 28 + i%7}, Layer: 1},
			{Pos: geom.Point{X: 58 - i%11, Y: 30 + i%5}, Layer: 1 + i%2},
			{Pos: geom.Point{X: 29 + i%5, Y: 3 + i%13}, Layer: 1},
			{Pos: geom.Point{X: 31 - i%3, Y: 60 - i%9}, Layer: 1 + (i/2)%2},
		}
		d.Nets = append(d.Nets, n)
	}
	return d
}

func guideBytes(t *testing.T, res *core.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := guide.Write(&buf, guide.FromResult(res)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardDeterminism is the sharded pipeline's output contract: for
// every variant, the emitted guides must be byte-identical for every
// shard count and every worker count — K and ExecWorkers schedule work,
// they never steer it. The crafted all-boundary design additionally
// forces every net through the split/stitch/reconcile path.
func TestShardDeterminism(t *testing.T) {
	designs := []*design.Design{
		design.MustGenerate("18test5m", 0.005),
		crossDesign(),
	}
	for _, d := range designs {
		for _, v := range []core.Variant{core.CUGR, core.FastGRL, core.FastGRH} {
			var base []byte
			var baseRep core.Report
			for _, shards := range []int{1, 2, 4} {
				for _, w := range []int{1, 2, 8} {
					opt := core.DefaultOptions(v)
					opt.T1, opt.T2 = 4, 40
					opt.Shards = shards
					opt.ExecWorkers = w
					res, err := core.Route(d, opt)
					if err != nil {
						t.Fatalf("%s %v shards=%d workers=%d: %v", d.Name, v, shards, w, err)
					}
					if res.Report.Shards != shards || res.Report.ShardLeaves < 2 {
						t.Fatalf("%s %v: sharded run reported Shards=%d ShardLeaves=%d",
							d.Name, v, res.Report.Shards, res.Report.ShardLeaves)
					}
					if d.Name == "crossall" {
						if res.Report.BoundaryNets != len(d.Nets) {
							t.Fatalf("%s %v: %d of %d nets classified boundary, want all",
								d.Name, v, res.Report.BoundaryNets, len(d.Nets))
						}
					} else if res.Report.BoundaryNets == 0 {
						t.Fatalf("%s %v: no boundary nets; test exercises no stitching", d.Name, v)
					}
					gb := guideBytes(t, res)
					if base == nil {
						base, baseRep = gb, res.Report
						continue
					}
					if !bytes.Equal(base, gb) {
						t.Errorf("%s %v: guides differ between (shards=1, workers=1) and (shards=%d, workers=%d)",
							d.Name, v, shards, w)
					}
					if baseRep.Quality != res.Report.Quality ||
						baseRep.Times.Pattern != res.Report.Times.Pattern ||
						baseRep.Times.Maze != res.Report.Times.Maze ||
						baseRep.ReconcileTime != res.Report.ReconcileTime ||
						baseRep.BoundaryNets != res.Report.BoundaryNets ||
						baseRep.BoundaryReroutes != res.Report.BoundaryReroutes {
						t.Errorf("%s %v shards=%d workers=%d: reported outcome drifted:\n%+v\nvs\n%+v",
							d.Name, v, shards, w, baseRep, res.Report)
					}
				}
			}
		}
	}
}

// TestShardZeroIsMonolithic pins the dispatch contract: Shards = 0 runs
// the legacy pipeline and reports no shard accounting.
func TestShardZeroIsMonolithic(t *testing.T) {
	d := design.MustGenerate("18test5m", 0.005)
	opt := core.DefaultOptions(core.FastGRH)
	opt.T1, opt.T2 = 4, 40
	res, err := core.Route(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if r.Shards != 0 || r.ShardLeaves != 0 || r.BoundaryNets != 0 ||
		r.BoundaryReroutes != 0 || r.ReconcileTime != 0 {
		t.Fatalf("monolithic run leaked shard accounting: %+v", r)
	}
	if r.PeakHeapBytes == 0 {
		t.Fatal("PeakHeapBytes never sampled")
	}
}
