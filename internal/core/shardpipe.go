// Sharded spatial pipeline (Options.Shards >= 1): the grid is bisected
// into leaf regions on pin density (internal/shard), intra-leaf nets route
// fully inside their leaf against a leaf-windowed cost cache, and nets
// straddling a cut are split into per-leaf fragments routed against the
// frozen halo state, then stitched and reconciled at sequential
// coordinator points.
//
// Shard-count invariance. Every decision below derives from the cut tree
// (a pure function of design and margin) or happens at a coordinator
// point in canonical net order. The shard count K only picks how leaves
// are grouped onto executor slots; leaves touch provably disjoint grid
// edges (an intra-leaf route never commits an edge leaving its leaf, and
// crossing edges are committed only at the stitch point), so the demand
// trajectory each leaf observes is independent of which other leaves run
// beside it. Routed output is therefore bit-identical for every K >= 1
// and every ExecWorkers count.
//
// Memory. The monolithic pipeline materializes a full-grid cost cache
// (values + prefix sums); the sharded one never warms the parent graph's
// cache — each slot warms at most one leaf-sized window view at a time,
// and coordinator passes (stitching, reconciliation, boundary reroutes)
// read the direct cost formula. Peak heap shrinks with the leaf size,
// which is what Report.PeakHeapBytes measures.
package core

import (
	"errors"
	"fmt"
	"time"

	"fastgr/internal/design"
	"fastgr/internal/fault"
	"fastgr/internal/geom"
	"fastgr/internal/grid"
	"fastgr/internal/maze"
	"fastgr/internal/obs"
	"fastgr/internal/par"
	"fastgr/internal/pattern"
	"fastgr/internal/patterngpu"
	"fastgr/internal/route"
	"fastgr/internal/sched"
	"fastgr/internal/shard"
	"fastgr/internal/stt"
	"fastgr/internal/taskflow"
)

// shardSetup builds the cut plan and classifies every net: a net whose
// Steiner tree fits inside one leaf is intra (routed wholly by that
// leaf); anything else is split into per-leaf fragments plus the
// crossing edges the stitcher will realize. Classification runs at a
// coordinator point and depends only on (design, margin) — never on the
// shard count.
func (r *runner) shardSetup() {
	sp := r.opt.Obs.T().StartSpan("shard.plan", obs.Coordinator)
	defer sp.End()
	r.shplan = shard.BuildPlan(r.d, r.opt.MazeMargin)
	r.rep.Shards = r.opt.Shards
	r.rep.ShardLeaves = r.shplan.NumLeaves()
	r.intraLeaf = make([]int, len(r.trees))
	r.splits = make([]*shard.Split, len(r.trees))
	for i := range r.intraLeaf {
		r.intraLeaf[i] = -1
	}
	for _, n := range r.d.Nets {
		t := r.trees[n.ID]
		if leaf := r.shplan.LeafOf(t.BBox()); leaf >= 0 {
			r.intraLeaf[n.ID] = leaf
		} else {
			r.splits[n.ID] = shard.SplitTree(r.shplan, t)
			r.rep.BoundaryNets++
		}
	}
}

// patItem is one unit of sharded pattern work: an intra net's whole tree,
// or one leaf's fragment of a boundary net.
type patItem struct {
	net   *design.Net
	trees []*stt.Tree
	frag  int // index into splits[net.ID].Fragments; -1 for an intra net
}

// leafAcct accumulates one leaf's pattern-stage accounting; the slices of
// these are reduced in leaf-ordinal order after the barrier so every
// reported number is independent of execution interleaving.
type leafAcct struct {
	seqOps      int64
	kernelTime  time.Duration
	totalEdges  int
	hybridEdges int
	fallbacks   int
}

func itemBBox(trees []*stt.Tree) geom.Rect {
	bb := trees[0].BBox()
	for _, t := range trees[1:] {
		bb = bb.Union(t.BBox())
	}
	return bb
}

// shardGrouping sizes the two-level executor: outer slots iterate leaf
// groups, inner workers execute inside one leaf. outer*inner never
// exceeds the executor pool, so sharding cannot oversubscribe the host.
func (r *runner) shardGrouping() (groups [][]int, outer, inner int) {
	groups = r.shplan.Groups(r.opt.Shards)
	outer = len(groups)
	if w := r.pool.Workers(); outer > w {
		outer = w
	}
	inner = r.pool.Workers() / outer
	if inner < 1 {
		inner = 1
	}
	return groups, outer, inner
}

// shardPatternStage is the sharded counterpart of patternStage: per-leaf
// batched pattern routing (intra nets and boundary-net fragments) behind
// leaf window views, then a sequential stitch of every boundary net's
// fragments across the cuts, then a reconciliation pass rerouting the
// stitched nets that overflow.
func (r *runner) shardPatternStage() error {
	if err := r.checkpoint("pattern", -1); err != nil {
		return err
	}
	start := obs.StartStopwatch()
	tr := r.opt.Obs.T()
	sp := tr.StartSpan("pattern", obs.Coordinator)
	defer sp.End()
	r.stageStart("pattern")

	// Assign work to leaves: one item per intra net, one per (boundary
	// net, leaf) fragment. The per-leaf net order is the global scheme
	// applied to the parent nets — a pure function of the leaf's
	// membership, which the cut tree fixes independently of K.
	numLeaves := r.shplan.NumLeaves()
	leafNets := make([][]*design.Net, numLeaves)
	leafItem := make([]map[int]*patItem, numLeaves)
	for i := range leafItem {
		leafItem[i] = make(map[int]*patItem) // keyed lookups only, never ranged
	}
	fragRoutes := make([][]*route.NetRoute, len(r.routes))
	add := func(leaf int, it *patItem) {
		leafNets[leaf] = append(leafNets[leaf], it.net)
		leafItem[leaf][it.net.ID] = it
	}
	for _, n := range r.d.Nets {
		if leaf := r.intraLeaf[n.ID]; leaf >= 0 {
			add(leaf, &patItem{net: n, trees: []*stt.Tree{r.trees[n.ID]}, frag: -1})
			continue
		}
		s := r.splits[n.ID]
		fragRoutes[n.ID] = make([]*route.NetRoute, len(s.Fragments))
		for fi := range s.Fragments {
			f := &s.Fragments[fi]
			add(f.Leaf, &patItem{net: n, trees: f.Trees, frag: fi})
		}
	}

	leafBatches := make([][][]sched.Task, numLeaves)
	for leaf := 0; leaf < numLeaves; leaf++ {
		sched.SortNets(leafNets[leaf], r.opt.Scheme)
		tasks := make([]sched.Task, len(leafNets[leaf]))
		for i, n := range leafNets[leaf] {
			it := leafItem[leaf][n.ID]
			tasks[i] = sched.Task{ID: i, BBox: itemBBox(it.trees), Payload: it}
		}
		leafBatches[leaf] = sched.ExtractBatches(tasks)
		sched.ObserveBatches(r.opt.Obs.M(), leafBatches[leaf])
		r.rep.PatternBatches += len(leafBatches[leaf])
	}

	cfg := r.patternConfig()
	groups, outer, inner := r.shardGrouping()
	accts := make([]leafAcct, numLeaves)

	// commitItem merges an item's per-tree results into one route and
	// commits it through the leaf view (demand is shared with the parent;
	// the view's cache invalidates itself on the mutation).
	commitItem := func(view *grid.Graph, a *leafAcct, it *patItem, results []pattern.Result) {
		nr := &route.NetRoute{NetID: it.net.ID}
		for _, res := range results {
			nr.Paths = append(nr.Paths, res.Route.Paths...)
			a.totalEdges += res.Edges
			a.hybridEdges += res.HybridEdges
		}
		nr.Commit(view)
		if it.frag < 0 {
			r.routes[it.net.ID] = nr
		} else {
			fragRoutes[it.net.ID][it.frag] = nr
		}
	}

	// Slot fan-out: slot s owns groups s, s+outer, ... — leaves never
	// migrate between goroutines mid-stage, and a leaf's batches run in
	// their canonical order. The outer pool carries no observer (its
	// lanes belong to the inner executors).
	par.NewPool(outer).For(outer, func(_, s int) {
		for gi := s; gi < len(groups); gi += outer {
			for _, leaf := range groups[gi] {
				if len(leafBatches[leaf]) == 0 {
					continue
				}
				view := r.g.WindowView(r.shplan.Leaf(leaf))
				a := &accts[leaf]
				if r.opt.Variant == CUGR {
					for _, batch := range leafBatches[leaf] {
						view.WarmCostCache()
						for _, task := range batch {
							it := task.Payload.(*patItem)
							results := make([]pattern.Result, len(it.trees))
							for i, t := range it.trees {
								results[i] = pattern.SolveCPU(view, t, cfg)
								a.seqOps += results[i].Ops.Total()
							}
							commitItem(view, a, it, results)
						}
					}
					continue
				}
				// One router per leaf: the batch-ordinal base keyed by
				// the leaf keeps kernel fault-injection units disjoint
				// across leaves and invariant in K. No observer — batch
				// spans would collide on the coordinator lane.
				router := patterngpu.New(r.opt.Device, cfg)
				router.Workers = inner
				router.Fault = r.fc
				router.CPU = r.opt.CPU
				router.SetBatchBase(leaf << 20)
				for _, batch := range leafBatches[leaf] {
					trees := make([]*stt.Tree, 0, len(batch))
					for _, task := range batch {
						trees = append(trees, task.Payload.(*patItem).trees...)
					}
					br := router.RouteBatch(view, trees)
					if br.CPUFallback {
						a.fallbacks++
					}
					pos := 0
					for _, task := range batch {
						it := task.Payload.(*patItem)
						commitItem(view, a, it, br.Results[pos:pos+len(it.trees)])
						pos += len(it.trees)
					}
					a.seqOps += br.SeqOps
					a.kernelTime += br.KernelTime
				}
			}
			// One liveness beat per leaf group; Health is mutex-guarded,
			// so worker-side beats are safe and order-independent.
			r.stageBeat("pattern")
		}
	})

	var kernelTime time.Duration
	for leaf := range accts {
		a := &accts[leaf]
		r.rep.PatternSeqOps += a.seqOps
		kernelTime += a.kernelTime
		r.rep.TotalEdges += a.totalEdges
		r.rep.HybridEdges += a.hybridEdges
		r.rep.Fault.KernelFallbacks += a.fallbacks
	}
	r.rep.PatternSeqTime = r.opt.CPU.SequentialTime(r.rep.PatternSeqOps)
	if r.opt.Variant == CUGR {
		r.rep.Times.Pattern = r.rep.PatternSeqTime
	} else {
		r.rep.Times.Pattern = kernelTime
	}
	if m := r.opt.Obs.M(); m != nil {
		m.Counter(obs.MPatternHybrid).Add(int64(r.rep.HybridEdges))
		m.Counter(obs.MPatternLShape).Add(int64(r.rep.TotalEdges - r.rep.HybridEdges))
	}

	// The stitch is the stage's last coordinator pass; checking here means
	// a cancelled run stops before rewriting any boundary net.
	if err := r.checkpoint("stitch", -1); err != nil {
		return err
	}
	if err := r.stitchAndReconcile(fragRoutes); err != nil {
		return err
	}
	// The fragment decompositions duplicate every boundary net's Steiner
	// geometry; once stitched routes are committed nothing reads them
	// again (RRR classifies via intraLeaf and reroutes whole nets), so
	// release them rather than carry them to the stage's high-water mark.
	r.splits = nil
	r.rep.PatternQuality = r.snapshotQuality()
	r.rep.PatternScore = r.rep.PatternQuality.Score()
	r.rep.Times.PatternWall = start.Elapsed()
	r.stageDone("pattern", r.rep.Times.PatternWall, r.rep.PatternScore)
	return nil
}

// stitchAndReconcile runs the two coordinator passes over boundary nets
// in canonical net order: stitching realizes each net's crossing edges
// against the now-complete post-pattern demand (the frozen halo snapshot
// every shard routed against), and reconciliation reroutes whole any
// stitched net still crossing an over-capacity edge.
func (r *runner) stitchAndReconcile(fragRoutes [][]*route.NetRoute) error {
	tr := r.opt.Obs.T()
	sp := tr.StartSpan("shard.stitch", obs.Coordinator)
	for _, n := range r.d.Nets {
		s := r.splits[n.ID]
		if s == nil {
			continue
		}
		frs := fragRoutes[n.ID]
		// The merged route re-commits every fragment edge, so the
		// fragments must come off the grid first or demand would double.
		for _, fr := range frs {
			if fr != nil && fr.Committed() {
				fr.Uncommit(r.g)
			}
		}
		crossings := make([]route.Crossing, len(s.Crossings))
		for i, c := range s.Crossings {
			crossings[i] = route.Crossing{A: c.A, B: c.B}
		}
		nr := route.StitchFragments(r.g, n.ID, route.PinTerminals(r.trees[n.ID]), frs, crossings)
		nr.Commit(r.g)
		r.routes[n.ID] = nr
	}
	sp.End()

	rsp := tr.StartSpan("shard.reconcile", obs.Coordinator)
	defer rsp.End()
	rsearch := maze.NewSearch()
	rsearch.SetAlgorithm(r.opt.MazeAlgorithm)
	rsearch.SetObserver(r.opt.Obs)
	rsearch.SetBudget(r.opt.MazeBudget)
	var recExp int64
	for _, n := range r.d.Nets {
		if r.splits[n.ID] == nil {
			continue
		}
		old := r.routes[n.ID]
		if old == nil || !old.HasOverflow(r.g) {
			continue
		}
		win := n.BBox().Inflate(r.opt.MazeMargin).ClampTo(r.g.W, r.g.H)
		old.Uncommit(r.g)
		nr, st, err := rsearch.RouteNet(r.g, n.ID, route.PinTerminals(r.trees[n.ID]), win)
		if err != nil {
			old.Commit(r.g)
			var be *maze.BudgetError
			if errors.As(err, &be) {
				recExp += st.Expansions
				r.rep.Fault.BudgetFallbacks++
				r.fc.Degrade(fault.SiteBudget, 1)
				continue
			}
			return fmt.Errorf("core: shard reconciliation: %w", err)
		}
		nr.Commit(r.g)
		r.routes[n.ID] = nr
		r.rep.BoundaryReroutes++
		recExp += st.Expansions
	}
	r.rep.ReconcileTime = time.Duration(float64(recExp) * r.opt.MazeNsPerExpansion)
	r.rep.Times.Maze += r.rep.ReconcileTime
	return nil
}

// shardRRRStage is the sharded counterpart of rrrStage. Each iteration
// scans and sorts the violating nets globally (so the reported scheduling
// models cover exactly the same task set as the monolithic pipeline),
// then executes in two phases: intra-leaf nets fan out over leaf groups
// with leaf-clamped maze windows and window-view cost caches, and
// boundary nets reroute sequentially at the coordinator against the
// post-barrier state.
func (r *runner) shardRRRStage() error {
	start := obs.StartStopwatch()
	tr := r.opt.Obs.T()
	stageSp := tr.StartSpan("rrr", obs.Coordinator)
	defer stageSp.End()
	r.stageStart("rrr")
	scheme := r.opt.Scheme
	if r.opt.RRRSchemeOverride != nil {
		scheme = *r.opt.RRRSchemeOverride
	}
	if r.opt.HistoryRRR {
		r.g.EnableHistory()
	}

	numLeaves := r.shplan.NumLeaves()
	groups, outer, inner := r.shardGrouping()
	outerPool := par.NewPool(outer)

	// One maze scratch per composite lane (slot*inner + inner worker),
	// plus a dedicated coordinator scratch for boundary nets. Lanes are
	// disjoint across slots, so a scratch never sees two goroutines.
	searches := make([]*maze.Search, outer*inner)
	for i := range searches {
		searches[i] = maze.NewSearch()
		searches[i].SetAlgorithm(r.opt.MazeAlgorithm)
		searches[i].SetObserver(r.opt.Obs)
		searches[i].SetBudget(r.opt.MazeBudget)
	}
	for iter := 0; iter < r.opt.RRRIters; iter++ {
		if err := r.checkpoint("rrr", iter); err != nil {
			return err
		}
		// The coordinator scratch grows to the largest boundary window —
		// potentially the whole grid — so unlike the leaf-bounded worker
		// scratches it is per-iteration: holding it across iterations
		// would keep a grid-sized allocation on the steady-state heap.
		csearch := maze.NewSearch()
		csearch.SetAlgorithm(r.opt.MazeAlgorithm)
		csearch.SetObserver(r.opt.Obs)
		csearch.SetBudget(r.opt.MazeBudget)
		var iterSp obs.Span
		if tr.On() {
			iterSp = tr.StartSpan(fmt.Sprintf("rrr.iter[%d]", iter), obs.Coordinator)
		}
		violating, scanErr := r.violatingNets()
		if scanErr != nil {
			return scanErr
		}
		if iter == 0 {
			r.rep.NetsToRipup = len(violating)
		}
		if len(violating) == 0 {
			iterSp.End()
			break
		}
		sched.SortNets(violating, scheme)

		windows := make([]geom.Rect, len(violating))
		modelTasks := make([]sched.Task, len(violating))
		leafTis := make([][]int, numLeaves)
		var boundaryTis []int
		for ti, n := range violating {
			windows[ti] = n.BBox().Inflate(r.opt.MazeMargin).ClampTo(r.g.W, r.g.H)
			modelTasks[ti] = sched.Task{ID: ti, BBox: n.BBox(), Payload: n}
			if leaf := r.intraLeaf[n.ID]; leaf >= 0 {
				leafTis[leaf] = append(leafTis[leaf], ti)
			} else {
				boundaryTis = append(boundaryTis, ti)
			}
		}
		// The reported scheduling models span every violating net — intra
		// and boundary alike — on the paper-faithful bounding-box conflict
		// structure, exactly like the monolithic pipeline.
		modelGraph := sched.BuildGraph(modelTasks, r.g.W, r.g.H)

		durations := make([]time.Duration, len(violating))
		expansions := make([]int64, len(violating))
		budgetTrips := make([]bool, len(violating))

		// reroute rips up one net on gg (a leaf view or the parent graph)
		// within win. Same contract as the monolithic work closure: a
		// budget trip — real or injected — keeps the old route gracefully,
		// any other maze error is a hard abort; the Committed guards make
		// containment retries idempotent.
		reroute := func(gg *grid.Graph, sr *maze.Search, ti, lane int, win geom.Rect) error {
			n := violating[ti]
			var msp obs.Span
			if tr.On() {
				msp = tr.StartSpan("maze:"+n.Name, lane)
			}
			defer msp.End()
			if r.fc.InjectBudget(ti, lane) {
				budgetTrips[ti] = true
				return nil
			}
			old := r.routes[n.ID]
			if old.Committed() {
				old.Uncommit(gg)
			}
			pins := route.PinTerminals(r.trees[n.ID])
			nr, st, err := sr.RouteNet(gg, n.ID, pins, win)
			if err != nil {
				if !old.Committed() {
					old.Commit(gg)
				}
				var be *maze.BudgetError
				if errors.As(err, &be) {
					budgetTrips[ti] = true
					expansions[ti] = st.Expansions
					durations[ti] = time.Duration(float64(st.Expansions) * r.opt.MazeNsPerExpansion)
					r.fc.Degrade(fault.SiteBudget, 1)
					return nil
				}
				return err
			}
			nr.Commit(gg)
			r.routes[n.ID] = nr
			expansions[ti] = st.Expansions
			durations[ti] = time.Duration(float64(st.Expansions) * r.opt.MazeNsPerExpansion)
			return nil
		}

		// runLeaf executes one leaf's intra reroutes on slot s behind a
		// fresh window view (the view must postdate the previous
		// iteration's coordinator commits). Windows clamp to the leaf, so
		// every mutation stays inside it — the disjointness that lets
		// leaves run unsynchronized.
		runLeaf := func(s, leaf int) (failed, skipped int, err error) {
			tis := leafTis[leaf]
			leafRect := r.shplan.Leaf(leaf)
			view := r.g.WindowView(leafRect)
			view.WarmCostCache()
			ltasks := make([]sched.Task, len(tis))
			for i, ti := range tis {
				ltasks[i] = sched.Task{ID: i, BBox: windows[ti].Intersect(leafRect), Payload: ti}
			}
			work := func(worker, li int) error {
				lane := s*inner + worker
				return reroute(view, searches[lane], ltasks[li].Payload.(int), lane, ltasks[li].BBox)
			}
			if r.opt.Variant == CUGR {
				ip := par.NewPool(inner)
				ip.SetObserver(r.opt.Obs)
				ip.SetLane(s * inner)
				ip.SetFault(r.fc)
				for _, batch := range sched.ExtractBatches(ltasks) {
					errs := ip.ForUnits(fault.SiteTask, len(batch), func(worker, bi int) error {
						return work(worker, batch[bi].ID)
					})
					for _, we := range errs {
						if !we.Contained {
							return failed, skipped, we.Cause
						}
						failed++
					}
				}
				return failed, skipped, nil
			}
			lg := sched.BuildGraph(ltasks, r.g.W, r.g.H)
			frep := taskflow.RunWorkersFault(lg, inner, nil, r.fc, work)
			if frep.CancelErr != nil {
				return failed, skipped, frep.CancelErr
			}
			return len(frep.Failed), len(frep.Skipped), nil
		}

		// Phase B: intra-leaf nets, leaf groups fanned over slots.
		execErrs := make([]error, outer)
		leafFailed := make([]int, numLeaves)
		leafSkipped := make([]int, numLeaves)
		outerPool.For(outer, func(_, s int) {
			for gi := s; gi < len(groups); gi += outer {
				for _, leaf := range groups[gi] {
					if execErrs[s] != nil {
						return
					}
					if len(leafTis[leaf]) == 0 {
						continue
					}
					failed, skipped, err := runLeaf(s, leaf)
					leafFailed[leaf] = failed
					leafSkipped[leaf] = skipped
					if err != nil {
						execErrs[s] = err
						return
					}
				}
			}
		})
		for s := 0; s < outer; s++ {
			if execErrs[s] != nil {
				return fmt.Errorf("core: rip-up iteration %d: %w", iter, execErrs[s])
			}
		}
		iterFailed, iterSkipped := 0, 0
		for leaf := 0; leaf < numLeaves; leaf++ {
			iterFailed += leafFailed[leaf]
			iterSkipped += leafSkipped[leaf]
		}

		// Phase A: boundary nets, sequential at the coordinator in sorted
		// order against the complete post-barrier state, full windows on
		// the parent graph (whose cache is never warmed — direct formula).
		for _, ti := range boundaryTis {
			ti := ti
			fn := func() error {
				return reroute(r.g, csearch, ti, obs.Coordinator, windows[ti])
			}
			var err error
			if r.fc.Enabled() {
				err = r.fc.Run(fault.SiteTask, ti, obs.Coordinator, fn)
			} else {
				err = fn()
			}
			if err != nil {
				var we *fault.WorkError
				if errors.As(err, &we) && we.Contained {
					iterFailed++
					continue
				}
				return fmt.Errorf("core: rip-up iteration %d: %w", iter, err)
			}
		}

		idBatches := [][]int{}
		for _, b := range sched.ExtractBatches(modelTasks) {
			ids := make([]int, len(b))
			for i, task := range b {
				ids[i] = task.ID
			}
			idBatches = append(idBatches, ids)
		}
		tg := taskflow.Makespan(modelGraph, durations, r.opt.Workers)
		bb := taskflow.BatchMakespan(idBatches, durations, r.opt.Workers)

		var totalExp int64
		for _, e := range expansions {
			totalExp += e
		}
		iterBudget := 0
		for _, tripped := range budgetTrips {
			if tripped {
				iterBudget++
			}
		}
		r.rep.Fault.FailedNets += iterFailed
		r.rep.Fault.SkippedNets += iterSkipped
		r.rep.Fault.BudgetFallbacks += iterBudget
		iterQ := r.snapshotQuality()
		st := IterStats{
			Nets:            len(violating),
			Expansions:      totalExp,
			TaskGraphTime:   tg,
			BatchTime:       bb,
			ConflictEdges:   modelGraph.Edges,
			Quality:         iterQ,
			Score:           iterQ.Score(),
			FailedNets:      iterFailed,
			SkippedNets:     iterSkipped,
			BudgetFallbacks: iterBudget,
		}
		r.rep.RRR = append(r.rep.RRR, st)
		if m := r.opt.Obs.M(); m != nil {
			m.Counter(obs.MRRRNets).Add(int64(len(violating)))
			m.Counter(obs.MRRRExpansions).Add(totalExp)
			m.Gauge(obs.MRRRIterations).Set(int64(iter + 1))
			m.Gauge(obs.MRRROverflow).Set(int64(iterQ.Shorts))
		}
		r.rep.MazeTaskGraphTime += tg
		r.rep.MazeBatchTime += bb
		if r.opt.Variant == CUGR {
			r.rep.Times.Maze += bb
		} else {
			r.rep.Times.Maze += tg
		}
		if r.opt.HistoryRRR {
			bump := r.opt.HistoryBump
			if bump <= 0 {
				bump = 0.5
			}
			r.g.BumpOverflowHistory(bump)
		}
		r.sampleHeap()
		r.stageBeat("rrr")
		r.journalIter(iter, st, iterQ)
		iterSp.End()
	}
	r.rep.Times.MazeWall = start.Elapsed()
	score := r.rep.PatternScore
	if n := len(r.rep.RRR); n > 0 {
		score = r.rep.RRR[n-1].Score
	}
	r.stageDone("rrr", r.rep.Times.MazeWall, score)
	return nil
}
