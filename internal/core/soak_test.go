package core

import (
	"testing"

	"fastgr/internal/design"
	"fastgr/internal/route"
)

// TestSoakAcrossDesigns runs the full quality-oriented pipeline over several
// benchmark families at a tiny scale and checks every cross-module
// invariant at once: connectivity of every net, demand bookkeeping, score
// consistency, and monotone shrinking of the rip-up sets.
func TestSoakAcrossDesigns(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	for _, name := range []string{"18test5", "18test8m", "19test7m", "19test9"} {
		name := name
		t.Run(name, func(t *testing.T) {
			d := design.MustGenerate(name, 0.002)
			opt := DefaultOptions(FastGRH)
			opt.T1, opt.T2 = 4, 25
			res, err := Route(d, opt)
			if err != nil {
				t.Fatal(err)
			}
			rep := res.Report

			for _, n := range d.Nets {
				r := res.Routes[n.ID]
				if r == nil {
					t.Fatalf("net %s unrouted", n.Name)
				}
				if err := r.Validate(res.Grid, route.PinTerminals(res.Trees[n.ID])); err != nil {
					t.Fatalf("net %s: %v", n.Name, err)
				}
			}
			if rep.Score != rep.Quality.Score() {
				t.Fatal("score mismatch")
			}
			// Overflow from the grid must match the reported shorts.
			wire, via := res.Grid.Overflow()
			if rep.Quality.Shorts != wire+via {
				t.Fatalf("shorts %d != grid overflow %d", rep.Quality.Shorts, wire+via)
			}
			// Rip everything: demand returns to zero.
			for _, n := range d.Nets {
				res.Routes[n.ID].Uncommit(res.Grid)
			}
			w2, v2 := res.Grid.TotalDemand()
			if w2 != 0 || v2 != 0 {
				t.Fatalf("unbalanced demand after full rip-up: %d/%d", w2, v2)
			}
		})
	}
}
