// Package design models the input to global routing — multi-pin nets with
// G-cell pin positions on a layered grid — and generates deterministic
// synthetic designs shaped like the ICCAD-2019 contest benchmarks the paper
// evaluates on (the real LEF/DEF suite is not available offline; see
// DESIGN.md for the substitution argument).
package design

import (
	"fmt"
	"sort"

	"fastgr/internal/geom"
)

// Pin is a single connection point of a net, mapped to a G-cell and a metal
// layer (layers are 1-based).
type Pin struct {
	Pos   geom.Point
	Layer int
}

// Net is a multi-pin net: a set of pins that must be electrically connected.
type Net struct {
	ID   int
	Name string
	Pins []Pin
}

// Points returns the distinct 2-D G-cell positions of the net's pins,
// in deterministic order.
func (n *Net) Points() []geom.Point {
	seen := make(map[geom.Point]bool, len(n.Pins))
	pts := make([]geom.Point, 0, len(n.Pins))
	for _, p := range n.Pins {
		if !seen[p.Pos] {
			seen[p.Pos] = true
			pts = append(pts, p.Pos)
		}
	}
	return pts
}

// BBox returns the bounding box of the net's pins.
func (n *Net) BBox() geom.Rect {
	r := geom.NewRect(n.Pins[0].Pos, n.Pins[0].Pos)
	for _, p := range n.Pins[1:] {
		r = r.Extend(p.Pos)
	}
	return r
}

// HPWL is the half-perimeter wirelength of the net's bounding box.
func (n *Net) HPWL() int { return n.BBox().HPWL() }

// Design is a complete global-routing instance: a G-cell grid with L metal
// layers and the nets to route on it.
type Design struct {
	Name      string
	GridW     int // number of G-cell columns
	GridH     int // number of G-cell rows
	NumLayers int // number of metal layers (>= 2)

	// LayerCapacity[l-1] is the wire-edge capacity (tracks per G-cell edge)
	// of metal layer l. Layer 1 carries pins and is typically nearly
	// unroutable, as in the contest benchmarks.
	LayerCapacity []int

	// ViaCapacity is the via-edge capacity between adjacent layers at one
	// G-cell. CUGR models finite via capacity in its 3-D grid graph.
	ViaCapacity int

	Nets []*Net

	// Blockages reduce wire capacity inside a region on one layer, the
	// synthetic stand-in for macros and pre-routes that create the
	// congestion hot spots rip-up-and-reroute has to resolve.
	Blockages []Blockage
}

// Blockage removes Density fraction of the tracks of every wire edge whose
// G-cells fall inside Region on layer Layer.
type Blockage struct {
	Layer   int
	Region  geom.Rect
	Density float64 // in (0,1]; 1.0 blocks the edge completely
}

// NumPins returns the total pin count over all nets.
func (d *Design) NumPins() int {
	n := 0
	for _, net := range d.Nets {
		n += len(net.Pins)
	}
	return n
}

// Validate checks structural invariants of the design and returns the first
// violation found, if any.
func (d *Design) Validate() error {
	if d.GridW < 2 || d.GridH < 2 {
		return fmt.Errorf("design %s: grid %dx%d too small", d.Name, d.GridW, d.GridH)
	}
	if d.NumLayers < 2 {
		return fmt.Errorf("design %s: need >= 2 layers, have %d", d.Name, d.NumLayers)
	}
	if len(d.LayerCapacity) != d.NumLayers {
		return fmt.Errorf("design %s: %d layer capacities for %d layers",
			d.Name, len(d.LayerCapacity), d.NumLayers)
	}
	ids := make(map[int]bool, len(d.Nets))
	for _, n := range d.Nets {
		if len(n.Pins) < 2 {
			return fmt.Errorf("net %s: %d pins, need >= 2", n.Name, len(n.Pins))
		}
		if ids[n.ID] {
			return fmt.Errorf("net %s: duplicate id %d", n.Name, n.ID)
		}
		ids[n.ID] = true
		for _, p := range n.Pins {
			if p.Pos.X < 0 || p.Pos.X >= d.GridW || p.Pos.Y < 0 || p.Pos.Y >= d.GridH {
				return fmt.Errorf("net %s: pin %v outside %dx%d grid",
					n.Name, p.Pos, d.GridW, d.GridH)
			}
			if p.Layer < 1 || p.Layer > d.NumLayers {
				return fmt.Errorf("net %s: pin layer %d outside [1,%d]",
					n.Name, p.Layer, d.NumLayers)
			}
		}
	}
	for _, b := range d.Blockages {
		if b.Layer < 1 || b.Layer > d.NumLayers {
			return fmt.Errorf("blockage layer %d outside [1,%d]", b.Layer, d.NumLayers)
		}
		if b.Density <= 0 || b.Density > 1 {
			return fmt.Errorf("blockage density %v outside (0,1]", b.Density)
		}
	}
	return nil
}

// Stats summarizes a design for Table III-style reporting.
type Stats struct {
	Name     string
	Nets     int
	Pins     int
	GridW    int
	GridH    int
	Layers   int
	AvgHPWL  float64
	MaxHPWL  int
	TwoPin   int // nets with exactly 2 pins
	MultiPin int // nets with > 2 pins
}

// ComputeStats derives summary statistics from a design.
func ComputeStats(d *Design) Stats {
	s := Stats{
		Name:   d.Name,
		Nets:   len(d.Nets),
		Pins:   d.NumPins(),
		GridW:  d.GridW,
		GridH:  d.GridH,
		Layers: d.NumLayers,
	}
	total := 0
	for _, n := range d.Nets {
		h := n.HPWL()
		total += h
		if h > s.MaxHPWL {
			s.MaxHPWL = h
		}
		if len(n.Pins) == 2 {
			s.TwoPin++
		} else {
			s.MultiPin++
		}
	}
	if len(d.Nets) > 0 {
		s.AvgHPWL = float64(total) / float64(len(d.Nets))
	}
	return s
}

// SortNetsByID restores the canonical net order after any experiment that
// permuted d.Nets in place.
func SortNetsByID(nets []*Net) {
	sort.Slice(nets, func(i, j int) bool { return nets[i].ID < nets[j].ID })
}
