package design

import (
	"bytes"
	"strings"
	"testing"

	"fastgr/internal/geom"
)

func TestSpecsTwelveDesigns(t *testing.T) {
	if len(Specs) != 12 {
		t.Fatalf("want 12 specs, have %d", len(Specs))
	}
	for i := 0; i < len(Specs); i += 2 {
		base, m := Specs[i], Specs[i+1]
		if m.Name != base.Name+"m" {
			t.Errorf("spec %d: twin of %s is %s", i, base.Name, m.Name)
		}
		if m.Nets != base.Nets || m.GridW != base.GridW || m.GridH != base.GridH {
			t.Errorf("twin %s differs from %s in nets/grid", m.Name, base.Name)
		}
		if base.Layers != 9 || m.Layers != 5 {
			t.Errorf("layer counts wrong: %s=%d %s=%d", base.Name, base.Layers, m.Name, m.Layers)
		}
	}
}

func TestSpecByName(t *testing.T) {
	s, err := SpecByName("19test9m")
	if err != nil {
		t.Fatal(err)
	}
	if s.Layers != 5 || s.Nets != 895253 {
		t.Fatalf("unexpected spec: %+v", s)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

func TestBaseAndAllNames(t *testing.T) {
	if got := len(BaseNames()); got != 6 {
		t.Fatalf("BaseNames len = %d, want 6", got)
	}
	if got := len(AllNames()); got != 12 {
		t.Fatalf("AllNames len = %d, want 12", got)
	}
	for _, n := range BaseNames() {
		if strings.HasSuffix(n, "m") {
			t.Errorf("base name %q ends in m", n)
		}
	}
}

func TestGenerateValidAndDeterministic(t *testing.T) {
	a := MustGenerate("18test5", 0.004)
	if err := a.Validate(); err != nil {
		t.Fatalf("generated design invalid: %v", err)
	}
	b := MustGenerate("18test5", 0.004)
	var bufA, bufB bytes.Buffer
	if err := Write(&bufA, a); err != nil {
		t.Fatal(err)
	}
	if err := Write(&bufB, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("generation is not deterministic")
	}
}

func TestGenerateScaling(t *testing.T) {
	small := MustGenerate("18test8", 0.002)
	large := MustGenerate("18test8", 0.008)
	if len(large.Nets) <= len(small.Nets) {
		t.Fatalf("scaling broken: %d nets at 0.008 vs %d at 0.002",
			len(large.Nets), len(small.Nets))
	}
	if large.GridW <= small.GridW {
		t.Fatalf("grid did not scale: %d vs %d", large.GridW, small.GridW)
	}
}

func TestGenerateRejectsBadInput(t *testing.T) {
	if _, err := Generate("18test5", 0); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := Generate("18test5", 1.5); err == nil {
		t.Error("scale > 1 accepted")
	}
	if _, err := Generate("unknown", 0.5); err == nil {
		t.Error("unknown design accepted")
	}
}

func TestGeneratedPinMix(t *testing.T) {
	d := MustGenerate("19test7", 0.003)
	two, multi := 0, 0
	for _, n := range d.Nets {
		if len(n.Pins) < 2 {
			t.Fatalf("net %s has %d pins", n.Name, len(n.Pins))
		}
		if len(n.Pins) == 2 {
			two++
		} else {
			multi++
		}
	}
	if two == 0 || multi == 0 {
		t.Fatalf("degenerate pin mix: two=%d multi=%d", two, multi)
	}
	frac := float64(two) / float64(len(d.Nets))
	if frac < 0.35 || frac > 0.85 {
		t.Fatalf("two-pin fraction %0.2f outside expected band", frac)
	}
}

func TestGeneratedHPWLDistribution(t *testing.T) {
	d := MustGenerate("19test8", 0.003)
	small, largeN := 0, 0
	// Local nets keep a small absolute span regardless of scale (cluster
	// sigma is absolute); the threshold mirrors a few cluster diameters.
	const thresh = 14
	for _, n := range d.Nets {
		if n.HPWL() < thresh {
			small++
		}
		if n.HPWL() > d.GridW/2 {
			largeN++
		}
	}
	if float64(small)/float64(len(d.Nets)) < 0.7 {
		t.Fatalf("only %d/%d nets are small; generator should be local-dominated",
			small, len(d.Nets))
	}
	if largeN == 0 {
		t.Fatal("no chip-spanning nets generated; hybrid kernel would be untested")
	}
}

func TestGeneratedBlockagesInBounds(t *testing.T) {
	d := MustGenerate("18test10m", 0.003)
	if len(d.Blockages) == 0 {
		t.Fatal("no blockages generated; no congestion hot spots")
	}
	grid := geom.Rect{Lo: geom.Point{X: 0, Y: 0}, Hi: geom.Point{X: d.GridW - 1, Y: d.GridH - 1}}
	for _, b := range d.Blockages {
		if !grid.Contains(b.Region.Lo) || !grid.Contains(b.Region.Hi) {
			t.Errorf("blockage region %+v outside grid", b.Region)
		}
		if b.Layer < 2 || b.Layer > d.NumLayers {
			t.Errorf("blockage on layer %d", b.Layer)
		}
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	base := func() *Design {
		return &Design{
			Name: "x", GridW: 10, GridH: 10, NumLayers: 3,
			LayerCapacity: []int{1, 10, 10}, ViaCapacity: 4,
			Nets: []*Net{{ID: 0, Name: "n0", Pins: []Pin{
				{Pos: geom.Point{X: 1, Y: 1}, Layer: 1},
				{Pos: geom.Point{X: 5, Y: 5}, Layer: 1},
			}}},
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid design rejected: %v", err)
	}
	d := base()
	d.Nets[0].Pins = d.Nets[0].Pins[:1]
	if d.Validate() == nil {
		t.Error("single-pin net accepted")
	}
	d = base()
	d.Nets[0].Pins[0].Pos.X = 99
	if d.Validate() == nil {
		t.Error("out-of-grid pin accepted")
	}
	d = base()
	d.Nets[0].Pins[0].Layer = 7
	if d.Validate() == nil {
		t.Error("out-of-range pin layer accepted")
	}
	d = base()
	d.LayerCapacity = d.LayerCapacity[:2]
	if d.Validate() == nil {
		t.Error("capacity/layer mismatch accepted")
	}
	d = base()
	d.Nets = append(d.Nets, &Net{ID: 0, Name: "dup", Pins: d.Nets[0].Pins})
	if d.Validate() == nil {
		t.Error("duplicate net id accepted")
	}
	d = base()
	d.Blockages = []Blockage{{Layer: 2, Density: 1.5}}
	if d.Validate() == nil {
		t.Error("blockage density > 1 accepted")
	}
}

func TestRoundTripSerialization(t *testing.T) {
	d := MustGenerate("18test5m", 0.003)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || got.GridW != d.GridW || got.GridH != d.GridH ||
		got.NumLayers != d.NumLayers || got.ViaCapacity != d.ViaCapacity {
		t.Fatalf("header mismatch: %+v vs %+v", got, d)
	}
	if len(got.Nets) != len(d.Nets) {
		t.Fatalf("net count %d vs %d", len(got.Nets), len(d.Nets))
	}
	for i := range d.Nets {
		if len(got.Nets[i].Pins) != len(d.Nets[i].Pins) {
			t.Fatalf("net %d pin count differs", i)
		}
		for j := range d.Nets[i].Pins {
			if got.Nets[i].Pins[j] != d.Nets[i].Pins[j] {
				t.Fatalf("net %d pin %d differs", i, j)
			}
		}
	}
	if len(got.Blockages) != len(d.Blockages) {
		t.Fatalf("blockage count differs")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",                         // no end
		"bogus directive\nend\n",   // unknown directive
		"pin 1 2 3\nend\n",         // pin outside net
		"design x 10 10\nend\n",    // short design line
		"net n0 one\nend\n",        // bad pin count
		"viacap x\nend\n",          // bad viacap
		"blockage 1 2 3\nend\n",    // short blockage
		"caps 1 x\nend\n",          // bad capacity
		"design x 10 10 3\nend\n",  // validate fails: no caps
		"net n0 2\npin 1 2\nend\n", // short pin line
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad input accepted", i)
		}
	}
}

func TestComputeStats(t *testing.T) {
	d := MustGenerate("18test5", 0.003)
	s := ComputeStats(d)
	if s.Nets != len(d.Nets) || s.Pins != d.NumPins() {
		t.Fatal("counts wrong")
	}
	if s.TwoPin+s.MultiPin != s.Nets {
		t.Fatal("two-pin/multi-pin split does not partition nets")
	}
	if s.AvgHPWL <= 0 || s.MaxHPWL <= 0 {
		t.Fatal("HPWL stats not computed")
	}
	if s.Layers != 9 {
		t.Fatalf("layers = %d", s.Layers)
	}
}

func TestNetHelpers(t *testing.T) {
	n := &Net{ID: 1, Name: "n", Pins: []Pin{
		{Pos: geom.Point{X: 1, Y: 2}, Layer: 1},
		{Pos: geom.Point{X: 4, Y: 8}, Layer: 1},
		{Pos: geom.Point{X: 1, Y: 2}, Layer: 2}, // duplicate position
	}}
	if got := len(n.Points()); got != 2 {
		t.Fatalf("Points dedup failed: %d", got)
	}
	if n.HPWL() != 9 {
		t.Fatalf("HPWL = %d, want 9", n.HPWL())
	}
	bb := n.BBox()
	if bb.Lo != (geom.Point{X: 1, Y: 2}) || bb.Hi != (geom.Point{X: 4, Y: 8}) {
		t.Fatalf("BBox = %+v", bb)
	}
}

func TestSortNetsByID(t *testing.T) {
	nets := []*Net{{ID: 3}, {ID: 1}, {ID: 2}}
	SortNetsByID(nets)
	for i, n := range nets {
		if n.ID != i+1 {
			t.Fatalf("order wrong at %d: %d", i, n.ID)
		}
	}
}
