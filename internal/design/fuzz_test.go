package design

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead hardens the design parser: arbitrary input must never panic, and
// anything it accepts must be a valid design that round-trips.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	if err := Write(&seed, MustGenerate("18test5m", 0.003)); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("design x 10 10 3\ncaps 1 8 8\nviacap 4\nnet n0 2\npin 1 1 1\npin 5 5 1\nend\n")
	f.Add("design x 10 10 3\ncaps 1 8 8\nblockage 2 0 0 5 5 0.5\nend\n")
	f.Add("")
	f.Add("garbage\n")
	f.Add("net orphan 1\npin 0 0 1\nend\n")
	f.Add("design x -1 -1 0\nend\n")

	f.Fuzz(func(t *testing.T, input string) {
		d, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("Read accepted an invalid design: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			t.Fatalf("Write failed on accepted design: %v", err)
		}
		d2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(d2.Nets) != len(d.Nets) || d2.GridW != d.GridW || d2.GridH != d.GridH {
			t.Fatal("round trip changed the design")
		}
	})
}
