package design

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"fastgr/internal/geom"
)

// Spec describes one benchmark at full scale. The twelve entries in Specs
// mirror the ICCAD-2019 suite used by the paper: six base designs with nine
// metal layers and their "m" twins that keep the same nets and G-cell grid
// but provide only five metal layers (Table III; exact contest statistics
// are not in the paper text, so net counts and grid sizes are ASSUMED at the
// published order of magnitude — 70k nets for the smallest design up to
// nearly 900k for the largest).
type Spec struct {
	Name   string
	Nets   int // full-scale net count
	GridW  int // full-scale G-cell columns
	GridH  int // full-scale G-cell rows
	Layers int // metal layers: 9 for base designs, 5 for "m" twins
}

// Specs lists the twelve benchmark designs in canonical order.
var Specs = []Spec{
	{"18test5", 71954, 829, 520, 9},
	{"18test5m", 71954, 829, 520, 5},
	{"18test8", 179863, 958, 1151, 9},
	{"18test8m", 179863, 958, 1151, 5},
	{"18test10", 182000, 1051, 798, 9},
	{"18test10m", 182000, 1051, 798, 5},
	{"19test7", 358720, 1053, 1011, 9},
	{"19test7m", 358720, 1053, 1011, 5},
	{"19test8", 537577, 1204, 1138, 9},
	{"19test8m", 537577, 1204, 1138, 5},
	{"19test9", 895253, 1337, 1466, 9},
	{"19test9m", 895253, 1337, 1466, 5},
}

// SpecByName returns the spec for a benchmark name.
func SpecByName(name string) (Spec, error) {
	for _, s := range Specs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("design: unknown benchmark %q", name)
}

// BaseNames returns the six base design names (without the "m" twins),
// matching how the paper lists Table III.
func BaseNames() []string {
	var names []string
	for _, s := range Specs {
		if s.Name[len(s.Name)-1] != 'm' {
			names = append(names, s.Name)
		}
	}
	return names
}

// AllNames returns all twelve benchmark names in canonical order.
func AllNames() []string {
	names := make([]string, len(Specs))
	for i, s := range Specs {
		names[i] = s.Name
	}
	return names
}

// Generation parameters. The mix reproduces the distributional facts the
// paper relies on: ~99% of two-pin nets are "small" (HPWL below t1), ~1%
// "medium" and ~0.1% "large" (Section IV-D), and the net-size mix is
// dominated by 2-4 pin nets as in standard-cell netlists.
const (
	fracRegional = 0.09  // nets spanning a few clusters
	fracGlobal   = 0.012 // chip-spanning nets (drive the hybrid kernel)

	// Wire tracks per G-cell edge. Layer 1 is pin-blocked as in the contest
	// benchmarks; upper layers provide the routing capacity. Fixed per layer,
	// so the 5-layer "m" twins run at roughly double utilization — which is
	// exactly why they are MAZE-dominated in Fig. 3.
	layer1Capacity = 1
	upperCapacity  = 7
	defaultViaCap  = 40
)

// Generate builds the named benchmark scaled by scale in net count (grid
// dimensions scale by sqrt(scale) so that routing density — and therefore
// congestion behaviour — is preserved). scale = 1 reproduces the full-size
// design. Generation is deterministic in (name, scale).
func Generate(name string, scale float64) (*Design, error) {
	spec, err := SpecByName(name)
	if err != nil {
		return nil, err
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("design: scale %v outside (0,1]", scale)
	}
	return generate(spec, scale), nil
}

// MustGenerate is Generate for known-good inputs; it panics on error and is
// intended for tests and examples.
func MustGenerate(name string, scale float64) *Design {
	d, err := Generate(name, scale)
	if err != nil {
		panic(err)
	}
	return d
}

func seedFor(name string, scale float64) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s@%.6f", name, scale)
	return int64(h.Sum64())
}

func generate(spec Spec, scale float64) *Design {
	rng := rand.New(rand.NewSource(seedFor(spec.Name, scale)))

	// Grid sides shrink more slowly than net counts (exponent 0.42 rather
	// than 0.5): at small scales this keeps hot clusters spatially separated
	// the way they are at full size, so conflict-graph sparsity — which the
	// task-graph scheduler's advantage depends on — is preserved. Local
	// cluster density (and therefore congestion behaviour) is unchanged
	// because clusters have absolute size.
	side := math.Pow(scale, 0.42)
	w := geom.Max(48, int(math.Round(float64(spec.GridW)*side)))
	h := geom.Max(48, int(math.Round(float64(spec.GridH)*side)))
	numNets := geom.Max(200, int(math.Round(float64(spec.Nets)*scale)))

	d := &Design{
		Name:        spec.Name,
		GridW:       w,
		GridH:       h,
		NumLayers:   spec.Layers,
		ViaCapacity: defaultViaCap,
	}
	d.LayerCapacity = make([]int, spec.Layers)
	d.LayerCapacity[0] = layer1Capacity
	for l := 1; l < spec.Layers; l++ {
		d.LayerCapacity[l] = upperCapacity
	}

	clusters := makeClusters(rng, w, h, numNets)
	d.Nets = make([]*Net, 0, numNets)
	for i := 0; i < numNets; i++ {
		net := &Net{ID: i, Name: fmt.Sprintf("net%d", i)}
		net.Pins = genPins(rng, clusters, w, h, spec.Layers)
		d.Nets = append(d.Nets, net)
	}
	d.Blockages = genBlockages(rng, clusters, w, h, spec.Layers)
	return d
}

// cluster is a 2-D Gaussian blob of cell density, the synthetic stand-in for
// a placed logic module.
type cluster struct {
	center geom.Point
	sigma  float64
	weight float64
}

func makeClusters(rng *rand.Rand, w, h, numNets int) []cluster {
	k := geom.Clamp(numNets/60, 6, 25000)
	cs := make([]cluster, k)
	for i := range cs {
		cs[i] = cluster{
			center: geom.Point{
				X: 2 + rng.Intn(geom.Max(1, w-4)),
				Y: 2 + rng.Intn(geom.Max(1, h-4)),
			},
			sigma:  1.2 + rng.Float64()*2.8,
			weight: 0.3 + rng.Float64(),
		}
	}
	return cs
}

func pickCluster(rng *rand.Rand, cs []cluster) cluster {
	total := 0.0
	for _, c := range cs {
		total += c.weight
	}
	r := rng.Float64() * total
	for _, c := range cs {
		r -= c.weight
		if r <= 0 {
			return c
		}
	}
	return cs[len(cs)-1]
}

// gaussianPoint samples a grid point around the cluster center.
func gaussianPoint(rng *rand.Rand, c cluster, w, h int) geom.Point {
	x := int(math.Round(float64(c.center.X) + rng.NormFloat64()*c.sigma))
	y := int(math.Round(float64(c.center.Y) + rng.NormFloat64()*c.sigma))
	return geom.Point{X: geom.Clamp(x, 0, w-1), Y: geom.Clamp(y, 0, h-1)}
}

// pinCount samples the number of pins of one net: dominated by 2-4 pin nets
// with a thin tail of high-fanout nets, as in standard-cell netlists.
func pinCount(rng *rand.Rand) int {
	r := rng.Float64()
	switch {
	case r < 0.58:
		return 2
	case r < 0.82:
		return 3
	case r < 0.92:
		return 4
	case r < 0.985:
		return 5 + rng.Intn(6) // 5..10
	default:
		return 11 + rng.Intn(30) // 11..40
	}
}

func pinLayer(rng *rand.Rand, layers int) int {
	// Pins sit on the lowest layers, as cell pins do.
	if rng.Float64() < 0.85 {
		return 1
	}
	return 2
}

func genPins(rng *rand.Rand, cs []cluster, w, h, layers int) []Pin {
	n := pinCount(rng)
	r := rng.Float64()
	var pts []geom.Point
	switch {
	case r < fracGlobal:
		// Chip-spanning net: pins drawn from clusters anywhere on the die.
		pts = drawDistinct(rng, n, func() geom.Point {
			return gaussianPoint(rng, pickCluster(rng, cs), w, h)
		})
	case r < fracGlobal+fracRegional:
		// Regional net: pins split across two clusters.
		a, b := pickCluster(rng, cs), pickCluster(rng, cs)
		pts = drawDistinct(rng, n, func() geom.Point {
			if rng.Intn(2) == 0 {
				return gaussianPoint(rng, a, w, h)
			}
			return gaussianPoint(rng, b, w, h)
		})
	default:
		// Local net inside one cluster.
		c := pickCluster(rng, cs)
		pts = drawDistinct(rng, n, func() geom.Point {
			return gaussianPoint(rng, c, w, h)
		})
	}
	pins := make([]Pin, len(pts))
	for i, p := range pts {
		pins[i] = Pin{Pos: p, Layer: pinLayer(rng, layers)}
	}
	return pins
}

// drawDistinct samples up to n distinct points; it accepts duplicates after a
// bounded number of retries so tiny grids cannot loop forever, but always
// returns at least two distinct positions.
func drawDistinct(rng *rand.Rand, n int, draw func() geom.Point) []geom.Point {
	seen := make(map[geom.Point]bool, n)
	pts := make([]geom.Point, 0, n)
	tries := 0
	for len(pts) < n && tries < n*20 {
		p := draw()
		tries++
		if seen[p] {
			continue
		}
		seen[p] = true
		pts = append(pts, p)
	}
	for len(pts) < 2 {
		// Force a second distinct point adjacent to the first.
		p := pts[0]
		q := geom.Point{X: p.X + 1, Y: p.Y}
		if seen[q] {
			q = geom.Point{X: geom.Max(0, p.X-1), Y: p.Y + 1}
		}
		seen[q] = true
		pts = append(pts, q)
	}
	return pts
}

// genBlockages drops partial blockages over the densest clusters on the
// workhorse middle layers, creating the congestion hot spots that force
// rip-up-and-reroute work.
func genBlockages(rng *rand.Rand, cs []cluster, w, h, layers int) []Blockage {
	sorted := append([]cluster(nil), cs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].weight > sorted[j].weight })
	nb := geom.Clamp(len(sorted)/2, 2, 1200)
	var bs []Blockage
	for i := 0; i < nb; i++ {
		c := sorted[i]
		half := geom.Max(2, int(c.sigma*1.2))
		region := geom.NewRect(
			geom.Point{X: c.center.X - half, Y: c.center.Y - half},
			geom.Point{X: c.center.X + half, Y: c.center.Y + half},
		).ClampTo(w, h)
		// Blockages stack over several routing layers, so the hottest
		// clusters are genuinely oversubscribed: the residual shorts the
		// rip-up iterations cannot clear come from here. The 5-layer "m"
		// twins lose proportionally more of their capacity.
		span := geom.Clamp(2+rng.Intn(3), 2, layers-1)
		for k := 0; k < span; k++ {
			bs = append(bs, Blockage{
				Layer:   2 + (k % (layers - 1)),
				Region:  region,
				Density: 0.72 + rng.Float64()*0.23,
			})
		}
	}
	return bs
}
