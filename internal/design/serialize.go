package design

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"fastgr/internal/geom"
)

// The on-disk format is a minimal line-oriented text format in the spirit of
// the contest inputs:
//
//	design <name> <gridW> <gridH> <layers>
//	caps <c1> <c2> ... <cL>
//	viacap <c>
//	blockage <layer> <lox> <loy> <hix> <hiy> <density>
//	net <name> <npins>
//	  pin <x> <y> <layer>
//	end
//
// It exists so generated benchmarks can be saved once and replayed, and so
// users can hand-write small designs for the examples.

// Write serializes d to w.
func Write(w io.Writer, d *Design) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "design %s %d %d %d\n", d.Name, d.GridW, d.GridH, d.NumLayers)
	fmt.Fprint(bw, "caps")
	for _, c := range d.LayerCapacity {
		fmt.Fprintf(bw, " %d", c)
	}
	fmt.Fprintln(bw)
	fmt.Fprintf(bw, "viacap %d\n", d.ViaCapacity)
	for _, b := range d.Blockages {
		fmt.Fprintf(bw, "blockage %d %d %d %d %d %.4f\n",
			b.Layer, b.Region.Lo.X, b.Region.Lo.Y, b.Region.Hi.X, b.Region.Hi.Y, b.Density)
	}
	for _, n := range d.Nets {
		fmt.Fprintf(bw, "net %s %d\n", n.Name, len(n.Pins))
		for _, p := range n.Pins {
			fmt.Fprintf(bw, "pin %d %d %d\n", p.Pos.X, p.Pos.Y, p.Layer)
		}
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// Read parses a design in the format produced by Write.
func Read(r io.Reader) (*Design, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	d := &Design{ViaCapacity: defaultViaCap}
	var cur *Net
	pinsLeft := 0
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "design":
			if len(fields) != 5 {
				return nil, fmt.Errorf("line %d: design wants 4 args", line)
			}
			d.Name = fields[1]
			if _, err := fmt.Sscanf(strings.Join(fields[2:], " "), "%d %d %d",
				&d.GridW, &d.GridH, &d.NumLayers); err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
		case "caps":
			for _, f := range fields[1:] {
				var c int
				if _, err := fmt.Sscanf(f, "%d", &c); err != nil {
					return nil, fmt.Errorf("line %d: bad capacity %q", line, f)
				}
				d.LayerCapacity = append(d.LayerCapacity, c)
			}
		case "viacap":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: viacap wants 1 arg", line)
			}
			if _, err := fmt.Sscanf(fields[1], "%d", &d.ViaCapacity); err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
		case "blockage":
			if len(fields) != 7 {
				return nil, fmt.Errorf("line %d: blockage wants 6 args", line)
			}
			var b Blockage
			if _, err := fmt.Sscanf(strings.Join(fields[1:], " "), "%d %d %d %d %d %f",
				&b.Layer, &b.Region.Lo.X, &b.Region.Lo.Y,
				&b.Region.Hi.X, &b.Region.Hi.Y, &b.Density); err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			d.Blockages = append(d.Blockages, b)
		case "net":
			if len(fields) != 3 {
				return nil, fmt.Errorf("line %d: net wants 2 args", line)
			}
			cur = &Net{ID: len(d.Nets), Name: fields[1]}
			if _, err := fmt.Sscanf(fields[2], "%d", &pinsLeft); err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			d.Nets = append(d.Nets, cur)
		case "pin":
			if cur == nil || pinsLeft <= 0 {
				return nil, fmt.Errorf("line %d: pin outside net", line)
			}
			var p Pin
			if _, err := fmt.Sscanf(strings.Join(fields[1:], " "), "%d %d %d",
				&p.Pos.X, &p.Pos.Y, &p.Layer); err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			cur.Pins = append(cur.Pins, p)
			pinsLeft--
		case "end":
			if err := d.Validate(); err != nil {
				return nil, err
			}
			return d, nil
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("design: missing end directive")
}

// ParseRect is a convenience for tests and tools: "lox,loy,hix,hiy".
func ParseRect(s string) (geom.Rect, error) {
	var r geom.Rect
	if _, err := fmt.Sscanf(s, "%d,%d,%d,%d", &r.Lo.X, &r.Lo.Y, &r.Hi.X, &r.Hi.Y); err != nil {
		return geom.Rect{}, err
	}
	return r, nil
}
