// Package dr evaluates a global-routing solution the way Table X does — by
// running detailed routing under the guides and reporting wirelength, vias,
// shorts and spacing violations. The full Dr.CU detailed router is not
// reproducible offline; this evaluator performs the dominant first-order
// step, panel-by-panel track assignment: every net's wires inside a routing
// panel (one row of a horizontal layer or one column of a vertical layer)
// are intervals that must receive distinct tracks; positions where the
// interval load exceeds track capacity become shorts, and long parallel
// runs on adjacent tracks become spacing-violation risks.
package dr

import (
	"fmt"
	"sort"

	"fastgr/internal/grid"
	"fastgr/internal/route"
)

// Metrics is the Table X row for one router's guides.
type Metrics struct {
	Wirelength int // track wirelength including detour overhead, G-cell units
	Vias       int // via edges including track-access stubs
	Shorts     int // overlap area that no track assignment can resolve
	Spacing    int // adjacent-track parallel-run violations
}

// interval is one net's contiguous wire run inside a panel, spanning edge
// positions [lo, hi] inclusive.
type interval struct {
	net    int
	lo, hi int
	track  int
}

// panelKey identifies a routing panel: a (layer, row) pair for horizontal
// layers or (layer, column) for vertical ones.
type panelKey struct {
	layer int
	line  int
}

// ValidateRoutes checks every route's geometry against the grid before
// evaluation: segment layers inside [1, L], endpoints inside the G-cell
// array, segments axis-aligned along their layer's preferred direction,
// via stacks in range. Evaluate indexes grid capacity arrays straight
// from these coordinates, so a corrupt route (a truncated guide file, a
// buggy deserializer) must be rejected here with a named net and
// coordinate rather than panic deep inside assignPanel.
func ValidateRoutes(g *grid.Graph, routes []*route.NetRoute) error {
	for _, r := range routes {
		if r == nil {
			continue
		}
		for _, p := range r.Paths {
			for _, s := range p.Segs {
				if s.Layer < 1 || s.Layer > g.L {
					return fmt.Errorf("dr: net %d: segment %v-%v layer %d outside [1,%d]",
						r.NetID, s.A, s.B, s.Layer, g.L)
				}
				for _, pt := range [2]struct{ X, Y int }{{s.A.X, s.A.Y}, {s.B.X, s.B.Y}} {
					if pt.X < 0 || pt.X >= g.W || pt.Y < 0 || pt.Y >= g.H {
						return fmt.Errorf("dr: net %d: segment endpoint (%d,%d) layer %d outside %dx%d grid",
							r.NetID, pt.X, pt.Y, s.Layer, g.W, g.H)
					}
				}
				if g.Dir(s.Layer) == grid.Horizontal {
					if s.A.Y != s.B.Y {
						return fmt.Errorf("dr: net %d: segment %v-%v not row-aligned on horizontal layer %d",
							r.NetID, s.A, s.B, s.Layer)
					}
				} else if s.A.X != s.B.X {
					return fmt.Errorf("dr: net %d: segment %v-%v not column-aligned on vertical layer %d",
						r.NetID, s.A, s.B, s.Layer)
				}
			}
			for _, v := range p.Vias {
				if v.X < 0 || v.X >= g.W || v.Y < 0 || v.Y >= g.H {
					return fmt.Errorf("dr: net %d: via (%d,%d) outside %dx%d grid",
						r.NetID, v.X, v.Y, g.W, g.H)
				}
				if v.L1 < 1 || v.L1 > v.L2 || v.L2 > g.L {
					return fmt.Errorf("dr: net %d: via (%d,%d) layer span [%d,%d] invalid for %d layers",
						r.NetID, v.X, v.Y, v.L1, v.L2, g.L)
				}
			}
		}
	}
	return nil
}

// EvaluateChecked is Evaluate behind the ValidateRoutes gate — the entry
// point for routes that crossed a serialization boundary.
func EvaluateChecked(g *grid.Graph, routes []*route.NetRoute) (Metrics, error) {
	if err := ValidateRoutes(g, routes); err != nil {
		return Metrics{}, err
	}
	return Evaluate(g, routes), nil
}

// Evaluate runs track assignment under the given routes (indexed however the
// caller likes; nil entries are skipped) and returns the detailed metrics.
func Evaluate(g *grid.Graph, routes []*route.NetRoute) Metrics {
	panels := collectPanels(g, routes)

	var m Metrics
	keys := make([]panelKey, 0, len(panels))
	for k := range panels {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].layer != keys[j].layer {
			return keys[i].layer < keys[j].layer
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		pm := assignPanel(g, k, panels[k])
		m.Wirelength += pm.Wirelength
		m.Shorts += pm.Shorts
		m.Spacing += pm.Spacing
		m.Vias += pm.Vias
	}
	// Base vias: the guides' via stacks, plus the per-interval track-access
	// stubs added in assignPanel.
	for _, r := range routes {
		if r != nil {
			m.Vias += r.ViaCount(g)
		}
	}
	return m
}

// collectPanels flattens the routes into per-panel interval lists. Wire
// edges are deduplicated per net first, so overlapping tree edges of one net
// occupy one track, then merged into maximal contiguous intervals.
func collectPanels(g *grid.Graph, routes []*route.NetRoute) map[panelKey][]interval {
	panels := make(map[panelKey][]interval)
	for _, r := range routes {
		if r == nil {
			continue
		}
		// Distinct wire edges per (layer, line): position set.
		occ := make(map[panelKey]map[int]bool)
		for _, p := range r.Paths {
			for _, s := range p.Segs {
				if g.Dir(s.Layer) == grid.Horizontal {
					lo, hi := min(s.A.X, s.B.X), max(s.A.X, s.B.X)
					k := panelKey{s.Layer, s.A.Y}
					addRange(occ, k, lo, hi-1)
				} else {
					lo, hi := min(s.A.Y, s.B.Y), max(s.A.Y, s.B.Y)
					k := panelKey{s.Layer, s.A.X}
					addRange(occ, k, lo, hi-1)
				}
			}
		}
		for k, set := range occ {
			for _, iv := range mergeRuns(set) {
				panels[k] = append(panels[k], interval{net: r.NetID, lo: iv[0], hi: iv[1]})
			}
		}
	}
	return panels
}

func addRange(occ map[panelKey]map[int]bool, k panelKey, lo, hi int) {
	set := occ[k]
	if set == nil {
		set = make(map[int]bool)
		occ[k] = set
	}
	for p := lo; p <= hi; p++ {
		set[p] = true
	}
}

// mergeRuns converts a position set to sorted maximal [lo,hi] runs.
func mergeRuns(set map[int]bool) [][2]int {
	pos := make([]int, 0, len(set))
	for p := range set {
		pos = append(pos, p)
	}
	sort.Ints(pos)
	var runs [][2]int
	for i := 0; i < len(pos); {
		j := i
		for j+1 < len(pos) && pos[j+1] == pos[j]+1 {
			j++
		}
		runs = append(runs, [2]int{pos[i], pos[j]})
		i = j + 1
	}
	return runs
}

// assignPanel greedily colors the panel's intervals onto tracks (best-fit by
// free position) and scores the outcome.
func assignPanel(g *grid.Graph, k panelKey, ivs []interval) Metrics {
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].lo != ivs[j].lo {
			return ivs[i].lo < ivs[j].lo
		}
		return ivs[i].net < ivs[j].net
	})

	capAt := func(pos int) int {
		if g.Dir(k.layer) == grid.Horizontal {
			return g.WireCap(k.layer, pos, k.line)
		}
		return g.WireCap(k.layer, k.line, pos)
	}

	// Track count: the panel's maximum capacity; narrower (blocked) spots
	// are handled by the per-position load check below.
	maxT := 0
	for _, iv := range ivs {
		for p := iv.lo; p <= iv.hi; p++ {
			if c := capAt(p); c > maxT {
				maxT = c
			}
		}
	}

	var m Metrics
	// Best-fit greedy interval coloring.
	freeAt := make([]int, max(maxT, 1))
	for i := range freeAt {
		freeAt[i] = -1 << 30
	}
	for i := range ivs {
		iv := &ivs[i]
		best := -1
		for t, f := range freeAt {
			if f <= iv.lo && (best < 0 || f > freeAt[best]) {
				best = t
			}
		}
		if best < 0 {
			// No free track: overlap with the earliest-freeing one.
			best = 0
			for t := range freeAt {
				if freeAt[t] < freeAt[best] {
					best = t
				}
			}
			overlap := freeAt[best] - iv.lo
			if overlap > iv.hi-iv.lo+1 {
				overlap = iv.hi - iv.lo + 1
			}
			m.Shorts += overlap
			// The detour a detailed router would try first: leave the panel
			// and re-enter, costing extra wirelength and vias.
			m.Wirelength += 2 * overlap
			m.Vias += 2
		}
		iv.track = best
		freeAt[best] = iv.hi + 2 // +1 end, +1 same-track spacing gap
		m.Wirelength += iv.hi - iv.lo + 1
		m.Vias++ // track-access stub
	}

	// Per-position load vs. (possibly blocked) capacity: residual shorts.
	loads := make(map[int]int)
	for _, iv := range ivs {
		for p := iv.lo; p <= iv.hi; p++ {
			loads[p]++
		}
	}
	for p, load := range loads {
		if c := capAt(p); load > c {
			m.Shorts += load - c
		}
	}

	// Spacing: long parallel runs on adjacent tracks. One violation charged
	// per 8 cells of adjacency, the granularity a rule checker flags at.
	for i := 0; i < len(ivs); i++ {
		for j := i + 1; j < len(ivs); j++ {
			if abs(ivs[i].track-ivs[j].track) != 1 {
				continue
			}
			lo := max(ivs[i].lo, ivs[j].lo)
			hi := min(ivs[i].hi, ivs[j].hi)
			if run := hi - lo + 1; run >= 8 {
				m.Spacing += run / 8
			}
		}
	}
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
