package dr

import (
	"math/rand"
	"testing"

	"fastgr/internal/geom"
	"fastgr/internal/route"
)

// TestMetricsMonotoneInLoad: adding nets to a panel never reduces shorts or
// spacing violations — congestion only accumulates.
func TestMetricsMonotoneInLoad(t *testing.T) {
	g := testGrid(t, 3)
	rng := rand.New(rand.NewSource(2))
	var routes []*route.NetRoute
	prev := Metrics{}
	for i := 0; i < 25; i++ {
		y := 3 + rng.Intn(4) // concentrate on a few rows
		x1 := rng.Intn(20)
		x2 := x1 + 4 + rng.Intn(8)
		routes = append(routes, routeWithSeg(i, 3, geom.Point{X: x1, Y: y}, geom.Point{X: x2, Y: y}))
		m := Evaluate(g, routes)
		if m.Shorts < prev.Shorts {
			t.Fatalf("shorts decreased when adding net %d: %d -> %d", i, prev.Shorts, m.Shorts)
		}
		if m.Wirelength < prev.Wirelength {
			t.Fatalf("wirelength decreased when adding net %d", i)
		}
		prev = m
	}
	if prev.Shorts == 0 {
		t.Fatal("25 nets on 4 rows of capacity 3 should overflow")
	}
}

// TestPanelsIndependent: metrics over disjoint panels add up.
func TestPanelsIndependent(t *testing.T) {
	g := testGrid(t, 2)
	a := []*route.NetRoute{
		routeWithSeg(1, 3, geom.Point{X: 0, Y: 2}, geom.Point{X: 10, Y: 2}),
		routeWithSeg(2, 3, geom.Point{X: 0, Y: 2}, geom.Point{X: 10, Y: 2}),
		routeWithSeg(3, 3, geom.Point{X: 0, Y: 2}, geom.Point{X: 10, Y: 2}),
	}
	b := []*route.NetRoute{
		routeWithSeg(4, 3, geom.Point{X: 0, Y: 9}, geom.Point{X: 8, Y: 9}),
		routeWithSeg(5, 3, geom.Point{X: 0, Y: 9}, geom.Point{X: 8, Y: 9}),
	}
	ma := Evaluate(g, a)
	mb := Evaluate(g, b)
	both := Evaluate(g, append(append([]*route.NetRoute{}, a...), b...))
	if both.Shorts != ma.Shorts+mb.Shorts {
		t.Fatalf("shorts not additive over disjoint panels: %d vs %d+%d",
			both.Shorts, ma.Shorts, mb.Shorts)
	}
	if both.Wirelength != ma.Wirelength+mb.Wirelength {
		t.Fatal("wirelength not additive over disjoint panels")
	}
}
