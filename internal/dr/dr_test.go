package dr

import (
	"testing"

	"fastgr/internal/core"
	"fastgr/internal/design"
	"fastgr/internal/geom"
	"fastgr/internal/grid"
	"fastgr/internal/route"
)

func testGrid(t *testing.T, cap int) *grid.Graph {
	t.Helper()
	d := &design.Design{
		Name: "dr", GridW: 32, GridH: 32, NumLayers: 4,
		LayerCapacity: []int{1, cap, cap, cap}, ViaCapacity: 16,
		Nets: []*design.Net{{ID: 0, Name: "n", Pins: []design.Pin{
			{Pos: geom.Point{X: 0, Y: 0}, Layer: 1},
			{Pos: geom.Point{X: 1, Y: 1}, Layer: 1},
		}}},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return grid.NewFromDesign(d)
}

func routeWithSeg(net int, layer int, a, b geom.Point) *route.NetRoute {
	r := &route.NetRoute{NetID: net}
	var p route.Path
	p.AddSeg(layer, a, b)
	r.Paths = []route.Path{p}
	return r
}

func TestEmptyRoutes(t *testing.T) {
	g := testGrid(t, 8)
	m := Evaluate(g, nil)
	if m != (Metrics{}) {
		t.Fatalf("empty evaluation nonzero: %+v", m)
	}
	m = Evaluate(g, []*route.NetRoute{nil, nil})
	if m != (Metrics{}) {
		t.Fatalf("nil routes nonzero: %+v", m)
	}
}

func TestSingleNetNoViolations(t *testing.T) {
	g := testGrid(t, 8)
	r := routeWithSeg(1, 3, geom.Point{X: 2, Y: 5}, geom.Point{X: 10, Y: 5})
	m := Evaluate(g, []*route.NetRoute{r})
	if m.Shorts != 0 || m.Spacing != 0 {
		t.Fatalf("single wire has violations: %+v", m)
	}
	if m.Wirelength != 8 {
		t.Fatalf("wirelength = %d, want 8", m.Wirelength)
	}
	if m.Vias != 1 { // one track-access stub, no guide vias
		t.Fatalf("vias = %d, want 1", m.Vias)
	}
}

func TestCapacityOneOverlapIsShort(t *testing.T) {
	g := testGrid(t, 1)
	// Two nets on the same panel, overlapping in [4,8]: one track only.
	a := routeWithSeg(1, 3, geom.Point{X: 2, Y: 5}, geom.Point{X: 8, Y: 5})
	b := routeWithSeg(2, 3, geom.Point{X: 4, Y: 5}, geom.Point{X: 12, Y: 5})
	m := Evaluate(g, []*route.NetRoute{a, b})
	if m.Shorts == 0 {
		t.Fatal("overlap on a single track produced no shorts")
	}
	// Disjoint nets on one track: no shorts.
	c := routeWithSeg(3, 3, geom.Point{X: 2, Y: 9}, geom.Point{X: 6, Y: 9})
	d := routeWithSeg(4, 3, geom.Point{X: 10, Y: 9}, geom.Point{X: 14, Y: 9})
	m = Evaluate(g, []*route.NetRoute{c, d})
	if m.Shorts != 0 {
		t.Fatalf("disjoint intervals shorted: %+v", m)
	}
}

func TestAdjacentTrackSpacing(t *testing.T) {
	g := testGrid(t, 8)
	// Two nets overlapping for 16 cells land on adjacent tracks.
	a := routeWithSeg(1, 3, geom.Point{X: 0, Y: 5}, geom.Point{X: 16, Y: 5})
	b := routeWithSeg(2, 3, geom.Point{X: 0, Y: 5}, geom.Point{X: 16, Y: 5})
	m := Evaluate(g, []*route.NetRoute{a, b})
	if m.Spacing == 0 {
		t.Fatal("long parallel run produced no spacing violations")
	}
	if m.Shorts != 0 {
		t.Fatalf("two tracks suffice, but shorts = %d", m.Shorts)
	}
}

func TestNetSelfOverlapCountsOnce(t *testing.T) {
	g := testGrid(t, 1)
	// One net with two overlapping paths in the same panel: dedup keeps it
	// on one track, no shorts.
	r := &route.NetRoute{NetID: 7}
	var p1, p2 route.Path
	p1.AddSeg(3, geom.Point{X: 2, Y: 5}, geom.Point{X: 10, Y: 5})
	p2.AddSeg(3, geom.Point{X: 6, Y: 5}, geom.Point{X: 14, Y: 5})
	r.Paths = []route.Path{p1, p2}
	m := Evaluate(g, []*route.NetRoute{r})
	if m.Shorts != 0 {
		t.Fatalf("self-overlap shorted: %+v", m)
	}
	if m.Wirelength != 12 {
		t.Fatalf("wirelength = %d, want 12 (merged run)", m.Wirelength)
	}
}

func TestBlockedRegionShorts(t *testing.T) {
	d := &design.Design{
		Name: "blk", GridW: 32, GridH: 32, NumLayers: 4,
		LayerCapacity: []int{1, 2, 2, 2}, ViaCapacity: 16,
		Nets: []*design.Net{{ID: 0, Name: "n", Pins: []design.Pin{
			{Pos: geom.Point{X: 0, Y: 0}, Layer: 1},
			{Pos: geom.Point{X: 1, Y: 1}, Layer: 1},
		}}},
		Blockages: []design.Blockage{{
			Layer:   3,
			Region:  geom.NewRect(geom.Point{X: 5, Y: 5}, geom.Point{X: 8, Y: 5}),
			Density: 1.0,
		}},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	g := grid.NewFromDesign(d)
	r := routeWithSeg(1, 3, geom.Point{X: 2, Y: 5}, geom.Point{X: 12, Y: 5})
	m := Evaluate(g, []*route.NetRoute{r})
	if m.Shorts == 0 {
		t.Fatal("wire through zero-capacity region produced no shorts")
	}
}

func TestVerticalPanels(t *testing.T) {
	g := testGrid(t, 1)
	a := routeWithSeg(1, 2, geom.Point{X: 5, Y: 2}, geom.Point{X: 5, Y: 10})
	b := routeWithSeg(2, 2, geom.Point{X: 5, Y: 6}, geom.Point{X: 5, Y: 14})
	m := Evaluate(g, []*route.NetRoute{a, b})
	if m.Shorts == 0 {
		t.Fatal("vertical overlap on single track produced no shorts")
	}
}

func TestGuideViasCounted(t *testing.T) {
	g := testGrid(t, 8)
	r := &route.NetRoute{NetID: 1}
	var p route.Path
	p.AddVia(3, 3, 1, 4)
	r.Paths = []route.Path{p}
	m := Evaluate(g, []*route.NetRoute{r})
	if m.Vias != 3 {
		t.Fatalf("vias = %d, want 3", m.Vias)
	}
}

func TestEvaluateFullRouterOutput(t *testing.T) {
	d := design.MustGenerate("18test5m", 0.004)
	opt := core.DefaultOptions(core.FastGRL)
	opt.T1, opt.T2 = 4, 40
	res, err := core.Route(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	m := Evaluate(res.Grid, res.Routes)
	if m.Wirelength < res.Report.Quality.Wirelength {
		t.Fatalf("DR wirelength %d below GR wirelength %d", m.Wirelength, res.Report.Quality.Wirelength)
	}
	if m.Vias < res.Report.Quality.Vias {
		t.Fatalf("DR vias %d below GR vias %d", m.Vias, res.Report.Quality.Vias)
	}
	// Determinism.
	if m2 := Evaluate(res.Grid, res.Routes); m2 != m {
		t.Fatalf("DR evaluation nondeterministic: %+v vs %+v", m, m2)
	}
}

func TestMergeRuns(t *testing.T) {
	runs := mergeRuns(map[int]bool{1: true, 2: true, 3: true, 7: true, 9: true, 10: true})
	want := [][2]int{{1, 3}, {7, 7}, {9, 10}}
	if len(runs) != len(want) {
		t.Fatalf("runs = %v", runs)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("run %d = %v, want %v", i, runs[i], want[i])
		}
	}
}
