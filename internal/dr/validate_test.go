package dr

import (
	"strings"
	"testing"

	"fastgr/internal/geom"
	"fastgr/internal/route"
)

func routeWithVia(net, x, y, l1, l2 int) *route.NetRoute {
	// Built literally, not via AddVia, which normalizes inverted spans —
	// the validator must catch exactly what a deserializer could produce.
	return &route.NetRoute{NetID: net, Paths: []route.Path{
		{Vias: []route.Via{{X: x, Y: y, L1: l1, L2: l2}}},
	}}
}

// TestValidateRoutesMalformed walks the table of geometry corruptions a
// broken serializer could hand Evaluate; each must be rejected with an
// error naming the net and the offending coordinate.
func TestValidateRoutesMalformed(t *testing.T) {
	g := testGrid(t, 8) // 32x32, 4 layers; odd layers horizontal
	cases := []struct {
		name string
		r    *route.NetRoute
		want string // substring of the error ("" = valid)
	}{
		{"valid horizontal", routeWithSeg(1, 3, geom.Point{X: 2, Y: 5}, geom.Point{X: 10, Y: 5}), ""},
		{"valid vertical", routeWithSeg(1, 2, geom.Point{X: 4, Y: 1}, geom.Point{X: 4, Y: 9}), ""},
		{"valid via", routeWithVia(1, 3, 3, 1, 4), ""},
		{"layer zero", routeWithSeg(7, 0, geom.Point{X: 2, Y: 5}, geom.Point{X: 10, Y: 5}),
			"net 7: segment (2,5)-(10,5) layer 0 outside [1,4]"},
		{"layer too high", routeWithSeg(7, 5, geom.Point{X: 2, Y: 5}, geom.Point{X: 10, Y: 5}),
			"layer 5 outside [1,4]"},
		{"endpoint off grid", routeWithSeg(3, 3, geom.Point{X: 2, Y: 5}, geom.Point{X: 32, Y: 5}),
			"net 3: segment endpoint (32,5) layer 3 outside 32x32 grid"},
		{"negative endpoint", routeWithSeg(3, 3, geom.Point{X: -1, Y: 5}, geom.Point{X: 4, Y: 5}),
			"endpoint (-1,5)"},
		{"diagonal on horizontal layer", routeWithSeg(2, 3, geom.Point{X: 2, Y: 5}, geom.Point{X: 10, Y: 6}),
			"not row-aligned on horizontal layer 3"},
		{"diagonal on vertical layer", routeWithSeg(2, 2, geom.Point{X: 2, Y: 5}, geom.Point{X: 3, Y: 9}),
			"not column-aligned on vertical layer 2"},
		{"via off grid", routeWithVia(4, 40, 3, 1, 2),
			"net 4: via (40,3) outside 32x32 grid"},
		{"via layer zero", routeWithVia(4, 3, 3, 0, 2),
			"layer span [0,2] invalid for 4 layers"},
		{"via span inverted", routeWithVia(4, 3, 3, 3, 2),
			"layer span [3,2] invalid"},
		{"via above stack", routeWithVia(4, 3, 3, 2, 5),
			"layer span [2,5] invalid"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateRoutes(g, []*route.NetRoute{nil, tc.r})
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid route rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("corrupt route accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestEvaluateCheckedGatesEvaluation(t *testing.T) {
	g := testGrid(t, 8)
	good := routeWithSeg(1, 3, geom.Point{X: 2, Y: 5}, geom.Point{X: 10, Y: 5})
	m, err := EvaluateChecked(g, []*route.NetRoute{good})
	if err != nil {
		t.Fatal(err)
	}
	if want := Evaluate(g, []*route.NetRoute{good}); m != want {
		t.Fatalf("EvaluateChecked = %+v, Evaluate = %+v", m, want)
	}
	bad := routeWithSeg(1, 9, geom.Point{X: 2, Y: 5}, geom.Point{X: 10, Y: 5})
	if _, err := EvaluateChecked(g, []*route.NetRoute{bad}); err == nil {
		t.Fatal("EvaluateChecked accepted an out-of-stack layer")
	}
}
