// Package drcu is a Dr.CU-style detailed router used to evaluate global
// routing guides the way the paper's Table X does: each G-cell is refined
// into FxF fine cells, every net is constrained to the fine-grid region its
// guides cover (plus one fine cell of slack, as detailed routers allow), and
// nets are routed sequentially with a masked 3-D Dijkstra. Overflowed fine
// edges are shorts; parallel runs at minimum pitch are spacing violations.
//
// Package dr's track-assignment evaluator is the fast estimator; this
// package actually routes, so guide quality differences show up as routed
// wirelength/via/short differences, which is what Table X reports.
package drcu

import (
	"container/heap"
	"fmt"
	"sort"

	"fastgr/internal/core"
	"fastgr/internal/design"
	"fastgr/internal/geom"
	"fastgr/internal/grid"
	"fastgr/internal/route"
)

// Refine is the fine cells per G-cell side (Dr.CU operates on routing
// tracks; 3 tracks per G-cell per layer matches our capacity scale).
const Refine = 3

// Metrics is the detailed-routing outcome for one design.
type Metrics struct {
	Wirelength int // fine-grid wire edges used
	Vias       int // fine-grid via edges used
	Shorts     int // fine wire/via edges used beyond capacity
	Spacing    int // minimum-pitch parallel-run violations
	Unrouted   int // nets whose guides disconnected them (should be 0)
}

// Config tunes the detailed router.
type Config struct {
	// GuideSlack inflates each guide region by this many fine cells, the
	// standard detailed-routing tolerance.
	GuideSlack int
	// FineCapacity is the per-fine-edge track capacity on routing layers.
	FineCapacity int
}

// DefaultConfig mirrors Dr.CU's defaults at our grid scale.
func DefaultConfig() Config {
	return Config{GuideSlack: 1, FineCapacity: 2}
}

// fineGraph is a lightweight fine-grid occupancy structure. Layer
// directions repeat the coarse grid's (odd horizontal, even vertical).
type fineGraph struct {
	w, h, l int
	cfg     Config
	coarse  *grid.Graph
	// demand per fine wire edge, indexed like grid.Graph's wire edges.
	wireDem [][]int16
	viaDem  [][]int16
	// wireNet remembers the last net on each edge for spacing analysis.
	wireNet [][]int32
}

func newFineGraph(g *grid.Graph, cfg Config) *fineGraph {
	f := &fineGraph{w: g.W * Refine, h: g.H * Refine, l: g.L, cfg: cfg, coarse: g}
	f.wireDem = make([][]int16, g.L)
	f.wireNet = make([][]int32, g.L)
	f.viaDem = make([][]int16, g.L-1)
	for l := 1; l <= g.L; l++ {
		n := f.numWireEdges(l)
		f.wireDem[l-1] = make([]int16, n)
		f.wireNet[l-1] = make([]int32, n)
		for i := range f.wireNet[l-1] {
			f.wireNet[l-1][i] = -1
		}
	}
	for b := 0; b < g.L-1; b++ {
		f.viaDem[b] = make([]int16, f.w*f.h)
	}
	return f
}

func (f *fineGraph) dir(l int) grid.Dir { return f.coarse.Dir(l) }

func (f *fineGraph) numWireEdges(l int) int {
	if f.dir(l) == grid.Horizontal {
		return (f.w - 1) * f.h
	}
	return f.w * (f.h - 1)
}

func (f *fineGraph) wireIndex(l, x, y int) int {
	if f.dir(l) == grid.Horizontal {
		return y*(f.w-1) + x
	}
	return x*(f.h-1) + y
}

// wireCap derives the fine edge's capacity from the coarse edge it refines:
// a G-cell edge with C tracks spreads them over the Refine parallel fine
// rows (remainder to the lowest rows), so a capacity-1 pin layer stays a
// single track and blockages stay blocked. FineCapacity caps the per-row
// track count (track pitch).
func (f *fineGraph) wireCap(l, x, y int) int {
	cx, cy := x/Refine, y/Refine
	var row int
	if f.dir(l) == grid.Horizontal {
		if cx >= f.coarse.W-1 {
			cx = f.coarse.W - 2
		}
		row = y % Refine
	} else {
		if cy >= f.coarse.H-1 {
			cy = f.coarse.H - 2
		}
		row = x % Refine
	}
	c := f.coarse.WireCap(l, cx, cy)
	share := c / Refine
	if row < c%Refine {
		share++
	}
	if share > f.cfg.FineCapacity {
		share = f.cfg.FineCapacity
	}
	return share
}

// Evaluate detail-routes every net of a global-routing result under its
// guides and scores the outcome.
func Evaluate(res *core.Result, cfg Config) Metrics {
	g := res.Grid
	f := newFineGraph(g, cfg)

	// Net order: ascending HPWL, the ordering the paper settles on.
	nets := append([]*design.Net(nil), res.Design.Nets...)
	sort.Slice(nets, func(i, j int) bool {
		hi, hj := nets[i].HPWL(), nets[j].HPWL()
		if hi != hj {
			return hi < hj
		}
		return nets[i].ID < nets[j].ID
	})

	var m Metrics
	for _, n := range nets {
		r := res.Routes[n.ID]
		if r == nil {
			continue
		}
		mask := guideMask(f, r, cfg.GuideSlack)
		pins := finePins(n)
		ok := f.routeNet(int32(n.ID), pins, mask, &m)
		if !ok {
			m.Unrouted++
		}
	}
	f.score(&m)
	return m
}

// finePins maps a net's pins to fine-grid terminals (G-cell centers).
func finePins(n *design.Net) []geom.Point3 {
	var pins []geom.Point3
	seen := map[geom.Point3]bool{}
	for _, p := range n.Pins {
		fp := geom.Point3{
			X:     p.Pos.X*Refine + Refine/2,
			Y:     p.Pos.Y*Refine + Refine/2,
			Layer: p.Layer,
		}
		if !seen[fp] {
			seen[fp] = true
			pins = append(pins, fp)
		}
	}
	return pins
}

// guideMask returns the set of fine cells (per layer) a net may use: the
// fine expansion of every G-cell its guides touch, inflated by slack.
type mask struct {
	cells map[int64]bool
	bbox  geom.Rect
}

func maskKey(x, y, l int) int64 {
	return (int64(l)<<40 | int64(y)<<20 | int64(x))
}

func guideMask(f *fineGraph, r *route.NetRoute, slack int) *mask {
	m := &mask{cells: make(map[int64]bool)}
	first := true
	add := func(cx, cy, l int) {
		lox := geom.Max(0, cx*Refine-slack)
		hix := geom.Min(f.w-1, (cx+1)*Refine-1+slack)
		loy := geom.Max(0, cy*Refine-slack)
		hiy := geom.Min(f.h-1, (cy+1)*Refine-1+slack)
		for y := loy; y <= hiy; y++ {
			for x := lox; x <= hix; x++ {
				m.cells[maskKey(x, y, l)] = true
			}
		}
		r := geom.NewRect(geom.Point{X: lox, Y: loy}, geom.Point{X: hix, Y: hiy})
		if first {
			m.bbox = r
			first = false
		} else {
			m.bbox = m.bbox.Union(r)
		}
	}
	for _, p := range r.Paths {
		for _, s := range p.Segs {
			if s.A.Y == s.B.Y {
				lo, hi := geom.Min(s.A.X, s.B.X), geom.Max(s.A.X, s.B.X)
				for x := lo; x <= hi; x++ {
					add(x, s.A.Y, s.Layer)
				}
			} else {
				lo, hi := geom.Min(s.A.Y, s.B.Y), geom.Max(s.A.Y, s.B.Y)
				for y := lo; y <= hi; y++ {
					add(s.A.X, y, s.Layer)
				}
			}
		}
		for _, v := range p.Vias {
			for l := v.L1; l <= v.L2; l++ {
				add(v.X, v.Y, l)
			}
		}
	}
	return m
}

func (m *mask) allows(x, y, l int) bool { return m.cells[maskKey(x, y, l)] }

// edge costs on the fine grid: unit wire plus a quadratic crowding penalty,
// so the router prefers free tracks but can overlap (creating shorts) when
// the guide region is exhausted.
func (f *fineGraph) wireCost(l, x, y int) float64 {
	cap := f.wireCap(l, x, y)
	dem := int(f.wireDem[l-1][f.wireIndex(l, x, y)])
	c := 1.0
	if dem >= cap {
		over := float64(dem - cap + 1)
		c += 8 * over * over
	}
	return c
}

func (f *fineGraph) viaCost(x, y, l int) float64 {
	dem := int(f.viaDem[l-1][y*f.w+x])
	c := 2.0
	if dem >= f.cfg.FineCapacity {
		over := float64(dem - f.cfg.FineCapacity + 1)
		c += 8 * over * over
	}
	return c
}

// routeNet connects the net's fine pins inside the mask pin by pin; returns
// false when the guides disconnect the pins.
func (f *fineGraph) routeNet(netID int32, pins []geom.Point3, msk *mask, m *Metrics) bool {
	if len(pins) == 0 {
		return true
	}
	// Pins are guaranteed inside the guides (guides cover the routed
	// geometry, which touches every pin G-cell), but be defensive.
	for _, p := range pins {
		if !msk.allows(p.X, p.Y, p.Layer) {
			return false
		}
	}
	connected := []geom.Point3{pins[0]}
	inConn := map[geom.Point3]bool{pins[0]: true}
	remaining := map[geom.Point3]bool{}
	for _, p := range pins[1:] {
		if p != pins[0] {
			remaining[p] = true
		}
	}
	for len(remaining) > 0 {
		nodes, ok := f.dijkstra(connected, remaining, msk)
		if !ok {
			return false
		}
		reached := nodes[0]
		delete(remaining, reached)
		f.commit(netID, nodes, m)
		for _, nd := range nodes {
			if !inConn[nd] {
				inConn[nd] = true
				connected = append(connected, nd)
			}
		}
	}
	return true
}

// commit walks consecutive path nodes, bumping fine demand and counting
// wirelength/vias (edges already used by this very net are free — node
// lists may revisit the connected tree's joint).
func (f *fineGraph) commit(netID int32, nodes []geom.Point3, m *Metrics) {
	for i := 1; i < len(nodes); i++ {
		a, b := nodes[i-1], nodes[i]
		if a.Layer != b.Layer {
			lo := geom.Min(a.Layer, b.Layer)
			f.viaDem[lo-1][a.Y*f.w+a.X]++
			m.Vias++
			continue
		}
		var l, x, y int
		l = a.Layer
		if a.Y == b.Y {
			x, y = geom.Min(a.X, b.X), a.Y
		} else {
			x, y = a.X, geom.Min(a.Y, b.Y)
		}
		idx := f.wireIndex(l, x, y)
		if f.wireNet[l-1][idx] == netID {
			continue // same net already owns this edge
		}
		f.wireNet[l-1][idx] = netID
		f.wireDem[l-1][idx]++
		m.Wirelength++
	}
}

// score derives shorts and spacing from the final fine occupancy.
func (f *fineGraph) score(m *Metrics) {
	for l := 1; l <= f.l; l++ {
		var limX, limY int
		if f.dir(l) == grid.Horizontal {
			limX, limY = f.w-1, f.h
		} else {
			limX, limY = f.w, f.h-1
		}
		for y := 0; y < limY; y++ {
			for x := 0; x < limX; x++ {
				dem := int(f.wireDem[l-1][f.wireIndex(l, x, y)])
				cap := f.wireCap(l, x, y)
				if dem > cap {
					m.Shorts += dem - cap
				}
			}
		}
		// Spacing: two distinct nets on adjacent parallel fine edges (the
		// minimum-pitch situation a rule checker flags). Sampled every
		// other position to mirror real checkers' merged violations.
		if f.dir(l) == grid.Horizontal {
			for y := 0; y+1 < f.h; y++ {
				for x := 0; x < f.w-1; x += 2 {
					a := f.wireNet[l-1][f.wireIndex(l, x, y)]
					b := f.wireNet[l-1][f.wireIndex(l, x, y+1)]
					if a >= 0 && b >= 0 && a != b {
						m.Spacing++
					}
				}
			}
		} else {
			for x := 0; x+1 < f.w; x++ {
				for y := 0; y < f.h-1; y += 2 {
					a := f.wireNet[l-1][f.wireIndex(l, x, y)]
					b := f.wireNet[l-1][f.wireIndex(l, x+1, y)]
					if a >= 0 && b >= 0 && a != b {
						m.Spacing++
					}
				}
			}
		}
	}
	for b := 0; b < f.l-1; b++ {
		for _, d := range f.viaDem[b] {
			if int(d) > f.cfg.FineCapacity {
				m.Shorts += int(d) - f.cfg.FineCapacity
			}
		}
	}
}

// dijkstra runs a masked multi-source search to the nearest remaining pin
// and returns the path's node list (target first). Hash-map state keeps the
// sparse mask regions cheap.
func (f *fineGraph) dijkstra(sources []geom.Point3, targets map[geom.Point3]bool, msk *mask) ([]geom.Point3, bool) {
	dist := make(map[geom.Point3]float64, len(msk.cells))
	parent := make(map[geom.Point3]geom.Point3, len(msk.cells))
	q := &fpq{}
	for _, s := range sources {
		if !msk.allows(s.X, s.Y, s.Layer) {
			continue
		}
		if d, ok := dist[s]; !ok || d > 0 {
			dist[s] = 0
			heap.Push(q, fpqItem{s, 0})
		}
	}
	visited := make(map[geom.Point3]bool, len(msk.cells))
	for q.Len() > 0 {
		it := heap.Pop(q).(fpqItem)
		if visited[it.p] || it.d > dist[it.p]+1e-12 {
			continue
		}
		visited[it.p] = true
		if targets[it.p] {
			// Reconstruct target-first node list.
			var nodes []geom.Point3
			for p := it.p; ; {
				nodes = append(nodes, p)
				pp, ok := parent[p]
				if !ok {
					break
				}
				p = pp
			}
			return nodes, true
		}
		f.relax(it.p, dist, parent, q, msk)
	}
	return nil, false
}

func (f *fineGraph) relax(p geom.Point3, dist map[geom.Point3]float64,
	parent map[geom.Point3]geom.Point3, q *fpq, msk *mask) {
	d := dist[p]
	try := func(np geom.Point3, c float64) {
		if !msk.allows(np.X, np.Y, np.Layer) {
			return
		}
		nd := d + c
		if old, ok := dist[np]; !ok || nd < old {
			dist[np] = nd
			parent[np] = p
			heap.Push(q, fpqItem{np, nd})
		}
	}
	if f.dir(p.Layer) == grid.Horizontal {
		if p.X+1 < f.w {
			try(geom.Point3{X: p.X + 1, Y: p.Y, Layer: p.Layer}, f.wireCost(p.Layer, p.X, p.Y))
		}
		if p.X-1 >= 0 {
			try(geom.Point3{X: p.X - 1, Y: p.Y, Layer: p.Layer}, f.wireCost(p.Layer, p.X-1, p.Y))
		}
	} else {
		if p.Y+1 < f.h {
			try(geom.Point3{X: p.X, Y: p.Y + 1, Layer: p.Layer}, f.wireCost(p.Layer, p.X, p.Y))
		}
		if p.Y-1 >= 0 {
			try(geom.Point3{X: p.X, Y: p.Y - 1, Layer: p.Layer}, f.wireCost(p.Layer, p.X, p.Y-1))
		}
	}
	if p.Layer+1 <= f.l {
		try(geom.Point3{X: p.X, Y: p.Y, Layer: p.Layer + 1}, f.viaCost(p.X, p.Y, p.Layer))
	}
	if p.Layer-1 >= 1 {
		try(geom.Point3{X: p.X, Y: p.Y, Layer: p.Layer - 1}, f.viaCost(p.X, p.Y, p.Layer-1))
	}
}

type fpqItem struct {
	p geom.Point3
	d float64
}

type fpq []fpqItem

func (q fpq) Len() int            { return len(q) }
func (q fpq) Less(i, j int) bool  { return q[i].d < q[j].d }
func (q fpq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *fpq) Push(x interface{}) { *q = append(*q, x.(fpqItem)) }
func (q *fpq) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// Validate sanity-checks a metrics record.
func (m Metrics) Validate() error {
	if m.Wirelength < 0 || m.Vias < 0 || m.Shorts < 0 || m.Spacing < 0 || m.Unrouted < 0 {
		return fmt.Errorf("drcu: negative metric: %+v", m)
	}
	return nil
}

// Score folds the detailed metrics with the global-routing weights of
// eq. 15 for quick comparisons.
func (m Metrics) Score() float64 {
	return 0.5*float64(m.Wirelength) + 4*float64(m.Vias) +
		500*float64(m.Shorts) + 100*float64(m.Spacing) + 5000*float64(m.Unrouted)
}
