package drcu

import (
	"testing"

	"fastgr/internal/core"
	"fastgr/internal/design"
	"fastgr/internal/dr"
)

func routed(t *testing.T, name string, v core.Variant) *core.Result {
	t.Helper()
	d := design.MustGenerate(name, 0.003)
	opt := core.DefaultOptions(v)
	opt.T1, opt.T2 = 5, 27
	res, err := core.Route(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEvaluateRoutesEveryNet(t *testing.T) {
	res := routed(t, "18test5m", core.FastGRL)
	m := Evaluate(res, DefaultConfig())
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Unrouted != 0 {
		t.Fatalf("%d nets unroutable within their guides", m.Unrouted)
	}
	if m.Wirelength == 0 || m.Vias == 0 {
		t.Fatalf("empty detailed routing: %+v", m)
	}
	// Fine wirelength must be at least Refine times the coarse wirelength
	// minus slack effects: each coarse edge is Refine fine edges, though
	// detailed routing may shortcut inside guide slack. A loose lower bound:
	gr := res.Report.Quality.Wirelength
	if m.Wirelength < gr {
		t.Fatalf("fine wirelength %d below coarse %d", m.Wirelength, gr)
	}
}

func TestDeterministic(t *testing.T) {
	res := routed(t, "18test5m", core.FastGRL)
	a := Evaluate(res, DefaultConfig())
	b := Evaluate(res, DefaultConfig())
	if a != b {
		t.Fatalf("detailed routing nondeterministic: %+v vs %+v", a, b)
	}
}

func TestGuideSlackLoosensRouting(t *testing.T) {
	res := routed(t, "18test5m", core.FastGRL)
	tight := Evaluate(res, Config{GuideSlack: 0, FineCapacity: 2})
	loose := Evaluate(res, Config{GuideSlack: 2, FineCapacity: 2})
	if err := tight.Validate(); err != nil {
		t.Fatal(err)
	}
	// Greedy sequential routing is not monotone in slack (detours through
	// shared slack can crowd neighbors), but reachability is: extra slack
	// never disconnects a net that tight guides could route.
	if loose.Unrouted > tight.Unrouted {
		t.Fatalf("slack disconnected nets: %d -> %d", tight.Unrouted, loose.Unrouted)
	}
	if err := loose.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHigherFineCapacityReducesShorts(t *testing.T) {
	res := routed(t, "18test5m", core.FastGRL)
	small := Evaluate(res, Config{GuideSlack: 1, FineCapacity: 1})
	big := Evaluate(res, Config{GuideSlack: 1, FineCapacity: 4})
	if big.Shorts > small.Shorts {
		t.Fatalf("more tracks increased shorts: %d -> %d", small.Shorts, big.Shorts)
	}
	if small.Shorts == 0 {
		t.Fatal("capacity-1 detailed routing of a congested twin should short somewhere")
	}
}

func TestAgreesWithEstimatorDirection(t *testing.T) {
	// The fine router and the track-assignment estimator must agree on the
	// congestion ordering of a clean vs. congested design.
	clean := routed(t, "18test5", core.FastGRL)
	hot := routed(t, "18test5m", core.FastGRL)
	fineClean := Evaluate(clean, DefaultConfig())
	fineHot := Evaluate(hot, DefaultConfig())
	estClean := dr.Evaluate(clean.Grid, clean.Routes)
	estHot := dr.Evaluate(hot.Grid, hot.Routes)
	if (fineHot.Shorts > fineClean.Shorts) != (estHot.Shorts > estClean.Shorts) {
		t.Fatalf("evaluators disagree on which design is more congested: fine %d/%d est %d/%d",
			fineClean.Shorts, fineHot.Shorts, estClean.Shorts, estHot.Shorts)
	}
}

func TestScore(t *testing.T) {
	m := Metrics{Wirelength: 100, Vias: 10, Shorts: 2, Spacing: 3, Unrouted: 1}
	want := 0.5*100 + 4*10 + 500*2 + 100*3 + 5000*1
	if got := m.Score(); got != want {
		t.Fatalf("Score = %v, want %v", got, want)
	}
	bad := Metrics{Wirelength: -1}
	if bad.Validate() == nil {
		t.Fatal("negative metric accepted")
	}
}
