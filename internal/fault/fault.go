// Package fault is the router's deterministic fault-injection and
// containment layer. It gives every parallel execution site — par loop
// indices, taskflow tasks, pattern-stage kernels, maze searches — a
// containment wrapper that recovers panics, retries the work unit a
// bounded number of times, and surfaces a typed WorkError when retries
// are exhausted, so a failing worker degrades one net's route instead of
// killing the process.
//
// Determinism is the design constraint everything here bends around.
// Whether a synthetic fault fires at (site, unit, attempt) is a pure
// hash of the chaos seed and those coordinates — never a stateful random
// source, whose draw order would depend on goroutine interleaving and
// therefore on the worker count. Units are worker-count-invariant
// identities (a loop index, a task id, a batch ordinal, never a chunk
// boundary), injections fire at wrapper entry (before the body has
// mutated anything, so a retry re-runs a unit that never half-executed),
// and the retry backoff counts scheduler yields instead of reading the
// wall clock. Under those rules the set of failed, retried and degraded
// units — and with it the routed output — is bit-identical at every
// ExecWorkers count, which is what lets core's chaos suite sweep worker
// counts with injection on.
//
// Accounting: every fired injection is classified exactly once —
// "recovered" when a retry follows, "degraded" when the failure is final
// (retry exhaustion, a kernel fallback, a budget trip) — so for
// injection-only fault sources the obs counters obey
//
//	fault.injected == fault.recovered + fault.degraded
//
// exactly; the chaos suite asserts that equation on every run.
package fault

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"fastgr/internal/obs"
)

// Containment sites: the per-site keys of the injection probability
// table. Each names one wrapper in the execution stack.
const (
	// SitePlan is one net's Steiner-tree build+shift in the planning loop.
	SitePlan = "plan.net"
	// SiteScan is one net's overflow check in the violating-net scan.
	SiteScan = "scan.net"
	// SiteSolve is one net's flow evaluation inside a pattern batch kernel.
	SiteSolve = "gpu.solve"
	// SiteKernel is one whole pattern-stage batch kernel; a kernel-site
	// fault falls the batch back to the CPU baseline path.
	SiteKernel = "gpu.kernel"
	// SiteTask is one rip-up-and-reroute task (taskflow task or
	// batch-barrier unit).
	SiteTask = "rrr.task"
	// SiteBudget is one net's maze expansion budget; a budget-site fault
	// makes the net keep its pattern route.
	SiteBudget = "maze.budget"
)

// Sites lists every containment site, the keys UniformProbs fills.
var Sites = []string{SitePlan, SiteScan, SiteSolve, SiteKernel, SiteTask, SiteBudget}

// DefaultMaxAttempts bounds a work unit's tries (first run + retries)
// when Options does not say otherwise.
const DefaultMaxAttempts = 3

// Options configures the containment layer for one routing run.
type Options struct {
	// Seed drives the injection hash; runs with equal (seed, probs,
	// workload) fire identical fault sets at every worker count.
	Seed int64
	// MaxAttempts bounds per-unit tries (first run + retries); 0 means
	// DefaultMaxAttempts.
	MaxAttempts int
	// Probs is the per-site injection probability table in [0, 1].
	// Missing or zero entries never fire; an empty table arms containment
	// with injection off — the production mode.
	Probs map[string]float64
}

// UniformProbs returns a table firing with probability p at every site.
func UniformProbs(p float64) map[string]float64 {
	m := make(map[string]float64, len(Sites))
	for _, s := range Sites {
		m[s] = p
	}
	return m
}

// ErrInjected is the cause recorded for injector-fired synthetic faults.
var ErrInjected = errors.New("injected fault")

// PanicError carries a recovered panic value as an error.
type PanicError struct{ Value any }

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// WorkError is the typed, terminal failure of one work unit: its
// containment attempts are exhausted (Contained) or its body returned an
// error of its own (un-Contained, never retried). It is the value that
// surfaces instead of a process crash.
type WorkError struct {
	Site     string
	Unit     int
	Attempts int
	// Contained reports the failure came from the containment layer (an
	// injected fault or a recovered panic) rather than from the unit body
	// returning an error deliberately.
	Contained bool
	Cause     error
}

func (e *WorkError) Error() string {
	return fmt.Sprintf("fault: %s unit %d failed after %d attempt(s): %v",
		e.Site, e.Unit, e.Attempts, e.Cause)
}

func (e *WorkError) Unwrap() error { return e.Cause }

// Injector decides whether a synthetic fault fires at a coordinate. A
// nil Injector never fires.
type Injector struct {
	seed  int64
	probs map[string]float64
}

// NewInjector builds an injector from a probability table; zero and
// negative entries are dropped, and an effectively empty table yields
// nil (injection off).
func NewInjector(seed int64, probs map[string]float64) *Injector {
	m := make(map[string]float64, len(probs))
	for site, p := range probs {
		if p > 0 {
			m[site] = p
		}
	}
	if len(m) == 0 {
		return nil
	}
	return &Injector{seed: seed, probs: m}
}

// Fire reports whether a synthetic fault fires at (site, unit, attempt).
// The decision is a pure function of the seed and the coordinates —
// independent of call order, goroutine interleaving and worker count.
func (in *Injector) Fire(site string, unit, attempt int) bool {
	if in == nil {
		return false
	}
	p, ok := in.probs[site]
	if !ok {
		return false
	}
	h := mix(uint64(in.seed) ^ hashString(site))
	h = mix(h + uint64(int64(unit))*0x9e3779b97f4a7c15)
	h = mix(h + uint64(int64(attempt))*0xbf58476d1ce4e5b9)
	// Top 53 bits to a uniform float in [0, 1).
	return float64(h>>11)/(1<<53) < p
}

// hashString is FNV-1a, the stdlib-free way to fold a site name into the
// injection hash.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix is the splitmix64 finalizer: a full-avalanche bijection, so
// nearby coordinates decorrelate.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SiteStats is one containment site's accounting: how many faults were
// injected there, how many contained failures a retry recovered, how
// many degraded into a final fallback, and how many retries ran. For a
// fixed (seed, probs, workload) the numbers are deterministic at every
// worker count, like the run-level FaultStats they decompose.
type SiteStats struct {
	Injected  int64 `json:"injected"`
	Recovered int64 `json:"recovered"`
	Degraded  int64 `json:"degraded"`
	Retries   int64 `json:"retries"`
}

// siteCounters is the live per-site accounting behind Snapshot. One
// fixed struct per known site, built at New — wrappers only ever load a
// pointer from a read-only map, so the hot path stays lock-free.
type siteCounters struct {
	injected, recovered, degraded, retries atomic.Int64
}

// Containment is the armed layer: injector, retry bound and resolved
// observability handles. The nil Containment is the disabled layer —
// every method is nil-safe and Run degenerates to calling the body.
type Containment struct {
	inj  *Injector
	max  int
	seed int64

	// sites holds the per-site accounting; the map is built once at New
	// over the Sites list and never mutated afterwards, so concurrent
	// wrappers read it without locking.
	sites map[string]*siteCounters

	tr        *obs.Tracer
	injected  *obs.Counter
	recovered *obs.Counter
	degraded  *obs.Counter
	retries   *obs.Counter
}

// New builds the containment layer from options, resolving the obs
// handles once so wrappers never touch the registry lock.
func New(opt Options, o *obs.Observer) *Containment {
	max := opt.MaxAttempts
	if max < 1 {
		max = DefaultMaxAttempts
	}
	c := &Containment{
		inj:   NewInjector(opt.Seed, opt.Probs),
		max:   max,
		seed:  opt.Seed,
		sites: make(map[string]*siteCounters, len(Sites)),
		tr:    o.T(),
	}
	for _, s := range Sites {
		c.sites[s] = &siteCounters{}
	}
	if m := o.M(); m != nil {
		c.injected = m.Counter(obs.MFaultInjected)
		c.recovered = m.Counter(obs.MFaultRecovered)
		c.degraded = m.Counter(obs.MFaultDegraded)
		c.retries = m.Counter(obs.MFaultRetries)
	}
	return c
}

// Enabled reports whether containment is armed; nil is the disabled
// layer.
func (c *Containment) Enabled() bool { return c != nil }

// site returns the per-site counters, nil (a no-op via the atomic
// methods' receivers never being called) for sites outside the Sites
// list — callers always pass a Sites constant today.
func (c *Containment) site(name string) *siteCounters {
	if c == nil {
		return nil
	}
	return c.sites[name]
}

func (sc *siteCounters) addInjected(n int64) {
	if sc != nil {
		sc.injected.Add(n)
	}
}

func (sc *siteCounters) addRecovered(n int64) {
	if sc != nil {
		sc.recovered.Add(n)
	}
}

func (sc *siteCounters) addDegraded(n int64) {
	if sc != nil {
		sc.degraded.Add(n)
	}
}

func (sc *siteCounters) addRetries(n int64) {
	if sc != nil {
		sc.retries.Add(n)
	}
}

// Snapshot copies the per-site containment accounting: a map from site
// name to its counters, omitting sites that saw no events. Callers use
// it to attribute a run's FaultStats to the execution sites that
// produced them (the daemon reports it per job); nil containment yields
// a nil map. The counts are deterministic for a fixed (seed, probs,
// workload) — reading them mid-run only risks missing in-flight events,
// never corruption.
func (c *Containment) Snapshot() map[string]SiteStats {
	if c == nil {
		return nil
	}
	out := make(map[string]SiteStats)
	for name, sc := range c.sites {
		st := SiteStats{
			Injected:  sc.injected.Load(),
			Recovered: sc.recovered.Load(),
			Degraded:  sc.degraded.Load(),
			Retries:   sc.retries.Load(),
		}
		if st != (SiteStats{}) {
			out[name] = st
		}
	}
	return out
}

// MaxAttempts reports the per-unit attempt bound (1 when disabled).
func (c *Containment) MaxAttempts() int {
	if c == nil {
		return 1
	}
	return c.max
}

// Run executes one retryable work unit under containment: panics and
// injected faults are recovered and the unit retried up to the attempt
// bound, with a deterministic seed-derived backoff between tries;
// exhaustion returns a *WorkError. An error returned by fn itself is the
// unit's deliberate outcome — passed through verbatim, never retried.
// The worker id only labels the trace lane; it never feeds the injection
// decision.
func (c *Containment) Run(site string, unit, worker int, fn func() error) error {
	if c == nil {
		return fn()
	}
	for attempt := 0; ; attempt++ {
		err, contained := c.attempt(site, unit, attempt, worker, fn)
		if err == nil || !contained {
			return err
		}
		if attempt+1 >= c.max {
			c.degraded.Add(1)
			c.site(site).addDegraded(1)
			return &WorkError{Site: site, Unit: unit, Attempts: attempt + 1, Contained: true, Cause: err}
		}
		c.recovered.Add(1)
		c.retries.Add(1)
		sc := c.site(site)
		sc.addRecovered(1)
		sc.addRetries(1)
		c.backoff(site, unit, attempt)
	}
}

// RunOnce is Run for units whose contained failure is final rather than
// retried — the batch kernel, which degrades to the CPU fallback path on
// its first fault.
func (c *Containment) RunOnce(site string, unit, worker int, fn func() error) error {
	if c == nil {
		return fn()
	}
	err, contained := c.attempt(site, unit, 0, worker, fn)
	if err == nil || !contained {
		return err
	}
	c.degraded.Add(1)
	c.site(site).addDegraded(1)
	return &WorkError{Site: site, Unit: unit, Attempts: 1, Contained: true, Cause: err}
}

// InjectBudget reports whether a synthetic budget exhaustion fires for
// the unit. A budget fault is final by construction (the caller keeps
// the net's pattern route), so it counts as injected and degraded at
// once, keeping the accounting equation exact.
func (c *Containment) InjectBudget(unit, worker int) bool {
	if c == nil || !c.inj.Fire(SiteBudget, unit, 0) {
		return false
	}
	c.injected.Add(1)
	c.degraded.Add(1)
	sc := c.site(SiteBudget)
	sc.addInjected(1)
	sc.addDegraded(1)
	c.trace(SiteBudget, worker)
	return true
}

// Degrade records n organic (non-injected) degradations at a site —
// real budget trips. These sit outside the injection accounting
// equation, which is why the chaos suite injects budget faults instead
// of configuring a tight real budget.
func (c *Containment) Degrade(site string, n int64) {
	if c == nil {
		return
	}
	c.degraded.Add(n)
	c.site(site).addDegraded(n)
}

// attempt runs fn once behind the recover barrier, firing any injected
// fault at entry — before the body has executed, so a retried unit never
// half-ran. contained marks the retryable failure class (injection or
// panic); fn's own errors pass through un-contained.
func (c *Containment) attempt(site string, unit, attempt, worker int, fn func() error) (err error, contained bool) {
	if c.inj.Fire(site, unit, attempt) {
		c.injected.Add(1)
		c.site(site).addInjected(1)
		c.trace(site, worker)
		return ErrInjected, true
	}
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v}
			contained = true
			c.trace(site, worker)
		}
	}()
	return fn(), false
}

// trace drops a marker span on the worker's lane so contained faults are
// visible on the timeline. Free when tracing is off.
func (c *Containment) trace(site string, worker int) {
	if c.tr.On() {
		c.tr.StartSpan("fault:"+site, worker).End()
	}
}

// backoff orders retry pressure deterministically without the wall
// clock: a seed-derived number of scheduler yields, growing with the
// attempt. Yields cannot change results (unit bodies are interleaving-
// independent); they only de-synchronize retry storms.
func (c *Containment) backoff(site string, unit, attempt int) {
	h := mix(uint64(c.seed) ^ hashString(site) ^ uint64(int64(unit))*0x9e3779b97f4a7c15)
	n := attempt + int(h>>62) // 0..3 seed-derived extra yields
	for i := 0; i <= n; i++ {
		runtime.Gosched()
	}
}

// SortWorkErrors orders terminal unit errors by (site, unit) so callers
// report failures deterministically at any worker count.
func SortWorkErrors(errs []*WorkError) {
	for i := 1; i < len(errs); i++ {
		for j := i; j > 0 && less(errs[j], errs[j-1]); j-- {
			errs[j], errs[j-1] = errs[j-1], errs[j]
		}
	}
}

func less(a, b *WorkError) bool {
	if a.Site != b.Site {
		return a.Site < b.Site
	}
	return a.Unit < b.Unit
}
