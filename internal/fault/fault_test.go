package fault

import (
	"errors"
	"fmt"
	"testing"

	"fastgr/internal/obs"
)

func newCounted() (*Containment, *obs.Registry) {
	reg := obs.NewRegistry()
	c := New(Options{Seed: 1, Probs: map[string]float64{SiteTask: 1}}, &obs.Observer{Metrics: reg})
	return c, reg
}

func counters(reg *obs.Registry) (injected, recovered, degraded, retries int64) {
	s := reg.Snapshot()
	return s.Counters[obs.MFaultInjected], s.Counters[obs.MFaultRecovered],
		s.Counters[obs.MFaultDegraded], s.Counters[obs.MFaultRetries]
}

func TestFireIsPureFunctionOfCoordinates(t *testing.T) {
	in := NewInjector(42, map[string]float64{SiteTask: 0.3, SiteKernel: 0.1})
	// Record a reference sweep, then re-query in a different order: the
	// decision must not depend on call history.
	type key struct {
		site          string
		unit, attempt int
	}
	ref := map[key]bool{}
	for _, site := range []string{SiteTask, SiteKernel} {
		for unit := 0; unit < 200; unit++ {
			for attempt := 0; attempt < 3; attempt++ {
				ref[key{site, unit, attempt}] = in.Fire(site, unit, attempt)
			}
		}
	}
	fired := 0
	for unit := 199; unit >= 0; unit-- {
		for _, site := range []string{SiteKernel, SiteTask} {
			for attempt := 2; attempt >= 0; attempt-- {
				got := in.Fire(site, unit, attempt)
				if got != ref[key{site, unit, attempt}] {
					t.Fatalf("Fire(%s,%d,%d) changed between sweeps", site, unit, attempt)
				}
				if got {
					fired++
				}
			}
		}
	}
	if fired == 0 {
		t.Fatal("probability-0.3/0.1 injector never fired over 1200 coordinates")
	}
	// Unlisted site and nil injector never fire.
	if in.Fire(SitePlan, 0, 0) {
		t.Fatal("unlisted site fired")
	}
	var nilIn *Injector
	if nilIn.Fire(SiteTask, 0, 0) {
		t.Fatal("nil injector fired")
	}
}

func TestFireRateTracksProbability(t *testing.T) {
	in := NewInjector(7, map[string]float64{SiteTask: 0.25})
	fired := 0
	const n = 20000
	for unit := 0; unit < n; unit++ {
		if in.Fire(SiteTask, unit, 0) {
			fired++
		}
	}
	rate := float64(fired) / n
	if rate < 0.22 || rate > 0.28 {
		t.Fatalf("fire rate %.4f far from configured 0.25", rate)
	}
}

func TestNewInjectorDropsZeroEntries(t *testing.T) {
	if NewInjector(1, nil) != nil {
		t.Fatal("empty table should yield nil injector")
	}
	if NewInjector(1, map[string]float64{SiteTask: 0, SiteKernel: -1}) != nil {
		t.Fatal("all-zero table should yield nil injector")
	}
	if NewInjector(1, UniformProbs(0.5)) == nil {
		t.Fatal("nonzero table should yield an injector")
	}
}

func TestRunRetriesInjectionToExhaustion(t *testing.T) {
	c, reg := newCounted()
	calls := 0
	err := c.Run(SiteTask, 9, 0, func() error { calls++; return nil })
	if calls != 0 {
		t.Fatalf("probability-1 injection should fire before the body; body ran %d times", calls)
	}
	var we *WorkError
	if !errors.As(err, &we) {
		t.Fatalf("want *WorkError, got %v", err)
	}
	if we.Site != SiteTask || we.Unit != 9 || we.Attempts != DefaultMaxAttempts || !we.Contained {
		t.Fatalf("unexpected WorkError fields: %+v", we)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("cause should unwrap to ErrInjected, got %v", we.Cause)
	}
	inj, rec, deg, ret := counters(reg)
	if inj != 3 || rec != 2 || deg != 1 || ret != 2 {
		t.Fatalf("counters injected=%d recovered=%d degraded=%d retries=%d, want 3/2/1/2", inj, rec, deg, ret)
	}
	if inj != rec+deg {
		t.Fatalf("accounting equation violated: %d != %d + %d", inj, rec, deg)
	}
}

func TestRunRecoversPanicThenSucceeds(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Options{Seed: 1}, &obs.Observer{Metrics: reg})
	calls := 0
	err := c.Run(SiteTask, 0, 0, func() error {
		calls++
		if calls < 3 {
			panic(fmt.Sprintf("boom %d", calls))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("third attempt succeeds, want nil error, got %v", err)
	}
	inj, rec, deg, ret := counters(reg)
	if inj != 0 || rec != 2 || deg != 0 || ret != 2 {
		t.Fatalf("counters injected=%d recovered=%d degraded=%d retries=%d, want 0/2/0/2", inj, rec, deg, ret)
	}
}

func TestRunPanicExhaustionSurfacesPanicError(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Options{Seed: 1, MaxAttempts: 2}, &obs.Observer{Metrics: reg})
	err := c.Run(SiteSolve, 4, 1, func() error { panic("always") })
	var we *WorkError
	if !errors.As(err, &we) {
		t.Fatalf("want *WorkError, got %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "always" {
		t.Fatalf("cause should be *PanicError{always}, got %v", we.Cause)
	}
	if we.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", we.Attempts)
	}
	_, rec, deg, _ := counters(reg)
	if rec != 1 || deg != 1 {
		t.Fatalf("recovered=%d degraded=%d, want 1/1", rec, deg)
	}
}

func TestRunPassesBodyErrorsThroughWithoutRetry(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Options{Seed: 1}, &obs.Observer{Metrics: reg})
	sentinel := errors.New("unit outcome")
	calls := 0
	err := c.Run(SiteTask, 0, 0, func() error { calls++; return sentinel })
	if err != sentinel {
		t.Fatalf("body error should pass through verbatim, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("body error must not be retried; body ran %d times", calls)
	}
	inj, rec, deg, ret := counters(reg)
	if inj+rec+deg+ret != 0 {
		t.Fatalf("body errors must not touch fault counters: %d/%d/%d/%d", inj, rec, deg, ret)
	}
}

func TestRunOnceDegradesOnFirstContainedFailure(t *testing.T) {
	c, reg := newCounted()
	err := c.RunOnce(SiteTask, 2, 0, func() error { return nil })
	var we *WorkError
	if !errors.As(err, &we) || we.Attempts != 1 || !we.Contained {
		t.Fatalf("want single-attempt contained WorkError, got %v", err)
	}
	inj, rec, deg, _ := counters(reg)
	if inj != 1 || rec != 0 || deg != 1 {
		t.Fatalf("counters injected=%d recovered=%d degraded=%d, want 1/0/1", inj, rec, deg)
	}
	// Body errors pass through RunOnce uncounted too.
	sentinel := errors.New("kernel says no")
	reg2 := obs.NewRegistry()
	c2 := New(Options{Seed: 1}, &obs.Observer{Metrics: reg2})
	if got := c2.RunOnce(SiteKernel, 0, 0, func() error { return sentinel }); got != sentinel {
		t.Fatalf("want sentinel passthrough, got %v", got)
	}
}

func TestInjectBudgetCountsInjectedAndDegraded(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Options{Seed: 5, Probs: map[string]float64{SiteBudget: 1}}, &obs.Observer{Metrics: reg})
	if !c.InjectBudget(3, 0) {
		t.Fatal("probability-1 budget injection did not fire")
	}
	inj, rec, deg, _ := counters(reg)
	if inj != 1 || rec != 0 || deg != 1 {
		t.Fatalf("counters injected=%d recovered=%d degraded=%d, want 1/0/1", inj, rec, deg)
	}
	// Other sites' probabilities never leak into the budget site.
	c2 := New(Options{Seed: 5, Probs: map[string]float64{SiteTask: 1}}, nil)
	if c2.InjectBudget(3, 0) {
		t.Fatal("budget injection fired off a task-site probability")
	}
}

func TestNilContainmentIsDisabledLayer(t *testing.T) {
	var c *Containment
	if c.Enabled() {
		t.Fatal("nil containment reports enabled")
	}
	if c.MaxAttempts() != 1 {
		t.Fatalf("nil MaxAttempts = %d, want 1", c.MaxAttempts())
	}
	calls := 0
	if err := c.Run(SiteTask, 0, 0, func() error { calls++; return nil }); err != nil || calls != 1 {
		t.Fatalf("nil Run should call the body once: err=%v calls=%d", err, calls)
	}
	if err := c.RunOnce(SiteTask, 0, 0, func() error { calls++; return nil }); err != nil || calls != 2 {
		t.Fatalf("nil RunOnce should call the body once: err=%v calls=%d", err, calls)
	}
	if c.InjectBudget(0, 0) {
		t.Fatal("nil InjectBudget fired")
	}
	c.Degrade(SiteBudget, 1) // must not panic
}

func TestZeroProbabilityNeverFires(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Options{Seed: 99, Probs: UniformProbs(0)}, &obs.Observer{Metrics: reg})
	for unit := 0; unit < 500; unit++ {
		if err := c.Run(SiteTask, unit, 0, func() error { return nil }); err != nil {
			t.Fatalf("zero-probability run failed: %v", err)
		}
		if c.InjectBudget(unit, 0) {
			t.Fatal("zero-probability budget injection fired")
		}
	}
	inj, rec, deg, ret := counters(reg)
	if inj+rec+deg+ret != 0 {
		t.Fatalf("zero-probability counters nonzero: %d/%d/%d/%d", inj, rec, deg, ret)
	}
}

func TestSortWorkErrors(t *testing.T) {
	errs := []*WorkError{
		{Site: SiteTask, Unit: 5},
		{Site: SitePlan, Unit: 9},
		{Site: SiteTask, Unit: 1},
	}
	SortWorkErrors(errs)
	want := []struct {
		site string
		unit int
	}{{SitePlan, 9}, {SiteTask, 1}, {SiteTask, 5}}
	for i, w := range want {
		if errs[i].Site != w.site || errs[i].Unit != w.unit {
			t.Fatalf("order[%d] = (%s,%d), want (%s,%d)", i, errs[i].Site, errs[i].Unit, w.site, w.unit)
		}
	}
}

func TestWorkErrorFormatting(t *testing.T) {
	we := &WorkError{Site: SiteTask, Unit: 7, Attempts: 3, Contained: true, Cause: ErrInjected}
	want := "fault: rrr.task unit 7 failed after 3 attempt(s): injected fault"
	if we.Error() != want {
		t.Fatalf("Error() = %q, want %q", we.Error(), want)
	}
	if !errors.Is(we, ErrInjected) {
		t.Fatal("WorkError should unwrap to its cause")
	}
	pe := &PanicError{Value: 42}
	if pe.Error() != "panic: 42" {
		t.Fatalf("PanicError.Error() = %q", pe.Error())
	}
}

func TestUniformProbsCoversEverySite(t *testing.T) {
	m := UniformProbs(0.5)
	if len(m) != len(Sites) {
		t.Fatalf("UniformProbs has %d entries, want %d", len(m), len(Sites))
	}
	for _, s := range Sites {
		if m[s] != 0.5 {
			t.Fatalf("site %s missing from UniformProbs", s)
		}
	}
}

func TestSnapshotAttributesCountersPerSite(t *testing.T) {
	var nilc *Containment
	if got := nilc.Snapshot(); got != nil {
		t.Fatalf("nil Snapshot = %v, want nil", got)
	}
	c, reg := newCounted()
	if got := c.Snapshot(); len(got) != 0 {
		t.Fatalf("fresh Snapshot should omit all-zero sites, got %v", got)
	}

	// Probability-1 injection at the task site, retried to exhaustion:
	// DefaultMaxAttempts injections, all but the last recovered.
	_ = c.Run(SiteTask, 9, 0, func() error { return nil })
	// An explicit budget degradation lands under its own site.
	c.Degrade(SiteBudget, 2)

	snap := c.Snapshot()
	task, ok := snap[SiteTask]
	if !ok {
		t.Fatalf("task site missing from snapshot: %v", snap)
	}
	if task.Injected != 3 || task.Recovered != 2 || task.Degraded != 1 || task.Retries != 2 {
		t.Fatalf("task stats %+v, want 3/2/1/2", task)
	}
	if task.Injected != task.Recovered+task.Degraded {
		t.Fatalf("site accounting equation violated: %+v", task)
	}
	if b := snap[SiteBudget]; b.Degraded != 2 {
		t.Fatalf("budget site %+v, want degraded=2", b)
	}
	if _, leaked := snap[SiteKernel]; leaked {
		t.Fatalf("untouched kernel site leaked into snapshot: %v", snap)
	}

	// Per-site stats decompose the aggregate run-level counters exactly.
	inj, rec, deg, ret := counters(reg)
	var si, sr, sd, st int64
	for _, s := range snap {
		si += s.Injected
		sr += s.Recovered
		sd += s.Degraded
		st += s.Retries
	}
	if si != inj || sr != rec || sd != deg || st != ret {
		t.Fatalf("snapshot sums %d/%d/%d/%d != registry counters %d/%d/%d/%d",
			si, sr, sd, st, inj, rec, deg, ret)
	}
}
