// Package geom provides the small geometric vocabulary shared by every
// routing substrate: integer 2-D/3-D points on the global-routing grid,
// axis-aligned rectangles, closed integer intervals, and the Manhattan
// metrics (distance, half-perimeter wirelength) that global routers reason
// in. All coordinates are G-cell indices, not database units.
package geom

import "fmt"

// Point is a 2-D G-cell coordinate.
type Point struct {
	X, Y int
}

// Point3 is a 3-D G-cell coordinate: a 2-D position plus a metal layer.
// Layers are 1-based to match the paper's notation (0 < l <= L).
type Point3 struct {
	X, Y, Layer int
}

// P returns the 2-D projection of a 3-D point.
func (p Point3) P() Point { return Point{p.X, p.Y} }

func (p Point) String() string  { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }
func (p Point3) String() string { return fmt.Sprintf("(%d,%d,l%d)", p.X, p.Y, p.Layer) }

// ManhattanDist returns the L1 distance between two 2-D points.
func ManhattanDist(a, b Point) int {
	return Abs(a.X-b.X) + Abs(a.Y-b.Y)
}

// Abs returns the absolute value of x.
func Abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Min returns the smaller of a and b.
func Min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Rect is an axis-aligned rectangle with inclusive bounds, the natural shape
// of a net bounding box on the G-cell grid. An empty Rect is one with
// Lo.X > Hi.X or Lo.Y > Hi.Y.
type Rect struct {
	Lo, Hi Point
}

// NewRect builds the normalized rectangle spanning two corner points.
func NewRect(a, b Point) Rect {
	return Rect{
		Lo: Point{Min(a.X, b.X), Min(a.Y, b.Y)},
		Hi: Point{Max(a.X, b.X), Max(a.Y, b.Y)},
	}
}

// BoundingBox returns the smallest Rect covering all points. It panics on an
// empty slice: a net always has at least one pin.
func BoundingBox(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: bounding box of no points")
	}
	r := Rect{Lo: pts[0], Hi: pts[0]}
	for _, p := range pts[1:] {
		r = r.Extend(p)
	}
	return r
}

// Extend grows r to include p.
func (r Rect) Extend(p Point) Rect {
	return Rect{
		Lo: Point{Min(r.Lo.X, p.X), Min(r.Lo.Y, p.Y)},
		Hi: Point{Max(r.Hi.X, p.X), Max(r.Hi.Y, p.Y)},
	}
}

// Union returns the smallest Rect covering both rectangles.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		Lo: Point{Min(r.Lo.X, o.Lo.X), Min(r.Lo.Y, o.Lo.Y)},
		Hi: Point{Max(r.Hi.X, o.Hi.X), Max(r.Hi.Y, o.Hi.Y)},
	}
}

// Inflate grows the rectangle by m G-cells on every side.
func (r Rect) Inflate(m int) Rect {
	return Rect{
		Lo: Point{r.Lo.X - m, r.Lo.Y - m},
		Hi: Point{r.Hi.X + m, r.Hi.Y + m},
	}
}

// ClampTo intersects r with the grid [0,w-1] x [0,h-1].
func (r Rect) ClampTo(w, h int) Rect {
	return Rect{
		Lo: Point{Clamp(r.Lo.X, 0, w-1), Clamp(r.Lo.Y, 0, h-1)},
		Hi: Point{Clamp(r.Hi.X, 0, w-1), Clamp(r.Hi.Y, 0, h-1)},
	}
}

// Width returns the number of G-cell columns spanned (the paper's M).
func (r Rect) Width() int { return r.Hi.X - r.Lo.X + 1 }

// Height returns the number of G-cell rows spanned (the paper's N).
func (r Rect) Height() int { return r.Hi.Y - r.Lo.Y + 1 }

// HPWL is the half-perimeter wirelength of the rectangle in G-cell units.
func (r Rect) HPWL() int { return (r.Width() - 1) + (r.Height() - 1) }

// Area is the number of G-cells covered.
func (r Rect) Area() int { return r.Width() * r.Height() }

// Contains reports whether p lies inside r (inclusive bounds).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lo.X && p.X <= r.Hi.X && p.Y >= r.Lo.Y && p.Y <= r.Hi.Y
}

// Overlaps reports whether two rectangles share at least one G-cell. Two
// tasks whose bounding boxes overlap conflict in the task graph.
func (r Rect) Overlaps(o Rect) bool {
	return r.Lo.X <= o.Hi.X && o.Lo.X <= r.Hi.X && r.Lo.Y <= o.Hi.Y && o.Lo.Y <= r.Hi.Y
}

// ContainsRect reports whether o lies entirely inside r — the shard
// classifier's intra-region test.
func (r Rect) ContainsRect(o Rect) bool {
	return r.Lo.X <= o.Lo.X && o.Hi.X <= r.Hi.X && r.Lo.Y <= o.Lo.Y && o.Hi.Y <= r.Hi.Y
}

// Intersect returns the overlap of two rectangles. When they do not
// overlap the result is an empty Rect (Lo > Hi on some axis).
func (r Rect) Intersect(o Rect) Rect {
	return Rect{
		Lo: Point{Max(r.Lo.X, o.Lo.X), Max(r.Lo.Y, o.Lo.Y)},
		Hi: Point{Min(r.Hi.X, o.Hi.X), Min(r.Hi.Y, o.Hi.Y)},
	}
}

// Empty reports whether the rectangle covers no G-cells.
func (r Rect) Empty() bool { return r.Lo.X > r.Hi.X || r.Lo.Y > r.Hi.Y }

// Interval is a closed integer interval [Lo, Hi], used for layer ranges in
// via-stack costing.
type Interval struct {
	Lo, Hi int
}

// NewInterval builds the normalized interval spanning a and b.
func NewInterval(a, b int) Interval {
	return Interval{Min(a, b), Max(a, b)}
}

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v int) bool { return v >= iv.Lo && v <= iv.Hi }

// Len returns the number of integers in the interval.
func (iv Interval) Len() int { return iv.Hi - iv.Lo + 1 }

// Extend grows the interval to include v.
func (iv Interval) Extend(v int) Interval {
	return Interval{Min(iv.Lo, v), Max(iv.Hi, v)}
}
