package geom

import (
	"testing"
	"testing/quick"
)

func TestManhattanDist(t *testing.T) {
	cases := []struct {
		a, b Point
		want int
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 7},
		{Point{3, 4}, Point{0, 0}, 7},
		{Point{-2, 5}, Point{2, -5}, 14},
	}
	for _, c := range cases {
		if got := ManhattanDist(c.a, c.b); got != c.want {
			t.Errorf("ManhattanDist(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestManhattanDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by int8) bool {
		a := Point{int(ax), int(ay)}
		b := Point{int(bx), int(by)}
		return ManhattanDist(a, b) == ManhattanDist(b, a) && ManhattanDist(a, b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestManhattanTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int8) bool {
		a := Point{int(ax), int(ay)}
		b := Point{int(bx), int(by)}
		c := Point{int(cx), int(cy)}
		return ManhattanDist(a, c) <= ManhattanDist(a, b)+ManhattanDist(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(Point{5, 1}, Point{2, 7})
	if r.Lo != (Point{2, 1}) || r.Hi != (Point{5, 7}) {
		t.Fatalf("NewRect not normalized: %+v", r)
	}
}

func TestRectMetrics(t *testing.T) {
	r := NewRect(Point{2, 3}, Point{5, 7})
	if r.Width() != 4 {
		t.Errorf("Width = %d, want 4", r.Width())
	}
	if r.Height() != 5 {
		t.Errorf("Height = %d, want 5", r.Height())
	}
	if r.HPWL() != 7 {
		t.Errorf("HPWL = %d, want 7", r.HPWL())
	}
	if r.Area() != 20 {
		t.Errorf("Area = %d, want 20", r.Area())
	}
}

func TestDegenerateRect(t *testing.T) {
	r := NewRect(Point{4, 4}, Point{4, 4})
	if r.Width() != 1 || r.Height() != 1 || r.HPWL() != 0 || r.Area() != 1 {
		t.Fatalf("degenerate rect metrics wrong: %+v", r)
	}
	if !r.Contains(Point{4, 4}) {
		t.Fatal("degenerate rect should contain its point")
	}
}

func TestBoundingBox(t *testing.T) {
	pts := []Point{{3, 9}, {1, 2}, {8, 5}}
	r := BoundingBox(pts)
	want := Rect{Point{1, 2}, Point{8, 9}}
	if r != want {
		t.Fatalf("BoundingBox = %+v, want %+v", r, want)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("bounding box misses %v", p)
		}
	}
}

func TestBoundingBoxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BoundingBox(nil) did not panic")
		}
	}()
	BoundingBox(nil)
}

func TestBoundingBoxContainsAll(t *testing.T) {
	f := func(raw []struct{ X, Y int8 }) bool {
		if len(raw) == 0 {
			return true
		}
		pts := make([]Point, len(raw))
		for i, q := range raw {
			pts[i] = Point{int(q.X), int(q.Y)}
		}
		r := BoundingBox(pts)
		for _, p := range pts {
			if !r.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOverlaps(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{4, 4})
	cases := []struct {
		b    Rect
		want bool
	}{
		{NewRect(Point{2, 2}, Point{6, 6}), true},
		{NewRect(Point{4, 4}, Point{8, 8}), true},  // corner touch counts
		{NewRect(Point{5, 0}, Point{9, 4}), false}, // adjacent, no shared cell
		{NewRect(Point{0, 5}, Point{4, 9}), false},
		{NewRect(Point{1, 1}, Point{2, 2}), true}, // containment
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("Overlaps(%+v) = %v, want %v", c.b, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("Overlaps not symmetric for %+v", c.b)
		}
	}
}

func TestInflateClampTo(t *testing.T) {
	r := NewRect(Point{1, 1}, Point{3, 3}).Inflate(2)
	if r.Lo != (Point{-1, -1}) || r.Hi != (Point{5, 5}) {
		t.Fatalf("Inflate wrong: %+v", r)
	}
	c := r.ClampTo(5, 4)
	if c.Lo != (Point{0, 0}) || c.Hi != (Point{4, 3}) {
		t.Fatalf("ClampTo wrong: %+v", c)
	}
}

func TestUnion(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{2, 2})
	b := NewRect(Point{5, 1}, Point{6, 8})
	u := a.Union(b)
	want := Rect{Point{0, 0}, Point{6, 8}}
	if u != want {
		t.Fatalf("Union = %+v, want %+v", u, want)
	}
}

func TestInterval(t *testing.T) {
	iv := NewInterval(7, 3)
	if iv.Lo != 3 || iv.Hi != 7 {
		t.Fatalf("NewInterval not normalized: %+v", iv)
	}
	if !iv.Contains(3) || !iv.Contains(7) || !iv.Contains(5) {
		t.Error("Contains wrong for in-range values")
	}
	if iv.Contains(2) || iv.Contains(8) {
		t.Error("Contains wrong for out-of-range values")
	}
	if iv.Len() != 5 {
		t.Errorf("Len = %d, want 5", iv.Len())
	}
	if got := iv.Extend(1); got.Lo != 1 || got.Hi != 7 {
		t.Errorf("Extend(1) = %+v", got)
	}
	if got := iv.Extend(9); got.Lo != 3 || got.Hi != 9 {
		t.Errorf("Extend(9) = %+v", got)
	}
}

func TestMinMaxAbsClamp(t *testing.T) {
	if Min(2, 3) != 2 || Min(3, 2) != 2 {
		t.Error("Min wrong")
	}
	if Max(2, 3) != 3 || Max(3, 2) != 3 {
		t.Error("Max wrong")
	}
	if Abs(-4) != 4 || Abs(4) != 4 || Abs(0) != 0 {
		t.Error("Abs wrong")
	}
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp wrong")
	}
}

func TestPoint3Projection(t *testing.T) {
	p := Point3{3, 5, 2}
	if p.P() != (Point{3, 5}) {
		t.Fatalf("P() = %v", p.P())
	}
}
