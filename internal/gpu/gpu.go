// Package gpu simulates the CUDA device of the paper's platform (an NVIDIA
// GeForce RTX 3090) at the granularity the paper's speedups depend on:
// kernels made of independent blocks (one routed net per block, Fig. 7),
// blocks scheduled onto SMs in waves, lanes inside a block absorbing the
// data-parallel min-plus operations of the computation-graph flows, kernel
// launch overhead, and host<->device transfer with the zero-copy technique
// of Section IV-E.
//
// Go has no CUDA; per the substitution rule the device is a deterministic
// performance model. It does not execute the math itself — the functional
// results come from package pattern's evaluator, shared with the CPU path,
// so routing output is identical regardless of who "runs" the flow. What
// the device adds is the simulated clock: given the same workload structure
// the paper exploits (batches of independent nets, L×L layer combinations
// evaluated as one vector-matrix min-plus step), it produces the same
// runtime shape.
package gpu

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Spec describes a simulated device.
type Spec struct {
	Name       string
	SMCount    int     // streaming multiprocessors; a block occupies one SM
	LanesPerSM int     // parallel scalar lanes available to one block
	ClockHz    float64 // lane clock
	// CyclesPerOp is the average cost of one 128-lane wave of min-plus
	// slots, amortized per slot. Routing DP kernels are memory-bound and
	// control-divergent, so a wave pays DRAM-latency-scale cycles rather
	// than the ALU's 4; the default reproduces the effective throughput a
	// 3090 sustains on irregular min-plus workloads (~1 slot/ns per block).
	CyclesPerOp float64
	// SpanCycles is the latency of one dependent step of a block's critical
	// path (a pipelined min-plus reduction stage), in cycles.
	SpanCycles float64
	// LaunchOverhead is charged once per kernel invocation.
	LaunchOverhead time.Duration
	// ZeroCopy maps host memory into the device address space: transfers
	// cost ZeroCopyLatency per kernel instead of bytes/bandwidth, keeping
	// total transfer time under a second as in Table VIII.
	ZeroCopy        bool
	ZeroCopyLatency time.Duration
	// TransferBytesPerSec and TransferLatency model explicit PCIe copies
	// when ZeroCopy is off: each kernel's transfers pay one DMA setup
	// latency plus bytes over the bus. Zero-copy exists precisely to avoid
	// the per-transfer round trip (Section IV-E).
	TransferBytesPerSec float64
	TransferLatency     time.Duration
}

// RTX3090 returns a spec shaped like the paper's GPU.
func RTX3090() Spec {
	return Spec{
		Name:                "RTX3090-sim",
		SMCount:             82,
		LanesPerSM:          128,
		ClockHz:             1.7e9,
		CyclesPerOp:         220,
		SpanCycles:          25,
		LaunchOverhead:      6 * time.Microsecond,
		ZeroCopy:            true,
		ZeroCopyLatency:     2 * time.Microsecond,
		TransferBytesPerSec: 12e9,
		TransferLatency:     10 * time.Microsecond,
	}
}

// Validate reports the first nonsensical field, if any.
func (s Spec) Validate() error {
	if s.SMCount <= 0 || s.LanesPerSM <= 0 {
		return fmt.Errorf("gpu: spec needs positive SM/lane counts")
	}
	if s.ClockHz <= 0 || s.CyclesPerOp <= 0 || s.SpanCycles <= 0 {
		return fmt.Errorf("gpu: spec needs positive clock and op costs")
	}
	if !s.ZeroCopy && s.TransferBytesPerSec <= 0 {
		return fmt.Errorf("gpu: non-zero-copy spec needs transfer bandwidth")
	}
	return nil
}

// Block is the modeled workload of one thread block: Ops scalar operations
// of which Span form the longest dependency chain (the sequential DFS over
// the net's two-pin edges times the min-plus reduction depth).
type Block struct {
	Ops  int64
	Span int64
}

// Stats accumulates device activity.
type Stats struct {
	Kernels     int
	Blocks      int64
	Ops         int64
	BytesMoved  int64
	ComputeTime time.Duration // kernel compute portion
	LaunchTime  time.Duration
	CopyTime    time.Duration
}

// Device is a simulated GPU with an accumulated clock.
type Device struct {
	Spec  Spec
	stats Stats
}

// New creates a device, panicking on an invalid spec (a configuration bug).
func New(spec Spec) *Device {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return &Device{Spec: spec}
}

// blockTime converts one block's workload to simulated time: the block runs
// on one SM with LanesPerSM lanes, so it can finish no faster than its
// dependency span and no faster than ops divided across lanes.
func (d *Device) blockTime(b Block) time.Duration {
	throughput := float64(b.Ops) / float64(d.Spec.LanesPerSM) * d.Spec.CyclesPerOp
	latency := float64(b.Span) * d.Spec.SpanCycles
	cycles := throughput
	if latency > cycles {
		cycles = latency
	}
	secs := cycles / d.Spec.ClockHz
	return time.Duration(math.Round(secs * float64(time.Second)))
}

// LaunchKernel simulates one kernel invocation processing the given blocks,
// plus bytesIn/bytesOut of host<->device traffic, and returns the simulated
// duration. Blocks are dispatched to SMs in order as SMs free up (the
// hardware's wave scheduling); the kernel completes when the last block does.
func (d *Device) LaunchKernel(blocks []Block, bytesIn, bytesOut int64) time.Duration {
	d.stats.Kernels++
	d.stats.Blocks += int64(len(blocks))

	compute := d.makespan(blocks)
	copyT := d.transferTime(bytesIn + bytesOut)

	d.stats.ComputeTime += compute
	d.stats.LaunchTime += d.Spec.LaunchOverhead
	d.stats.CopyTime += copyT
	d.stats.BytesMoved += bytesIn + bytesOut
	for _, b := range blocks {
		d.stats.Ops += b.Ops
	}
	return d.Spec.LaunchOverhead + copyT + compute
}

// makespan list-schedules blocks onto SMCount SMs.
func (d *Device) makespan(blocks []Block) time.Duration {
	if len(blocks) == 0 {
		return 0
	}
	n := d.Spec.SMCount
	if len(blocks) <= n {
		var mx time.Duration
		for _, b := range blocks {
			if t := d.blockTime(b); t > mx {
				mx = t
			}
		}
		return mx
	}
	h := make(smHeap, n)
	heap.Init(&h)
	var mx time.Duration
	for _, b := range blocks {
		free := h[0]
		end := free + d.blockTime(b)
		h[0] = end
		heap.Fix(&h, 0)
		if end > mx {
			mx = end
		}
	}
	return mx
}

func (d *Device) transferTime(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	if d.Spec.ZeroCopy {
		return d.Spec.ZeroCopyLatency
	}
	secs := float64(bytes) / d.Spec.TransferBytesPerSec
	return d.Spec.TransferLatency + time.Duration(secs*float64(time.Second))
}

// SimTime is the total simulated device-side time so far.
func (d *Device) SimTime() time.Duration {
	return d.stats.ComputeTime + d.stats.LaunchTime + d.stats.CopyTime
}

// Stats returns a copy of the accumulated counters.
func (d *Device) Stats() Stats { return d.stats }

// Reset clears the device clock and counters.
func (d *Device) Reset() { d.stats = Stats{} }

type smHeap []time.Duration

func (h smHeap) Len() int            { return len(h) }
func (h smHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h smHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *smHeap) Push(x interface{}) { *h = append(*h, x.(time.Duration)) }
func (h *smHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// CPUModel converts the same deterministic op counters to sequential (or
// P-worker) CPU time, so CPU/GPU comparisons share one workload currency.
// The defaults approximate the paper's Xeon Gold 6226R.
type CPUModel struct {
	NsPerOp float64 // effective time of one DP inner-loop op on one core
	Cores   int     // workers available to parallel CPU strategies
}

// XeonGold6226R returns the host model used throughout the experiments. One
// "op" is a DP inner-loop iteration — an edge-cost evaluation with its
// logistic congestion term (exp call) plus the min-plus update — which on a
// scalar core with realistic cache behaviour costs on the order of 10-20ns;
// a GPU lane amortizes the same slot to a few cycles.
func XeonGold6226R() CPUModel {
	return CPUModel{NsPerOp: 14, Cores: 16}
}

// SequentialTime is the single-core time for ops operations.
func (m CPUModel) SequentialTime(ops int64) time.Duration {
	return time.Duration(float64(ops) * m.NsPerOp)
}
