package gpu

import (
	"testing"
	"testing/quick"
	"time"
)

func simpleSpec() Spec {
	return Spec{
		Name:            "test",
		SMCount:         2,
		LanesPerSM:      10,
		ClockHz:         1e9,
		CyclesPerOp:     1,
		SpanCycles:      1,
		LaunchOverhead:  time.Microsecond,
		ZeroCopy:        true,
		ZeroCopyLatency: 100 * time.Nanosecond,
	}
}

func TestSpecValidation(t *testing.T) {
	if RTX3090().Validate() != nil {
		t.Fatal("RTX3090 spec invalid")
	}
	bad := simpleSpec()
	bad.SMCount = 0
	if bad.Validate() == nil {
		t.Fatal("zero SMs accepted")
	}
	bad = simpleSpec()
	bad.ClockHz = 0
	if bad.Validate() == nil {
		t.Fatal("zero clock accepted")
	}
	bad = simpleSpec()
	bad.ZeroCopy = false
	bad.TransferBytesPerSec = 0
	if bad.Validate() == nil {
		t.Fatal("no bandwidth without zero-copy accepted")
	}
}

func TestNewPanicsOnInvalidSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New did not panic on invalid spec")
		}
	}()
	New(Spec{})
}

func TestBlockTimeLaneAndSpanBound(t *testing.T) {
	d := New(simpleSpec())
	// 100 ops over 10 lanes at 1 cycle/op, 1 GHz: 10 cycles = 10ns.
	if got := d.blockTime(Block{Ops: 100, Span: 1}); got != 10*time.Nanosecond {
		t.Fatalf("lane-bound block time = %v, want 10ns", got)
	}
	// Span 50 dominates 100/10: 50ns.
	if got := d.blockTime(Block{Ops: 100, Span: 50}); got != 50*time.Nanosecond {
		t.Fatalf("span-bound block time = %v, want 50ns", got)
	}
}

func TestKernelWaveScheduling(t *testing.T) {
	d := New(simpleSpec()) // 2 SMs
	// Four equal blocks of 10ns on 2 SMs: two waves = 20ns compute.
	blocks := []Block{{Ops: 100, Span: 1}, {Ops: 100, Span: 1}, {Ops: 100, Span: 1}, {Ops: 100, Span: 1}}
	total := d.LaunchKernel(blocks, 0, 0)
	want := time.Microsecond + 20*time.Nanosecond // launch + compute, no bytes
	if total != want {
		t.Fatalf("kernel time = %v, want %v", total, want)
	}
}

func TestKernelSingleWave(t *testing.T) {
	d := New(simpleSpec())
	// Two blocks fit in one wave: compute = max = 30ns.
	total := d.LaunchKernel([]Block{{Ops: 100, Span: 1}, {Ops: 300, Span: 1}}, 0, 0)
	want := time.Microsecond + 30*time.Nanosecond
	if total != want {
		t.Fatalf("kernel time = %v, want %v", total, want)
	}
}

func TestEmptyKernel(t *testing.T) {
	d := New(simpleSpec())
	if got := d.LaunchKernel(nil, 0, 0); got != time.Microsecond {
		t.Fatalf("empty kernel time = %v, want launch overhead only", got)
	}
}

func TestZeroCopyTransfer(t *testing.T) {
	d := New(simpleSpec())
	total := d.LaunchKernel([]Block{{Ops: 10, Span: 1}}, 1<<20, 1<<20)
	// Zero-copy: flat 100ns regardless of 2 MiB moved.
	want := time.Microsecond + 100*time.Nanosecond + time.Nanosecond
	if total != want {
		t.Fatalf("zero-copy kernel = %v, want %v", total, want)
	}
	if d.Stats().BytesMoved != 2<<20 {
		t.Fatalf("bytes moved = %d", d.Stats().BytesMoved)
	}
}

func TestPCIeTransferDominatesWithoutZeroCopy(t *testing.T) {
	spec := simpleSpec()
	spec.ZeroCopy = false
	spec.TransferBytesPerSec = 1e9 // 1 GB/s
	spec.TransferLatency = 5 * time.Microsecond
	d := New(spec)
	total := d.LaunchKernel([]Block{{Ops: 10, Span: 1}}, 1e6, 0)
	// 1 MB at 1 GB/s = 1ms >> everything else.
	if total < time.Millisecond {
		t.Fatalf("transfer not charged: %v", total)
	}
	zc := New(simpleSpec())
	zcTotal := zc.LaunchKernel([]Block{{Ops: 10, Span: 1}}, 1e6, 0)
	if zcTotal >= total {
		t.Fatal("zero-copy not faster than PCIe copy")
	}
}

func TestStatsAccumulation(t *testing.T) {
	d := New(simpleSpec())
	d.LaunchKernel([]Block{{Ops: 100, Span: 1}}, 10, 10)
	d.LaunchKernel([]Block{{Ops: 200, Span: 1}, {Ops: 300, Span: 1}}, 0, 0)
	s := d.Stats()
	if s.Kernels != 2 || s.Blocks != 3 || s.Ops != 600 {
		t.Fatalf("stats wrong: %+v", s)
	}
	if d.SimTime() != s.ComputeTime+s.LaunchTime+s.CopyTime {
		t.Fatal("SimTime does not match component sum")
	}
	d.Reset()
	if d.SimTime() != 0 || d.Stats().Kernels != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestMakespanNeverBelowBounds(t *testing.T) {
	// Property: makespan >= max block time and >= total/SMs (lower bounds of
	// any schedule), and <= total (sequential upper bound).
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		d := New(simpleSpec())
		blocks := make([]Block, len(raw))
		var totalOps int64
		for i, r := range raw {
			blocks[i] = Block{Ops: int64(r%1000) + 1, Span: 1}
			totalOps += blocks[i].Ops
		}
		ms := d.makespan(blocks)
		var maxB, sum time.Duration
		for _, b := range blocks {
			bt := d.blockTime(b)
			sum += bt
			if bt > maxB {
				maxB = bt
			}
		}
		lower := sum / time.Duration(d.Spec.SMCount)
		return ms >= maxB && ms >= lower && ms <= sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCPUModel(t *testing.T) {
	m := CPUModel{NsPerOp: 2, Cores: 4}
	if got := m.SequentialTime(1000); got != 2*time.Microsecond {
		t.Fatalf("sequential time = %v", got)
	}
	x := XeonGold6226R()
	if x.Cores != 16 || x.NsPerOp <= 0 {
		t.Fatalf("Xeon model wrong: %+v", x)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() time.Duration {
		d := New(RTX3090())
		for i := 0; i < 10; i++ {
			blocks := make([]Block, 100+i)
			for j := range blocks {
				blocks[j] = Block{Ops: int64(50 + j), Span: int64(5 + j%7)}
			}
			d.LaunchKernel(blocks, 1<<16, 1<<12)
		}
		return d.SimTime()
	}
	if mk() != mk() {
		t.Fatal("device simulation not deterministic")
	}
}
