package grid

// Epoch-invalidated cost-field cache. GPU global routers get their
// throughput by turning per-edge cost evaluation into array loads over
// precomputed cost maps (GAP-LA builds per-layer maps with prefix sums for
// its layer-assignment DP); this file brings the same structure to the two
// hot paths the profile names: WireCost/ViaEdgeCost (a logistic — an exp —
// per maze relaxation) and SegCost/ViaStackCost (an O(length) walk per
// pattern candidate).
//
// Layout. Per layer l the cache holds one float64 per wire edge (the value
// WireCost would compute) and, per routing line (a row of a horizontal
// layer, a column of a vertical one), an exclusive prefix-sum array of
// those values, so SegCost collapses to two reads. Vias mirror this per
// G-cell column: one value per boundary plus a per-cell prefix over the
// L-1 boundaries, collapsing ViaStackCost.
//
// Invalidation protocol. Demand and history mutations invalidate at G-cell
// granularity: the mutated edge's stale flag is set (plain write — edge
// mutation is already owner-exclusive under the disjoint-window discipline,
// exactly like the demand array itself) and the edge's line/cell dirty flag
// is set (atomic — lines cross window boundaries, so concurrent rip-up
// workers in disjoint windows may share one). Readers never write the
// cache: a stale edge or dirty line falls back to the direct formula, which
// is always correct, so cache state can only change speed, never results.
// All materialization happens in WarmCostCache, which callers invoke only
// at single-threaded coordinator points (between pattern batches, at the
// top of a rip-up iteration).
//
// Determinism. A cached edge value is bit-identical to the direct formula
// (it is produced by the same code). The prefix-sum segment read may differ
// from the left-fold walk by float rounding; every consumer of SegCost
// compares with tolerances, and the maze router uses only per-edge costs,
// so routed geometry is bit-identical for any warm/cold state.

import (
	"math"
	"sync/atomic"

	"fastgr/internal/geom"
	"fastgr/internal/obs"
)

// costCache is the materialized cost field of one Graph. Value/prefix
// arrays are nil until the first WarmCostCache, so an unwarmed graph
// behaves exactly like the pre-cache implementation.
type costCache struct {
	built bool

	// win bounds the cached region in G-cells; full marks a window covering
	// the whole grid. Prefix-sum arrays exist only for the full window: a
	// partial window would accumulate its sums from a different origin than
	// the full-grid fold, and that float-rounding difference could flip a
	// pattern-DP tie between window layouts. Windowed caches therefore serve
	// per-edge values only — each bit-identical to the direct formula — so a
	// shard view's cache state can change speed but never results.
	win  geom.Rect
	full bool

	// Wire side. For the full window, indexed like wireDem: [l-1][edge].
	// For a partial window, [l-1] holds the window's own row-major edge
	// block (see ccWireSpan/ccWireLocal).
	wireVal   [][]float64
	wireStale [][]bool
	// wirePfx[l-1] holds lineCount(l) runs of lineLen(l)+1 exclusive
	// prefix sums (full window only); wireDirty[l-1] has one flag per
	// window line.
	wirePfx   [][]float64
	wireDirty [][]atomic.Uint32

	// Via side: [b][cell] values, one L-entry prefix run per cell
	// (viaPfx[cell*L+k] sums boundaries 0..k-1), one flag per cell.
	viaVal   [][]float64
	viaStale [][]bool
	viaPfx   []float64
	viaDirty []atomic.Uint32

	// Flight-recorder handles, resolved once by SetObserver; all nil in
	// disabled mode, where each event costs one nil check.
	hits   *obs.Counter
	misses *obs.Counter
	invals *obs.Counter
	warms  *obs.Counter
}

// SetObserver attaches (or, with nil, detaches) the flight recorder to the
// cost cache: fast-path hit/miss counters, per-edge invalidation counts and
// the number of lines/cells rebuilt by WarmCostCache.
func (g *Graph) SetObserver(o *obs.Observer) {
	g.cc.hits = o.M().Counter(obs.MCostHits)
	g.cc.misses = o.M().Counter(obs.MCostMisses)
	g.cc.invals = o.M().Counter(obs.MCostInvalidations)
	g.cc.warms = o.M().Counter(obs.MCostWarms)
}

// CostCacheBuilt reports whether the cost field has been materialized.
func (g *Graph) CostCacheBuilt() bool { return g.cc.built }

// lineLen is the edge count of one routing line of layer l; lineCount is
// the number of such lines.
func (g *Graph) lineLen(l int) int {
	if g.Dir(l) == Horizontal {
		return g.W - 1
	}
	return g.H - 1
}

func (g *Graph) lineCount(l int) int {
	if g.Dir(l) == Horizontal {
		return g.H
	}
	return g.W
}

// fullRect is the window covering every G-cell of the grid.
func (g *Graph) fullRect() geom.Rect {
	return geom.Rect{Hi: geom.Point{X: g.W - 1, Y: g.H - 1}}
}

// CostCacheWindow returns the region the cost cache covers.
func (g *Graph) CostCacheWindow() geom.Rect { return g.cc.win }

// ccWireSpan returns the cache-window geometry of layer l's wire edges:
// the number of cached edges per routing line and the number of window
// lines. An edge is cached when its starting cell lies in the window, so a
// window flush against the grid's far side has one fewer edge per line.
func (g *Graph) ccWireSpan(l int) (lineLen, lines int) {
	win := g.cc.win
	if g.Dir(l) == Horizontal {
		return geom.Min(win.Hi.X, g.W-2) - win.Lo.X + 1, win.Hi.Y - win.Lo.Y + 1
	}
	return geom.Min(win.Hi.Y, g.H-2) - win.Lo.Y + 1, win.Hi.X - win.Lo.X + 1
}

// ccWireLocal maps wire edge (x, y) of layer l to its window-local slot and
// line; ok is false when the edge lies outside the cache window. For the
// full window the local slot equals the global wireIndex.
func (g *Graph) ccWireLocal(l, x, y int) (idx, line int, ok bool) {
	win := g.cc.win
	lineLen, lines := g.ccWireSpan(l)
	var off int
	if g.Dir(l) == Horizontal {
		off, line = x-win.Lo.X, y-win.Lo.Y
	} else {
		off, line = y-win.Lo.Y, x-win.Lo.X
	}
	if off < 0 || off >= lineLen || line < 0 || line >= lines {
		return 0, 0, false
	}
	return line*lineLen + off, line, true
}

// ccViaLocal maps G-cell (x, y) to its window-local via slot; ok is false
// outside the window. For the full window the slot equals y*W+x.
func (g *Graph) ccViaLocal(x, y int) (int, bool) {
	win := g.cc.win
	lx, ly := x-win.Lo.X, y-win.Lo.Y
	if lx < 0 || ly < 0 || x > win.Hi.X || y > win.Hi.Y {
		return 0, false
	}
	return ly*win.Width() + lx, true
}

// wireCostAt is the direct cost formula for wire edge i of layer l — the
// single source of truth both the fallback path and the warmer evaluate.
func (g *Graph) wireCostAt(l, i int) float64 {
	cap, dem := g.wireCap[l-1][i], g.wireDem[l-1][i]
	c := g.Params.UnitWire + g.logistic(dem, cap)
	if cap <= 0 {
		c += g.Params.BlockedPenalty
	}
	if g.history != nil {
		c += HistoryWeight * float64(g.history[l-1][i])
	}
	return c
}

// viaCostAt is the direct via-edge formula for cell i across the boundary
// above layer l.
func (g *Graph) viaCostAt(l, i int) float64 {
	cap, dem := g.viaCap[l-1], g.viaDem[l-1][i]
	return g.Params.UnitVia + g.logistic(dem, cap)
}

// noteWireMutation invalidates the cached cost of one wire edge: the
// caller owns the edge (demand writes already require that), the line flag
// is shared across windows and therefore atomic. i is the global edge
// index; a windowed cache inverts it to window-local coordinates and
// ignores mutations it never covered.
func (g *Graph) noteWireMutation(l, i int) {
	cc := &g.cc
	if !cc.built {
		return
	}
	if cc.full {
		cc.wireStale[l-1][i] = true
		cc.wireDirty[l-1][i/g.lineLen(l)].Store(1)
		cc.invals.Add(1)
		return
	}
	var x, y int
	if g.Dir(l) == Horizontal {
		y, x = i/(g.W-1), i%(g.W-1)
	} else {
		x, y = i/(g.H-1), i%(g.H-1)
	}
	li, line, ok := g.ccWireLocal(l, x, y)
	if !ok {
		return
	}
	cc.wireStale[l-1][li] = true
	cc.wireDirty[l-1][line].Store(1)
	cc.invals.Add(1)
}

// noteViaMutation invalidates one via edge and its cell's prefix run.
// cell is the global y*W+x index; windowed caches translate it like
// noteWireMutation does.
func (g *Graph) noteViaMutation(l, cell int) {
	cc := &g.cc
	if !cc.built {
		return
	}
	ci := cell
	if !cc.full {
		var ok bool
		if ci, ok = g.ccViaLocal(cell%g.W, cell/g.W); !ok {
			return
		}
	}
	cc.viaStale[l-1][ci] = true
	cc.viaDirty[ci].Store(1)
	cc.invals.Add(1)
}

// WarmCostCache (re)materializes every dirty line and cell of the cost
// field — the whole field on first call. It must only be called at
// single-threaded coordinator points: it is the one place cache values are
// written, which is what lets concurrent readers skip all synchronization
// on the value arrays.
func (g *Graph) WarmCostCache() {
	cc := &g.cc
	if !cc.built {
		cc.wireVal = make([][]float64, g.L)
		cc.wireStale = make([][]bool, g.L)
		if cc.full {
			cc.wirePfx = make([][]float64, g.L)
		}
		cc.wireDirty = make([][]atomic.Uint32, g.L)
		for l := 1; l <= g.L; l++ {
			ll, lines := g.ccWireSpan(l)
			if ll < 0 {
				ll = 0
			}
			cc.wireVal[l-1] = make([]float64, lines*ll)
			cc.wireStale[l-1] = make([]bool, lines*ll)
			if cc.full {
				cc.wirePfx[l-1] = make([]float64, lines*(ll+1))
			}
			cc.wireDirty[l-1] = make([]atomic.Uint32, lines)
			for li := range cc.wireDirty[l-1] {
				cc.wireDirty[l-1][li].Store(1)
			}
		}
		cells := cc.win.Area()
		cc.viaVal = make([][]float64, g.L-1)
		cc.viaStale = make([][]bool, g.L-1)
		for b := 0; b < g.L-1; b++ {
			cc.viaVal[b] = make([]float64, cells)
			cc.viaStale[b] = make([]bool, cells)
		}
		if cc.full {
			cc.viaPfx = make([]float64, cells*g.L)
		}
		cc.viaDirty = make([]atomic.Uint32, cells)
		for i := range cc.viaDirty {
			cc.viaDirty[i].Store(1)
		}
		cc.built = true
	}

	warmed := 0
	for l := 1; l <= g.L; l++ {
		ll, lines := g.ccWireSpan(l)
		if ll <= 0 {
			continue
		}
		val, stale := cc.wireVal[l-1], cc.wireStale[l-1]
		dirty := cc.wireDirty[l-1]
		horiz := g.Dir(l) == Horizontal
		for li := 0; li < lines; li++ {
			if dirty[li].Load() == 0 {
				continue
			}
			base := li * ll
			if cc.full {
				pfx := cc.wirePfx[l-1]
				pbase := li * (ll + 1)
				sum := 0.0
				pfx[pbase] = 0
				for k := 0; k < ll; k++ {
					c := g.wireCostAt(l, base+k)
					val[base+k] = c
					stale[base+k] = false
					sum += c
					pfx[pbase+k+1] = sum
				}
			} else {
				for k := 0; k < ll; k++ {
					var x, y int
					if horiz {
						x, y = cc.win.Lo.X+k, cc.win.Lo.Y+li
					} else {
						x, y = cc.win.Lo.X+li, cc.win.Lo.Y+k
					}
					c := g.wireCostAt(l, g.wireIndex(l, x, y))
					val[base+k] = c
					stale[base+k] = false
				}
			}
			dirty[li].Store(0)
			warmed++
		}
	}
	cw := cc.win.Width()
	for ci := 0; ci < cc.win.Area(); ci++ {
		if cc.viaDirty[ci].Load() == 0 {
			continue
		}
		gcell := ci
		if !cc.full {
			gcell = (cc.win.Lo.Y+ci/cw)*g.W + cc.win.Lo.X + ci%cw
		}
		if cc.full {
			base := ci * g.L
			sum := 0.0
			cc.viaPfx[base] = 0
			for b := 0; b < g.L-1; b++ {
				c := g.viaCostAt(b+1, gcell)
				cc.viaVal[b][ci] = c
				cc.viaStale[b][ci] = false
				sum += c
				cc.viaPfx[base+b+1] = sum
			}
		} else {
			for b := 0; b < g.L-1; b++ {
				cc.viaVal[b][ci] = g.viaCostAt(b+1, gcell)
				cc.viaStale[b][ci] = false
			}
		}
		cc.viaDirty[ci].Store(0)
		warmed++
	}
	cc.warms.Add(int64(warmed))
}

// InvalidateCostCache drops the materialized field entirely; the next
// WarmCostCache rebuilds from scratch. Like Warm, coordinator-only. The
// cache window survives the flush.
func (g *Graph) InvalidateCostCache() {
	g.cc = costCache{
		win:    g.cc.win,
		full:   g.cc.full,
		hits:   g.cc.hits,
		misses: g.cc.misses,
		invals: g.cc.invals,
		warms:  g.cc.warms,
	}
}

// SegCostsAllLayers fills dst (len >= L) with SegCost(l, a, b) for every
// layer: +Inf where the run fights the layer's preferred direction, zero
// everywhere when a == b. One call replaces the per-layer dispatch in the
// pattern DP's candidate evaluation; with a warm cache each feasible layer
// costs two prefix reads.
func (g *Graph) SegCostsAllLayers(a, b geom.Point, dst []float64) {
	inf := math.Inf(1)
	if a == b {
		for l := 0; l < g.L; l++ {
			dst[l] = 0
		}
		return
	}
	var o Dir
	if a.Y == b.Y {
		o = Horizontal
	} else {
		o = Vertical
	}
	for l := 1; l <= g.L; l++ {
		if g.Dir(l) != o {
			dst[l-1] = inf
			continue
		}
		dst[l-1] = g.SegCost(l, a, b)
	}
}
