package grid

// Epoch-invalidated cost-field cache. GPU global routers get their
// throughput by turning per-edge cost evaluation into array loads over
// precomputed cost maps (GAP-LA builds per-layer maps with prefix sums for
// its layer-assignment DP); this file brings the same structure to the two
// hot paths the profile names: WireCost/ViaEdgeCost (a logistic — an exp —
// per maze relaxation) and SegCost/ViaStackCost (an O(length) walk per
// pattern candidate).
//
// Layout. Per layer l the cache holds one float64 per wire edge (the value
// WireCost would compute) and, per routing line (a row of a horizontal
// layer, a column of a vertical one), an exclusive prefix-sum array of
// those values, so SegCost collapses to two reads. Vias mirror this per
// G-cell column: one value per boundary plus a per-cell prefix over the
// L-1 boundaries, collapsing ViaStackCost.
//
// Invalidation protocol. Demand and history mutations invalidate at G-cell
// granularity: the mutated edge's stale flag is set (plain write — edge
// mutation is already owner-exclusive under the disjoint-window discipline,
// exactly like the demand array itself) and the edge's line/cell dirty flag
// is set (atomic — lines cross window boundaries, so concurrent rip-up
// workers in disjoint windows may share one). Readers never write the
// cache: a stale edge or dirty line falls back to the direct formula, which
// is always correct, so cache state can only change speed, never results.
// All materialization happens in WarmCostCache, which callers invoke only
// at single-threaded coordinator points (between pattern batches, at the
// top of a rip-up iteration).
//
// Determinism. A cached edge value is bit-identical to the direct formula
// (it is produced by the same code). The prefix-sum segment read may differ
// from the left-fold walk by float rounding; every consumer of SegCost
// compares with tolerances, and the maze router uses only per-edge costs,
// so routed geometry is bit-identical for any warm/cold state.

import (
	"math"
	"sync/atomic"

	"fastgr/internal/geom"
	"fastgr/internal/obs"
)

// costCache is the materialized cost field of one Graph. Value/prefix
// arrays are nil until the first WarmCostCache, so an unwarmed graph
// behaves exactly like the pre-cache implementation.
type costCache struct {
	built bool

	// Wire side, indexed like wireDem: [l-1][edge].
	wireVal   [][]float64
	wireStale [][]bool
	// wirePfx[l-1] holds lineCount(l) runs of lineLen(l)+1 exclusive
	// prefix sums; wireDirty[l-1] has one flag per line.
	wirePfx   [][]float64
	wireDirty [][]atomic.Uint32

	// Via side: [b][cell] values, one L-entry prefix run per cell
	// (viaPfx[cell*L+k] sums boundaries 0..k-1), one flag per cell.
	viaVal   [][]float64
	viaStale [][]bool
	viaPfx   []float64
	viaDirty []atomic.Uint32

	// Flight-recorder handles, resolved once by SetObserver; all nil in
	// disabled mode, where each event costs one nil check.
	hits   *obs.Counter
	misses *obs.Counter
	invals *obs.Counter
	warms  *obs.Counter
}

// SetObserver attaches (or, with nil, detaches) the flight recorder to the
// cost cache: fast-path hit/miss counters, per-edge invalidation counts and
// the number of lines/cells rebuilt by WarmCostCache.
func (g *Graph) SetObserver(o *obs.Observer) {
	g.cc.hits = o.M().Counter(obs.MCostHits)
	g.cc.misses = o.M().Counter(obs.MCostMisses)
	g.cc.invals = o.M().Counter(obs.MCostInvalidations)
	g.cc.warms = o.M().Counter(obs.MCostWarms)
}

// CostCacheBuilt reports whether the cost field has been materialized.
func (g *Graph) CostCacheBuilt() bool { return g.cc.built }

// lineLen is the edge count of one routing line of layer l; lineCount is
// the number of such lines.
func (g *Graph) lineLen(l int) int {
	if g.Dir(l) == Horizontal {
		return g.W - 1
	}
	return g.H - 1
}

func (g *Graph) lineCount(l int) int {
	if g.Dir(l) == Horizontal {
		return g.H
	}
	return g.W
}

// wireCostAt is the direct cost formula for wire edge i of layer l — the
// single source of truth both the fallback path and the warmer evaluate.
func (g *Graph) wireCostAt(l, i int) float64 {
	cap, dem := g.wireCap[l-1][i], g.wireDem[l-1][i]
	c := g.Params.UnitWire + g.logistic(dem, cap)
	if cap <= 0 {
		c += g.Params.BlockedPenalty
	}
	if g.history != nil {
		c += HistoryWeight * float64(g.history[l-1][i])
	}
	return c
}

// viaCostAt is the direct via-edge formula for cell i across the boundary
// above layer l.
func (g *Graph) viaCostAt(l, i int) float64 {
	cap, dem := g.viaCap[l-1], g.viaDem[l-1][i]
	return g.Params.UnitVia + g.logistic(dem, cap)
}

// noteWireMutation invalidates the cached cost of one wire edge: the
// caller owns the edge (demand writes already require that), the line flag
// is shared across windows and therefore atomic.
func (g *Graph) noteWireMutation(l, i int) {
	cc := &g.cc
	if !cc.built {
		return
	}
	cc.wireStale[l-1][i] = true
	cc.wireDirty[l-1][i/g.lineLen(l)].Store(1)
	cc.invals.Add(1)
}

// noteViaMutation invalidates one via edge and its cell's prefix run.
func (g *Graph) noteViaMutation(l, cell int) {
	cc := &g.cc
	if !cc.built {
		return
	}
	cc.viaStale[l-1][cell] = true
	cc.viaDirty[cell].Store(1)
	cc.invals.Add(1)
}

// WarmCostCache (re)materializes every dirty line and cell of the cost
// field — the whole field on first call. It must only be called at
// single-threaded coordinator points: it is the one place cache values are
// written, which is what lets concurrent readers skip all synchronization
// on the value arrays.
func (g *Graph) WarmCostCache() {
	cc := &g.cc
	if !cc.built {
		cc.wireVal = make([][]float64, g.L)
		cc.wireStale = make([][]bool, g.L)
		cc.wirePfx = make([][]float64, g.L)
		cc.wireDirty = make([][]atomic.Uint32, g.L)
		for l := 1; l <= g.L; l++ {
			n := g.numWireEdges(l)
			lines := g.lineCount(l)
			cc.wireVal[l-1] = make([]float64, n)
			cc.wireStale[l-1] = make([]bool, n)
			cc.wirePfx[l-1] = make([]float64, lines*(g.lineLen(l)+1))
			cc.wireDirty[l-1] = make([]atomic.Uint32, lines)
			for li := range cc.wireDirty[l-1] {
				cc.wireDirty[l-1][li].Store(1)
			}
		}
		cells := g.W * g.H
		cc.viaVal = make([][]float64, g.L-1)
		cc.viaStale = make([][]bool, g.L-1)
		for b := 0; b < g.L-1; b++ {
			cc.viaVal[b] = make([]float64, cells)
			cc.viaStale[b] = make([]bool, cells)
		}
		cc.viaPfx = make([]float64, cells*g.L)
		cc.viaDirty = make([]atomic.Uint32, cells)
		for i := range cc.viaDirty {
			cc.viaDirty[i].Store(1)
		}
		cc.built = true
	}

	warmed := 0
	for l := 1; l <= g.L; l++ {
		ll := g.lineLen(l)
		if ll <= 0 {
			continue
		}
		val, stale := cc.wireVal[l-1], cc.wireStale[l-1]
		pfx, dirty := cc.wirePfx[l-1], cc.wireDirty[l-1]
		for li := 0; li < g.lineCount(l); li++ {
			if dirty[li].Load() == 0 {
				continue
			}
			base, pbase := li*ll, li*(ll+1)
			sum := 0.0
			pfx[pbase] = 0
			for k := 0; k < ll; k++ {
				c := g.wireCostAt(l, base+k)
				val[base+k] = c
				stale[base+k] = false
				sum += c
				pfx[pbase+k+1] = sum
			}
			dirty[li].Store(0)
			warmed++
		}
	}
	for cell := 0; cell < g.W*g.H; cell++ {
		if cc.viaDirty[cell].Load() == 0 {
			continue
		}
		base := cell * g.L
		sum := 0.0
		cc.viaPfx[base] = 0
		for b := 0; b < g.L-1; b++ {
			c := g.viaCostAt(b+1, cell)
			cc.viaVal[b][cell] = c
			cc.viaStale[b][cell] = false
			sum += c
			cc.viaPfx[base+b+1] = sum
		}
		cc.viaDirty[cell].Store(0)
		warmed++
	}
	cc.warms.Add(int64(warmed))
}

// InvalidateCostCache drops the materialized field entirely; the next
// WarmCostCache rebuilds from scratch. Like Warm, coordinator-only.
func (g *Graph) InvalidateCostCache() {
	g.cc = costCache{
		hits:   g.cc.hits,
		misses: g.cc.misses,
		invals: g.cc.invals,
		warms:  g.cc.warms,
	}
}

// SegCostsAllLayers fills dst (len >= L) with SegCost(l, a, b) for every
// layer: +Inf where the run fights the layer's preferred direction, zero
// everywhere when a == b. One call replaces the per-layer dispatch in the
// pattern DP's candidate evaluation; with a warm cache each feasible layer
// costs two prefix reads.
func (g *Graph) SegCostsAllLayers(a, b geom.Point, dst []float64) {
	inf := math.Inf(1)
	if a == b {
		for l := 0; l < g.L; l++ {
			dst[l] = 0
		}
		return
	}
	var o Dir
	if a.Y == b.Y {
		o = Horizontal
	} else {
		o = Vertical
	}
	for l := 1; l <= g.L; l++ {
		if g.Dir(l) != o {
			dst[l-1] = inf
			continue
		}
		dst[l-1] = g.SegCost(l, a, b)
	}
}
