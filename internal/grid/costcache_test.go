package grid

import (
	"math"
	"math/rand"
	"testing"

	"fastgr/internal/design"
	"fastgr/internal/geom"
	"fastgr/internal/obs"
	"fastgr/internal/par"
)

// congest seeds deterministic non-uniform demand so cached values differ
// edge to edge.
func congest(g *Graph, seed int64, n int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		l := 1 + rng.Intn(g.L)
		x, y := rng.Intn(g.W-1), rng.Intn(g.H-1)
		if g.HasWireEdge(l, x, y) {
			if g.Dir(l) == Horizontal {
				g.AddSegDemand(l, geom.Point{X: x, Y: y}, geom.Point{X: x + 1, Y: y}, rng.Intn(8))
			} else {
				g.AddSegDemand(l, geom.Point{X: x, Y: y}, geom.Point{X: x, Y: y + 1}, rng.Intn(8))
			}
		}
		g.AddViaStackDemand(rng.Intn(g.W), rng.Intn(g.H), 1, 1+rng.Intn(g.L-1)+1, rng.Intn(3))
	}
}

// assertCacheMatchesDirect checks every cached wire and via edge against the
// direct formula. Cached values must be bit-identical: the warmer runs the
// same code as the fallback.
func assertCacheMatchesDirect(t *testing.T, g *Graph) {
	t.Helper()
	if !g.CostCacheBuilt() {
		t.Fatal("cache not built")
	}
	for l := 1; l <= g.L; l++ {
		for i := 0; i < g.numWireEdges(l); i++ {
			if g.cc.wireStale[l-1][i] {
				t.Fatalf("layer %d edge %d still stale after warm", l, i)
			}
			if got, want := g.cc.wireVal[l-1][i], g.wireCostAt(l, i); got != want {
				t.Fatalf("layer %d edge %d cached %v != direct %v", l, i, got, want)
			}
		}
	}
	for b := 0; b < g.L-1; b++ {
		for cell := 0; cell < g.W*g.H; cell++ {
			if got, want := g.cc.viaVal[b][cell], g.viaCostAt(b+1, cell); got != want {
				t.Fatalf("via boundary %d cell %d cached %v != direct %v", b, cell, got, want)
			}
		}
	}
}

// TestCostCacheExactAfterWarm: a warm cache answers WireCost/ViaEdgeCost
// bit-identically to the direct formula on a congested grid with blockages.
func TestCostCacheExactAfterWarm(t *testing.T) {
	d := testDesign(5)
	d.Blockages = []design.Blockage{{
		Layer: 3, Region: geom.NewRect(geom.Point{X: 2, Y: 2}, geom.Point{X: 5, Y: 4}), Density: 1.0,
	}}
	g := NewFromDesign(d)
	congest(g, 1, 300)
	g.WarmCostCache()
	assertCacheMatchesDirect(t, g)

	// The public accessors must serve the cached value.
	for l := 1; l <= g.L; l++ {
		for y := 0; y < g.H; y++ {
			for x := 0; x < g.W; x++ {
				if g.HasWireEdge(l, x, y) {
					if got, want := g.WireCost(l, x, y), g.wireCostAt(l, g.wireIndex(l, x, y)); got != want {
						t.Fatalf("WireCost(%d,%d,%d) = %v, want %v", l, x, y, got, want)
					}
				}
				if l < g.L {
					if got, want := g.ViaEdgeCost(x, y, l), g.viaCostAt(l, y*g.W+x); got != want {
						t.Fatalf("ViaEdgeCost(%d,%d,%d) = %v, want %v", x, y, l, got, want)
					}
				}
			}
		}
	}
}

// TestCostCacheInvalidation: demand and history mutations after a warm must
// be visible immediately (stale fallback) and re-cached by the next warm.
func TestCostCacheInvalidation(t *testing.T) {
	g := NewFromDesign(testDesign(5))
	congest(g, 2, 200)
	g.WarmCostCache()

	a, b := geom.Point{X: 3, Y: 4}, geom.Point{X: 7, Y: 4}
	before := g.WireCost(1, 3, 4)
	g.AddSegDemand(1, a, b, 2)
	after := g.WireCost(1, 3, 4)
	if after == before {
		t.Fatal("WireCost unchanged after demand mutation — stale cache served")
	}
	if want := g.wireCostAt(1, g.wireIndex(1, 3, 4)); after != want {
		t.Fatalf("stale fallback %v != direct %v", after, want)
	}
	// SegCost over the dirty line must fall back to the per-edge walk.
	var walk float64
	for x := a.X; x < b.X; x++ {
		walk += g.WireCost(1, x, a.Y)
	}
	if got := g.SegCost(1, a, b); got != walk {
		t.Fatalf("SegCost on dirty line = %v, want per-edge walk %v", got, walk)
	}

	vBefore := g.ViaStackCost(2, 2, 1, 4)
	g.AddViaStackDemand(2, 2, 1, 4, 1)
	if got := g.ViaStackCost(2, 2, 1, 4); got == vBefore {
		t.Fatal("ViaStackCost unchanged after via demand mutation")
	}

	// History bumps on overflowed edges invalidate like demand writes.
	g.EnableHistory()
	g.AddSegDemand(1, geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 0}, 5) // cap 1 on layer 1
	g.WarmCostCache()
	hBefore := g.WireCost(1, 0, 0)
	g.BumpOverflowHistory(1.0)
	if got := g.WireCost(1, 0, 0); got <= hBefore {
		t.Fatalf("WireCost %v not increased by history bump (was %v)", got, hBefore)
	}

	g.WarmCostCache()
	assertCacheMatchesDirect(t, g)

	g.InvalidateCostCache()
	if g.CostCacheBuilt() {
		t.Fatal("cache still built after InvalidateCostCache")
	}
	if got, want := g.WireCost(1, 3, 4), g.wireCostAt(1, g.wireIndex(1, 3, 4)); got != want {
		t.Fatalf("unbuilt WireCost %v != direct %v", got, want)
	}
}

// TestSegCostPrefixMatchesWalk: the prefix-sum fast path agrees with the
// per-edge left fold to float rounding on random segments and via stacks.
func TestSegCostPrefixMatchesWalk(t *testing.T) {
	g := NewFromDesign(design.MustGenerate("18test5m", 0.003))
	congest(g, 3, 500)
	g.WarmCostCache()
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		l := 1 + rng.Intn(g.L)
		var a, b geom.Point
		if g.Dir(l) == Horizontal {
			y := rng.Intn(g.H)
			x0 := rng.Intn(g.W - 1)
			x1 := x0 + 1 + rng.Intn(g.W-1-x0)
			a, b = geom.Point{X: x0, Y: y}, geom.Point{X: x1, Y: y}
		} else {
			x := rng.Intn(g.W)
			y0 := rng.Intn(g.H - 1)
			y1 := y0 + 1 + rng.Intn(g.H-1-y0)
			a, b = geom.Point{X: x, Y: y0}, geom.Point{X: x, Y: y1}
		}
		var walk float64
		if g.Dir(l) == Horizontal {
			for x := a.X; x < b.X; x++ {
				walk += g.WireCost(l, x, a.Y)
			}
		} else {
			for y := a.Y; y < b.Y; y++ {
				walk += g.WireCost(l, a.X, y)
			}
		}
		if got := g.SegCost(l, a, b); math.Abs(got-walk) > 1e-9 {
			t.Fatalf("SegCost(%d,%v,%v) = %v, walk = %v", l, a, b, got, walk)
		}

		x, y := rng.Intn(g.W), rng.Intn(g.H)
		l1 := 1 + rng.Intn(g.L)
		l2 := 1 + rng.Intn(g.L)
		var stack float64
		for k := geom.Min(l1, l2); k < geom.Max(l1, l2); k++ {
			stack += g.ViaEdgeCost(x, y, k)
		}
		if got := g.ViaStackCost(x, y, l1, l2); math.Abs(got-stack) > 1e-9 {
			t.Fatalf("ViaStackCost(%d,%d,%d,%d) = %v, walk = %v", x, y, l1, l2, got, stack)
		}
	}
}

// TestSegCostsAllLayers: the bulk query matches the per-layer dispatch, with
// +Inf on direction-fighting layers and zeros for the empty run.
func TestSegCostsAllLayers(t *testing.T) {
	g := NewFromDesign(testDesign(6))
	congest(g, 5, 150)
	for _, warm := range []bool{false, true} {
		if warm {
			g.WarmCostCache()
		}
		dst := make([]float64, g.L)
		a, b := geom.Point{X: 1, Y: 3}, geom.Point{X: 8, Y: 3} // horizontal run
		g.SegCostsAllLayers(a, b, dst)
		for l := 1; l <= g.L; l++ {
			if g.Dir(l) != Horizontal {
				if !math.IsInf(dst[l-1], 1) {
					t.Fatalf("warm=%v layer %d: want +Inf, got %v", warm, l, dst[l-1])
				}
				continue
			}
			if want := g.SegCost(l, a, b); dst[l-1] != want {
				t.Fatalf("warm=%v layer %d: got %v, want %v", warm, l, dst[l-1], want)
			}
		}
		g.SegCostsAllLayers(a, a, dst)
		for l := 1; l <= g.L; l++ {
			if dst[l-1] != 0 {
				t.Fatalf("warm=%v empty run layer %d: got %v", warm, l, dst[l-1])
			}
		}
	}
}

// TestCostCacheConcurrentWindows exercises the invalidation protocol under
// the disjoint-window discipline: workers mutate demand and read costs only
// inside their own column band, so the plain stale flags never conflict,
// while H-layer rows span every band and force the shared line dirty flags
// through their atomic path (the -race step watches this).
func TestCostCacheConcurrentWindows(t *testing.T) {
	g := NewFromDesign(design.MustGenerate("18test5m", 0.003))
	congest(g, 6, 200)
	g.WarmCostCache()

	workers := 8
	band := g.W / workers
	if band < 2 {
		t.Skipf("grid too narrow for %d bands", workers)
	}
	par.For(workers, workers, func(_, w int) {
		rng := rand.New(rand.NewSource(int64(w)))
		lox := w * band
		for rep := 0; rep < 200; rep++ {
			l := 1 + rng.Intn(g.L)
			x, y := lox+rng.Intn(band-1), rng.Intn(g.H-1)
			if g.HasWireEdge(l, x, y) {
				if g.Dir(l) == Horizontal {
					g.AddSegDemand(l, geom.Point{X: x, Y: y}, geom.Point{X: x + 1, Y: y}, 1)
				} else {
					g.AddSegDemand(l, geom.Point{X: x, Y: y}, geom.Point{X: x, Y: y + 1}, 1)
				}
				_ = g.WireCost(l, x, y)
			}
			g.AddViaStackDemand(lox+rng.Intn(band), rng.Intn(g.H), 1, g.L, 1)
			_ = g.ViaStackCost(lox+rng.Intn(band), rng.Intn(g.H), 1, g.L)
		}
	})

	g.WarmCostCache()
	assertCacheMatchesDirect(t, g)
}

// TestCostCacheCounters: the flight-recorder handles observe hits, misses,
// invalidations and warmed lines; detaching resets to the nil-safe zero cost.
func TestCostCacheCounters(t *testing.T) {
	g := NewFromDesign(testDesign(5))
	o := &obs.Observer{Metrics: obs.NewRegistry()}
	g.SetObserver(o)
	m := o.M()

	g.WireCost(1, 1, 1) // unbuilt: a miss
	if m.Counter(obs.MCostMisses).Value() == 0 {
		t.Fatal("unbuilt WireCost did not count a miss")
	}
	g.WarmCostCache()
	if m.Counter(obs.MCostWarms).Value() == 0 {
		t.Fatal("warm counted no lines")
	}
	g.WireCost(1, 1, 1)
	if m.Counter(obs.MCostHits).Value() == 0 {
		t.Fatal("warm WireCost did not count a hit")
	}
	g.AddSegDemand(1, geom.Point{X: 1, Y: 1}, geom.Point{X: 2, Y: 1}, 1)
	if m.Counter(obs.MCostInvalidations).Value() == 0 {
		t.Fatal("mutation did not count an invalidation")
	}
}
