package grid

import "fastgr/internal/geom"

// Estimator2D is a snapshot of the grid's congestion collapsed to 2-D: the
// cheapest-layer cost of each horizontal and vertical G-cell step. Steiner
// tree planning (edge shifting) uses it to steer topology away from hot
// spots without paying for full 3-D queries.
type Estimator2D struct {
	W, H  int
	hCost []float64 // (W-1)*H, index y*(W-1)+x: step (x,y)->(x+1,y)
	vCost []float64 // W*(H-1), index x*(H-1)+y: step (x,y)->(x,y+1)
}

// Estimator2D builds a snapshot at the grid's current demand.
func (g *Graph) Estimator2D() *Estimator2D {
	e := &Estimator2D{
		W:     g.W,
		H:     g.H,
		hCost: make([]float64, (g.W-1)*g.H),
		vCost: make([]float64, g.W*(g.H-1)),
	}
	for i := range e.hCost {
		e.hCost[i] = -1
	}
	for i := range e.vCost {
		e.vCost[i] = -1
	}
	for l := 1; l <= g.L; l++ {
		if g.Dir(l) == Horizontal {
			for y := 0; y < g.H; y++ {
				for x := 0; x < g.W-1; x++ {
					c := g.WireCost(l, x, y)
					i := y*(g.W-1) + x
					if e.hCost[i] < 0 || c < e.hCost[i] {
						e.hCost[i] = c
					}
				}
			}
		} else {
			for x := 0; x < g.W; x++ {
				for y := 0; y < g.H-1; y++ {
					c := g.WireCost(l, x, y)
					i := x*(g.H-1) + y
					if e.vCost[i] < 0 || c < e.vCost[i] {
						e.vCost[i] = c
					}
				}
			}
		}
	}
	return e
}

// HSeg is the estimated cost of a horizontal run at row y from x1 to x2.
func (e *Estimator2D) HSeg(y, x1, x2 int) float64 {
	lo, hi := geom.Min(x1, x2), geom.Max(x1, x2)
	total := 0.0
	for x := lo; x < hi; x++ {
		total += e.hCost[y*(e.W-1)+x]
	}
	return total
}

// VSeg is the estimated cost of a vertical run at column x from y1 to y2.
func (e *Estimator2D) VSeg(x, y1, y2 int) float64 {
	lo, hi := geom.Min(y1, y2), geom.Max(y1, y2)
	total := 0.0
	for y := lo; y < hi; y++ {
		total += e.vCost[x*(e.H-1)+y]
	}
	return total
}

// LPathCost is the estimated cost of connecting a and b with the cheaper of
// the two L-shaped paths.
func (e *Estimator2D) LPathCost(a, b geom.Point) float64 {
	// Bend at (b.X, a.Y): horizontal first.
	c1 := e.HSeg(a.Y, a.X, b.X) + e.VSeg(b.X, a.Y, b.Y)
	// Bend at (a.X, b.Y): vertical first.
	c2 := e.VSeg(a.X, a.Y, b.Y) + e.HSeg(b.Y, a.X, b.X)
	if c1 < c2 {
		return c1
	}
	return c2
}
