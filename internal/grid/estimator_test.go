package grid

import (
	"math"
	"testing"

	"fastgr/internal/design"
	"fastgr/internal/geom"
)

func estDesign() *design.Design {
	return &design.Design{
		Name: "e", GridW: 16, GridH: 12, NumLayers: 4,
		LayerCapacity: []int{1, 10, 10, 10}, ViaCapacity: 8,
		Nets: []*design.Net{{ID: 0, Name: "n", Pins: []design.Pin{
			{Pos: geom.Point{X: 0, Y: 0}, Layer: 1},
			{Pos: geom.Point{X: 1, Y: 1}, Layer: 1},
		}}},
	}
}

func TestEstimatorPicksCheapestLayer(t *testing.T) {
	g := NewFromDesign(estDesign())
	// Congest layer 3 (horizontal); layer 1 has capacity 1 so is expensive
	// already. The estimator's horizontal cost must be min over layers.
	g.AddSegDemand(3, geom.Point{X: 4, Y: 4}, geom.Point{X: 5, Y: 4}, 20)
	e := g.Estimator2D()
	want := math.Min(g.WireCost(1, 4, 4), g.WireCost(3, 4, 4))
	if got := e.HSeg(4, 4, 5); math.Abs(got-want) > 1e-9 {
		t.Fatalf("HSeg = %v, want cheapest-layer %v", got, want)
	}
	wantV := math.Min(g.WireCost(2, 4, 4), g.WireCost(4, 4, 4))
	if got := e.VSeg(4, 4, 5); math.Abs(got-wantV) > 1e-9 {
		t.Fatalf("VSeg = %v, want %v", got, wantV)
	}
}

func TestEstimatorSegAdditive(t *testing.T) {
	g := NewFromDesign(estDesign())
	e := g.Estimator2D()
	whole := e.HSeg(3, 2, 10)
	parts := e.HSeg(3, 2, 6) + e.HSeg(3, 6, 10)
	if math.Abs(whole-parts) > 1e-9 {
		t.Fatalf("HSeg not additive: %v vs %v", whole, parts)
	}
	if e.HSeg(3, 5, 5) != 0 || e.VSeg(5, 3, 3) != 0 {
		t.Fatal("zero-length segments should cost 0")
	}
	// Order of endpoints must not matter.
	if e.VSeg(5, 2, 9) != e.VSeg(5, 9, 2) {
		t.Fatal("VSeg not symmetric in endpoints")
	}
}

func TestEstimatorLPathCost(t *testing.T) {
	g := NewFromDesign(estDesign())
	// Congest the row of the horizontal-first bend so the vertical-first L
	// becomes cheaper.
	for x := 2; x < 10; x++ {
		g.AddSegDemand(1, geom.Point{X: x, Y: 2}, geom.Point{X: x + 1, Y: 2}, 5)
		g.AddSegDemand(3, geom.Point{X: x, Y: 2}, geom.Point{X: x + 1, Y: 2}, 25)
	}
	e := g.Estimator2D()
	a, b := geom.Point{X: 2, Y: 2}, geom.Point{X: 10, Y: 8}
	got := e.LPathCost(a, b)
	hFirst := e.HSeg(a.Y, a.X, b.X) + e.VSeg(b.X, a.Y, b.Y)
	vFirst := e.VSeg(a.X, a.Y, b.Y) + e.HSeg(b.Y, a.X, b.X)
	if math.Abs(got-math.Min(hFirst, vFirst)) > 1e-9 {
		t.Fatalf("LPathCost = %v, want min(%v, %v)", got, hFirst, vFirst)
	}
	if vFirst >= hFirst {
		t.Fatal("test setup wrong: vertical-first should be cheaper")
	}
	// Degenerate (collinear) endpoints.
	if e.LPathCost(a, geom.Point{X: a.X, Y: 9}) != e.VSeg(a.X, a.Y, 9) {
		t.Fatal("collinear LPathCost wrong")
	}
}

func TestEstimatorIsSnapshot(t *testing.T) {
	g := NewFromDesign(estDesign())
	e := g.Estimator2D()
	before := e.HSeg(5, 2, 8)
	g.AddSegDemand(3, geom.Point{X: 2, Y: 5}, geom.Point{X: 8, Y: 5}, 30)
	if e.HSeg(5, 2, 8) != before {
		t.Fatal("estimator changed after demand update; it must be a snapshot")
	}
	if g.Estimator2D().HSeg(5, 2, 8) <= before {
		t.Fatal("fresh estimator should see the new congestion")
	}
}
