// Package grid implements the 3-D global-routing grid graph G(V,E) of
// Section II-A: one vertex per G-cell per metal layer, wire edges between
// adjacent G-cells along each layer's preferred direction, and via edges
// between vertically adjacent layers. Wire and via edges carry capacity and
// demand; edge costs follow CUGR's scheme — a wirelength unit plus a
// logistic congestion penalty — which is the cost model the paper's pattern
// and maze routers both optimize.
package grid

import (
	"fmt"
	"math"

	"fastgr/internal/design"
	"fastgr/internal/geom"
)

// Dir is a layer's preferred routing direction.
type Dir int

const (
	Horizontal Dir = iota // wires run along X
	Vertical              // wires run along Y
)

func (d Dir) String() string {
	if d == Horizontal {
		return "H"
	}
	return "V"
}

// CostParams configures the edge cost scheme.
type CostParams struct {
	// UnitWire is the base cost of one wire edge (one G-cell step).
	UnitWire float64
	// UnitVia is the base cost of one via edge (one layer crossing).
	UnitVia float64
	// CongestionWeight scales the logistic congestion penalty added to a
	// wire or via edge as its utilization approaches and passes 1.
	CongestionWeight float64
	// LogisticK is the steepness of the logistic around utilization 1.
	LogisticK float64
	// BlockedPenalty is added to edges with zero capacity, making them
	// near-forbidden without disconnecting the graph.
	BlockedPenalty float64
}

// DefaultCostParams mirrors the relative weighting CUGR uses: vias cost a
// few wire units, and congestion dominates once an edge overflows.
func DefaultCostParams() CostParams {
	return CostParams{
		UnitWire:         1.0,
		UnitVia:          2.0,
		CongestionWeight: 48.0,
		LogisticK:        10.0,
		BlockedPenalty:   64.0,
	}
}

// Graph is the 3-D routing grid. Layers are 1-based (1..L) to match the
// paper's notation. Odd layers route horizontally, even layers vertically;
// layer 1 is the pin layer with near-zero capacity.
type Graph struct {
	W, H, L int
	Params  CostParams

	dirs []Dir // dirs[l-1]

	// wireCap/wireDem[l-1] index wire edges of layer l. A horizontal layer
	// has (W-1)*H edges, edge (x,y) spanning (x,y)-(x+1,y), index y*(W-1)+x.
	// A vertical layer has W*(H-1) edges, edge (x,y) spanning (x,y)-(x,y+1),
	// index x*(H-1)+y.
	wireCap [][]int32
	wireDem [][]int32

	// viaCap/viaDem[b] index via edges crossing the boundary between layers
	// b+1 and b+2 (b in 0..L-2) at G-cell (x,y), index y*W+x.
	viaCap []int32
	viaDem [][]int32

	// history holds negotiated-congestion penalties (see history.go); nil
	// until EnableHistory.
	history [][]float32

	// cc is the epoch-invalidated cost-field cache (see costcache.go);
	// inert until the first WarmCostCache.
	cc costCache
}

// NewFromDesign builds the grid graph for a design, applying per-layer
// capacities and blockages, using the default cost parameters.
func NewFromDesign(d *design.Design) *Graph {
	return NewFromDesignParams(d, DefaultCostParams())
}

// NewFromDesignParams builds the grid graph with explicit cost parameters.
func NewFromDesignParams(d *design.Design, p CostParams) *Graph {
	g := &Graph{W: d.GridW, H: d.GridH, L: d.NumLayers, Params: p}
	g.dirs = make([]Dir, g.L)
	for l := 1; l <= g.L; l++ {
		if l%2 == 1 {
			g.dirs[l-1] = Horizontal
		} else {
			g.dirs[l-1] = Vertical
		}
	}
	g.wireCap = make([][]int32, g.L)
	g.wireDem = make([][]int32, g.L)
	for l := 1; l <= g.L; l++ {
		n := g.numWireEdges(l)
		g.wireCap[l-1] = make([]int32, n)
		g.wireDem[l-1] = make([]int32, n)
		cap := int32(d.LayerCapacity[l-1])
		for i := range g.wireCap[l-1] {
			g.wireCap[l-1][i] = cap
		}
	}
	g.viaCap = make([]int32, g.L-1)
	g.viaDem = make([][]int32, g.L-1)
	for b := 0; b < g.L-1; b++ {
		g.viaCap[b] = int32(d.ViaCapacity)
		g.viaDem[b] = make([]int32, g.W*g.H)
	}
	for _, blk := range d.Blockages {
		g.applyBlockage(blk)
	}
	g.cc.win = g.fullRect()
	g.cc.full = true
	return g
}

// WindowView returns a Graph sharing every capacity, demand, and history
// array with g — mutations through either are visible to both — but holding
// its own cost cache bounded to win. A shard routes through its view: the
// view's cache stays leaf-sized (the sharded pipeline's peak-memory win)
// and mutations through the view invalidate the view's cache, never the
// parent's. The parent's cache must therefore be cold (or invalidated)
// while views are live; the core pipeline never warms it between view
// phases. Views are coordinator-created and must not outlive the phase
// whose mutations they observed.
func (g *Graph) WindowView(win geom.Rect) *Graph {
	v := &Graph{
		W: g.W, H: g.H, L: g.L, Params: g.Params,
		dirs:    g.dirs,
		wireCap: g.wireCap, wireDem: g.wireDem,
		viaCap: g.viaCap, viaDem: g.viaDem,
		history: g.history,
	}
	v.cc.win = win.ClampTo(g.W, g.H)
	v.cc.full = v.cc.win == g.fullRect()
	v.cc.hits = g.cc.hits
	v.cc.misses = g.cc.misses
	v.cc.invals = g.cc.invals
	v.cc.warms = g.cc.warms
	return v
}

func (g *Graph) applyBlockage(b design.Blockage) {
	l := b.Layer
	keep := 1 - b.Density
	r := b.Region.ClampTo(g.W, g.H)
	if g.Dir(l) == Horizontal {
		for y := r.Lo.Y; y <= r.Hi.Y; y++ {
			for x := r.Lo.X; x <= r.Hi.X && x < g.W-1; x++ {
				i := g.wireIndex(l, x, y)
				g.wireCap[l-1][i] = int32(math.Floor(float64(g.wireCap[l-1][i]) * keep))
			}
		}
	} else {
		for x := r.Lo.X; x <= r.Hi.X; x++ {
			for y := r.Lo.Y; y <= r.Hi.Y && y < g.H-1; y++ {
				i := g.wireIndex(l, x, y)
				g.wireCap[l-1][i] = int32(math.Floor(float64(g.wireCap[l-1][i]) * keep))
			}
		}
	}
}

// Dir returns the preferred direction of layer l.
func (g *Graph) Dir(l int) Dir { return g.dirs[l-1] }

func (g *Graph) numWireEdges(l int) int {
	if g.Dir(l) == Horizontal {
		return (g.W - 1) * g.H
	}
	return g.W * (g.H - 1)
}

// wireIndex maps the wire edge on layer l starting at (x,y) and running one
// step in the layer's preferred direction to its slot in the edge arrays.
func (g *Graph) wireIndex(l, x, y int) int {
	if g.Dir(l) == Horizontal {
		return y*(g.W-1) + x
	}
	return x*(g.H-1) + y
}

// WireCap returns the capacity of the wire edge at (x,y) on layer l.
func (g *Graph) WireCap(l, x, y int) int { return int(g.wireCap[l-1][g.wireIndex(l, x, y)]) }

// WireDem returns the demand of the wire edge at (x,y) on layer l.
func (g *Graph) WireDem(l, x, y int) int { return int(g.wireDem[l-1][g.wireIndex(l, x, y)]) }

// ViaCap returns the via capacity across the boundary above layer l.
func (g *Graph) ViaCap(l int) int { return int(g.viaCap[l-1]) }

// ViaDem returns the via demand at (x,y) across the boundary above layer l.
func (g *Graph) ViaDem(x, y, l int) int { return int(g.viaDem[l-1][y*g.W+x]) }

// logistic is the congestion penalty shape: ~0 when utilization is low,
// CongestionWeight/2 at utilization 1, saturating at CongestionWeight.
func (g *Graph) logistic(dem, cap int32) float64 {
	var u float64
	if cap <= 0 {
		u = float64(dem) + 1.5 // treat as heavily over-utilized
	} else {
		u = (float64(dem) + 0.5) / float64(cap)
	}
	return g.Params.CongestionWeight / (1 + math.Exp(-g.Params.LogisticK*(u-1)))
}

// WireCost is the cost c_w of using one wire edge at (x,y) on layer l,
// evaluated at the edge's current demand (i.e., the cost of adding one more
// track through it). With a warm cost cache this is an array load; a stale
// or unbuilt cache falls back to the direct formula.
func (g *Graph) WireCost(l, x, y int) float64 {
	i := g.wireIndex(l, x, y)
	if cc := &g.cc; cc.built {
		if cc.full {
			if !cc.wireStale[l-1][i] {
				cc.hits.Add(1)
				return cc.wireVal[l-1][i]
			}
		} else if li, _, ok := g.ccWireLocal(l, x, y); ok && !cc.wireStale[l-1][li] {
			cc.hits.Add(1)
			return cc.wireVal[l-1][li]
		}
	}
	g.cc.misses.Add(1)
	return g.wireCostAt(l, i)
}

// SegCost is the cost of a straight wire from a to b on layer l. The segment
// must run along the layer's preferred direction; a == b costs zero. With a
// warm cost cache and a clean line this is two prefix-sum reads (the
// prefix-sum total can differ from the edge-walk total by float rounding;
// consumers compare segment costs with tolerances); a dirty line falls back
// to walking the edges, which itself reads per-edge cache entries where
// they are fresh.
func (g *Graph) SegCost(l int, a, b geom.Point) float64 {
	if a == b {
		return 0
	}
	total := 0.0
	if g.Dir(l) == Horizontal {
		if a.Y != b.Y {
			panic(fmt.Sprintf("grid: horizontal segment %v-%v on layer %d misaligned", a, b, l))
		}
		lo, hi := geom.Min(a.X, b.X), geom.Max(a.X, b.X)
		if cc := &g.cc; cc.built && cc.full && cc.wireDirty[l-1][a.Y].Load() == 0 {
			cc.hits.Add(1)
			p := cc.wirePfx[l-1][a.Y*g.W:]
			return p[hi] - p[lo]
		}
		for x := lo; x < hi; x++ {
			total += g.WireCost(l, x, a.Y)
		}
	} else {
		if a.X != b.X {
			panic(fmt.Sprintf("grid: vertical segment %v-%v on layer %d misaligned", a, b, l))
		}
		lo, hi := geom.Min(a.Y, b.Y), geom.Max(a.Y, b.Y)
		if cc := &g.cc; cc.built && cc.full && cc.wireDirty[l-1][a.X].Load() == 0 {
			cc.hits.Add(1)
			p := cc.wirePfx[l-1][a.X*g.H:]
			return p[hi] - p[lo]
		}
		for y := lo; y < hi; y++ {
			total += g.WireCost(l, a.X, y)
		}
	}
	return total
}

// ViaEdgeCost is the cost of one via edge at (x,y) crossing the boundary
// above layer l. Cached like WireCost.
func (g *Graph) ViaEdgeCost(x, y, l int) float64 {
	i := y*g.W + x
	if cc := &g.cc; cc.built {
		if cc.full {
			if !cc.viaStale[l-1][i] {
				cc.hits.Add(1)
				return cc.viaVal[l-1][i]
			}
		} else if ci, ok := g.ccViaLocal(x, y); ok && !cc.viaStale[l-1][ci] {
			cc.hits.Add(1)
			return cc.viaVal[l-1][ci]
		}
	}
	g.cc.misses.Add(1)
	return g.viaCostAt(l, i)
}

// ViaStackCost is c_v(u, l1, l2): the cost of the via stack at (x,y)
// connecting layers l1 and l2 (either order); zero when l1 == l2. With a
// warm cache and a clean cell this is two prefix-sum reads over the cell's
// boundary column.
func (g *Graph) ViaStackCost(x, y, l1, l2 int) float64 {
	lo, hi := geom.Min(l1, l2), geom.Max(l1, l2)
	if lo == hi {
		return 0
	}
	cell := y*g.W + x
	if cc := &g.cc; cc.built && cc.full && cc.viaDirty[cell].Load() == 0 {
		cc.hits.Add(1)
		p := cc.viaPfx[cell*g.L:]
		return p[hi-1] - p[lo-1]
	}
	total := 0.0
	for l := lo; l < hi; l++ {
		total += g.ViaEdgeCost(x, y, l)
	}
	return total
}

// AddSegDemand adds delta tracks of demand to every wire edge of the
// straight segment a-b on layer l. delta may be negative (rip-up); demand
// never goes below zero — underflow indicates a commit/rip-up mismatch and
// panics.
func (g *Graph) AddSegDemand(l int, a, b geom.Point, delta int) {
	if a == b {
		return
	}
	d := int32(delta)
	if g.Dir(l) == Horizontal {
		if a.Y != b.Y {
			panic(fmt.Sprintf("grid: horizontal segment %v-%v on layer %d misaligned", a, b, l))
		}
		lo, hi := geom.Min(a.X, b.X), geom.Max(a.X, b.X)
		for x := lo; x < hi; x++ {
			g.addWireDemand(l, x, a.Y, d)
		}
	} else {
		if a.X != b.X {
			panic(fmt.Sprintf("grid: vertical segment %v-%v on layer %d misaligned", a, b, l))
		}
		lo, hi := geom.Min(a.Y, b.Y), geom.Max(a.Y, b.Y)
		for y := lo; y < hi; y++ {
			g.addWireDemand(l, a.X, y, d)
		}
	}
}

func (g *Graph) addWireDemand(l, x, y int, delta int32) {
	i := g.wireIndex(l, x, y)
	g.wireDem[l-1][i] += delta
	if g.wireDem[l-1][i] < 0 {
		panic(fmt.Sprintf("grid: wire demand underflow at layer %d (%d,%d)", l, x, y))
	}
	g.noteWireMutation(l, i)
}

// AddViaStackDemand adds delta to every via edge of the stack at (x,y)
// between layers l1 and l2.
func (g *Graph) AddViaStackDemand(x, y, l1, l2, delta int) {
	lo, hi := geom.Min(l1, l2), geom.Max(l1, l2)
	for l := lo; l < hi; l++ {
		i := y*g.W + x
		g.viaDem[l-1][i] += int32(delta)
		if g.viaDem[l-1][i] < 0 {
			panic(fmt.Sprintf("grid: via demand underflow at (%d,%d) layer %d", x, y, l))
		}
		g.noteViaMutation(l, i)
	}
}

// Overflow sums max(0, demand-capacity) over wire and via edges — the
// global-routing proxy for the number of shorts (metric S in eq. 15).
func (g *Graph) Overflow() (wire, via int) {
	for l := 0; l < g.L; l++ {
		for i, c := range g.wireCap[l] {
			if ov := g.wireDem[l][i] - c; ov > 0 {
				wire += int(ov)
			}
		}
	}
	for b := 0; b < g.L-1; b++ {
		for _, d := range g.viaDem[b] {
			if ov := d - g.viaCap[b]; ov > 0 {
				via += int(ov)
			}
		}
	}
	return wire, via
}

// TotalDemand sums wire demand (G-cell wirelength units) and via demand
// (via counts) over the whole grid.
func (g *Graph) TotalDemand() (wire, via int) {
	for l := 0; l < g.L; l++ {
		for _, d := range g.wireDem[l] {
			wire += int(d)
		}
	}
	for b := 0; b < g.L-1; b++ {
		for _, d := range g.viaDem[b] {
			via += int(d)
		}
	}
	return wire, via
}

// CongestionCell summarizes one G-cell column for congestion-map dumps.
type CongestionCell struct {
	Demand   int
	Capacity int
}

// CongestionMap2D collapses wire demand/capacity over all layers onto the
// 2-D grid, row-major, for reporting and the congestion example.
func (g *Graph) CongestionMap2D() []CongestionCell {
	m := make([]CongestionCell, g.W*g.H)
	for l := 1; l <= g.L; l++ {
		if g.Dir(l) == Horizontal {
			for y := 0; y < g.H; y++ {
				for x := 0; x < g.W-1; x++ {
					i := g.wireIndex(l, x, y)
					m[y*g.W+x].Demand += int(g.wireDem[l-1][i])
					m[y*g.W+x].Capacity += int(g.wireCap[l-1][i])
				}
			}
		} else {
			for x := 0; x < g.W; x++ {
				for y := 0; y < g.H-1; y++ {
					i := g.wireIndex(l, x, y)
					m[y*g.W+x].Demand += int(g.wireDem[l-1][i])
					m[y*g.W+x].Capacity += int(g.wireCap[l-1][i])
				}
			}
		}
	}
	return m
}

// InBounds reports whether (x,y) is a valid G-cell.
func (g *Graph) InBounds(x, y int) bool {
	return x >= 0 && x < g.W && y >= 0 && y < g.H
}

// HasWireEdge reports whether a wire edge exists at (x,y) on layer l (i.e.,
// the step in the preferred direction stays on the grid).
func (g *Graph) HasWireEdge(l, x, y int) bool {
	if !g.InBounds(x, y) {
		return false
	}
	if g.Dir(l) == Horizontal {
		return x < g.W-1
	}
	return y < g.H-1
}
