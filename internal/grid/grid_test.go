package grid

import (
	"math"
	"testing"
	"testing/quick"

	"fastgr/internal/design"
	"fastgr/internal/geom"
)

func testDesign(layers int) *design.Design {
	caps := make([]int, layers)
	caps[0] = 1
	for i := 1; i < layers; i++ {
		caps[i] = 10
	}
	return &design.Design{
		Name: "t", GridW: 12, GridH: 10, NumLayers: layers,
		LayerCapacity: caps, ViaCapacity: 4,
		Nets: []*design.Net{{ID: 0, Name: "n", Pins: []design.Pin{
			{Pos: geom.Point{X: 0, Y: 0}, Layer: 1},
			{Pos: geom.Point{X: 5, Y: 5}, Layer: 1},
		}}},
	}
}

func TestLayerDirections(t *testing.T) {
	g := NewFromDesign(testDesign(5))
	for l := 1; l <= 5; l++ {
		want := Horizontal
		if l%2 == 0 {
			want = Vertical
		}
		if g.Dir(l) != want {
			t.Errorf("layer %d dir = %v, want %v", l, g.Dir(l), want)
		}
	}
	if Horizontal.String() != "H" || Vertical.String() != "V" {
		t.Error("Dir.String wrong")
	}
}

func TestCapacityInitialization(t *testing.T) {
	g := NewFromDesign(testDesign(5))
	if g.WireCap(1, 3, 3) != 1 {
		t.Errorf("layer 1 cap = %d, want 1", g.WireCap(1, 3, 3))
	}
	if g.WireCap(3, 3, 3) != 10 {
		t.Errorf("layer 3 cap = %d, want 10", g.WireCap(3, 3, 3))
	}
	if g.ViaCap(1) != 4 {
		t.Errorf("via cap = %d, want 4", g.ViaCap(1))
	}
}

func TestBlockageReducesCapacity(t *testing.T) {
	d := testDesign(5)
	d.Blockages = []design.Blockage{{
		Layer:   3,
		Region:  geom.NewRect(geom.Point{X: 2, Y: 2}, geom.Point{X: 4, Y: 4}),
		Density: 0.5,
	}}
	g := NewFromDesign(d)
	if got := g.WireCap(3, 3, 3); got != 5 {
		t.Errorf("blocked cap = %d, want 5", got)
	}
	if got := g.WireCap(3, 7, 7); got != 10 {
		t.Errorf("unblocked cap = %d, want 10", got)
	}
	// Full-density blockage zeroes the edge.
	d.Blockages[0].Density = 1.0
	g = NewFromDesign(d)
	if got := g.WireCap(3, 3, 3); got != 0 {
		t.Errorf("fully blocked cap = %d, want 0", got)
	}
}

func TestSegDemandCommitAndRip(t *testing.T) {
	g := NewFromDesign(testDesign(5))
	a, b := geom.Point{X: 2, Y: 4}, geom.Point{X: 7, Y: 4}
	g.AddSegDemand(3, a, b, 1)
	for x := 2; x < 7; x++ {
		if g.WireDem(3, x, 4) != 1 {
			t.Fatalf("demand at x=%d is %d", x, g.WireDem(3, x, 4))
		}
	}
	if g.WireDem(3, 1, 4) != 0 || g.WireDem(3, 7, 4) != 0 {
		t.Fatal("demand leaked outside segment")
	}
	wire, _ := g.TotalDemand()
	if wire != 5 {
		t.Fatalf("total wire demand = %d, want 5", wire)
	}
	// Reverse endpoints must hit the same edges.
	g.AddSegDemand(3, b, a, -1)
	wire, _ = g.TotalDemand()
	if wire != 0 {
		t.Fatalf("after rip-up total demand = %d, want 0", wire)
	}
}

func TestVerticalSegDemand(t *testing.T) {
	g := NewFromDesign(testDesign(5))
	g.AddSegDemand(2, geom.Point{X: 3, Y: 1}, geom.Point{X: 3, Y: 6}, 2)
	for y := 1; y < 6; y++ {
		if g.WireDem(2, 3, y) != 2 {
			t.Fatalf("demand at y=%d is %d", y, g.WireDem(2, 3, y))
		}
	}
}

func TestMisalignedSegmentPanics(t *testing.T) {
	g := NewFromDesign(testDesign(5))
	for _, fn := range []func(){
		func() { g.SegCost(1, geom.Point{X: 0, Y: 0}, geom.Point{X: 3, Y: 3}) },
		func() { g.SegCost(2, geom.Point{X: 0, Y: 0}, geom.Point{X: 3, Y: 3}) },
		func() { g.AddSegDemand(1, geom.Point{X: 0, Y: 0}, geom.Point{X: 3, Y: 3}, 1) },
		func() { g.AddSegDemand(2, geom.Point{X: 0, Y: 0}, geom.Point{X: 3, Y: 3}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("misaligned segment did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestDemandUnderflowPanics(t *testing.T) {
	g := NewFromDesign(testDesign(5))
	defer func() {
		if recover() == nil {
			t.Fatal("demand underflow did not panic")
		}
	}()
	g.AddSegDemand(3, geom.Point{X: 0, Y: 0}, geom.Point{X: 2, Y: 0}, -1)
}

func TestViaStack(t *testing.T) {
	g := NewFromDesign(testDesign(5))
	g.AddViaStackDemand(4, 4, 1, 4, 1)
	for l := 1; l < 4; l++ {
		if g.ViaDem(4, 4, l) != 1 {
			t.Fatalf("via demand at layer %d is %d", l, g.ViaDem(4, 4, l))
		}
	}
	if g.ViaDem(4, 4, 4) != 0 {
		t.Fatal("via demand above stack")
	}
	if g.ViaStackCost(4, 4, 2, 2) != 0 {
		t.Fatal("same-layer via stack should cost 0")
	}
	// Symmetric in layer order.
	if g.ViaStackCost(4, 4, 1, 4) != g.ViaStackCost(4, 4, 4, 1) {
		t.Fatal("via stack cost not symmetric")
	}
	g.AddViaStackDemand(4, 4, 4, 1, -1)
	_, via := g.TotalDemand()
	if via != 0 {
		t.Fatalf("via demand after rip = %d", via)
	}
}

func TestCostMonotoneInDemand(t *testing.T) {
	g := NewFromDesign(testDesign(5))
	prev := g.WireCost(3, 5, 5)
	if prev < g.Params.UnitWire {
		t.Fatal("cost below wire unit")
	}
	for i := 0; i < 15; i++ {
		g.addWireDemand(3, 5, 5, 1)
		c := g.WireCost(3, 5, 5)
		if c < prev {
			t.Fatalf("cost decreased with demand at step %d: %v < %v", i, c, prev)
		}
		prev = c
	}
	// Saturates below unit + weight (+ no blocked penalty here).
	if prev > g.Params.UnitWire+g.Params.CongestionWeight {
		t.Fatalf("cost %v exceeds saturation bound", prev)
	}
}

func TestBlockedEdgePenalty(t *testing.T) {
	d := testDesign(5)
	d.Blockages = []design.Blockage{{
		Layer:   3,
		Region:  geom.NewRect(geom.Point{X: 2, Y: 2}, geom.Point{X: 2, Y: 2}),
		Density: 1.0,
	}}
	g := NewFromDesign(d)
	blocked := g.WireCost(3, 2, 2)
	free := g.WireCost(3, 6, 6)
	if blocked <= free+g.Params.BlockedPenalty/2 {
		t.Fatalf("blocked edge cost %v not clearly above free %v", blocked, free)
	}
}

func TestSegCostAdditive(t *testing.T) {
	g := NewFromDesign(testDesign(5))
	a := geom.Point{X: 1, Y: 3}
	m := geom.Point{X: 5, Y: 3}
	b := geom.Point{X: 9, Y: 3}
	whole := g.SegCost(3, a, b)
	parts := g.SegCost(3, a, m) + g.SegCost(3, m, b)
	if math.Abs(whole-parts) > 1e-9 {
		t.Fatalf("SegCost not additive: %v vs %v", whole, parts)
	}
	if g.SegCost(3, a, a) != 0 {
		t.Fatal("zero-length segment should cost 0")
	}
}

func TestOverflowAccounting(t *testing.T) {
	g := NewFromDesign(testDesign(5))
	// Push demand 13 through a capacity-10 edge: overflow 3.
	for i := 0; i < 13; i++ {
		g.AddSegDemand(3, geom.Point{X: 4, Y: 4}, geom.Point{X: 5, Y: 4}, 1)
	}
	wire, via := g.Overflow()
	if wire != 3 || via != 0 {
		t.Fatalf("overflow = (%d,%d), want (3,0)", wire, via)
	}
	// Push via demand past cap 4.
	for i := 0; i < 6; i++ {
		g.AddViaStackDemand(1, 1, 2, 3, 1)
	}
	_, via = g.Overflow()
	if via != 2 {
		t.Fatalf("via overflow = %d, want 2", via)
	}
}

func TestCongestionMap2D(t *testing.T) {
	g := NewFromDesign(testDesign(5))
	g.AddSegDemand(3, geom.Point{X: 2, Y: 2}, geom.Point{X: 4, Y: 2}, 1)
	m := g.CongestionMap2D()
	if len(m) != g.W*g.H {
		t.Fatalf("map size %d", len(m))
	}
	if m[2*g.W+2].Demand == 0 || m[2*g.W+3].Demand == 0 {
		t.Fatal("demand missing from congestion map")
	}
	total := 0
	for _, c := range m {
		total += c.Demand
	}
	if total != 2 {
		t.Fatalf("map total demand = %d, want 2", total)
	}
	for _, c := range m {
		if c.Capacity < 0 {
			t.Fatal("negative capacity in map")
		}
	}
}

func TestHasWireEdgeBounds(t *testing.T) {
	g := NewFromDesign(testDesign(5))
	if !g.HasWireEdge(1, 0, 0) {
		t.Error("edge at origin missing")
	}
	if g.HasWireEdge(1, g.W-1, 0) {
		t.Error("horizontal edge off right boundary")
	}
	if !g.HasWireEdge(2, g.W-1, 0) {
		t.Error("vertical edge at right boundary missing")
	}
	if g.HasWireEdge(2, 0, g.H-1) {
		t.Error("vertical edge off top boundary")
	}
	if g.HasWireEdge(1, -1, 0) || g.HasWireEdge(1, 0, g.H) {
		t.Error("out-of-bounds edge accepted")
	}
}

// Property: demand after a sequence of balanced commit/rip pairs is zero and
// overflow is zero.
func TestDemandBalanceProperty(t *testing.T) {
	f := func(ops []struct {
		L      uint8
		X1, X2 uint8
		Y      uint8
	}) bool {
		g := NewFromDesign(testDesign(5))
		type seg struct {
			l    int
			a, b geom.Point
		}
		var committed []seg
		for _, op := range ops {
			l := 1 + int(op.L)%5
			var a, b geom.Point
			if g.Dir(l) == Horizontal {
				y := int(op.Y) % g.H
				a = geom.Point{X: int(op.X1) % g.W, Y: y}
				b = geom.Point{X: int(op.X2) % g.W, Y: y}
			} else {
				x := int(op.Y) % g.W
				a = geom.Point{X: x, Y: int(op.X1) % g.H}
				b = geom.Point{X: x, Y: int(op.X2) % g.H}
			}
			g.AddSegDemand(l, a, b, 1)
			committed = append(committed, seg{l, a, b})
		}
		for _, s := range committed {
			g.AddSegDemand(s.l, s.b, s.a, -1)
		}
		wire, via := g.TotalDemand()
		return wire == 0 && via == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGridFromGeneratedDesign(t *testing.T) {
	d := design.MustGenerate("18test5m", 0.003)
	g := NewFromDesign(d)
	if g.W != d.GridW || g.H != d.GridH || g.L != 5 {
		t.Fatalf("grid dims %dx%dx%d", g.W, g.H, g.L)
	}
	wire, via := g.Overflow()
	if wire != 0 || via != 0 {
		t.Fatal("fresh grid has overflow")
	}
}
