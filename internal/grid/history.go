package grid

// Negotiated-congestion history, the mechanism of history-based rip-up and
// reroute (Archer [22], PathFinder): edges that keep overflowing accumulate
// a persistent penalty so successive iterations negotiate nets away from
// chronically contested resources even when their instantaneous congestion
// looks acceptable. FastGR's RRR can run with or without it (Options in
// package core); the history term simply adds to WireCost.

// HistoryWeight scales the accumulated history penalty in WireCost.
const HistoryWeight = 1.0

// EnableHistory allocates the per-wire-edge history store; until called,
// history never affects costs.
func (g *Graph) EnableHistory() {
	if g.history != nil {
		return
	}
	g.history = make([][]float32, g.L)
	for l := 1; l <= g.L; l++ {
		g.history[l-1] = make([]float32, g.numWireEdges(l))
	}
}

// HistoryEnabled reports whether the negotiation store exists.
func (g *Graph) HistoryEnabled() bool { return g.history != nil }

// BumpOverflowHistory adds delta x overflow to every currently overflowed
// wire edge's history — called once per rip-up iteration (a coordinator
// point). Each bumped edge's cost-cache entry is invalidated like a demand
// mutation; enabling history needs no invalidation because an all-zero
// history store leaves WireCost unchanged.
func (g *Graph) BumpOverflowHistory(delta float64) {
	if g.history == nil {
		return
	}
	for l := 0; l < g.L; l++ {
		for i, c := range g.wireCap[l] {
			if ov := g.wireDem[l][i] - c; ov > 0 {
				g.history[l][i] += float32(delta * float64(ov))
				g.noteWireMutation(l+1, i)
			}
		}
	}
}

// WireHistory returns the accumulated history of one wire edge.
func (g *Graph) WireHistory(l, x, y int) float64 {
	if g.history == nil {
		return 0
	}
	return float64(g.history[l-1][g.wireIndex(l, x, y)])
}
