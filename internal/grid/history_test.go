package grid

import (
	"testing"

	"fastgr/internal/geom"
)

func TestHistoryDisabledByDefault(t *testing.T) {
	g := NewFromDesign(testDesign(5))
	if g.HistoryEnabled() {
		t.Fatal("history enabled without EnableHistory")
	}
	before := g.WireCost(3, 4, 4)
	g.BumpOverflowHistory(1) // no-op without enabling
	if g.WireCost(3, 4, 4) != before {
		t.Fatal("disabled history changed costs")
	}
	if g.WireHistory(3, 4, 4) != 0 {
		t.Fatal("disabled history nonzero")
	}
}

func TestHistoryAccumulatesOnOverflow(t *testing.T) {
	g := NewFromDesign(testDesign(5))
	g.EnableHistory()
	g.EnableHistory() // idempotent
	// Overflow one edge by 3 (cap 10).
	g.AddSegDemand(3, geom.Point{X: 4, Y: 4}, geom.Point{X: 5, Y: 4}, 13)
	before := g.WireCost(3, 4, 4)
	g.BumpOverflowHistory(0.5)
	if got := g.WireHistory(3, 4, 4); got != 1.5 {
		t.Fatalf("history = %v, want 1.5 (0.5 x overflow 3)", got)
	}
	after := g.WireCost(3, 4, 4)
	if after <= before {
		t.Fatal("history did not raise the edge cost")
	}
	// Non-overflowed edges stay clean.
	if g.WireHistory(3, 8, 8) != 0 {
		t.Fatal("history leaked to clean edges")
	}
	// History persists after the congestion is ripped away — that is the
	// whole point of negotiation.
	g.AddSegDemand(3, geom.Point{X: 4, Y: 4}, geom.Point{X: 5, Y: 4}, -13)
	if g.WireHistory(3, 4, 4) != 1.5 {
		t.Fatal("history vanished with demand")
	}
	if g.WireCost(3, 4, 4) <= g.WireCost(3, 8, 8) {
		t.Fatal("historically contested edge not more expensive than a fresh one")
	}
}

func TestHistoryBumpAccumulates(t *testing.T) {
	g := NewFromDesign(testDesign(5))
	g.EnableHistory()
	g.AddSegDemand(3, geom.Point{X: 2, Y: 2}, geom.Point{X: 3, Y: 2}, 12)
	g.BumpOverflowHistory(1)
	g.BumpOverflowHistory(1)
	if got := g.WireHistory(3, 2, 2); got != 4 {
		t.Fatalf("history = %v, want 4 after two bumps of overflow 2", got)
	}
}
