package grid

import (
	"testing"

	"fastgr/internal/design"
	"fastgr/internal/geom"
)

// TestWindowViewMatchesDirect: a warm windowed view answers every cost
// query inside its window bit-identically to the direct formula, and
// queries outside the window fall back to the formula (still correct).
func TestWindowViewMatchesDirect(t *testing.T) {
	g := NewFromDesign(design.MustGenerate("18test5m", 0.003))
	congest(g, 7, 4000)
	win := geom.Rect{Lo: geom.Point{X: 5, Y: 3}, Hi: geom.Point{X: g.W/2 + 3, Y: g.H/2 + 1}}
	v := g.WindowView(win)
	if v.cc.full {
		t.Fatal("partial window marked full")
	}
	v.WarmCostCache()
	for l := 1; l <= g.L; l++ {
		for y := 0; y < g.H; y++ {
			for x := 0; x < g.W; x++ {
				if g.HasWireEdge(l, x, y) {
					if got, want := v.WireCost(l, x, y), g.wireCostAt(l, g.wireIndex(l, x, y)); got != want {
						t.Fatalf("layer %d (%d,%d): view %v != direct %v", l, x, y, got, want)
					}
				}
			}
		}
	}
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			if got, want := v.ViaStackCost(x, y, 1, g.L), g.ViaStackCost(x, y, 1, g.L); got != want {
				t.Fatalf("via stack (%d,%d): view %v != parent %v", x, y, got, want)
			}
		}
	}
}

// TestWindowViewSegCostExact: windowed caches must not take the prefix-sum
// shortcut (its rounding differs from the edge walk), so SegCost through a
// warm view is bit-identical to SegCost on a cold graph.
func TestWindowViewSegCostExact(t *testing.T) {
	g := NewFromDesign(design.MustGenerate("18test5m", 0.003))
	congest(g, 11, 4000)
	win := geom.Rect{Lo: geom.Point{}, Hi: geom.Point{X: g.W - 2, Y: g.H - 2}}
	v := g.WindowView(win)
	v.WarmCostCache()
	for l := 1; l <= g.L; l++ {
		a := geom.Point{X: 2, Y: 2}
		var b geom.Point
		if g.Dir(l) == Horizontal {
			b = geom.Point{X: g.W - 4, Y: 2}
		} else {
			b = geom.Point{X: 2, Y: g.H - 4}
		}
		if got, want := v.SegCost(l, a, b), g.SegCost(l, a, b); got != want {
			t.Fatalf("layer %d seg %v-%v: view %v != cold %v", l, a, b, got, want)
		}
	}
}

// TestWindowViewInvalidation: a demand mutation through the view refreshes
// the view's cache on the next warm; a mutation through the parent (whose
// cache is cold) is also seen by the view because they share demand arrays.
func TestWindowViewInvalidation(t *testing.T) {
	g := NewFromDesign(design.MustGenerate("18test5m", 0.003))
	win := geom.Rect{Lo: geom.Point{X: 2, Y: 2}, Hi: geom.Point{X: 20, Y: 20}}
	v := g.WindowView(win)
	v.WarmCostCache()

	a, b := geom.Point{X: 4, Y: 5}, geom.Point{X: 9, Y: 5}
	before := v.WireCost(1, 4, 5)
	v.AddSegDemand(1, a, b, 3)
	v.WarmCostCache()
	if got, want := v.WireCost(1, 4, 5), g.wireCostAt(1, g.wireIndex(1, 4, 5)); got != want {
		t.Fatalf("after view mutation: cached %v != direct %v", got, want)
	}
	if v.WireCost(1, 4, 5) == before {
		t.Fatal("demand mutation did not change the cached cost")
	}

	// Parent-side mutation: the view's cached entry goes stale via the
	// shared demand arrays only if the mutation flows through the view.
	// Mutating through the parent leaves the view's flags untouched, so
	// the protocol requires a fresh view (or warm) after coordinator
	// mutations — simulate that and check correctness.
	g.AddSegDemand(1, a, b, 2)
	v2 := g.WindowView(win)
	v2.WarmCostCache()
	if got, want := v2.WireCost(1, 4, 5), g.wireCostAt(1, g.wireIndex(1, 4, 5)); got != want {
		t.Fatalf("fresh view after parent mutation: cached %v != direct %v", got, want)
	}

	// Mutations outside the window are ignored without panicking.
	v2.AddSegDemand(1, geom.Point{X: 30, Y: 30}, geom.Point{X: 33, Y: 30}, 1)
	v2.AddViaStackDemand(30, 30, 1, 2, 1)
}

// TestWindowViewFullEqualsGlobal: a view covering the whole grid behaves
// exactly like the graph's own cache, prefix sums included.
func TestWindowViewFullEqualsGlobal(t *testing.T) {
	g := NewFromDesign(design.MustGenerate("18test5m", 0.003))
	congest(g, 13, 2000)
	v := g.WindowView(geom.Rect{Lo: geom.Point{}, Hi: geom.Point{X: g.W - 1, Y: g.H - 1}})
	if !v.cc.full {
		t.Fatal("grid-covering window not marked full")
	}
	g.WarmCostCache()
	v.WarmCostCache()
	a, b := geom.Point{X: 1, Y: 4}, geom.Point{X: g.W - 2, Y: 4}
	if got, want := v.SegCost(1, a, b), g.SegCost(1, a, b); got != want {
		t.Fatalf("full view SegCost %v != parent %v", got, want)
	}
}
