// Package guide materializes global-routing results as routing guides — the
// per-net stacks of layer rectangles that global routers hand to detailed
// routers (CUGR emits exactly this shape for Dr.CU). Guides are the
// contract between the two routing stages: every routed wire and via must
// be covered by its net's guide boxes, which Covers verifies.
package guide

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"fastgr/internal/core"
	"fastgr/internal/geom"
	"fastgr/internal/grid"
	"fastgr/internal/route"
)

// Box is one guide rectangle on a metal layer (inclusive G-cell bounds).
type Box struct {
	Layer int
	Rect  geom.Rect
}

// Guide is one net's routing guidance.
type Guide struct {
	Net   string
	Boxes []Box
}

// Area returns the total guided G-cell area (boxes may overlap; summed).
func (g Guide) Area() int {
	a := 0
	for _, b := range g.Boxes {
		a += b.Rect.Area()
	}
	return a
}

// FromResult converts every routed net into guides: per layer, the G-cells
// the net's wires and vias touch, merged into maximal row runs (the compact
// form detailed routers consume).
func FromResult(res *core.Result) []Guide {
	var guides []Guide
	for _, n := range res.Design.Nets {
		r := res.Routes[n.ID]
		if r == nil {
			continue
		}
		guides = append(guides, Guide{Net: n.Name, Boxes: boxesOf(res.Grid, r)})
	}
	return guides
}

type cellKey struct{ l, x, y int }

// boxesOf collects the net's touched cells per layer and merges them.
func boxesOf(g *grid.Graph, r *route.NetRoute) []Box {
	cells := map[cellKey]bool{}
	mark := func(l, x, y int) { cells[cellKey{l, x, y}] = true }
	for _, p := range r.Paths {
		for _, s := range p.Segs {
			if s.A.Y == s.B.Y {
				lo, hi := geom.Min(s.A.X, s.B.X), geom.Max(s.A.X, s.B.X)
				for x := lo; x <= hi; x++ {
					mark(s.Layer, x, s.A.Y)
				}
			} else {
				lo, hi := geom.Min(s.A.Y, s.B.Y), geom.Max(s.A.Y, s.B.Y)
				for y := lo; y <= hi; y++ {
					mark(s.Layer, s.A.X, y)
				}
			}
		}
		for _, v := range p.Vias {
			for l := v.L1; l <= v.L2; l++ {
				mark(l, v.X, v.Y)
			}
		}
	}
	// Merge per (layer,row) into maximal runs, deterministically.
	keys := make([]cellKey, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.l != b.l {
			return a.l < b.l
		}
		if a.y != b.y {
			return a.y < b.y
		}
		return a.x < b.x
	})
	var boxes []Box
	for i := 0; i < len(keys); {
		j := i
		for j+1 < len(keys) && keys[j+1].l == keys[j].l &&
			keys[j+1].y == keys[j].y && keys[j+1].x == keys[j].x+1 {
			j++
		}
		boxes = append(boxes, Box{
			Layer: keys[i].l,
			Rect: geom.NewRect(geom.Point{X: keys[i].x, Y: keys[i].y},
				geom.Point{X: keys[j].x, Y: keys[j].y}),
		})
		i = j + 1
	}
	return mergeVertical(boxes)
}

// mergeVertical stacks identical-width runs on the same layer in adjacent
// rows into taller boxes.
func mergeVertical(boxes []Box) []Box {
	sort.Slice(boxes, func(i, j int) bool {
		a, b := boxes[i], boxes[j]
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		if a.Rect.Lo.X != b.Rect.Lo.X {
			return a.Rect.Lo.X < b.Rect.Lo.X
		}
		if a.Rect.Hi.X != b.Rect.Hi.X {
			return a.Rect.Hi.X < b.Rect.Hi.X
		}
		return a.Rect.Lo.Y < b.Rect.Lo.Y
	})
	var out []Box
	for _, b := range boxes {
		if n := len(out); n > 0 {
			last := &out[n-1]
			if last.Layer == b.Layer &&
				last.Rect.Lo.X == b.Rect.Lo.X && last.Rect.Hi.X == b.Rect.Hi.X &&
				last.Rect.Hi.Y+1 == b.Rect.Lo.Y {
				last.Rect.Hi.Y = b.Rect.Hi.Y
				continue
			}
		}
		out = append(out, b)
	}
	return out
}

// Covers verifies the guide contract: every wire edge and via of every
// routed net lies inside one of its guide boxes. It returns the first
// violation found.
func Covers(res *core.Result, guides []Guide) error {
	byName := map[string]Guide{}
	for _, g := range guides {
		byName[g.Net] = g
	}
	for _, n := range res.Design.Nets {
		r := res.Routes[n.ID]
		if r == nil {
			continue
		}
		g, ok := byName[n.Name]
		if !ok {
			return fmt.Errorf("guide: net %s has no guide", n.Name)
		}
		inGuide := func(l, x, y int) bool {
			for _, b := range g.Boxes {
				if b.Layer == l && b.Rect.Contains(geom.Point{X: x, Y: y}) {
					return true
				}
			}
			return false
		}
		for _, p := range r.Paths {
			for _, s := range p.Segs {
				for _, pt := range []geom.Point{s.A, s.B} {
					if !inGuide(s.Layer, pt.X, pt.Y) {
						return fmt.Errorf("guide: net %s wire endpoint %v layer %d uncovered",
							n.Name, pt, s.Layer)
					}
				}
			}
			for _, v := range p.Vias {
				for l := v.L1; l <= v.L2; l++ {
					if !inGuide(l, v.X, v.Y) {
						return fmt.Errorf("guide: net %s via (%d,%d) layer %d uncovered",
							n.Name, v.X, v.Y, l)
					}
				}
			}
		}
	}
	return nil
}

// Write serializes guides in the CUGR-style text form:
//
//	<net name>
//	(
//	x1 y1 x2 y2 layer
//	...
//	)
func Write(w io.Writer, guides []Guide) error {
	bw := bufio.NewWriter(w)
	for _, g := range guides {
		fmt.Fprintln(bw, g.Net)
		fmt.Fprintln(bw, "(")
		for _, b := range g.Boxes {
			fmt.Fprintf(bw, "%d %d %d %d %d\n",
				b.Rect.Lo.X, b.Rect.Lo.Y, b.Rect.Hi.X, b.Rect.Hi.Y, b.Layer)
		}
		fmt.Fprintln(bw, ")")
	}
	return bw.Flush()
}

// Read parses the format produced by Write.
func Read(r io.Reader) ([]Guide, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var guides []Guide
	var cur *Guide
	inBody := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		switch {
		case text == "(":
			if cur == nil || inBody {
				return nil, fmt.Errorf("guide: line %d: unexpected '('", line)
			}
			inBody = true
		case text == ")":
			if cur == nil || !inBody {
				return nil, fmt.Errorf("guide: line %d: unexpected ')'", line)
			}
			guides = append(guides, *cur)
			cur, inBody = nil, false
		case inBody:
			b, err := parseBox(text)
			if err != nil {
				return nil, fmt.Errorf("guide: line %d: net %q: %w", line, cur.Net, err)
			}
			cur.Boxes = append(cur.Boxes, b)
		default:
			if cur != nil {
				return nil, fmt.Errorf("guide: line %d: net %q missing body", line, cur.Net)
			}
			cur = &Guide{Net: text}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("guide: unterminated guide for net %q", cur.Net)
	}
	return guides, nil
}

// parseBox validates one "x1 y1 x2 y2 layer" body line strictly: exactly
// five integer fields, non-negative coordinates, Lo <= Hi on both axes, a
// positive layer. fmt.Sscanf would silently accept trailing junk and
// reversed rectangles; a guide file is an inter-tool contract, so a
// malformed line gets a precise diagnosis instead of a half-parsed Box.
func parseBox(text string) (Box, error) {
	fields := strings.Fields(text)
	if len(fields) != 5 {
		return Box{}, fmt.Errorf("want 5 fields \"x1 y1 x2 y2 layer\", got %d", len(fields))
	}
	vals := make([]int, 5)
	names := [5]string{"x1", "y1", "x2", "y2", "layer"}
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return Box{}, fmt.Errorf("field %s: %q is not an integer", names[i], f)
		}
		vals[i] = v
	}
	b := Box{
		Layer: vals[4],
		Rect: geom.Rect{Lo: geom.Point{X: vals[0], Y: vals[1]},
			Hi: geom.Point{X: vals[2], Y: vals[3]}},
	}
	if b.Layer < 1 {
		return Box{}, fmt.Errorf("layer %d < 1", b.Layer)
	}
	if b.Rect.Lo.X < 0 || b.Rect.Lo.Y < 0 {
		return Box{}, fmt.Errorf("negative corner (%d,%d)", b.Rect.Lo.X, b.Rect.Lo.Y)
	}
	if b.Rect.Lo.X > b.Rect.Hi.X || b.Rect.Lo.Y > b.Rect.Hi.Y {
		return Box{}, fmt.Errorf("inverted rectangle (%d,%d)-(%d,%d)",
			b.Rect.Lo.X, b.Rect.Lo.Y, b.Rect.Hi.X, b.Rect.Hi.Y)
	}
	return b, nil
}
