package guide

import (
	"bytes"
	"strings"
	"testing"

	"fastgr/internal/core"
	"fastgr/internal/design"
)

func routedResult(t *testing.T) *core.Result {
	t.Helper()
	d := design.MustGenerate("18test5m", 0.003)
	opt := core.DefaultOptions(core.FastGRH)
	opt.T1, opt.T2 = 5, 27
	res, err := core.Route(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGuidesCoverEveryRoute(t *testing.T) {
	res := routedResult(t)
	guides := FromResult(res)
	if len(guides) != len(res.Design.Nets) {
		t.Fatalf("%d guides for %d nets", len(guides), len(res.Design.Nets))
	}
	if err := Covers(res, guides); err != nil {
		t.Fatalf("guide contract broken: %v", err)
	}
	for _, g := range guides {
		if len(g.Boxes) == 0 {
			t.Fatalf("net %s has an empty guide", g.Net)
		}
		if g.Area() == 0 {
			t.Fatalf("net %s guide area is zero", g.Net)
		}
	}
}

func TestCoversDetectsViolation(t *testing.T) {
	res := routedResult(t)
	guides := FromResult(res)
	// Remove one net's guide entirely.
	broken := append([]Guide(nil), guides[1:]...)
	if err := Covers(res, broken); err == nil {
		t.Fatal("missing guide accepted")
	}
	// Shrink a guide so it no longer covers its net.
	mangled := make([]Guide, len(guides))
	copy(mangled, guides)
	victim := -1
	for i, g := range guides {
		if len(g.Boxes) > 1 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Skip("no multi-box guide to mangle")
	}
	mangled[victim] = Guide{Net: guides[victim].Net, Boxes: guides[victim].Boxes[:1]}
	if err := Covers(res, mangled); err == nil {
		t.Fatal("shrunken guide accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	res := routedResult(t)
	guides := FromResult(res)
	var buf bytes.Buffer
	if err := Write(&buf, guides); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(guides) {
		t.Fatalf("round trip: %d vs %d guides", len(got), len(guides))
	}
	for i := range guides {
		if got[i].Net != guides[i].Net || len(got[i].Boxes) != len(guides[i].Boxes) {
			t.Fatalf("guide %d differs after round trip", i)
		}
		for j := range guides[i].Boxes {
			if got[i].Boxes[j] != guides[i].Boxes[j] {
				t.Fatalf("guide %d box %d differs", i, j)
			}
		}
	}
	// Round-tripped guides still satisfy the contract.
	if err := Covers(res, got); err != nil {
		t.Fatal(err)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"(\n)",               // body without net
		"netA\n(\n",          // unterminated
		"netA\nnetB\n(\n)\n", // net name while another is pending
		"netA\n(\nbogus line\n)\n",
		"netA\n(\n)\n)\n", // stray close
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
	// Empty input is a valid empty guide set.
	if g, err := Read(strings.NewReader("")); err != nil || len(g) != 0 {
		t.Fatal("empty input should parse to zero guides")
	}
}

func TestMergeCompactsBoxes(t *testing.T) {
	res := routedResult(t)
	guides := FromResult(res)
	// Merged boxes must be far fewer than raw cell counts for typical nets.
	for _, g := range guides[:20] {
		if len(g.Boxes) > g.Area() {
			t.Fatalf("net %s: %d boxes exceed area %d", g.Net, len(g.Boxes), g.Area())
		}
	}
}

func TestDeterministicOutput(t *testing.T) {
	res := routedResult(t)
	var a, b bytes.Buffer
	if err := Write(&a, FromResult(res)); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, FromResult(res)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("guide generation nondeterministic")
	}
}

// TestReadMalformedBoxLines pins the strict body-line validation: every
// corruption is rejected with an error naming the line, the net and the
// offending field — the diagnosis a user debugging a cross-tool guide
// file needs.
func TestReadMalformedBoxLines(t *testing.T) {
	cases := []struct {
		name, line, want string
	}{
		{"too few fields", "1 2 3 4", `want 5 fields`},
		{"too many fields", "1 2 3 4 5 6", `want 5 fields`},
		{"trailing junk", "1 2 3 4 x", `field layer: "x" is not an integer`},
		{"non-integer coord", "a 2 3 4 1", `field x1: "a" is not an integer`},
		{"float coord", "1.5 2 3 4 1", `field x1: "1.5" is not an integer`},
		{"layer zero", "1 2 3 4 0", "layer 0 < 1"},
		{"negative layer", "1 2 3 4 -2", "layer -2 < 1"},
		{"negative corner", "-1 2 3 4 1", "negative corner (-1,2)"},
		{"inverted x", "5 2 3 4 1", "inverted rectangle (5,2)-(3,4)"},
		{"inverted y", "1 9 3 4 1", "inverted rectangle (1,9)-(3,4)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := "netA\n(\n" + tc.line + "\n)\n"
			_, err := Read(strings.NewReader(in))
			if err == nil {
				t.Fatalf("malformed box line %q accepted", tc.line)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), `net "netA"`) {
				t.Fatalf("error %q does not locate line 3 / net netA", err)
			}
		})
	}
	// Boundary cases that must stay accepted: degenerate single-cell box,
	// extra whitespace between fields.
	g, err := Read(strings.NewReader("netA\n(\n7 7 7 7 1\n  1\t2  3 4   2 \n)\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 1 || len(g[0].Boxes) != 2 {
		t.Fatalf("valid boundary guides misparsed: %+v", g)
	}
}
