package guide

import (
	"bytes"
	"strings"
	"testing"

	"fastgr/internal/core"
	"fastgr/internal/design"
)

func routedResult(t *testing.T) *core.Result {
	t.Helper()
	d := design.MustGenerate("18test5m", 0.003)
	opt := core.DefaultOptions(core.FastGRH)
	opt.T1, opt.T2 = 5, 27
	res, err := core.Route(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGuidesCoverEveryRoute(t *testing.T) {
	res := routedResult(t)
	guides := FromResult(res)
	if len(guides) != len(res.Design.Nets) {
		t.Fatalf("%d guides for %d nets", len(guides), len(res.Design.Nets))
	}
	if err := Covers(res, guides); err != nil {
		t.Fatalf("guide contract broken: %v", err)
	}
	for _, g := range guides {
		if len(g.Boxes) == 0 {
			t.Fatalf("net %s has an empty guide", g.Net)
		}
		if g.Area() == 0 {
			t.Fatalf("net %s guide area is zero", g.Net)
		}
	}
}

func TestCoversDetectsViolation(t *testing.T) {
	res := routedResult(t)
	guides := FromResult(res)
	// Remove one net's guide entirely.
	broken := append([]Guide(nil), guides[1:]...)
	if err := Covers(res, broken); err == nil {
		t.Fatal("missing guide accepted")
	}
	// Shrink a guide so it no longer covers its net.
	mangled := make([]Guide, len(guides))
	copy(mangled, guides)
	victim := -1
	for i, g := range guides {
		if len(g.Boxes) > 1 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Skip("no multi-box guide to mangle")
	}
	mangled[victim] = Guide{Net: guides[victim].Net, Boxes: guides[victim].Boxes[:1]}
	if err := Covers(res, mangled); err == nil {
		t.Fatal("shrunken guide accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	res := routedResult(t)
	guides := FromResult(res)
	var buf bytes.Buffer
	if err := Write(&buf, guides); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(guides) {
		t.Fatalf("round trip: %d vs %d guides", len(got), len(guides))
	}
	for i := range guides {
		if got[i].Net != guides[i].Net || len(got[i].Boxes) != len(guides[i].Boxes) {
			t.Fatalf("guide %d differs after round trip", i)
		}
		for j := range guides[i].Boxes {
			if got[i].Boxes[j] != guides[i].Boxes[j] {
				t.Fatalf("guide %d box %d differs", i, j)
			}
		}
	}
	// Round-tripped guides still satisfy the contract.
	if err := Covers(res, got); err != nil {
		t.Fatal(err)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"(\n)",               // body without net
		"netA\n(\n",          // unterminated
		"netA\nnetB\n(\n)\n", // net name while another is pending
		"netA\n(\nbogus line\n)\n",
		"netA\n(\n)\n)\n", // stray close
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
	// Empty input is a valid empty guide set.
	if g, err := Read(strings.NewReader("")); err != nil || len(g) != 0 {
		t.Fatal("empty input should parse to zero guides")
	}
}

func TestMergeCompactsBoxes(t *testing.T) {
	res := routedResult(t)
	guides := FromResult(res)
	// Merged boxes must be far fewer than raw cell counts for typical nets.
	for _, g := range guides[:20] {
		if len(g.Boxes) > g.Area() {
			t.Fatalf("net %s: %d boxes exceed area %d", g.Net, len(g.Boxes), g.Area())
		}
	}
}

func TestDeterministicOutput(t *testing.T) {
	res := routedResult(t)
	var a, b bytes.Buffer
	if err := Write(&a, FromResult(res)); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, FromResult(res)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("guide generation nondeterministic")
	}
}
