package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkAtomic enforces atomic-consistency across the whole package set:
// a struct field that is ever passed by address to a sync/atomic
// function must never be read or written plainly anywhere else — mixed
// access is a data race the race detector only catches when the two
// sites actually collide. Fields of the atomic.Int64-style wrapper
// types are safe by construction and not tracked; neither are atomic
// operations on slice elements (&x.buf[i]), since the slice header
// itself is still plainly accessed.
//
// The check is two passes over the loaded ASTs: pass one records the
// field objects (and the exact &x.f nodes) used atomically, pass two
// flags every other selector of those fields.
func checkAtomic(pkgs []*Package) []Finding {
	atomicFields := map[*types.Var]bool{}
	atomicSites := map[*ast.SelectorExpr]bool{}

	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(p, call) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := arg.(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					sel, ok := un.X.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if v := fieldOf(p, sel); v != nil {
						atomicFields[v] = true
						atomicSites[sel] = true
					}
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return nil
	}

	var out []Finding
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || atomicSites[sel] {
					return true
				}
				v := fieldOf(p, sel)
				if v == nil || !atomicFields[v] {
					return true
				}
				out = append(out, Finding{
					Pos:    p.Fset.Position(sel.Pos()),
					Check:  CheckAtomic,
					Msg:    "field " + v.Name() + " is accessed atomically elsewhere but plainly here",
					Remedy: "use sync/atomic at every access (or an atomic.Int64-style field), or suppress with //lint:ignore atomic-consistency <reason>",
				})
				return true
			})
		}
	}
	return out
}

// isAtomicCall reports whether the call is a sync/atomic package
// function taking an address (Add*, Load*, Store*, Swap*,
// CompareAndSwap*).
func isAtomicCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[x].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return false
	}
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(sel.Sel.Name, prefix) {
			return true
		}
	}
	return false
}

// fieldOf resolves a selector to the struct field it names, or nil.
func fieldOf(p *Package, sel *ast.SelectorExpr) *types.Var {
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}
