package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkDetmap flags `range` over a map whose body accumulates
// order-sensitive state — appends to a slice, sends on a channel, or
// concatenates onto a string — unless the enclosing function
// canonicalizes afterwards with a sort (a call into package sort or
// slices positioned after the loop). Go randomizes map iteration order,
// so an unsorted accumulation is output that changes run to run.
func checkDetmap(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if !isMapExpr(p, rs.X) {
					return true
				}
				kind := orderSensitiveAccumulation(p, rs)
				if kind == "" {
					return true
				}
				if sortedAfter(p, fd.Body, rs.End()) {
					return true
				}
				out = append(out, Finding{
					Pos:    p.Fset.Position(rs.For),
					Check:  CheckDetmap,
					Msg:    "map iteration accumulates order-sensitive state (" + kind + ") with no canonicalizing sort after the loop",
					Remedy: "sort the result before it is observed, or suppress with //lint:ignore detmap <reason>",
				})
				return true
			})
		}
	}
	return out
}

func isMapExpr(p *Package, x ast.Expr) bool {
	tv, ok := p.Info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// orderSensitiveAccumulation scans a range body for the accumulation
// shapes whose result depends on iteration order. Writes into another
// map are fine (maps are unordered on both sides); plain counters
// commute; slices grown across iterations, channels and strings do
// not. Two append shapes are order-insensitive and skipped: a result
// landing in a variable declared inside the loop body (per-iteration
// state), and a slot indexed by the range key itself (each iteration
// owns a distinct slot, so iterations commute).
func orderSensitiveAccumulation(p *Package, rs *ast.RangeStmt) string {
	body := rs.Body
	kind := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if kind != "" {
			return false
		}
		switch s := n.(type) {
		case *ast.SendStmt:
			kind = "send on a channel"
			return false
		case *ast.AssignStmt:
			if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 {
				if tv, ok := p.Info.Types[s.Lhs[0]]; ok && tv.Type != nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						kind = "string concatenation"
						return false
					}
				}
			}
			for i, rhs := range s.Rhs {
				if !isAppendCall(p, rhs) || i >= len(s.Lhs) {
					continue
				}
				if declaredWithin(p, s.Lhs[i], body) {
					continue // per-iteration slice, order-insensitive
				}
				if indexedByRangeKey(p, s.Lhs[i], rs) {
					continue // per-key slot, iterations commute
				}
				kind = "append to a slice"
				return false
			}
		}
		return true
	})
	return kind
}

func isAppendCall(p *Package, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// indexedByRangeKey reports whether the assignment target is an index
// expression whose index is the loop's own range key — map keys are
// unique, so each iteration writes a distinct slot.
func indexedByRangeKey(p *Package, lhs ast.Expr, rs *ast.RangeStmt) bool {
	ix, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	idxID, ok := ix.Index.(*ast.Ident)
	if !ok {
		return false
	}
	keyID, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	idxObj := p.Info.Uses[idxID]
	keyObj := p.Info.Defs[keyID]
	if keyObj == nil {
		keyObj = p.Info.Uses[keyID]
	}
	return idxObj != nil && idxObj == keyObj
}

// declaredWithin reports whether the assignment target is a plain
// variable whose declaration lies inside the given body.
func declaredWithin(p *Package, lhs ast.Expr, body *ast.BlockStmt) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.Info.Defs[id]
	if obj == nil {
		obj = p.Info.Uses[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= body.Pos() && obj.Pos() < body.End()
}

// sortedAfter reports whether the function body calls into package sort
// or slices at a position after pos — the collect-then-sort idiom that
// makes a map-ranged accumulation canonical.
func sortedAfter(p *Package, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		x, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := p.Info.Uses[x].(*types.PkgName); ok {
			switch pn.Imported().Path() {
			case "sort", "slices":
				found = true
				return false
			}
		}
		return true
	})
	return found
}
