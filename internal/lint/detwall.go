package lint

import (
	"go/ast"
	"go/types"
)

// allowedRand are the math/rand selectors that do NOT touch the
// process-global source: constructors and type names. Everything else
// (Intn, Float64, Perm, Shuffle, Seed, Read, ...) draws from the
// unseeded global generator and is nondeterministic across runs.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"Rand": true, "Source": true, "Source64": true, "Zipf": true,
}

// checkDetwall flags wall-clock reads (time.Now, time.Since) and
// global-source math/rand calls in determinism-critical packages.
// Instrumentation timing belongs in internal/obs (obs.StartStopwatch);
// randomness must thread an explicitly seeded *rand.Rand.
func checkDetwall(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[x].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if name := sel.Sel.Name; name == "Now" || name == "Since" {
					out = append(out, Finding{
						Pos:    p.Fset.Position(sel.Pos()),
						Check:  CheckDetwall,
						Msg:    "wall-clock read (time." + name + ") in a determinism-critical package",
						Remedy: "route timing through internal/obs (obs.StartStopwatch) or suppress with //lint:ignore detwall <reason>",
					})
				}
			case "math/rand", "math/rand/v2":
				if name := sel.Sel.Name; !allowedRand[name] {
					out = append(out, Finding{
						Pos:    p.Fset.Position(sel.Pos()),
						Check:  CheckDetwall,
						Msg:    "global-source rand." + name + " in a determinism-critical package",
						Remedy: "thread a seeded *rand.Rand (rand.New(rand.NewSource(seed)))",
					})
				}
			}
			return true
		})
	}
	return out
}
