package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The module-wide call graph. Every function declaration and every
// function literal in the analyzed packages becomes one node. Edges are
// deliberately an over-approximation of "may call":
//
//   - a static call F() or recv.M() adds an edge to the resolved callee;
//   - any OTHER reference to a function — assignment, argument, bare
//     mention — adds a "value reference" edge from the referencing
//     function, because once a function escapes as a value we assume it
//     can run wherever the value travels (this subsumes higher-order
//     executors without modeling their internals);
//   - a function literal gets a reference edge from its lexical owner.
//
// Dynamic calls through interface methods resolve to the interface
// method object (good enough for key matching); calls through
// function-typed variables are resolved via varFuncs, a flow-insensitive
// map from variable objects to every function value ever assigned to
// them.

// Node is one function in the graph: either a declaration (Fn set) or a
// literal (Lit set).
type Node struct {
	Pkg  *Pkg
	Fn   *types.Func  // nil for literals
	Lit  *ast.FuncLit // nil for declarations
	Body *ast.BlockStmt
	Sig  *types.Signature
	Pos  token.Pos
	Name string // human-readable: funcKey or "ownerKey$lit"

	callees []*Node // static-call and value-reference successors
}

// CallSite is one static call of a Node, kept for obligation analysis
// (e.g. "this function warms a cache passed in as parameter 0 — check
// every caller's argument").
type CallSite struct {
	From *Node
	Pkg  *Pkg
	Call *ast.CallExpr
}

// Graph is the built call graph plus the worker-reachability closure.
type Graph struct {
	Nodes    []*Node
	ByFunc   map[*types.Func]*Node
	ByLit    map[*ast.FuncLit]*Node
	VarFuncs map[types.Object][]*Node
	Sites    map[*Node][]CallSite

	roots map[*Node]bool
	reach map[*Node]bool
}

// Reachable reports whether n may execute in worker context: it is a
// spawn-site callback or transitively called/referenced by one.
func (g *Graph) Reachable(n *Node) bool { return g.reach[n] }

// Root reports whether n itself is a spawn-site callback.
func (g *Graph) Root(n *Node) bool { return g.roots[n] }

type pendingEdge struct {
	from   *Node
	callee *types.Func
	call   *ast.CallExpr
	pkg    *Pkg
}

type spawnSite struct {
	pkg  *Pkg
	args []ast.Expr
}

type pendingVar struct {
	pkg *Pkg
	obj *types.Var
	rhs ast.Expr
}

// Build constructs the graph over every package and computes worker
// reachability from cfg.SpawnFuncs callback arguments.
func Build(pkgs []*Pkg, cfg Config) *Graph {
	g := &Graph{
		ByFunc:   map[*types.Func]*Node{},
		ByLit:    map[*ast.FuncLit]*Node{},
		VarFuncs: map[types.Object][]*Node{},
		Sites:    map[*Node][]CallSite{},
		roots:    map[*Node]bool{},
		reach:    map[*Node]bool{},
	}

	// Pass A: register every declaration so cross-package static calls
	// can link no matter the package visit order.
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := &Node{
					Pkg:  p,
					Fn:   fn,
					Body: fd.Body,
					Pos:  fd.Pos(),
					Name: funcKey(fn),
				}
				if sig, ok := fn.Type().(*types.Signature); ok {
					n.Sig = sig
				}
				g.Nodes = append(g.Nodes, n)
				g.ByFunc[fn] = n
			}
		}
	}

	// Pass B: walk every file once with an owner stack, creating literal
	// nodes, collecting edges, var→func assignments and spawn sites.
	var pending []pendingEdge
	var spawns []spawnSite
	var pvars []pendingVar
	for _, p := range pkgs {
		for _, f := range p.Files {
			w := &graphWalker{g: g, pkg: p, callFun: map[ast.Node]bool{}, pvars: &pvars}
			var stack []ast.Node
			ast.Inspect(f, func(node ast.Node) bool {
				if node == nil {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					switch top.(type) {
					case *ast.FuncDecl, *ast.FuncLit:
						w.owners = w.owners[:len(w.owners)-1]
					}
					return true
				}
				stack = append(stack, node)
				switch n := node.(type) {
				case *ast.FuncDecl:
					fn, _ := p.Info.Defs[n.Name].(*types.Func)
					w.owners = append(w.owners, g.ByFunc[fn]) // nil if unresolved
				case *ast.FuncLit:
					ln := &Node{
						Pkg:  p,
						Lit:  n,
						Body: n.Body,
						Pos:  n.Pos(),
						Name: w.ownerName() + "$lit",
					}
					if sig, ok := p.Info.TypeOf(n).(*types.Signature); ok {
						ln.Sig = sig
					}
					g.Nodes = append(g.Nodes, ln)
					g.ByLit[n] = ln
					if o := w.owner(); o != nil {
						o.callees = append(o.callees, ln)
					}
					w.owners = append(w.owners, ln)
				case *ast.CallExpr:
					w.markCallFun(n)
					if callee := calleeOf(p, n); callee != nil {
						if from := w.owner(); from != nil {
							pending = append(pending, pendingEdge{from, callee, n, p})
						}
						if matchAnyPattern(cfg.SpawnFuncs, funcKey(callee)) {
							spawns = append(spawns, spawnSite{p, n.Args})
						}
					}
				case *ast.Ident:
					w.identRef(n)
				case *ast.SelectorExpr:
					w.selectorRef(n)
				case *ast.AssignStmt:
					w.recordVarFuncs(n.Lhs, n.Rhs)
				case *ast.ValueSpec:
					lhs := make([]ast.Expr, len(n.Names))
					for i, id := range n.Names {
						lhs[i] = id
					}
					w.recordVarFuncs(lhs, n.Values)
				}
				return true
			})
		}
	}

	// Resolve var→func assignments now that every literal node exists
	// (an assignment is visited before the literal on its right side).
	for _, pv := range pvars {
		if nodes := g.resolveFuncValue(pv.pkg, pv.rhs); len(nodes) > 0 {
			g.VarFuncs[pv.obj] = append(g.VarFuncs[pv.obj], nodes...)
		}
	}

	// Link static edges and record call sites.
	for _, e := range pending {
		to := g.ByFunc[e.callee]
		if to == nil {
			continue // outside the analyzed module
		}
		e.from.callees = append(e.from.callees, to)
		g.Sites[to] = append(g.Sites[to], CallSite{From: e.from, Pkg: e.pkg, Call: e.call})
	}

	// Mark roots: every function value passed to a spawn entry point.
	for _, s := range spawns {
		for _, arg := range s.args {
			for _, n := range g.resolveFuncValue(s.pkg, arg) {
				g.roots[n] = true
			}
		}
	}

	// BFS closure: anything a root calls or references may run in worker
	// context. Seeding walks g.Nodes, not the root set, so the closure
	// (and with it finding order) never depends on map iteration order —
	// the analyzer holds itself to the determinism bar it enforces.
	queue := make([]*Node, 0, len(g.roots))
	for _, n := range g.Nodes {
		if g.roots[n] {
			g.reach[n] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.callees {
			if !g.reach[c] {
				g.reach[c] = true
				queue = append(queue, c)
			}
		}
	}
	return g
}

// resolveFuncValue maps an expression to the graph nodes it may denote
// as a function value: a literal, a named function, or a variable via
// VarFuncs.
func (g *Graph) resolveFuncValue(p *Pkg, e ast.Expr) []*Node {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		if n := g.ByLit[e]; n != nil {
			return []*Node{n}
		}
	case *ast.Ident:
		switch obj := p.Info.Uses[e].(type) {
		case *types.Func:
			if n := g.ByFunc[obj]; n != nil {
				return []*Node{n}
			}
		case *types.Var:
			return g.VarFuncs[obj]
		}
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[e.Sel].(*types.Func); ok {
			if n := g.ByFunc[fn]; n != nil {
				return []*Node{n}
			}
		}
		if sel, ok := p.Info.Selections[e]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if n := g.ByFunc[fn]; n != nil {
					return []*Node{n}
				}
			}
		}
	}
	return nil
}

// graphWalker holds per-file walk state.
type graphWalker struct {
	g      *Graph
	pkg    *Pkg
	owners []*Node
	// callFun marks the syntax nodes that are the callee position of a
	// call, so the ident/selector visits below can tell a direct call
	// from a value reference.
	callFun map[ast.Node]bool
	pvars   *[]pendingVar
}

func (w *graphWalker) owner() *Node {
	for i := len(w.owners) - 1; i >= 0; i-- {
		if w.owners[i] != nil {
			return w.owners[i]
		}
	}
	return nil
}

func (w *graphWalker) ownerName() string {
	if o := w.owner(); o != nil {
		return o.Name
	}
	return w.pkg.Path + ".init"
}

func (w *graphWalker) markCallFun(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	w.callFun[fun] = true
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		w.callFun[sel.Sel] = true
	}
}

// identRef adds a value-reference edge when an identifier mentions a
// module function outside callee position.
func (w *graphWalker) identRef(id *ast.Ident) {
	if w.callFun[id] {
		return
	}
	fn, ok := w.pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	to := w.g.ByFunc[fn]
	if to == nil {
		return
	}
	if o := w.owner(); o != nil {
		o.callees = append(o.callees, to)
	}
}

// selectorRef is identRef for qualified references (pkg.F, recv.Method
// used as a value).
func (w *graphWalker) selectorRef(sel *ast.SelectorExpr) {
	if w.callFun[sel] || w.callFun[sel.Sel] {
		return
	}
	// sel.Sel is also visited as a plain Ident; identRef covers the
	// pkg.F case through Uses. Method values (recv.Method) resolve via
	// Selections only.
	if s, ok := w.pkg.Info.Selections[sel]; ok {
		if fn, ok := s.Obj().(*types.Func); ok {
			if to := w.g.ByFunc[fn]; to != nil {
				if o := w.owner(); o != nil {
					o.callees = append(o.callees, to)
				}
			}
		}
	}
}

// recordVarFuncs records every function value assigned to a variable,
// flow-insensitively: `f := work; f = other` leaves f mapping to both.
func (w *graphWalker) recordVarFuncs(lhs, rhs []ast.Expr) {
	if len(lhs) != len(rhs) {
		return // multi-value call assignment; no syntactic func values
	}
	for i, l := range lhs {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok {
			continue
		}
		obj := w.pkg.Info.Defs[id]
		if obj == nil {
			obj = w.pkg.Info.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			continue
		}
		*w.pvars = append(*w.pvars, pendingVar{w.pkg, v, rhs[i]})
	}
}

// WalkBody walks n's own body, NOT descending into nested function
// literals — those are separate nodes. The callback follows ast.Inspect
// semantics.
func (n *Node) WalkBody(fn func(ast.Node) bool) {
	if n.Body == nil {
		return
	}
	ast.Inspect(n.Body, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok && lit != n.Lit {
			return false
		}
		return fn(node)
	})
}
