// Package flow is fastgr's interprocedural analysis layer: a
// module-wide call graph built from the same go/types-loaded packages
// the per-function checks in internal/lint run on, plus a forward
// taint-propagation engine and a reverse-reachability engine rooted at
// worker callbacks. Four checks run on top of it:
//
//   - walltaint — values originating at time.Now/time.Since (legal only
//     in detwall-exempt packages) must never flow, through returns,
//     params or struct fields, into the routing pipeline's data
//     structures. Declared wall-report carriers (the *Wall columns) are
//     sanctioned declassification points.
//   - writeroute — file creation and writing stay inside the crash-safe
//     writer package (internal/atomicio); any os.Create/os.WriteFile/
//     os.OpenFile-for-write elsewhere is a finding.
//   - shardisolation — functions reachable from worker-callback roots
//     (par pool chunk funcs, taskflow task bodies) must not warm a
//     non-window cost cache, mutate coordinator-owned fields, or emit
//     run-journal events.
//   - promdrift — every metric name reaching a registry registration
//     site must constant-propagate to an entry of the exposition
//     mapping table, and every table entry must have a live
//     registration site.
//
// The call graph is conservatively over-approximated: static calls,
// method calls resolved through the type checker, and every reference
// to a function value (assignment, argument, bare mention) count as a
// potential call from the referencing function. Soundness caveats are
// documented per engine and in DESIGN.md "Static invariants".
//
// The package depends only on go/ast, go/token and go/types so it
// shares internal/lint's offline, dependency-free story. It is wired
// into the lint Runner through the small Pkg/Finding mirror types below
// (lint imports flow; flow must not import lint).
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Check names, referenced by the policy table, suppression comments and
// the per-check timing report.
const (
	CheckWallTaint      = "walltaint"
	CheckWriteRoute     = "writeroute"
	CheckShardIsolation = "shardisolation"
	CheckPromDrift      = "promdrift"
)

// Checks lists every flow check name, in report order.
func Checks() []string {
	return []string{CheckWallTaint, CheckWriteRoute, CheckShardIsolation, CheckPromDrift}
}

// Pkg is one loaded, type-checked package under analysis — the
// lint.Package fields the flow engines need, mirrored here so the lint
// package can depend on this one without a cycle.
type Pkg struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
	Types *types.Package
}

// Finding is one flow-rule violation at a position.
type Finding struct {
	Pos    token.Position
	Check  string
	Msg    string
	Remedy string
}

// Config names the module-specific anchors of the four checks.
// Functions are identified by key: "pkgpath.Func" for package
// functions, "pkgpath.Type.Method" for methods (pointer receivers
// stripped). Field patterns are "pkgpath.Type.Field". Every pattern
// may use '*' wildcards matching any run of characters.
type Config struct {
	// SinkPkgs are the packages whose data wall-clock taint must never
	// reach (walltaint). Package patterns, "/..." subtrees allowed.
	SinkPkgs []string
	// SanctionedFields are field patterns acting as declassification
	// points: a tainted value may be stored there (they are the
	// documented host-wall report columns, excluded from the
	// bit-identical contract), and reads from them are clean.
	SanctionedFields []string
	// WriteAllowedPkgs may call the raw os write APIs (writeroute);
	// everywhere else must route artifact writes through them.
	WriteAllowedPkgs []string
	// SpawnFuncs are the executor entry points whose function-valued
	// arguments become worker roots (shardisolation).
	SpawnFuncs []string
	// WarmFuncs are the cost-cache warm entry points; calling one from
	// worker context is legal only on a window view.
	WarmFuncs []string
	// WindowFuncs construct window views: a warm receiver traced to one
	// of these is sanctioned.
	WindowFuncs []string
	// CoordFields are coordinator-owned field patterns workers must not
	// assign.
	CoordFields []string
	// JournalFuncs emit run-journal events; coordinator-only.
	JournalFuncs []string
	// RegistryFuncs are the metric registration/lookup entry points
	// whose name argument promdrift verifies (promdrift).
	RegistryFuncs []string
	// MetricTablePkg/MetricTableVar locate the name-mapping table: a
	// package-level map variable whose keys are the mapped dotted names.
	MetricTablePkg string
	MetricTableVar string
}

// Enabled reports whether any check has anchors configured; a zero
// Config disables the flow layer entirely.
func (c Config) Enabled() bool {
	return len(c.SinkPkgs) > 0 || len(c.WriteAllowedPkgs) > 0 ||
		len(c.SpawnFuncs) > 0 || len(c.RegistryFuncs) > 0
}

// funcKey canonicalizes a function object for matching against Config
// patterns: "pkgpath.Name" for package-level functions,
// "pkgpath.RecvType.Name" for methods, receiver pointers stripped.
func funcKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			pkg := ""
			if n.Obj().Pkg() != nil {
				pkg = n.Obj().Pkg().Path() + "."
			}
			return pkg + n.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// fieldKey canonicalizes a struct field for matching against field
// patterns. owner is the selected-from type when known (for promoted
// fields it names the outer struct, which is the type the code spells).
func fieldKey(owner types.Type, v *types.Var) string {
	pkg := ""
	if v.Pkg() != nil {
		pkg = v.Pkg().Path()
	}
	name := "_"
	for owner != nil {
		if p, ok := owner.(*types.Pointer); ok {
			owner = p.Elem()
			continue
		}
		if n, ok := owner.(*types.Named); ok {
			name = n.Obj().Name()
		}
		break
	}
	return pkg + "." + name + "." + v.Name()
}

// wildcard reports whether s matches pattern, where '*' matches any run
// of characters (dots included).
func wildcard(pattern, s string) bool {
	parts := strings.Split(pattern, "*")
	if len(parts) == 1 {
		return pattern == s
	}
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	for _, part := range parts[1 : len(parts)-1] {
		i := strings.Index(s, part)
		if i < 0 {
			return false
		}
		s = s[i+len(part):]
	}
	return strings.HasSuffix(s, parts[len(parts)-1])
}

func matchAnyPattern(patterns []string, s string) bool {
	for _, p := range patterns {
		if wildcard(p, s) {
			return true
		}
	}
	return false
}

// matchPkg matches an import path against package patterns (exact,
// trailing "/..." subtree, or wildcard).
func matchPkg(patterns []string, path string) bool {
	for _, p := range patterns {
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			if path == rest || strings.HasPrefix(path, rest+"/") {
				return true
			}
			continue
		}
		if wildcard(p, path) {
			return true
		}
	}
	return false
}

// calleeOf resolves a call expression to the *types.Func it statically
// invokes, or nil for dynamic calls (function values, interface
// methods resolve to the interface method object, which is still
// useful for key matching).
func calleeOf(p *Pkg, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: obs.StartStopwatch(...).
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isConversion reports whether a call expression is a type conversion.
func isConversion(p *Pkg, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call.Fun]
	return ok && tv.IsType()
}

func sortFindings(fs []Finding) {
	// Insertion sort keeps this dependency-free and the slices are tiny.
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && findingLess(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func findingLess(a, b Finding) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Check != b.Check {
		return a.Check < b.Check
	}
	return a.Msg < b.Msg
}
