package flow

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
)

// CheckPromDriftFn keeps the metrics registry and the Prometheus
// exposition table in lock-step, in both directions:
//
//  1. every metric name reaching a registration site (a call to one of
//     Config.RegistryFuncs — Registry.Counter/Gauge/Histogram) must
//     constant-propagate to a string that is a key of the mapping table
//     (Config.MetricTablePkg's MetricTableVar, internal/obs/names.go's
//     promTable in the real tree). An unmapped name still reaches the
//     scrape through the sanitized fallback family, but silently, with
//     generic help and no label splitting — exactly the drift this
//     check exists to catch. A name the analyzer cannot reduce to a
//     compile-time constant is a finding too: a dynamic name can never
//     be proven mapped.
//  2. every table entry must have a live registration site somewhere in
//     the analyzed packages — an orphan entry is a family the scrape
//     promises but never populates, which is how dashboards rot.
//
// The whole-table direction only runs when the analysis scope includes
// the table's package AND at least one registration site; a partial-tree
// invocation (fastgrlint internal/obs) must not report every metric in
// the module as orphaned.
func CheckPromDriftFn(pkgs []*Pkg, cfg Config) []Finding {
	if len(cfg.RegistryFuncs) == 0 {
		return nil
	}
	var tablePkg *Pkg
	for _, p := range pkgs {
		if p.Path == cfg.MetricTablePkg {
			tablePkg = p
		}
	}
	if tablePkg == nil {
		return nil // table out of scope: nothing to verify against
	}

	type tableEntry struct {
		pos  token.Pos
		name string
	}
	var entries []tableEntry
	tableFound := false
	for _, f := range tablePkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != cfg.MetricTableVar || i >= len(vs.Values) {
						continue
					}
					lit, ok := ast.Unparen(vs.Values[i]).(*ast.CompositeLit)
					if !ok {
						continue
					}
					tableFound = true
					for _, elt := range lit.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if s, ok := constString(tablePkg, kv.Key); ok {
							entries = append(entries, tableEntry{kv.Key.Pos(), s})
						}
					}
				}
			}
		}
	}
	if !tableFound {
		return []Finding{{
			Pos:   tablePkg.Fset.Position(tablePkg.Files[0].Pos()),
			Check: CheckPromDrift,
			Msg: fmt.Sprintf("metric mapping table %s.%s not found (promdrift has nothing to verify against)",
				cfg.MetricTablePkg, cfg.MetricTableVar),
			Remedy: "restore the table variable or point the flow policy at its new home",
		}}
	}
	mapped := map[string]bool{}
	for _, e := range entries {
		mapped[e.name] = true
	}

	// Registration sites, in package/file order so findings sort stably.
	var findings []Finding
	used := map[string]bool{}
	sawSite := false
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeOf(p, call)
				if callee == nil || !matchAnyPattern(cfg.RegistryFuncs, funcKey(callee)) {
					return true
				}
				if len(call.Args) == 0 {
					return true
				}
				sawSite = true
				name, ok := constString(p, call.Args[0])
				if !ok {
					findings = append(findings, Finding{
						Pos:   p.Fset.Position(call.Args[0].Pos()),
						Check: CheckPromDrift,
						Msg: fmt.Sprintf("metric name passed to %s does not constant-propagate; it cannot be proven to map through %s.%s",
							funcKey(callee), cfg.MetricTablePkg, cfg.MetricTableVar),
						Remedy: "register metrics under shared dotted-name constants so the exposition mapping is checkable",
					})
					return true
				}
				used[name] = true
				if !mapped[name] {
					findings = append(findings, Finding{
						Pos:   p.Fset.Position(call.Args[0].Pos()),
						Check: CheckPromDrift,
						Msg: fmt.Sprintf("dotted metric %q has no entry in the %s.%s exposition table (the scrape degrades to the sanitized fallback family)",
							name, cfg.MetricTablePkg, cfg.MetricTableVar),
						Remedy: "add a mapping with family, help and labels so the series is a first-class scrape citizen",
					})
				}
				return true
			})
		}
	}

	// Orphan direction: table entries with no live registration site.
	if sawSite {
		for _, e := range entries {
			if !used[e.name] {
				findings = append(findings, Finding{
					Pos:   tablePkg.Fset.Position(e.pos),
					Check: CheckPromDrift,
					Msg: fmt.Sprintf("table entry %q has no live registration site: the exposition promises a family nothing populates",
						e.name),
					Remedy: "delete the orphan entry, or restore the metric that used to feed it",
				})
			}
		}
	}
	sortFindings(findings)
	return findings
}

// constString reduces an expression to its compile-time string value via
// the type checker's constant folding.
func constString(p *Pkg, e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
