package flow

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CheckShardIsolationFn mechanizes the shard pipeline's discipline:
// workers read frozen halos and warm only their own window views; the
// coordinator alone reconciles, warms parent caches, mutates run state
// and writes the journal. Three rules, all over the worker-reachability
// closure (nodes a spawn-site callback may call or reference):
//
//  1. A reachable function must not warm a parent (non-window) cost
//     cache. The receiver of every WarmFuncs call is traced to a
//     provenance: a WindowFuncs result is sanctioned; a field read or
//     unknown source is a finding; a parameter raises an *obligation* on
//     the parameter's owner — every call site that can feed the warm in
//     worker context must pass a window-derived cache. Obligations chain
//     through parameter-passing (routeBatch warms its parameter; its
//     exported caller passes its own parameter through; the shard worker
//     finally supplies a WindowView — clean, while the monolithic
//     coordinator call never enters worker context and is not checked).
//     A warm captured into a spawned closure runs in worker context no
//     matter who called the owner, so its obligation checks every call
//     site ("alwaysWorker") — but only when the closure is itself a
//     spawn callback or its owner never runs in worker context; a
//     synchronous inline closure follows its owner's call context (see
//     escalates).
//  2. A reachable function must not call a JournalFuncs entry point.
//  3. A reachable function must not assign (or ++/--) a field matching
//     CoordFields. Element writes through an index expression
//     (r.routes[i] = x) are the sanctioned disjoint-slot pattern and are
//     not flagged.
//
// Soundness caveats: provenance tracing is syntactic def-use with a
// depth cap — a window view laundered through a helper's return value or
// a struct field reads as "unknown" and flags conservatively; dynamic
// dispatch that the value-reference over-approximation doesn't cover
// (values stored into maps and called elsewhere) can under-approximate
// reachability.

type provKind int

const (
	provWindow provKind = iota
	provParam
	provOther
)

type prov struct {
	kind  provKind
	owner *Node        // provParam: the node declaring the parameter
	obj   types.Object // provParam: the parameter object
}

type shardEngine struct {
	cfg  Config
	g    *Graph
	pown map[types.Object]*Node // parameter/receiver object -> declaring node
	defs map[types.Object][]provSrc
}

type provSrc struct {
	pkg *Pkg
	rhs ast.Expr
}

type obligation struct {
	owner *Node
	param types.Object
	// alwaysWorker: the warm runs in worker context regardless of who
	// called owner (it was captured into a spawned closure), so every
	// call site is checked, not just worker-reachable ones.
	alwaysWorker bool
}

// CheckShardIsolationFn runs the shardisolation check over the graph.
func CheckShardIsolationFn(pkgs []*Pkg, g *Graph, cfg Config) []Finding {
	if len(cfg.SpawnFuncs) == 0 {
		return nil
	}
	e := &shardEngine{
		cfg:  cfg,
		g:    g,
		pown: map[types.Object]*Node{},
		defs: map[types.Object][]provSrc{},
	}
	for _, n := range g.Nodes {
		if n.Sig == nil {
			continue
		}
		if r := n.Sig.Recv(); r != nil {
			e.pown[r] = n
		}
		for i := 0; i < n.Sig.Params().Len(); i++ {
			e.pown[n.Sig.Params().At(i)] = n
		}
	}
	for _, n := range g.Nodes {
		e.collectDefs(n)
	}

	var findings []Finding
	var worklist []obligation
	seen := map[obligation]bool{}

	for _, n := range g.Nodes {
		n := n
		n.WalkBody(func(node ast.Node) bool {
			switch s := node.(type) {
			case *ast.CallExpr:
				callee := calleeOf(n.Pkg, s)
				if callee == nil {
					return true
				}
				key := funcKey(callee)
				if g.Reachable(n) && matchAnyPattern(cfg.JournalFuncs, key) {
					findings = append(findings, Finding{
						Pos:   n.Pkg.Fset.Position(s.Pos()),
						Check: CheckShardIsolation,
						Msg:   fmt.Sprintf("worker-reachable %s emits a run-journal event via %s", n.Name, key),
						Remedy: "journal emission is coordinator-only: record per-worker data locally and " +
							"reduce it at the coordinator",
					})
				}
				if matchAnyPattern(cfg.WarmFuncs, key) {
					sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr)
					if !ok || !g.Reachable(n) {
						return true
					}
					switch pv := e.provOf(n.Pkg, sel.X, 10); pv.kind {
					case provWindow:
					case provOther:
						findings = append(findings, Finding{
							Pos:   n.Pkg.Fset.Position(s.Pos()),
							Check: CheckShardIsolation,
							Msg: fmt.Sprintf("worker-reachable %s warms a parent cost cache via %s (receiver is not a window view)",
								n.Name, key),
							Remedy: "workers warm only WindowView-derived caches; parent warming belongs to the coordinator",
						})
					case provParam:
						ob := obligation{pv.owner, pv.obj, escalates(g, n, pv.owner)}
						if !seen[ob] {
							seen[ob] = true
							worklist = append(worklist, ob)
						}
					}
				}
			case *ast.AssignStmt:
				if g.Reachable(n) {
					for _, l := range s.Lhs {
						findings = e.coordWrite(findings, n, l)
					}
				}
			case *ast.IncDecStmt:
				if g.Reachable(n) {
					findings = e.coordWrite(findings, n, s.X)
				}
			}
			return true
		})
	}

	// Obligation fixpoint: a parameter that ends up warmed in worker
	// context must be window-derived at every contributing call site.
	for len(worklist) > 0 {
		ob := worklist[0]
		worklist = worklist[1:]
		for _, cs := range g.Sites[ob.owner] {
			if !ob.alwaysWorker && !g.Reachable(cs.From) {
				continue // coordinator-context call; warm is sanctioned there
			}
			arg := e.argFor(cs, ob)
			if arg == nil {
				continue
			}
			switch pv := e.provOf(cs.Pkg, arg, 10); pv.kind {
			case provWindow:
			case provOther:
				findings = append(findings, Finding{
					Pos:   cs.Pkg.Fset.Position(arg.Pos()),
					Check: CheckShardIsolation,
					Msg: fmt.Sprintf("parent cost cache passed from %s into worker-reachable %s, which warms it",
						cs.From.Name, ob.owner.Name),
					Remedy: "pass a WindowView-derived cache into worker-reachable code, or keep the warming call on the coordinator path",
				})
			case provParam:
				next := obligation{pv.owner, pv.obj, ob.alwaysWorker || escalates(g, cs.From, pv.owner)}
				if !seen[next] {
					seen[next] = true
					worklist = append(worklist, next)
				}
			}
		}
	}
	sortFindings(findings)
	return findings
}

// escalates decides whether an obligation raised at `at` (the node
// containing the warm or the chained call) on a parameter of `owner`
// must check every call site of owner, not just worker-reachable ones.
// That is the case only when `at` runs in worker context independently
// of how owner was called: it is itself a spawn callback, or owner never
// executes in worker context at all (so `at`'s reachability cannot have
// come through owner). When owner is itself worker-reachable, worker-ness
// follows owner's call sites and the reachability filter already applies
// — a synchronous inline closure (a fault-containment wrapper, say) must
// not escalate, or every coordinator-path caller would be flagged.
func escalates(g *Graph, at, owner *Node) bool {
	if at == owner {
		return false
	}
	return g.Root(at) || !g.Reachable(owner)
}

// argFor finds the call-site expression bound to an obligation's
// parameter: the matching positional argument, or the method receiver.
func (e *shardEngine) argFor(cs CallSite, ob obligation) ast.Expr {
	sig := ob.owner.Sig
	if sig == nil {
		return nil
	}
	if sig.Recv() != nil && ob.param == sig.Recv() {
		if sel, ok := ast.Unparen(cs.Call.Fun).(*ast.SelectorExpr); ok {
			return sel.X
		}
		return nil
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == ob.param {
			if i < len(cs.Call.Args) {
				return cs.Call.Args[i]
			}
			return nil
		}
	}
	return nil
}

// coordWrite reports a direct assignment to a coordinator-owned field.
func (e *shardEngine) coordWrite(findings []Finding, n *Node, lhs ast.Expr) []Finding {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return findings
	}
	s, ok := n.Pkg.Info.Selections[sel]
	if !ok {
		return findings
	}
	f, ok := s.Obj().(*types.Var)
	if !ok || !f.IsField() {
		return findings
	}
	key := fieldKey(s.Recv(), f)
	if !matchAnyPattern(e.cfg.CoordFields, key) {
		return findings
	}
	return append(findings, Finding{
		Pos:   n.Pkg.Fset.Position(sel.Pos()),
		Check: CheckShardIsolation,
		Msg:   fmt.Sprintf("worker-reachable %s assigns coordinator-owned field %s", n.Name, key),
		Remedy: "accumulate into worker-local state (or a disjoint indexed slot) and reduce at the " +
			"coordinator after the join",
	})
}

// collectDefs records single-assignment rhs expressions per variable for
// provenance tracing.
func (e *shardEngine) collectDefs(n *Node) {
	record := func(lhs, rhs []ast.Expr) {
		if len(lhs) != len(rhs) {
			return
		}
		for i, l := range lhs {
			id, ok := ast.Unparen(l).(*ast.Ident)
			if !ok {
				continue
			}
			obj := n.Pkg.Info.Defs[id]
			if obj == nil {
				obj = n.Pkg.Info.Uses[id]
			}
			if v, ok := obj.(*types.Var); ok {
				e.defs[v] = append(e.defs[v], provSrc{n.Pkg, rhs[i]})
			}
		}
	}
	n.WalkBody(func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.AssignStmt:
			record(s.Lhs, s.Rhs)
		case *ast.ValueSpec:
			lhs := make([]ast.Expr, len(s.Names))
			for i, id := range s.Names {
				lhs[i] = id
			}
			record(lhs, s.Values)
		}
		return true
	})
}

// provOf traces an expression to its cache provenance.
func (e *shardEngine) provOf(p *Pkg, expr ast.Expr, depth int) prov {
	if depth <= 0 {
		return prov{kind: provOther}
	}
	switch x := ast.Unparen(expr).(type) {
	case *ast.UnaryExpr:
		return e.provOf(p, x.X, depth-1)
	case *ast.StarExpr:
		return e.provOf(p, x.X, depth-1)
	case *ast.CallExpr:
		if callee := calleeOf(p, x); callee != nil {
			if matchAnyPattern(e.cfg.WindowFuncs, funcKey(callee)) {
				return prov{kind: provWindow}
			}
		}
		return prov{kind: provOther}
	case *ast.Ident:
		obj := p.Info.Uses[x]
		if obj == nil {
			obj = p.Info.Defs[x]
		}
		if obj == nil {
			return prov{kind: provOther}
		}
		if owner := e.pown[obj]; owner != nil {
			return prov{kind: provParam, owner: owner, obj: obj}
		}
		srcs := e.defs[obj]
		if len(srcs) == 0 {
			return prov{kind: provOther}
		}
		// Join over every assignment, worst wins: any unknown source
		// poisons the variable; otherwise a parameter source dominates a
		// window one.
		out := prov{kind: provWindow}
		for _, s := range srcs {
			pv := e.provOf(s.pkg, s.rhs, depth-1)
			switch pv.kind {
			case provOther:
				return pv
			case provParam:
				out = pv
			}
		}
		return out
	}
	return prov{kind: provOther}
}
