package flow

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CheckWallTaint closes the loophole in the package-level detwall check:
// detwall-exempt packages (obs, par, cmd, examples) may legally read the
// wall clock, but nothing stops a wall-derived value from flowing back
// into the routing pipeline through a return value, a parameter or a
// struct field — which would break the byte-identical contract just as
// surely as a direct time.Now in route code.
//
// The engine runs a forward taint fixpoint over the whole module. Taint
// values are parameter-polymorphic: a value carries a direct bit ("a
// wall read definitely feeds this") plus a symbolic set of parameter
// objects it depends on. Function summaries are computed from the
// symbolic form, so `geom.Max` called once with a wall-derived argument
// in bench code does NOT start returning taint to every other caller —
// the call-site result substitutes the actual arguments into the
// callee's parameter dependencies. Actual taint crosses call boundaries
// separately, through paramTaint: a parameter that some call site feeds
// an effectively-tainted argument. Effective taint (the thing findings
// fire on) is the direct bit, or any symbolic dependency on a
// wall-poisoned parameter.
//
//   - seeds: results of time.Now and time.Since, anywhere;
//   - propagation: assignments, composite literals, arithmetic,
//     conversions, container elements (coarsely, by tainting the
//     container), returns (per-function summary: direct bit + parameter
//     dependency set), and call arguments into paramTaint;
//   - declassification: reads of fields matching Config.SanctionedFields
//     are clean, and writes into them are not findings — these are the
//     documented host-wall report columns excluded from the
//     bit-identical contract.
//
// Findings fire at the boundary where taint enters sink data:
//
//  1. an effectively-tainted value stored into a non-sanctioned field of
//     a struct owned by a sink package (wherever the write happens), and
//  2. an effectively-tainted argument passed to a sink-package function
//     from a non-sink package (flows internal to the sinks are caught at
//     rule 1's field writes, which avoids re-reporting every hop).
//
// Soundness caveats: aliasing through pointers is not modeled (a tainted
// value stored through an alias of a sink struct escapes the check);
// out-of-module callees conservatively propagate input taint to their
// output but cannot introduce parameter dependencies of their own; and
// package-level variables collapse to the direct bit (a symbolic
// dependency makes no sense outside its function).

// tval is a taint value: the monotone join-semilattice element the
// fixpoint computes per variable, field container and function return.
type tval struct {
	direct bool
	params map[*types.Var]bool // symbolic parameter/receiver dependencies
}

func (v *tval) empty() bool { return v == nil || (!v.direct && len(v.params) == 0) }

// join merges src into dst, reporting growth. dst may be nil (allocated
// on demand); the (possibly new) value is returned.
func join(dst, src *tval) (*tval, bool) {
	if src.empty() {
		return dst, false
	}
	if dst == nil {
		dst = &tval{}
	}
	changed := false
	if src.direct && !dst.direct {
		dst.direct = true
		changed = true
	}
	for p := range src.params {
		if !dst.params[p] {
			if dst.params == nil {
				dst.params = map[*types.Var]bool{}
			}
			dst.params[p] = true
			changed = true
		}
	}
	return dst, changed
}

type taintEngine struct {
	cfg  Config
	g    *Graph
	pkgs []*Pkg

	vals       map[types.Object]*tval // locals and package vars
	paramTaint map[*types.Var]bool    // params fed an effectively-tainted arg
	fields     map[types.Object]bool  // struct fields with an effectively-tainted write
	retvals    map[*Node]*tval        // per-function return summaries
	isParam    map[*types.Var]bool    // every param/receiver object in the module

	changed  bool
	report   bool
	findings []Finding
}

// CheckWallTaintFn runs the walltaint check over the graph.
func CheckWallTaintFn(pkgs []*Pkg, g *Graph, cfg Config) []Finding {
	if len(cfg.SinkPkgs) == 0 {
		return nil
	}
	e := &taintEngine{
		cfg: cfg, g: g, pkgs: pkgs,
		vals:       map[types.Object]*tval{},
		paramTaint: map[*types.Var]bool{},
		fields:     map[types.Object]bool{},
		retvals:    map[*Node]*tval{},
		isParam:    paramSet(g),
	}
	// Fixpoint: each pass walks every function body, growing the taint
	// maps monotonically. The maps only grow, so this terminates; the
	// cap is a safety net, not a tuning knob.
	for i := 0; i < 40; i++ {
		e.changed = false
		for _, n := range g.Nodes {
			e.walkNode(n)
		}
		if !e.changed {
			break
		}
	}
	// Reporting pass over the converged state.
	e.report = true
	for _, n := range g.Nodes {
		e.walkNode(n)
	}
	sortFindings(e.findings)
	return e.findings
}

// eff is effective taint: the direct bit, or a symbolic dependency on a
// parameter some call site actually poisons. This is what findings and
// cross-call propagation fire on.
func (e *taintEngine) eff(v *tval) bool {
	if v == nil {
		return false
	}
	if v.direct {
		return true
	}
	for p := range v.params {
		if e.paramTaint[p] {
			return true
		}
	}
	return false
}

func (e *taintEngine) walkNode(n *Node) {
	p := n.Pkg
	n.WalkBody(func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.AssignStmt:
			e.assign(p, s.Lhs, s.Rhs)
		case *ast.RangeStmt:
			if v := e.eval(p, s.X); !v.empty() {
				e.assignVal(p, s.Key, v)
				e.assignVal(p, s.Value, v)
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				e.joinRet(n, e.eval(p, r))
			}
		case *ast.CallExpr:
			e.callEffects(p, s)
		case *ast.CompositeLit:
			e.compositeWrite(p, s)
		case *ast.IncDecStmt:
			// x++ neither introduces nor clears taint.
		}
		return true
	})
	// A function whose named results carry taint also returns it (naked
	// returns).
	if n.Sig != nil {
		res := n.Sig.Results()
		for i := 0; i < res.Len(); i++ {
			if v := res.At(i); v.Name() != "" {
				if lv := e.vals[v]; !lv.empty() {
					e.joinRet(n, lv)
				}
			}
		}
	}
}

func (e *taintEngine) joinRet(n *Node, v *tval) {
	nv, changed := join(e.retvals[n], v)
	if changed {
		e.retvals[n] = nv
		e.changed = true
	}
}

// assign propagates rhs taint into lhs targets and reports sink-field
// writes. Multi-value forms (`a, b := f()`) spread the call's taint over
// every target.
func (e *taintEngine) assign(p *Pkg, lhs, rhs []ast.Expr) {
	if len(lhs) != len(rhs) {
		if len(rhs) == 1 {
			if v := e.eval(p, rhs[0]); !v.empty() {
				for _, l := range lhs {
					e.assignVal(p, l, v)
				}
			}
		}
		return
	}
	for i := range lhs {
		if v := e.eval(p, rhs[i]); !v.empty() {
			e.assignVal(p, lhs[i], v)
		}
	}
}

// assignVal merges a taint value into an assignment target: variables
// directly, field selectors by field object (reporting sink writes),
// container element writes by tainting the container.
func (e *taintEngine) assignVal(p *Pkg, l ast.Expr, v *tval) {
	switch l := ast.Unparen(l).(type) {
	case nil:
		return
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := p.Info.Defs[l]
		if obj == nil {
			obj = p.Info.Uses[l]
		}
		vr, ok := obj.(*types.Var)
		if !ok {
			return
		}
		store := v
		if vr.Parent() != nil && vr.Pkg() != nil && vr.Parent() == vr.Pkg().Scope() {
			// Package-level var: symbolic parameter dependencies make no
			// sense outside their function; collapse to effective taint.
			store = &tval{direct: e.eff(v)}
		}
		nv, changed := join(e.vals[vr], store)
		if changed {
			e.vals[vr] = nv
			e.changed = true
		}
	case *ast.SelectorExpr:
		sel, ok := p.Info.Selections[l]
		if !ok {
			return
		}
		f, ok := sel.Obj().(*types.Var)
		if !ok || !f.IsField() {
			return
		}
		key := fieldKey(sel.Recv(), f)
		if matchAnyPattern(e.cfg.SanctionedFields, key) {
			return // declared wall column: write is the sanctioned use
		}
		if e.eff(v) {
			if !e.fields[f] {
				e.fields[f] = true
				e.changed = true
			}
			if e.report && f.Pkg() != nil && matchPkg(e.cfg.SinkPkgs, f.Pkg().Path()) {
				e.findings = append(e.findings, Finding{
					Pos:   p.Fset.Position(l.Pos()),
					Check: CheckWallTaint,
					Msg: fmt.Sprintf("wall-clock-derived value stored in %s, a field of routing-sink package %s",
						key, f.Pkg().Path()),
					Remedy: "compute the value from deterministic inputs, or declare the field a sanctioned wall column in the flow policy",
				})
			}
		}
	case *ast.IndexExpr:
		e.assignVal(p, l.X, v) // coarse: element write taints the container
	case *ast.StarExpr:
		e.assignVal(p, l.X, v)
	}
}

// compositeWrite reports tainted values placed into sink-struct fields
// by keyed composite literals (`core.Report{Score: wall}`).
func (e *taintEngine) compositeWrite(p *Pkg, lit *ast.CompositeLit) {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		f, ok := p.Info.Uses[key].(*types.Var)
		if !ok || !f.IsField() {
			continue
		}
		fk := fieldKey(p.Info.TypeOf(lit), f)
		if matchAnyPattern(e.cfg.SanctionedFields, fk) {
			continue
		}
		if !e.eff(e.eval(p, kv.Value)) {
			continue
		}
		if !e.fields[f] {
			e.fields[f] = true
			e.changed = true
		}
		if e.report && f.Pkg() != nil && matchPkg(e.cfg.SinkPkgs, f.Pkg().Path()) {
			e.findings = append(e.findings, Finding{
				Pos:   p.Fset.Position(kv.Pos()),
				Check: CheckWallTaint,
				Msg: fmt.Sprintf("wall-clock-derived value stored in %s, a field of routing-sink package %s",
					fk, f.Pkg().Path()),
				Remedy: "compute the value from deterministic inputs, or declare the field a sanctioned wall column in the flow policy",
			})
		}
	}
}

// callEffects handles a call statementwise: effectively-tainted
// arguments poison the callee's parameter objects (paramTaint), and a
// tainted argument crossing from a non-sink package into a sink-package
// function is a finding.
func (e *taintEngine) callEffects(p *Pkg, call *ast.CallExpr) {
	if isConversion(p, call) {
		return
	}
	callee := calleeOf(p, call)
	targets := e.callTargets(p, call, callee)
	sink := callee != nil && callee.Pkg() != nil && matchPkg(e.cfg.SinkPkgs, callee.Pkg().Path())
	fromSink := matchPkg(e.cfg.SinkPkgs, p.Path)
	for i, arg := range call.Args {
		av := e.eval(p, arg)
		if !e.eff(av) {
			continue
		}
		for _, node := range targets {
			e.poisonParam(node, i)
		}
		if e.report && sink && !fromSink {
			e.findings = append(e.findings, Finding{
				Pos:   p.Fset.Position(arg.Pos()),
				Check: CheckWallTaint,
				Msg: fmt.Sprintf("wall-clock-derived value passed to %s in routing-sink package %s",
					funcKey(callee), callee.Pkg().Path()),
				Remedy: "pass deterministic inputs across the pipeline boundary; report host wall time through a sanctioned wall column instead",
			})
		}
	}
	// A method call on an effectively-tainted receiver poisons the
	// receiver parameter.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && e.eff(e.eval(p, sel.X)) {
		for _, node := range targets {
			if node.Sig != nil && node.Sig.Recv() != nil {
				e.poison(node.Sig.Recv())
			}
		}
	}
}

// callTargets resolves a call to its module-internal candidate nodes:
// the static callee, or the recorded function values of a variable.
func (e *taintEngine) callTargets(p *Pkg, call *ast.CallExpr, callee *types.Func) []*Node {
	if callee != nil {
		if n := e.g.ByFunc[callee]; n != nil {
			return []*Node{n}
		}
		return nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		if n := e.g.ByLit[fun]; n != nil {
			return []*Node{n}
		}
	case *ast.Ident:
		if v, ok := p.Info.Uses[fun].(*types.Var); ok {
			return e.g.VarFuncs[v]
		}
	}
	return nil
}

func (e *taintEngine) poisonParam(n *Node, i int) {
	if n.Sig == nil {
		return
	}
	params := n.Sig.Params()
	if n.Sig.Variadic() && i >= params.Len()-1 {
		i = params.Len() - 1
	}
	if i >= 0 && i < params.Len() {
		e.poison(params.At(i))
	}
}

func (e *taintEngine) poison(p *types.Var) {
	if !e.paramTaint[p] {
		e.paramTaint[p] = true
		e.changed = true
	}
}

// ownParam reports whether p is a parameter or the receiver of n.
func ownParam(n *Node, p *types.Var) (int, bool) {
	if n.Sig == nil {
		return 0, false
	}
	if r := n.Sig.Recv(); r != nil && r == p {
		return -1, true
	}
	for i := 0; i < n.Sig.Params().Len(); i++ {
		if n.Sig.Params().At(i) == p {
			return i, true
		}
	}
	return 0, false
}

// eval computes an expression's taint value under the current fixpoint
// state. The result is fresh or shared-read-only; callers must not
// mutate it (join copies).
func (e *taintEngine) eval(p *Pkg, expr ast.Expr) *tval {
	switch x := ast.Unparen(expr).(type) {
	case nil:
		return nil
	case *ast.Ident:
		obj := p.Info.Uses[x]
		if obj == nil {
			obj = p.Info.Defs[x]
		}
		vr, ok := obj.(*types.Var)
		if !ok {
			return nil
		}
		v := e.vals[vr]
		if vr.IsField() {
			return v
		}
		// A parameter contributes itself as a symbolic dependency on top
		// of anything assigned to it locally.
		if e.isParam[vr] {
			out := &tval{params: map[*types.Var]bool{vr: true}}
			out, _ = join(out, &tval{direct: v != nil && v.direct})
			if v != nil {
				out, _ = join(out, v)
			}
			return out
		}
		return v
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[x]; ok {
			if f, ok := sel.Obj().(*types.Var); ok && f.IsField() {
				if matchAnyPattern(e.cfg.SanctionedFields, fieldKey(sel.Recv(), f)) {
					return nil // sanctioned read declassifies
				}
				// Field-granular on purpose: the container's taint does
				// NOT smear into every field read. Observability structs
				// (tracers, stopwatches) legitimately hold wall fields
				// and thread through the whole pipeline; only extracting
				// a tainted field yields tainted data.
				return &tval{direct: e.fields[f]}
			}
			return nil // method value
		}
		// Package-qualified var (pkg.V).
		if vr, ok := p.Info.Uses[x.Sel].(*types.Var); ok {
			return e.vals[vr]
		}
		return nil
	case *ast.CallExpr:
		return e.evalCall(p, x)
	case *ast.BinaryExpr:
		out, _ := join(nil, orEmpty(e.eval(p, x.X)))
		out, _ = join(out, orEmpty(e.eval(p, x.Y)))
		return out
	case *ast.UnaryExpr:
		return e.eval(p, x.X)
	case *ast.StarExpr:
		return e.eval(p, x.X)
	case *ast.IndexExpr:
		return e.eval(p, x.X)
	case *ast.SliceExpr:
		return e.eval(p, x.X)
	case *ast.TypeAssertExpr:
		return e.eval(p, x.X)
	case *ast.CompositeLit:
		// Keyed struct-field slots mark the field object (compositeWrite)
		// instead of tainting the whole value — a Tracer{epoch: now}
		// is an observability handle, not wall data. Slice, array and map
		// elements taint the container: those ARE the data.
		var out *tval
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if key, ok := kv.Key.(*ast.Ident); ok {
					if f, ok := p.Info.Uses[key].(*types.Var); ok && f.IsField() {
						continue // field-granular: see compositeWrite
					}
				}
				out, _ = join(out, orEmpty(e.eval(p, kv.Value)))
				continue
			}
			out, _ = join(out, orEmpty(e.eval(p, elt)))
		}
		return out
	}
	return nil
}

// evalCall computes a call expression's taint: the seeds, module
// callees via their parameter-polymorphic summaries, out-of-module
// callees conservatively (input taint flows to the output).
func (e *taintEngine) evalCall(p *Pkg, x *ast.CallExpr) *tval {
	if isConversion(p, x) {
		if len(x.Args) == 1 {
			return e.eval(p, x.Args[0])
		}
		return nil
	}
	callee := calleeOf(p, x)
	if callee != nil {
		switch funcKey(callee) {
		case "time.Now", "time.Since":
			return &tval{direct: true} // the seeds
		}
	}
	targets := e.callTargets(p, x, callee)
	if len(targets) > 0 {
		var out *tval
		for _, n := range targets {
			out, _ = join(out, orEmpty(e.substitute(p, x, n)))
		}
		return out
	}
	// Out-of-module callee (or unresolved dynamic call): conservative —
	// input taint flows to the output (duration.Seconds, fmt.Sprintf).
	var out *tval
	for _, arg := range x.Args {
		out, _ = join(out, orEmpty(e.eval(p, arg)))
	}
	if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
		if _, isSel := p.Info.Selections[sel]; isSel {
			out, _ = join(out, orEmpty(e.eval(p, sel.X)))
		}
	}
	return out
}

// substitute maps a callee's return summary into the caller's context:
// the callee's own parameter dependencies are replaced by the taint of
// the corresponding call-site arguments; dependencies captured from an
// enclosing function (closures) pass through unchanged.
func (e *taintEngine) substitute(p *Pkg, call *ast.CallExpr, n *Node) *tval {
	rv := e.retvals[n]
	if rv.empty() {
		return nil
	}
	out := &tval{direct: rv.direct}
	for dep := range rv.params {
		idx, own := ownParam(n, dep)
		if !own {
			// Captured from an enclosing scope: keep symbolic.
			out, _ = join(out, &tval{params: map[*types.Var]bool{dep: true}})
			continue
		}
		var argv *tval
		if idx == -1 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				argv = e.eval(p, sel.X)
			}
		} else if n.Sig.Variadic() && idx == n.Sig.Params().Len()-1 {
			for i := idx; i < len(call.Args); i++ {
				argv, _ = join(argv, orEmpty(e.eval(p, call.Args[i])))
			}
		} else if idx < len(call.Args) {
			argv = e.eval(p, call.Args[idx])
		}
		if argv != nil {
			out, _ = join(out, argv)
		}
		// The parameter object itself may also be globally poisoned;
		// keeping the dependency preserves that path.
		out, _ = join(out, &tval{params: map[*types.Var]bool{dep: true}})
	}
	return out
}

func orEmpty(v *tval) *tval {
	if v == nil {
		return &tval{}
	}
	return v
}

// paramSet indexes every parameter and receiver object declared by the
// module's functions, so ident evaluation can recognize them. (go/types
// only grew a Var.Kind accessor after the toolchain this repo targets.)
func paramSet(g *Graph) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	for _, n := range g.Nodes {
		if n.Sig == nil {
			continue
		}
		if r := n.Sig.Recv(); r != nil {
			out[r] = true
		}
		for i := 0; i < n.Sig.Params().Len(); i++ {
			out[n.Sig.Params().At(i)] = true
		}
	}
	return out
}
