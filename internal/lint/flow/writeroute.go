package flow

import (
	"fmt"
	"go/ast"
	"strings"
)

// CheckWriteRouteFn enforces the crash-safety contract tree-wide: every
// durable artifact write goes through the allowed writer packages
// (internal/atomicio's temp-file + fsync + rename protocol). A raw
// os.Create / os.WriteFile / os.OpenFile-for-write anywhere else can
// leave a torn file behind a crash — exactly what the run journal and
// bench artifacts must never do.
//
// Temp-path writes are exempt: a path expression that visibly derives
// from os.TempDir or a *.TempDir() helper (testing.T.TempDir) is scratch
// space, not an artifact. Write intent for os.OpenFile is decided
// syntactically from the O_* flag names in the argument — numeric
// comparison would be platform-dependent and a dynamic flag expression
// is conservatively treated as a write.
func CheckWriteRouteFn(pkgs []*Pkg, cfg Config) []Finding {
	if len(cfg.WriteAllowedPkgs) == 0 {
		return nil
	}
	var findings []Finding
	for _, p := range pkgs {
		if matchPkg(cfg.WriteAllowedPkgs, p.Path) {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeOf(p, call)
				if callee == nil {
					return true
				}
				var pathArg ast.Expr
				switch funcKey(callee) {
				case "os.Create", "os.WriteFile":
					if len(call.Args) > 0 {
						pathArg = call.Args[0]
					}
				case "os.OpenFile":
					if len(call.Args) < 2 || !openFlagsWrite(call.Args[1]) {
						return true
					}
					pathArg = call.Args[0]
				default:
					return true
				}
				if pathArg != nil && tempPath(p, pathArg) {
					return true
				}
				findings = append(findings, Finding{
					Pos:   p.Fset.Position(call.Pos()),
					Check: CheckWriteRoute,
					Msg: fmt.Sprintf("raw %s write outside the crash-safe writer packages (%s)",
						funcKey(callee), strings.Join(cfg.WriteAllowedPkgs, ", ")),
					Remedy: "route the write through internal/atomicio so a crash can't leave a torn artifact",
				})
				return true
			})
		}
	}
	sortFindings(findings)
	return findings
}

// openFlagsWrite decides write intent from the O_* names spelled in an
// os.OpenFile flags argument. No O_* names at all means the flags are
// computed elsewhere — conservatively a write.
func openFlagsWrite(flags ast.Expr) bool {
	write, sawName := false, false
	ast.Inspect(flags, func(n ast.Node) bool {
		var name string
		switch x := n.(type) {
		case *ast.SelectorExpr:
			name = x.Sel.Name
		case *ast.Ident:
			name = x.Name
		default:
			return true
		}
		if strings.HasPrefix(name, "O_") {
			sawName = true
			switch name {
			case "O_WRONLY", "O_RDWR", "O_CREATE", "O_TRUNC", "O_APPEND":
				write = true
			}
		}
		return true
	})
	return write || !sawName
}

// tempPath reports whether a path expression visibly derives from a
// temp-dir helper.
func tempPath(p *Pkg, path ast.Expr) bool {
	temp := false
	ast.Inspect(path, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "TempDir" {
			temp = true
			return false
		}
		return true
	})
	return temp
}
