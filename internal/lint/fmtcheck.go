package lint

import (
	"bytes"
	"go/format"
	"go/token"
	"os"
	"path/filepath"
)

// position anchors a whole-file finding at line 1.
func position(file string) token.Position {
	return token.Position{Filename: file, Line: 1}
}

// checkGofmt verifies every .go file of the given package directories —
// tests included — is gofmt-formatted, so formatting drift fails tier 1
// instead of polluting later diffs.
func checkGofmt(dirs []string) []Finding {
	var out []Finding
	for _, dir := range dirs {
		names, err := goFilesIn(dir)
		if err != nil {
			continue
		}
		tests, _ := TestGoFiles(dir)
		for _, name := range append(names, tests...) {
			full := filepath.Join(dir, name)
			src, err := os.ReadFile(full)
			if err != nil {
				continue
			}
			formatted, err := format.Source(src)
			if err != nil {
				// Unparseable files surface as build/type errors elsewhere.
				continue
			}
			if !bytes.Equal(src, formatted) {
				out = append(out, Finding{
					Pos:    position(full),
					Check:  CheckGofmt,
					Msg:    "file is not gofmt-formatted",
					Remedy: "run gofmt -w " + name,
				})
			}
		}
	}
	return out
}
