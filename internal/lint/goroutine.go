package lint

import "go/ast"

// checkGoroutine flags bare go statements outside the sanctioned
// executor packages (internal/par, internal/taskflow, internal/obs).
// All worker spawning must go through the pool or the taskflow
// executor: they are what make parallel execution deterministic and
// keep the tracer's one-goroutine-per-lane invariant true.
func checkGoroutine(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			out = append(out, Finding{
				Pos:    p.Fset.Position(gs.Pos()),
				Check:  CheckGoroutine,
				Msg:    "bare go statement outside the executor packages",
				Remedy: "run the work through par.Pool or taskflow, or suppress with //lint:ignore goroutine-hygiene <reason>",
			})
			return true
		})
	}
	return out
}
