// Package lint is fastgr's static-analysis net: a small analyzer
// framework built only on the standard library's go/parser, go/ast and
// go/types (no golang.org/x/tools — the tree must build offline and
// dependency-free) plus the checks that machine-enforce the repo's two
// load-bearing contracts:
//
//   - determinism — routed geometry, modeled times and reported quality
//     are bit-identical at every ExecWorkers count (package par's
//     contract, proven by core's determinism suite);
//   - passive observability — package obs may time things, but nil
//     handles are no-ops and the wall clock never feeds a result.
//
// The per-function checks are complemented by the interprocedural layer
// in the flow subpackage: a module-wide call graph with a forward taint
// engine (walltaint), a tree-wide crash-safe-write check (writeroute), a
// worker-reachability engine (shardisolation) and a metrics/exposition
// consistency check (promdrift). The flow checks are cross-package by
// construction, so their suppressions match by owning file, like
// atomic-consistency.
//
// Checks report Findings; a finding can be suppressed with a
//
//	//lint:ignore <check> <reason>
//
// comment. A suppression covers the line it sits on and — when the next
// line opens a declaration or statement — that whole node, so one
// comment on a func declaration covers every finding inside it. A
//
//	//lint:file-ignore <check> <reason>
//
// comment anywhere in a file covers every finding of that check in the
// file. Suppressions are themselves verified: one without a reason, or
// one that matches no finding, is an error — the suppression table can
// only shrink.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"

	"fastgr/internal/lint/flow"
	"fastgr/internal/obs"
)

// Check names. The policy table and suppression comments refer to these.
// The last four are the interprocedural flow checks, re-exported from
// the flow subpackage so callers need only this package's vocabulary.
const (
	CheckDetwall     = "detwall"
	CheckDetmap      = "detmap"
	CheckGoroutine   = "goroutine-hygiene"
	CheckRecover     = "recover-hygiene"
	CheckObsNilsafe  = "obs-nilsafe"
	CheckAtomic      = "atomic-consistency"
	CheckSuppression = "suppression" // meta-check: malformed or unused //lint:ignore
	CheckGofmt       = "gofmt"

	CheckWallTaint      = flow.CheckWallTaint
	CheckWriteRoute     = flow.CheckWriteRoute
	CheckShardIsolation = flow.CheckShardIsolation
	CheckPromDrift      = flow.CheckPromDrift
)

// crossPackageChecks are the checks whose findings a single package's
// pass cannot produce: they are matched against suppressions by the file
// that owns each finding, after every package is analyzed.
var crossPackageChecks = map[string]bool{
	CheckAtomic:         true,
	CheckWallTaint:      true,
	CheckWriteRoute:     true,
	CheckShardIsolation: true,
	CheckPromDrift:      true,
}

// Finding is one rule violation at a position.
type Finding struct {
	Pos    token.Position
	Check  string
	Msg    string
	Remedy string // one-line fix hint, rendered after the message
}

// String renders the finding as file:line: [check] message (remedy),
// with the file relative to dir when possible.
func (f Finding) String() string { return f.Render("") }

// Render is String with file paths shown relative to dir.
func (f Finding) Render(dir string) string {
	file := f.Pos.Filename
	if dir != "" {
		if rel, err := filepath.Rel(dir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	s := fmt.Sprintf("%s:%d: [%s] %s", file, f.Pos.Line, f.Check, f.Msg)
	if f.Remedy != "" {
		s += " (" + f.Remedy + ")"
	}
	return s
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
}

// CheckStat is the cost and yield of one analysis phase: the named
// checks, plus "load" (parsing + type checking) and "flowgraph" (call
// graph construction shared by the flow checks). Findings counts are
// post-suppression — what a run actually reports.
type CheckStat struct {
	Check    string
	WallMs   float64
	Findings int
}

// Runner applies the policy table to a set of packages and returns the
// surviving findings.
type Runner struct {
	Loader *Loader
	Policy Policy
	// Gofmt additionally verifies that every .go file (tests included)
	// is gofmt-formatted — the driver's -fmt flag.
	Gofmt bool

	statMs map[string]float64
	counts map[string]int
}

// Stats returns per-phase wall time and finding counts for the last Run,
// sorted by phase name. Timing goes through obs.StartStopwatch — the
// analyzer obeys the detwall contract it enforces.
func (r *Runner) Stats() []CheckStat {
	keys := map[string]bool{}
	for k := range r.statMs {
		keys[k] = true
	}
	for k := range r.counts {
		keys[k] = true
	}
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	out := make([]CheckStat, 0, len(names))
	for _, k := range names {
		out = append(out, CheckStat{Check: k, WallMs: r.statMs[k], Findings: r.counts[k]})
	}
	return out
}

// Run lints the packages matched by the patterns (driver syntax: a
// directory, or dir/... for a recursive walk) and returns all findings,
// sorted by position. An empty slice means the tree is clean.
func (r *Runner) Run(patterns ...string) ([]Finding, error) {
	r.statMs = map[string]float64{}
	r.counts = map[string]int{}
	timed := func(phase string, fn func() []Finding) []Finding {
		sw := obs.StartStopwatch()
		fs := fn()
		r.statMs[phase] += float64(sw.Elapsed().Microseconds()) / 1e3
		return fs
	}

	var pkgs []*Package
	var loadErr error
	timed("load", func() []Finding {
		var dirs []string
		if dirs, loadErr = r.Loader.PackageDirs(patterns); loadErr != nil {
			return nil
		}
		for _, dir := range dirs {
			p, err := r.Loader.LoadDir(dir)
			if err != nil {
				loadErr = err
				return nil
			}
			pkgs = append(pkgs, p)
		}
		return nil
	})
	if loadErr != nil {
		return nil, loadErr
	}

	var findings []Finding
	for _, p := range pkgs {
		p := p
		var raw []Finding
		if r.Policy.detwallApplies(p.Path) {
			raw = append(raw, timed(CheckDetwall, func() []Finding { return checkDetwall(p) })...)
		}
		if r.Policy.detmapApplies(p.Path) {
			raw = append(raw, timed(CheckDetmap, func() []Finding { return checkDetmap(p) })...)
		}
		if !r.Policy.goroutineAllowed(p.Path) {
			raw = append(raw, timed(CheckGoroutine, func() []Finding { return checkGoroutine(p) })...)
		}
		if !r.Policy.recoverAllowed(p.Path) {
			raw = append(raw, timed(CheckRecover, func() []Finding { return checkRecover(p) })...)
		}
		if r.Policy.nilsafeApplies(p.Path) {
			raw = append(raw, timed(CheckObsNilsafe, func() []Finding { return checkNilsafe(p) })...)
		}
		findings = append(findings, applySuppressions(p, raw)...)
	}

	// Cross-package checks: atomic-consistency (a field atomically
	// written in one package and plainly read in another is exactly the
	// bug class) plus the interprocedural flow layer.
	cross := timed(CheckAtomic, func() []Finding { return checkAtomic(pkgs) })
	if r.Policy.Flow.Enabled() {
		fpkgs := make([]*flow.Pkg, len(pkgs))
		for i, p := range pkgs {
			fpkgs[i] = &flow.Pkg{Path: p.Path, Fset: p.Fset, Files: p.Files, Info: p.Info, Types: p.Types}
		}
		var g *flow.Graph
		timed("flowgraph", func() []Finding {
			g = flow.Build(fpkgs, r.Policy.Flow)
			return nil
		})
		cross = append(cross, timed(CheckWallTaint, func() []Finding {
			return flowFindings(flow.CheckWallTaintFn(fpkgs, g, r.Policy.Flow))
		})...)
		cross = append(cross, timed(CheckWriteRoute, func() []Finding {
			return flowFindings(flow.CheckWriteRouteFn(fpkgs, r.Policy.Flow))
		})...)
		cross = append(cross, timed(CheckShardIsolation, func() []Finding {
			return flowFindings(flow.CheckShardIsolationFn(fpkgs, g, r.Policy.Flow))
		})...)
		cross = append(cross, timed(CheckPromDrift, func() []Finding {
			return flowFindings(flow.CheckPromDriftFn(fpkgs, r.Policy.Flow))
		})...)
	}
	findings = append(findings, applySuppressionsByFile(pkgs, cross)...)

	if r.Gofmt {
		findings = append(findings, timed(CheckGofmt, func() []Finding { return checkGofmt(pkgsDirs(pkgs)) })...)
	}
	sortFindings(findings)
	for _, f := range findings {
		r.counts[f.Check]++
	}
	return findings, nil
}

func pkgsDirs(pkgs []*Package) []string {
	dirs := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		dirs = append(dirs, p.Dir)
	}
	return dirs
}

// flowFindings mirrors flow findings into this package's Finding type.
func flowFindings(fs []flow.Finding) []Finding {
	out := make([]Finding, 0, len(fs))
	for _, f := range fs {
		out = append(out, Finding{Pos: f.Pos, Check: f.Check, Msg: f.Msg, Remedy: f.Remedy})
	}
	return out
}

// applySuppressions matches a package's raw findings against its
// //lint:ignore comments: matched findings are dropped, malformed or
// unused suppressions become findings of their own.
func applySuppressions(p *Package, raw []Finding) []Finding {
	var sups []*suppression
	for _, s := range collectSuppressions(p) {
		if !crossPackageChecks[s.check] { // cross-package checks match later
			sups = append(sups, s)
		}
	}
	return matchSuppressions(sups, raw)
}

// applySuppressionsByFile applies suppressions for findings produced by
// the cross-package checks: each finding is matched against the
// suppressions of the package that owns its file. Suppressions that a
// per-package pass already consumed are not re-collected here — only
// suppressions naming the cross-package checks are considered.
func applySuppressionsByFile(pkgs []*Package, raw []Finding) []Finding {
	var out []Finding
	for _, p := range pkgs {
		var sups []*suppression
		for _, s := range collectSuppressions(p) {
			if crossPackageChecks[s.check] {
				sups = append(sups, s)
			}
		}
		var mine []Finding
		for _, f := range raw {
			for _, name := range p.FileNames {
				if f.Pos.Filename == name {
					mine = append(mine, f)
					break
				}
			}
		}
		out = append(out, matchSuppressions(sups, mine)...)
	}
	return out
}

// suppression is one parsed //lint:ignore or //lint:file-ignore comment.
type suppression struct {
	pos      token.Position
	check    string
	reason   string
	fileWide bool // //lint:file-ignore: covers the whole file
	endLine  int  // last covered line; the full span of the decl/stmt the comment annotates
	used     bool
}

// collectSuppressions parses every //lint:ignore and //lint:file-ignore
// comment of the package's non-test files and computes each line
// suppression's coverage span: the comment's own line through the end of
// the declaration or statement opening on that line or the next — so a
// suppression above a func declaration covers the whole function, and
// one above a loop covers the whole loop.
func collectSuppressions(p *Package) []*suppression {
	var sups []*suppression
	for _, f := range p.Files {
		spans := nodeSpans(p, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				fileWide := false
				rest, ok := strings.CutPrefix(text, "lint:ignore")
				if !ok {
					if rest, ok = strings.CutPrefix(text, "lint:file-ignore"); !ok {
						continue
					}
					fileWide = true
				}
				s := &suppression{pos: p.Fset.Position(c.Pos()), fileWide: fileWide}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					s.check = fields[0]
					s.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
				}
				if !fileWide {
					line := s.pos.Line
					s.endLine = line + 1
					if end := spans[line]; end > s.endLine {
						s.endLine = end
					}
					if end := spans[line+1]; end > s.endLine {
						s.endLine = end
					}
				}
				sups = append(sups, s)
			}
		}
	}
	return sups
}

// nodeSpans maps each line on which a declaration or statement starts to
// the last line of the outermost such node — the coverage a suppression
// annotating that line earns. The file node itself is excluded (file
// scope is what //lint:file-ignore is for).
func nodeSpans(p *Package, f *ast.File) map[int]int {
	spans := map[int]int{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.File, *ast.Comment, *ast.CommentGroup:
			return true
		}
		start := p.Fset.Position(n.Pos()).Line
		end := p.Fset.Position(n.End()).Line
		if end > spans[start] {
			spans[start] = end
		}
		return true
	})
	return spans
}

// matchSuppressions drops findings covered by a suppression for the same
// check — within its line span, or anywhere in the file for a
// file-ignore — then reports malformed (no reason) and unused
// suppressions as findings.
func matchSuppressions(sups []*suppression, raw []Finding) []Finding {
	var out []Finding
	for _, f := range raw {
		suppressed := false
		for _, s := range sups {
			if s.check != f.Check || s.pos.Filename != f.Pos.Filename {
				continue
			}
			if s.fileWide || (f.Pos.Line >= s.pos.Line && f.Pos.Line <= s.endLine) {
				s.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	for _, s := range sups {
		form := "//lint:ignore"
		if s.fileWide {
			form = "//lint:file-ignore"
		}
		switch {
		case s.check == "" || s.reason == "":
			out = append(out, Finding{
				Pos:    s.pos,
				Check:  CheckSuppression,
				Msg:    fmt.Sprintf("malformed suppression: want %s <check> <reason>", form),
				Remedy: "state which check is silenced and why",
			})
		case !s.used && s.fileWide:
			out = append(out, Finding{
				Pos:    s.pos,
				Check:  CheckSuppression,
				Msg:    fmt.Sprintf("unused file-ignore for %q: no finding of that check in this file", s.check),
				Remedy: "delete the comment; suppressions must be load-bearing",
			})
		case !s.used:
			out = append(out, Finding{
				Pos:    s.pos,
				Check:  CheckSuppression,
				Msg:    fmt.Sprintf("unused suppression for %q: no finding in its scope (lines %d-%d)", s.check, s.pos.Line, s.endLine),
				Remedy: "delete the comment; suppressions must be load-bearing",
			})
		}
	}
	return out
}
