// Package lint is fastgr's static-analysis net: a small analyzer
// framework built only on the standard library's go/parser, go/ast and
// go/types (no golang.org/x/tools — the tree must build offline and
// dependency-free) plus the checks that machine-enforce the repo's two
// load-bearing contracts:
//
//   - determinism — routed geometry, modeled times and reported quality
//     are bit-identical at every ExecWorkers count (package par's
//     contract, proven by core's determinism suite);
//   - passive observability — package obs may time things, but nil
//     handles are no-ops and the wall clock never feeds a result.
//
// Checks report Findings; a finding can be suppressed with a
//
//	//lint:ignore <check> <reason>
//
// comment on, or on the line above, the offending line. Suppressions
// are themselves verified: one without a reason, or one that matches no
// finding, is an error — the suppression table can only shrink.
package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Check names. The policy table and suppression comments refer to these.
const (
	CheckDetwall     = "detwall"
	CheckDetmap      = "detmap"
	CheckGoroutine   = "goroutine-hygiene"
	CheckRecover     = "recover-hygiene"
	CheckObsNilsafe  = "obs-nilsafe"
	CheckAtomic      = "atomic-consistency"
	CheckSuppression = "suppression" // meta-check: malformed or unused //lint:ignore
	CheckGofmt       = "gofmt"
)

// Finding is one rule violation at a position.
type Finding struct {
	Pos    token.Position
	Check  string
	Msg    string
	Remedy string // one-line fix hint, rendered after the message
}

// String renders the finding as file:line: [check] message (remedy),
// with the file relative to dir when possible.
func (f Finding) String() string { return f.Render("") }

// Render is String with file paths shown relative to dir.
func (f Finding) Render(dir string) string {
	file := f.Pos.Filename
	if dir != "" {
		if rel, err := filepath.Rel(dir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	s := fmt.Sprintf("%s:%d: [%s] %s", file, f.Pos.Line, f.Check, f.Msg)
	if f.Remedy != "" {
		s += " (" + f.Remedy + ")"
	}
	return s
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
}

// Runner applies the policy table to a set of packages and returns the
// surviving findings.
type Runner struct {
	Loader *Loader
	Policy Policy
	// Gofmt additionally verifies that every .go file (tests included)
	// is gofmt-formatted — the driver's -fmt flag.
	Gofmt bool
}

// Run lints the packages matched by the patterns (driver syntax: a
// directory, or dir/... for a recursive walk) and returns all findings,
// sorted by position. An empty slice means the tree is clean.
func (r *Runner) Run(patterns ...string) ([]Finding, error) {
	dirs, err := r.Loader.PackageDirs(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		p, err := r.Loader.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}

	var findings []Finding
	for _, p := range pkgs {
		var raw []Finding
		if r.Policy.detwallApplies(p.Path) {
			raw = append(raw, checkDetwall(p)...)
		}
		if r.Policy.detmapApplies(p.Path) {
			raw = append(raw, checkDetmap(p)...)
		}
		if !r.Policy.goroutineAllowed(p.Path) {
			raw = append(raw, checkGoroutine(p)...)
		}
		if !r.Policy.recoverAllowed(p.Path) {
			raw = append(raw, checkRecover(p)...)
		}
		if r.Policy.nilsafeApplies(p.Path) {
			raw = append(raw, checkNilsafe(p)...)
		}
		findings = append(findings, applySuppressions(p, raw)...)
	}

	// atomic-consistency is cross-package: a field atomically written in
	// one package and plainly read in another is exactly the bug class.
	atomicRaw := checkAtomic(pkgs)
	findings = append(findings, applySuppressionsByFile(pkgs, atomicRaw)...)

	if r.Gofmt {
		findings = append(findings, checkGofmt(dirs)...)
	}
	sortFindings(findings)
	return findings, nil
}

// applySuppressions matches a package's raw findings against its
// //lint:ignore comments: matched findings are dropped, malformed or
// unused suppressions become findings of their own.
func applySuppressions(p *Package, raw []Finding) []Finding {
	var sups []*suppression
	for _, s := range collectSuppressions(p) {
		if s.check != CheckAtomic { // cross-package checks match later
			sups = append(sups, s)
		}
	}
	return matchSuppressions(sups, raw)
}

// applySuppressionsByFile applies suppressions for findings produced by
// a cross-package check: each finding is matched against the
// suppressions of the package that owns its file. Suppressions that a
// per-package pass already consumed are not re-collected here — only
// suppressions naming the cross-package checks are considered.
func applySuppressionsByFile(pkgs []*Package, raw []Finding) []Finding {
	var out []Finding
	for _, p := range pkgs {
		var sups []*suppression
		for _, s := range collectSuppressions(p) {
			if s.check == CheckAtomic {
				sups = append(sups, s)
			}
		}
		var mine []Finding
		for _, f := range raw {
			for _, name := range p.FileNames {
				if f.Pos.Filename == name {
					mine = append(mine, f)
					break
				}
			}
		}
		out = append(out, matchSuppressions(sups, mine)...)
	}
	return out
}

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	pos    token.Position
	check  string
	reason string
	used   bool
}

// collectSuppressions parses every //lint:ignore comment of the
// package's non-test files.
func collectSuppressions(p *Package) []*suppression {
	var sups []*suppression
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "lint:ignore")
				if !ok {
					continue
				}
				s := &suppression{pos: p.Fset.Position(c.Pos())}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					s.check = fields[0]
					s.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
				}
				sups = append(sups, s)
			}
		}
	}
	return sups
}

// matchSuppressions drops findings covered by a suppression for the
// same check on the same or the preceding line, then reports malformed
// (no reason) and unused suppressions as findings.
func matchSuppressions(sups []*suppression, raw []Finding) []Finding {
	var out []Finding
	for _, f := range raw {
		suppressed := false
		for _, s := range sups {
			if s.check != f.Check || s.pos.Filename != f.Pos.Filename {
				continue
			}
			if s.pos.Line == f.Pos.Line || s.pos.Line == f.Pos.Line-1 {
				s.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	for _, s := range sups {
		switch {
		case s.check == "" || s.reason == "":
			out = append(out, Finding{
				Pos:    s.pos,
				Check:  CheckSuppression,
				Msg:    "malformed suppression: want //lint:ignore <check> <reason>",
				Remedy: "state which check is silenced and why",
			})
		case !s.used:
			out = append(out, Finding{
				Pos:    s.pos,
				Check:  CheckSuppression,
				Msg:    fmt.Sprintf("unused suppression for %q: no finding on this or the next line", s.check),
				Remedy: "delete the comment; suppressions must be load-bearing",
			})
		}
	}
	return out
}
