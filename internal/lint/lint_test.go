package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the fixture golden file")

// TestFixtures runs the full suite over the fixture module and compares
// the rendered findings against the golden file. Every check has a
// firing, a clean and a suppressed fixture; the golden file is the
// contract for what fires and — by omission — what must not.
func TestFixtures(t *testing.T) {
	moduleDir, err := filepath.Abs(filepath.Join("testdata", "mod"))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Loader: loader, Policy: FixturePolicy()}
	findings, err := runner.Run("./...")
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, f := range findings {
		lines = append(lines, f.Render(moduleDir))
	}
	got := strings.Join(lines, "\n") + "\n"

	golden := filepath.Join("testdata", "expected.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run `go test -run TestFixtures -update ./internal/lint` to create): %v", err)
	}
	want := string(wantBytes)
	if got != want {
		t.Errorf("fixture findings diverge from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestFixtureChecksCovered pins the golden file to the contract that
// every check — the flow layer included — fires at least once on the
// fixtures, so a check that silently stops firing cannot pass by
// emptying the golden file.
func TestFixtureChecksCovered(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "expected.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, check := range []string{
		CheckDetwall, CheckDetmap, CheckGoroutine, CheckRecover,
		CheckObsNilsafe, CheckAtomic, CheckSuppression,
		CheckWallTaint, CheckWriteRoute, CheckShardIsolation, CheckPromDrift,
	} {
		if !strings.Contains(string(data), "["+check+"]") {
			t.Errorf("golden file has no firing case for %s", check)
		}
	}
}

// TestSelfCheck runs the -self mode the tier1 gate wires in: the
// analyzer's own packages must be clean under the default policy and
// the fixture module must reproduce its golden file.
func TestSelfCheck(t *testing.T) {
	moduleDir, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	problems, err := SelfCheck(moduleDir, filepath.Join("internal", "lint"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// TestLintTreeClean runs the full suite, gofmt included, over the real
// repository: `go test ./...` alone now catches any new violation of
// the determinism, observability and flow contracts.
func TestLintTreeClean(t *testing.T) {
	moduleDir, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Loader: loader, Policy: DefaultPolicy(), Gofmt: true}
	findings, err := runner.Run("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Error(f.Render(moduleDir))
	}
}

// TestRunnerStats pins the per-check timing report the bench harness
// stamps into BENCH_lint.json: every enabled check appears, with the
// load and flowgraph phases, and finding counts match the golden file.
func TestRunnerStats(t *testing.T) {
	moduleDir, err := filepath.Abs(filepath.Join("testdata", "mod"))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Loader: loader, Policy: FixturePolicy()}
	findings, err := runner.Run("./...")
	if err != nil {
		t.Fatal(err)
	}
	stats := runner.Stats()
	byCheck := map[string]CheckStat{}
	total := 0
	for _, s := range stats {
		byCheck[s.Check] = s
		total += s.Findings
	}
	if total != len(findings) {
		t.Errorf("stats count %d findings, runner returned %d", total, len(findings))
	}
	for _, phase := range []string{
		"load", "flowgraph", CheckDetwall, CheckDetmap, CheckGoroutine,
		CheckRecover, CheckObsNilsafe, CheckAtomic,
		CheckWallTaint, CheckWriteRoute, CheckShardIsolation, CheckPromDrift,
	} {
		if _, ok := byCheck[phase]; !ok {
			t.Errorf("no stat recorded for phase %q", phase)
		}
	}
	if byCheck["load"].WallMs <= 0 {
		t.Errorf("load phase has no wall time: %+v", byCheck["load"])
	}
	for _, check := range []string{CheckWallTaint, CheckWriteRoute, CheckShardIsolation, CheckPromDrift} {
		if byCheck[check].Findings == 0 {
			t.Errorf("flow check %s reports no findings on the fixture module", check)
		}
	}
}

func TestMatchPath(t *testing.T) {
	cases := []struct {
		pattern, path string
		want          bool
	}{
		{"fastgr/internal/obs", "fastgr/internal/obs", true},
		{"fastgr/internal/obs", "fastgr/internal/obsx", false},
		{"fastgr/cmd/...", "fastgr/cmd/fastgr", true},
		{"fastgr/cmd/...", "fastgr/cmd", true},
		{"fastgr/cmd/...", "fastgr/cmdx", false},
	}
	for _, c := range cases {
		if got := matchPath(c.pattern, c.path); got != c.want {
			t.Errorf("matchPath(%q, %q) = %v, want %v", c.pattern, c.path, got, c.want)
		}
	}
}

// TestLoaderDegradesGracefully pins the offline story: an import the
// stdlib source importer cannot resolve must yield a placeholder
// package, not a load failure — the syntactic checks still run.
func TestLoaderDegradesGracefully(t *testing.T) {
	moduleDir, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	li := (*loaderImporter)(loader)
	pkg, err := li.ImportFrom("no/such/package", "", 0)
	if err != nil {
		t.Fatalf("placeholder import failed: %v", err)
	}
	if pkg.Path() != "no/such/package" || !pkg.Complete() {
		t.Errorf("placeholder package wrong: path=%q complete=%v", pkg.Path(), pkg.Complete())
	}
}

// TestDegradedImports pins the degraded-analysis warning's data source:
// when the stdlib importer is unavailable, every stdlib import of a
// loaded package is recorded and reported by DegradedImports.
func TestDegradedImports(t *testing.T) {
	moduleDir, err := filepath.Abs(filepath.Join("testdata", "mod"))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	loader.std = nil // simulate an environment with no stdlib source
	p, err := loader.LoadDir("flowwall")
	if err != nil {
		t.Fatal(err)
	}
	deg := loader.DegradedImports(p)
	found := false
	for _, d := range deg {
		if d == "time" {
			found = true
		}
		if strings.HasPrefix(d, "fixture/") {
			t.Errorf("module-internal import %q reported as degraded", d)
		}
	}
	if !found {
		t.Errorf("DegradedImports(flowwall) = %v, want to include \"time\"", deg)
	}

	// With the stdlib importer working, nothing is degraded.
	loader2, err := NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := loader2.LoadDir("flowwall")
	if err != nil {
		t.Fatal(err)
	}
	if deg := loader2.DegradedImports(p2); len(deg) != 0 {
		t.Errorf("healthy loader reports degraded imports: %v", deg)
	}
}

// TestSuppressionScope pins the suppression engine's scoping rules
// directly (the golden file pins them end to end): a decl-level comment
// covers the whole declaration, a file-ignore covers the file, and both
// of an overlapping pair count as used.
func TestSuppressionScope(t *testing.T) {
	moduleDir, err := filepath.Abs(filepath.Join("testdata", "mod"))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	p, err := loader.LoadDir("detwall")
	if err != nil {
		t.Fatal(err)
	}
	var declScoped *suppression
	for _, s := range collectSuppressions(p) {
		pos := s.pos
		if filepath.Base(pos.Filename) == "declscope.go" && !s.fileWide && declScoped == nil {
			declScoped = s
		}
	}
	if declScoped == nil {
		t.Fatal("no line suppression collected from declscope.go")
	}
	// The first suppression in declscope.go annotates DeclScoped's
	// declaration; its span must reach past both wall reads (the decl
	// body is 4 lines beyond the comment).
	if declScoped.endLine < declScoped.pos.Line+4 {
		t.Errorf("decl-scoped suppression covers lines %d-%d, want the whole declaration",
			declScoped.pos.Line, declScoped.endLine)
	}

	pm, err := loader.LoadDir("detmap")
	if err != nil {
		t.Fatal(err)
	}
	var fileWide bool
	for _, s := range collectSuppressions(pm) {
		if s.fileWide && s.check == CheckDetmap {
			fileWide = true
		}
	}
	if !fileWide {
		t.Error("no file-wide detmap suppression collected from fileignore.go")
	}
}
