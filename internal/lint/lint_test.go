package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the fixture golden file")

// fixturePolicy mirrors the shape of DefaultPolicy on the fixture
// module: one detwall-exempt package, one sanctioned spawner, one
// package under the nil-safety contract.
func fixturePolicy() Policy {
	return Policy{
		DetwallExempt:    []string{"fixture/exempt"},
		GoroutineAllowed: []string{"fixture/spawnok"},
		NilsafePackages:  []string{"fixture/nilsafe"},
		RecoverAllowed:   []string{"fixture/faultok"},
	}
}

// TestFixtures runs the full suite over the fixture module and compares
// the rendered findings against the golden file. Every check has a
// firing, a clean and a suppressed fixture; the golden file is the
// contract for what fires and — by omission — what must not.
func TestFixtures(t *testing.T) {
	moduleDir, err := filepath.Abs(filepath.Join("testdata", "mod"))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Loader: loader, Policy: fixturePolicy()}
	findings, err := runner.Run("./...")
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, f := range findings {
		lines = append(lines, f.Render(moduleDir))
	}
	got := strings.Join(lines, "\n") + "\n"

	golden := filepath.Join("testdata", "expected.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run `go test -run TestFixtures -update ./internal/lint` to create): %v", err)
	}
	want := string(wantBytes)
	if got != want {
		t.Errorf("fixture findings diverge from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestFixtureChecksCovered pins the golden file to the contract that
// every check fires at least once on the fixtures — so a check that
// silently stops firing cannot pass by emptying the golden file.
func TestFixtureChecksCovered(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "expected.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, check := range []string{
		CheckDetwall, CheckDetmap, CheckGoroutine, CheckRecover,
		CheckObsNilsafe, CheckAtomic, CheckSuppression,
	} {
		if !strings.Contains(string(data), "["+check+"]") {
			t.Errorf("golden file has no firing case for %s", check)
		}
	}
}

// TestLintTreeClean runs the full suite, gofmt included, over the real
// repository: `go test ./...` alone now catches any new violation of
// the determinism and observability contracts.
func TestLintTreeClean(t *testing.T) {
	moduleDir, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Loader: loader, Policy: DefaultPolicy(), Gofmt: true}
	findings, err := runner.Run("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Error(f.Render(moduleDir))
	}
}

func TestMatchPath(t *testing.T) {
	cases := []struct {
		pattern, path string
		want          bool
	}{
		{"fastgr/internal/obs", "fastgr/internal/obs", true},
		{"fastgr/internal/obs", "fastgr/internal/obsx", false},
		{"fastgr/cmd/...", "fastgr/cmd/fastgr", true},
		{"fastgr/cmd/...", "fastgr/cmd", true},
		{"fastgr/cmd/...", "fastgr/cmdx", false},
	}
	for _, c := range cases {
		if got := matchPath(c.pattern, c.path); got != c.want {
			t.Errorf("matchPath(%q, %q) = %v, want %v", c.pattern, c.path, got, c.want)
		}
	}
}

// TestLoaderDegradesGracefully pins the offline story: an import the
// stdlib source importer cannot resolve must yield a placeholder
// package, not a load failure — the syntactic checks still run.
func TestLoaderDegradesGracefully(t *testing.T) {
	moduleDir, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	li := (*loaderImporter)(loader)
	pkg, err := li.ImportFrom("no/such/package", "", 0)
	if err != nil {
		t.Fatalf("placeholder import failed: %v", err)
	}
	if pkg.Path() != "no/such/package" || !pkg.Complete() {
		t.Errorf("placeholder package wrong: path=%q complete=%v", pkg.Path(), pkg.Complete())
	}
}
