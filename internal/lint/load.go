package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package of the module
// under analysis. Type checking is best-effort: unresolved stdlib
// symbols degrade the Info tables instead of aborting the load, so the
// syntactic checks always run and the type-aware checks analyze
// whatever resolved (TypeErrors records what did not).
type Package struct {
	Path       string // import path, e.g. fastgr/internal/maze
	Dir        string // absolute directory
	Fset       *token.FileSet
	Files      []*ast.File // non-test files, in file-name order
	FileNames  []string    // absolute paths, parallel to Files
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error
}

// Loader loads packages of a single module from source, resolving
// module-internal imports recursively and standard-library imports
// through the stdlib source importer (we are offline and dependency-free:
// no export data, no golang.org/x/tools). Imports that cannot be
// resolved are replaced by empty placeholder packages so analysis
// degrades gracefully.
type Loader struct {
	Fset       *token.FileSet
	ModuleDir  string
	ModulePath string

	std     types.ImporterFrom
	stdErrs map[string]bool
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader opens the module rooted at moduleDir (the directory holding
// go.mod).
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset:       token.NewFileSet(),
		ModuleDir:  abs,
		ModulePath: modPath,
		stdErrs:    map[string]bool{},
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}
	if src, ok := importer.ForCompiler(l.Fset, "source", nil).(types.ImporterFrom); ok {
		l.std = src
	}
	return l, nil
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// dirFor maps an import path inside the module to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.ModulePath {
		return l.ModuleDir
	}
	rel := strings.TrimPrefix(path, l.ModulePath+"/")
	return filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
}

// pathFor maps a directory inside the module to its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// LoadDir loads the package in the given directory (absolute or
// relative to the module root).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(l.ModuleDir, dir)
	}
	path, err := l.pathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path)
}

func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset}
	for _, name := range names {
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		p.Files = append(p.Files, f)
		p.FileNames = append(p.FileNames, full)
	}
	p.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer:    (*loaderImporter)(l),
		FakeImportC: true,
		Error: func(err error) {
			p.TypeErrors = append(p.TypeErrors, err)
		},
	}
	// Check never fully fails with an Error handler installed; partial
	// type information is exactly what we want.
	p.Types, _ = conf.Check(path, l.Fset, p.Files, p.Info)
	l.pkgs[path] = p
	return p, nil
}

// goFilesIn lists the non-test .go files of a directory in sorted order.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// DegradedImports lists the imports of p that resolved to placeholder
// packages — the srcimporter failed and analysis degraded: the
// syntactic checks still ran, but typed refinements (detmap's
// per-iteration analysis, atomic-consistency's field resolution, the
// flow engines' call graph) silently saw less than the whole truth. The
// driver surfaces these as warnings so CI logs show reduced coverage
// instead of a falsely clean run.
func (l *Loader) DegradedImports(p *Package) []string {
	if p.Types == nil {
		return nil
	}
	var out []string
	for _, imp := range p.Types.Imports() {
		if l.stdErrs[imp.Path()] {
			out = append(out, imp.Path())
		}
	}
	sort.Strings(out)
	return out
}

// TestGoFiles lists the _test.go files alongside a package (used only by
// the gofmt check; the analyzers run on non-test files).
func TestGoFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// loaderImporter adapts Loader to types.ImporterFrom: module-internal
// imports load recursively from source; everything else goes to the
// stdlib source importer, falling back to an empty placeholder package
// (marked complete) when that fails — e.g. cgo-dependent packages.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if l.std != nil && !l.stdErrs[path] {
		pkg, err := l.std.ImportFrom(path, dir, 0)
		if err == nil {
			return pkg, nil
		}
	}
	l.stdErrs[path] = true
	base := path
	if i := strings.LastIndex(base, "/"); i >= 0 {
		base = base[i+1:]
	}
	pkg := types.NewPackage(path, base)
	pkg.MarkComplete()
	return pkg, nil
}

// PackageDirs expands the driver's path arguments into package
// directories: "dir/..." walks recursively, anything else names one
// directory. testdata, hidden and underscore directories are skipped,
// as are nested modules.
func (l *Loader) PackageDirs(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) error {
		names, err := goFilesIn(dir)
		if err != nil || len(names) == 0 {
			return nil // not a package; fine for recursive walks
		}
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		if pat == "" || pat == "." {
			pat = l.ModuleDir
		}
		if !filepath.IsAbs(pat) {
			pat = filepath.Join(l.ModuleDir, pat)
		}
		if !recursive {
			if err := add(pat); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(pat, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != pat && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if p != pat {
				if _, err := os.Stat(filepath.Join(p, "go.mod")); err == nil {
					return filepath.SkipDir // nested module
				}
			}
			return add(p)
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
