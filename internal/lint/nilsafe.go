package lint

import (
	"go/ast"
	"go/token"
)

// checkNilsafe enforces the flight recorder's disabled-mode contract:
// every exported method with a pointer receiver must begin with a
// nil-receiver guard, so instrumented call sites can hold possibly-nil
// handles and call them unconditionally. Accepted first statements:
//
//	if recv == nil { ... }          // early return / early default
//	if recv != nil { ... }          // whole body behind the guard
//	return recv != nil && ...       // single-expression predicates
func checkNilsafe(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			if _, ptr := fd.Recv.List[0].Type.(*ast.StarExpr); !ptr {
				continue
			}
			recv := receiverName(fd)
			if recv == "" || recv == "_" {
				continue // receiver never dereferenced by name
			}
			if len(fd.Body.List) == 0 {
				continue // empty body cannot dereference
			}
			if nilGuarded(fd.Body.List[0], recv) {
				continue
			}
			out = append(out, Finding{
				Pos:    p.Fset.Position(fd.Name.Pos()),
				Check:  CheckObsNilsafe,
				Msg:    "exported pointer-receiver method " + fd.Name.Name + " does not begin with a nil-receiver guard",
				Remedy: "open with `if " + recv + " == nil { ... }` so nil handles stay no-ops",
			})
		}
	}
	return out
}

func receiverName(fd *ast.FuncDecl) string {
	names := fd.Recv.List[0].Names
	if len(names) == 0 {
		return ""
	}
	return names[0].Name
}

// nilGuarded reports whether stmt is a recognized nil guard for recv.
func nilGuarded(stmt ast.Stmt, recv string) bool {
	switch s := stmt.(type) {
	case *ast.IfStmt:
		return containsNilCmp(s.Cond, recv)
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			if containsNilCmp(res, recv) {
				return true
			}
		}
	}
	return false
}

// containsNilCmp reports whether the expression contains a comparison
// of the receiver against nil (either direction, == or !=).
func containsNilCmp(e ast.Expr, recv string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		b, ok := n.(*ast.BinaryExpr)
		if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
			return true
		}
		if isIdent(b.X, recv) && isIdent(b.Y, "nil") ||
			isIdent(b.X, "nil") && isIdent(b.Y, recv) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}
