package lint

import (
	"strings"

	"fastgr/internal/lint/flow"
)

// Policy is the per-package rule table: which packages each check
// applies to. Paths are import paths; a trailing "/..." matches the
// whole subtree.
type Policy struct {
	// DetwallExempt lists packages allowed to read the wall clock or
	// the process-global rand source. Everything else in scope of the
	// run is determinism-critical: findings there must be fixed (route
	// timing through internal/obs, thread a seeded rand.Source) or carry
	// a justified suppression.
	DetwallExempt []string
	// DetmapExempt lists packages where order-sensitive accumulation
	// from map iteration is tolerated without a canonicalizing sort.
	DetmapExempt []string
	// GoroutineAllowed lists the packages permitted to contain bare go
	// statements. All other worker spawning must go through the par pool
	// or the taskflow executor so the determinism contract and the
	// tracer's one-goroutine-per-lane invariant hold.
	GoroutineAllowed []string
	// NilsafePackages lists the packages whose exported pointer-receiver
	// methods must open with a nil-receiver guard (the flight recorder's
	// disabled-mode contract).
	NilsafePackages []string
	// RecoverAllowed lists the packages permitted to call recover(). All
	// other panic recovery must go through the fault containment layer,
	// which counts every recovery into the injected == recovered +
	// degraded accounting equation and keeps retries deterministic.
	RecoverAllowed []string
	// Flow anchors the interprocedural checks (walltaint, writeroute,
	// shardisolation, promdrift) to module-specific entry points and
	// sanctioned patterns. A zero config disables the flow layer.
	Flow flow.Config
}

// DefaultPolicy is the rule table for the fastgr module itself.
//
//   - internal/obs and internal/par are the two sanctioned wall-clock
//     readers: obs is the observability choke point (package comment:
//     "the wall clock never feeds a reported metric"), par times its
//     chunks for the span lanes. cmd and examples are human-facing
//     programs, free to print timestamps.
//   - goroutines may only be spawned by the par pool, the taskflow
//     executor and obs itself; cmd binaries needing a service goroutine
//     (e.g. the pprof listener) must justify it with a suppression.
//   - internal/obs/opsrv is additionally allowed one bare go statement:
//     the ops server's accept loop (go srv.Serve(ln)). It lives outside
//     the routing pipeline — handlers only snapshot observability state,
//     never touch routed data — so it cannot violate the one-goroutine-
//     per-lane tracer invariant or the determinism contract, and an
//     accept loop cannot run on the par pool without deadlocking a
//     worker for the lifetime of the server.
//   - internal/serve is sanctioned on both counts: the fastgrd daemon's
//     runner loops, accept loop and drain joiner are long-lived service
//     goroutines joined by Drain/Close — like opsrv's accept loop they
//     would deadlock a par worker for the server's lifetime — and its
//     wall readings (job service times, Retry-After estimates, drain
//     budgets) are advisory operational signals, declassified by
//     construction: they shape queueing politeness, never a routed
//     result, which still flows through core under full walltaint
//     scrutiny.
//   - internal/obs carries the nil-safety contract.
//   - internal/fault is the only package allowed to call recover():
//     containment re-counts every recovery into the fault accounting
//     equation; an uncounted recover elsewhere could silently mask a
//     determinism violation.
//   - internal/grid is deliberately exempt from nothing: the cost-field
//     cache mixes owner-exclusive plain state (edge values, stale flags)
//     with shared atomic dirty flags, and the atomic-consistency check is
//     what keeps those two tiers from bleeding into each other — a dirty
//     flag published with sync/atomic must never be re-read plainly (the
//     epochmix fixture pins this failure mode).
//   - internal/shard likewise carries no exemptions: the spatial
//     partitioner is a pure function of (design, margin) — a wall-clock
//     read, a map-order-dependent leaf numbering or a stray goroutine
//     there would silently break the shard-count invariance that
//     TestShardDeterminism pins, so every determinism check applies at
//     full strength.
func DefaultPolicy() Policy {
	return Policy{
		DetwallExempt: []string{
			"fastgr/internal/obs",
			"fastgr/internal/par",
			"fastgr/internal/serve",
			"fastgr/cmd/...",
			"fastgr/examples/...",
		},
		DetmapExempt: nil, // export paths canonicalize; none exempt today
		GoroutineAllowed: []string{
			"fastgr/internal/par",
			"fastgr/internal/taskflow",
			"fastgr/internal/obs",
			"fastgr/internal/obs/opsrv",
			"fastgr/internal/serve",
		},
		NilsafePackages: []string{
			"fastgr/internal/obs",
		},
		RecoverAllowed: []string{
			"fastgr/internal/fault",
		},
		Flow: DefaultFlowConfig(),
	}
}

// DefaultFlowConfig anchors the interprocedural flow checks to the
// fastgr module:
//
//   - walltaint: route, core and grid hold routed output and the data it
//     is computed from; a wall-derived value crossing into them breaks
//     the byte-identical contract the detwall exemptions (obs, par, cmd)
//     were never meant to loosen. The *Wall columns of core.StageTimes
//     and the journal's stage wall_ms are the documented host-time
//     report carriers, explicitly excluded from the bit-identical
//     contract (DESIGN.md "Modeled time vs. execution time"), so they
//     are the sanctioned declassification points.
//   - writeroute: internal/atomicio is the one crash-safe writer; every
//     durable artifact write routes through it (PR 5's contract).
//   - shardisolation: worker roots are the par pool's chunk callbacks
//     (Pool.For/ForUnits and the package-level For convenience) and the
//     taskflow task bodies. Workers may warm only WindowView-derived
//     caches; Graph.WarmCostCache on a parent cache, journal emission
//     and writes to the coordinator-owned report fields stay on the
//     coordinator (DESIGN.md "Sharded routing and halo reconciliation").
//   - promdrift: metric names registered through obs.Registry must map
//     through the promTable in internal/obs/names.go, and every table
//     entry must have a live registration site.
func DefaultFlowConfig() flow.Config {
	return flow.Config{
		SinkPkgs: []string{
			"fastgr/internal/route",
			"fastgr/internal/core",
			"fastgr/internal/grid",
		},
		SanctionedFields: []string{
			"fastgr/internal/core.StageTimes.PlanWall",
			"fastgr/internal/core.StageTimes.PatternWall",
			"fastgr/internal/core.StageTimes.MazeWall",
			"fastgr/internal/core.StageTimes.WallTotal",
			"fastgr/internal/core.stageEvent.WallMs",
		},
		WriteAllowedPkgs: []string{
			"fastgr/internal/atomicio",
		},
		SpawnFuncs: []string{
			"fastgr/internal/par.Pool.For",
			"fastgr/internal/par.Pool.ForUnits",
			"fastgr/internal/par.For",
			"fastgr/internal/taskflow.RunWorkers",
			"fastgr/internal/taskflow.RunWorkersObserved",
			"fastgr/internal/taskflow.RunWorkersFault",
		},
		WarmFuncs: []string{
			"fastgr/internal/grid.Graph.WarmCostCache",
		},
		WindowFuncs: []string{
			"fastgr/internal/grid.Graph.WindowView",
		},
		CoordFields: []string{
			"fastgr/internal/core.Report.*",
			"fastgr/internal/core.StageTimes.*",
		},
		JournalFuncs: []string{
			"fastgr/internal/obs.Journal.Emit",
		},
		RegistryFuncs: []string{
			"fastgr/internal/obs.Registry.Counter",
			"fastgr/internal/obs.Registry.Gauge",
			"fastgr/internal/obs.Registry.Histogram",
		},
		MetricTablePkg: "fastgr/internal/obs",
		MetricTableVar: "promTable",
	}
}

// matchPath reports whether an import path matches a pattern list entry
// (exact, or subtree via a trailing "/...").
func matchPath(pattern, path string) bool {
	if rest, ok := strings.CutSuffix(pattern, "/..."); ok {
		return path == rest || strings.HasPrefix(path, rest+"/")
	}
	return path == pattern
}

func matchAny(patterns []string, path string) bool {
	for _, p := range patterns {
		if matchPath(p, path) {
			return true
		}
	}
	return false
}

func (p Policy) detwallApplies(path string) bool   { return !matchAny(p.DetwallExempt, path) }
func (p Policy) detmapApplies(path string) bool    { return !matchAny(p.DetmapExempt, path) }
func (p Policy) goroutineAllowed(path string) bool { return matchAny(p.GoroutineAllowed, path) }
func (p Policy) nilsafeApplies(path string) bool   { return matchAny(p.NilsafePackages, path) }
func (p Policy) recoverAllowed(path string) bool   { return matchAny(p.RecoverAllowed, path) }
