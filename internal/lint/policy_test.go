package lint

import (
	"go/types"
	"path/filepath"
	"strings"
	"testing"

	"fastgr/internal/lint/flow"
)

// TestDefaultPolicyAnchorsResolve pins the policy table to the tree it
// governs: every package pattern matches at least one real package,
// every flow function anchor names a function that exists in the call
// graph, and every field pattern resolves to a real struct type (and
// field, when not wildcarded). A rename that silently turns a policy
// entry into a no-op fails here instead of silently disabling a check.
// The cmd/... and examples/... entries double as the subtree-matching
// exercise.
func TestDefaultPolicyAnchorsResolve(t *testing.T) {
	moduleDir, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.PackageDirs([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, dir := range dirs {
		p, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, p)
	}

	pol := DefaultPolicy()
	cfg := pol.Flow

	countMatches := func(pattern string) int {
		n := 0
		for _, p := range pkgs {
			if matchPath(pattern, p.Path) {
				n++
			}
		}
		return n
	}

	// Every package-pattern entry must match at least one real package.
	pkgLists := []struct {
		name     string
		patterns []string
	}{
		{"DetwallExempt", pol.DetwallExempt},
		{"GoroutineAllowed", pol.GoroutineAllowed},
		{"NilsafePackages", pol.NilsafePackages},
		{"RecoverAllowed", pol.RecoverAllowed},
		{"Flow.SinkPkgs", cfg.SinkPkgs},
		{"Flow.WriteAllowedPkgs", cfg.WriteAllowedPkgs},
		{"Flow.MetricTablePkg", []string{cfg.MetricTablePkg}},
	}
	sawSubtree := false
	for _, list := range pkgLists {
		for _, pat := range list.patterns {
			n := countMatches(pat)
			if n == 0 {
				t.Errorf("%s entry %q matches no package in the tree", list.name, pat)
			}
			if strings.HasSuffix(pat, "/...") {
				sawSubtree = true
				if n < 2 {
					t.Errorf("subtree entry %q matches only %d package(s); expected a real subtree", pat, n)
				}
			}
		}
	}
	if !sawSubtree {
		t.Error("no /... subtree pattern in the default policy; subtree matching is unexercised")
	}

	// Every function anchor must name a function present in the call
	// graph (the defaults are exact keys, no wildcards).
	fpkgs := make([]*flow.Pkg, len(pkgs))
	for i, p := range pkgs {
		fpkgs[i] = &flow.Pkg{Path: p.Path, Fset: p.Fset, Files: p.Files, Info: p.Info, Types: p.Types}
	}
	g := flow.Build(fpkgs, cfg)
	names := map[string]bool{}
	for _, n := range g.Nodes {
		names[n.Name] = true
	}
	funcLists := []struct {
		name     string
		patterns []string
	}{
		{"Flow.SpawnFuncs", cfg.SpawnFuncs},
		{"Flow.WarmFuncs", cfg.WarmFuncs},
		{"Flow.WindowFuncs", cfg.WindowFuncs},
		{"Flow.JournalFuncs", cfg.JournalFuncs},
		{"Flow.RegistryFuncs", cfg.RegistryFuncs},
	}
	for _, list := range funcLists {
		for _, pat := range list.patterns {
			if !names[pat] {
				t.Errorf("%s entry %q names no function in the call graph", list.name, pat)
			}
		}
	}

	// Every field pattern must resolve to a real struct type; exact
	// field names must exist on it.
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	for _, pat := range append(append([]string{}, cfg.SanctionedFields...), cfg.CoordFields...) {
		slash := strings.LastIndex(pat, "/")
		parts := strings.Split(pat[slash+1:], ".")
		if len(parts) != 3 {
			t.Errorf("field pattern %q is not pkgpath.Type.Field", pat)
			continue
		}
		pkgPath := pat[:slash+1] + parts[0]
		typeName, fieldName := parts[1], parts[2]
		p := byPath[pkgPath]
		if p == nil || p.Types == nil {
			t.Errorf("field pattern %q names unknown package %q", pat, pkgPath)
			continue
		}
		obj := p.Types.Scope().Lookup(typeName)
		if obj == nil {
			t.Errorf("field pattern %q names unknown type %s.%s", pat, pkgPath, typeName)
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			t.Errorf("field pattern %q: %s.%s is not a struct", pat, pkgPath, typeName)
			continue
		}
		if fieldName == "*" {
			continue
		}
		found := false
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == fieldName {
				found = true
			}
		}
		if !found {
			t.Errorf("field pattern %q: struct %s.%s has no field %s", pat, pkgPath, typeName, fieldName)
		}
	}

	// The metric table variable must exist in its package.
	if p := byPath[cfg.MetricTablePkg]; p != nil && p.Types != nil {
		if p.Types.Scope().Lookup(cfg.MetricTableVar) == nil {
			t.Errorf("Flow.MetricTableVar %q not found in %s", cfg.MetricTableVar, cfg.MetricTablePkg)
		}
	}
}
