package lint

import (
	"go/ast"
	"go/types"
)

// checkRecover flags recover() calls outside the sanctioned containment
// package (internal/fault). recover is how a panic stops being a crash
// and starts being a silent wrong answer: the fault layer is the one
// place allowed to make that trade, because it re-counts every recovery
// into the injected == recovered + degraded accounting equation and
// keeps the retry deterministic. A recover anywhere else can swallow a
// determinism violation before the chaos suite ever sees it.
func checkRecover(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "recover" || len(call.Args) != 0 {
				return true
			}
			// A local function named recover shadows the builtin; only
			// the builtin is the containment primitive.
			if obj, known := p.Info.Uses[id]; known {
				if _, builtin := obj.(*types.Builtin); !builtin {
					return true
				}
			}
			out = append(out, Finding{
				Pos:    p.Fset.Position(call.Pos()),
				Check:  CheckRecover,
				Msg:    "recover() outside the fault containment package",
				Remedy: "route panic recovery through internal/fault so it stays counted and deterministic, or suppress with //lint:ignore recover-hygiene <reason>",
			})
			return true
		})
	}
	return out
}
