package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fastgr/internal/lint/flow"
)

// This file is the analyzer's own hygiene gate: `fastgrlint -self` (and
// TestSelfCheck) runs the suite over internal/lint itself plus the
// fixture module in one invocation, so a change to the analyzer cannot
// silently regress either its own cleanliness or the golden contract of
// what each check fires on.

// FixturePolicy mirrors the shape of DefaultPolicy on the fixture
// module under testdata/mod: one detwall-exempt package (plus the
// flowwall fixture, which models the exemption loophole walltaint
// closes), one sanctioned spawner, one package under the nil-safety
// contract, and the flow anchors below.
func FixturePolicy() Policy {
	return Policy{
		DetwallExempt:    []string{"fixture/exempt", "fixture/flowwall"},
		GoroutineAllowed: []string{"fixture/spawnok"},
		NilsafePackages:  []string{"fixture/nilsafe"},
		RecoverAllowed:   []string{"fixture/faultok"},
		Flow:             FixtureFlowConfig(),
	}
}

// FixtureFlowConfig anchors the flow checks to the fixture module's
// miniature pipeline: flowsink plays route/core/grid, flowatomic plays
// internal/atomicio, flowexec.Run is the spawn entry point, and
// flowprom carries a three-entry exposition table with one seeded
// orphan.
func FixtureFlowConfig() flow.Config {
	return flow.Config{
		SinkPkgs:         []string{"fixture/flowsink"},
		SanctionedFields: []string{"fixture/flowsink.Report.WallMs"},
		WriteAllowedPkgs: []string{"fixture/flowatomic"},
		SpawnFuncs:       []string{"fixture/flowexec.Run"},
		WarmFuncs:        []string{"fixture/flowsink.Cache.Warm"},
		WindowFuncs:      []string{"fixture/flowsink.Cache.Window"},
		CoordFields:      []string{"fixture/flowsink.Coord.*"},
		JournalFuncs:     []string{"fixture/flowjournal.Emit"},
		RegistryFuncs:    []string{"fixture/flowprom.Registry.Counter"},
		MetricTablePkg:   "fixture/flowprom",
		MetricTableVar:   "table",
	}
}

// FixtureGolden is the golden file recording exactly what the suite
// reports on the fixture module, relative to this package's directory.
const FixtureGolden = "testdata/expected.txt"

// SelfCheck runs the analyzer over its own implementation and the
// fixture module, returning one line per divergence: a finding in
// internal/lint or its subpackages, or a drift between the fixture
// module's findings and the committed golden file. An empty slice means
// the analyzer's own hygiene holds. lintDir is the directory holding
// this package's sources (internal/lint under the module root).
func SelfCheck(moduleDir, lintDir string) ([]string, error) {
	var problems []string

	// 1. The analyzer's own packages must be clean under the policy it
	// enforces on everyone else, gofmt included.
	loader, err := NewLoader(moduleDir)
	if err != nil {
		return nil, err
	}
	runner := &Runner{Loader: loader, Policy: DefaultPolicy(), Gofmt: true}
	findings, err := runner.Run(filepath.Join(lintDir, "..."))
	if err != nil {
		return nil, err
	}
	for _, f := range findings {
		problems = append(problems, "self: "+f.Render(moduleDir))
	}

	// 2. The fixture module must reproduce its golden file exactly: a
	// check that stops firing (or starts over-firing) diverges here.
	fixtureDir := filepath.Join(moduleDir, lintDir, "testdata", "mod")
	floader, err := NewLoader(fixtureDir)
	if err != nil {
		return nil, err
	}
	frunner := &Runner{Loader: floader, Policy: FixturePolicy()}
	ffindings, err := frunner.Run("./...")
	if err != nil {
		return nil, err
	}
	var lines []string
	for _, f := range ffindings {
		lines = append(lines, f.Render(fixtureDir))
	}
	got := strings.Join(lines, "\n") + "\n"
	goldenPath := filepath.Join(moduleDir, lintDir, filepath.FromSlash(FixtureGolden))
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		return nil, fmt.Errorf("lint: read fixture golden: %w", err)
	}
	if got != string(want) {
		for _, d := range diffLines(string(want), got) {
			problems = append(problems, "fixture: "+d)
		}
	}
	return problems, nil
}

// diffLines reports the asymmetric difference between two rendered
// finding lists as "-" (expected, missing) and "+" (unexpected) lines.
func diffLines(want, got string) []string {
	count := func(s string) map[string]int {
		m := map[string]int{}
		for _, l := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
			m[l]++
		}
		return m
	}
	w, g := count(want), count(got)
	var out []string
	emit := func(order string, from, against map[string]int, prefix string) {
		seen := map[string]bool{}
		for _, l := range strings.Split(strings.TrimRight(order, "\n"), "\n") {
			if seen[l] {
				continue
			}
			seen[l] = true
			for i := against[l]; i < from[l]; i++ {
				out = append(out, prefix+l)
			}
		}
	}
	emit(want, w, g, "- ")
	emit(got, g, w, "+ ")
	return out
}
