// Package atomicmix exercises atomic-consistency: a field touched via
// sync/atomic anywhere must never be accessed plainly elsewhere.
package atomicmix

import "sync/atomic"

// Stats mixes access styles on Hits; Exact is the clean wrapper style.
type Stats struct {
	Hits  int64 // accessed both atomically and plainly: fires below
	Exact atomic.Int64
}

// Record is the atomic writer that puts Hits under the contract.
func (s *Stats) Record() {
	atomic.AddInt64(&s.Hits, 1)
	s.Exact.Add(1)
}

// Peek fires: plain read of an atomically written field.
func (s *Stats) Peek() int64 {
	return s.Hits
}

// PeekSettled is suppressed: the caller guarantees quiescence.
func (s *Stats) PeekSettled() int64 {
	//lint:ignore atomic-consistency read happens after all writers joined
	return s.Hits
}

// PeekExact is clean: wrapper-type fields are atomic at every access by
// construction.
func (s *Stats) PeekExact() int64 {
	return s.Exact.Load()
}
