// Package atomicuser proves atomic-consistency is cross-package: the
// atomic writer lives in package atomicmix, the plain access here still
// fires.
package atomicuser

import "fixture/atomicmix"

// Tamper fires: plain write to a field package atomicmix updates
// atomically.
func Tamper(s *atomicmix.Stats) {
	s.Hits = 0
}
