package detmap

import "sort"

// CollectSorted is clean: the collect-then-sort idiom canonicalizes the
// map-ordered accumulation before anyone observes it.
func CollectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PerIteration is clean: each iteration appends into a slice declared
// inside the loop body, so nothing accumulates across iterations.
func PerIteration(m map[string][]int) map[string][]int {
	out := make(map[string][]int, len(m))
	for k, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		out[k] = doubled
	}
	return out
}

// PerKeySlot is clean: the append target is indexed by the range key,
// so every iteration owns a distinct slot and iterations commute.
func PerKeySlot(m map[string]int, out map[string][]int) {
	for k, v := range m {
		out[k] = append(out[k], v)
	}
}

// CountValues is clean: integer accumulation commutes.
func CountValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
