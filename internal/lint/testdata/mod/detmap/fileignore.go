package detmap

// One file-wide suppression covers every detmap finding in this file;
// both loops below would otherwise fire.

//lint:file-ignore detmap fixture: file-wide suppression covering both loops below

// FileIgnoredConcat concatenates from map iteration with no sort.
func FileIgnoredConcat(m map[string]int) string {
	var s string
	for k := range m {
		s += k
	}
	return s
}

// FileIgnoredAppend appends from map iteration with no sort.
func FileIgnoredAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
