// Package detmap exercises the detmap check: order-sensitive
// accumulation from map iteration.
package detmap

// CollectUnsorted fires: the keys land in a slice in map-iteration
// order and no sort follows.
func CollectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// SendUnsorted fires: values leave on a channel in map-iteration order.
func SendUnsorted(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v
	}
}

// ConcatUnsorted fires: string concatenation in map-iteration order.
func ConcatUnsorted(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	return s
}
