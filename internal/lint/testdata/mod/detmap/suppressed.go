package detmap

// Consumed is suppressed: the caller is documented to treat the result
// as a set.
func Consumed(m map[string]int) []string {
	var keys []string
	//lint:ignore detmap result is consumed as a set; order never observed
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
