package detwall

import (
	"math/rand"
	"time"
)

// SeededRand is clean: the generator is explicitly seeded and threaded.
func SeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// DurationMath is clean: time.Duration arithmetic never reads the clock.
func DurationMath(d time.Duration) time.Duration {
	return 2 * d
}
