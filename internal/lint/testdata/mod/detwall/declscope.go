package detwall

import "time"

// DeclScoped pins declaration-scoped suppression: the one comment on
// the func declaration covers every finding inside the body.
//
//lint:ignore detwall fixture: one decl-level comment covers both reads below
func DeclScoped() time.Duration {
	a := time.Now()
	b := time.Now()
	return b.Sub(a)
}

// Overlapping pins nested suppressions: the decl-level comment covers
// the first read, the inner line comment covers the second. Both are
// load-bearing, so neither is reported unused.
//
//lint:ignore detwall fixture: decl scope covers the first read
func Overlapping() time.Duration {
	a := time.Now()
	//lint:ignore detwall fixture: inner line comment is also load-bearing
	b := time.Now()
	return b.Sub(a)
}
