// Package detwall exercises the detwall check: wall-clock reads and
// global-source rand calls in a determinism-critical package fire.
package detwall

import (
	"math/rand"
	"time"
)

// WallClock fires twice: time.Now and time.Since.
func WallClock() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// GlobalRand fires: rand.Intn draws from the unseeded process-global
// source.
func GlobalRand() int {
	return rand.Intn(10)
}
