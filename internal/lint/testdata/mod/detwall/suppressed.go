package detwall

import "time"

// Suppressed carries a justified suppression: no finding survives.
func Suppressed() time.Time {
	//lint:ignore detwall observational timestamp for a log line, never fed back into results
	return time.Now()
}

// Unjustified has a suppression with no reason: the suppression itself
// is reported even though it covers a real finding.
func Unjustified() time.Time {
	//lint:ignore detwall
	return time.Now()
}

// Dangling has a suppression on a line with no finding: reported as
// unused.
func Dangling() int {
	//lint:ignore detwall nothing actually happens on the next line
	return 4
}
