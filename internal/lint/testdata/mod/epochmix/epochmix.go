// Package epochmix exercises atomic-consistency on the epoch/dirty-flag
// idiom the cost-field cache uses: an invalidation flag published with
// sync/atomic by mutators must never be checked with a plain read, or the
// freshness test can miss a concurrent invalidation entirely.
package epochmix

import "sync/atomic"

// Cache models a materialized field guarded by a dirty flag and an epoch.
// The plain uint32 dirty field mixes access styles and fires; Epoch is the
// clean wrapper style the real cache uses.
type Cache struct {
	dirty uint32 // stored atomically, loaded plainly: fires below
	Epoch atomic.Uint64
}

// Invalidate is the atomic writer that puts dirty under the contract.
func (c *Cache) Invalidate() {
	atomic.StoreUint32(&c.dirty, 1)
	c.Epoch.Add(1)
}

// Fresh fires: a plain read of the atomically published flag can return a
// stale answer and skip a needed rebuild.
func (c *Cache) Fresh() bool {
	return c.dirty == 0
}

// FreshQuiesced is suppressed: the warmer runs at a coordinator point,
// after every mutating worker has joined.
func (c *Cache) FreshQuiesced() bool {
	//lint:ignore atomic-consistency warm runs single-threaded after workers join
	return c.dirty == 0
}

// EpochNow is clean: wrapper-type fields are atomic at every access by
// construction.
func (c *Cache) EpochNow() uint64 {
	return c.Epoch.Load()
}
