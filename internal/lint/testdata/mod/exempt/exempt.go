// Package exempt is on the policy's DetwallExempt list: wall-clock
// reads here are sanctioned and produce no finding.
package exempt

import "time"

// Timestamp reads the clock freely.
func Timestamp() time.Time {
	return time.Now()
}
