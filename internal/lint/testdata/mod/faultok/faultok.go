// Package faultok is on the RecoverAllowed list (it plays the role of
// the fault containment package): recover() is clean here.
package faultok

// Contain recovers freely.
func Contain(f func()) (v any) {
	defer func() { v = recover() }()
	f()
	return nil
}
