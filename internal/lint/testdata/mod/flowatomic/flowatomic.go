// Package flowatomic is the fixture stand-in for internal/atomicio:
// the one package the flow policy allows to call the raw os write APIs.
package flowatomic

import "os"

// WriteFile is the sanctioned durable writer; the raw call here is the
// writeroute check's quiet case for an allowed package.
func WriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
