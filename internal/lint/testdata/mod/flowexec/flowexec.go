// Package flowexec is the fixture executor: the flow policy names Run a
// spawn entry point, so its callback argument becomes a worker root for
// the shardisolation reachability closure. It runs serially — worker
// context is a policy notion, not a goroutine one.
package flowexec

// Run invokes fn once per index, standing in for the par pool's chunk
// dispatch.
func Run(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
