// Package flowjournal is the fixture run journal; the flow policy marks
// Emit coordinator-only.
package flowjournal

// Emit records one run-journal event.
func Emit(event string) {
	_ = event
}
