// Package flowprom exercises the promdrift check: a miniature metrics
// registry plus the name-mapping table, with one seeded orphan entry,
// one unmapped registration and one dynamic name.
package flowprom

// Registry is the fixture metrics registry; the flow policy names
// Counter a registration site.
type Registry struct {
	n int
}

// Counter registers a counter under a dotted name.
func (r *Registry) Counter(name string) int {
	r.n++
	return len(name)
}

// Metric name constants shared between registration sites and the
// table — the checkable idiom.
const (
	MHits   = "cache.hits"
	MMisses = "cache.misses"
	MOrphan = "cache.orphan"
)

// table maps dotted metric names to exposition families. MOrphan is the
// seeded orphan: no registration site uses it, and the golden file pins
// the resulting finding.
var table = map[string]string{
	MHits:   "fixture_cache_hits_total",
	MMisses: "fixture_cache_misses_total",
	MOrphan: "fixture_cache_orphan_total",
}

// Register registers the two mapped metrics (clean), one unmapped name
// and one dynamic name (both findings).
func Register(r *Registry, suffix string) {
	r.Counter(MHits)
	r.Counter(MMisses)
	r.Counter("cache.unmapped")
	r.Counter("cache." + suffix)
}

// SuppressedRegister pins that a justified unmapped registration can be
// suppressed.
func SuppressedRegister(r *Registry) {
	//lint:ignore promdrift fixture: deliberate unmapped metric, pinned by the golden file
	r.Counter("cache.offbook")
}
