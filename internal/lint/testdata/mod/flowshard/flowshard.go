// Package flowshard exercises the shardisolation check: callbacks
// handed to flowexec.Run are worker roots, and everything they reach is
// held to the worker discipline — no journal emission, no parent-cache
// warming, no coordinator-field assignment. The coordinator-path twins
// of each firing case pin that the same operations are legal outside
// the reachability closure.
package flowshard

import (
	"fixture/flowexec"
	"fixture/flowjournal"
	"fixture/flowsink"
)

// FireJournal spawns workers that emit journal events directly.
func FireJournal() {
	flowexec.Run(4, func(i int) {
		flowjournal.Emit("worker started")
	})
}

// warmIt warms whatever cache it is handed; worker-reachable through
// FireWarmDriver's closure, so every contributing call site owes a
// window-derived argument (the obligation chain).
func warmIt(c *flowsink.Cache) {
	c.Warm()
}

// FireWarmDriver captures its parameter into a spawned closure and
// warms it there: the obligation escalates to every caller of
// FireWarmDriver, worker-reachable or not.
func FireWarmDriver(parent *flowsink.Cache) {
	flowexec.Run(2, func(i int) {
		warmIt(parent)
	})
}

// Boot feeds FireWarmDriver a freshly built parent cache — the call
// site the obligation chain flags.
func Boot() {
	parent := flowsink.NewCache()
	FireWarmDriver(parent)
}

// holder hides a cache behind a struct field: provenance tracing stops
// at field reads, so warming it in worker context flags at the warm.
type holder struct {
	cache *flowsink.Cache
}

// FireWarmField is the driver for the unknown-provenance warm.
func FireWarmField(h *holder) {
	flowexec.Run(2, func(i int) {
		h.cache.Warm()
	})
}

// CleanWindow warms a window view from worker context: sanctioned.
func CleanWindow(parent *flowsink.Cache) {
	flowexec.Run(2, func(i int) {
		w := parent.Window()
		w.Warm()
	})
}

// FireCoord assigns a coordinator-owned field from worker context.
func FireCoord(c *flowsink.Coord) {
	flowexec.Run(2, func(i int) {
		c.Total = i
	})
}

// CleanSlots writes disjoint indexed slots: the sanctioned per-worker
// accumulation pattern.
func CleanSlots(c *flowsink.Coord) {
	flowexec.Run(2, func(i int) {
		c.Slots[i] = i
	})
}

// CoordOnly warms the parent cache and journals on the coordinator
// path: never worker-reachable, so nothing fires.
func CoordOnly(parent *flowsink.Cache) {
	parent.Warm()
	flowjournal.Emit("reconciled")
}

// SuppressedJournal pins that a justified worker-side journal write can
// be suppressed.
func SuppressedJournal() {
	flowexec.Run(1, func(i int) {
		//lint:ignore shardisolation fixture: deliberate worker journal write, pinned by the golden file
		flowjournal.Emit("worker checkpoint")
	})
}
