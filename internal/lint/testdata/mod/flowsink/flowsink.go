// Package flowsink is the fixture stand-in for the routing pipeline's
// data packages (route/core/grid in the real tree): the flow policy
// names it a walltaint sink, its Cache carries the warm/window pair the
// shardisolation fixtures exercise, and Coord holds the
// coordinator-owned fields workers must not assign.
package flowsink

// Report is routed output. Score is part of the bit-identical contract;
// WallMs is the sanctioned host-wall column.
type Report struct {
	Score  int
	WallMs float64
}

// Coord is coordinator-owned run state. Slots is sized one per worker
// so indexed writes are the sanctioned disjoint-slot pattern.
type Coord struct {
	Total int
	Slots []int
}

// Cache models the cost cache: Warm is the parent-warming entry point,
// Window derives a worker-safe view.
type Cache struct {
	vals []float64
}

// NewCache builds a parent cache.
func NewCache() *Cache { return &Cache{vals: make([]float64, 8)} }

// Warm precomputes the cache (the flow policy's WarmFuncs anchor).
func (c *Cache) Warm() {
	for i := range c.vals {
		c.vals[i] = float64(i)
	}
}

// Window derives a view (the flow policy's WindowFuncs anchor).
func (c *Cache) Window() *Cache { return &Cache{vals: c.vals} }

// Consume is a sink-package entry point taking pipeline data; a
// wall-derived argument here is a walltaint finding at the call site.
func Consume(score float64) float64 { return score * 2 }
