// Package flowwall is detwall-exempt, like obs/par/cmd in the real
// tree: it may read the wall clock. The walltaint fixtures pin the
// loophole the flow engine closes — exemption does not license letting
// wall-derived values flow into sink-package data.
package flowwall

import (
	"time"

	"fixture/flowsink"
)

// wallMs reads the wall clock; legal here, and the helper hop is what
// makes every flow below interprocedural.
func wallMs(start time.Time) float64 {
	return float64(time.Since(start).Milliseconds())
}

// FireField stores a wall-derived value in a sink-struct field.
func FireField() flowsink.Report {
	start := time.Now()
	var r flowsink.Report
	r.Score = int(wallMs(start))
	return r
}

// FireLit stores a wall-derived value through a keyed composite
// literal.
func FireLit() flowsink.Report {
	start := time.Now()
	return flowsink.Report{Score: int(wallMs(start))}
}

// FireArg passes a wall-derived value into a sink-package function.
func FireArg() float64 {
	start := time.Now()
	return flowsink.Consume(wallMs(start))
}

// CleanSanctioned routes host wall time through the declared wall
// column: the one sanctioned way across the boundary.
func CleanSanctioned() flowsink.Report {
	start := time.Now()
	var r flowsink.Report
	r.WallMs = wallMs(start)
	r.Score = len("deterministic")
	return r
}

// Suppressed pins that a justified declassification is possible.
func Suppressed() flowsink.Report {
	start := time.Now()
	var r flowsink.Report
	//lint:ignore walltaint fixture: deliberate wall value in a sink field, pinned by the golden file
	r.Score = int(wallMs(start))
	return r
}
