// Package flowwrite exercises the writeroute check: raw durable writes
// outside the allowed writer package fire; read-only opens, temp-path
// scratch and writes routed through flowatomic stay quiet.
package flowwrite

import (
	"os"
	"path/filepath"

	"fixture/flowatomic"
)

// FireCreate creates a durable file directly.
func FireCreate(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return f.Close()
}

// FireWriteFile writes a durable file directly.
func FireWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// FireOpenWrite opens for writing via O_* flags.
func FireOpenWrite(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	return f.Close()
}

// CleanReadOnly opens read-only: not a write, no finding.
func CleanReadOnly(path string) ([]byte, error) {
	f, err := os.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	return buf[:n], err
}

// CleanTemp writes scratch space under the temp dir: exempt.
func CleanTemp(data []byte) error {
	return os.WriteFile(filepath.Join(os.TempDir(), "scratch.bin"), data, 0o600)
}

// CleanRouted goes through the allowed writer package.
func CleanRouted(path string, data []byte) error {
	return flowatomic.WriteFile(path, data)
}

// Suppressed pins that a justified raw write can be suppressed.
func Suppressed(path string) error {
	//lint:ignore writeroute fixture: deliberate raw write, pinned by the golden file
	return os.WriteFile(path, nil, 0o644)
}
