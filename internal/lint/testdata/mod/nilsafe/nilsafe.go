// Package nilsafe exercises obs-nilsafe: exported pointer-receiver
// methods must open with a nil-receiver guard.
package nilsafe

// Handle mimics an observability handle whose nil value is the
// disabled mode.
type Handle struct{ n int64 }

// Add is clean: the whole body sits behind the guard.
func (h *Handle) Add(n int64) {
	if h != nil {
		h.n += n
	}
}

// Value is clean: early return on nil.
func (h *Handle) Value() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Enabled is clean: single-expression nil predicate.
func (h *Handle) Enabled() bool { return h != nil && h.n > 0 }

// Reset fires: no guard, a nil Handle panics.
func (h *Handle) Reset() {
	h.n = 0
}

// Bump is suppressed.
//
//lint:ignore obs-nilsafe constructor-only helper, documented non-nil receiver
func (h *Handle) Bump() {
	h.n++
}

// internal is unexported: outside the contract, no finding.
func (h *Handle) internal() int64 {
	return h.n
}
