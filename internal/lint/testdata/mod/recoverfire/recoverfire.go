// Package recoverfire exercises recover-hygiene: it is not on the
// RecoverAllowed list, so bare recover() calls fire.
package recoverfire

// Swallow fires: panic recovery outside the containment layer.
func Swallow(f func()) (crashed bool) {
	defer func() {
		if recover() != nil {
			crashed = true
		}
	}()
	f()
	return false
}

// Guarded is suppressed with a reason.
func Guarded(f func()) {
	defer func() {
		//lint:ignore recover-hygiene fixture: demonstrates a justified recovery boundary
		recover()
	}()
	f()
}

// recover shadows the builtin inside Shadowed; calling the shadow is
// clean — only the builtin is the containment primitive.
func Shadowed() int {
	recover := func() int { return 7 }
	return recover()
}
