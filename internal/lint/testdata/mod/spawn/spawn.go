// Package spawn exercises goroutine-hygiene: it is not on the
// GoroutineAllowed list, so bare go statements fire.
package spawn

import "sync"

// Fanout fires: worker spawning outside the executor packages.
func Fanout(fns []func()) {
	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	wg.Wait()
}

// Background is suppressed with a reason.
func Background(f func()) {
	//lint:ignore goroutine-hygiene fire-and-forget side channel, touches no shared routing state
	go f()
}
