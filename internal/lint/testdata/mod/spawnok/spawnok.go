// Package spawnok is on the GoroutineAllowed list (it plays the role of
// an executor package): bare go statements are clean here.
package spawnok

// Run spawns freely.
func Run(f func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		f()
	}()
	<-done
}
