// Package spawnok is on the GoroutineAllowed list (it plays the role of
// an executor package): bare go statements are clean here.
package spawnok

// The file-ignore below matches nothing — no wall-clock read exists in
// this file — so the suppression meta-check reports it (golden-pinned).

//lint:file-ignore detwall fixture: nothing here reads the wall clock; reported unused

// Run spawns freely.
func Run(f func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		f()
	}()
	<-done
}
