package maze

import (
	"errors"
	"reflect"
	"testing"

	"fastgr/internal/geom"
)

func TestBudgetTripsAndFillsError(t *testing.T) {
	g := testGrid(t, 30, 30, 4)
	pins := []geom.Point3{{X: 2, Y: 3, Layer: 1}, {X: 25, Y: 27, Layer: 1}}

	s := NewSearch()
	_, ref, err := s.RouteNet(g, 1, pins, fullWindow(g))
	if err != nil {
		t.Fatal(err)
	}

	s.SetBudget(ref.Expansions / 2)
	_, st, err := s.RouteNet(g, 1, pins, fullWindow(g))
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %v", err)
	}
	if be.NetID != 1 || be.Budget != ref.Expansions/2 {
		t.Fatalf("BudgetError fields = %+v, want net 1 budget %d", be, ref.Expansions/2)
	}
	if be.Expansions != st.Expansions {
		t.Fatalf("BudgetError.Expansions = %d, Stats.Expansions = %d", be.Expansions, st.Expansions)
	}
	if st.Expansions > ref.Expansions/2+1 {
		t.Fatalf("budgeted search expanded %d nodes, budget %d", st.Expansions, ref.Expansions/2)
	}
}

func TestBudgetGenerousDoesNotChangeRoute(t *testing.T) {
	g := testGrid(t, 24, 24, 5)
	pins := []geom.Point3{
		{X: 2, Y: 2, Layer: 1},
		{X: 20, Y: 3, Layer: 2},
		{X: 9, Y: 21, Layer: 1},
	}
	s := NewSearch()
	ref, refSt, err := s.RouteNet(g, 7, pins, fullWindow(g))
	if err != nil {
		t.Fatal(err)
	}
	s.SetBudget(refSt.Expansions * 2)
	got, gotSt, err := s.RouteNet(g, 7, pins, fullWindow(g))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Paths, ref.Paths) || gotSt != refSt {
		t.Fatal("a non-binding budget changed the routed geometry or stats")
	}
	// A budget of exactly the spent expansions also succeeds: the budget
	// trips only when exceeded.
	s.SetBudget(refSt.Expansions)
	if _, _, err := s.RouteNet(g, 7, pins, fullWindow(g)); err != nil {
		t.Fatalf("exact-spend budget should still succeed, got %v", err)
	}
}

func TestBudgetZeroIsUnlimited(t *testing.T) {
	g := testGrid(t, 20, 20, 4)
	pins := []geom.Point3{{X: 0, Y: 0, Layer: 1}, {X: 19, Y: 19, Layer: 1}}
	s := NewSearch()
	s.SetBudget(1) // trip almost immediately...
	if _, _, err := s.RouteNet(g, 1, pins, fullWindow(g)); err == nil {
		t.Fatal("budget 1 should trip on this net")
	}
	s.SetBudget(0) // ...then disable the cap again
	if _, _, err := s.RouteNet(g, 1, pins, fullWindow(g)); err != nil {
		t.Fatalf("budget 0 must be unlimited, got %v", err)
	}
}

func TestBudgetTripIsDeterministic(t *testing.T) {
	g := testGrid(t, 30, 30, 4)
	pins := []geom.Point3{{X: 1, Y: 1, Layer: 1}, {X: 28, Y: 28, Layer: 1}}
	run := func() (int64, string) {
		s := NewSearch()
		s.SetBudget(40)
		_, st, err := s.RouteNet(g, 3, pins, fullWindow(g))
		if err == nil {
			return st.Expansions, ""
		}
		return st.Expansions, err.Error()
	}
	exp0, msg0 := run()
	if msg0 == "" {
		t.Fatal("budget 40 should trip on a 28+27 route")
	}
	for i := 0; i < 5; i++ {
		if exp, msg := run(); exp != exp0 || msg != msg0 {
			t.Fatalf("budget trip varies across runs: (%d,%q) vs (%d,%q)", exp, msg, exp0, msg0)
		}
	}
}
