// Package maze implements the 3-D maze routing used in the rip-up-and-
// reroute iterations (Section III-G): a multi-source multi-target shortest
// path search on the grid graph, restricted to a search window around the
// net, that reconnects a net pin by pin into a routed tree. Unlike pattern
// routing it explores every path inside the window, which is what lets
// rerouting resolve the violations pattern routing leaves behind.
//
// The search runs as A* by default: an admissible lower bound (L1 distance
// to the nearest remaining target scaled by the unit wire/via costs) prunes
// expansions that plain Dijkstra would settle. Because the congestion term
// of the cost model is strictly positive, the bound is strictly below every
// real path cost, and with (key, node-index) heap ordering plus a canonical
// equal-cost parent rule the routed geometry is bit-identical to the
// Dijkstra mode (selectable via SetAlgorithm) — DESIGN.md carries the
// argument, maze_crosscheck_test.go enforces it.
//
// The search state (distance/visited/parent arrays, heap storage, the
// connected and target sets) lives in a reusable Search scratch object:
// rip-up-and-reroute calls RouteNet thousands of times, and reusing one
// Search per executor worker keeps the hot path allocation-free. Stale state
// is invalidated by epoch stamping instead of clearing, so rebinding the
// scratch to a new window costs O(1) beyond any capacity growth.
package maze

import (
	"errors"
	"fmt"
	"math"

	"fastgr/internal/geom"
	"fastgr/internal/grid"
	"fastgr/internal/obs"
	"fastgr/internal/route"
)

// Stats reports the work done by one maze invocation, the currency of the
// rip-up-and-reroute timing model.
type Stats struct {
	Expansions int64 // settled node count
	Pushes     int64 // heap pushes
}

// Algorithm selects the maze search strategy. Both produce bit-identical
// routed geometry (on strictly positive edge costs); they differ only in
// how many nodes they expand.
type Algorithm int

const (
	// AStar, the default, guides the search with the admissible lower bound
	// described in the package comment.
	AStar Algorithm = iota
	// Dijkstra is the unguided baseline (a zero heuristic) — the seed
	// implementation, kept for the cross-check suite and benchmarking.
	Dijkstra
)

func (a Algorithm) String() string {
	if a == Dijkstra {
		return "dijkstra"
	}
	return "astar"
}

// BudgetError reports a RouteNet abandoned because the net's searches
// settled more nodes than the configured expansion budget allows. The
// caller degrades gracefully — typically by keeping the net's pattern
// route. The trip point is a pure function of the graph, the net and the
// budget (expansion order is deterministic), so budgeted runs stay
// bit-identical at every worker count.
type BudgetError struct {
	NetID      int
	Budget     int64
	Expansions int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("expansion budget %d exhausted after %d expansions", e.Budget, e.Expansions)
}

// RouteNet maze-routes a whole net inside the window with a fresh scratch
// object. Callers routing many nets should allocate one Search per worker
// and use its RouteNet method instead.
func RouteNet(g *grid.Graph, netID int, pins []geom.Point3, window geom.Rect) (*route.NetRoute, Stats, error) {
	return NewSearch().RouteNet(g, netID, pins, window)
}

// Search is the reusable maze-routing scratch: windowed Dijkstra state plus
// the per-net connected/target sets. A Search may be reused across nets,
// windows and grids; it must not be used from two goroutines at once. The
// routes it produces are bit-identical to those of a fresh Search.
type Search struct {
	g      *grid.Graph
	win    geom.Rect
	ww, wh int

	// Per-window-node arrays, epoch-stamped so rebinding and starting a new
	// Dijkstra pass both cost O(1): a node's entry is valid only when its
	// stamp matches the current epoch.
	dist    []float64
	parent  []int32 // packed predecessor node index, -1 none
	visited []bool
	stamp   []uint32
	epoch   uint32

	// Per-net sets, stamped like the arrays above but with epochs that tick
	// once per RouteNet call (they live across that net's Dijkstra passes).
	connStamp []uint32
	targStamp []uint32
	connEpoch uint32
	targEpoch uint32

	// connected is an ordered source list (its membership set is connStamp):
	// set iteration order would make equal-cost tie-breaking — and therefore
	// the chosen geometry and expansion counts — nondeterministic. targets
	// is the ordered list of unreached targets (membership set: targStamp),
	// scanned by the A* heuristic.
	connected []geom.Point3
	targets   []geom.Point3

	// alg selects the search strategy; hWire/hVia are the per-axis unit
	// costs of the current grid, the heuristic's scale factors.
	alg   Algorithm
	hWire float64
	hVia  float64

	// budget caps the settled-node count across one RouteNet call; 0 (the
	// default) is unlimited.
	budget int64

	q     pq
	nodes []geom.Point3 // pathNodes buffer
	pts   []geom.Point3 // reconstruct buffer

	// Flight-recorder handles, resolved once by SetObserver; all nil in
	// disabled mode, where RouteNet pays a handful of nil checks.
	expHist     *obs.Histogram
	expHistAlg  [2]*obs.Histogram // indexed by Algorithm
	pushCounter *obs.Counter
	searchCount *obs.Counter
}

// NewSearch returns an empty scratch; capacity grows on first use. The
// search algorithm defaults to AStar.
func NewSearch() *Search { return &Search{} }

// SetAlgorithm selects the search strategy for subsequent RouteNet calls.
func (s *Search) SetAlgorithm(a Algorithm) { s.alg = a }

// SetBudget caps the total expansions (settled nodes) one RouteNet call
// may spend across its passes; exceeding it aborts the net with a
// *BudgetError. 0 disables the cap.
func (s *Search) SetBudget(budget int64) { s.budget = budget }

// SetObserver attaches (or, with nil, detaches) the flight recorder:
// every RouteNet then records its expansion count into the
// obs.MMazeExpansions histogram (plus the per-algorithm split) and bumps
// the pushes/searches counters. Observation reads only the returned Stats,
// so routed geometry and the expansion counts themselves are unchanged.
func (s *Search) SetObserver(o *obs.Observer) {
	s.expHist = o.M().Histogram(obs.MMazeExpansions, obs.ExpansionBuckets)
	s.expHistAlg[AStar] = o.M().Histogram(obs.MMazeExpansionsAStar, obs.ExpansionBuckets)
	s.expHistAlg[Dijkstra] = o.M().Histogram(obs.MMazeExpansionsDijkstra, obs.ExpansionBuckets)
	s.pushCounter = o.M().Counter(obs.MMazePushes)
	s.searchCount = o.M().Counter(obs.MMazeSearches)
}

// bind points the scratch at a grid and window, growing the node arrays as
// needed. Entries surviving from earlier windows are invalidated by their
// stale stamps, never by clearing.
func (s *Search) bind(g *grid.Graph, win geom.Rect) {
	s.g, s.win = g, win
	s.ww, s.wh = win.Width(), win.Height()
	n := s.ww * s.wh * g.L
	if cap(s.dist) < n {
		s.dist = make([]float64, n)
		s.parent = make([]int32, n)
		s.visited = make([]bool, n)
		s.stamp = make([]uint32, n)
		s.connStamp = make([]uint32, n)
		s.targStamp = make([]uint32, n)
		return
	}
	s.dist = s.dist[:n]
	s.parent = s.parent[:n]
	s.visited = s.visited[:n]
	s.stamp = s.stamp[:n]
	s.connStamp = s.connStamp[:n]
	s.targStamp = s.targStamp[:n]
}

// bumpEpoch advances an epoch counter, clearing the backing array on the
// (once per 2^32 uses) wrap so stale stamps can never collide.
func bumpEpoch(e *uint32, arr []uint32) {
	*e++
	if *e == 0 {
		for i := range arr {
			arr[i] = 0
		}
		*e = 1
	}
}

// RouteNet maze-routes a whole net inside the window: starting from the
// first pin, it repeatedly runs Dijkstra from the already-connected
// geometry (all its 3-D nodes are sources) to the nearest unconnected pin,
// until every pin is connected. The grid is read-only; the caller commits
// the returned route.
func (s *Search) RouteNet(g *grid.Graph, netID int, pins []geom.Point3, window geom.Rect) (*route.NetRoute, Stats, error) {
	if len(pins) == 0 {
		return nil, Stats{}, fmt.Errorf("maze: net %d has no pins", netID)
	}
	window = window.ClampTo(g.W, g.H)
	for _, p := range pins {
		if !window.Contains(p.P()) {
			return nil, Stats{}, fmt.Errorf("maze: pin %v outside window %v", p, window)
		}
	}

	s.bind(g, window)
	s.hWire = math.Max(0, g.Params.UnitWire)
	s.hVia = math.Max(0, g.Params.UnitVia)
	bumpEpoch(&s.connEpoch, s.connStamp)
	bumpEpoch(&s.targEpoch, s.targStamp)
	r := &route.NetRoute{NetID: netID}
	var stats Stats

	s.connected = append(s.connected[:0], pins[0])
	s.connStamp[s.index(pins[0])] = s.connEpoch
	s.targets = s.targets[:0]
	for _, p := range pins[1:] {
		if p == pins[0] {
			continue
		}
		if i := s.index(p); s.targStamp[i] != s.targEpoch {
			s.targStamp[i] = s.targEpoch
			s.targets = append(s.targets, p)
		}
	}
	for len(s.targets) > 0 {
		limit := int64(-1) // unlimited
		if s.budget > 0 {
			limit = s.budget - stats.Expansions
		}
		path, reached, st, err := s.search(s.connected, limit)
		stats.Expansions += st.Expansions
		stats.Pushes += st.Pushes
		if err != nil {
			var be *BudgetError
			if errors.As(err, &be) {
				be.NetID = netID
				be.Budget = s.budget
				be.Expansions = stats.Expansions
			}
			return nil, stats, fmt.Errorf("maze: net %d: %w", netID, err)
		}
		s.targStamp[s.index(reached)] = s.targEpoch - 1
		s.dropTarget(reached)
		// Every node of the new path joins the source set.
		s.nodes = pathNodes(g, path, s.nodes[:0])
		for _, p3 := range s.nodes {
			if i := s.index(p3); s.connStamp[i] != s.connEpoch {
				s.connStamp[i] = s.connEpoch
				s.connected = append(s.connected, p3)
			}
		}
		if i := s.index(reached); s.connStamp[i] != s.connEpoch {
			s.connStamp[i] = s.connEpoch
			s.connected = append(s.connected, reached)
		}
		r.Paths = append(r.Paths, path)
	}
	s.expHist.Observe(stats.Expansions)
	s.expHistAlg[s.alg].Observe(stats.Expansions)
	s.pushCounter.Add(stats.Pushes)
	s.searchCount.Add(1)
	return r, stats, nil
}

// dropTarget removes a reached target from the ordered target list
// (stable, in place; membership already left targStamp above).
func (s *Search) dropTarget(reached geom.Point3) {
	keep := s.targets[:0]
	for _, t := range s.targets {
		if t != reached {
			keep = append(keep, t)
		}
	}
	s.targets = keep
}

// pathNodes appends all 3-D grid nodes a path touches to dst.
func pathNodes(g *grid.Graph, p route.Path, dst []geom.Point3) []geom.Point3 {
	for _, s := range p.Segs {
		if g.Dir(s.Layer) == grid.Horizontal {
			lo, hi := geom.Min(s.A.X, s.B.X), geom.Max(s.A.X, s.B.X)
			for x := lo; x <= hi; x++ {
				dst = append(dst, geom.Point3{X: x, Y: s.A.Y, Layer: s.Layer})
			}
		} else {
			lo, hi := geom.Min(s.A.Y, s.B.Y), geom.Max(s.A.Y, s.B.Y)
			for y := lo; y <= hi; y++ {
				dst = append(dst, geom.Point3{X: s.A.X, Y: y, Layer: s.Layer})
			}
		}
	}
	for _, v := range p.Vias {
		for l := v.L1; l <= v.L2; l++ {
			dst = append(dst, geom.Point3{X: v.X, Y: v.Y, Layer: l})
		}
	}
	return dst
}

func (s *Search) index(p geom.Point3) int32 {
	return int32(((p.Layer-1)*s.wh+(p.Y-s.win.Lo.Y))*s.ww + (p.X - s.win.Lo.X))
}

func (s *Search) point(i int32) geom.Point3 {
	x := int(i) % s.ww
	rest := int(i) / s.ww
	y := rest % s.wh
	l := rest/s.wh + 1
	return geom.Point3{X: x + s.win.Lo.X, Y: y + s.win.Lo.Y, Layer: l}
}

// fresh lazily resets per-search state via epoch stamping.
func (s *Search) fresh(i int32) {
	if s.stamp[i] != s.epoch {
		s.stamp[i] = s.epoch
		s.dist[i] = math.Inf(1)
		s.parent[i] = -1
		s.visited[i] = false
	}
}

type pqItem struct {
	node int32
	f    float64 // heap key: path cost plus heuristic (equal to g for Dijkstra)
	g    float64 // path cost, for the stale-entry check on pop
}

// pq is a binary min-heap ordered by (f, node). The sift operations mirror
// container/heap's algorithm — same swaps — but the ordering carries an
// explicit node-index tie-break, so the settle order on equal keys is a
// property of the graph, not of push order: one of the two ingredients
// (with the canonical parent rule in relaxNeighbors) that makes A* and
// Dijkstra produce bit-identical geometry. A concrete slice instead of
// heap.Interface avoids the per-push interface boxing that dominated maze
// allocations.
type pq []pqItem

// before is the strict heap order: smaller key first, smaller node index
// on exact key ties.
func (a pqItem) before(b pqItem) bool {
	return a.f < b.f || (a.f == b.f && a.node < b.node)
}

func (q *pq) push(it pqItem) {
	*q = append(*q, it)
	q.up(len(*q) - 1)
}

func (q *pq) pop() pqItem {
	h := *q
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	q.down(0, n)
	it := h[n]
	*q = h[:n]
	return it
}

func (q *pq) init() {
	n := len(*q)
	for i := n/2 - 1; i >= 0; i-- {
		q.down(i, n)
	}
}

func (q *pq) up(j int) {
	h := *q
	for j > 0 {
		i := (j - 1) / 2
		if !h[j].before(h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (q *pq) down(i, n int) {
	h := *q
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].before(h[j1]) {
			j = j2
		}
		if !h[j].before(h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// heuristic is the admissible lower bound on the cost from p to the
// cheapest remaining target: per-axis L1 distance scaled by the unit wire
// and via costs, minimized over targets. Every wire edge costs at least
// UnitWire and every via edge at least UnitVia (the congestion term is
// nonnegative), so the bound never exceeds the true remaining cost; it is
// also consistent, because one step changes it by at most that step's unit
// cost. Zero in Dijkstra mode.
func (s *Search) heuristic(p geom.Point3) float64 {
	if s.alg == Dijkstra || len(s.targets) == 0 {
		return 0
	}
	best := math.Inf(1)
	for _, t := range s.targets {
		h := float64(geom.Abs(p.X-t.X)+geom.Abs(p.Y-t.Y))*s.hWire +
			float64(geom.Abs(p.Layer-t.Layer))*s.hVia
		if h < best {
			best = h
		}
	}
	return best
}

// search runs one multi-source multi-target pass (A* or Dijkstra per the
// configured algorithm) and returns the cheapest path to whichever target
// settles first. Targets are the nodes whose targStamp carries the current
// target epoch. limit caps this pass's expansions (the net budget minus
// what earlier passes spent); negative means unlimited.
func (s *Search) search(sources []geom.Point3, limit int64) (route.Path, geom.Point3, Stats, error) {
	bumpEpoch(&s.epoch, s.stamp)
	var st Stats
	q := &s.q
	*q = (*q)[:0]
	for _, src := range sources {
		if !s.win.Contains(src.P()) {
			continue
		}
		i := s.index(src)
		s.fresh(i)
		if s.dist[i] > 0 {
			s.dist[i] = 0
			q.push(pqItem{node: i, f: s.heuristic(src), g: 0})
			st.Pushes++
		}
	}
	if len(*q) == 0 {
		return route.Path{}, geom.Point3{}, st, fmt.Errorf("no sources inside window")
	}
	q.init()

	for len(*q) > 0 {
		it := q.pop()
		i := it.node
		s.fresh(i)
		if s.visited[i] || it.g > s.dist[i] {
			continue
		}
		s.visited[i] = true
		st.Expansions++
		if s.targStamp[i] == s.targEpoch {
			return s.reconstruct(i), s.point(i), st, nil
		}
		if limit >= 0 && st.Expansions > limit {
			return route.Path{}, geom.Point3{}, st, &BudgetError{}
		}
		s.relaxNeighbors(s.point(i), i, q, &st)
	}
	return route.Path{}, geom.Point3{}, st, fmt.Errorf("targets unreachable within window")
}

func (s *Search) relaxNeighbors(p geom.Point3, i int32, q *pq, st *Stats) {
	g := s.g
	d := s.dist[i]
	relax := func(np geom.Point3, cost float64) {
		j := s.index(np)
		s.fresh(j)
		nd := d + cost
		if nd < s.dist[j] {
			s.dist[j] = nd
			s.parent[j] = i
			q.push(pqItem{node: j, f: nd + s.heuristic(np), g: nd})
			st.Pushes++
		} else if nd == s.dist[j] && cost > 0 && s.parent[j] >= 0 && i < s.parent[j] {
			// Canonical parent rule: among equal-cost predecessors the
			// smallest node index wins, independent of relaxation order.
			// (cost > 0 keeps the parent pointers acyclic; sources keep
			// their -1 root marker.)
			s.parent[j] = i
		}
	}
	// Wire moves along the layer's preferred direction.
	if g.Dir(p.Layer) == grid.Horizontal {
		if p.X+1 <= s.win.Hi.X {
			relax(geom.Point3{X: p.X + 1, Y: p.Y, Layer: p.Layer}, g.WireCost(p.Layer, p.X, p.Y))
		}
		if p.X-1 >= s.win.Lo.X {
			relax(geom.Point3{X: p.X - 1, Y: p.Y, Layer: p.Layer}, g.WireCost(p.Layer, p.X-1, p.Y))
		}
	} else {
		if p.Y+1 <= s.win.Hi.Y {
			relax(geom.Point3{X: p.X, Y: p.Y + 1, Layer: p.Layer}, g.WireCost(p.Layer, p.X, p.Y))
		}
		if p.Y-1 >= s.win.Lo.Y {
			relax(geom.Point3{X: p.X, Y: p.Y - 1, Layer: p.Layer}, g.WireCost(p.Layer, p.X, p.Y-1))
		}
	}
	// Via moves between adjacent layers.
	if p.Layer+1 <= g.L {
		relax(geom.Point3{X: p.X, Y: p.Y, Layer: p.Layer + 1}, g.ViaEdgeCost(p.X, p.Y, p.Layer))
	}
	if p.Layer-1 >= 1 {
		relax(geom.Point3{X: p.X, Y: p.Y, Layer: p.Layer - 1}, g.ViaEdgeCost(p.X, p.Y, p.Layer-1))
	}
}

// reconstruct walks parents back to a source, compressing runs of same-layer
// steps into segments and layer changes into via stacks.
func (s *Search) reconstruct(end int32) route.Path {
	pts := s.pts[:0]
	for i := end; i >= 0; i = s.parent[i] {
		pts = append(pts, s.point(i))
		if s.parent[i] < 0 {
			break
		}
	}
	s.pts = pts
	// pts runs target -> source; orientation does not matter for geometry.
	var path route.Path
	if len(pts) < 2 {
		return path
	}
	anchor := pts[0]
	for k := 1; k < len(pts); k++ {
		prev, cur := pts[k-1], pts[k]
		if cur.Layer != prev.Layer {
			// Flush wire run, then the via.
			if anchor != prev {
				path.AddSeg(prev.Layer, anchor.P(), prev.P())
			}
			path.AddVia(prev.X, prev.Y, prev.Layer, cur.Layer)
			anchor = cur
			continue
		}
		// Same layer: the run continues; direction cannot change mid-run on
		// a preferred-direction grid (one wire axis per layer).
	}
	last := pts[len(pts)-1]
	if anchor != last {
		path.AddSeg(last.Layer, anchor.P(), last.P())
	}
	return path
}
