// Package maze implements the 3-D maze routing used in the rip-up-and-
// reroute iterations (Section III-G): a multi-source multi-target Dijkstra
// on the grid graph, restricted to a search window around the net, that
// reconnects a net pin by pin into a routed tree. Unlike pattern routing it
// explores every path inside the window, which is what lets rerouting
// resolve the violations pattern routing leaves behind.
package maze

import (
	"container/heap"
	"fmt"
	"math"

	"fastgr/internal/geom"
	"fastgr/internal/grid"
	"fastgr/internal/route"
)

// Stats reports the work done by one maze invocation, the currency of the
// rip-up-and-reroute timing model.
type Stats struct {
	Expansions int64 // settled node count
	Pushes     int64 // heap pushes
}

// RouteNet maze-routes a whole net inside the window: starting from the
// first pin, it repeatedly runs Dijkstra from the already-connected
// geometry (all its 3-D nodes are sources) to the nearest unconnected pin,
// until every pin is connected. The grid is read-only; the caller commits
// the returned route.
func RouteNet(g *grid.Graph, netID int, pins []geom.Point3, window geom.Rect) (*route.NetRoute, Stats, error) {
	if len(pins) == 0 {
		return nil, Stats{}, fmt.Errorf("maze: net %d has no pins", netID)
	}
	window = window.ClampTo(g.W, g.H)
	for _, p := range pins {
		if !window.Contains(p.P()) {
			return nil, Stats{}, fmt.Errorf("maze: pin %v outside window %v", p, window)
		}
	}

	s := newSearch(g, window)
	r := &route.NetRoute{NetID: netID}
	var stats Stats

	// connected is an ordered source list (plus a membership set): map
	// iteration order would make equal-cost tie-breaking — and therefore the
	// chosen geometry and expansion counts — nondeterministic.
	connected := []geom.Point3{pins[0]}
	inConnected := map[geom.Point3]bool{pins[0]: true}
	remaining := make(map[geom.Point3]bool)
	for _, p := range pins[1:] {
		if p != pins[0] {
			remaining[p] = true
		}
	}
	for len(remaining) > 0 {
		path, reached, st, err := s.dijkstra(connected, remaining)
		stats.Expansions += st.Expansions
		stats.Pushes += st.Pushes
		if err != nil {
			return nil, stats, fmt.Errorf("maze: net %d: %w", netID, err)
		}
		delete(remaining, reached)
		// Every node of the new path joins the source set.
		for _, p3 := range pathNodes(g, path) {
			if !inConnected[p3] {
				inConnected[p3] = true
				connected = append(connected, p3)
			}
		}
		if !inConnected[reached] {
			inConnected[reached] = true
			connected = append(connected, reached)
		}
		r.Paths = append(r.Paths, path)
	}
	return r, stats, nil
}

// pathNodes enumerates all 3-D grid nodes a path touches.
func pathNodes(g *grid.Graph, p route.Path) []geom.Point3 {
	var nodes []geom.Point3
	for _, s := range p.Segs {
		if g.Dir(s.Layer) == grid.Horizontal {
			lo, hi := geom.Min(s.A.X, s.B.X), geom.Max(s.A.X, s.B.X)
			for x := lo; x <= hi; x++ {
				nodes = append(nodes, geom.Point3{X: x, Y: s.A.Y, Layer: s.Layer})
			}
		} else {
			lo, hi := geom.Min(s.A.Y, s.B.Y), geom.Max(s.A.Y, s.B.Y)
			for y := lo; y <= hi; y++ {
				nodes = append(nodes, geom.Point3{X: s.A.X, Y: y, Layer: s.Layer})
			}
		}
	}
	for _, v := range p.Vias {
		for l := v.L1; l <= v.L2; l++ {
			nodes = append(nodes, geom.Point3{X: v.X, Y: v.Y, Layer: l})
		}
	}
	return nodes
}

// search holds the windowed Dijkstra state, reused across connections of one
// net to avoid reallocating the distance arrays.
type search struct {
	g       *grid.Graph
	win     geom.Rect
	ww, wh  int
	dist    []float64
	parent  []int32 // packed predecessor node index, -1 none
	visited []bool
	stamp   []uint32
	epoch   uint32
}

func newSearch(g *grid.Graph, win geom.Rect) *search {
	ww, wh := win.Width(), win.Height()
	n := ww * wh * g.L
	return &search{
		g: g, win: win, ww: ww, wh: wh,
		dist:    make([]float64, n),
		parent:  make([]int32, n),
		visited: make([]bool, n),
		stamp:   make([]uint32, n),
	}
}

func (s *search) index(p geom.Point3) int32 {
	return int32(((p.Layer-1)*s.wh+(p.Y-s.win.Lo.Y))*s.ww + (p.X - s.win.Lo.X))
}

func (s *search) point(i int32) geom.Point3 {
	x := int(i) % s.ww
	rest := int(i) / s.ww
	y := rest % s.wh
	l := rest/s.wh + 1
	return geom.Point3{X: x + s.win.Lo.X, Y: y + s.win.Lo.Y, Layer: l}
}

// fresh lazily resets per-search state via epoch stamping.
func (s *search) fresh(i int32) {
	if s.stamp[i] != s.epoch {
		s.stamp[i] = s.epoch
		s.dist[i] = math.Inf(1)
		s.parent[i] = -1
		s.visited[i] = false
	}
}

type pqItem struct {
	node int32
	d    float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].d < q[j].d }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// dijkstra runs one multi-source multi-target search and returns the
// cheapest path to whichever target settles first.
func (s *search) dijkstra(sources []geom.Point3, targets map[geom.Point3]bool) (route.Path, geom.Point3, Stats, error) {
	s.epoch++
	var st Stats
	q := make(pq, 0, 256)
	for _, src := range sources {
		if !s.win.Contains(src.P()) {
			continue
		}
		i := s.index(src)
		s.fresh(i)
		if s.dist[i] > 0 {
			s.dist[i] = 0
			heap.Push(&q, pqItem{i, 0})
			st.Pushes++
		}
	}
	if len(q) == 0 {
		return route.Path{}, geom.Point3{}, st, fmt.Errorf("no sources inside window")
	}
	heap.Init(&q)

	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		i := it.node
		s.fresh(i)
		if s.visited[i] || it.d > s.dist[i] {
			continue
		}
		s.visited[i] = true
		st.Expansions++
		p := s.point(i)
		if targets[p] {
			return s.reconstruct(i), p, st, nil
		}
		s.relaxNeighbors(p, i, &q, &st)
	}
	return route.Path{}, geom.Point3{}, st, fmt.Errorf("targets unreachable within window")
}

func (s *search) relaxNeighbors(p geom.Point3, i int32, q *pq, st *Stats) {
	g := s.g
	d := s.dist[i]
	relax := func(np geom.Point3, cost float64) {
		j := s.index(np)
		s.fresh(j)
		if nd := d + cost; nd < s.dist[j] {
			s.dist[j] = nd
			s.parent[j] = i
			heap.Push(q, pqItem{j, nd})
			st.Pushes++
		}
	}
	// Wire moves along the layer's preferred direction.
	if g.Dir(p.Layer) == grid.Horizontal {
		if p.X+1 <= s.win.Hi.X {
			relax(geom.Point3{X: p.X + 1, Y: p.Y, Layer: p.Layer}, g.WireCost(p.Layer, p.X, p.Y))
		}
		if p.X-1 >= s.win.Lo.X {
			relax(geom.Point3{X: p.X - 1, Y: p.Y, Layer: p.Layer}, g.WireCost(p.Layer, p.X-1, p.Y))
		}
	} else {
		if p.Y+1 <= s.win.Hi.Y {
			relax(geom.Point3{X: p.X, Y: p.Y + 1, Layer: p.Layer}, g.WireCost(p.Layer, p.X, p.Y))
		}
		if p.Y-1 >= s.win.Lo.Y {
			relax(geom.Point3{X: p.X, Y: p.Y - 1, Layer: p.Layer}, g.WireCost(p.Layer, p.X, p.Y-1))
		}
	}
	// Via moves between adjacent layers.
	if p.Layer+1 <= g.L {
		relax(geom.Point3{X: p.X, Y: p.Y, Layer: p.Layer + 1}, g.ViaEdgeCost(p.X, p.Y, p.Layer))
	}
	if p.Layer-1 >= 1 {
		relax(geom.Point3{X: p.X, Y: p.Y, Layer: p.Layer - 1}, g.ViaEdgeCost(p.X, p.Y, p.Layer-1))
	}
}

// reconstruct walks parents back to a source, compressing runs of same-layer
// steps into segments and layer changes into via stacks.
func (s *search) reconstruct(end int32) route.Path {
	var pts []geom.Point3
	for i := end; i >= 0; i = s.parent[i] {
		pts = append(pts, s.point(i))
		if s.parent[i] < 0 {
			break
		}
	}
	// pts runs target -> source; orientation does not matter for geometry.
	var path route.Path
	if len(pts) < 2 {
		return path
	}
	anchor := pts[0]
	for k := 1; k < len(pts); k++ {
		prev, cur := pts[k-1], pts[k]
		if cur.Layer != prev.Layer {
			// Flush wire run, then the via.
			if anchor != prev {
				path.AddSeg(prev.Layer, anchor.P(), prev.P())
			}
			path.AddVia(prev.X, prev.Y, prev.Layer, cur.Layer)
			anchor = cur
			continue
		}
		// Same layer: the run continues; direction cannot change mid-run on
		// a preferred-direction grid (one wire axis per layer).
	}
	last := pts[len(pts)-1]
	if anchor != last {
		path.AddSeg(last.Layer, anchor.P(), last.P())
	}
	return path
}
