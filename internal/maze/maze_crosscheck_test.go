package maze

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"fastgr/internal/design"
	"fastgr/internal/geom"
	"fastgr/internal/grid"
	"fastgr/internal/pattern"
	"fastgr/internal/route"
	"fastgr/internal/stt"
)

// TestMazeNeverWorseThanPattern cross-validates the two routers: on a full
// window the maze explores a superset of every L/Z/hybrid pattern, so its
// path cost can never exceed the pattern DP's optimum for a two-pin net.
func TestMazeNeverWorseThanPattern(t *testing.T) {
	d := design.MustGenerate("18test5m", 0.002)
	g := grid.NewFromDesign(d)
	rng := rand.New(rand.NewSource(5))
	// Random congestion so the comparison is not on a uniform grid.
	for i := 0; i < 400; i++ {
		l := 2 + rng.Intn(3)
		x, y := rng.Intn(g.W-1), rng.Intn(g.H-1)
		if g.HasWireEdge(l, x, y) {
			if g.Dir(l) == grid.Horizontal {
				g.AddSegDemand(l, geom.Point{X: x, Y: y}, geom.Point{X: x + 1, Y: y}, rng.Intn(10))
			} else {
				g.AddSegDemand(l, geom.Point{X: x, Y: y}, geom.Point{X: x, Y: y + 1}, rng.Intn(10))
			}
		}
	}
	win := geom.Rect{Lo: geom.Point{X: 0, Y: 0}, Hi: geom.Point{X: g.W - 1, Y: g.H - 1}}

	checked := 0
	for _, net := range d.Nets {
		if len(net.Points()) != 2 || checked >= 40 {
			continue
		}
		checked++
		tree := stt.Build(net)
		pins := route.PinTerminals(tree)

		pat := pattern.SolveCPU(g, tree, pattern.Config{Mode: pattern.Hybrid})
		mz, _, err := RouteNet(g, net.ID, pins, win)
		if err != nil {
			t.Fatalf("net %s: %v", net.Name, err)
		}
		pc := pat.Route.Cost(g)
		mc := mz.Cost(g)
		if mc > pc+1e-6 {
			t.Fatalf("net %s: maze cost %v exceeds pattern cost %v", net.Name, mc, pc)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d two-pin nets checked", checked)
	}
}

// TestAStarMatchesDijkstraBitIdentical is the A*/cost-cache cross-check:
// on randomized congested grids, A* guided by the admissible unit-cost
// bound must produce bit-identical geometry (reflect.DeepEqual on Paths)
// and exactly equal cost to the seed Dijkstra, while settling no more
// nodes — both on a cold graph and after WarmCostCache materializes the
// cost field.
func TestAStarMatchesDijkstraBitIdentical(t *testing.T) {
	d := design.MustGenerate("18test5m", 0.003)
	for _, warm := range []bool{false, true} {
		name := "cold"
		if warm {
			name = "warm"
		}
		t.Run(name, func(t *testing.T) {
			g := grid.NewFromDesign(d)
			rng := rand.New(rand.NewSource(17))
			for i := 0; i < 400; i++ {
				l := 2 + rng.Intn(3)
				x, y := rng.Intn(g.W-1), rng.Intn(g.H-1)
				if g.HasWireEdge(l, x, y) {
					if g.Dir(l) == grid.Horizontal {
						g.AddSegDemand(l, geom.Point{X: x, Y: y}, geom.Point{X: x + 1, Y: y}, rng.Intn(10))
					} else {
						g.AddSegDemand(l, geom.Point{X: x, Y: y}, geom.Point{X: x, Y: y + 1}, rng.Intn(10))
					}
				}
			}
			if warm {
				g.WarmCostCache()
				if !g.CostCacheBuilt() {
					t.Fatal("WarmCostCache did not build the cache")
				}
			}

			ast, dij := NewSearch(), NewSearch()
			dij.SetAlgorithm(Dijkstra)
			checked := 0
			for _, net := range d.Nets {
				if checked >= 50 {
					break
				}
				checked++
				tree := stt.Build(net)
				pins := route.PinTerminals(tree)
				win := net.BBox().Inflate(6).ClampTo(g.W, g.H)

				ra, sa, err := ast.RouteNet(g, net.ID, pins, win)
				if err != nil {
					t.Fatalf("net %s astar: %v", net.Name, err)
				}
				rd, sd, err := dij.RouteNet(g, net.ID, pins, win)
				if err != nil {
					t.Fatalf("net %s dijkstra: %v", net.Name, err)
				}
				if !reflect.DeepEqual(ra.Paths, rd.Paths) {
					t.Fatalf("net %s: astar geometry differs from dijkstra:\n%v\nvs\n%v",
						net.Name, ra.Paths, rd.Paths)
				}
				if ca, cd := ra.Cost(g), rd.Cost(g); ca != cd {
					t.Fatalf("net %s: astar cost %v != dijkstra cost %v", net.Name, ca, cd)
				}
				if sa.Expansions > sd.Expansions {
					t.Fatalf("net %s: astar settled %d nodes, dijkstra only %d",
						net.Name, sa.Expansions, sd.Expansions)
				}
			}
			if checked < 20 {
				t.Fatalf("only %d nets checked", checked)
			}
		})
	}
}

// TestDijkstraMatchesBellmanFord validates the windowed Dijkstra against an
// independent Bellman-Ford relaxation over the same 3-D window.
func TestDijkstraMatchesBellmanFord(t *testing.T) {
	d := design.MustGenerate("18test5m", 0.002)
	g := grid.NewFromDesign(d)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		l := 2 + rng.Intn(3)
		x, y := rng.Intn(g.W-1), rng.Intn(g.H-1)
		if g.HasWireEdge(l, x, y) {
			if g.Dir(l) == grid.Horizontal {
				g.AddSegDemand(l, geom.Point{X: x, Y: y}, geom.Point{X: x + 1, Y: y}, rng.Intn(12))
			} else {
				g.AddSegDemand(l, geom.Point{X: x, Y: y}, geom.Point{X: x, Y: y + 1}, rng.Intn(12))
			}
		}
	}
	win := geom.NewRect(geom.Point{X: 2, Y: 2}, geom.Point{X: 14, Y: 13})

	for trial := 0; trial < 10; trial++ {
		src := geom.Point3{
			X: win.Lo.X + rng.Intn(win.Width()), Y: win.Lo.Y + rng.Intn(win.Height()), Layer: 1,
		}
		dst := geom.Point3{
			X: win.Lo.X + rng.Intn(win.Width()), Y: win.Lo.Y + rng.Intn(win.Height()),
			Layer: 1 + rng.Intn(g.L),
		}
		if src == dst {
			continue
		}
		mz, _, err := RouteNet(g, 1000+trial, []geom.Point3{src, dst}, win)
		if err != nil {
			t.Fatal(err)
		}
		want := bellmanFord(g, win, src, dst)
		got := mz.Cost(g)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("trial %d %v->%v: dijkstra %v, bellman-ford %v", trial, src, dst, got, want)
		}
	}
}

// bellmanFord computes the exact shortest-path cost inside the window with
// repeated full relaxation — slow, simple, and implementation-independent.
func bellmanFord(g *grid.Graph, win geom.Rect, src, dst geom.Point3) float64 {
	type node = geom.Point3
	dist := map[node]float64{src: 0}
	nodes := []node{}
	for l := 1; l <= g.L; l++ {
		for y := win.Lo.Y; y <= win.Hi.Y; y++ {
			for x := win.Lo.X; x <= win.Hi.X; x++ {
				nodes = append(nodes, node{X: x, Y: y, Layer: l})
			}
		}
	}
	get := func(n node) float64 {
		if v, ok := dist[n]; ok {
			return v
		}
		return math.Inf(1)
	}
	relax := func(a, b node, c float64) bool {
		if v := get(a) + c; v < get(b) {
			dist[b] = v
			return true
		}
		return false
	}
	for iter := 0; iter < len(nodes); iter++ {
		changed := false
		for _, n := range nodes {
			if g.Dir(n.Layer) == grid.Horizontal {
				if n.X+1 <= win.Hi.X {
					c := g.WireCost(n.Layer, n.X, n.Y)
					nb := node{X: n.X + 1, Y: n.Y, Layer: n.Layer}
					changed = relax(n, nb, c) || changed
					changed = relax(nb, n, c) || changed
				}
			} else {
				if n.Y+1 <= win.Hi.Y {
					c := g.WireCost(n.Layer, n.X, n.Y)
					nb := node{X: n.X, Y: n.Y + 1, Layer: n.Layer}
					changed = relax(n, nb, c) || changed
					changed = relax(nb, n, c) || changed
				}
			}
			if n.Layer+1 <= g.L {
				c := g.ViaEdgeCost(n.X, n.Y, n.Layer)
				nb := node{X: n.X, Y: n.Y, Layer: n.Layer + 1}
				changed = relax(n, nb, c) || changed
				changed = relax(nb, n, c) || changed
			}
		}
		if !changed {
			break
		}
	}
	return get(dst)
}
