package maze

import (
	"math/rand"
	"testing"

	"fastgr/internal/design"
	"fastgr/internal/geom"
	"fastgr/internal/grid"
	"fastgr/internal/obs"
	"fastgr/internal/route"
	"fastgr/internal/stt"
)

func testGrid(t *testing.T, w, h, layers int) *grid.Graph {
	t.Helper()
	caps := make([]int, layers)
	caps[0] = 1
	for i := 1; i < layers; i++ {
		caps[i] = 10
	}
	d := &design.Design{
		Name: "m", GridW: w, GridH: h, NumLayers: layers,
		LayerCapacity: caps, ViaCapacity: 8,
		Nets: []*design.Net{{ID: 0, Name: "n", Pins: []design.Pin{
			{Pos: geom.Point{X: 0, Y: 0}, Layer: 1},
			{Pos: geom.Point{X: 1, Y: 1}, Layer: 1},
		}}},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return grid.NewFromDesign(d)
}

func fullWindow(g *grid.Graph) geom.Rect {
	return geom.Rect{Lo: geom.Point{X: 0, Y: 0}, Hi: geom.Point{X: g.W - 1, Y: g.H - 1}}
}

func TestTwoPinMazeRoute(t *testing.T) {
	g := testGrid(t, 20, 20, 4)
	pins := []geom.Point3{{X: 2, Y: 3, Layer: 1}, {X: 12, Y: 9, Layer: 1}}
	r, st, err := RouteNet(g, 1, pins, fullWindow(g))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(g, pins); err != nil {
		t.Fatalf("maze route invalid: %v", err)
	}
	if st.Expansions == 0 || st.Pushes == 0 {
		t.Fatal("stats not counted")
	}
	// Uncongested: wirelength should equal Manhattan distance.
	if wl := r.Wirelength(g); wl != 16 {
		t.Fatalf("wirelength = %d, want 16", wl)
	}
}

func TestMultiPinMazeRoute(t *testing.T) {
	g := testGrid(t, 24, 24, 5)
	pins := []geom.Point3{
		{X: 2, Y: 2, Layer: 1},
		{X: 20, Y: 3, Layer: 1},
		{X: 10, Y: 18, Layer: 2},
		{X: 4, Y: 12, Layer: 1},
	}
	r, _, err := RouteNet(g, 2, pins, fullWindow(g))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(g, pins); err != nil {
		t.Fatalf("multi-pin maze route invalid: %v", err)
	}
	if len(r.Paths) != 3 {
		t.Fatalf("expected 3 connection paths, got %d", len(r.Paths))
	}
}

func TestMazeDetoursAroundBlockage(t *testing.T) {
	// Zero-capacity wall at x=10..11 on layer 1 (the only horizontal layer)
	// for rows 0..3; row 4 stays open. The maze must cross there.
	caps := []int{1, 10}
	d := &design.Design{
		Name: "wall", GridW: 20, GridH: 5, NumLayers: 2,
		LayerCapacity: caps, ViaCapacity: 8,
		Nets: []*design.Net{{ID: 0, Name: "n", Pins: []design.Pin{
			{Pos: geom.Point{X: 0, Y: 0}, Layer: 1},
			{Pos: geom.Point{X: 1, Y: 1}, Layer: 1},
		}}},
		Blockages: []design.Blockage{{
			Layer:   1,
			Region:  geom.NewRect(geom.Point{X: 10, Y: 0}, geom.Point{X: 10, Y: 3}),
			Density: 1.0,
		}},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	g := grid.NewFromDesign(d)
	pins := []geom.Point3{{X: 2, Y: 2, Layer: 1}, {X: 18, Y: 2, Layer: 1}}
	r, _, err := RouteNet(g, 4, pins, fullWindow(g))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(g, pins); err != nil {
		t.Fatal(err)
	}
	crossesAt := -1
	for _, p := range r.Paths {
		for _, s := range p.Segs {
			if s.Layer == 1 && geom.Min(s.A.X, s.B.X) <= 10 && geom.Max(s.A.X, s.B.X) >= 11 {
				crossesAt = s.A.Y
			}
		}
	}
	if crossesAt != 4 {
		t.Fatalf("route crossed the wall at row %d, want detour via row 4", crossesAt)
	}
}

func TestWindowRestriction(t *testing.T) {
	g := testGrid(t, 30, 30, 4)
	pins := []geom.Point3{{X: 10, Y: 10, Layer: 1}, {X: 14, Y: 13, Layer: 1}}
	win := geom.NewRect(geom.Point{X: 9, Y: 9}, geom.Point{X: 15, Y: 14})
	r, _, err := RouteNet(g, 5, pins, win)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Paths {
		for _, s := range p.Segs {
			if !win.Contains(s.A) || !win.Contains(s.B) {
				t.Fatalf("segment %v-%v escapes window", s.A, s.B)
			}
		}
		for _, v := range p.Vias {
			if !win.Contains(geom.Point{X: v.X, Y: v.Y}) {
				t.Fatalf("via at (%d,%d) escapes window", v.X, v.Y)
			}
		}
	}
}

func TestPinOutsideWindowError(t *testing.T) {
	g := testGrid(t, 20, 20, 4)
	pins := []geom.Point3{{X: 1, Y: 1, Layer: 1}, {X: 15, Y: 15, Layer: 1}}
	win := geom.NewRect(geom.Point{X: 0, Y: 0}, geom.Point{X: 5, Y: 5})
	if _, _, err := RouteNet(g, 6, pins, win); err == nil {
		t.Fatal("pin outside window accepted")
	}
	if _, _, err := RouteNet(g, 7, nil, win); err == nil {
		t.Fatal("empty pin list accepted")
	}
}

func TestMazeCheaperOrEqualAfterCongestion(t *testing.T) {
	// Maze should beat the congested straight corridor chosen by pattern
	// routing: cost of its path must be <= pattern's L route cost.
	g := testGrid(t, 20, 20, 4)
	for x := 2; x < 12; x++ {
		for _, l := range []int{1, 3} {
			g.AddSegDemand(l, geom.Point{X: x, Y: 5}, geom.Point{X: x + 1, Y: 5}, 30)
		}
	}
	pins := []geom.Point3{{X: 2, Y: 5, Layer: 1}, {X: 12, Y: 5, Layer: 1}}
	r, _, err := RouteNet(g, 8, pins, fullWindow(g))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(g, pins); err != nil {
		t.Fatal(err)
	}
	// It must detour off row 5 (wl > 10) because the corridor is saturated.
	if wl := r.Wirelength(g); wl <= 10 {
		t.Fatalf("maze stayed in saturated corridor (wl=%d)", wl)
	}
}

func TestSameLayerDuplicatePins(t *testing.T) {
	g := testGrid(t, 10, 10, 3)
	pins := []geom.Point3{{X: 3, Y: 3, Layer: 1}, {X: 3, Y: 3, Layer: 1}, {X: 7, Y: 7, Layer: 1}}
	r, _, err := RouteNet(g, 9, pins, fullWindow(g))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(g, pins); err != nil {
		t.Fatal(err)
	}
}

func TestPinsOnDifferentLayers(t *testing.T) {
	g := testGrid(t, 12, 12, 5)
	pins := []geom.Point3{{X: 2, Y: 2, Layer: 1}, {X: 2, Y: 2, Layer: 4}}
	r, _, err := RouteNet(g, 10, pins, fullWindow(g))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(g, pins); err != nil {
		t.Fatal(err)
	}
	// Pure via stack: no wire demand.
	if r.Wirelength(g) != 0 || r.ViaCount(g) != 3 {
		t.Fatalf("wl=%d vias=%d, want 0/3", r.Wirelength(g), r.ViaCount(g))
	}
}

func TestMazeMatchesPatternOnEasyNets(t *testing.T) {
	// On an empty grid both routers should find Manhattan-length routes.
	g := testGrid(t, 24, 24, 4)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 15; i++ {
		a := geom.Point{X: rng.Intn(20), Y: rng.Intn(20)}
		b := geom.Point{X: rng.Intn(20), Y: rng.Intn(20)}
		if a == b {
			continue
		}
		pins := []geom.Point3{{X: a.X, Y: a.Y, Layer: 1}, {X: b.X, Y: b.Y, Layer: 1}}
		r, _, err := RouteNet(g, 100+i, pins, fullWindow(g))
		if err != nil {
			t.Fatal(err)
		}
		if wl := r.Wirelength(g); wl != geom.ManhattanDist(a, b) {
			t.Fatalf("net %v-%v: wl %d != manhattan %d", a, b, wl, geom.ManhattanDist(a, b))
		}
	}
}

func TestMazeOnGeneratedDesign(t *testing.T) {
	d := design.MustGenerate("18test5m", 0.002)
	g := grid.NewFromDesign(d)
	for _, net := range d.Nets[:60] {
		tree := stt.Build(net)
		pins := route.PinTerminals(tree)
		win := net.BBox().Inflate(6).ClampTo(g.W, g.H)
		r, _, err := RouteNet(g, net.ID, pins, win)
		if err != nil {
			t.Fatalf("net %s: %v", net.Name, err)
		}
		if err := r.Validate(g, pins); err != nil {
			t.Fatalf("net %s: %v", net.Name, err)
		}
		r.Commit(g)
	}
	wire, via := g.TotalDemand()
	if wire == 0 || via == 0 {
		t.Fatal("no demand committed")
	}
}

func TestDeterministicExpansionCounts(t *testing.T) {
	g := testGrid(t, 20, 20, 4)
	pins := []geom.Point3{{X: 1, Y: 1, Layer: 1}, {X: 17, Y: 14, Layer: 1}, {X: 5, Y: 16, Layer: 1}}
	_, s1, err := RouteNet(g, 11, pins, fullWindow(g))
	if err != nil {
		t.Fatal(err)
	}
	_, s2, err := RouteNet(g, 11, pins, fullWindow(g))
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("expansion stats differ: %+v vs %+v", s1, s2)
	}
}

// TestSearchObservation checks the per-search metrics hooks: a routed
// net records its expansion count, pushes and one search tick; a nil
// observer leaves the search untouched.
func TestSearchObservation(t *testing.T) {
	g := testGrid(t, 20, 20, 4)
	pins := []geom.Point3{{X: 2, Y: 3, Layer: 1}, {X: 12, Y: 9, Layer: 1}}

	s := NewSearch()
	s.SetObserver(&obs.Observer{Metrics: obs.NewRegistry()})
	// Re-resolve to inspect: SetObserver stores handles from this registry.
	reg := obs.NewRegistry()
	s.SetObserver(&obs.Observer{Metrics: reg})
	_, st, err := s.RouteNet(g, 1, pins, fullWindow(g))
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[obs.MMazeSearches]; got != 1 {
		t.Errorf("search counter = %d, want 1", got)
	}
	if got := snap.Counters[obs.MMazePushes]; got != int64(st.Pushes) {
		t.Errorf("push counter = %d, want %d", got, st.Pushes)
	}
	h := snap.Histograms[obs.MMazeExpansions]
	if h.Count != 1 || h.Sum != int64(st.Expansions) {
		t.Errorf("expansion histogram = %+v, want one observation of %d", h, st.Expansions)
	}

	// Nil observer: same search must still route.
	s2 := NewSearch()
	s2.SetObserver(nil)
	if _, _, err := s2.RouteNet(g, 1, pins, fullWindow(g)); err != nil {
		t.Fatalf("nil observer broke routing: %v", err)
	}
}
