package maze

import (
	"reflect"
	"testing"

	"fastgr/internal/design"
	"fastgr/internal/geom"
	"fastgr/internal/grid"
	"fastgr/internal/route"
	"fastgr/internal/stt"
)

// scratchFixture builds a congested design slice with varied windows so
// scratch reuse crosses window sizes and grids.
func scratchFixture(t testing.TB) (*grid.Graph, []*design.Net, [][]geom.Point3, []geom.Rect) {
	d := design.MustGenerate("18test5m", 0.004)
	g := grid.NewFromDesign(d)
	nets := d.Nets[:80]
	pins := make([][]geom.Point3, len(nets))
	wins := make([]geom.Rect, len(nets))
	for i, n := range nets {
		pins[i] = route.PinTerminals(stt.Build(n))
		wins[i] = n.BBox().Inflate(2+i%5).ClampTo(g.W, g.H)
	}
	return g, nets, pins, wins
}

// TestSearchReuseMatchesFresh locks the bit-identical contract: one Search
// routed through many nets, windows and repeat visits must produce exactly
// the geometry and work counters a fresh scratch per call produces.
func TestSearchReuseMatchesFresh(t *testing.T) {
	g, nets, pins, wins := scratchFixture(t)
	s := NewSearch()
	// Two rounds so the second round hits fully warmed scratch state.
	for round := 0; round < 2; round++ {
		for i, n := range nets {
			fresh, freshStats, err1 := RouteNet(g, n.ID, pins[i], wins[i])
			reused, reusedStats, err2 := s.RouteNet(g, n.ID, pins[i], wins[i])
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("round %d net %s: error divergence: %v vs %v", round, n.Name, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if freshStats != reusedStats {
				t.Fatalf("round %d net %s: stats %+v vs %+v", round, n.Name, freshStats, reusedStats)
			}
			if !reflect.DeepEqual(fresh.Paths, reused.Paths) {
				t.Fatalf("round %d net %s: geometry diverged:\n%+v\nvs\n%+v",
					round, n.Name, fresh.Paths, reused.Paths)
			}
		}
	}
}

// TestSearchReuseAcrossGrids rebinding a scratch to a different grid must
// not leak state from the previous one.
func TestSearchReuseAcrossGrids(t *testing.T) {
	g1, nets1, pins1, wins1 := scratchFixture(t)
	d2 := design.MustGenerate("18test8m", 0.003)
	g2 := grid.NewFromDesign(d2)
	n2 := d2.Nets[0]
	p2 := route.PinTerminals(stt.Build(n2))
	w2 := n2.BBox().Inflate(4).ClampTo(g2.W, g2.H)

	s := NewSearch()
	if _, _, err := s.RouteNet(g1, nets1[0].ID, pins1[0], wins1[0]); err != nil {
		t.Fatal(err)
	}
	reused, _, err := s.RouteNet(g2, n2.ID, p2, w2)
	if err != nil {
		t.Fatal(err)
	}
	fresh, _, err := RouteNet(g2, n2.ID, p2, w2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.Paths, reused.Paths) {
		t.Fatalf("cross-grid reuse diverged:\n%+v\nvs\n%+v", fresh.Paths, reused.Paths)
	}
	if err := reused.Validate(g2, p2); err != nil {
		t.Fatal(err)
	}
}

// TestSearchReuseSteadyStateAllocs asserts the hot path stops allocating
// search state: repeated RouteNet calls on a warmed scratch may only
// allocate the returned route.
func TestSearchReuseSteadyStateAllocs(t *testing.T) {
	g, nets, pins, wins := scratchFixture(t)
	s := NewSearch()
	route := func() {
		for i, n := range nets {
			if _, _, err := s.RouteNet(g, n.ID, pins[i], wins[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	route() // warm the scratch
	fresh := testing.AllocsPerRun(3, func() {
		for i, n := range nets {
			if _, _, err := RouteNet(g, n.ID, pins[i], wins[i]); err != nil {
				t.Fatal(err)
			}
		}
	})
	reused := testing.AllocsPerRun(3, route)
	if reused > fresh/2 {
		t.Fatalf("scratch reuse saves too little: %.0f allocs vs %.0f fresh", reused, fresh)
	}
}
