// Package metrics computes the global-routing solution quality score of
// eq. 15: s = αW + βV + γS with α=0.5 (wirelength), β=4 (vias), γ=500
// (shorts), the weighting the paper uses to compare routers.
package metrics

import "math"

// Weights of eq. 15.
const (
	Alpha = 0.5   // wirelength weight
	Beta  = 4.0   // via-count weight
	Gamma = 500.0 // shorts weight
)

// Quality is the solution quality of one routing run.
type Quality struct {
	Wirelength int // total distinct wire edges used (G-cell units)
	Vias       int // total distinct via edges used
	Shorts     int // total overflow (demand above capacity)
}

// Score evaluates eq. 15.
func (q Quality) Score() float64 {
	return Alpha*float64(q.Wirelength) + Beta*float64(q.Vias) + Gamma*float64(q.Shorts)
}

// Add accumulates another quality record (e.g., per-net contributions).
func (q *Quality) Add(o Quality) {
	q.Wirelength += o.Wirelength
	q.Vias += o.Vias
	q.Shorts += o.Shorts
}

// ImprovementPct returns how much better (positive) or worse (negative) q is
// than base on a metric extractor, in percent of base — the form the paper
// reports (e.g., 27.855% shorts improvement).
//
// Degenerate-base semantics: with base == 0 there is no percentage-of-base
// to report. base == q == 0 is "no change" and returns 0; base == 0 with
// q != 0 has no meaningful sign or magnitude (any finite number, like the
// -100 an earlier version returned, misstates a regression from zero), so
// it returns NaN — the Inf-free "undefined" sentinel. Aggregators must
// filter it out (see ImprovementDefined); naive averaging of an undefined
// entry is a bug this sentinel makes loud instead of silently wrong.
func ImprovementPct(base, q float64) float64 {
	if base == 0 {
		if q == 0 {
			return 0
		}
		return math.NaN()
	}
	return (base - q) / base * 100
}

// ImprovementDefined reports whether ImprovementPct(base, q) is a real
// percentage (false exactly when the NaN sentinel would be returned).
func ImprovementDefined(base, q float64) bool {
	return base != 0 || q == 0
}
