package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScoreWeights(t *testing.T) {
	q := Quality{Wirelength: 100, Vias: 10, Shorts: 2}
	want := 0.5*100 + 4*10 + 500*2
	if got := q.Score(); got != want {
		t.Fatalf("Score = %v, want %v", got, want)
	}
}

func TestScoreShortsDominate(t *testing.T) {
	// One short outweighs hundreds of wirelength units, as intended by the
	// paper's weighting.
	clean := Quality{Wirelength: 900, Vias: 10}
	shorted := Quality{Wirelength: 100, Vias: 10, Shorts: 1}
	if shorted.Score() <= clean.Score() {
		t.Fatal("a short should cost more than 800 wirelength units")
	}
}

func TestAdd(t *testing.T) {
	a := Quality{1, 2, 3}
	a.Add(Quality{10, 20, 30})
	if a != (Quality{11, 22, 33}) {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestScoreAdditive(t *testing.T) {
	f := func(w1, v1, s1, w2, v2, s2 uint16) bool {
		a := Quality{int(w1), int(v1), int(s1)}
		b := Quality{int(w2), int(v2), int(s2)}
		sum := a
		sum.Add(b)
		return math.Abs(sum.Score()-(a.Score()+b.Score())) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestImprovementPct(t *testing.T) {
	cases := []struct {
		name    string
		base, q float64
		want    float64 // ignored when undefined
		defined bool
	}{
		{"better", 200, 150, 25, true},
		{"worse", 100, 120, -20, true},
		{"unchanged", 100, 100, 0, true},
		{"to zero is full improvement", 100, 0, 100, true},
		{"zero to zero is no change", 0, 0, 0, true},
		{"zero base regression is undefined", 0, 5, 0, false},
		{"zero base negative q is undefined", 0, -5, 0, false},
	}
	for _, c := range cases {
		got := ImprovementPct(c.base, c.q)
		if ImprovementDefined(c.base, c.q) != c.defined {
			t.Errorf("%s: ImprovementDefined(%v, %v) = %v, want %v",
				c.name, c.base, c.q, !c.defined, c.defined)
		}
		if !c.defined {
			if !math.IsNaN(got) {
				t.Errorf("%s: ImprovementPct(%v, %v) = %v, want the NaN sentinel",
					c.name, c.base, c.q, got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("%s: ImprovementPct(%v, %v) = %v, want %v",
				c.name, c.base, c.q, got, c.want)
		}
		if math.IsInf(got, 0) {
			t.Errorf("%s: ImprovementPct must be Inf-free, got %v", c.name, got)
		}
	}
}
