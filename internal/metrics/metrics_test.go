package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScoreWeights(t *testing.T) {
	q := Quality{Wirelength: 100, Vias: 10, Shorts: 2}
	want := 0.5*100 + 4*10 + 500*2
	if got := q.Score(); got != want {
		t.Fatalf("Score = %v, want %v", got, want)
	}
}

func TestScoreShortsDominate(t *testing.T) {
	// One short outweighs hundreds of wirelength units, as intended by the
	// paper's weighting.
	clean := Quality{Wirelength: 900, Vias: 10}
	shorted := Quality{Wirelength: 100, Vias: 10, Shorts: 1}
	if shorted.Score() <= clean.Score() {
		t.Fatal("a short should cost more than 800 wirelength units")
	}
}

func TestAdd(t *testing.T) {
	a := Quality{1, 2, 3}
	a.Add(Quality{10, 20, 30})
	if a != (Quality{11, 22, 33}) {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestScoreAdditive(t *testing.T) {
	f := func(w1, v1, s1, w2, v2, s2 uint16) bool {
		a := Quality{int(w1), int(v1), int(s1)}
		b := Quality{int(w2), int(v2), int(s2)}
		sum := a
		sum.Add(b)
		return math.Abs(sum.Score()-(a.Score()+b.Score())) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestImprovementPct(t *testing.T) {
	if got := ImprovementPct(200, 150); got != 25 {
		t.Fatalf("ImprovementPct = %v, want 25", got)
	}
	if got := ImprovementPct(100, 120); got != -20 {
		t.Fatalf("ImprovementPct = %v, want -20", got)
	}
	if got := ImprovementPct(0, 0); got != 0 {
		t.Fatalf("ImprovementPct(0,0) = %v", got)
	}
	if got := ImprovementPct(0, 5); got != -100 {
		t.Fatalf("ImprovementPct(0,5) = %v", got)
	}
}
