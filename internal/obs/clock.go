package obs

import "time"

// This file is the pipeline's only sanctioned wall-clock access for
// instrumentation outside package obs itself. fastgrlint's detwall
// check forbids determinism-critical packages (core, taskflow, maze,
// sched, pattern, ...) from calling time.Now or time.Since directly;
// observational timing — the report's *Wall columns, span timestamps,
// wait/run histograms — routes through a Stopwatch instead, so every
// wall-clock read in the router funnels through this one audited file.
// The contract stays the package's: a wall-clock reading must never
// feed a modeled time, routed geometry or reported quality.

// Stopwatch marks a wall-clock instant. The zero Stopwatch is valid
// and measures from the zero time; callers that may skip starting it
// should gate on their own observing flag, as the instrumented hot
// paths do.
type Stopwatch struct{ t time.Time }

// StartStopwatch captures the current wall-clock instant.
func StartStopwatch() Stopwatch { return Stopwatch{t: time.Now()} }

// Elapsed returns the wall-clock time since the stopwatch was started.
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.t) }

// ElapsedNs is Elapsed in integer nanoseconds — the unit the duration
// histograms observe.
func (s Stopwatch) ElapsedNs() int64 { return s.Elapsed().Nanoseconds() }
