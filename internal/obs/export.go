package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// traceEvent is one Chrome trace_event entry. Only the "X" (complete)
// and "M" (metadata) phases are emitted; ts and dur are microseconds,
// per the trace-event format spec.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	DroppedEvents   uint64       `json:"droppedEvents"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// WriteTrace exports the tracer's buffered spans as Chrome trace_event
// JSON, loadable in chrome://tracing or https://ui.perfetto.dev: lane 0
// is the "stages" thread (plan / pattern / rrr and their sub-spans),
// lane 1+w is executor worker w. Events are sorted by start time with
// enclosing spans first, so nesting renders correctly. A nil tracer
// exports an empty but valid trace.
func WriteTrace(w io.Writer, t *Tracer) error {
	f := traceFile{DisplayTimeUnit: "ms", DroppedEvents: t.Dropped()}
	f.TraceEvents = append(f.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", Args: map[string]any{"name": "fastgr"},
	})
	for lane := 0; lane < t.Lanes(); lane++ {
		name := "stages"
		if lane > 0 {
			name = fmt.Sprintf("worker-%d", lane-1)
		}
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Tid: lane, Args: map[string]any{"name": name},
		})
	}
	events := t.Events()
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Start != events[j].Start {
			return events[i].Start < events[j].Start
		}
		if events[i].Dur != events[j].Dur {
			return events[i].Dur > events[j].Dur // parents enclose children
		}
		return events[i].Depth < events[j].Depth
	})
	for _, e := range events {
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: e.Name,
			Ph:   "X",
			Tid:  e.Lane,
			Ts:   float64(e.Start.Nanoseconds()) / 1e3,
			Dur:  float64(e.Dur.Nanoseconds()) / 1e3,
			Args: map[string]any{"depth": e.Depth},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// WriteSummary renders a registry snapshot as the human-readable
// end-of-run table: counters and gauges first, then one sketch per
// histogram (count / mean / min / max plus a bar per non-empty bucket).
func WriteSummary(w io.Writer, s Snapshot) {
	if len(s.Counters) > 0 || len(s.Gauges) > 0 {
		fmt.Fprintf(w, "%-28s %14s\n", "counter/gauge", "value")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(w, "%-28s %14d\n", name, s.Counters[name])
		}
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(w, "%-28s %14d\n", name, s.Gauges[name])
		}
	}
	for _, name := range sortedHistKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(w, "%s: count=%d mean=%.1f min=%d max=%d\n",
			name, h.Count, h.Mean(), h.Min, h.Max)
		peak := int64(0)
		for _, c := range h.Counts {
			if c > peak {
				peak = c
			}
		}
		for i, c := range h.Counts {
			if c == 0 {
				continue
			}
			label := fmt.Sprintf("> %d", h.Bounds[len(h.Bounds)-1])
			if i < len(h.Bounds) {
				label = fmt.Sprintf("<= %d", h.Bounds[i])
			}
			bar := 1 + int(19*c/peak)
			fmt.Fprintf(w, "  %-14s %10d %s\n", label, c, strings.Repeat("#", bar))
		}
	}
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedHistKeys(m map[string]HistSnapshot) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
