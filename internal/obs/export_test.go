package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// goldenTrace builds the deterministic fixture behind the golden test:
// a fake 1µs-step clock, a stage span on the coordinator lane enclosing
// one maze span on each of two worker lanes.
func goldenTrace() *Tracer {
	tr := newFakeTracer(8, 2, time.Microsecond)
	plan := tr.StartSpan("plan", Coordinator)
	m0 := tr.StartSpan("maze:n0", 0)
	m0.End()
	m1 := tr.StartSpan("maze:n1", 1)
	m1.End()
	plan.End()
	return tr
}

// TestWriteTraceGolden pins the exact Chrome trace_event JSON: lane
// metadata first, then complete events sorted by start time with
// microsecond timestamps. Any byte change here is a format change that
// chrome://tracing / Perfetto consumers would see.
func TestWriteTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, goldenTrace()); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenTraceJSON {
		t.Fatalf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, goldenTraceJSON)
	}
}

// TestWriteTraceValidJSONAndLanes decodes the export generically: it
// must be valid JSON with one thread_name metadata entry per lane and
// every span event carrying the X phase.
func TestWriteTraceValidJSONAndLanes(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, goldenTrace()); err != nil {
		t.Fatal(err)
	}
	var f struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		DroppedEvents   uint64 `json:"droppedEvents"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	lanes := map[int]string{}
	spans := 0
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				lanes[e.Tid] = e.Name
			}
		case "X":
			spans++
			if e.Dur <= 0 {
				t.Errorf("span %q has non-positive dur %v", e.Name, e.Dur)
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if len(lanes) != 3 {
		t.Errorf("got %d lanes, want 3 (stages + 2 workers)", len(lanes))
	}
	if spans != 3 {
		t.Errorf("got %d span events, want 3", spans)
	}
}

func TestWriteTraceNilTracer(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("nil-tracer export must still be valid JSON")
	}
}

func TestWriteSummary(t *testing.T) {
	r := NewRegistry()
	r.Counter("rrr.nets_ripped").Add(42)
	r.Gauge("rrr.iterations").Set(3)
	h := r.Histogram("maze.expansions", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)
	var buf bytes.Buffer
	WriteSummary(&buf, r.Snapshot())
	out := buf.String()
	for _, want := range []string{
		"rrr.nets_ripped", "42",
		"rrr.iterations", "3",
		"maze.expansions: count=3", "min=5 max=5000",
		"<= 10", "<= 100", "> 100", "#",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// goldenTraceJSON is the expected WriteTrace output for goldenTrace.
const goldenTraceJSON = `{
 "displayTimeUnit": "ms",
 "droppedEvents": 0,
 "traceEvents": [
  {
   "name": "process_name",
   "ph": "M",
   "pid": 0,
   "tid": 0,
   "ts": 0,
   "args": {
    "name": "fastgr"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "pid": 0,
   "tid": 0,
   "ts": 0,
   "args": {
    "name": "stages"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "pid": 0,
   "tid": 1,
   "ts": 0,
   "args": {
    "name": "worker-0"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "pid": 0,
   "tid": 2,
   "ts": 0,
   "args": {
    "name": "worker-1"
   }
  },
  {
   "name": "plan",
   "ph": "X",
   "pid": 0,
   "tid": 0,
   "ts": 1,
   "dur": 5,
   "args": {
    "depth": 0
   }
  },
  {
   "name": "maze:n0",
   "ph": "X",
   "pid": 0,
   "tid": 1,
   "ts": 2,
   "dur": 1,
   "args": {
    "depth": 0
   }
  },
  {
   "name": "maze:n1",
   "ph": "X",
   "pid": 0,
   "tid": 2,
   "ts": 4,
   "dur": 1,
   "args": {
    "depth": 0
   }
  }
 ]
}
`
