package obs

import (
	"sync"
	"time"
)

// Health tracks stage-level liveness for the ops server's /healthz
// endpoint: each pipeline stage reports when it starts, each time it
// makes forward progress (a batch committed, an iteration finished) and
// when it ends, and a scrape reads back how long ago each running stage
// last moved. Like every obs sink it is strictly passive and nil-safe:
// the nil *Health is the disabled tracker, and nothing a stage reports
// here ever feeds routed geometry or a reported metric.
//
// Beats arrive from parallel sections (leaf slots, pool workers), so
// the tracker is mutex-guarded; the lock is taken once per beat — stage
// and iteration cadence, never per net — which keeps it far off the hot
// path.
type Health struct {
	mu     sync.Mutex
	now    func() time.Time // injectable clock for deterministic tests
	order  []string         // stage names in first-seen order
	stages map[string]*stageState
}

type stageState struct {
	running bool
	starts  int64
	beats   int64
	last    time.Time // last progress instant (start, beat or done)
}

// StageHealth is one stage's liveness snapshot. SinceProgress is
// computed against the tracker's clock at snapshot time, so consumers
// (the /healthz handler) need no wall-clock access of their own.
type StageHealth struct {
	Name    string `json:"name"`
	Running bool   `json:"running"`
	// Starts counts StageStart calls — a stage that runs once per
	// routing run starts once; per-iteration stages may restart.
	Starts int64 `json:"starts"`
	// Beats counts forward-progress reports since the first start.
	Beats int64 `json:"beats"`
	// SinceProgress is the time since the stage last reported any
	// lifecycle event.
	SinceProgress time.Duration `json:"since_progress_ns"`
}

// NewHealth returns an empty health tracker.
func NewHealth() *Health {
	return &Health{now: time.Now, stages: map[string]*stageState{}}
}

// setClock pins the clock for deterministic tests.
func (h *Health) setClock(now func() time.Time) { h.now = now }

func (h *Health) touch(name string) *stageState {
	s := h.stages[name]
	if s == nil {
		s = &stageState{}
		h.stages[name] = s
		h.order = append(h.order, name)
	}
	s.last = h.now()
	return s
}

// StageStart marks the stage as running and beats it.
func (h *Health) StageStart(name string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.touch(name)
	s.running = true
	s.starts++
}

// StageBeat reports forward progress on a stage. Beating a stage that
// never started records it (running) anyway, so a missed StageStart
// degrades to a slightly lossy report rather than a lost stage.
func (h *Health) StageBeat(name string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.touch(name)
	s.running = true
	s.beats++
}

// StageDone marks the stage as no longer running.
func (h *Health) StageDone(name string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.touch(name).running = false
}

// AbortAll marks every known stage as no longer running. A run that
// stops between stages — a cancellation or deadline checkpoint — never
// reaches its stages' StageDone calls; without this, a long-lived
// process sharing one tracker across runs (the fastgrd daemon) would
// report the aborted stage running forever and trip stall detection on
// a healthy server.
func (h *Health) AbortAll() {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, s := range h.stages {
		s.running = false
	}
}

// Stages returns every known stage in first-seen order with its
// progress age as of now. A nil tracker returns nil.
func (h *Health) Stages() []StageHealth {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.now()
	out := make([]StageHealth, 0, len(h.order))
	for _, name := range h.order {
		s := h.stages[name]
		out = append(out, StageHealth{
			Name:          name,
			Running:       s.running,
			Starts:        s.starts,
			Beats:         s.beats,
			SinceProgress: now.Sub(s.last),
		})
	}
	return out
}

// Stalled returns the stages still marked running whose last progress
// is older than window. A zero or negative window means no stage is
// ever considered stalled (liveness is then report-only).
func (h *Health) Stalled(window time.Duration) []StageHealth {
	if h == nil || window <= 0 {
		return nil
	}
	var out []StageHealth
	for _, s := range h.Stages() {
		if s.Running && s.SinceProgress > window {
			out = append(out, s)
		}
	}
	return out
}
