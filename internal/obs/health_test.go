package obs

import (
	"testing"
	"time"
)

func TestHealthLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	h := NewHealth()
	h.setClock(func() time.Time { return now })

	h.StageStart("plan")
	now = now.Add(2 * time.Second)
	h.StageDone("plan")
	h.StageStart("rrr")
	h.StageBeat("rrr")
	now = now.Add(30 * time.Second)

	st := h.Stages()
	if len(st) != 2 {
		t.Fatalf("want 2 stages, got %+v", st)
	}
	if st[0].Name != "plan" || st[1].Name != "rrr" {
		t.Fatalf("stage order not first-seen: %+v", st)
	}
	plan, rrr := st[0], st[1]
	if plan.Running || plan.Starts != 1 {
		t.Fatalf("plan: %+v", plan)
	}
	if plan.SinceProgress != 30*time.Second {
		t.Fatalf("plan age: %v", plan.SinceProgress)
	}
	if !rrr.Running || rrr.Beats != 1 || rrr.SinceProgress != 30*time.Second {
		t.Fatalf("rrr: %+v", rrr)
	}

	if got := h.Stalled(0); got != nil {
		t.Fatalf("window 0 must disable stall detection, got %+v", got)
	}
	stalled := h.Stalled(10 * time.Second)
	if len(stalled) != 1 || stalled[0].Name != "rrr" {
		t.Fatalf("want rrr stalled, got %+v", stalled)
	}
	h.StageBeat("rrr")
	if got := h.Stalled(10 * time.Second); len(got) != 0 {
		t.Fatalf("beat did not clear the stall: %+v", got)
	}
}

func TestHealthNilSafe(t *testing.T) {
	var h *Health
	h.StageStart("x")
	h.StageBeat("x")
	h.StageDone("x")
	if h.Stages() != nil || h.Stalled(time.Second) != nil {
		t.Fatalf("nil health not inert")
	}
	var o *Observer
	if o.H() != nil {
		t.Fatalf("nil observer health not nil")
	}
}

// TestHealthBeatWithoutStart pins the lossy-degrade behavior: a beat on
// an unknown stage records it rather than dropping it.
func TestHealthBeatWithoutStart(t *testing.T) {
	h := NewHealth()
	h.StageBeat("mystery")
	st := h.Stages()
	if len(st) != 1 || !st[0].Running || st[0].Beats != 1 || st[0].Starts != 0 {
		t.Fatalf("got %+v", st)
	}
}

// TestHealthAbortAll pins the daemon-restart hygiene: an aborted run
// clears every running flag (no phantom "running forever" stage to trip
// stall detection), without inventing stages or losing counts.
func TestHealthAbortAll(t *testing.T) {
	var nilh *Health
	nilh.AbortAll() // must not panic

	h := NewHealth()
	h.StageStart("plan")
	h.StageDone("plan")
	h.StageStart("pattern")
	h.AbortAll()
	st := h.Stages()
	if len(st) != 2 {
		t.Fatalf("AbortAll changed the stage set: %+v", st)
	}
	for _, s := range st {
		if s.Running {
			t.Fatalf("stage %s still running after AbortAll", s.Name)
		}
	}
	if st[1].Starts != 1 {
		t.Fatalf("AbortAll clobbered counters: %+v", st[1])
	}
	if h.Stalled(time.Nanosecond) != nil {
		t.Fatalf("aborted stages still count as stalled")
	}
}
