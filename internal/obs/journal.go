package obs

import (
	"encoding/json"
	"sync"
	"time"

	"fastgr/internal/atomicio"
)

// Journal is the structured run journal: one JSON object per line, one
// line per pipeline stage boundary or rip-up iteration. Every Emit
// republishes the whole journal through internal/atomicio (temp file +
// rename), so a crash at any instant leaves a complete, parseable
// journal of every event emitted before it — never a torn last line.
// The event cadence is stages and iterations, a few dozen lines per
// run, so the quadratic rewrite cost is noise next to one maze search.
//
// Envelope schema (one per line):
//
//	{"seq": 3, "ts_ms": 1754650000123, "event": "iter", "data": {...}}
//
// seq increases by one per event; ts_ms is the wall-clock Unix
// timestamp in milliseconds (observational only, like every wall read
// in this package); data is the emitter's payload, schema'd by event
// kind (see DESIGN.md "Serving observability"). The nil *Journal is the
// disabled journal: Emit is a no-op, so call sites need no conditionals.
type Journal struct {
	mu   sync.Mutex
	path string
	now  func() time.Time
	buf  []byte
	seq  int64
	err  error // first publish error; later Emits still accumulate
}

type journalEnvelope struct {
	Seq   int64  `json:"seq"`
	TsMs  int64  `json:"ts_ms"`
	Event string `json:"event"`
	Data  any    `json:"data"`
}

// NewJournal returns a journal publishing to path. Nothing is written
// until the first Emit.
func NewJournal(path string) *Journal {
	return &Journal{path: path, now: time.Now}
}

// setClock pins the clock for deterministic tests.
func (j *Journal) setClock(now func() time.Time) { j.now = now }

// Emit appends one event and republishes the journal file. Marshal or
// publish failures are remembered (first error wins) and reported by
// Err; emission itself never fails the caller, keeping the journal as
// passive as the rest of the flight recorder.
func (j *Journal) Emit(event string, data any) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	line, err := json.Marshal(journalEnvelope{
		Seq:   j.seq,
		TsMs:  j.now().UnixMilli(),
		Event: event,
		Data:  data,
	})
	if err != nil {
		if j.err == nil {
			j.err = err
		}
		return
	}
	j.buf = append(j.buf, line...)
	j.buf = append(j.buf, '\n')
	if err := atomicio.WriteFile(j.path, j.buf); err != nil && j.err == nil {
		j.err = err
	}
}

// Events reports how many events were emitted (0 for nil).
func (j *Journal) Events() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Err returns the first marshal or publish error, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
