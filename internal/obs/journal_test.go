package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func readJournal(t *testing.T, path string) []journalEnvelope {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	defer f.Close()
	var out []journalEnvelope
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var env journalEnvelope
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			t.Fatalf("line %d is not valid JSON: %v (%q)", len(out)+1, err, sc.Text())
		}
		out = append(out, env)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return out
}

func TestJournalEmit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j := NewJournal(path)
	now := time.UnixMilli(5000)
	j.setClock(func() time.Time { return now })

	j.Emit("stage", map[string]any{"stage": "plan"})
	// The file is complete and parseable after every emit — the
	// crash-safety contract.
	if got := readJournal(t, path); len(got) != 1 || got[0].Seq != 1 || got[0].TsMs != 5000 {
		t.Fatalf("after first emit: %+v", got)
	}
	now = now.Add(250 * time.Millisecond)
	j.Emit("iter", map[string]any{"iter": 0})
	j.Emit("iter", map[string]any{"iter": 1})
	got := readJournal(t, path)
	if len(got) != 3 {
		t.Fatalf("want 3 events, got %d", len(got))
	}
	for i, env := range got {
		if env.Seq != int64(i+1) {
			t.Fatalf("seq not monotone: %+v", got)
		}
	}
	if got[1].TsMs != 5250 || got[1].Event != "iter" {
		t.Fatalf("envelope fields: %+v", got[1])
	}
	if j.Events() != 3 {
		t.Fatalf("Events() = %d", j.Events())
	}
	if err := j.Err(); err != nil {
		t.Fatalf("Err() = %v", err)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Emit("stage", nil)
	if j.Events() != 0 || j.Err() != nil {
		t.Fatalf("nil journal not inert")
	}
}

func TestJournalPublishError(t *testing.T) {
	// A directory that does not exist makes every publish fail; the
	// error is remembered, not raised at the emit site.
	j := NewJournal(filepath.Join(t.TempDir(), "missing", "deep", "run.jsonl"))
	j.Emit("stage", map[string]any{"stage": "plan"})
	if j.Err() == nil {
		t.Fatalf("expected a publish error")
	}
	if j.Events() != 1 {
		t.Fatalf("events not counted past the error")
	}
}
