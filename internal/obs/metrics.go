package obs

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Registry hands out named counters, gauges and histograms. The nil
// *Registry is the disabled registry: every lookup returns a nil handle
// whose methods are no-ops, so instrumented code needs no conditionals.
// Lookups take a mutex; hot paths should resolve their handles once and
// hold them (the handles themselves are lock-free atomics).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (which must be sorted ascending) on first use.
// Re-registering a name with different bounds is a bug and panics.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
		return h
	}
	if len(h.bounds) != len(bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
	}
	for i, b := range bounds {
		if h.bounds[i] != b {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
		}
	}
	return h
}

// Counter is a monotonically increasing atomic counter; nil is a no-op.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the counter (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value metric; nil is a no-op.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value reads the gauge (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram over int64 observations with
// Prometheus-style upper-bound semantics: observation v lands in the
// first bucket whose bound satisfies v <= bound, and in the implicit
// overflow bucket when v exceeds every bound. Count, sum, min and max
// are tracked exactly; nil is a no-op.
type Histogram struct {
	bounds   []int64
	counts   []atomic.Int64 // len(bounds)+1, last = overflow
	count    atomic.Int64
	sum      atomic.Int64
	min, max atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be sorted ascending")
		}
	}
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations so far (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running sum of observed values (0 on a nil histogram).
// Count and Sum are read independently, so a ratio taken while
// observations are in flight may be off by the in-flight values — fine
// for advisory consumers like the daemon's Retry-After estimate.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// HistSnapshot is a consistent-enough copy of a histogram for export:
// individual fields are atomically read, so a snapshot taken while
// observations are in flight may be off by the in-flight observations
// but never corrupt.
type HistSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"` // len(Bounds)+1, last = overflow
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Min    int64   `json:"min"` // 0 when Count == 0
	Max    int64   `json:"max"` // 0 when Count == 0
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot is a point-in-time copy of a registry, ready for export.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state. A nil registry yields a
// zero snapshot with non-nil (empty) maps.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{
			Counters:   map[string]int64{},
			Gauges:     map[string]int64{},
			Histograms: map[string]HistSnapshot{},
		}
	}
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistSnapshot{
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.count.Load(),
			Sum:    h.sum.Load(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		if hs.Count > 0 {
			hs.Min = h.min.Load()
			hs.Max = h.max.Load()
		}
		s.Histograms[name] = hs
	}
	return s
}
