package obs

import (
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(2)
	c.Add(3)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Set(4)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestNilRegistryHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", Pow2Buckets(1, 4))
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Add(1)
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil handles must read zero")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

// TestHistogramBucketBoundaries pins the upper-bound (v <= bound)
// semantics at every edge, including the implicit overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{10, 100, 1000})
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0},   // below everything → first bucket
		{0, 0},    // zero → first bucket
		{10, 0},   // exactly on a bound → that bucket
		{11, 1},   // just above a bound → next bucket
		{100, 1},  // second bound edge
		{101, 2},  // just above second bound
		{1000, 2}, // last bound edge
		{1001, 3}, // above every bound → overflow bucket
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	s := r.Snapshot().Histograms["h"]
	wantCounts := []int64{3, 2, 2, 1}
	for i, want := range wantCounts {
		if s.Counts[i] != want {
			t.Errorf("bucket %d count = %d, want %d (counts %v)", i, s.Counts[i], want, s.Counts)
		}
	}
	if s.Count != int64(len(cases)) {
		t.Errorf("count = %d, want %d", s.Count, len(cases))
	}
	if s.Min != -5 || s.Max != 1001 {
		t.Errorf("min/max = %d/%d, want -5/1001", s.Min, s.Max)
	}
	var sum int64
	for _, c := range cases {
		sum += c.v
	}
	if s.Sum != sum {
		t.Errorf("sum = %d, want %d", s.Sum, sum)
	}
}

func TestHistogramReregisterSameBoundsOK(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("h", []int64{1, 2, 3})
	h2 := r.Histogram("h", []int64{1, 2, 3})
	if h1 != h2 {
		t.Fatal("same name and bounds must return the same histogram")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with different bounds must panic")
		}
	}()
	r.Histogram("h", []int64{1, 2, 4})
}

func TestHistogramUnsortedBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds must panic")
		}
	}()
	NewRegistry().Histogram("bad", []int64{3, 1, 2})
}

func TestEmptyHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []int64{1})
	s := r.Snapshot().Histograms["h"]
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.Mean() != 0 {
		t.Fatalf("empty histogram snapshot = %+v, want zeros", s)
	}
}

// TestConcurrentIncrements exercises counters, gauges and histogram
// min/max CAS loops under the race detector.
func TestConcurrentIncrements(t *testing.T) {
	const workers, per = 8, 1000
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", Pow2Buckets(1, 12))
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(1)
				h.Observe(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	s := r.Snapshot().Histograms["h"]
	if s.Count != workers*per {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*per)
	}
	if s.Min != 0 || s.Max != workers*per-1 {
		t.Fatalf("min/max = %d/%d, want 0/%d", s.Min, s.Max, workers*per-1)
	}
}

func TestPow2Buckets(t *testing.T) {
	got := Pow2Buckets(16, 4)
	want := []int64{16, 32, 64, 128}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Pow2Buckets = %v, want %v", got, want)
		}
	}
	if b := Pow2Buckets(0, 2); b[0] != 1 || b[1] != 2 {
		t.Fatalf("Pow2Buckets with lo<1 should clamp to 1, got %v", b)
	}
}

func TestObserverNilSafety(t *testing.T) {
	var o *Observer
	if o.T() != nil || o.M() != nil || o.Enabled() {
		t.Fatal("nil observer must be fully inert")
	}
	o = &Observer{}
	if o.Enabled() {
		t.Fatal("empty observer is not enabled")
	}
	o = &Observer{Metrics: NewRegistry()}
	if !o.Enabled() || o.T() != nil {
		t.Fatal("metrics-only observer: Enabled true, tracer nil")
	}
}
