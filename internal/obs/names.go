package obs

import (
	"sort"
	"strings"
)

// This file is the single name-mapping table between the registry's
// dotted metric names and the Prometheus exposition (internal/obs/prom):
// every dotted name maps to exactly one fastgr_* metric family plus a
// fixed label set, so a metric appears exactly once in the snapshot file
// and exactly once (as one labeled series) in the /metrics exposition.
// Dotted siblings that are really one logical metric split by a
// dimension — grid.cost.hits/misses, pattern.edges.lshape/hybrid, the
// per-algorithm maze expansion histograms, the fault accounting
// counters — share a family and differ only in a label, which is what a
// Prometheus consumer expects to aggregate over.
//
// TestPromNameTable keeps the table exhaustive over the shared metric
// constants and free of duplicate (family, labels) pairs; a metric
// registered without a table entry still exposes through the sanitized
// fallback rather than disappearing from a scrape.

// PromLabel is one constant label pair attached to an exposed series.
type PromLabel struct {
	Key, Value string
}

// PromMapping describes how one dotted registry metric appears in the
// Prometheus exposition: the family name (without the _total/_bucket
// type suffixes, which the renderer appends), its HELP text, and the
// constant labels distinguishing dotted siblings within the family.
type PromMapping struct {
	Family string
	Help   string
	Labels []PromLabel
}

// promTable maps every shared dotted metric name to its exposition
// family. Families must not collide across metric kinds (a counter and
// a histogram cannot share a family); the obs test suite enforces that.
var promTable = map[string]PromMapping{
	MMazeExpansions: {Family: "fastgr_maze_expansions",
		Help: "Settled nodes per maze search."},
	MMazeExpansionsAStar: {Family: "fastgr_maze_algorithm_expansions",
		Help:   "Settled nodes per maze search, split by algorithm.",
		Labels: []PromLabel{{"algorithm", "astar"}}},
	MMazeExpansionsDijkstra: {Family: "fastgr_maze_algorithm_expansions",
		Help:   "Settled nodes per maze search, split by algorithm.",
		Labels: []PromLabel{{"algorithm", "dijkstra"}}},
	MMazePushes: {Family: "fastgr_maze_pushes",
		Help: "Heap pushes across all maze searches."},
	MMazeSearches: {Family: "fastgr_maze_searches",
		Help: "Maze RouteNet invocations."},
	MBatchSize: {Family: "fastgr_sched_batch_size",
		Help: "Tasks per Algorithm-1 batch."},
	MSchedBatches: {Family: "fastgr_sched_batches",
		Help: "Batches extracted by the conflict-aware scheduler."},
	MPatternLShape: {Family: "fastgr_pattern_edges",
		Help:   "Two-pin nets routed by the pattern stage, split by kernel.",
		Labels: []PromLabel{{"kernel", "lshape"}}},
	MPatternHybrid: {Family: "fastgr_pattern_edges",
		Help:   "Two-pin nets routed by the pattern stage, split by kernel.",
		Labels: []PromLabel{{"kernel", "hybrid"}}},
	MKernelNs: {Family: "fastgr_gpu_kernel_ns",
		Help: "Simulated per-batch pattern kernel time in nanoseconds."},
	MParWaitNs: {Family: "fastgr_par_chunk_wait_ns",
		Help: "Par-pool chunk claim latency in nanoseconds."},
	MParRunNs: {Family: "fastgr_par_chunk_run_ns",
		Help: "Par-pool chunk run duration in nanoseconds."},
	MTaskWaitNs: {Family: "fastgr_taskflow_task_wait_ns",
		Help: "Taskflow ready-to-start latency in nanoseconds."},
	MTaskRunNs: {Family: "fastgr_taskflow_task_run_ns",
		Help: "Taskflow per-task run duration in nanoseconds."},
	MRRRNets: {Family: "fastgr_rrr_nets_ripped",
		Help: "Nets ripped up across all rip-up-and-reroute iterations."},
	MRRRExpansions: {Family: "fastgr_rrr_expansions",
		Help: "Maze expansions across all rip-up-and-reroute iterations."},
	MRRRIterations: {Family: "fastgr_rrr_iterations",
		Help: "Rip-up-and-reroute iterations completed so far."},
	MRRROverflow: {Family: "fastgr_rrr_overflow",
		Help: "Total overflow (shorts) after the latest committed iteration."},
	MCostHits: {Family: "fastgr_grid_cost_reads",
		Help:   "Cost-field queries, split by cache outcome.",
		Labels: []PromLabel{{"result", "hit"}}},
	MCostMisses: {Family: "fastgr_grid_cost_reads",
		Help:   "Cost-field queries, split by cache outcome.",
		Labels: []PromLabel{{"result", "miss"}}},
	MCostInvalidations: {Family: "fastgr_grid_cost_invalidations",
		Help: "Per-edge cost-cache invalidations from demand or history mutation."},
	MCostWarms: {Family: "fastgr_grid_cost_warmed_lines",
		Help: "Lines and cells rebuilt by WarmCostCache."},
	MFaultInjected: {Family: "fastgr_fault_events",
		Help:   "Fault containment events, split by kind.",
		Labels: []PromLabel{{"kind", "injected"}}},
	MFaultRecovered: {Family: "fastgr_fault_events",
		Help:   "Fault containment events, split by kind.",
		Labels: []PromLabel{{"kind", "recovered"}}},
	MFaultDegraded: {Family: "fastgr_fault_events",
		Help:   "Fault containment events, split by kind.",
		Labels: []PromLabel{{"kind", "degraded"}}},
	MFaultRetries: {Family: "fastgr_fault_events",
		Help:   "Fault containment events, split by kind.",
		Labels: []PromLabel{{"kind", "retries"}}},
	MServeQueueDepth: {Family: "fastgr_serve_queue_depth",
		Help: "Jobs waiting in the daemon admission queue."},
	MServeAdmitted: {Family: "fastgr_serve_jobs",
		Help:   "Daemon job lifecycle events, split by outcome.",
		Labels: []PromLabel{{"outcome", "admitted"}}},
	MServeRejected: {Family: "fastgr_serve_jobs",
		Help:   "Daemon job lifecycle events, split by outcome.",
		Labels: []PromLabel{{"outcome", "rejected"}}},
	MServeRecovered: {Family: "fastgr_serve_jobs",
		Help:   "Daemon job lifecycle events, split by outcome.",
		Labels: []PromLabel{{"outcome", "recovered"}}},
	MServeDone: {Family: "fastgr_serve_jobs",
		Help:   "Daemon job lifecycle events, split by outcome.",
		Labels: []PromLabel{{"outcome", "done"}}},
	MServeFailed: {Family: "fastgr_serve_jobs",
		Help:   "Daemon job lifecycle events, split by outcome.",
		Labels: []PromLabel{{"outcome", "failed"}}},
	MServeCancelled: {Family: "fastgr_serve_jobs",
		Help:   "Daemon job lifecycle events, split by outcome.",
		Labels: []PromLabel{{"outcome", "cancelled"}}},
	MServeJobNs: {Family: "fastgr_serve_job_service_ns",
		Help: "Per-job service time from admission to terminal state in nanoseconds."},
}

// PromMappingFor returns the exposition mapping for a dotted metric
// name. Names missing from the table fall back to a sanitized
// fastgr_<dotted> family with no labels and generic help, so an
// unmapped metric still reaches the scrape.
func PromMappingFor(dotted string) PromMapping {
	if m, ok := promTable[dotted]; ok {
		return m
	}
	return PromMapping{
		Family: "fastgr_" + sanitizeMetricName(dotted),
		Help:   "Registry metric " + strings.Map(dropControl, dotted) + ".",
	}
}

// PromTableNames returns the dotted names the table maps, for the
// exhaustiveness test.
func PromTableNames() []string {
	names := make([]string, 0, len(promTable))
	for name := range promTable {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// sanitizeMetricName rewrites a dotted registry name into the
// Prometheus metric-name alphabet [a-zA-Z0-9_:], mapping every run of
// other characters to a single underscore.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	lastUnderscore := false
	for _, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
			lastUnderscore = r == '_'
			continue
		}
		if !lastUnderscore {
			b.WriteByte('_')
			lastUnderscore = true
		}
	}
	out := strings.Trim(b.String(), "_")
	if out == "" {
		return "unnamed"
	}
	return out
}

func dropControl(r rune) rune {
	if r == '\n' || r == '\r' {
		return ' '
	}
	return r
}
