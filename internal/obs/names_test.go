package obs

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// sharedMetricNames lists every shared metric constant; keep in sync
// with the const block in obs.go. TestPromNameTable fails when a
// constant is added without a mapping, which is how the "every metric
// appears exactly once in snapshot and exposition" invariant is kept.
var sharedMetricNames = []string{
	MMazeExpansions, MMazePushes, MMazeSearches,
	MBatchSize, MSchedBatches,
	MPatternLShape, MPatternHybrid,
	MKernelNs,
	MParWaitNs, MParRunNs,
	MTaskWaitNs, MTaskRunNs,
	MRRRNets, MRRRExpansions, MRRRIterations, MRRROverflow,
	MCostHits, MCostMisses, MCostInvalidations, MCostWarms,
	MMazeExpansionsAStar, MMazeExpansionsDijkstra,
	MFaultInjected, MFaultRecovered, MFaultDegraded, MFaultRetries,
	MServeQueueDepth, MServeAdmitted, MServeRejected, MServeRecovered,
	MServeDone, MServeFailed, MServeCancelled, MServeJobNs,
}

var promFamilyRe = regexp.MustCompile(`^fastgr_[a-z0-9_]+$`)

// TestPromNameTable checks the mapping table is exhaustive over the
// shared constants, produces valid family names, and never maps two
// dotted names onto the same (family, labels) series.
func TestPromNameTable(t *testing.T) {
	tabled := map[string]bool{}
	for _, name := range PromTableNames() {
		tabled[name] = true
	}
	for _, name := range sharedMetricNames {
		if !tabled[name] {
			t.Errorf("shared metric %q has no prom mapping (fallback would fire)", name)
		}
	}
	if len(tabled) != len(sharedMetricNames) {
		extra := []string{}
		shared := map[string]bool{}
		for _, n := range sharedMetricNames {
			shared[n] = true
		}
		for n := range tabled {
			if !shared[n] {
				extra = append(extra, n)
			}
		}
		sort.Strings(extra)
		t.Errorf("prom table maps names that are not shared constants: %v", extra)
	}

	series := map[string]string{}
	for _, dotted := range sharedMetricNames {
		m := PromMappingFor(dotted)
		if !promFamilyRe.MatchString(m.Family) {
			t.Errorf("%s: family %q outside the fastgr_* namespace", dotted, m.Family)
		}
		if m.Help == "" {
			t.Errorf("%s: empty help", dotted)
		}
		parts := make([]string, 0, len(m.Labels))
		for _, l := range m.Labels {
			parts = append(parts, fmt.Sprintf("%s=%s", l.Key, l.Value))
		}
		sort.Strings(parts)
		key := m.Family + "{" + strings.Join(parts, ",") + "}"
		if prev, dup := series[key]; dup {
			t.Errorf("series %s mapped from both %s and %s", key, prev, dotted)
		}
		series[key] = dotted
	}

	// Dotted names sharing a family must agree on help text, or the
	// exposition's single HELP line would be arbitrary.
	famHelp := map[string]string{}
	for _, dotted := range sharedMetricNames {
		m := PromMappingFor(dotted)
		if prev, ok := famHelp[m.Family]; ok && prev != m.Help {
			t.Errorf("family %s has conflicting help texts", m.Family)
		}
		famHelp[m.Family] = m.Help
	}
}

func TestPromMappingFallback(t *testing.T) {
	cases := map[string]string{
		"some.new.metric":      "fastgr_some_new_metric",
		"Weird NAME--here!!":   "fastgr_Weird_NAME_here",
		"...":                  "fastgr_unnamed",
		"a\nb":                 "fastgr_a_b",
		"trailing.junk...___.": "fastgr_trailing_junk",
	}
	for in, want := range cases {
		if got := PromMappingFor(in).Family; got != want {
			t.Errorf("PromMappingFor(%q).Family = %q, want %q", in, got, want)
		}
	}
	if PromMappingFor("some.new.metric").Help == "" {
		t.Errorf("fallback mapping has empty help")
	}
}
