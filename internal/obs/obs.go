// Package obs is the router's flight recorder: a lightweight span tracer
// with a bounded in-memory ring buffer and a Chrome trace_event exporter
// (one lane per executor worker, one for the pipeline stages), plus a
// metrics registry of atomic counters, gauges and fixed-bucket histograms.
//
// Observability is strictly passive. The determinism contract of the
// execution layer (see package par) extends to this package: recording
// spans or metrics must never change routed geometry, modeled times or
// reported quality at any worker count — instrumentation reads the
// wall clock, and the wall clock never feeds a reported metric.
//
// Disabled mode is the common case and is engineered to be free: every
// handle type (*Tracer, *Registry, *Counter, *Gauge, *Histogram, the
// zero Span) is nil-safe, so instrumented call sites hold possibly-nil
// handles and call them unconditionally. The hot-path cost of a disabled
// site is a nil check, or — when a Tracer is installed but switched off —
// one atomic load. cmd/benchgen -obs proves the end-to-end overhead on
// the pattern-stage benchmark stays under 2%.
package obs

// Observer bundles the observability sinks. A nil *Observer is the
// disabled mode; every field is optional, so a caller can trace without
// metrics or vice versa.
type Observer struct {
	Tracer  *Tracer
	Metrics *Registry
	// Health, when non-nil, receives stage-level liveness beats for the
	// ops server's /healthz endpoint.
	Health *Health
}

// T returns the tracer, nil-safely: a nil observer has a nil tracer.
func (o *Observer) T() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// M returns the metrics registry, nil-safely.
func (o *Observer) M() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// H returns the health tracker, nil-safely.
func (o *Observer) H() *Health {
	if o == nil {
		return nil
	}
	return o.Health
}

// Enabled reports whether any sink is attached.
func (o *Observer) Enabled() bool {
	return o != nil && (o.Tracer != nil || o.Metrics != nil)
}

// Shared metric names. Instrumented packages and consumers (the CLI
// summary, tests) meet on these constants instead of retyping strings.
const (
	// MMazeExpansions is the per-search settled-node histogram.
	MMazeExpansions = "maze.expansions"
	// MMazePushes counts heap pushes across all maze searches.
	MMazePushes = "maze.pushes"
	// MMazeSearches counts RouteNet invocations.
	MMazeSearches = "maze.searches"
	// MBatchSize is the Algorithm-1 batch size histogram.
	MBatchSize = "sched.batch_size"
	// MSchedBatches counts extracted batches.
	MSchedBatches = "sched.batches"
	// MPatternLShape counts two-pin nets routed by the L-shape kernel.
	MPatternLShape = "pattern.edges.lshape"
	// MPatternHybrid counts two-pin nets routed by the hybrid kernel.
	MPatternHybrid = "pattern.edges.hybrid"
	// MKernelNs is the simulated per-batch kernel time histogram (ns).
	MKernelNs = "gpu.kernel_ns"
	// MParWaitNs is the par-pool chunk claim latency histogram (ns from
	// For() entry to the chunk starting on a worker).
	MParWaitNs = "par.chunk_wait_ns"
	// MParRunNs is the par-pool chunk run duration histogram (ns).
	MParRunNs = "par.chunk_run_ns"
	// MTaskWaitNs is the taskflow ready-to-start latency histogram (ns).
	MTaskWaitNs = "taskflow.task_wait_ns"
	// MTaskRunNs is the taskflow per-task run duration histogram (ns).
	MTaskRunNs = "taskflow.task_run_ns"
	// MRRRNets counts nets ripped up across all iterations.
	MRRRNets = "rrr.nets_ripped"
	// MRRRExpansions counts maze expansions across all iterations.
	MRRRExpansions = "rrr.expansions"
	// MRRRIterations gauges the rip-up iterations completed so far.
	MRRRIterations = "rrr.iterations"
	// MRRROverflow gauges total overflow after the latest committed
	// iteration.
	MRRROverflow = "rrr.overflow"
	// MCostHits counts cost-cache fast-path reads (wire, via, segment and
	// stack queries answered from the materialized cost field).
	MCostHits = "grid.cost.hits"
	// MCostMisses counts cost reads that fell back to the direct formula
	// (unbuilt cache, stale edge or dirty line).
	MCostMisses = "grid.cost.misses"
	// MCostInvalidations counts per-edge cache invalidations caused by
	// demand or history mutation.
	MCostInvalidations = "grid.cost.invalidations"
	// MCostWarms counts lines/cells rebuilt by Graph.WarmCostCache.
	MCostWarms = "grid.cost.warmed_lines"
	// MMazeExpansionsAStar / MMazeExpansionsDijkstra split the per-search
	// expansion histogram by maze algorithm, so an A*-vs-Dijkstra
	// before/after comparison can come straight from the registry.
	MMazeExpansionsAStar    = "maze.expansions.astar"
	MMazeExpansionsDijkstra = "maze.expansions.dijkstra"
	// MFaultInjected counts synthetic faults fired by the chaos injector.
	MFaultInjected = "fault.injected"
	// MFaultRecovered counts contained failures (injections and panics)
	// that a retry followed.
	MFaultRecovered = "fault.recovered"
	// MFaultDegraded counts final contained failures: retry exhaustion,
	// kernel fallbacks and budget trips. For injection-only fault sources
	// injected == recovered + degraded exactly (see package fault).
	MFaultDegraded = "fault.degraded"
	// MFaultRetries counts work-unit re-executions after a contained
	// failure.
	MFaultRetries = "fault.retries"
	// MServeQueueDepth gauges jobs waiting in the daemon's admission
	// queue (queued, not yet picked up by a runner).
	MServeQueueDepth = "serve.queue.depth"
	// MServeAdmitted counts jobs accepted into the queue.
	MServeAdmitted = "serve.jobs.admitted"
	// MServeRejected counts submissions refused by admission control
	// (queue or memory budget full → 429).
	MServeRejected = "serve.jobs.rejected"
	// MServeRecovered counts jobs requeued by journal replay after a
	// restart.
	MServeRecovered = "serve.jobs.recovered"
	// MServeDone counts jobs that finished routing successfully.
	MServeDone = "serve.jobs.done"
	// MServeFailed counts jobs that ended in a routing error or blew
	// their deadline.
	MServeFailed = "serve.jobs.failed"
	// MServeCancelled counts jobs cancelled by DELETE.
	MServeCancelled = "serve.jobs.cancelled"
	// MServeJobNs is the per-job service-time histogram (ns, admission
	// to terminal state); its mean feeds the 429 Retry-After estimate.
	MServeJobNs = "serve.job_service_ns"
)

// Pow2Buckets returns n histogram upper bounds lo, 2lo, 4lo, ...: the
// geometric ladder that suits heavy-tailed size and duration counts.
func Pow2Buckets(lo int64, n int) []int64 {
	if lo < 1 {
		lo = 1
	}
	b := make([]int64, n)
	for i := range b {
		b[i] = lo
		lo *= 2
	}
	return b
}

// Default bucket ladders for the shared histograms.
var (
	// ExpansionBuckets spans 16..512k settled nodes per search.
	ExpansionBuckets = Pow2Buckets(16, 16)
	// BatchSizeBuckets spans 1..32k tasks per batch.
	BatchSizeBuckets = Pow2Buckets(1, 16)
	// DurationBuckets spans 1µs..32s in nanoseconds.
	DurationBuckets = Pow2Buckets(1000, 26)
)
