// Package opsrv is the embeddable ops endpoint for long routing runs: a
// small HTTP server exposing the observability surface that package obs
// records — Prometheus metrics, stage-level liveness, a live span view —
// plus the stock net/http/pprof profiles.
//
// The server is strictly read-only and strictly passive: handlers only
// snapshot the registry, health tracker and tracer ring, so serving a
// scrape never perturbs routed geometry, modeled times or reported
// quality (the determinism suite pins a full run with a server armed and
// a scraper hammering it). It is off by default; cmd/fastgr starts one
// only when -listen is given.
//
// Endpoints:
//
//	/metrics         Prometheus text format 0.0.4 (internal/obs/prom)
//	/healthz         JSON stage liveness; 503 when a running stage has
//	                 not progressed within Config.StallAfter
//	/tracez          JSON per-lane live view plus recent completed spans
//	/debug/pprof/*   standard runtime profiles
package opsrv

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"

	"fastgr/internal/obs"
	"fastgr/internal/obs/prom"
)

// Config selects what the server exposes. The zero Config is valid and
// serves empty metrics and an always-ok health report.
type Config struct {
	// Obs supplies the registry, health tracker and tracer behind the
	// endpoints. Nil (or nil fields) degrade to empty responses.
	Obs *obs.Observer
	// StallAfter, when positive, is the liveness window: /healthz turns
	// 503 when a running stage reports no progress for longer than this.
	// Zero disables stall detection and /healthz always reports ok.
	StallAfter time.Duration
}

// Server is a running ops endpoint. Close it when the run ends.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Mux builds the ops endpoint mux — /metrics, /healthz, /tracez and the
// pprof profiles — without binding a listener. Embedders with their own
// HTTP server (the fastgrd daemon) mount their routes on this mux so
// one port serves both surfaces.
func Mux(cfg Config) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", prom.ContentType)
		if err := prom.Write(w, cfg.Obs.M().Snapshot()); err != nil {
			// The snapshot rendered; the write failing means the client
			// went away. Nothing useful to do.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		serveHealthz(w, cfg.Obs.H(), cfg.StallAfter)
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		serveTracez(w, cfg.Obs.T())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// NewHTTPServer wraps a handler in an http.Server with the package's
// slow-client protections: a header-read deadline so an idle half-open
// connection cannot pin the accept loop, a full-request read deadline,
// and an idle keep-alive timeout. WriteTimeout stays zero on purpose —
// /debug/pprof/profile and /debug/pprof/trace stream for a
// client-chosen duration.
func NewHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// Start listens on addr (host:port, empty host for all interfaces, port
// 0 for an ephemeral port) and serves the ops endpoints until Close.
func Start(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: NewHTTPServer(Mux(cfg))}
	go s.srv.Serve(ln) // accept loop; sanctioned by the lint goroutine policy
	return s, nil
}

// Addr returns the bound address, useful when Start was given port 0.
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops accepting connections and closes the listener. In-flight
// handlers finish against closed connections; a routing run shutting
// down does not wait on scrapers.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// healthzReport is the /healthz response body.
type healthzReport struct {
	Status  string            `json:"status"` // "ok" or "stalled"
	Stages  []obs.StageHealth `json:"stages"`
	Stalled []string          `json:"stalled,omitempty"`
}

func serveHealthz(w http.ResponseWriter, h *obs.Health, window time.Duration) {
	rep := healthzReport{Status: "ok", Stages: h.Stages()}
	for _, st := range h.Stalled(window) {
		rep.Stalled = append(rep.Stalled, st.Name)
	}
	code := http.StatusOK
	if len(rep.Stalled) > 0 {
		rep.Status = "stalled"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(rep)
}

// tracezReport is the /tracez response body: the live per-lane view plus
// an aggregate of the completed spans still in the tracer's ring.
type tracezReport struct {
	Lanes    []obs.LaneStatus `json:"lanes"`
	Recent   []spanAggregate  `json:"recent"`
	Recorded uint64           `json:"recorded"`
	Dropped  uint64           `json:"dropped"`
}

type spanAggregate struct {
	Name    string        `json:"name"`
	Count   int           `json:"count"`
	TotalNs time.Duration `json:"total_ns"`
	MaxNs   time.Duration `json:"max_ns"`
}

func serveTracez(w http.ResponseWriter, t *obs.Tracer) {
	rep := tracezReport{
		Lanes:    t.LaneStatuses(),
		Recorded: t.Recorded(),
		Dropped:  t.Dropped(),
	}
	agg := map[string]*spanAggregate{}
	for _, ev := range t.Events() {
		a := agg[ev.Name]
		if a == nil {
			a = &spanAggregate{Name: ev.Name}
			agg[ev.Name] = a
		}
		a.Count++
		a.TotalNs += ev.Dur
		if ev.Dur > a.MaxNs {
			a.MaxNs = ev.Dur
		}
	}
	names := make([]string, 0, len(agg))
	for name := range agg {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rep.Recent = append(rep.Recent, *agg[name])
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rep)
}
