package opsrv

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"fastgr/internal/core"
	"fastgr/internal/design"
	"fastgr/internal/obs"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// scrapeAll hits every endpoint once and returns the first problem, so
// the background scraper during a live run can report through a channel.
func scrapeAll(base string) error {
	for _, ep := range []string{"/metrics", "/healthz", "/tracez", "/debug/pprof/"} {
		resp, err := http.Get(base + ep)
		if err != nil {
			return fmt.Errorf("%s: %v", ep, err)
		}
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("%s: read: %v", ep, err)
		}
		// /healthz may legitimately be 503 mid-run on a loaded host;
		// every other endpoint must succeed.
		if ep != "/healthz" && resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d", ep, resp.StatusCode)
		}
	}
	return nil
}

// TestOpsServerLiveScrape runs the full router on a small 19test9m
// instance with the ops server armed and a scraper hammering every
// endpoint throughout the run, then checks each endpoint's content
// after the run completed.
func TestOpsServerLiveScrape(t *testing.T) {
	d := design.MustGenerate("19test9m", 0.004)
	o := &obs.Observer{
		Tracer:  obs.NewTracer(1<<14, 4),
		Metrics: obs.NewRegistry(),
		Health:  obs.NewHealth(),
	}
	s, err := Start("127.0.0.1:0", Config{Obs: o, StallAfter: time.Hour})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	done := make(chan struct{})
	scrapeErr := make(chan error, 1)
	go func() {
		defer close(scrapeErr)
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := scrapeAll(base); err != nil {
				scrapeErr <- err
				return
			}
		}
	}()

	opt := core.DefaultOptions(core.FastGRH)
	opt.T1, opt.T2 = 3, 20
	opt.ExecWorkers = 4
	opt.Obs = o
	res, err := core.Route(d, opt)
	close(done)
	if err != nil {
		t.Fatalf("route: %v", err)
	}
	if res.Report.NetsToRipup == 0 {
		t.Fatalf("no rip-up work; live scrape exercised nothing")
	}
	if err, ok := <-scrapeErr; ok && err != nil {
		t.Fatalf("scrape during run: %v", err)
	}

	// /metrics: canonical namespace, counter suffixes, histograms.
	code, ctype, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ctype != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics content type %q", ctype)
	}
	for _, want := range []string{
		"# TYPE fastgr_maze_searches_total counter",
		"# TYPE fastgr_rrr_iterations gauge",
		"# TYPE fastgr_maze_expansions histogram",
		`fastgr_maze_algorithm_expansions_bucket{algorithm="astar",le="+Inf"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /healthz: the pipeline stages reported liveness and finished.
	code, ctype, body = get(t, base+"/healthz")
	if code != http.StatusOK || ctype != "application/json" {
		t.Fatalf("/healthz status %d content type %q", code, ctype)
	}
	var health struct {
		Status string            `json:"status"`
		Stages []obs.StageHealth `json:"stages"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, body)
	}
	if health.Status != "ok" {
		t.Fatalf("/healthz status %q after a finished run", health.Status)
	}
	seen := map[string]obs.StageHealth{}
	for _, st := range health.Stages {
		seen[st.Name] = st
		if st.Running {
			t.Errorf("stage %s still running after the run", st.Name)
		}
	}
	for _, stage := range []string{"plan", "pattern", "rrr"} {
		if _, ok := seen[stage]; !ok {
			t.Errorf("/healthz missing stage %q: %s", stage, body)
		}
	}
	if seen["rrr"].Beats == 0 {
		t.Errorf("rrr stage reported no progress beats")
	}

	// /tracez: lanes plus aggregated recent spans.
	code, _, body = get(t, base+"/tracez")
	if code != http.StatusOK {
		t.Fatalf("/tracez status %d", code)
	}
	var tz struct {
		Lanes  []obs.LaneStatus `json:"lanes"`
		Recent []struct {
			Name  string `json:"name"`
			Count int    `json:"count"`
		} `json:"recent"`
		Recorded uint64 `json:"recorded"`
	}
	if err := json.Unmarshal([]byte(body), &tz); err != nil {
		t.Fatalf("/tracez not JSON: %v\n%s", err, body)
	}
	if len(tz.Lanes) != 5 { // 4 workers + stages lane
		t.Errorf("/tracez lanes = %d, want 5", len(tz.Lanes))
	}
	if tz.Recorded == 0 || len(tz.Recent) == 0 {
		t.Errorf("/tracez saw no spans: recorded=%d recent=%d", tz.Recorded, len(tz.Recent))
	}
}

// TestOpsServerDeterminism is the acceptance gate for -listen: a run
// with the ops server armed and a concurrent scraper must reproduce the
// observability-free run byte-for-byte on every paper-facing output.
func TestOpsServerDeterminism(t *testing.T) {
	d := design.MustGenerate("19test9m", 0.004)
	opt := core.DefaultOptions(core.FastGRH)
	opt.T1, opt.T2 = 3, 20
	opt.ExecWorkers = 4
	base, err := core.Route(d, opt)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	o := &obs.Observer{
		Tracer:  obs.NewTracer(1<<14, 4),
		Metrics: obs.NewRegistry(),
		Health:  obs.NewHealth(),
	}
	s, err := Start("127.0.0.1:0", Config{Obs: o})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer s.Close()
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			scrapeAll("http://" + s.Addr())
		}
	}()
	served := opt
	served.Obs = o
	res, err := core.Route(d, served)
	close(done)
	if err != nil {
		t.Fatalf("served run: %v", err)
	}

	a, b := base.Report, res.Report
	if a.Quality != b.Quality || a.Score != b.Score {
		t.Errorf("ops server changed quality:\n%+v\nvs\n%+v", a.Quality, b.Quality)
	}
	if a.Times.Pattern != b.Times.Pattern || a.Times.Maze != b.Times.Maze ||
		a.Times.Total != b.Times.Total {
		t.Errorf("ops server changed modeled times")
	}
	if a.NetsToRipup != b.NetsToRipup || !reflect.DeepEqual(a.RRR, b.RRR) {
		t.Errorf("ops server changed RRR statistics:\n%+v\nvs\n%+v", a.RRR, b.RRR)
	}
	for _, n := range d.Nets {
		ra, rb := base.Routes[n.ID], res.Routes[n.ID]
		if (ra == nil) != (rb == nil) ||
			(ra != nil && !reflect.DeepEqual(ra.Paths, rb.Paths)) {
			t.Fatalf("ops server changed net %s geometry", n.Name)
		}
	}
}

// TestOpsServerStall pins the 503 contract: a running stage with no
// progress inside the window flips /healthz to stalled.
func TestOpsServerStall(t *testing.T) {
	h := obs.NewHealth()
	o := &obs.Observer{Health: h}
	s, err := Start("127.0.0.1:0", Config{Obs: o, StallAfter: time.Nanosecond})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer s.Close()
	h.StageStart("rrr")
	time.Sleep(10 * time.Millisecond)
	code, _, body := get(t, "http://"+s.Addr()+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("want 503, got %d: %s", code, body)
	}
	if !strings.Contains(body, `"stalled":["rrr"]`) {
		t.Fatalf("stalled stage not named: %s", body)
	}
	h.StageDone("rrr")
	if code, _, _ := get(t, "http://"+s.Addr()+"/healthz"); code != http.StatusOK {
		t.Fatalf("done stage still stalled: %d", code)
	}
}

// TestOpsServerEmpty pins the zero-Config degradation: all endpoints
// serve well-formed empty responses.
func TestOpsServerEmpty(t *testing.T) {
	s, err := Start("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer s.Close()
	base := "http://" + s.Addr()
	if code, _, body := get(t, base+"/metrics"); code != http.StatusOK || body != "" {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	code, _, body := get(t, base+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("/healthz: %d %s", code, body)
	}
	if code, _, _ := get(t, base+"/tracez"); code != http.StatusOK {
		t.Fatalf("/tracez: %d", code)
	}
	if s.Addr() == "" {
		t.Fatalf("no bound address")
	}
	var nils *Server
	if nils.Addr() != "" || nils.Close() != nil {
		t.Fatalf("nil server not inert")
	}
}
