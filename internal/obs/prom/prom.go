// Package prom renders an obs registry snapshot in the Prometheus text
// exposition format 0.0.4, the format every Prometheus-compatible
// scraper (Prometheus itself, VictoriaMetrics, Grafana agent) consumes
// from a /metrics endpoint.
//
// The mapping from the registry's dotted names to the canonical
// fastgr_* namespace lives in internal/obs (PromMappingFor): dotted
// siblings that are one logical metric split by a dimension share a
// family and differ in a constant label. Counters render with the
// conventional _total suffix, gauges bare, and the registry's
// pow2-bucket histograms become cumulative _bucket series with a +Inf
// bound plus _sum and _count.
//
// Output is deterministic: families sort by exposed name, series within
// a family sort by label signature, and two renders of the same
// snapshot are byte-identical — the conformance test in this package
// holds the renderer to the format's grammar (HELP/TYPE ordering,
// escaping, bucket monotonicity, count/+Inf agreement).
package prom

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"fastgr/internal/obs"
)

// ContentType is the Content-Type header value a /metrics handler
// should serve alongside this exposition.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled member of a family.
type series struct {
	labels string // rendered {k="v",...} signature, "" when unlabeled
	value  int64
	hist   obs.HistSnapshot
}

type family struct {
	name   string // exposed name: family (+ _total for counters)
	help   string
	kind   kind
	series []series
}

// Write renders the snapshot. The error is the writer's, if any.
func Write(w io.Writer, s obs.Snapshot) error {
	byName := map[string]*family{}
	add := func(dotted string, k kind, sr series) error {
		m := obs.PromMappingFor(dotted)
		name := m.Family
		if k == kindCounter {
			name += "_total"
		}
		f := byName[name]
		if f == nil {
			f = &family{name: name, help: m.Help, kind: k}
			byName[name] = f
		}
		if f.kind != k {
			return fmt.Errorf("prom: family %s mapped from both %v and %v metrics", name, f.kind, k)
		}
		sr.labels = renderLabels(m.Labels)
		f.series = append(f.series, sr)
		return nil
	}
	for _, dotted := range sortedKeys(s.Counters) {
		if err := add(dotted, kindCounter, series{value: s.Counters[dotted]}); err != nil {
			return err
		}
	}
	for _, dotted := range sortedKeys(s.Gauges) {
		if err := add(dotted, kindGauge, series{value: s.Gauges[dotted]}); err != nil {
			return err
		}
	}
	histNames := make([]string, 0, len(s.Histograms))
	for dotted := range s.Histograms {
		histNames = append(histNames, dotted)
	}
	sort.Strings(histNames)
	for _, dotted := range histNames {
		if err := add(dotted, kindHistogram, series{hist: s.Histograms[dotted]}); err != nil {
			return err
		}
	}

	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := byName[name]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, sr := range f.series {
			switch f.kind {
			case kindCounter, kindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, sr.labels, sr.value)
			case kindHistogram:
				writeHistogram(&b, f.name, sr)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram emits the cumulative _bucket series, _sum and _count.
// The +Inf bucket and _count are both the sum over the snapshot's
// per-bucket counts, so they agree exactly even when observations were
// in flight while the snapshot's independent atomics were read.
func writeHistogram(b *strings.Builder, name string, sr series) {
	var cum int64
	for i, bound := range sr.hist.Bounds {
		cum += sr.hist.Counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE(sr.labels, strconv.FormatInt(bound, 10)), cum)
	}
	if n := len(sr.hist.Counts); n > 0 {
		cum += sr.hist.Counts[n-1] // overflow bucket
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE(sr.labels, "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %d\n", name, sr.labels, sr.hist.Sum)
	fmt.Fprintf(b, "%s_count%s %d\n", name, sr.labels, cum)
}

// withLE appends the le label to an already-rendered label signature.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return strings.TrimSuffix(labels, "}") + `,le="` + le + `"}`
}

// renderLabels renders constant labels as {k="v",...} with label-value
// escaping per the format spec (backslash, double quote, newline).
func renderLabels(labels []obs.PromLabel) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + `="` + escapeLabelValue(l.Value) + `"`
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(h string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
