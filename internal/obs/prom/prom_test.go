package prom

import (
	"bytes"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"fastgr/internal/obs"
)

// ---------------------------------------------------------------------
// Strict text-format parser. This is deliberately unforgiving: it
// enforces the grammar a Prometheus scraper relies on — HELP then TYPE
// then samples per family, valid metric and label names, label-value
// escape sequences, histogram bucket and count invariants — so a
// renderer regression fails here before it fails a real scrape.

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type parsedSample struct {
	name   string
	labels map[string]string
	value  int64
}

type parsedFamily struct {
	name    string
	help    string
	typ     string
	samples []parsedSample
}

// parseExposition parses the full text and enforces the family
// structure; any deviation is a test failure.
func parseExposition(t *testing.T, text string) []parsedFamily {
	t.Helper()
	if !strings.HasSuffix(text, "\n") {
		t.Fatalf("exposition does not end in a newline")
	}
	var fams []parsedFamily
	cur := -1
	for ln, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || !metricNameRe.MatchString(name) {
				t.Fatalf("line %d: malformed HELP line %q", ln+1, line)
			}
			fams = append(fams, parsedFamily{name: name, help: help})
			cur = len(fams) - 1
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			if cur < 0 || fams[cur].name != fields[0] || fams[cur].typ != "" || len(fams[cur].samples) > 0 {
				t.Fatalf("line %d: TYPE for %s not immediately after its HELP", ln+1, fields[0])
			}
			switch fields[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, fields[1])
			}
			fams[cur].typ = fields[1]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		default:
			s := parseSample(t, ln+1, line)
			if cur < 0 || fams[cur].typ == "" {
				t.Fatalf("line %d: sample %s before HELP/TYPE", ln+1, s.name)
			}
			base := fams[cur].name
			ok := s.name == base
			if fams[cur].typ == "histogram" {
				ok = s.name == base+"_bucket" || s.name == base+"_sum" || s.name == base+"_count"
			}
			if !ok {
				t.Fatalf("line %d: sample %s outside family %s", ln+1, s.name, base)
			}
			fams[cur].samples = append(fams[cur].samples, s)
		}
	}
	for _, f := range fams {
		if f.typ == "" {
			t.Fatalf("family %s has HELP but no TYPE", f.name)
		}
		if len(f.samples) == 0 {
			t.Fatalf("family %s has no samples", f.name)
		}
	}
	if !sort.SliceIsSorted(fams, func(i, j int) bool { return fams[i].name < fams[j].name }) {
		t.Fatalf("families are not sorted by name")
	}
	return fams
}

// parseSample parses `name{label="value",...} 123` with full
// label-value unescaping.
func parseSample(t *testing.T, ln int, line string) parsedSample {
	t.Helper()
	s := parsedSample{labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		t.Fatalf("line %d: malformed sample %q", ln, line)
	}
	s.name = line[:i]
	if !metricNameRe.MatchString(s.name) {
		t.Fatalf("line %d: invalid metric name %q", ln, s.name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end := parseLabels(t, ln, rest, s.labels)
		rest = rest[end:]
	}
	if len(rest) == 0 || rest[0] != ' ' {
		t.Fatalf("line %d: missing value separator in %q", ln, line)
	}
	v, err := strconv.ParseInt(rest[1:], 10, 64)
	if err != nil {
		// +Inf-bucket values and sums are integers in this exposition.
		t.Fatalf("line %d: unparseable value %q: %v", ln, rest[1:], err)
	}
	s.value = v
	return s
}

// parseLabels parses the {…} block starting at text[0]=='{', returning
// the index just past the closing brace.
func parseLabels(t *testing.T, ln int, text string, out map[string]string) int {
	t.Helper()
	i := 1
	for {
		eq := strings.IndexByte(text[i:], '=')
		if eq < 0 {
			t.Fatalf("line %d: malformed label block %q", ln, text)
		}
		name := text[i : i+eq]
		if !labelNameRe.MatchString(name) {
			t.Fatalf("line %d: invalid label name %q", ln, name)
		}
		i += eq + 1
		if i >= len(text) || text[i] != '"' {
			t.Fatalf("line %d: label value not quoted in %q", ln, text)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(text) {
				t.Fatalf("line %d: unterminated label value in %q", ln, text)
			}
			c := text[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(text) {
					t.Fatalf("line %d: dangling escape in %q", ln, text)
				}
				switch text[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					t.Fatalf("line %d: invalid escape \\%c", ln, text[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := out[name]; dup {
			t.Fatalf("line %d: duplicate label %q", ln, name)
		}
		out[name] = val.String()
		if i >= len(text) {
			t.Fatalf("line %d: unterminated label block %q", ln, text)
		}
		switch text[i] {
		case ',':
			i++
		case '}':
			return i + 1
		default:
			t.Fatalf("line %d: unexpected %q after label value", ln, text[i])
		}
	}
}

// checkHistogram enforces the bucket invariants for one labeled series
// of a histogram family: le sorted ascending ending at +Inf, cumulative
// counts nondecreasing, bucket(+Inf) == count.
func checkHistogram(t *testing.T, f parsedFamily) {
	t.Helper()
	type hseries struct {
		les    []float64
		counts []int64
		count  int64
		sum    bool
		cnt    bool
	}
	bySig := map[string]*hseries{}
	sig := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%s;", k, labels[k])
		}
		return b.String()
	}
	get := func(labels map[string]string) *hseries {
		s := bySig[sig(labels)]
		if s == nil {
			s = &hseries{}
			bySig[sig(labels)] = s
		}
		return s
	}
	for _, s := range f.samples {
		switch s.name {
		case f.name + "_bucket":
			le, ok := s.labels["le"]
			if !ok {
				t.Fatalf("%s: bucket without le label", f.name)
			}
			v := 0.0
			if le == "+Inf" {
				v = 1e308
			} else {
				var err error
				if v, err = strconv.ParseFloat(le, 64); err != nil {
					t.Fatalf("%s: unparseable le %q", f.name, le)
				}
			}
			hs := get(s.labels)
			hs.les = append(hs.les, v)
			hs.counts = append(hs.counts, s.value)
		case f.name + "_sum":
			get(s.labels).sum = true
		case f.name + "_count":
			hs := get(s.labels)
			hs.cnt = true
			hs.count = s.value
		}
	}
	for sig, hs := range bySig {
		if !hs.sum || !hs.cnt {
			t.Fatalf("%s{%s}: missing _sum or _count", f.name, sig)
		}
		if len(hs.les) == 0 || hs.les[len(hs.les)-1] != 1e308 {
			t.Fatalf("%s{%s}: bucket series does not end at +Inf", f.name, sig)
		}
		for i := 1; i < len(hs.les); i++ {
			if hs.les[i] <= hs.les[i-1] {
				t.Fatalf("%s{%s}: le bounds not strictly ascending", f.name, sig)
			}
			if hs.counts[i] < hs.counts[i-1] {
				t.Fatalf("%s{%s}: cumulative bucket counts decrease", f.name, sig)
			}
		}
		if hs.counts[len(hs.counts)-1] != hs.count {
			t.Fatalf("%s{%s}: +Inf bucket %d != count %d",
				f.name, sig, hs.counts[len(hs.counts)-1], hs.count)
		}
	}
}

// ---------------------------------------------------------------------

func testRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Counter(obs.MCostHits).Add(41)
	r.Counter(obs.MCostMisses).Add(7)
	r.Counter(obs.MPatternLShape).Add(100)
	r.Counter(obs.MPatternHybrid).Add(23)
	r.Counter(obs.MMazeSearches).Add(12)
	r.Counter(obs.MFaultInjected).Add(3)
	r.Counter(obs.MFaultRecovered).Add(2)
	r.Gauge(obs.MRRRIterations).Set(2)
	r.Gauge(obs.MRRROverflow).Set(1601)
	h := r.Histogram(obs.MMazeExpansions, obs.Pow2Buckets(16, 5))
	for _, v := range []int64{1, 17, 40, 700, 1 << 20} {
		h.Observe(v)
	}
	ha := r.Histogram(obs.MMazeExpansionsAStar, obs.Pow2Buckets(16, 5))
	ha.Observe(33)
	// Registered but never observed: must still expose validly.
	r.Histogram(obs.MMazeExpansionsDijkstra, obs.Pow2Buckets(16, 5))
	// A name missing from the mapping table exercises the sanitized
	// fallback path.
	r.Counter("ad hoc metric!\nwith junk").Add(9)
	return r
}

// TestExpositionConformance renders a populated registry and holds the
// output to the strict grammar plus the histogram invariants.
func TestExpositionConformance(t *testing.T) {
	r := testRegistry()
	var buf bytes.Buffer
	if err := Write(&buf, r.Snapshot()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	fams := parseExposition(t, buf.String())

	byName := map[string]parsedFamily{}
	for _, f := range fams {
		byName[f.name] = f
	}
	for _, f := range fams {
		if f.typ == "histogram" {
			checkHistogram(t, f)
		}
	}

	// The labeled siblings merge into one family with one series each.
	reads := byName["fastgr_grid_cost_reads_total"]
	if len(reads.samples) != 2 {
		t.Fatalf("fastgr_grid_cost_reads_total: want 2 labeled series, got %+v", reads.samples)
	}
	got := map[string]int64{}
	for _, s := range reads.samples {
		got[s.labels["result"]] = s.value
	}
	if got["hit"] != 41 || got["miss"] != 7 {
		t.Fatalf("cost reads: got %v", got)
	}
	if f, ok := byName["fastgr_maze_algorithm_expansions"]; !ok {
		t.Fatalf("per-algorithm expansion family missing")
	} else {
		algs := map[string]bool{}
		for _, s := range f.samples {
			algs[s.labels["algorithm"]] = true
		}
		if !algs["astar"] || !algs["dijkstra"] {
			t.Fatalf("per-algorithm family lacks a label: %v", algs)
		}
	}
	if _, ok := byName["fastgr_ad_hoc_metric_with_junk_total"]; !ok {
		names := make([]string, 0, len(byName))
		for n := range byName {
			names = append(names, n)
		}
		t.Fatalf("sanitized fallback family missing from %v", names)
	}
	if byName["fastgr_rrr_iterations"].typ != "gauge" {
		t.Fatalf("rrr.iterations exposed as %s, want gauge", byName["fastgr_rrr_iterations"].typ)
	}
}

// TestExpositionDeterministic renders two snapshots of the same
// registry state and demands byte-identical output; after more
// observations the output must still parse and stay internally ordered
// the same way.
func TestExpositionDeterministic(t *testing.T) {
	r := testRegistry()
	var a, b bytes.Buffer
	if err := Write(&a, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two renders of the same state differ:\n%s\nvs\n%s", a.String(), b.String())
	}

	r.Counter(obs.MCostHits).Add(1)
	r.Histogram(obs.MMazeExpansions, obs.Pow2Buckets(16, 5)).Observe(5)
	var c bytes.Buffer
	if err := Write(&c, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	famA := parseExposition(t, a.String())
	famC := parseExposition(t, c.String())
	if len(famA) != len(famC) {
		t.Fatalf("family count changed across observations: %d vs %d", len(famA), len(famC))
	}
	for i := range famA {
		if famA[i].name != famC[i].name {
			t.Fatalf("family order changed: %s vs %s", famA[i].name, famC[i].name)
		}
	}
}

// TestLabelEscaping pins the escape rules for label values and help
// text through the low-level helpers the renderer uses.
func TestLabelEscaping(t *testing.T) {
	in := []obs.PromLabel{{Key: "path", Value: "a\\b\"c\nd"}}
	got := renderLabels(in)
	want := `{path="a\\b\"c\nd"}`
	if got != want {
		t.Fatalf("renderLabels: got %s want %s", got, want)
	}
	if got := escapeHelp("line1\nline2 \\ done"); got != `line1\nline2 \\ done` {
		t.Fatalf("escapeHelp: got %q", got)
	}
	if got := withLE(`{algorithm="astar"}`, "+Inf"); got != `{algorithm="astar",le="+Inf"}` {
		t.Fatalf("withLE: got %s", got)
	}
	if got := withLE("", "16"); got != `{le="16"}` {
		t.Fatalf("withLE empty: got %s", got)
	}
}

// TestEmptySnapshot renders the disabled registry's zero snapshot.
func TestEmptySnapshot(t *testing.T) {
	var r *obs.Registry
	var buf bytes.Buffer
	if err := Write(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty snapshot rendered %q", buf.String())
	}
}
