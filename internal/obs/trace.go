package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Coordinator is the worker id of the pipeline's coordinating goroutine:
// stage-level spans (plan, pattern, rrr, per-batch and per-iteration
// spans) start with it and land on the dedicated "stages" lane of the
// exported trace. Executor workers use their pool worker id (>= 0).
const Coordinator = -1

// Event is one completed span in the ring buffer.
type Event struct {
	Name  string
	Lane  int           // 0 = stages lane, 1+w = worker w's lane
	Depth int32         // nesting depth within the lane at start time
	Start time.Duration // offset from the tracer epoch
	Dur   time.Duration
}

// Tracer records nested spans into a bounded ring buffer. Build one with
// NewTracer; the nil *Tracer is the disabled tracer (StartSpan returns
// the no-op zero Span). A non-nil tracer can also be switched off with
// SetOn(false), in which case StartSpan costs exactly one atomic load.
//
// Recording happens at span end, so buffered events are ordered by end
// time; the exporter re-sorts by start time. When the ring is full the
// oldest event is overwritten and counted as dropped.
type Tracer struct {
	on    atomic.Bool
	epoch time.Time
	now   func() time.Time // injectable clock for deterministic tests

	// depth[lane] tracks live nesting per lane. The worker-id contract
	// (one goroutine per lane at a time) makes plain counters correct,
	// but atomics keep the tracer safe even for callers that break it.
	depth []int32
	// last[lane] is the most recently started span on the lane — the
	// best-effort "what is this lane doing" view behind /tracez. It is
	// written on StartSpan only (one atomic store when recording is on)
	// and never cleared on End: combined with depth it reads as "busy
	// in/under <span>" when depth > 0 and "idle, last ran <span>" at 0.
	last []atomic.Pointer[laneMark]

	mu    sync.Mutex
	buf   []Event
	cap   int
	head  int    // oldest entry once the ring has wrapped
	total uint64 // events ever recorded, including overwritten ones
}

// NewTracer returns a tracer that keeps at most capacity events and has
// one lane per worker in [0, workers) plus the stages lane. Spans from
// worker ids outside that range are folded onto the stages lane rather
// than dropped. The tracer starts switched on.
func NewTracer(capacity, workers int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	if workers < 0 {
		workers = 0
	}
	t := &Tracer{
		epoch: time.Now(),
		now:   time.Now,
		depth: make([]int32, workers+1),
		last:  make([]atomic.Pointer[laneMark], workers+1),
		cap:   capacity,
	}
	t.on.Store(true)
	return t
}

// SetOn switches recording on or off; StartSpan on a switched-off tracer
// is a single atomic load.
func (t *Tracer) SetOn(on bool) {
	if t != nil {
		t.on.Store(on)
	}
}

// On reports whether spans are currently recorded (false for nil).
func (t *Tracer) On() bool { return t != nil && t.on.Load() }

// setClock pins the clock for deterministic tests.
func (t *Tracer) setClock(now func() time.Time) {
	t.now = now
	t.epoch = now()
}

// Span is one live span; End records it. The zero Span (from a nil or
// switched-off tracer) is valid and End is a no-op.
type Span struct {
	t     *Tracer
	name  string
	lane  int32
	depth int32
	start time.Duration
}

// StartSpan opens a span on the worker's lane (Coordinator for the
// stages lane). Spans on one lane must end in LIFO order to nest.
func (t *Tracer) StartSpan(name string, worker int) Span {
	if t == nil || !t.on.Load() {
		return Span{}
	}
	lane := worker + 1
	if lane < 0 || lane >= len(t.depth) {
		lane = 0
	}
	d := atomic.AddInt32(&t.depth[lane], 1) - 1
	start := t.now().Sub(t.epoch)
	t.last[lane].Store(&laneMark{name: name, start: start})
	return Span{t: t, name: name, lane: int32(lane), depth: d, start: start}
}

// End closes the span and records it into the ring buffer.
func (s Span) End() {
	t := s.t
	if t == nil {
		return
	}
	end := t.now().Sub(t.epoch)
	atomic.AddInt32(&t.depth[s.lane], -1)
	e := Event{Name: s.name, Lane: int(s.lane), Depth: s.depth, Start: s.start, Dur: end - s.start}
	t.mu.Lock()
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.head] = e
		t.head = (t.head + 1) % t.cap
	}
	t.total++
	t.mu.Unlock()
}

// Events returns the buffered events in recording (end-time) order:
// oldest surviving event first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.head:]...)
	out = append(out, t.buf[:t.head]...)
	return out
}

// Dropped reports how many events were overwritten because the ring
// buffer was full (always the oldest are dropped first).
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(len(t.buf))
}

// Recorded reports how many events were ever recorded.
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Lanes reports the lane count (workers + the stages lane); 0 for nil.
func (t *Tracer) Lanes() int {
	if t == nil {
		return 0
	}
	return len(t.depth)
}

// laneMark records the most recently started span on a lane.
type laneMark struct {
	name  string
	start time.Duration
}

// LaneStatus is one lane's live view for the ops server's /tracez: the
// current nesting depth (0 = idle) and the most recently started span.
// In-flight reads race benignly with recording — depth and last-span
// are sampled independently — so the view is best-effort by design.
type LaneStatus struct {
	Lane  int    `json:"lane"`
	Depth int32  `json:"depth"`
	Span  string `json:"span,omitempty"`
	// SpanStart is the span's start offset from the tracer epoch.
	SpanStart time.Duration `json:"span_start_ns,omitempty"`
}

// LaneStatuses samples every lane's live status; nil for a nil tracer.
func (t *Tracer) LaneStatuses() []LaneStatus {
	if t == nil {
		return nil
	}
	out := make([]LaneStatus, len(t.depth))
	for lane := range t.depth {
		out[lane] = LaneStatus{Lane: lane, Depth: atomic.LoadInt32(&t.depth[lane])}
		if m := t.last[lane].Load(); m != nil {
			out[lane].Span = m.name
			out[lane].SpanStart = m.start
		}
	}
	return out
}
