package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeClock steps a deterministic amount per call, so span timestamps
// and durations are exact in tests.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

func newFakeTracer(capacity, workers int, step time.Duration) *Tracer {
	t := NewTracer(capacity, workers)
	c := &fakeClock{t: time.Unix(0, 0), step: step}
	t.setClock(c.now)
	return t
}

func TestSpanNestingAndOrdering(t *testing.T) {
	tr := newFakeTracer(16, 2, time.Microsecond)
	// Lane nesting: outer wraps inner on the same worker lane; a span on
	// another lane and the stages lane interleave independently.
	outer := tr.StartSpan("outer", 0)
	inner := tr.StartSpan("inner", 0)
	other := tr.StartSpan("other", 1)
	stage := tr.StartSpan("stage", Coordinator)
	inner.End()
	other.End()
	outer.End()
	stage.End()

	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	// Recording order is end order.
	wantOrder := []string{"inner", "other", "outer", "stage"}
	byName := map[string]Event{}
	for i, e := range events {
		if e.Name != wantOrder[i] {
			t.Errorf("event %d = %q, want %q", i, e.Name, wantOrder[i])
		}
		byName[e.Name] = e
	}
	if d := byName["outer"].Depth; d != 0 {
		t.Errorf("outer depth = %d, want 0", d)
	}
	if d := byName["inner"].Depth; d != 1 {
		t.Errorf("inner depth = %d, want 1 (nested under outer)", d)
	}
	if d := byName["other"].Depth; d != 0 {
		t.Errorf("other depth = %d, want 0 (separate lane)", d)
	}
	// Lanes: worker w lands on lane w+1, the coordinator on lane 0.
	if l := byName["outer"].Lane; l != 1 {
		t.Errorf("outer lane = %d, want 1", l)
	}
	if l := byName["other"].Lane; l != 2 {
		t.Errorf("other lane = %d, want 2", l)
	}
	if l := byName["stage"].Lane; l != 0 {
		t.Errorf("stage lane = %d, want 0", l)
	}
	// Interval containment: outer must enclose inner.
	o, i := byName["outer"], byName["inner"]
	if !(o.Start < i.Start && o.Start+o.Dur > i.Start+i.Dur) {
		t.Errorf("outer [%v,%v] does not enclose inner [%v,%v]",
			o.Start, o.Start+o.Dur, i.Start, i.Start+i.Dur)
	}
}

func TestRingBufferOverflowDropsOldest(t *testing.T) {
	tr := newFakeTracer(4, 1, time.Microsecond)
	names := []string{"a", "b", "c", "d", "e", "f"}
	for _, n := range names {
		sp := tr.StartSpan(n, 0)
		sp.End()
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	if got := tr.Recorded(); got != 6 {
		t.Fatalf("Recorded = %d, want 6", got)
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("got %d buffered events, want 4", len(events))
	}
	// The oldest two (a, b) are gone; survivors keep recording order.
	want := []string{"c", "d", "e", "f"}
	for i, e := range events {
		if e.Name != want[i] {
			t.Errorf("event %d = %q, want %q", i, e.Name, want[i])
		}
	}
}

func TestNilAndDisabledTracerAreNoOps(t *testing.T) {
	var nilTr *Tracer
	sp := nilTr.StartSpan("x", 0)
	sp.End() // must not panic
	if nilTr.On() || nilTr.Events() != nil || nilTr.Dropped() != 0 || nilTr.Lanes() != 0 {
		t.Fatal("nil tracer must be inert")
	}
	nilTr.SetOn(true) // must not panic

	tr := NewTracer(8, 1)
	tr.SetOn(false)
	sp = tr.StartSpan("y", 0)
	sp.End()
	if got := tr.Recorded(); got != 0 {
		t.Fatalf("switched-off tracer recorded %d events", got)
	}
	tr.SetOn(true)
	sp = tr.StartSpan("z", 0)
	sp.End()
	if got := tr.Recorded(); got != 1 {
		t.Fatalf("re-enabled tracer recorded %d events, want 1", got)
	}
}

func TestOutOfRangeWorkerFoldsToStagesLane(t *testing.T) {
	tr := NewTracer(8, 2)
	sp := tr.StartSpan("wild", 99)
	sp.End()
	events := tr.Events()
	if len(events) != 1 || events[0].Lane != 0 {
		t.Fatalf("out-of-range worker should fold to lane 0, got %+v", events)
	}
}

// TestConcurrentSpans exercises the ring buffer under the race detector:
// many goroutines record spans on distinct lanes simultaneously.
func TestConcurrentSpans(t *testing.T) {
	const workers, perWorker = 8, 200
	tr := NewTracer(workers*perWorker, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := tr.StartSpan("t", w)
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Recorded(); got != workers*perWorker {
		t.Fatalf("Recorded = %d, want %d", got, workers*perWorker)
	}
	if got := tr.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}
}
