package par

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"fastgr/internal/fault"
	"fastgr/internal/obs"
)

func TestForUnitsUncontainedRunsAndCollectsErrors(t *testing.T) {
	p := NewPool(4)
	results := make([]int, 100)
	errs := p.ForUnits(fault.SiteTask, 100, func(_, i int) error {
		results[i] = i * i
		if i%10 == 3 {
			return fmt.Errorf("unit %d says no", i)
		}
		return nil
	})
	for i, v := range results {
		if v != i*i {
			t.Fatalf("unit %d did not run", i)
		}
	}
	if len(errs) != 10 {
		t.Fatalf("want 10 collected errors, got %d", len(errs))
	}
	for k, we := range errs {
		wantUnit := k*10 + 3
		if we.Unit != wantUnit || we.Contained || we.Attempts != 1 {
			t.Fatalf("errs[%d] = %+v, want uncontained unit %d", k, we, wantUnit)
		}
	}
}

func TestForUnitsNilOnSuccess(t *testing.T) {
	p := NewPool(3)
	if errs := p.ForUnits(fault.SitePlan, 50, func(_, _ int) error { return nil }); errs != nil {
		t.Fatalf("want nil error slice, got %v", errs)
	}
}

func TestForUnitsContainsPanicsAndInjections(t *testing.T) {
	reg := obs.NewRegistry()
	c := fault.New(fault.Options{Seed: 3, Probs: map[string]float64{fault.SiteTask: 0.2}},
		&obs.Observer{Metrics: reg})
	p := NewPool(4)
	p.SetFault(c)
	ran := make([]bool, 200)
	errs := p.ForUnits(fault.SiteTask, 200, func(_, i int) error {
		ran[i] = true
		if i == 77 {
			panic("unit 77 explodes")
		}
		return nil
	})
	// Unit 77 must surface as a contained WorkError wrapping the panic,
	// not crash the process. Injection exhaustion may add more failures.
	var found *fault.WorkError
	for _, we := range errs {
		if !we.Contained {
			t.Fatalf("all failures here are containment-origin, got %+v", we)
		}
		if we.Unit == 77 {
			found = we
		}
	}
	if found == nil {
		// 77 survived only if an injection never fired on its panicking
		// attempts... it panics every attempt, so it must be in errs.
		t.Fatal("panicking unit 77 missing from collected errors")
	}
	var pe *fault.PanicError
	if !errors.As(found, &pe) && !errors.Is(found, fault.ErrInjected) {
		t.Fatalf("unit 77 cause should be a panic or injection, got %v", found.Cause)
	}
	s := reg.Snapshot()
	inj := s.Counters[obs.MFaultInjected]
	if inj == 0 {
		t.Fatal("probability-0.2 injection never fired over 200 units")
	}
}

func TestForUnitsFailureSetIdenticalAcrossWorkerCounts(t *testing.T) {
	shape := func(workers int) [][3]interface{} {
		reg := obs.NewRegistry()
		c := fault.New(fault.Options{Seed: 11, Probs: map[string]float64{fault.SiteScan: 0.15}},
			&obs.Observer{Metrics: reg})
		p := NewPool(workers)
		p.SetFault(c)
		errs := p.ForUnits(fault.SiteScan, 300, func(_, _ int) error { return nil })
		out := make([][3]interface{}, len(errs))
		for i, we := range errs {
			out[i] = [3]interface{}{we.Site, we.Unit, we.Error()}
		}
		return out
	}
	ref := shape(1)
	if len(ref) == 0 {
		t.Fatal("expected some exhausted units at p=0.15 over 300 units")
	}
	for _, w := range []int{2, 8} {
		if got := shape(w); !reflect.DeepEqual(got, ref) {
			t.Fatalf("failure set at %d workers differs from 1 worker:\n%v\nvs\n%v", w, got, ref)
		}
	}
}
