// Package par provides the host-parallel execution primitives the router's
// hot paths share: a bounded worker pool running a deterministic parallel-for
// with per-worker scratch affinity.
//
// The contract that keeps parallel runs bit-identical to sequential ones is
// the caller's: the body invoked for index i may only write state owned by i
// (its own result slot, grid cells inside its private window) plus scratch
// keyed by the worker id it receives. Under that contract the outcome is a
// pure function of the input regardless of how indices interleave across
// goroutines, so none of the modeled times or routing results may change
// with the worker count — only wall-clock does. Package core's determinism
// suite sweeps worker counts to enforce exactly that.
package par

import (
	"sync"
	"sync/atomic"
	"time"

	"fastgr/internal/fault"
	"fastgr/internal/obs"
)

// Pool is a bounded parallel-for executor. The zero value is unusable; build
// one with NewPool. A Pool carries no goroutines between calls — bounding
// means a call to For never runs more than Workers goroutines at once, so a
// caller can size scratch as one object per worker id.
type Pool struct {
	workers int

	// Observability handles, resolved once by SetObserver so the chunk
	// loop never takes the registry lock. All are nil in disabled mode,
	// where the per-chunk cost is two nil checks.
	tr   *obs.Tracer
	wait *obs.Histogram
	run  *obs.Histogram

	// fc is the fault-containment layer ForUnits bodies run under; nil
	// (the default) is the uncontained mode, where ForUnits calls bodies
	// directly.
	fc *fault.Containment

	// lane offsets the tracer lane of this pool's chunk spans. A nested
	// sub-pool (sharded routing runs one per shard group) sets it to the
	// group's first composite lane so its workers' spans land on lanes
	// disjoint from every sibling group's. It shifts only where spans are
	// drawn; fn still receives the raw worker id.
	lane int
}

// NewPool returns a pool of at least one worker.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's worker bound.
func (p *Pool) Workers() int { return p.workers }

// SetLane sets the tracer-lane base for this pool's chunk spans (see the
// lane field). Call before sharing the pool across goroutines.
func (p *Pool) SetLane(base int) { p.lane = base }

// SetObserver attaches (or, with nil, detaches) the flight recorder:
// each claimed chunk then records a span on its worker's lane plus its
// claim latency and run duration. Call before sharing the pool across
// goroutines; observation never changes scheduling or results.
func (p *Pool) SetObserver(o *obs.Observer) {
	p.tr = o.T()
	p.wait = o.M().Histogram(obs.MParWaitNs, obs.DurationBuckets)
	p.run = o.M().Histogram(obs.MParRunNs, obs.DurationBuckets)
}

// For runs fn(worker, i) for every i in [0, n). At most p.Workers()
// goroutines run concurrently; the worker argument is in [0, p.Workers())
// and identifies the goroutine, so fn may use it to index per-worker scratch
// without locking. Indices are claimed in contiguous chunks from a shared
// counter (work-stealing by chunk), which balances skewed per-index costs
// without a scheduler thread.
func (p *Pool) For(n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	observing := p.tr.On() || p.wait != nil
	var forStart time.Time
	if observing {
		forStart = time.Now()
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers == 1 {
		if observing {
			sp := p.tr.StartSpan("par.chunk", p.lane)
			for i := 0; i < n; i++ {
				fn(0, i)
			}
			sp.End()
			p.wait.Observe(0)
			p.run.Observe(time.Since(forStart).Nanoseconds())
			return
		}
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	// Chunked claiming keeps the atomic counter off the hot path while still
	// letting fast workers absorb the tail of slow ones.
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				var chunkStart time.Time
				var sp obs.Span
				if observing {
					chunkStart = time.Now()
					sp = p.tr.StartSpan("par.chunk", p.lane+worker)
				}
				for i := start; i < end; i++ {
					fn(worker, i)
				}
				if observing {
					sp.End()
					p.wait.Observe(chunkStart.Sub(forStart).Nanoseconds())
					p.run.Observe(time.Since(chunkStart).Nanoseconds())
				}
			}
		}(w)
	}
	wg.Wait()
}

// SetFault attaches (or, with nil, detaches) the fault-containment
// layer for subsequent ForUnits calls. Call before sharing the pool
// across goroutines.
func (p *Pool) SetFault(c *fault.Containment) { p.fc = c }

// ForUnits is For for fallible work units: fn(worker, i) runs for every
// i in [0, n) under the pool's containment layer (when armed), so a
// panicking or injected-faulty unit is retried and, on exhaustion,
// collected instead of crashing the process. The returned slice holds
// the terminal failures sorted by unit index — nil when every unit
// succeeded — so callers observe an identical failure set at every
// worker count. A unit body returning its own error is collected
// un-contained without retry; the unit index, never the chunk layout,
// keys the injection decision.
func (p *Pool) ForUnits(site string, n int, fn func(worker, i int) error) []*fault.WorkError {
	var mu sync.Mutex
	var errs []*fault.WorkError
	p.For(n, func(worker, i int) {
		var err error
		if p.fc.Enabled() {
			err = p.fc.Run(site, i, worker, func() error { return fn(worker, i) })
		} else {
			err = fn(worker, i)
		}
		if err == nil {
			return
		}
		we, ok := err.(*fault.WorkError)
		if !ok {
			we = &fault.WorkError{Site: site, Unit: i, Attempts: 1, Cause: err}
		}
		mu.Lock()
		errs = append(errs, we)
		mu.Unlock()
	})
	if len(errs) == 0 {
		return nil
	}
	fault.SortWorkErrors(errs)
	return errs
}

// For is the one-shot convenience: NewPool(workers).For(n, fn).
func For(workers, n int, fn func(worker, i int)) {
	NewPool(workers).For(n, fn)
}
