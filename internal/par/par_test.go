package par

import (
	"sync"
	"sync/atomic"
	"testing"

	"fastgr/internal/obs"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			hits := make([]int32, n)
			For(workers, n, func(_, i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForWorkerIDsWithinBound(t *testing.T) {
	const workers, n = 5, 300
	p := NewPool(workers)
	if p.Workers() != workers {
		t.Fatalf("Workers() = %d, want %d", p.Workers(), workers)
	}
	var bad atomic.Int32
	p.For(n, func(w, _ int) {
		if w < 0 || w >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatal("worker id outside [0, workers)")
	}
}

// TestForWorkerScratchAffinity verifies the property core's maze scratch
// depends on: a worker id is never used by two goroutines at once, so
// scratch indexed by worker needs no locking.
func TestForWorkerScratchAffinity(t *testing.T) {
	const workers, n = 4, 2000
	inUse := make([]atomic.Int32, workers)
	var clashes atomic.Int32
	For(workers, n, func(w, _ int) {
		if inUse[w].Add(1) != 1 {
			clashes.Add(1)
		}
		inUse[w].Add(-1)
	})
	if clashes.Load() != 0 {
		t.Fatal("two goroutines shared a worker id concurrently")
	}
}

func TestForDeterministicSlotWrites(t *testing.T) {
	// Under the slot-ownership contract the output is identical for any
	// worker count.
	const n = 512
	want := make([]int, n)
	For(1, n, func(_, i int) { want[i] = i * i })
	for _, workers := range []int{2, 3, 8} {
		got := make([]int, n)
		For(workers, n, func(_, i int) { got[i] = i * i })
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForClampsWorkersToN(t *testing.T) {
	// More workers than indices must not deadlock or double-visit.
	var count atomic.Int32
	For(16, 3, func(_, _ int) { count.Add(1) })
	if count.Load() != 3 {
		t.Fatalf("visited %d indices, want 3", count.Load())
	}
}

func TestNewPoolClampsToOne(t *testing.T) {
	if NewPool(-3).Workers() != 1 {
		t.Fatal("negative worker count not clamped")
	}
}

func TestForConcurrentPools(t *testing.T) {
	// Distinct pools may run concurrently without interfering.
	var wg sync.WaitGroup
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sum := make([]int64, 100)
			For(3, 100, func(_, i int) { sum[i] = int64(i) })
			var s int64
			for _, v := range sum {
				s += v
			}
			if s != 4950 {
				t.Errorf("sum = %d, want 4950", s)
			}
		}()
	}
	wg.Wait()
}

// TestForObservation checks the flight-recorder hooks: with an observer
// attached For records one par.chunk span per claimed chunk on the
// claiming worker's lane, plus wait/run duration histograms; with a nil
// observer nothing is recorded and the loop still covers every index.
func TestForObservation(t *testing.T) {
	o := &obs.Observer{Tracer: obs.NewTracer(1<<10, 4), Metrics: obs.NewRegistry()}
	p := NewPool(4)
	p.SetObserver(o)
	hits := make([]int32, 500)
	p.For(len(hits), func(_, i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times with observer attached", i, h)
		}
	}
	if o.Tracer.Recorded() == 0 {
		t.Fatal("no par.chunk spans recorded")
	}
	for _, e := range o.Tracer.Events() {
		if e.Name != "par.chunk" {
			t.Fatalf("unexpected span %q", e.Name)
		}
		if e.Lane < 1 || e.Lane > 4 {
			t.Fatalf("par.chunk on lane %d, want a worker lane in [1,4]", e.Lane)
		}
	}
	s := o.Metrics.Snapshot()
	wait, run := s.Histograms[obs.MParWaitNs], s.Histograms[obs.MParRunNs]
	if wait.Count == 0 || run.Count == 0 {
		t.Fatalf("wait/run histograms empty: %d/%d", wait.Count, run.Count)
	}
	if wait.Count != run.Count || wait.Count != int64(o.Tracer.Recorded()) {
		t.Fatalf("wait=%d run=%d spans=%d, want all equal",
			wait.Count, run.Count, o.Tracer.Recorded())
	}
}

// TestForObservationSequentialPath covers the workers<=1 / tiny-n branch:
// a single par.chunk observation with zero wait.
func TestForObservationSequentialPath(t *testing.T) {
	o := &obs.Observer{Tracer: obs.NewTracer(16, 1), Metrics: obs.NewRegistry()}
	p := NewPool(1)
	p.SetObserver(o)
	var n int32
	p.For(10, func(_, _ int) { atomic.AddInt32(&n, 1) })
	if n != 10 {
		t.Fatalf("covered %d indices, want 10", n)
	}
	if got := o.Tracer.Recorded(); got != 1 {
		t.Fatalf("sequential path recorded %d spans, want 1", got)
	}
	s := o.Metrics.Snapshot()
	if w := s.Histograms[obs.MParWaitNs]; w.Count != 1 || w.Max != 0 {
		t.Fatalf("sequential wait histogram = %+v, want one zero observation", w)
	}
}
