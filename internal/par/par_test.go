package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			hits := make([]int32, n)
			For(workers, n, func(_, i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForWorkerIDsWithinBound(t *testing.T) {
	const workers, n = 5, 300
	p := NewPool(workers)
	if p.Workers() != workers {
		t.Fatalf("Workers() = %d, want %d", p.Workers(), workers)
	}
	var bad atomic.Int32
	p.For(n, func(w, _ int) {
		if w < 0 || w >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatal("worker id outside [0, workers)")
	}
}

// TestForWorkerScratchAffinity verifies the property core's maze scratch
// depends on: a worker id is never used by two goroutines at once, so
// scratch indexed by worker needs no locking.
func TestForWorkerScratchAffinity(t *testing.T) {
	const workers, n = 4, 2000
	inUse := make([]atomic.Int32, workers)
	var clashes atomic.Int32
	For(workers, n, func(w, _ int) {
		if inUse[w].Add(1) != 1 {
			clashes.Add(1)
		}
		inUse[w].Add(-1)
	})
	if clashes.Load() != 0 {
		t.Fatal("two goroutines shared a worker id concurrently")
	}
}

func TestForDeterministicSlotWrites(t *testing.T) {
	// Under the slot-ownership contract the output is identical for any
	// worker count.
	const n = 512
	want := make([]int, n)
	For(1, n, func(_, i int) { want[i] = i * i })
	for _, workers := range []int{2, 3, 8} {
		got := make([]int, n)
		For(workers, n, func(_, i int) { got[i] = i * i })
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForClampsWorkersToN(t *testing.T) {
	// More workers than indices must not deadlock or double-visit.
	var count atomic.Int32
	For(16, 3, func(_, _ int) { count.Add(1) })
	if count.Load() != 3 {
		t.Fatalf("visited %d indices, want 3", count.Load())
	}
}

func TestNewPoolClampsToOne(t *testing.T) {
	if NewPool(-3).Workers() != 1 {
		t.Fatal("negative worker count not clamped")
	}
}

func TestForConcurrentPools(t *testing.T) {
	// Distinct pools may run concurrently without interfering.
	var wg sync.WaitGroup
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sum := make([]int64, 100)
			For(3, 100, func(_, i int) { sum[i] = int64(i) })
			var s int64
			for _, v := range sum {
				s += v
			}
			if s != 4950 {
				t.Errorf("sum = %d, want 4950", s)
			}
		}()
	}
	wg.Wait()
}
