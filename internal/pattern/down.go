package pattern

import "math"

// computeDown fills cbc(u, ·) — eq. 2 extended with the node's own pin
// access: for every access layer la, the cheapest way to terminate all of
// u's already-routed children edges and u's pins onto a single via stack at
// u's position that also reaches la.
//
// The enumeration over stack intervals [lo,hi] is exact: any solution's via
// stack at u spans some layer interval containing la, every chosen child
// connection layer, and every pin layer; conversely every such interval
// yields a feasible solution, so minimizing over intervals (with each child
// independently picking its best layer inside) is the true minimum.
func (s *solver) computeDown(u int) {
	node := &s.tree.Nodes[u]
	L := s.L
	down := make([]float64, L)
	picks := make([]downChoice, L)

	pinLo, pinHi := 0, 0
	if node.IsPin() {
		pinLo, pinHi = node.PinLayers[0], node.PinLayers[0]
		for _, pl := range node.PinLayers[1:] {
			if pl < pinLo {
				pinLo = pl
			}
			if pl > pinHi {
				pinHi = pl
			}
		}
	}

	// Memoize via-stack costs from each lo upward.
	stack := make([][]float64, L+1)
	for lo := 1; lo <= L; lo++ {
		stack[lo] = make([]float64, L+1)
		for hi := lo + 1; hi <= L; hi++ {
			stack[lo][hi] = stack[lo][hi-1] + s.g.ViaEdgeCost(node.Pos.X, node.Pos.Y, hi-1)
		}
	}

	children := node.Children
	for la := 1; la <= L; la++ {
		best := Inf
		var bestPick downChoice
		for lo := 1; lo <= la; lo++ {
			if pinLo != 0 && lo > pinLo {
				break
			}
			for hi := la; hi <= L; hi++ {
				if pinHi != 0 && hi < pinHi {
					continue
				}
				cost := stack[lo][hi]
				pick := downChoice{lo: lo, hi: hi, childLayers: make([]int, 0, len(children))}
				feasible := true
				for _, c := range children {
					ev := s.edgeVal[c]
					bl, bc := 0, Inf
					for l := lo; l <= hi; l++ {
						s.ops.DownOps++
						if ev[l-1] < bc {
							bc, bl = ev[l-1], l
						}
					}
					if math.IsInf(bc, 1) {
						feasible = false
						break
					}
					cost += bc
					pick.childLayers = append(pick.childLayers, bl)
				}
				if feasible && cost < best {
					best, bestPick = cost, pick
				}
			}
		}
		down[la-1] = best
		picks[la-1] = bestPick
	}
	s.down[u] = down
	s.downPick[u] = picks
}
