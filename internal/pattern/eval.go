package pattern

// CPUEvaluator executes computation-graph flows sequentially — the baseline
// CUGR-style execution the paper's GPU kernels are measured against.
type CPUEvaluator struct {
	Ops Ops
}

// EvalProgram implements Evaluator.
func (e *CPUEvaluator) EvalProgram(p *EdgeProgram) ([]float64, []Choice) {
	return EvalProgramSeq(p, &e.Ops)
}

// EvalProgramSeq evaluates a program with plain sequential min-plus
// reductions, counting every inner-loop operation into ops. It is shared by
// the CPU evaluator and the functional half of the simulated GPU device (the
// two backends must return bit-identical results).
func EvalProgramSeq(p *EdgeProgram, ops *Ops) ([]float64, []Choice) {
	L := p.L
	if !p.Hybrid {
		out, arg := MinPlusVecMat(p.LFlow.W1, p.LFlow.W2, L)
		ops.FlowOps += int64(L * L)
		choices := make([]Choice, L)
		for lt := 0; lt < L; lt++ {
			choices[lt] = Choice{Cand: -1, Ls: arg[lt] + 1}
		}
		return out, choices
	}

	val := make([]float64, L)
	choices := make([]Choice, L)
	for i := range val {
		val[i] = Inf
	}
	for ci := range p.ZFlows {
		f := &p.ZFlows[ci]
		tmp, argLs := MinPlusVecMat(f.W1, f.W2, L)
		out, argLb := MinPlusVecMat(tmp, f.W3, L)
		ops.FlowOps += int64(2 * L * L)
		for lt := 0; lt < L; lt++ {
			ops.FlowOps++ // merge step, eq. 10
			if out[lt] < val[lt] {
				lb := argLb[lt]
				val[lt] = out[lt]
				choices[lt] = Choice{Cand: ci, Ls: argLs[lb] + 1, Lb: lb + 1}
			}
		}
	}
	for si := range p.SFlows {
		out, args := evalSFlow(&p.SFlows[si], L, ops)
		for lt := 0; lt < L; lt++ {
			ops.FlowOps++ // merge step over the extended candidate set
			if out[lt] < val[lt] {
				a := args[lt]
				val[lt] = out[lt]
				choices[lt] = Choice{
					Cand: len(p.ZFlows) + si,
					Ls:   a[0], Lb: a[1], Lc: a[2],
				}
			}
		}
	}
	return val, choices
}

// MinPlusVecMat computes out[j] = min_i w[i] + m[i*L+j] along with the
// argmin rows — the vector-matrix min-plus product at the heart of the
// computation-graph flows (eq. 7 / eq. 14). Inf entries propagate naturally.
func MinPlusVecMat(w []float64, m []float64, L int) (out []float64, arg []int) {
	out = make([]float64, L)
	arg = make([]int, L)
	for j := 0; j < L; j++ {
		best, bi := Inf, 0
		for i := 0; i < L; i++ {
			if v := w[i] + m[i*L+j]; v < best {
				best, bi = v, i
			}
		}
		out[j] = best
		arg[j] = bi
	}
	return out, arg
}

// MergeMin folds candidate outputs element-wise (eq. 10), returning the
// winning candidate index per entry.
func MergeMin(outs [][]float64, L int) (val []float64, cand []int) {
	val = make([]float64, L)
	cand = make([]int, L)
	for j := 0; j < L; j++ {
		val[j] = Inf
		cand[j] = -1
	}
	for ci, out := range outs {
		for j := 0; j < L; j++ {
			if out[j] < val[j] {
				val[j] = out[j]
				cand[j] = ci
			}
		}
	}
	return val, cand
}
