package pattern

import (
	"fastgr/internal/geom"
	"fastgr/internal/grid"
	"fastgr/internal/route"
)

// EdgeProgram is the computation-graph flow of one two-pin net: either a
// single L-shape flow (Fig. 8) or M+N candidate Z-shape flows plus a merge
// step (Figs. 9–10). Infeasible layer combinations carry Inf weights.
type EdgeProgram struct {
	TP     route.TwoPin
	L      int
	Hybrid bool // true when ZFlows drive the edge (hybrid/Z kernels)

	LFlow  *LFlow
	ZFlows []ZFlow
	SFlows []SFlow // three-bend staircase candidates (Staircase mode)
}

// LFlow is the single-bend flow: out[lt] = min_ls W1[ls] + W2[ls][lt]
// (eq. 7). The bend point is implied by ls: a horizontal source layer runs
// x-first (bend at (t.x, s.y)), a vertical one y-first (bend at (s.x, t.y)).
type LFlow struct {
	W1    []float64    // L entries, eq. 5
	W2    []float64    // L*L row-major [ls][lt], eq. 6
	Bends []geom.Point // per ls: the bend position B(ls)
}

// ZFlow is one candidate two-bend flow i:
// out_i[lt] = min_{ls,lb} W1[ls] + W2[ls][lb] + W3[lb][lt] (eq. 14).
type ZFlow struct {
	W1 []float64 // L entries, eq. 11
	W2 []float64 // L*L [ls][lb], eq. 12
	W3 []float64 // L*L [lb][lt], eq. 13
	Bs geom.Point
	Bt geom.Point
}

// NumFlows reports how many candidate flows the program evaluates (the
// quantity the GPU occupancy model parallelizes over).
func (p *EdgeProgram) NumFlows() int {
	if p.Hybrid {
		return len(p.ZFlows) + len(p.SFlows)
	}
	return 1
}

func (s *solver) buildProgram(tp route.TwoPin) *EdgeProgram {
	if s.useHybrid(tp) {
		var prog *EdgeProgram
		if s.cfg.Mode == Staircase {
			prog = s.buildStairProgram(tp)
		} else {
			prog = s.buildZProgram(tp)
		}
		if prog != nil {
			return prog
		}
	}
	return s.buildLProgram(tp)
}

// segOrient returns whether a->b is horizontal; a must differ from b in
// exactly one axis (callers construct bends that guarantee this).
func segOrient(a, b geom.Point) grid.Dir {
	if a.Y == b.Y {
		return grid.Horizontal
	}
	return grid.Vertical
}

// segCostAllLayers returns, per layer, the cost of the straight run a-b, or
// Inf on layers whose preferred direction fights the run. A zero-length run
// costs zero on every layer. The bulk grid query answers each feasible
// layer from the cost cache's prefix sums when warm; the DP op accounting
// (one op per G-cell per feasible layer — the modeled-time currency) is
// unchanged from the per-layer walk: a layer's cost is finite exactly when
// its direction matches the run.
func (s *solver) segCostAllLayers(a, b geom.Point) []float64 {
	costs := make([]float64, s.L)
	if a == b {
		return costs
	}
	s.g.SegCostsAllLayers(a, b, costs)
	dist := int64(geom.ManhattanDist(a, b))
	for l := 1; l <= s.L; l++ {
		if costs[l-1] < Inf {
			s.ops.FlowOps += dist
		}
	}
	return costs
}

// buildLProgram assembles the L-shape flow of eqs. 5–6.
func (s *solver) buildLProgram(tp route.TwoPin) *EdgeProgram {
	L := s.L
	src, dst := tp.Source(), tp.Target()
	down := s.down[tp.Child]

	b1 := geom.Point{X: dst.X, Y: src.Y} // x-first bend
	b2 := geom.Point{X: src.X, Y: dst.Y} // y-first bend
	seg1H := s.segCostAllLayers(src, b1) // horizontal first leg
	seg1V := s.segCostAllLayers(src, b2) // vertical first leg
	seg2V := s.segCostAllLayers(b1, dst) // vertical second leg
	seg2H := s.segCostAllLayers(b2, dst) // horizontal second leg

	f := &LFlow{
		W1:    make([]float64, L),
		W2:    make([]float64, L*L),
		Bends: make([]geom.Point, L),
	}
	for ls := 1; ls <= L; ls++ {
		var bend geom.Point
		var leg1, leg2 []float64
		if s.g.Dir(ls) == grid.Horizontal {
			bend, leg1, leg2 = b1, seg1H, seg2V
		} else {
			bend, leg1, leg2 = b2, seg1V, seg2H
		}
		f.Bends[ls-1] = bend
		f.W1[ls-1] = down[ls-1] + leg1[ls-1]
		for lt := 1; lt <= L; lt++ {
			s.ops.FlowOps++
			w := leg2[lt-1]
			if w < Inf {
				w += s.g.ViaStackCost(bend.X, bend.Y, ls, lt)
			}
			f.W2[(ls-1)*L+(lt-1)] = w
		}
	}
	return &EdgeProgram{TP: tp, L: L, LFlow: f}
}

// buildZProgram assembles the candidate Z-shape flows. In Hybrid mode the
// bend columns/rows span the whole bounding box (M+N candidates, the two
// boundary ones degenerating into L shapes, Section III-F); in ZShape mode
// only the interior M+N-2 candidates are used, and nil is returned when the
// box is too thin to have any (the caller falls back to L).
func (s *solver) buildZProgram(tp route.TwoPin) *EdgeProgram {
	L := s.L
	src, dst := tp.Source(), tp.Target()
	lox, hix := geom.Min(src.X, dst.X), geom.Max(src.X, dst.X)
	loy, hiy := geom.Min(src.Y, dst.Y), geom.Max(src.Y, dst.Y)

	interiorOnly := s.cfg.Mode == ZShape
	var flows []ZFlow
	for xi := lox; xi <= hix; xi++ {
		if interiorOnly && (xi == src.X || xi == dst.X) {
			continue
		}
		bs := geom.Point{X: xi, Y: src.Y}
		bt := geom.Point{X: xi, Y: dst.Y}
		flows = append(flows, s.buildZFlow(tp, bs, bt))
	}
	for yi := loy; yi <= hiy; yi++ {
		if interiorOnly && (yi == src.Y || yi == dst.Y) {
			continue
		}
		bs := geom.Point{X: src.X, Y: yi}
		bt := geom.Point{X: dst.X, Y: yi}
		flows = append(flows, s.buildZFlow(tp, bs, bt))
	}
	if len(flows) == 0 {
		return nil
	}
	return &EdgeProgram{TP: tp, L: L, Hybrid: true, ZFlows: flows}
}

// buildZFlow assembles eqs. 11–13 for one bend-point pair.
func (s *solver) buildZFlow(tp route.TwoPin, bs, bt geom.Point) ZFlow {
	L := s.L
	src, dst := tp.Source(), tp.Target()
	down := s.down[tp.Child]

	seg1 := s.segCostAllLayers(src, bs)
	seg2 := s.segCostAllLayers(bs, bt)
	seg3 := s.segCostAllLayers(bt, dst)

	f := ZFlow{
		W1: make([]float64, L),
		W2: make([]float64, L*L),
		W3: make([]float64, L*L),
		Bs: bs,
		Bt: bt,
	}
	for ls := 1; ls <= L; ls++ {
		f.W1[ls-1] = down[ls-1] + seg1[ls-1]
		for lb := 1; lb <= L; lb++ {
			s.ops.FlowOps++
			w := seg2[lb-1]
			if w < Inf {
				w += s.g.ViaStackCost(bs.X, bs.Y, ls, lb)
			}
			f.W2[(ls-1)*L+(lb-1)] = w
		}
	}
	for lb := 1; lb <= L; lb++ {
		for lt := 1; lt <= L; lt++ {
			s.ops.FlowOps++
			w := seg3[lt-1]
			if w < Inf {
				w += s.g.ViaStackCost(bt.X, bt.Y, lb, lt)
			}
			f.W3[(lb-1)*L+(lt-1)] = w
		}
	}
	return f
}
