// Package pattern implements the paper's pattern routing algorithms for the
// general routing stage: 3-D L-shape (Section III-D, eqs. 1–7), 3-D Z-shape
// (Section III-E, eqs. 8–14) and the hybrid-shape algorithm with HPWL-based
// selection (Sections III-F, IV-D).
//
// Each two-pin net's dynamic program is reformulated into a min-plus
// computation-graph flow — an edge-weight vector w⁽¹⁹ and matrices W⁽²⁾/W⁽³⁾
// evaluated with vector-addition and minimum reductions — exactly the
// GPU-friendly structure of Figs. 8–10. The flows are built here once and
// can be evaluated either by the sequential CPU evaluator in this package
// (the CUGR-style baseline) or by the simulated GPU device in package
// patterngpu; both produce bit-identical routing results.
package pattern

import (
	"math"

	"fastgr/internal/grid"
	"fastgr/internal/route"
	"fastgr/internal/stt"
)

// Mode selects the pattern set of the general routing stage.
type Mode int

const (
	// LShape uses only single-bend patterns (FastGRL and the CUGR baseline).
	LShape Mode = iota
	// ZShape uses only two-bend patterns with interior bend points.
	ZShape
	// Hybrid unifies L and Z patterns as M+N candidate bend-point pairs
	// (FastGRH).
	Hybrid
	// Staircase extends the framework to three-bend patterns (the
	// "more bend points" extension of Section IV-F): hybrid candidates plus
	// sampled interior staircases, evaluated as four-stage min-plus chains.
	Staircase
)

func (m Mode) String() string {
	switch m {
	case LShape:
		return "L"
	case ZShape:
		return "Z"
	case Hybrid:
		return "hybrid"
	default:
		return "staircase"
	}
}

// Config controls one pattern routing invocation.
type Config struct {
	Mode Mode
	// Selection applies the hybrid kernel only to two-pin nets with
	// T1 < HPWL <= T2 (Section IV-D; the paper picks 100 and 500), falling
	// back to L-shape for small and tremendous nets. Only meaningful in
	// Hybrid mode.
	Selection bool
	T1, T2    int
}

// Inf marks an infeasible layer combination in a flow (a segment whose
// orientation fights the layer's preferred direction).
var Inf = math.Inf(1)

// Ops counts dynamic-program work for the deterministic timing model:
// FlowOps is the min-plus inner-loop count (the work a GPU lane array would
// absorb), DownOps the bottom-children-cost work, which stays on the
// sequential side in both implementations.
type Ops struct {
	FlowOps int64
	DownOps int64
}

// Total returns all counted operations.
func (o Ops) Total() int64 { return o.FlowOps + o.DownOps }

// Add accumulates counters.
func (o *Ops) Add(p Ops) {
	o.FlowOps += p.FlowOps
	o.DownOps += p.DownOps
}

// Result is the outcome of routing one multi-pin net.
type Result struct {
	Route *route.NetRoute
	Cost  float64
	Ops   Ops
	// Edges and HybridEdges count the two-pin nets routed, and how many of
	// them used the hybrid kernel (selection statistics for Table VI).
	Edges       int
	HybridEdges int
	// EdgeFlows and EdgeHybrid record, per routed two-pin net in execution
	// order, the number of candidate flows and whether the multi-stage
	// (Z/hybrid) kernel ran — the inputs to the GPU block workload model.
	EdgeFlows  []int
	EdgeHybrid []bool
}

// Evaluator abstracts who executes a two-pin net's computation-graph flow:
// the sequential CPU (this package) or the simulated GPU (patterngpu).
type Evaluator interface {
	// EvalProgram returns, for every target layer lt in 1..L, the minimum
	// edge cost val[lt-1] (eq. 3 / eq. 10) and the argmin choice that
	// achieves it.
	EvalProgram(p *EdgeProgram) (val []float64, choices []Choice)
}

// Choice records the argmin of one target layer: the candidate flow index
// (-1 for the single L-shape flow) and the source/bend layers.
type Choice struct {
	Cand   int
	Ls, Lb int // 1-based; Lb is 0 for L-shape flows
	Lc     int // second bend layer; only set for staircase flows
}

// Solve routes one multi-pin net: builds the Steiner-tree DP bottom-up in
// the intra-net DFS order, evaluating every two-pin net's flow with eval,
// then reconstructs the optimal geometry. The grid is not modified; callers
// commit the returned route.
func Solve(g *grid.Graph, tree *stt.Tree, cfg Config, eval Evaluator) Result {
	s := &solver{g: g, tree: tree, cfg: cfg, eval: eval, L: g.L}
	return s.run()
}

// SolveCPU routes one net with the sequential CPU evaluator.
func SolveCPU(g *grid.Graph, tree *stt.Tree, cfg Config) Result {
	e := &CPUEvaluator{}
	res := Solve(g, tree, cfg, e)
	res.Ops.FlowOps += e.Ops.FlowOps
	return res
}

type solver struct {
	g    *grid.Graph
	tree *stt.Tree
	cfg  Config
	eval Evaluator
	L    int

	// Per tree node (indexed by node id):
	edgeVal    [][]float64    // c*(node, parent, lt) for the edge node->parent
	edgeChoice [][]Choice     // argmin data for reconstruction
	edgeProg   []*EdgeProgram // flow kept for geometry reconstruction
	down       [][]float64    // cbc(node, l) including the node's pin stack
	downPick   [][]downChoice // argmin data for reconstruction

	ops Ops
}

// downChoice records how cbc(u, l) was achieved: the via-stack interval and
// each child's connection layer.
type downChoice struct {
	lo, hi      int
	childLayers []int
}

func (s *solver) run() Result {
	n := len(s.tree.Nodes)
	s.edgeVal = make([][]float64, n)
	s.edgeChoice = make([][]Choice, n)
	s.edgeProg = make([]*EdgeProgram, n)
	s.down = make([][]float64, n)
	s.downPick = make([][]downChoice, n)

	twoPins := route.Decompose(s.tree)
	res := Result{Route: &route.NetRoute{NetID: s.tree.NetID}}
	res.Edges = len(twoPins)

	for _, tp := range twoPins {
		s.computeDown(tp.Child)
		prog := s.buildProgram(tp)
		if prog.Hybrid {
			res.HybridEdges++
		}
		res.EdgeFlows = append(res.EdgeFlows, prog.NumFlows())
		res.EdgeHybrid = append(res.EdgeHybrid, prog.Hybrid)
		val, choices := s.eval.EvalProgram(prog)
		s.edgeVal[tp.Child] = val
		s.edgeChoice[tp.Child] = choices
		s.edgeProg[tp.Child] = prog
	}
	s.computeDown(s.tree.Root)

	// Root cost: eq. 4 — minimize over the root's access layer.
	rootVal := s.down[s.tree.Root]
	bestL, best := 1, rootVal[0]
	for l := 2; l <= s.L; l++ {
		if rootVal[l-1] < best {
			bestL, best = l, rootVal[l-1]
		}
	}
	res.Cost = best
	s.reconstruct(res.Route, s.tree.Root, bestL)
	res.Ops = s.ops
	return res
}

// useHybrid applies the selection rule to one two-pin net.
func (s *solver) useHybrid(tp route.TwoPin) bool {
	switch s.cfg.Mode {
	case LShape:
		return false
	case ZShape, Hybrid, Staircase:
		if s.cfg.Mode != ZShape && s.cfg.Selection {
			h := tp.HPWL()
			return h > s.cfg.T1 && h <= s.cfg.T2
		}
		return true
	}
	return false
}
