package pattern

import (
	"math"
	"math/rand"
	"testing"

	"fastgr/internal/design"
	"fastgr/internal/geom"
	"fastgr/internal/grid"
	"fastgr/internal/route"
	"fastgr/internal/stt"
)

// bruteForceZOnly enumerates interior-bend Z paths (plus the L fallback when
// no interior bend exists) for a two-pin net with pins on layer 1 — the
// reference for ZShape mode.
func bruteForceZOnly(g *grid.Graph, s, t geom.Point) float64 {
	best := math.Inf(1)
	L := g.L
	try := func(bs, bt geom.Point, ls, lb, lt int) {
		legs := []struct {
			a, b geom.Point
			l    int
		}{{s, bs, ls}, {bs, bt, lb}, {bt, t, lt}}
		for _, leg := range legs {
			if leg.a != leg.b && segOrient(leg.a, leg.b) != g.Dir(leg.l) {
				return
			}
		}
		c := g.ViaStackCost(s.X, s.Y, 1, ls) + g.SegCost(ls, s, bs) +
			g.ViaStackCost(bs.X, bs.Y, ls, lb) + g.SegCost(lb, bs, bt) +
			g.ViaStackCost(bt.X, bt.Y, lb, lt) + g.SegCost(lt, bt, t) +
			g.ViaStackCost(t.X, t.Y, lt, 1)
		if c < best {
			best = c
		}
	}
	lox, hix := geom.Min(s.X, t.X), geom.Max(s.X, t.X)
	loy, hiy := geom.Min(s.Y, t.Y), geom.Max(s.Y, t.Y)
	any := false
	for ls := 1; ls <= L; ls++ {
		for lb := 1; lb <= L; lb++ {
			for lt := 1; lt <= L; lt++ {
				for xi := lox + 1; xi < hix; xi++ {
					any = true
					try(geom.Point{X: xi, Y: s.Y}, geom.Point{X: xi, Y: t.Y}, ls, lb, lt)
				}
				for yi := loy + 1; yi < hiy; yi++ {
					any = true
					try(geom.Point{X: s.X, Y: yi}, geom.Point{X: t.X, Y: yi}, ls, lb, lt)
				}
			}
		}
	}
	if !any {
		return bruteForceTwoPin(g, s, t) // L fallback
	}
	return best
}

func TestZShapeMatchesBruteForce(t *testing.T) {
	g := testGrid(t, 4)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 120; i++ {
		l := 2 + rng.Intn(3)
		x, y := rng.Intn(20), rng.Intn(20)
		if g.HasWireEdge(l, x, y) {
			if g.Dir(l) == grid.Horizontal {
				g.AddSegDemand(l, geom.Point{X: x, Y: y}, geom.Point{X: x + 1, Y: y}, rng.Intn(14))
			} else {
				g.AddSegDemand(l, geom.Point{X: x, Y: y}, geom.Point{X: x, Y: y + 1}, rng.Intn(14))
			}
		}
	}
	for i := 0; i < 20; i++ {
		s := geom.Point{X: rng.Intn(12), Y: rng.Intn(12)}
		d := geom.Point{X: rng.Intn(12), Y: rng.Intn(12)}
		if s == d {
			continue
		}
		res := solveAndCheck(t, g, netOf(s, d), Config{Mode: ZShape})
		want := bruteForceZOnly(g, s, d)
		if math.Abs(res.Cost-want) > 1e-6 {
			t.Fatalf("net %v->%v: Z DP cost %v, brute force %v", s, d, res.Cost, want)
		}
	}
}

func TestTwoLayerMinimalGrid(t *testing.T) {
	// L=2 is the minimum: one horizontal and one vertical layer. Every mode
	// must still route every net shape.
	g := testGrid(t, 2)
	shapes := [][]geom.Point{
		{{X: 1, Y: 1}, {X: 8, Y: 6}},
		{{X: 1, Y: 3}, {X: 9, Y: 3}},               // horizontal
		{{X: 4, Y: 1}, {X: 4, Y: 9}},               // vertical
		{{X: 2, Y: 2}, {X: 3, Y: 3}, {X: 8, Y: 2}}, // 3-pin
		{{X: 0, Y: 0}, {X: 15, Y: 15}, {X: 0, Y: 15}, {X: 15, Y: 0}},
	}
	for _, pts := range shapes {
		for _, mode := range []Mode{LShape, ZShape, Hybrid} {
			solveAndCheck(t, g, netOf(pts...), Config{Mode: mode})
		}
	}
}

func TestDeepChainNet(t *testing.T) {
	// A long chain stresses the bottom-up DP depth and reconstruction.
	var pts []geom.Point
	for i := 0; i < 12; i++ {
		pts = append(pts, geom.Point{X: 2 * i, Y: (i % 3) * 4})
	}
	g := grid.NewFromDesign(&design.Design{
		Name: "chain", GridW: 32, GridH: 16, NumLayers: 5,
		LayerCapacity: []int{1, 8, 8, 8, 8}, ViaCapacity: 16,
		Nets: []*design.Net{netOf(pts[0], pts[1])},
	})
	res := solveAndCheck(t, g, netOf(pts...), Config{Mode: Hybrid, Selection: true, T1: 3, T2: 20})
	if res.Edges < len(pts)-1 {
		t.Fatalf("chain produced %d edges", res.Edges)
	}
}

func TestPatternDoesNotMutateGrid(t *testing.T) {
	g := testGrid(t, 4)
	net := netOf(geom.Point{X: 1, Y: 1}, geom.Point{X: 9, Y: 9}, geom.Point{X: 3, Y: 12})
	tree := stt.Build(net)
	before, beforeVia := g.TotalDemand()
	SolveCPU(g, tree, Config{Mode: Hybrid})
	after, afterVia := g.TotalDemand()
	if before != after || beforeVia != afterVia {
		t.Fatal("pattern routing mutated grid demand")
	}
}

func TestRouteCommitMatchesSolverGeometry(t *testing.T) {
	// Committing the returned route and validating against pins must work
	// for every mode across many random nets (integration of pattern +
	// route + grid).
	g := testGrid(t, 5)
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 25; i++ {
		n := 2 + rng.Intn(5)
		seen := map[geom.Point]bool{}
		var pts []geom.Point
		for len(pts) < n {
			p := geom.Point{X: rng.Intn(20), Y: rng.Intn(20)}
			if !seen[p] {
				seen[p] = true
				pts = append(pts, p)
			}
		}
		net := netOf(pts...)
		tree := stt.Build(net)
		res := SolveCPU(g, tree, Config{Mode: Hybrid, Selection: true, T1: 4, T2: 24})
		res.Route.Commit(g)
		if err := res.Route.Validate(g, route.PinTerminals(tree)); err != nil {
			t.Fatalf("net %d: %v", i, err)
		}
	}
	// Grid now carries demand; pattern routing must adapt: costs positive.
	if w, _ := g.TotalDemand(); w == 0 {
		t.Fatal("no demand committed")
	}
}
