package pattern

import (
	"math"
	"math/rand"
	"testing"

	"fastgr/internal/design"
	"fastgr/internal/geom"
	"fastgr/internal/grid"
	"fastgr/internal/route"
	"fastgr/internal/stt"
)

func testGrid(t *testing.T, layers int) *grid.Graph {
	t.Helper()
	caps := make([]int, layers)
	caps[0] = 1
	for i := 1; i < layers; i++ {
		caps[i] = 10
	}
	d := &design.Design{
		Name: "p", GridW: 24, GridH: 24, NumLayers: layers,
		LayerCapacity: caps, ViaCapacity: 8,
		Nets: []*design.Net{netOf(geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 1})},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return grid.NewFromDesign(d)
}

func netOf(pts ...geom.Point) *design.Net {
	n := &design.Net{ID: 1, Name: "n"}
	for _, p := range pts {
		n.Pins = append(n.Pins, design.Pin{Pos: p, Layer: 1})
	}
	return n
}

// elementCost recomputes the route's cost element-by-element at the grid's
// current (unchanged) demand. Each DP term corresponds to exactly one
// emitted element, so this must equal Result.Cost.
func elementCost(g *grid.Graph, r *route.NetRoute) float64 {
	total := 0.0
	for _, p := range r.Paths {
		for _, s := range p.Segs {
			total += g.SegCost(s.Layer, s.A, s.B)
		}
		for _, v := range p.Vias {
			total += g.ViaStackCost(v.X, v.Y, v.L1, v.L2)
		}
	}
	return total
}

func solveAndCheck(t *testing.T, g *grid.Graph, net *design.Net, cfg Config) Result {
	t.Helper()
	tree := stt.Build(net)
	res := SolveCPU(g, tree, cfg)
	if res.Route == nil {
		t.Fatal("nil route")
	}
	if math.IsInf(res.Cost, 1) {
		t.Fatal("infinite cost")
	}
	if err := res.Route.Validate(g, route.PinTerminals(tree)); err != nil {
		t.Fatalf("route invalid: %v", err)
	}
	if ec := elementCost(g, res.Route); math.Abs(ec-res.Cost) > 1e-6 {
		t.Fatalf("element cost %v != DP cost %v", ec, res.Cost)
	}
	return res
}

func TestLShapeTwoPin(t *testing.T) {
	g := testGrid(t, 4)
	net := netOf(geom.Point{X: 2, Y: 3}, geom.Point{X: 9, Y: 8})
	res := solveAndCheck(t, g, net, Config{Mode: LShape})
	if res.Edges != 1 || res.HybridEdges != 0 {
		t.Fatalf("edges=%d hybrid=%d", res.Edges, res.HybridEdges)
	}
	// Wirelength of an L route equals the Manhattan distance.
	if wl := res.Route.Wirelength(g); wl != 12 {
		t.Fatalf("wirelength = %d, want 12", wl)
	}
}

// bruteForceTwoPin enumerates every L-shape solution of a two-pin net with
// both pins on layer 1, computing costs directly from the grid — an
// implementation completely independent of the DP.
func bruteForceTwoPin(g *grid.Graph, s, t geom.Point) float64 {
	best := math.Inf(1)
	L := g.L
	try := func(bend geom.Point, ls, lt int) {
		// Leg 1: s->bend on ls; leg 2: bend->t on lt.
		if s != bend {
			if segOrient(s, bend) != g.Dir(ls) {
				return
			}
		}
		if bend != t {
			if segOrient(bend, t) != g.Dir(lt) {
				return
			}
		}
		c := g.ViaStackCost(s.X, s.Y, 1, ls) + g.SegCost(ls, s, bend) +
			g.ViaStackCost(bend.X, bend.Y, ls, lt) + g.SegCost(lt, bend, t) +
			g.ViaStackCost(t.X, t.Y, lt, 1)
		if c < best {
			best = c
		}
	}
	for ls := 1; ls <= L; ls++ {
		for lt := 1; lt <= L; lt++ {
			try(geom.Point{X: t.X, Y: s.Y}, ls, lt)
			try(geom.Point{X: s.X, Y: t.Y}, ls, lt)
		}
	}
	return best
}

func TestLShapeMatchesBruteForce(t *testing.T) {
	g := testGrid(t, 4)
	rng := rand.New(rand.NewSource(7))
	// Add random congestion so costs are non-uniform.
	for i := 0; i < 120; i++ {
		l := 2 + rng.Intn(3)
		x, y := rng.Intn(20), rng.Intn(20)
		if g.HasWireEdge(l, x, y) {
			if g.Dir(l) == grid.Horizontal {
				g.AddSegDemand(l, geom.Point{X: x, Y: y}, geom.Point{X: x + 1, Y: y}, 1+rng.Intn(12))
			} else {
				g.AddSegDemand(l, geom.Point{X: x, Y: y}, geom.Point{X: x, Y: y + 1}, 1+rng.Intn(12))
			}
		}
	}
	for i := 0; i < 40; i++ {
		s := geom.Point{X: rng.Intn(20), Y: rng.Intn(20)}
		d := geom.Point{X: rng.Intn(20), Y: rng.Intn(20)}
		if s == d {
			continue
		}
		res := solveAndCheck(t, g, netOf(s, d), Config{Mode: LShape})
		want := bruteForceTwoPin(g, s, d)
		if math.Abs(res.Cost-want) > 1e-6 {
			t.Fatalf("net %v->%v: DP cost %v, brute force %v", s, d, res.Cost, want)
		}
	}
}

// bruteForceZ enumerates every hybrid (HVH and VHV over the full bbox)
// solution for a two-pin net with pins on layer 1.
func bruteForceZ(g *grid.Graph, s, t geom.Point) float64 {
	best := math.Inf(1)
	L := g.L
	try := func(bs, bt geom.Point, ls, lb, lt int) {
		legs := []struct {
			a, b geom.Point
			l    int
		}{{s, bs, ls}, {bs, bt, lb}, {bt, t, lt}}
		for _, leg := range legs {
			if leg.a != leg.b && segOrient(leg.a, leg.b) != g.Dir(leg.l) {
				return
			}
		}
		c := g.ViaStackCost(s.X, s.Y, 1, ls) + g.SegCost(ls, s, bs) +
			g.ViaStackCost(bs.X, bs.Y, ls, lb) + g.SegCost(lb, bs, bt) +
			g.ViaStackCost(bt.X, bt.Y, lb, lt) + g.SegCost(lt, bt, t) +
			g.ViaStackCost(t.X, t.Y, lt, 1)
		if c < best {
			best = c
		}
	}
	lox, hix := geom.Min(s.X, t.X), geom.Max(s.X, t.X)
	loy, hiy := geom.Min(s.Y, t.Y), geom.Max(s.Y, t.Y)
	for ls := 1; ls <= L; ls++ {
		for lb := 1; lb <= L; lb++ {
			for lt := 1; lt <= L; lt++ {
				for xi := lox; xi <= hix; xi++ {
					try(geom.Point{X: xi, Y: s.Y}, geom.Point{X: xi, Y: t.Y}, ls, lb, lt)
				}
				for yi := loy; yi <= hiy; yi++ {
					try(geom.Point{X: s.X, Y: yi}, geom.Point{X: t.X, Y: yi}, ls, lb, lt)
				}
			}
		}
	}
	return best
}

func TestHybridMatchesBruteForce(t *testing.T) {
	g := testGrid(t, 4)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 150; i++ {
		l := 2 + rng.Intn(3)
		x, y := rng.Intn(20), rng.Intn(20)
		if g.HasWireEdge(l, x, y) {
			if g.Dir(l) == grid.Horizontal {
				g.AddSegDemand(l, geom.Point{X: x, Y: y}, geom.Point{X: x + 1, Y: y}, 1+rng.Intn(14))
			} else {
				g.AddSegDemand(l, geom.Point{X: x, Y: y}, geom.Point{X: x, Y: y + 1}, 1+rng.Intn(14))
			}
		}
	}
	for i := 0; i < 25; i++ {
		s := geom.Point{X: rng.Intn(14), Y: rng.Intn(14)}
		d := geom.Point{X: rng.Intn(14), Y: rng.Intn(14)}
		if s == d {
			continue
		}
		res := solveAndCheck(t, g, netOf(s, d), Config{Mode: Hybrid})
		want := bruteForceZ(g, s, d)
		if math.Abs(res.Cost-want) > 1e-6 {
			t.Fatalf("net %v->%v: DP cost %v, brute force %v", s, d, res.Cost, want)
		}
	}
}

func TestHybridNeverWorseThanL(t *testing.T) {
	g := testGrid(t, 4)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 150; i++ {
		l := 2 + rng.Intn(3)
		x, y := rng.Intn(22), rng.Intn(22)
		if g.HasWireEdge(l, x, y) {
			if g.Dir(l) == grid.Horizontal {
				g.AddSegDemand(l, geom.Point{X: x, Y: y}, geom.Point{X: x + 1, Y: y}, rng.Intn(15))
			} else {
				g.AddSegDemand(l, geom.Point{X: x, Y: y}, geom.Point{X: x, Y: y + 1}, rng.Intn(15))
			}
		}
	}
	for i := 0; i < 30; i++ {
		pts := []geom.Point{
			{X: rng.Intn(20), Y: rng.Intn(20)},
			{X: rng.Intn(20), Y: rng.Intn(20)},
			{X: rng.Intn(20), Y: rng.Intn(20)},
		}
		if pts[0] == pts[1] || pts[1] == pts[2] || pts[0] == pts[2] {
			continue
		}
		net := netOf(pts...)
		lRes := solveAndCheck(t, g, net, Config{Mode: LShape})
		hRes := solveAndCheck(t, g, net, Config{Mode: Hybrid})
		if hRes.Cost > lRes.Cost+1e-9 {
			t.Fatalf("hybrid cost %v worse than L %v for %v", hRes.Cost, lRes.Cost, pts)
		}
	}
}

func TestStraightNets(t *testing.T) {
	g := testGrid(t, 4)
	for _, mode := range []Mode{LShape, ZShape, Hybrid} {
		// Horizontal straight net.
		res := solveAndCheck(t, g, netOf(geom.Point{X: 2, Y: 5}, geom.Point{X: 9, Y: 5}),
			Config{Mode: mode})
		if wl := res.Route.Wirelength(g); wl != 7 {
			t.Fatalf("mode %v horizontal wl = %d, want 7", mode, wl)
		}
		// Vertical straight net.
		res = solveAndCheck(t, g, netOf(geom.Point{X: 5, Y: 2}, geom.Point{X: 5, Y: 9}),
			Config{Mode: mode})
		if wl := res.Route.Wirelength(g); wl != 7 {
			t.Fatalf("mode %v vertical wl = %d, want 7", mode, wl)
		}
	}
}

func TestAdjacentCellsNet(t *testing.T) {
	g := testGrid(t, 4)
	for _, mode := range []Mode{LShape, ZShape, Hybrid} {
		res := solveAndCheck(t, g, netOf(geom.Point{X: 3, Y: 3}, geom.Point{X: 4, Y: 4}),
			Config{Mode: mode})
		if wl := res.Route.Wirelength(g); wl != 2 {
			t.Fatalf("mode %v wl = %d, want 2", mode, wl)
		}
	}
}

func TestMultiPinNets(t *testing.T) {
	g := testGrid(t, 5)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(6)
		seen := map[geom.Point]bool{}
		var pts []geom.Point
		for len(pts) < n {
			p := geom.Point{X: rng.Intn(22), Y: rng.Intn(22)}
			if !seen[p] {
				seen[p] = true
				pts = append(pts, p)
			}
		}
		for _, mode := range []Mode{LShape, Hybrid} {
			res := solveAndCheck(t, g, netOf(pts...), Config{Mode: mode})
			if res.Edges < n-1 {
				t.Fatalf("mode %v: %d edges for %d pins", mode, res.Edges, n)
			}
		}
	}
}

func TestSelectionThresholds(t *testing.T) {
	g := testGrid(t, 4)
	cfg := Config{Mode: Hybrid, Selection: true, T1: 4, T2: 12}
	// HPWL 2: below T1 -> L-shape.
	res := solveAndCheck(t, g, netOf(geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 1}), cfg)
	if res.HybridEdges != 0 {
		t.Fatal("small net used hybrid kernel")
	}
	// HPWL 10: medium -> hybrid.
	res = solveAndCheck(t, g, netOf(geom.Point{X: 0, Y: 0}, geom.Point{X: 5, Y: 5}), cfg)
	if res.HybridEdges != 1 {
		t.Fatal("medium net did not use hybrid kernel")
	}
	// HPWL 30: above T2 -> L-shape again (tremendous nets excluded).
	res = solveAndCheck(t, g, netOf(geom.Point{X: 0, Y: 0}, geom.Point{X: 15, Y: 15}), cfg)
	if res.HybridEdges != 0 {
		t.Fatal("large net used hybrid kernel despite selection")
	}
}

func TestZShapeInteriorFallback(t *testing.T) {
	g := testGrid(t, 4)
	// A 1-wide bbox has no interior bend columns/rows: Z mode must fall
	// back to L and still route.
	res := solveAndCheck(t, g, netOf(geom.Point{X: 3, Y: 3}, geom.Point{X: 4, Y: 3}),
		Config{Mode: ZShape})
	if res.Route.Wirelength(g) != 1 {
		t.Fatalf("wl = %d", res.Route.Wirelength(g))
	}
}

func TestCongestionAvoidance(t *testing.T) {
	g := testGrid(t, 4)
	// Pins span a 2-D box; saturate the two boundary rows (the rows every
	// L-shape's horizontal leg must use) on all horizontal layers, leaving
	// interior rows free for a Z pattern.
	for _, l := range []int{1, 3} {
		for _, y := range []int{2, 8} {
			for x := 2; x < 10; x++ {
				g.AddSegDemand(l, geom.Point{X: x, Y: y}, geom.Point{X: x + 1, Y: y}, 25)
			}
		}
	}
	net := netOf(geom.Point{X: 2, Y: 2}, geom.Point{X: 10, Y: 8})
	lRes := solveAndCheck(t, g, net, Config{Mode: LShape})
	hRes := solveAndCheck(t, g, net, Config{Mode: Hybrid})
	// Z patterns can run the horizontal leg on an uncongested interior row;
	// L shapes cannot. Hybrid must be strictly cheaper.
	if hRes.Cost >= lRes.Cost-1e-6 {
		t.Fatalf("hybrid (%v) did not beat L (%v) around boundary congestion",
			hRes.Cost, lRes.Cost)
	}
	// And the winning geometry's long horizontal run must sit on an
	// interior row.
	for _, p := range hRes.Route.Paths {
		for _, s := range p.Segs {
			if s.A.Y == s.B.Y && geom.Abs(s.A.X-s.B.X) > 2 && (s.A.Y == 2 || s.A.Y == 8) {
				t.Fatalf("long horizontal run on congested row %d", s.A.Y)
			}
		}
	}
}

func TestOpsCountedAndDeterministic(t *testing.T) {
	g := testGrid(t, 4)
	net := netOf(geom.Point{X: 1, Y: 1}, geom.Point{X: 9, Y: 7}, geom.Point{X: 4, Y: 12})
	a := solveAndCheck(t, g, net, Config{Mode: Hybrid})
	b := solveAndCheck(t, g, net, Config{Mode: Hybrid})
	if a.Cost != b.Cost || a.Ops != b.Ops {
		t.Fatal("solver not deterministic")
	}
	if a.Ops.FlowOps == 0 || a.Ops.DownOps == 0 {
		t.Fatalf("ops not counted: %+v", a.Ops)
	}
	l := solveAndCheck(t, g, net, Config{Mode: LShape})
	if l.Ops.FlowOps >= a.Ops.FlowOps {
		t.Fatal("hybrid should cost more flow ops than L")
	}
}

func TestMinPlusVecMat(t *testing.T) {
	// L=2: out[j] = min_i w[i]+m[i][j].
	w := []float64{1, 5}
	m := []float64{10, 2, 1, 1} // rows: [10,2], [1,1]
	out, arg := MinPlusVecMat(w, m, 2)
	if out[0] != 6 || arg[0] != 1 {
		t.Fatalf("out[0]=%v arg=%d", out[0], arg[0])
	}
	if out[1] != 3 || arg[1] != 0 {
		t.Fatalf("out[1]=%v arg=%d", out[1], arg[1])
	}
	// Inf propagation.
	w2 := []float64{Inf, Inf}
	out, _ = MinPlusVecMat(w2, m, 2)
	if !math.IsInf(out[0], 1) || !math.IsInf(out[1], 1) {
		t.Fatal("Inf did not propagate")
	}
}

func TestMergeMin(t *testing.T) {
	val, cand := MergeMin([][]float64{{3, 9}, {5, 2}}, 2)
	if val[0] != 3 || cand[0] != 0 || val[1] != 2 || cand[1] != 1 {
		t.Fatalf("MergeMin wrong: %v %v", val, cand)
	}
	val, cand = MergeMin(nil, 2)
	if !math.IsInf(val[0], 1) || cand[0] != -1 {
		t.Fatal("empty merge wrong")
	}
}

func TestPinLayerAccess(t *testing.T) {
	g := testGrid(t, 5)
	// Pins on different layers: the route must include via stacks to them.
	net := &design.Net{ID: 3, Name: "n", Pins: []design.Pin{
		{Pos: geom.Point{X: 2, Y: 2}, Layer: 1},
		{Pos: geom.Point{X: 8, Y: 6}, Layer: 2},
	}}
	tree := stt.Build(net)
	res := SolveCPU(g, tree, Config{Mode: LShape})
	if err := res.Route.Validate(g, route.PinTerminals(tree)); err != nil {
		t.Fatalf("pins at mixed layers unreachable: %v", err)
	}
	if res.Route.ViaCount(g) == 0 {
		t.Fatal("expected vias to reach pin layers")
	}
}

func TestGeneratedDesignPatternRouting(t *testing.T) {
	d := design.MustGenerate("18test5m", 0.002)
	g := grid.NewFromDesign(d)
	for _, net := range d.Nets[:150] {
		tree := stt.Build(net)
		for _, cfg := range []Config{
			{Mode: LShape},
			{Mode: Hybrid, Selection: true, T1: 6, T2: 60},
		} {
			res := SolveCPU(g, tree, cfg)
			if err := res.Route.Validate(g, route.PinTerminals(tree)); err != nil {
				t.Fatalf("net %s mode %v: %v", net.Name, cfg.Mode, err)
			}
		}
	}
}

func TestModeString(t *testing.T) {
	if LShape.String() != "L" || ZShape.String() != "Z" || Hybrid.String() != "hybrid" {
		t.Fatal("Mode.String wrong")
	}
}
