package pattern

import (
	"fmt"

	"fastgr/internal/route"
)

// reconstruct walks the DP choices top-down from the root, emitting the
// winning geometry: at each node the chosen via-stack interval, then for
// each child the chosen edge pattern at its chosen connection layer.
func (s *solver) reconstruct(r *route.NetRoute, u int, la int) {
	pick := s.downPick[u][la-1]
	if pick.lo == 0 {
		panic(fmt.Sprintf("pattern: net %d node %d has no feasible down choice at layer %d",
			s.tree.NetID, u, la))
	}
	pos := s.tree.Nodes[u].Pos
	var p route.Path
	p.AddVia(pos.X, pos.Y, pick.lo, pick.hi)
	if len(p.Vias) > 0 {
		r.Paths = append(r.Paths, p)
	}
	for idx, c := range s.tree.Nodes[u].Children {
		lc := pick.childLayers[idx]
		ls := s.emitEdge(r, c, lc)
		s.reconstruct(r, c, ls)
	}
}

// emitEdge appends the geometry of the edge (child -> parent) delivered at
// target layer lt and returns the source layer the child subtree connects at.
func (s *solver) emitEdge(r *route.NetRoute, child, lt int) int {
	prog := s.edgeProg[child]
	choice := s.edgeChoice[child][lt-1]
	src, dst := prog.TP.Source(), prog.TP.Target()
	var p route.Path
	switch {
	case choice.Cand < 0:
		bend := prog.LFlow.Bends[choice.Ls-1]
		p.AddSeg(choice.Ls, src, bend)
		p.AddVia(bend.X, bend.Y, choice.Ls, lt)
		p.AddSeg(lt, bend, dst)
	case choice.Cand >= len(prog.ZFlows):
		f := &prog.SFlows[choice.Cand-len(prog.ZFlows)]
		p.AddSeg(choice.Ls, src, f.B1)
		p.AddVia(f.B1.X, f.B1.Y, choice.Ls, choice.Lb)
		p.AddSeg(choice.Lb, f.B1, f.B2)
		p.AddVia(f.B2.X, f.B2.Y, choice.Lb, choice.Lc)
		p.AddSeg(choice.Lc, f.B2, f.B3)
		p.AddVia(f.B3.X, f.B3.Y, choice.Lc, lt)
		p.AddSeg(lt, f.B3, dst)
	default:
		f := &prog.ZFlows[choice.Cand]
		p.AddSeg(choice.Ls, src, f.Bs)
		p.AddVia(f.Bs.X, f.Bs.Y, choice.Ls, choice.Lb)
		p.AddSeg(choice.Lb, f.Bs, f.Bt)
		p.AddVia(f.Bt.X, f.Bt.Y, choice.Lb, lt)
		p.AddSeg(lt, f.Bt, dst)
	}
	if len(p.Segs) > 0 || len(p.Vias) > 0 {
		r.Paths = append(r.Paths, p)
	}
	return choice.Ls
}
