package pattern

import (
	"fastgr/internal/geom"
	"fastgr/internal/route"
)

// Section IV-F argues the computation-graph-flow formulation "only needs
// additional merge cost when extending more bend points". This file
// implements that extension: 3-bend staircase patterns, evaluated as
// four-stage min-plus chains
//
//	out[lt] = min_{ls,lb,lc} W1[ls] + W2[ls][lb] + W3[lb][lc] + W4[lc][lt]
//
// over candidate bend triples. The Staircase mode's candidate set is the
// hybrid set (all M+N two-bend flows — boundary staircases degenerate into
// Z and L shapes) plus up to MaxStairCands sampled interior (xi, yj)
// staircase pairs, so its optimum never trails the hybrid kernel's.

// MaxStairCands bounds the interior staircase candidates per two-pin net;
// the sampling stride grows with the bounding box to respect it.
const MaxStairCands = 64

// SFlow is one candidate three-bend flow.
type SFlow struct {
	W1 []float64 // L, source leg (includes cbc)
	W2 []float64 // L*L, bend 1
	W3 []float64 // L*L, bend 2
	W4 []float64 // L*L, bend 3
	B1 geom.Point
	B2 geom.Point
	B3 geom.Point
}

// buildStairProgram assembles the staircase program: the full hybrid
// candidate set plus sampled interior staircases. Returns nil when the net
// is too small for any flow (caller falls back to L).
func (s *solver) buildStairProgram(tp route.TwoPin) *EdgeProgram {
	base := s.buildZProgram(tp)
	if base == nil {
		return nil
	}
	src, dst := tp.Source(), tp.Target()
	lox, hix := geom.Min(src.X, dst.X), geom.Max(src.X, dst.X)
	loy, hiy := geom.Min(src.Y, dst.Y), geom.Max(src.Y, dst.Y)
	m, n := hix-lox-1, hiy-loy-1 // interior coordinate counts
	if m > 0 && n > 0 {
		stride := 1
		for (m/stride+1)*(n/stride+1) > MaxStairCands {
			stride++
		}
		for xi := lox + 1; xi < hix; xi += stride {
			for yj := loy + 1; yj < hiy; yj += stride {
				// HVHV: s -(H)-> B1 -(V)-> B2 -(H)-> B3 -(V)-> t.
				b1 := geom.Point{X: xi, Y: src.Y}
				b2 := geom.Point{X: xi, Y: yj}
				b3 := geom.Point{X: dst.X, Y: yj}
				base.SFlows = append(base.SFlows, s.buildSFlow(tp, b1, b2, b3))
				// VHVH: s -(V)-> B1' -(H)-> B2' -(V)-> B3' -(H)-> t.
				b1v := geom.Point{X: src.X, Y: yj}
				b2v := geom.Point{X: xi, Y: yj}
				b3v := geom.Point{X: xi, Y: dst.Y}
				base.SFlows = append(base.SFlows, s.buildSFlow(tp, b1v, b2v, b3v))
			}
		}
	}
	return base
}

// buildSFlow assembles one staircase flow's weight chain.
func (s *solver) buildSFlow(tp route.TwoPin, b1, b2, b3 geom.Point) SFlow {
	L := s.L
	src, dst := tp.Source(), tp.Target()
	down := s.down[tp.Child]

	seg1 := s.segCostAllLayers(src, b1)
	seg2 := s.segCostAllLayers(b1, b2)
	seg3 := s.segCostAllLayers(b2, b3)
	seg4 := s.segCostAllLayers(b3, dst)

	f := SFlow{
		W1: make([]float64, L),
		W2: make([]float64, L*L),
		W3: make([]float64, L*L),
		W4: make([]float64, L*L),
		B1: b1, B2: b2, B3: b3,
	}
	for ls := 1; ls <= L; ls++ {
		f.W1[ls-1] = down[ls-1] + seg1[ls-1]
	}
	fill := func(w []float64, bend geom.Point, seg []float64) {
		for a := 1; a <= L; a++ {
			for b := 1; b <= L; b++ {
				s.ops.FlowOps++
				v := seg[b-1]
				if v < Inf {
					v += s.g.ViaStackCost(bend.X, bend.Y, a, b)
				}
				w[(a-1)*L+(b-1)] = v
			}
		}
	}
	fill(f.W2, b1, seg2)
	fill(f.W3, b2, seg3)
	fill(f.W4, b3, seg4)
	return f
}

// evalSFlow chains three min-plus stages and returns per-target-layer cost
// and the argmin (ls, lb, lc) triple.
func evalSFlow(f *SFlow, L int, ops *Ops) (out []float64, args [][3]int) {
	t1, a1 := MinPlusVecMat(f.W1, f.W2, L) // over ls -> per lb
	t2, a2 := MinPlusVecMat(t1, f.W3, L)   // over lb -> per lc
	out, a3 := MinPlusVecMat(t2, f.W4, L)  // over lc -> per lt
	ops.FlowOps += int64(3 * L * L)
	args = make([][3]int, L)
	for lt := 0; lt < L; lt++ {
		lc := a3[lt]
		lb := a2[lc]
		ls := a1[lb]
		args[lt] = [3]int{ls + 1, lb + 1, lc + 1}
	}
	return out, args
}
