package pattern

import (
	"math"
	"math/rand"
	"testing"

	"fastgr/internal/geom"
	"fastgr/internal/grid"
)

func congest(t *testing.T, g *grid.Graph, seed int64, n, amount int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		l := 2 + rng.Intn(g.L-1)
		x, y := rng.Intn(g.W-1), rng.Intn(g.H-1)
		if g.HasWireEdge(l, x, y) {
			if g.Dir(l) == grid.Horizontal {
				g.AddSegDemand(l, geom.Point{X: x, Y: y}, geom.Point{X: x + 1, Y: y}, rng.Intn(amount))
			} else {
				g.AddSegDemand(l, geom.Point{X: x, Y: y}, geom.Point{X: x, Y: y + 1}, rng.Intn(amount))
			}
		}
	}
}

func TestStaircaseNeverWorseThanHybrid(t *testing.T) {
	// The staircase candidate set contains every hybrid candidate, so its
	// optimum can only be equal or better — the dominance that makes it a
	// faithful "more bend points" extension.
	g := testGrid(t, 4)
	congest(t, g, 41, 200, 15)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 25; i++ {
		s := geom.Point{X: rng.Intn(20), Y: rng.Intn(20)}
		d := geom.Point{X: rng.Intn(20), Y: rng.Intn(20)}
		if s == d {
			continue
		}
		net := netOf(s, d)
		h := solveAndCheck(t, g, net, Config{Mode: Hybrid})
		st := solveAndCheck(t, g, net, Config{Mode: Staircase})
		if st.Cost > h.Cost+1e-9 {
			t.Fatalf("net %v->%v: staircase %v worse than hybrid %v", s, d, st.Cost, h.Cost)
		}
	}
}

func TestStaircaseBeatsHybridWhenOnlyStairFits(t *testing.T) {
	// Block every row a Z pattern's long horizontal runs could use except a
	// split corridor that requires two horizontal rows — only a 3-bend path
	// uses row A for the left half and row B for the right half.
	g := testGrid(t, 4)
	s := geom.Point{X: 2, Y: 2}
	d := geom.Point{X: 18, Y: 10}
	// A VHVH staircase runs V on column sx, H on a free row yj, V on a free
	// column xi, H on the target row ty. Leave free: row 5 for x in [2,13)
	// and the target row 10 for x in [13,18) — reachable only by bending at
	// (13, 5), which the interior sampling (stride 2 from lo+1) covers.
	// Every 2-bend (hybrid) path needs a single fully-free span and must pay
	// congestion somewhere.
	for _, l := range []int{1, 3} {
		for y := 2; y <= 10; y++ {
			for x := 2; x < 18; x++ {
				if (y == 5 && x < 13) || (y == 10 && x >= 13) {
					continue
				}
				g.AddSegDemand(l, geom.Point{X: x, Y: y}, geom.Point{X: x + 1, Y: y}, 25)
			}
		}
	}
	net := netOf(s, d)
	h := solveAndCheck(t, g, net, Config{Mode: Hybrid})
	st := solveAndCheck(t, g, net, Config{Mode: Staircase})
	if st.Cost >= h.Cost-1e-6 {
		t.Fatalf("staircase (%v) should strictly beat hybrid (%v) on the split corridor",
			st.Cost, h.Cost)
	}
}

func TestStaircaseBruteForceSmallBox(t *testing.T) {
	// On a box small enough that sampling keeps every interior pair, the
	// staircase DP must equal exhaustive enumeration over all 3-bend (and
	// simpler) paths.
	g := testGrid(t, 4)
	congest(t, g, 43, 120, 14)
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 12; i++ {
		s := geom.Point{X: 2 + rng.Intn(6), Y: 2 + rng.Intn(6)}
		d := geom.Point{X: s.X + 2 + rng.Intn(5), Y: s.Y + 2 + rng.Intn(5)}
		res := solveAndCheck(t, g, netOf(s, d), Config{Mode: Staircase})
		want := bruteForceStaircase(g, s, d)
		if math.Abs(res.Cost-want) > 1e-6 {
			t.Fatalf("net %v->%v: staircase DP %v, brute force %v", s, d, res.Cost, want)
		}
	}
}

// bruteForceStaircase enumerates all HVHV and VHVH 3-bend paths (which
// subsume the hybrid set at their degenerate coordinates) for pins on
// layer 1.
func bruteForceStaircase(g *grid.Graph, s, t geom.Point) float64 {
	best := math.Inf(1)
	L := g.L
	try := func(pts []geom.Point, layers []int) {
		c := g.ViaStackCost(s.X, s.Y, 1, layers[0])
		prev := s
		for i, bend := range pts {
			if prev != bend && segOrient(prev, bend) != g.Dir(layers[i]) {
				return
			}
			c += g.SegCost(layers[i], prev, bend)
			if i+1 < len(layers) {
				c += g.ViaStackCost(bend.X, bend.Y, layers[i], layers[i+1])
			}
			prev = bend
		}
		c += g.ViaStackCost(t.X, t.Y, layers[len(layers)-1], 1)
		if c < best {
			best = c
		}
	}
	lox, hix := geom.Min(s.X, t.X), geom.Max(s.X, t.X)
	loy, hiy := geom.Min(s.Y, t.Y), geom.Max(s.Y, t.Y)
	for l1 := 1; l1 <= L; l1++ {
		for l2 := 1; l2 <= L; l2++ {
			for l3 := 1; l3 <= L; l3++ {
				for l4 := 1; l4 <= L; l4++ {
					layers := []int{l1, l2, l3, l4}
					for xi := lox; xi <= hix; xi++ {
						for yj := loy; yj <= hiy; yj++ {
							// HVHV with bends at (xi,sy), (xi,yj), (tx,yj).
							try([]geom.Point{{X: xi, Y: s.Y}, {X: xi, Y: yj}, {X: t.X, Y: yj}, t}, layers)
							// VHVH with bends at (sx,yj), (xi,yj), (xi,ty).
							try([]geom.Point{{X: s.X, Y: yj}, {X: xi, Y: yj}, {X: xi, Y: t.Y}, t}, layers)
						}
					}
				}
			}
		}
	}
	return best
}

func TestStaircaseSelection(t *testing.T) {
	g := testGrid(t, 4)
	cfg := Config{Mode: Staircase, Selection: true, T1: 4, T2: 12}
	res := solveAndCheck(t, g, netOf(geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 1}), cfg)
	if res.HybridEdges != 0 {
		t.Fatal("small net used the staircase kernel despite selection")
	}
	res = solveAndCheck(t, g, netOf(geom.Point{X: 0, Y: 0}, geom.Point{X: 5, Y: 5}), cfg)
	if res.HybridEdges != 1 {
		t.Fatal("medium net did not use the staircase kernel")
	}
}

func TestStaircaseCandidateCap(t *testing.T) {
	// A huge bounding box must stay within the sampling budget: hybrid set
	// (M+N) plus at most ~4x MaxStairCands staircase flows (two orientations
	// per sampled pair, stride rounding).
	g := testGrid(t, 4)
	net := netOf(geom.Point{X: 0, Y: 0}, geom.Point{X: 23, Y: 23})
	res := solveAndCheck(t, g, net, Config{Mode: Staircase})
	if len(res.EdgeFlows) != 1 {
		t.Fatalf("edges = %d", len(res.EdgeFlows))
	}
	hybridSet := 24 + 24 // M + N
	if res.EdgeFlows[0] > hybridSet+4*MaxStairCands {
		t.Fatalf("candidate cap breached: %d flows", res.EdgeFlows[0])
	}
	if res.EdgeFlows[0] <= hybridSet {
		t.Fatal("no staircase candidates were added")
	}
}

func TestStaircaseModeString(t *testing.T) {
	if Staircase.String() != "staircase" {
		t.Fatal("Staircase.String wrong")
	}
}
