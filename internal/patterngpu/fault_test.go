package patterngpu

import (
	"reflect"
	"testing"

	"fastgr/internal/fault"
	"fastgr/internal/gpu"
	"fastgr/internal/obs"
	"fastgr/internal/pattern"
)

func faultCfg() pattern.Config {
	return pattern.Config{Mode: pattern.Hybrid, Selection: true, T1: 4, T2: 50}
}

func TestKernelFallbackBitIdenticalResults(t *testing.T) {
	g, trees := setup(t)
	ref := New(gpu.RTX3090(), faultCfg())
	refBr := ref.RouteBatch(g, trees)

	// Kernel site at probability 1: the (only) batch degrades to the CPU
	// path. Results and SeqOps must match the healthy kernel bit for bit;
	// only the modeled time changes currency.
	reg := obs.NewRegistry()
	r := New(gpu.RTX3090(), faultCfg())
	r.CPU = gpu.XeonGold6226R()
	r.Fault = fault.New(fault.Options{Seed: 1, Probs: map[string]float64{fault.SiteKernel: 1}},
		&obs.Observer{Metrics: reg})
	br := r.RouteBatch(g, trees)
	if !br.CPUFallback {
		t.Fatal("probability-1 kernel fault did not trigger the CPU fallback")
	}
	if !reflect.DeepEqual(br.Results, refBr.Results) {
		t.Fatal("CPU fallback results differ from the kernel's")
	}
	if br.SeqOps != refBr.SeqOps {
		t.Fatalf("fallback SeqOps = %d, kernel SeqOps = %d", br.SeqOps, refBr.SeqOps)
	}
	want := r.CPU.SequentialTime(br.SeqOps)
	if br.KernelTime != want {
		t.Fatalf("fallback KernelTime = %v, want modeled sequential %v", br.KernelTime, want)
	}
	s := reg.Snapshot()
	if inj, deg := s.Counters[obs.MFaultInjected], s.Counters[obs.MFaultDegraded]; inj != 1 || deg != 1 {
		t.Fatalf("kernel fault counters injected=%d degraded=%d, want 1/1", inj, deg)
	}
}

func TestSolveExhaustionDegradesWholeBatch(t *testing.T) {
	g, trees := setup(t)
	// A solve-site probability of 1 exhausts every net's retries; the
	// first collected WorkError fails the kernel → CPU fallback, and the
	// batch still returns correct results.
	r := New(gpu.RTX3090(), faultCfg())
	r.CPU = gpu.XeonGold6226R()
	r.Workers = 4
	reg := obs.NewRegistry()
	r.Fault = fault.New(fault.Options{Seed: 9, Probs: map[string]float64{fault.SiteSolve: 1}},
		&obs.Observer{Metrics: reg})
	br := r.RouteBatch(g, trees)
	if !br.CPUFallback {
		t.Fatal("solve exhaustion should degrade the batch")
	}
	refBr := New(gpu.RTX3090(), faultCfg()).RouteBatch(g, trees)
	if !reflect.DeepEqual(br.Results, refBr.Results) {
		t.Fatal("degraded batch results differ from the healthy kernel's")
	}
	s := reg.Snapshot()
	inj := s.Counters[obs.MFaultInjected]
	rec := s.Counters[obs.MFaultRecovered]
	deg := s.Counters[obs.MFaultDegraded]
	if inj != rec+deg {
		t.Fatalf("accounting equation violated: injected=%d recovered=%d degraded=%d", inj, rec, deg)
	}
}

func TestKernelFallbackDeterministicAcrossWorkers(t *testing.T) {
	g, trees := setup(t)
	run := func(workers int) BatchResult {
		r := New(gpu.RTX3090(), faultCfg())
		r.CPU = gpu.XeonGold6226R()
		r.Workers = workers
		r.Fault = fault.New(fault.Options{Seed: 4, Probs: map[string]float64{
			fault.SiteSolve:  0.05,
			fault.SiteKernel: 0.5,
		}}, nil)
		return r.RouteBatch(g, trees)
	}
	ref := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("faulted batch at %d workers differs from 1 worker (fallback=%v vs %v)",
				w, got.CPUFallback, ref.CPUFallback)
		}
	}
}

func TestArmedZeroProbabilityMatchesUncontained(t *testing.T) {
	g, trees := setup(t)
	plain := New(gpu.RTX3090(), faultCfg())
	plain.Workers = 4
	ref := plain.RouteBatch(g, trees)

	armed := New(gpu.RTX3090(), faultCfg())
	armed.Workers = 4
	armed.Fault = fault.New(fault.Options{Seed: 77, Probs: fault.UniformProbs(0)}, nil)
	got := armed.RouteBatch(g, trees)
	if got.CPUFallback {
		t.Fatal("zero-probability injection triggered a fallback")
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("armed-but-silent containment changed the batch result")
	}
}
