// Package patterngpu is the GPU-friendly pattern routing framework of
// Fig. 7: each Algorithm-1 batch of conflict-free multi-pin nets becomes one
// kernel invocation; inside the kernel every net maps to its own thread
// block, whose lanes evaluate the net's computation-graph flows (all L×L —
// or (M+N)×L×L×L — layer combinations at once).
//
// Functionally the flows are evaluated with the exact same code the CPU
// baseline uses (pattern.EvalProgramSeq), so GPU-routed nets are
// bit-identical to CPU-routed nets; what this package adds is the workload
// accounting that drives the simulated device's clock — see package gpu for
// the substitution argument.
package patterngpu

import (
	"math/bits"
	"time"

	"fastgr/internal/fault"
	"fastgr/internal/gpu"
	"fastgr/internal/grid"
	"fastgr/internal/obs"
	"fastgr/internal/par"
	"fastgr/internal/pattern"
	"fastgr/internal/stt"
)

// Router routes batches of nets on a simulated device.
type Router struct {
	Dev *gpu.Device
	Cfg pattern.Config
	// Workers is the number of host goroutines solving a batch's nets
	// concurrently (<= 1 means sequential). A batch is conflict-free and the
	// grid is read-only while it is being solved, so each net's flow
	// evaluation is independent; results, per-net work counters and the
	// simulated kernel time are bit-identical for every worker count.
	Workers int
	// Obs, when non-nil, records per-batch kernel spans, the simulated
	// kernel-time histogram and the per-shape kernel selection counters.
	// Observation is per batch, never per net, so the disabled-mode cost
	// of RouteBatch is a handful of nil checks; RouteBatchBaseline below
	// is the frozen uninstrumented twin that proves it.
	Obs *obs.Observer
	// Fault, when armed, contains per-net solve panics (retried) and
	// whole-kernel failures: a batch whose kernel fails degrades to the
	// CPU baseline path (sequential SolveCPU + CPUModel time) instead of
	// crashing. nil is the uncontained PR 4 behavior.
	Fault *fault.Containment
	// CPU supplies the modeled sequential time a degraded batch reports;
	// only read on the fallback path.
	CPU gpu.CPUModel

	// batches counts RouteBatch calls: the batch ordinal is the kernel
	// site's injection unit, a worker-count-invariant identity.
	batches int
}

// New builds a Router with the given device spec and pattern configuration.
func New(spec gpu.Spec, cfg pattern.Config) *Router {
	return &Router{Dev: gpu.New(spec), Cfg: cfg}
}

// SetBatchBase offsets the batch-ordinal counter. Sharded routing runs one
// Router per leaf region; giving each a disjoint ordinal space keeps the
// kernel site's injection units distinct across leaves and invariant in the
// shard count (the leaf index, not the execution grouping, picks the base).
func (r *Router) SetBatchBase(b int) { r.batches = b }

// BatchResult is the outcome of one kernel (one batch).
type BatchResult struct {
	Results []pattern.Result
	// KernelTime is the simulated device time of this batch's kernel.
	KernelTime time.Duration
	// SeqOps is the total DP work, the currency for the sequential-CPU
	// comparison (Table VIII's 9.324x).
	SeqOps int64
	// CPUFallback marks a batch whose kernel failed and was re-solved on
	// the CPU baseline path: Results and SeqOps are bit-identical to the
	// kernel's (same flow evaluation code), only KernelTime degrades to
	// the modeled sequential CPU time.
	CPUFallback bool
}

// RouteBatch routes one conflict-free batch of nets as a single kernel. The
// grid is only read; the caller commits the returned routes (the batch is
// conflict-free, so intra-batch ordering cannot change results).
func (r *Router) RouteBatch(g *grid.Graph, trees []*stt.Tree) BatchResult {
	ord := r.batches
	r.batches++
	sp := r.Obs.T().StartSpan("gpu.batch", obs.Coordinator)
	var br BatchResult
	if r.Fault.Enabled() {
		err := r.Fault.RunOnce(fault.SiteKernel, ord, obs.Coordinator, func() error {
			var solveErr error
			br, solveErr = r.routeBatchContained(g, trees)
			return solveErr
		})
		if err != nil {
			// Kernel failed (injected, panicked, or a net's solve exhausted
			// containment): degrade the whole batch to the CPU baseline.
			br = r.routeBatchCPU(g, trees)
		}
	} else {
		br = r.routeBatch(g, trees)
	}
	sp.End()
	if m := r.Obs.M(); m != nil {
		m.Histogram(obs.MKernelNs, obs.DurationBuckets).Observe(br.KernelTime.Nanoseconds())
		var hybrid, total int64
		for _, res := range br.Results {
			hybrid += int64(res.HybridEdges)
			total += int64(res.Edges)
		}
		m.Counter(obs.MPatternHybrid).Add(hybrid)
		m.Counter(obs.MPatternLShape).Add(total - hybrid)
	}
	return br
}

// RouteBatchBaseline is the frozen, uninstrumented twin of RouteBatch —
// the reference side of the observability overhead guard (cmd/benchgen
// -obs), which fails tier-1 if instrumented-but-disabled RouteBatch ever
// drifts more than 2% from it. It must stay bit-identical in results and
// kernel time (TestRouteBatchBaselineIdentical enforces that); it is not
// meant for production callers.
func (r *Router) RouteBatchBaseline(g *grid.Graph, trees []*stt.Tree) BatchResult {
	return r.routeBatch(g, trees)
}

func (r *Router) routeBatch(g *grid.Graph, trees []*stt.Tree) BatchResult {
	// Materialize the cost field before fanning out: batch entry is a
	// single-threaded coordinator point, the only kind of place cache
	// writes are allowed; the solve phase below then reads it lock-free.
	// Shared by both RouteBatch and RouteBatchBaseline, so the overhead
	// guard comparison stays like-for-like.
	g.WarmCostCache()
	br := BatchResult{Results: make([]pattern.Result, len(trees))}
	blocks := make([]gpu.Block, len(trees))

	// Solve phase: every net writes only its own slot, so the batch can fan
	// out over host workers; the device accounting below stays sequential
	// (the simulated clock is shared state) and sums per-net numbers in
	// batch order, keeping the kernel time independent of the worker count.
	par.For(r.Workers, len(trees), func(_, i int) {
		rec := &recorder{}
		res := pattern.Solve(g, trees[i], r.Cfg, rec)
		br.Results[i] = res
		blocks[i] = gpu.Block{Ops: res.Ops.Total() + rec.evalOps, Span: blockSpan(g.L, res)}
	})

	var bytesIn, bytesOut int64
	for i, res := range br.Results {
		br.SeqOps += blocks[i].Ops
		bytesIn += flowBytes(g.L, res)
		bytesOut += int64(len(res.EdgeFlows)) * int64(g.L) * 8
	}
	br.KernelTime = r.Dev.LaunchKernel(blocks, bytesIn, bytesOut)
	return br
}

// routeBatchContained is routeBatch with the solve fan-out running under
// the fault layer: a panicking or injection-hit net is retried on its
// own, and a net that exhausts containment fails the whole kernel (the
// caller then degrades the batch to the CPU path). The net's batch-local
// index is the injection unit — stable across worker counts.
func (r *Router) routeBatchContained(g *grid.Graph, trees []*stt.Tree) (BatchResult, error) {
	g.WarmCostCache()
	br := BatchResult{Results: make([]pattern.Result, len(trees))}
	blocks := make([]gpu.Block, len(trees))

	p := par.NewPool(r.Workers)
	p.SetFault(r.Fault)
	errs := p.ForUnits(fault.SiteSolve, len(trees), func(_, i int) error {
		rec := &recorder{}
		res := pattern.Solve(g, trees[i], r.Cfg, rec)
		br.Results[i] = res
		blocks[i] = gpu.Block{Ops: res.Ops.Total() + rec.evalOps, Span: blockSpan(g.L, res)}
		return nil
	})
	if len(errs) > 0 {
		return BatchResult{}, errs[0]
	}

	var bytesIn, bytesOut int64
	for i, res := range br.Results {
		br.SeqOps += blocks[i].Ops
		bytesIn += flowBytes(g.L, res)
		bytesOut += int64(len(res.EdgeFlows)) * int64(g.L) * 8
	}
	br.KernelTime = r.Dev.LaunchKernel(blocks, bytesIn, bytesOut)
	return br, nil
}

// routeBatchCPU is the graceful-degradation path: the same per-net flow
// evaluation the kernel runs, executed sequentially on the host, so
// Results and SeqOps stay bit-identical to the kernel's; only the batch
// is billed at the modeled sequential CPU time instead of the device
// time.
func (r *Router) routeBatchCPU(g *grid.Graph, trees []*stt.Tree) BatchResult {
	g.WarmCostCache()
	br := BatchResult{Results: make([]pattern.Result, len(trees)), CPUFallback: true}
	for i, tree := range trees {
		rec := &recorder{}
		res := pattern.Solve(g, tree, r.Cfg, rec)
		br.Results[i] = res
		br.SeqOps += res.Ops.Total() + rec.evalOps
	}
	br.KernelTime = r.CPU.SequentialTime(br.SeqOps)
	return br
}

// blockSpan models the block's dependency chain: the net's two-pin edges
// run sequentially in DFS order; each edge contributes its min-plus stage
// depth (L per vector-matrix stage, doubled for two-stage Z flows) plus a
// log-depth merge over its candidate flows, and each tree node contributes
// an L-deep bottom-children reduction (the interval scan parallelizes over
// lanes; only the prefix-min depth is serial).
func blockSpan(L int, res pattern.Result) int64 {
	span := int64(0)
	for i, flows := range res.EdgeFlows {
		stages := int64(1)
		if res.EdgeHybrid[i] {
			stages = 2
		}
		span += stages*int64(L) + int64(bits.Len(uint(flows)))
	}
	span += int64(len(res.EdgeFlows)+1) * int64(L)
	return span
}

// flowBytes estimates the host->device bytes of a net's flow weights
// (float64 W1/W2/W3 entries).
func flowBytes(L int, res pattern.Result) int64 {
	var b int64
	for i, flows := range res.EdgeFlows {
		if res.EdgeHybrid[i] {
			b += int64(flows) * int64(L+2*L*L) * 8
		} else {
			b += int64(L+L*L) * 8
		}
	}
	return b
}

// recorder evaluates flows functionally while accounting device work.
type recorder struct {
	ops     pattern.Ops
	evalOps int64
}

func (r *recorder) EvalProgram(p *pattern.EdgeProgram) ([]float64, []pattern.Choice) {
	before := r.ops.FlowOps
	val, ch := pattern.EvalProgramSeq(p, &r.ops)
	r.evalOps += r.ops.FlowOps - before
	return val, ch
}
