package patterngpu

import (
	"math"
	"testing"
	"time"

	"fastgr/internal/design"
	"fastgr/internal/gpu"
	"fastgr/internal/grid"
	"fastgr/internal/obs"
	"fastgr/internal/pattern"
	"fastgr/internal/route"
	"fastgr/internal/stt"
)

func setup(t *testing.T) (*grid.Graph, []*stt.Tree) {
	t.Helper()
	d := design.MustGenerate("18test5m", 0.002)
	g := grid.NewFromDesign(d)
	trees := make([]*stt.Tree, 0, 120)
	for _, n := range d.Nets[:120] {
		trees = append(trees, stt.Build(n))
	}
	return g, trees
}

func TestGPUResultsMatchCPU(t *testing.T) {
	g, trees := setup(t)
	for _, cfg := range []pattern.Config{
		{Mode: pattern.LShape},
		{Mode: pattern.Hybrid, Selection: true, T1: 4, T2: 50},
	} {
		r := New(gpu.RTX3090(), cfg)
		br := r.RouteBatch(g, trees)
		if len(br.Results) != len(trees) {
			t.Fatalf("got %d results for %d trees", len(br.Results), len(trees))
		}
		for i, tree := range trees {
			cpuRes := pattern.SolveCPU(g, tree, cfg)
			gpuRes := br.Results[i]
			if math.Abs(cpuRes.Cost-gpuRes.Cost) > 1e-9 {
				t.Fatalf("net %d mode %v: CPU cost %v, GPU cost %v",
					tree.NetID, cfg.Mode, cpuRes.Cost, gpuRes.Cost)
			}
			if gpuRes.Route.Wirelength(g) != cpuRes.Route.Wirelength(g) {
				t.Fatalf("net %d: wirelength differs between backends", tree.NetID)
			}
			if err := gpuRes.Route.Validate(g, route.PinTerminals(tree)); err != nil {
				t.Fatalf("net %d: %v", tree.NetID, err)
			}
		}
	}
}

func TestKernelTimeAdvancesClock(t *testing.T) {
	g, trees := setup(t)
	r := New(gpu.RTX3090(), pattern.Config{Mode: pattern.LShape})
	br := r.RouteBatch(g, trees)
	if br.KernelTime <= 0 {
		t.Fatal("kernel time not positive")
	}
	if r.Dev.SimTime() != br.KernelTime {
		t.Fatalf("device clock %v != kernel time %v", r.Dev.SimTime(), br.KernelTime)
	}
	st := r.Dev.Stats()
	if st.Kernels != 1 || st.Blocks != int64(len(trees)) {
		t.Fatalf("stats: %+v", st)
	}
	if st.Ops == 0 || st.BytesMoved == 0 {
		t.Fatal("ops/bytes not accounted")
	}
	if br.SeqOps != st.Ops {
		t.Fatalf("SeqOps %d != device ops %d", br.SeqOps, st.Ops)
	}
}

func TestGPUFasterThanModeledSequentialCPU(t *testing.T) {
	// The headline property behind Table VIII: batched block-parallel
	// execution beats one core doing the same ops sequentially.
	g, trees := setup(t)
	r := New(gpu.RTX3090(), pattern.Config{Mode: pattern.LShape})
	br := r.RouteBatch(g, trees)
	cpuTime := gpu.XeonGold6226R().SequentialTime(br.SeqOps)
	if br.KernelTime >= cpuTime {
		t.Fatalf("GPU kernel (%v) not faster than sequential CPU (%v)", br.KernelTime, cpuTime)
	}
	speedup := float64(cpuTime) / float64(br.KernelTime)
	if speedup < 1.5 || speedup > 500 {
		t.Fatalf("speedup %.1fx outside plausible band", speedup)
	}
}

func TestHybridKernelSlowerThanL(t *testing.T) {
	// The hybrid kernel evaluates (M+N)xLxLxL combinations vs LxL — its
	// kernels must be slower, mirroring 9.324x vs 2.070x in Table VIII.
	g, trees := setup(t)
	rl := New(gpu.RTX3090(), pattern.Config{Mode: pattern.LShape})
	lt := rl.RouteBatch(g, trees).KernelTime
	rh := New(gpu.RTX3090(), pattern.Config{Mode: pattern.Hybrid})
	ht := rh.RouteBatch(g, trees).KernelTime
	if ht <= lt {
		t.Fatalf("hybrid kernel (%v) not slower than L kernel (%v)", ht, lt)
	}
}

func TestSelectionReducesHybridKernelTime(t *testing.T) {
	g, trees := setup(t)
	full := New(gpu.RTX3090(), pattern.Config{Mode: pattern.Hybrid})
	ft := full.RouteBatch(g, trees).KernelTime
	sel := New(gpu.RTX3090(), pattern.Config{Mode: pattern.Hybrid, Selection: true, T1: 4, T2: 30})
	st := sel.RouteBatch(g, trees).KernelTime
	if st >= ft {
		t.Fatalf("selection (%v) did not speed up hybrid kernel (%v)", st, ft)
	}
}

func TestEmptyBatch(t *testing.T) {
	g, _ := setup(t)
	r := New(gpu.RTX3090(), pattern.Config{Mode: pattern.LShape})
	br := r.RouteBatch(g, nil)
	if len(br.Results) != 0 {
		t.Fatal("results for empty batch")
	}
	if br.KernelTime <= 0 {
		t.Fatal("even an empty kernel pays launch overhead")
	}
}

func TestBlockSpanScalesWithEdges(t *testing.T) {
	small := pattern.Result{EdgeFlows: []int{1}, EdgeHybrid: []bool{false}}
	big := pattern.Result{
		EdgeFlows:  []int{1, 8, 8, 1},
		EdgeHybrid: []bool{false, true, true, false},
	}
	if blockSpan(9, big) <= blockSpan(9, small) {
		t.Fatal("span not monotone in edge count")
	}
}

func TestDeterministicKernelTiming(t *testing.T) {
	g, trees := setup(t)
	mk := func() time.Duration {
		r := New(gpu.RTX3090(), pattern.Config{Mode: pattern.Hybrid, Selection: true, T1: 4, T2: 40})
		return r.RouteBatch(g, trees).KernelTime
	}
	if mk() != mk() {
		t.Fatal("kernel timing not deterministic")
	}
}

// TestRouteBatchBaselineIdentical enforces the frozen-twin contract of
// the observability overhead guard: RouteBatch with a nil observer, an
// attached observer, and RouteBatchBaseline must produce bit-identical
// results, work counters and simulated kernel times.
func TestRouteBatchBaselineIdentical(t *testing.T) {
	g, trees := setup(t)
	cfg := pattern.Config{Mode: pattern.Hybrid, Selection: true, T1: 4, T2: 50}

	base := New(gpu.RTX3090(), cfg).RouteBatchBaseline(g, trees)
	off := New(gpu.RTX3090(), cfg).RouteBatch(g, trees)
	onR := New(gpu.RTX3090(), cfg)
	onR.Obs = &obs.Observer{Tracer: obs.NewTracer(1<<10, 1), Metrics: obs.NewRegistry()}
	on := onR.RouteBatch(g, trees)

	for name, br := range map[string]BatchResult{"disabled": off, "enabled": on} {
		if br.KernelTime != base.KernelTime || br.SeqOps != base.SeqOps {
			t.Fatalf("%s: kernel accounting diverged from baseline: %v/%d vs %v/%d",
				name, br.KernelTime, br.SeqOps, base.KernelTime, base.SeqOps)
		}
		for i := range trees {
			if br.Results[i].Cost != base.Results[i].Cost {
				t.Fatalf("%s: net %d cost diverged from baseline", name, i)
			}
		}
	}
}

// TestRouteBatchObservation checks the per-batch metrics: the kernel
// histogram sees the batch and the per-shape selection counters add up
// to the routed two-pin nets.
func TestRouteBatchObservation(t *testing.T) {
	g, trees := setup(t)
	r := New(gpu.RTX3090(), pattern.Config{Mode: pattern.Hybrid, Selection: true, T1: 4, T2: 50})
	r.Obs = &obs.Observer{Metrics: obs.NewRegistry()}
	br := r.RouteBatch(g, trees)

	var hybrid, total int64
	for _, res := range br.Results {
		hybrid += int64(res.HybridEdges)
		total += int64(res.Edges)
	}
	s := r.Obs.Metrics.Snapshot()
	if got := s.Counters[obs.MPatternHybrid]; got != hybrid {
		t.Errorf("hybrid counter = %d, want %d", got, hybrid)
	}
	if got := s.Counters[obs.MPatternLShape]; got != total-hybrid {
		t.Errorf("lshape counter = %d, want %d", got, total-hybrid)
	}
	if h := s.Histograms[obs.MKernelNs]; h.Count != 1 {
		t.Errorf("kernel histogram count = %d, want 1", h.Count)
	}
}
