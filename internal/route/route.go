// Package route defines the routed-net representation shared by pattern and
// maze routing — wire segments on layers plus via stacks — along with the
// multi-pin → two-pin decomposition and the DFS intra-net ordering of
// Section II-D, demand commit/uncommit against the grid, and connectivity
// validation.
package route

import (
	"fmt"

	"fastgr/internal/geom"
	"fastgr/internal/grid"
	"fastgr/internal/stt"
)

// TwoPin is one two-pin net obtained from a Steiner tree edge, routed from
// the child node (the paper's source Ps) to the parent node (target Pt).
type TwoPin struct {
	Tree          *stt.Tree
	Child, Parent int // node ids in Tree
}

// Source returns the child endpoint position.
func (tp TwoPin) Source() geom.Point { return tp.Tree.Nodes[tp.Child].Pos }

// Target returns the parent endpoint position.
func (tp TwoPin) Target() geom.Point { return tp.Tree.Nodes[tp.Parent].Pos }

// BBox returns the two-pin net's bounding box.
func (tp TwoPin) BBox() geom.Rect { return geom.NewRect(tp.Source(), tp.Target()) }

// HPWL is the half-perimeter (here: Manhattan) length of the two-pin net,
// the measure the selection technique thresholds on.
func (tp TwoPin) HPWL() int { return geom.ManhattanDist(tp.Source(), tp.Target()) }

// Decompose breaks a Steiner tree into two-pin nets in intra-net execution
// order: the reverse of a DFS preorder from the root (Fig. 4), so every
// node's edge appears after the edges of all its descendants — exactly the
// bottom-up order the dynamic program requires.
func Decompose(t *stt.Tree) []TwoPin {
	pre := make([]int, 0, len(t.Nodes))
	stack := []int{t.Root}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		pre = append(pre, u)
		// Push children in reverse so DFS visits them in declared order.
		cs := t.Nodes[u].Children
		for i := len(cs) - 1; i >= 0; i-- {
			stack = append(stack, cs[i])
		}
	}
	out := make([]TwoPin, 0, len(pre)-1)
	for i := len(pre) - 1; i >= 0; i-- {
		u := pre[i]
		if p := t.Nodes[u].Parent; p >= 0 {
			out = append(out, TwoPin{Tree: t, Child: u, Parent: p})
		}
	}
	return out
}

// Seg is a straight wire on one layer between two aligned points.
type Seg struct {
	Layer int
	A, B  geom.Point
}

// Via is a via stack at one G-cell spanning layers [L1, L2] (normalized).
type Via struct {
	X, Y   int
	L1, L2 int
}

// Path is the routed geometry of one two-pin net (or one maze connection).
type Path struct {
	Segs []Seg
	Vias []Via
}

// AddSeg appends a wire segment, skipping zero-length ones.
func (p *Path) AddSeg(layer int, a, b geom.Point) {
	if a == b {
		return
	}
	p.Segs = append(p.Segs, Seg{Layer: layer, A: a, B: b})
}

// AddVia appends a via stack, skipping empty ones and normalizing layer order.
func (p *Path) AddVia(x, y, l1, l2 int) {
	if l1 == l2 {
		return
	}
	if l1 > l2 {
		l1, l2 = l2, l1
	}
	p.Vias = append(p.Vias, Via{X: x, Y: y, L1: l1, L2: l2})
}

// NetRoute is the complete routed geometry of one multi-pin net. Demand is
// committed per distinct grid edge: segments of different tree edges that
// overlap (common near Steiner points) count once, matching how a real
// router's net occupies tracks.
type NetRoute struct {
	NetID int
	Paths []Path

	// committed caches the canonical edge sets at commit time so Uncommit
	// releases exactly what Commit acquired even if Paths changed since.
	committedWires []wireKey
	committedVias  []viaKey
}

type wireKey struct{ layer, x, y int }
type viaKey struct{ x, y, l int }

// canonical flattens Paths into distinct wire-edge and via-edge sets.
// The slices are built in first-insertion order — a pure function of
// Paths — rather than by ranging over the dedup maps, so the canonical
// edge lists are deterministic (detmap).
func (r *NetRoute) canonical(g *grid.Graph) ([]wireKey, []viaKey) {
	wires := make(map[wireKey]struct{})
	vias := make(map[viaKey]struct{})
	var wk []wireKey
	var vk []viaKey
	addWire := func(k wireKey) {
		if _, dup := wires[k]; !dup {
			wires[k] = struct{}{}
			wk = append(wk, k)
		}
	}
	for _, p := range r.Paths {
		for _, s := range p.Segs {
			if g.Dir(s.Layer) == grid.Horizontal {
				if s.A.Y != s.B.Y {
					panic(fmt.Sprintf("route: seg %v-%v misaligned on H layer %d", s.A, s.B, s.Layer))
				}
				lo, hi := geom.Min(s.A.X, s.B.X), geom.Max(s.A.X, s.B.X)
				for x := lo; x < hi; x++ {
					addWire(wireKey{s.Layer, x, s.A.Y})
				}
			} else {
				if s.A.X != s.B.X {
					panic(fmt.Sprintf("route: seg %v-%v misaligned on V layer %d", s.A, s.B, s.Layer))
				}
				lo, hi := geom.Min(s.A.Y, s.B.Y), geom.Max(s.A.Y, s.B.Y)
				for y := lo; y < hi; y++ {
					addWire(wireKey{s.Layer, s.A.X, y})
				}
			}
		}
		for _, v := range p.Vias {
			for l := v.L1; l < v.L2; l++ {
				k := viaKey{v.X, v.Y, l}
				if _, dup := vias[k]; !dup {
					vias[k] = struct{}{}
					vk = append(vk, k)
				}
			}
		}
	}
	return wk, vk
}

// Committed reports whether the route currently holds grid demand.
func (r *NetRoute) Committed() bool { return r.committedWires != nil || r.committedVias != nil }

// Commit adds one unit of demand for every distinct wire and via edge the
// route uses. Committing an already-committed route panics: that is a
// rip-up/reroute bookkeeping bug.
func (r *NetRoute) Commit(g *grid.Graph) {
	if r.Committed() {
		panic(fmt.Sprintf("route: net %d committed twice", r.NetID))
	}
	wk, vk := r.canonical(g)
	for _, k := range wk {
		g.AddSegDemand(k.layer, geom.Point{X: k.x, Y: k.y}, stepEnd(g, k), 1)
	}
	for _, k := range vk {
		g.AddViaStackDemand(k.x, k.y, k.l, k.l+1, 1)
	}
	if wk == nil {
		wk = []wireKey{}
	}
	if vk == nil {
		vk = []viaKey{}
	}
	r.committedWires, r.committedVias = wk, vk
}

// Uncommit releases the demand acquired by Commit (rip-up).
func (r *NetRoute) Uncommit(g *grid.Graph) {
	if !r.Committed() {
		panic(fmt.Sprintf("route: net %d uncommitted while not committed", r.NetID))
	}
	for _, k := range r.committedWires {
		g.AddSegDemand(k.layer, geom.Point{X: k.x, Y: k.y}, stepEnd(g, k), -1)
	}
	for _, k := range r.committedVias {
		g.AddViaStackDemand(k.x, k.y, k.l, k.l+1, -1)
	}
	r.committedWires, r.committedVias = nil, nil
}

func stepEnd(g *grid.Graph, k wireKey) geom.Point {
	if g.Dir(k.layer) == grid.Horizontal {
		return geom.Point{X: k.x + 1, Y: k.y}
	}
	return geom.Point{X: k.x, Y: k.y + 1}
}

// HasOverflow reports whether any wire or via edge the route occupies is
// currently over capacity — the criterion that sends a net into the rip-up
// and reroute iterations.
func (r *NetRoute) HasOverflow(g *grid.Graph) bool {
	wk, vk := r.canonical(g)
	for _, k := range wk {
		if g.WireDem(k.layer, k.x, k.y) > g.WireCap(k.layer, k.x, k.y) {
			return true
		}
	}
	for _, k := range vk {
		if g.ViaDem(k.x, k.y, k.l) > g.ViaCap(k.l) {
			return true
		}
	}
	return false
}

// Cost evaluates the routed geometry element by element at the grid's
// current demand — the common currency for comparing routes across the
// pattern and maze routers (the cross-check suites sum it the same way).
func (r *NetRoute) Cost(g *grid.Graph) float64 {
	total := 0.0
	for _, p := range r.Paths {
		for _, s := range p.Segs {
			total += g.SegCost(s.Layer, s.A, s.B)
		}
		for _, v := range p.Vias {
			total += g.ViaStackCost(v.X, v.Y, v.L1, v.L2)
		}
	}
	return total
}

// Wirelength returns the number of distinct wire edges the route uses.
func (r *NetRoute) Wirelength(g *grid.Graph) int {
	wk, _ := r.canonical(g)
	return len(wk)
}

// ViaCount returns the number of distinct via edges the route uses.
func (r *NetRoute) ViaCount(g *grid.Graph) int {
	_, vk := r.canonical(g)
	return len(vk)
}

// Validate checks that the routed geometry is connected and reaches every
// pin of the net at its pin layer. pins is the list of (position, layer)
// terminals, e.g. from the design net.
func (r *NetRoute) Validate(g *grid.Graph, pins []geom.Point3) error {
	wk, vk := r.canonical(g)
	// Union-find over 3-D grid nodes touched by the route.
	id := make(map[geom.Point3]int)
	parent := []int{}
	find := func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	node := func(p geom.Point3) int {
		if i, ok := id[p]; ok {
			return i
		}
		i := len(parent)
		parent = append(parent, i)
		id[p] = i
		return i
	}
	for _, k := range wk {
		a := geom.Point3{X: k.x, Y: k.y, Layer: k.layer}
		var b geom.Point3
		if g.Dir(k.layer) == grid.Horizontal {
			b = geom.Point3{X: k.x + 1, Y: k.y, Layer: k.layer}
		} else {
			b = geom.Point3{X: k.x, Y: k.y + 1, Layer: k.layer}
		}
		union(node(a), node(b))
	}
	for _, k := range vk {
		a := geom.Point3{X: k.x, Y: k.y, Layer: k.l}
		b := geom.Point3{X: k.x, Y: k.y, Layer: k.l + 1}
		union(node(a), node(b))
	}
	if len(pins) == 0 {
		return nil
	}
	allSame := true
	for _, p := range pins[1:] {
		if p != pins[0] {
			allSame = false
			break
		}
	}
	if allSame {
		// A net whose pins coincide at one 3-D point is connected with no
		// geometry at all.
		return nil
	}
	first, ok := id[pins[0]]
	if !ok {
		return fmt.Errorf("route: pin %v not touched by route", pins[0])
	}
	for _, p := range pins[1:] {
		i, ok := id[p]
		if !ok {
			return fmt.Errorf("route: pin %v not touched by route", p)
		}
		if find(i) != find(first) {
			return fmt.Errorf("route: pin %v disconnected from pin %v", p, pins[0])
		}
	}
	return nil
}

// PinTerminals maps a Steiner tree's pin nodes to their 3-D terminals.
func PinTerminals(t *stt.Tree) []geom.Point3 {
	var pins []geom.Point3
	for i := range t.Nodes {
		for _, l := range t.Nodes[i].PinLayers {
			pins = append(pins, geom.Point3{X: t.Nodes[i].Pos.X, Y: t.Nodes[i].Pos.Y, Layer: l})
		}
	}
	return pins
}
