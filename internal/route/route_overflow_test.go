package route

import (
	"testing"

	"fastgr/internal/geom"
)

func TestHasOverflowWire(t *testing.T) {
	g := testGrid()
	r := &NetRoute{NetID: 1}
	var p Path
	p.AddSeg(3, geom.Point{X: 2, Y: 2}, geom.Point{X: 6, Y: 2})
	r.Paths = []Path{p}
	r.Commit(g)
	if r.HasOverflow(g) {
		t.Fatal("route on empty grid reports overflow")
	}
	// Saturate one edge the route uses (capacity 10).
	g.AddSegDemand(3, geom.Point{X: 3, Y: 2}, geom.Point{X: 4, Y: 2}, 10)
	if !r.HasOverflow(g) {
		t.Fatal("route through over-capacity edge not flagged")
	}
	// Saturate an edge the route does NOT use: still flagged only if its own
	// edges overflow.
	r.Uncommit(g)
	g.AddSegDemand(3, geom.Point{X: 3, Y: 2}, geom.Point{X: 4, Y: 2}, -10)
	g.AddSegDemand(3, geom.Point{X: 8, Y: 8}, geom.Point{X: 9, Y: 8}, 30)
	r.Commit(g)
	if r.HasOverflow(g) {
		t.Fatal("overflow on unrelated edge flagged")
	}
}

func TestHasOverflowVia(t *testing.T) {
	g := testGrid() // via capacity 8
	r := &NetRoute{NetID: 2}
	var p Path
	p.AddVia(5, 5, 1, 3)
	r.Paths = []Path{p}
	r.Commit(g)
	if r.HasOverflow(g) {
		t.Fatal("fresh via stack reports overflow")
	}
	for i := 0; i < 9; i++ {
		g.AddViaStackDemand(5, 5, 1, 2, 1)
	}
	if !r.HasOverflow(g) {
		t.Fatal("via overflow not flagged")
	}
}

func TestHasOverflowEmptyRoute(t *testing.T) {
	g := testGrid()
	r := &NetRoute{NetID: 3}
	if r.HasOverflow(g) {
		t.Fatal("empty route reports overflow")
	}
}
