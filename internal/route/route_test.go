package route

import (
	"testing"

	"fastgr/internal/design"
	"fastgr/internal/geom"
	"fastgr/internal/grid"
	"fastgr/internal/stt"
)

func testGrid() *grid.Graph {
	d := &design.Design{
		Name: "t", GridW: 16, GridH: 16, NumLayers: 4,
		LayerCapacity: []int{1, 10, 10, 10}, ViaCapacity: 8,
		Nets: []*design.Net{{ID: 0, Name: "n", Pins: []design.Pin{
			{Pos: geom.Point{X: 0, Y: 0}, Layer: 1},
			{Pos: geom.Point{X: 5, Y: 5}, Layer: 1},
		}}},
	}
	return grid.NewFromDesign(d)
}

func netOf(pts ...geom.Point) *design.Net {
	n := &design.Net{ID: 1, Name: "n"}
	for _, p := range pts {
		n.Pins = append(n.Pins, design.Pin{Pos: p, Layer: 1})
	}
	return n
}

func TestDecomposeOrderIsBottomUp(t *testing.T) {
	// Star: root (5,5) with pins around it -> every edge's child deeper than parent.
	net := netOf(geom.Point{X: 5, Y: 5}, geom.Point{X: 0, Y: 5}, geom.Point{X: 10, Y: 5},
		geom.Point{X: 5, Y: 0}, geom.Point{X: 5, Y: 10})
	tr := stt.Build(net)
	tps := Decompose(tr)
	if len(tps) != tr.NumEdges() {
		t.Fatalf("decomposed %d edges, tree has %d", len(tps), tr.NumEdges())
	}
	// Bottom-up: when edge (c->p) appears, all edges with parent c must
	// already have appeared.
	seenChild := map[int]bool{}
	childrenDone := func(node int) bool {
		for _, ch := range tr.Nodes[node].Children {
			if !seenChild[ch] {
				return false
			}
		}
		return true
	}
	for _, tp := range tps {
		if !childrenDone(tp.Child) {
			t.Fatalf("edge for node %d scheduled before its children", tp.Child)
		}
		seenChild[tp.Child] = true
	}
}

func TestDecomposeChainMatchesPaperExample(t *testing.T) {
	// A path P6-P5-P4-P3-P2-P1 rooted at P6 (Fig. 4): DFS preorder is
	// P6..P1, reverse order routes e1 (P1->P2) first.
	pts := []geom.Point{{X: 10, Y: 0}, {X: 8, Y: 0}, {X: 6, Y: 0}, {X: 4, Y: 0}, {X: 2, Y: 0}, {X: 0, Y: 0}}
	net := netOf(pts...) // first pin (root) = P6 at (10,0)
	tr := stt.Build(net)
	tps := Decompose(tr)
	if len(tps) != 5 {
		t.Fatalf("chain of 6 gives %d two-pin nets", len(tps))
	}
	// First routed edge must be the deepest (P1 at (0,0)).
	if tps[0].Source() != (geom.Point{X: 0, Y: 0}) {
		t.Fatalf("first routed edge starts at %v, want (0,0)", tps[0].Source())
	}
	// Last routed edge must target the root.
	last := tps[len(tps)-1]
	if last.Target() != (geom.Point{X: 10, Y: 0}) {
		t.Fatalf("last routed edge targets %v, want root (10,0)", last.Target())
	}
}

func TestTwoPinAccessors(t *testing.T) {
	net := netOf(geom.Point{X: 1, Y: 2}, geom.Point{X: 4, Y: 6})
	tr := stt.Build(net)
	tps := Decompose(tr)
	tp := tps[0]
	if tp.HPWL() != 7 {
		t.Fatalf("HPWL = %d, want 7", tp.HPWL())
	}
	bb := tp.BBox()
	if !bb.Contains(tp.Source()) || !bb.Contains(tp.Target()) {
		t.Fatal("bbox misses endpoints")
	}
}

func buildLRoute() *NetRoute {
	r := &NetRoute{NetID: 1}
	var p Path
	p.AddVia(0, 0, 1, 3)                                        // pin up to layer 3
	p.AddSeg(3, geom.Point{X: 0, Y: 0}, geom.Point{X: 5, Y: 0}) // horizontal on l3
	p.AddVia(5, 0, 2, 3)                                        // down to l2
	p.AddSeg(2, geom.Point{X: 5, Y: 0}, geom.Point{X: 5, Y: 5}) // vertical on l2
	p.AddVia(5, 5, 1, 2)                                        // down to pin layer
	r.Paths = append(r.Paths, p)
	return r
}

func TestCommitUncommitBalanced(t *testing.T) {
	g := testGrid()
	r := buildLRoute()
	r.Commit(g)
	wire, via := g.TotalDemand()
	if wire != 10 {
		t.Fatalf("wire demand = %d, want 10", wire)
	}
	if via != 4 {
		t.Fatalf("via demand = %d, want 4", via)
	}
	if !r.Committed() {
		t.Fatal("Committed() false after Commit")
	}
	r.Uncommit(g)
	wire, via = g.TotalDemand()
	if wire != 0 || via != 0 {
		t.Fatalf("demand after uncommit: %d,%d", wire, via)
	}
}

func TestDoubleCommitPanics(t *testing.T) {
	g := testGrid()
	r := buildLRoute()
	r.Commit(g)
	defer func() {
		if recover() == nil {
			t.Fatal("double commit did not panic")
		}
	}()
	r.Commit(g)
}

func TestUncommitWithoutCommitPanics(t *testing.T) {
	g := testGrid()
	r := buildLRoute()
	defer func() {
		if recover() == nil {
			t.Fatal("uncommit without commit did not panic")
		}
	}()
	r.Uncommit(g)
}

func TestOverlappingSegmentsCountOnce(t *testing.T) {
	g := testGrid()
	r := &NetRoute{NetID: 2}
	var p1, p2 Path
	p1.AddSeg(3, geom.Point{X: 0, Y: 0}, geom.Point{X: 6, Y: 0})
	p2.AddSeg(3, geom.Point{X: 3, Y: 0}, geom.Point{X: 9, Y: 0}) // overlaps [3,6)
	r.Paths = []Path{p1, p2}
	if got := r.Wirelength(g); got != 9 {
		t.Fatalf("Wirelength = %d, want 9 (dedup)", got)
	}
	r.Commit(g)
	wire, _ := g.TotalDemand()
	if wire != 9 {
		t.Fatalf("committed wire demand = %d, want 9", wire)
	}
	if g.WireDem(3, 4, 0) != 1 {
		t.Fatalf("overlap edge demand = %d, want 1", g.WireDem(3, 4, 0))
	}
	r.Uncommit(g)
}

func TestViaDedup(t *testing.T) {
	g := testGrid()
	r := &NetRoute{NetID: 3}
	var p Path
	p.AddVia(2, 2, 1, 3)
	p.AddVia(2, 2, 2, 4) // overlaps [2,3]
	r.Paths = []Path{p}
	if got := r.ViaCount(g); got != 3 {
		t.Fatalf("ViaCount = %d, want 3 (layers 1-2, 2-3, 3-4)", got)
	}
}

func TestZeroLengthHelpers(t *testing.T) {
	var p Path
	p.AddSeg(3, geom.Point{X: 1, Y: 1}, geom.Point{X: 1, Y: 1})
	p.AddVia(1, 1, 2, 2)
	if len(p.Segs) != 0 || len(p.Vias) != 0 {
		t.Fatal("zero-length geometry not skipped")
	}
	p.AddVia(1, 1, 3, 1)
	if p.Vias[0].L1 != 1 || p.Vias[0].L2 != 3 {
		t.Fatal("via layers not normalized")
	}
}

func TestValidateConnectivity(t *testing.T) {
	g := testGrid()
	r := buildLRoute()
	pins := []geom.Point3{{X: 0, Y: 0, Layer: 1}, {X: 5, Y: 5, Layer: 1}}
	if err := r.Validate(g, pins); err != nil {
		t.Fatalf("valid route rejected: %v", err)
	}
	// Missing pin layer: pin at layer 4 is not reached.
	bad := []geom.Point3{{X: 0, Y: 0, Layer: 4}, {X: 5, Y: 5, Layer: 1}}
	if r.Validate(g, bad) == nil {
		t.Fatal("unreached pin layer accepted")
	}
	// Disconnected geometry.
	r2 := &NetRoute{NetID: 4}
	var pa, pb Path
	pa.AddSeg(3, geom.Point{X: 0, Y: 0}, geom.Point{X: 2, Y: 0})
	pb.AddSeg(3, geom.Point{X: 5, Y: 5}, geom.Point{X: 7, Y: 5})
	r2.Paths = []Path{pa, pb}
	pins2 := []geom.Point3{{X: 0, Y: 0, Layer: 3}, {X: 5, Y: 5, Layer: 3}}
	if r2.Validate(g, pins2) == nil {
		t.Fatal("disconnected route accepted")
	}
}

func TestMisalignedSegPanicsOnCommit(t *testing.T) {
	g := testGrid()
	r := &NetRoute{NetID: 5}
	var p Path
	p.Segs = append(p.Segs, Seg{Layer: 3, A: geom.Point{X: 0, Y: 0}, B: geom.Point{X: 2, Y: 2}})
	r.Paths = []Path{p}
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned segment accepted")
		}
	}()
	r.Commit(g)
}

func TestPinTerminals(t *testing.T) {
	net := &design.Net{ID: 7, Name: "n", Pins: []design.Pin{
		{Pos: geom.Point{X: 1, Y: 1}, Layer: 1},
		{Pos: geom.Point{X: 1, Y: 1}, Layer: 2},
		{Pos: geom.Point{X: 6, Y: 3}, Layer: 1},
	}}
	tr := stt.Build(net)
	pins := PinTerminals(tr)
	if len(pins) != 3 {
		t.Fatalf("PinTerminals = %d, want 3", len(pins))
	}
}
