package route

import (
	"fastgr/internal/geom"
	"fastgr/internal/grid"
)

// Crossing is a grid step between two adjacent G-cells in different shard
// regions; it mirrors shard.Crossing without importing that package (route
// sits below shard in the dependency order).
type Crossing struct {
	A, B geom.Point
}

// StitchFragments reassembles a boundary net from its per-shard fragment
// routes: the fragment geometry is merged verbatim, then every crossing edge
// — the one-step halo connections the splitter cut at — is realized on a
// deterministically chosen layer with the via stacks needed to reach the
// fragment geometry on both sides.
//
// The crossing layer minimizes, at the grid's current demand,
//
//	via(A: la -> l) + wire(l, A-B) + via(B: l -> lb)
//
// over the layers whose preferred direction matches the step, where la/lb
// are the lowest layers already carrying the net at A/B (fragment geometry
// appended so far, earlier crossings included, plus the net's own pins);
// ties break to the lowest layer. Crossings are processed in the order
// given, each seeing its predecessors' geometry, so the result is a pure
// function of (grid state, fragments, crossings) — the stitching pass runs
// at a sequential coordinator point in canonical net order, which is what
// makes it shard-count-invariant.
//
// The returned route is not committed; the caller commits it like any other.
func StitchFragments(g *grid.Graph, netID int, pins []geom.Point3, frags []*NetRoute, crossings []Crossing) *NetRoute {
	merged := &NetRoute{NetID: netID}
	for _, f := range frags {
		if f != nil {
			merged.Paths = append(merged.Paths, f.Paths...)
		}
	}
	for _, cr := range crossings {
		la := lowestLayerAt(merged, pins, cr.A)
		lb := lowestLayerAt(merged, pins, cr.B)
		horiz := cr.A.Y == cr.B.Y
		bestL, bestCost := 0, 0.0
		for l := 1; l <= g.L; l++ {
			if (g.Dir(l) == grid.Horizontal) != horiz {
				continue
			}
			c := g.SegCost(l, cr.A, cr.B)
			if la > 0 {
				c += g.ViaStackCost(cr.A.X, cr.A.Y, la, l)
			}
			if lb > 0 {
				c += g.ViaStackCost(cr.B.X, cr.B.Y, l, lb)
			}
			if bestL == 0 || c < bestCost {
				bestL, bestCost = l, c
			}
		}
		var p Path
		if la > 0 {
			p.AddVia(cr.A.X, cr.A.Y, la, bestL)
		}
		p.AddSeg(bestL, cr.A, cr.B)
		if lb > 0 {
			p.AddVia(cr.B.X, cr.B.Y, bestL, lb)
		}
		merged.Paths = append(merged.Paths, p)
	}
	return merged
}

// lowestLayerAt returns the lowest layer at which the route's geometry (or
// one of the net's pins) touches position pos; 0 when nothing does.
func lowestLayerAt(r *NetRoute, pins []geom.Point3, pos geom.Point) int {
	best := 0
	touch := func(l int) {
		if best == 0 || l < best {
			best = l
		}
	}
	for _, p := range r.Paths {
		for _, s := range p.Segs {
			if s.A.Y == s.B.Y && pos.Y == s.A.Y &&
				pos.X >= geom.Min(s.A.X, s.B.X) && pos.X <= geom.Max(s.A.X, s.B.X) {
				touch(s.Layer)
			} else if s.A.X == s.B.X && pos.X == s.A.X &&
				pos.Y >= geom.Min(s.A.Y, s.B.Y) && pos.Y <= geom.Max(s.A.Y, s.B.Y) {
				touch(s.Layer)
			}
		}
		for _, v := range p.Vias {
			if v.X == pos.X && v.Y == pos.Y {
				touch(v.L1)
			}
		}
	}
	for _, pin := range pins {
		if pin.X == pos.X && pin.Y == pos.Y {
			touch(pin.Layer)
		}
	}
	return best
}
