package route

import (
	"testing"

	"fastgr/internal/design"
	"fastgr/internal/geom"
	"fastgr/internal/grid"
)

func stitchGrid(t *testing.T) *grid.Graph {
	t.Helper()
	d := &design.Design{
		Name:          "stitchtest",
		GridW:         16,
		GridH:         16,
		NumLayers:     4,
		LayerCapacity: []int{0, 8, 8, 8},
		ViaCapacity:   8,
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return grid.NewFromDesign(d)
}

// TestStitchFragmentsBridgesCut stitches two fragment routes separated by
// one crossing edge and checks the merged route is a single connected net
// reaching both pins.
func TestStitchFragmentsBridgesCut(t *testing.T) {
	g := stitchGrid(t)
	pins := []geom.Point3{
		{X: 2, Y: 5, Layer: 3},
		{X: 13, Y: 5, Layer: 3},
	}
	// Layer 3 is horizontal; each fragment carries its half of the row.
	left := &NetRoute{NetID: 1}
	var lp Path
	lp.AddSeg(3, geom.Point{X: 2, Y: 5}, geom.Point{X: 7, Y: 5})
	left.Paths = append(left.Paths, lp)
	right := &NetRoute{NetID: 1}
	var rp Path
	rp.AddSeg(3, geom.Point{X: 8, Y: 5}, geom.Point{X: 13, Y: 5})
	right.Paths = append(right.Paths, rp)

	nr := StitchFragments(g, 1, pins, []*NetRoute{left, right},
		[]Crossing{{A: geom.Point{X: 7, Y: 5}, B: geom.Point{X: 8, Y: 5}}})
	if nr.NetID != 1 {
		t.Fatalf("stitched route carries net ID %d", nr.NetID)
	}
	if nr.Committed() {
		t.Fatal("stitched route must come back uncommitted")
	}
	if err := nr.Validate(g, pins); err != nil {
		t.Fatalf("stitched route invalid: %v", err)
	}
	// The fragments sit on layer 3 at both crossing endpoints, so the
	// cheapest bridge is the bare layer-3 edge — no vias.
	nr.Commit(g)
	if got := nr.ViaCount(g); got != 0 {
		t.Errorf("same-layer stitch added %d vias, want 0", got)
	}
	if got := nr.Wirelength(g); got != 11 {
		t.Errorf("stitched wirelength %d, want 11", got)
	}
}

// TestStitchFragmentsClimbsLayers puts the two fragments on different
// layers and checks the stitch inserts the via stacks needed to connect
// the crossing edge to both sides.
func TestStitchFragmentsClimbsLayers(t *testing.T) {
	g := stitchGrid(t)
	pins := []geom.Point3{
		{X: 4, Y: 8, Layer: 1},
		{X: 11, Y: 9, Layer: 2},
	}
	// Left fragment on horizontal layer 1; right fragment reaches its pin
	// via a vertical layer-2 hop (the crossing is horizontal, so the
	// bridge itself must pick layer 1 or 3 and via down/over).
	left := &NetRoute{NetID: 2}
	var lp Path
	lp.AddSeg(1, geom.Point{X: 4, Y: 8}, geom.Point{X: 7, Y: 8})
	left.Paths = append(left.Paths, lp)
	right := &NetRoute{NetID: 2}
	var rp Path
	rp.AddSeg(1, geom.Point{X: 8, Y: 8}, geom.Point{X: 11, Y: 8})
	rp.AddVia(11, 8, 1, 2)
	var rp2 Path
	rp2.AddSeg(2, geom.Point{X: 11, Y: 8}, geom.Point{X: 11, Y: 9})
	right.Paths = append(right.Paths, rp, rp2)

	nr := StitchFragments(g, 2, pins, []*NetRoute{left, right},
		[]Crossing{{A: geom.Point{X: 7, Y: 8}, B: geom.Point{X: 8, Y: 8}}})
	if err := nr.Validate(g, pins); err != nil {
		t.Fatalf("stitched route invalid: %v", err)
	}
}

// TestStitchFragmentsDeterministic stitches the same inputs twice against
// the same grid state and expects identical geometry — the stitcher must
// be a pure function of (grid state, fragments, crossings).
func TestStitchFragmentsDeterministic(t *testing.T) {
	build := func() *NetRoute {
		g := stitchGrid(t)
		pins := []geom.Point3{
			{X: 1, Y: 2, Layer: 3},
			{X: 14, Y: 13, Layer: 3},
		}
		a := &NetRoute{NetID: 3}
		var pa Path
		pa.AddSeg(3, geom.Point{X: 1, Y: 2}, geom.Point{X: 7, Y: 2})
		a.Paths = append(a.Paths, pa)
		b := &NetRoute{NetID: 3}
		var pb Path
		pb.AddSeg(3, geom.Point{X: 8, Y: 2}, geom.Point{X: 14, Y: 2})
		var pb2 Path
		pb2.AddVia(14, 2, 3, 4)
		pb2.AddSeg(4, geom.Point{X: 14, Y: 2}, geom.Point{X: 14, Y: 13})
		pb2.AddVia(14, 13, 4, 3)
		b.Paths = append(b.Paths, pb, pb2)
		return StitchFragments(g, 3, pins, []*NetRoute{a, b},
			[]Crossing{{A: geom.Point{X: 7, Y: 2}, B: geom.Point{X: 8, Y: 2}}})
	}
	r1, r2 := build(), build()
	if len(r1.Paths) != len(r2.Paths) {
		t.Fatalf("path counts differ: %d vs %d", len(r1.Paths), len(r2.Paths))
	}
	for i := range r1.Paths {
		p1, p2 := r1.Paths[i], r2.Paths[i]
		if len(p1.Segs) != len(p2.Segs) || len(p1.Vias) != len(p2.Vias) {
			t.Fatalf("path %d shape differs", i)
		}
		for j := range p1.Segs {
			if p1.Segs[j] != p2.Segs[j] {
				t.Fatalf("path %d seg %d differs: %+v vs %+v", i, j, p1.Segs[j], p2.Segs[j])
			}
		}
		for j := range p1.Vias {
			if p1.Vias[j] != p2.Vias[j] {
				t.Fatalf("path %d via %d differs: %+v vs %+v", i, j, p1.Vias[j], p2.Vias[j])
			}
		}
	}
}
