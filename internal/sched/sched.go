// Package sched implements the paper's heterogeneous task-graph scheduler
// (Section III-B): task conflict graphs from bounding-box overlap, the
// Algorithm-1 batch extraction that carves maximal conflict-free batches out
// of a sorted task list, root-batch selection, and the conflict-edge
// orientation that turns the conflict graph into an execution DAG (Fig. 6).
// It also provides the six inter-net sorting schemes of Table IV.
package sched

import (
	"fmt"
	"sort"

	"fastgr/internal/design"
	"fastgr/internal/geom"
	"fastgr/internal/obs"
)

// Scheme is an inter-net ordering strategy (Table IV).
type Scheme int

const (
	// PinsAsc sorts by ascending pin count.
	PinsAsc Scheme = iota
	// PinsDesc sorts by descending pin count.
	PinsDesc
	// HPWLAsc sorts by ascending bounding-box half perimeter — the scheme
	// the paper settles on (Section IV-C).
	HPWLAsc
	// HPWLDesc sorts by descending half perimeter.
	HPWLDesc
	// AreaAsc sorts by ascending bounding-box area.
	AreaAsc
	// AreaDesc sorts by descending bounding-box area.
	AreaDesc
)

// Schemes lists all sorting schemes in Table IV order.
var Schemes = []Scheme{PinsAsc, PinsDesc, HPWLAsc, HPWLDesc, AreaAsc, AreaDesc}

func (s Scheme) String() string {
	switch s {
	case PinsAsc:
		return "pins-asc"
	case PinsDesc:
		return "pins-desc"
	case HPWLAsc:
		return "hpwl-asc"
	case HPWLDesc:
		return "hpwl-desc"
	case AreaAsc:
		return "area-asc"
	case AreaDesc:
		return "area-desc"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// SortNets orders nets in place by the scheme, breaking ties by net ID so
// every scheme is a deterministic total order.
func SortNets(nets []*design.Net, s Scheme) {
	key := func(n *design.Net) int {
		switch s {
		case PinsAsc:
			return len(n.Pins)
		case PinsDesc:
			return -len(n.Pins)
		case HPWLAsc:
			return n.HPWL()
		case HPWLDesc:
			return -n.HPWL()
		case AreaAsc:
			return n.BBox().Area()
		case AreaDesc:
			return -n.BBox().Area()
		}
		return 0
	}
	sort.SliceStable(nets, func(i, j int) bool {
		ki, kj := key(nets[i]), key(nets[j])
		if ki != kj {
			return ki < kj
		}
		return nets[i].ID < nets[j].ID
	})
}

// Task is one schedulable unit: a net (rip-up-and-reroute stage) or a whole
// batch (pattern stage), identified by its position in the sorted task list.
// Two tasks conflict when their bounding boxes overlap.
type Task struct {
	ID   int // index in the sorted task list (the paper's task ID)
	BBox geom.Rect
	// Payload lets callers attach the underlying net or batch.
	Payload interface{}
}

// ExtractBatches repeatedly applies Algorithm 1 to the task list (already in
// the desired sort order): each pass greedily collects tasks that do not
// conflict with anything already in the batch, yielding near-maximal
// independent sets. Every task lands in exactly one batch. Conflict checks
// go through the same 16x16 G-cell binning the conflict graph uses, so a
// pass costs near-linear time instead of the quadratic scan over all
// accepted boxes.
func ExtractBatches(tasks []Task) [][]Task {
	occ := newBinnedOccupancy(taskBounds(tasks))
	remaining := append([]Task(nil), tasks...)
	var batches [][]Task
	for len(remaining) > 0 {
		occ.reset()
		var batch []Task
		var rest []Task
		for _, t := range remaining {
			if occ.conflicts(t.BBox) {
				rest = append(rest, t)
				continue
			}
			batch = append(batch, t)
			occ.add(t.BBox)
		}
		batches = append(batches, batch)
		remaining = rest
	}
	return batches
}

// ObserveBatches records Algorithm-1 batch statistics into the registry:
// the batch-size histogram the paper's Fig. 9 plots, plus batch and task
// counters. A nil registry is a no-op; the batches are only read.
func ObserveBatches(m *obs.Registry, batches [][]Task) {
	if m == nil {
		return
	}
	h := m.Histogram(obs.MBatchSize, obs.BatchSizeBuckets)
	m.Counter(obs.MSchedBatches).Add(int64(len(batches)))
	for _, b := range batches {
		h.Observe(int64(len(b)))
	}
}

// taskBounds returns grid dimensions covering every task bbox, for callers
// that do not know the grid (ExtractBatches).
func taskBounds(tasks []Task) (w, h int) {
	for _, t := range tasks {
		w = geom.Max(w, t.BBox.Hi.X+1)
		h = geom.Max(h, t.BBox.Hi.Y+1)
	}
	return w, h
}

// binShift sets the spatial bin size used by conflict detection: 16x16
// G-cell bins, matching the conflict-graph construction.
const binShift = 4

// binnedOccupancy is an incremental set of committed bounding boxes with
// binned conflict queries: each box is registered in every 16x16 G-cell bin
// it touches, and a query only tests boxes sharing a bin with the probe.
type binnedOccupancy struct {
	binsX, binsY int
	bins         [][]geom.Rect
}

func newBinnedOccupancy(w, h int) *binnedOccupancy {
	binsX := (geom.Max(w, 1) >> binShift) + 1
	binsY := (geom.Max(h, 1) >> binShift) + 1
	return &binnedOccupancy{binsX: binsX, binsY: binsY, bins: make([][]geom.Rect, binsX*binsY)}
}

// reset empties the set, keeping the per-bin storage for reuse.
func (o *binnedOccupancy) reset() {
	for i := range o.bins {
		o.bins[i] = o.bins[i][:0]
	}
}

func (o *binnedOccupancy) add(r geom.Rect) {
	for by := geom.Max(0, r.Lo.Y>>binShift); by <= (r.Hi.Y>>binShift) && by < o.binsY; by++ {
		for bx := geom.Max(0, r.Lo.X>>binShift); bx <= (r.Hi.X>>binShift) && bx < o.binsX; bx++ {
			o.bins[by*o.binsX+bx] = append(o.bins[by*o.binsX+bx], r)
		}
	}
}

func (o *binnedOccupancy) conflicts(r geom.Rect) bool {
	for by := geom.Max(0, r.Lo.Y>>binShift); by <= (r.Hi.Y>>binShift) && by < o.binsY; by++ {
		for bx := geom.Max(0, r.Lo.X>>binShift); bx <= (r.Hi.X>>binShift) && bx < o.binsX; bx++ {
			for _, b := range o.bins[by*o.binsX+bx] {
				if r.Overlaps(b) {
					return true
				}
			}
		}
	}
	return false
}

// Graph is the oriented task graph: Succ[i] lists the tasks that must wait
// for task i, Indegree[i] the number of tasks i waits for.
type Graph struct {
	Tasks    []Task
	Succ     [][]int
	Indegree []int
	// RootBatch flags the tasks selected into the independent root batch.
	RootBatch []bool
	// Edges is the number of conflict pairs oriented.
	Edges int
}

// BuildGraph constructs the conflict graph over tasks (bounding-box overlap,
// found with a coarse spatial binning) and orients every conflict edge with
// the paper's two rules: root-batch tasks precede their non-root neighbors;
// between two non-root tasks the smaller task ID goes first. The root batch
// is the first Algorithm-1 batch. The result is acyclic by construction:
// every edge either leaves the root batch or goes from a smaller to a larger
// ID.
func BuildGraph(tasks []Task, gridW, gridH int) *Graph {
	g := &Graph{
		Tasks:     tasks,
		Succ:      make([][]int, len(tasks)),
		Indegree:  make([]int, len(tasks)),
		RootBatch: make([]bool, len(tasks)),
	}
	// Root batch: greedy independent set in task order (Algorithm 1, one
	// pass), with binned conflict checks.
	occ := newBinnedOccupancy(gridW, gridH)
	for i, t := range tasks {
		if !occ.conflicts(t.BBox) {
			g.RootBatch[i] = true
			occ.add(t.BBox)
		}
	}
	for _, pair := range conflictPairs(tasks, gridW, gridH) {
		i, j := pair[0], pair[1]
		var from, to int
		switch {
		case g.RootBatch[i]:
			from, to = i, j
		case g.RootBatch[j]:
			from, to = j, i
		case i < j:
			from, to = i, j
		default:
			from, to = j, i
		}
		g.Succ[from] = append(g.Succ[from], to)
		g.Indegree[to]++
		g.Edges++
	}
	return g
}

// conflictPairs finds all overlapping bbox pairs via binning: tasks are
// registered in coarse grid bins; only pairs sharing a bin are tested. A
// pair spanning several bins surfaces once per shared bin, so candidates are
// deduplicated by sort-then-compact — cheaper than the map the construction
// previously used, which dominated allocation on dense designs.
func conflictPairs(tasks []Task, gridW, gridH int) [][2]int {
	binsX := (geom.Max(gridW, 1) >> binShift) + 1
	binsY := (geom.Max(gridH, 1) >> binShift) + 1
	bins := make([][]int, binsX*binsY)
	for i, t := range tasks {
		r := t.BBox
		for by := geom.Max(0, r.Lo.Y>>binShift); by <= (r.Hi.Y>>binShift) && by < binsY; by++ {
			for bx := geom.Max(0, r.Lo.X>>binShift); bx <= (r.Hi.X>>binShift) && bx < binsX; bx++ {
				bins[by*binsX+bx] = append(bins[by*binsX+bx], i)
			}
		}
	}
	var pairs [][2]int
	for _, bin := range bins {
		for a := 0; a < len(bin); a++ {
			for b := a + 1; b < len(bin); b++ {
				i, j := bin[a], bin[b]
				if i > j {
					i, j = j, i
				}
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a][0] != pairs[b][0] {
			return pairs[a][0] < pairs[b][0]
		}
		return pairs[a][1] < pairs[b][1]
	})
	out := pairs[:0]
	prev := [2]int{-1, -1}
	for _, p := range pairs {
		if p == prev {
			continue
		}
		prev = p
		if tasks[p[0]].BBox.Overlaps(tasks[p[1]].BBox) {
			out = append(out, p)
		}
	}
	return out
}

// TopoOrder returns a topological order of the graph; it panics if the
// orientation produced a cycle, which the construction rules make
// impossible short of a bug.
func (g *Graph) TopoOrder() []int {
	indeg := append([]int(nil), g.Indegree...)
	queue := make([]int, 0, len(g.Tasks))
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, len(g.Tasks))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.Succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != len(g.Tasks) {
		panic("sched: task graph has a cycle")
	}
	return order
}
