package sched

import (
	"testing"
	"testing/quick"

	"fastgr/internal/design"
	"fastgr/internal/geom"
	"fastgr/internal/obs"
)

func mkNet(id, pins int, lo, hi geom.Point) *design.Net {
	n := &design.Net{ID: id, Name: "n"}
	n.Pins = append(n.Pins, design.Pin{Pos: lo, Layer: 1}, design.Pin{Pos: hi, Layer: 1})
	for len(n.Pins) < pins {
		n.Pins = append(n.Pins, design.Pin{Pos: lo, Layer: 2})
	}
	return n
}

func TestSortSchemes(t *testing.T) {
	nets := []*design.Net{
		mkNet(0, 2, geom.Point{X: 0, Y: 0}, geom.Point{X: 9, Y: 9}),  // hpwl 18, area 100
		mkNet(1, 5, geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 1}),  // hpwl 2, area 4
		mkNet(2, 3, geom.Point{X: 0, Y: 0}, geom.Point{X: 4, Y: 19}), // hpwl 23, area 100
	}
	cases := []struct {
		s    Scheme
		want []int // net IDs in sorted order
	}{
		{PinsAsc, []int{0, 2, 1}},
		{PinsDesc, []int{1, 2, 0}},
		{HPWLAsc, []int{1, 0, 2}},
		{HPWLDesc, []int{2, 0, 1}},
		{AreaAsc, []int{1, 0, 2}}, // tie 100 broken by ID
		{AreaDesc, []int{0, 2, 1}},
	}
	for _, c := range cases {
		ns := append([]*design.Net(nil), nets...)
		SortNets(ns, c.s)
		for i, want := range c.want {
			if ns[i].ID != want {
				t.Errorf("%v: position %d has net %d, want %d", c.s, i, ns[i].ID, want)
			}
		}
	}
}

func TestSchemeStrings(t *testing.T) {
	for _, s := range Schemes {
		if s.String() == "" {
			t.Error("empty scheme name")
		}
	}
	if Scheme(99).String() != "scheme(99)" {
		t.Error("unknown scheme string wrong")
	}
	if len(Schemes) != 6 {
		t.Fatalf("Table IV has 6 schemes, found %d", len(Schemes))
	}
}

func taskAt(id int, lo, hi geom.Point) Task {
	return Task{ID: id, BBox: geom.NewRect(lo, hi)}
}

func TestExtractBatchesNoIntraBatchConflicts(t *testing.T) {
	tasks := []Task{
		taskAt(0, geom.Point{X: 0, Y: 0}, geom.Point{X: 4, Y: 4}),
		taskAt(1, geom.Point{X: 2, Y: 2}, geom.Point{X: 6, Y: 6}), // conflicts 0
		taskAt(2, geom.Point{X: 8, Y: 8}, geom.Point{X: 9, Y: 9}),
		taskAt(3, geom.Point{X: 3, Y: 3}, geom.Point{X: 5, Y: 5}), // conflicts 0,1
	}
	batches := ExtractBatches(tasks)
	total := 0
	for _, b := range batches {
		total += len(b)
		for i := 0; i < len(b); i++ {
			for j := i + 1; j < len(b); j++ {
				if b[i].BBox.Overlaps(b[j].BBox) {
					t.Fatalf("tasks %d,%d conflict inside one batch", b[i].ID, b[j].ID)
				}
			}
		}
	}
	if total != len(tasks) {
		t.Fatalf("batches cover %d of %d tasks", total, len(tasks))
	}
	// Greedy from sorted order: first batch is {0,2}.
	if len(batches[0]) != 2 || batches[0][0].ID != 0 || batches[0][1].ID != 2 {
		t.Fatalf("unexpected first batch: %+v", batches[0])
	}
}

func TestExtractBatchesProperty(t *testing.T) {
	f := func(raw []struct{ X, Y, W, H uint8 }) bool {
		if len(raw) > 60 {
			raw = raw[:60]
		}
		tasks := make([]Task, len(raw))
		for i, r := range raw {
			lo := geom.Point{X: int(r.X) % 100, Y: int(r.Y) % 100}
			hi := geom.Point{X: lo.X + int(r.W)%20, Y: lo.Y + int(r.H)%20}
			tasks[i] = taskAt(i, lo, hi)
		}
		batches := ExtractBatches(tasks)
		seen := map[int]bool{}
		for _, b := range batches {
			if len(b) == 0 {
				return false // empty batches would loop forever upstream
			}
			for i := range b {
				if seen[b[i].ID] {
					return false
				}
				seen[b[i].ID] = true
				for j := i + 1; j < len(b); j++ {
					if b[i].BBox.Overlaps(b[j].BBox) {
						return false
					}
				}
			}
		}
		return len(seen) == len(tasks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildGraphOrientationRules(t *testing.T) {
	tasks := []Task{
		taskAt(0, geom.Point{X: 0, Y: 0}, geom.Point{X: 4, Y: 4}),
		taskAt(1, geom.Point{X: 2, Y: 2}, geom.Point{X: 6, Y: 6}), // vs 0 and 3
		taskAt(2, geom.Point{X: 20, Y: 20}, geom.Point{X: 24, Y: 24}),
		taskAt(3, geom.Point{X: 5, Y: 5}, geom.Point{X: 7, Y: 7}), // vs 1
	}
	g := BuildGraph(tasks, 32, 32)
	// Root batch is greedy in order: 0 in; 1 conflicts 0 -> out; 2 in; 3
	// conflicts nothing in root (0 and 2)? bbox(3)=5..7 overlaps bbox(0)=0..4? no. So 3 in root.
	if !g.RootBatch[0] || g.RootBatch[1] || !g.RootBatch[2] || !g.RootBatch[3] {
		t.Fatalf("root batch wrong: %v", g.RootBatch)
	}
	// Edge 0-1: root->nonroot = 0->1. Edge 1-3: 3 in root -> 3->1.
	hasEdge := func(from, to int) bool {
		for _, v := range g.Succ[from] {
			if v == to {
				return true
			}
		}
		return false
	}
	if !hasEdge(0, 1) || hasEdge(1, 0) {
		t.Fatal("edge 0-1 misoriented")
	}
	if !hasEdge(3, 1) || hasEdge(1, 3) {
		t.Fatal("edge 1-3 misoriented")
	}
	if g.Edges != 2 {
		t.Fatalf("edges = %d, want 2", g.Edges)
	}
	if g.Indegree[1] != 2 {
		t.Fatalf("indegree of task 1 = %d, want 2", g.Indegree[1])
	}
}

func TestBuildGraphNonRootPairOrientation(t *testing.T) {
	// Three mutually overlapping tasks: only the first enters the root
	// batch; the 1-2 pair is non-root/non-root and goes small ID -> large.
	tasks := []Task{
		taskAt(0, geom.Point{X: 0, Y: 0}, geom.Point{X: 9, Y: 9}),
		taskAt(1, geom.Point{X: 1, Y: 1}, geom.Point{X: 8, Y: 8}),
		taskAt(2, geom.Point{X: 2, Y: 2}, geom.Point{X: 7, Y: 7}),
	}
	g := BuildGraph(tasks, 16, 16)
	found := false
	for _, v := range g.Succ[1] {
		if v == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("non-root pair 1-2 not oriented by task ID")
	}
	for _, v := range g.Succ[2] {
		if v == 1 {
			t.Fatal("backward edge 2->1 present")
		}
	}
}

func TestTopoOrderValid(t *testing.T) {
	f := func(raw []struct{ X, Y, W, H uint8 }) bool {
		if len(raw) > 50 {
			raw = raw[:50]
		}
		tasks := make([]Task, len(raw))
		for i, r := range raw {
			lo := geom.Point{X: int(r.X) % 64, Y: int(r.Y) % 64}
			hi := geom.Point{X: lo.X + int(r.W)%16, Y: lo.Y + int(r.H)%16}
			tasks[i] = taskAt(i, lo, hi)
		}
		g := BuildGraph(tasks, 80, 80)
		order := g.TopoOrder()
		if len(order) != len(tasks) {
			return false
		}
		pos := make([]int, len(tasks))
		for i, u := range order {
			pos[u] = i
		}
		for u := range g.Succ {
			for _, v := range g.Succ[u] {
				if pos[u] >= pos[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestConflictPairsCompleteness(t *testing.T) {
	// Binning must find exactly the same pairs as the quadratic check,
	// including boxes spanning many bins.
	tasks := []Task{
		taskAt(0, geom.Point{X: 0, Y: 0}, geom.Point{X: 63, Y: 2}), // long horizontal
		taskAt(1, geom.Point{X: 30, Y: 0}, geom.Point{X: 33, Y: 40}),
		taskAt(2, geom.Point{X: 50, Y: 50}, geom.Point{X: 55, Y: 55}),
		taskAt(3, geom.Point{X: 0, Y: 1}, geom.Point{X: 1, Y: 90}),
		taskAt(4, geom.Point{X: 54, Y: 54}, geom.Point{X: 60, Y: 60}),
	}
	got := conflictPairs(tasks, 100, 100)
	want := map[[2]int]bool{}
	for i := range tasks {
		for j := i + 1; j < len(tasks); j++ {
			if tasks[i].BBox.Overlaps(tasks[j].BBox) {
				want[[2]int{i, j}] = true
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("binned pairs %v != brute-force %v", got, want)
	}
	for _, p := range got {
		if !want[p] {
			t.Fatalf("spurious pair %v", p)
		}
	}
}

func TestGraphOnGeneratedDesign(t *testing.T) {
	d := design.MustGenerate("18test8m", 0.002)
	nets := append([]*design.Net(nil), d.Nets[:300]...)
	SortNets(nets, HPWLAsc)
	tasks := make([]Task, len(nets))
	for i, n := range nets {
		tasks[i] = Task{ID: i, BBox: n.BBox(), Payload: n}
	}
	g := BuildGraph(tasks, d.GridW, d.GridH)
	g.TopoOrder() // must not panic
	if g.Edges == 0 {
		t.Fatal("no conflicts in a clustered design is implausible")
	}
	batches := ExtractBatches(tasks)
	if len(batches) < 2 {
		t.Fatal("expected multiple batches in a clustered design")
	}
}

// TestObserveBatches checks the batch-size histogram and batch counter,
// and that a nil registry is a no-op.
func TestObserveBatches(t *testing.T) {
	batches := [][]Task{
		make([]Task, 3),
		make([]Task, 1),
		make([]Task, 7),
	}
	ObserveBatches(nil, batches) // must not panic

	r := obs.NewRegistry()
	ObserveBatches(r, batches)
	s := r.Snapshot()
	if got := s.Counters[obs.MSchedBatches]; got != 3 {
		t.Errorf("batch counter = %d, want 3", got)
	}
	h := s.Histograms[obs.MBatchSize]
	if h.Count != 3 || h.Sum != 11 || h.Min != 1 || h.Max != 7 {
		t.Errorf("batch-size histogram = %+v, want count=3 sum=11 min=1 max=7", h)
	}
}
