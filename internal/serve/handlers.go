package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"fastgr/internal/atomicio"
	"fastgr/internal/core"
	"fastgr/internal/guide"
	"fastgr/internal/obs"
)

// registerHandlers mounts the job API beside the opsrv endpoints.
func (s *Server) registerHandlers(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/guides", s.handleGuides)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
}

// submitResponse is the 202 body of a successful submission.
type submitResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// errorResponse is the JSON body of every non-2xx job-API response.
type errorResponse struct {
	Error string `json:"error"`
	// RetryAfterSec echoes the Retry-After header on 429s so JSON-only
	// clients need not parse headers.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// handleSubmit is the admission path: validate, reserve a queue slot
// (never blocking), journal the submission, enqueue. Rejections are
// 429 with a Retry-After computed from observed service times; a
// draining server answers 503.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad job spec: " + err.Error()})
		return
	}
	if err := spec.normalize(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	est := spec.estimateBytes()
	if !s.q.admit(est) {
		s.obs.M().Counter(obs.MServeRejected).Add(1)
		retry := s.retryAfterSeconds()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{
			Error:         "job queue is full",
			RetryAfterSec: retry,
		})
		return
	}
	job, err := s.store.Submit(spec, est)
	if err != nil {
		s.q.release(est)
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "journal: " + err.Error()})
		return
	}
	jj := job
	s.q.push(&jj)
	s.obs.M().Counter(obs.MServeAdmitted).Add(1)
	s.obs.M().Gauge(obs.MServeQueueDepth).Set(int64(s.q.depth()))
	writeJSON(w, http.StatusAccepted, submitResponse{ID: job.ID, State: job.State})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleGuides streams the guides artifact of a done job.
func (s *Server) handleGuides(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.store.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	if job.State != StateDone {
		writeJSON(w, http.StatusConflict, errorResponse{
			Error: fmt.Sprintf("job %s is %s, guides exist only for done jobs", id, job.State)})
		return
	}
	f, err := os.Open(s.store.GuidePath(id))
	if err != nil {
		// done is journaled only after the guides committed to disk, so
		// this is operator interference (artifact deleted), not a race.
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "guides artifact missing"})
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	http.ServeContent(w, r, id+".guides", fileModTime(f), f)
}

func fileModTime(f *os.File) time.Time {
	if st, err := f.Stat(); err == nil {
		return st.ModTime()
	}
	return time.Time{}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	prev, ok := s.store.RequestCancel(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	if terminal(prev) {
		writeJSON(w, http.StatusConflict, errorResponse{
			Error: fmt.Sprintf("job %s already %s", id, prev)})
		return
	}
	if prev == StateRunning {
		s.mu.Lock()
		if rj := s.running[id]; rj != nil {
			rj.cancel()
		}
		s.mu.Unlock()
	}
	job, _ := s.store.Get(id)
	writeJSON(w, http.StatusAccepted, submitResponse{ID: id, State: job.State})
}

// writeGuides mirrors the fastgr CLI's guide emission — contract check,
// then an atomic write — so a guide fetched from the daemon is byte-
// identical to one the CLI writes for the same design and options.
func writeGuides(path string, res *core.Result) error {
	guides := guide.FromResult(res)
	if err := guide.Covers(res, guides); err != nil {
		return fmt.Errorf("guide contract violated: %w", err)
	}
	f, err := atomicio.Create(path)
	if err != nil {
		return err
	}
	defer f.Abort()
	if err := guide.Write(f, guides); err != nil {
		return err
	}
	return f.Commit()
}
