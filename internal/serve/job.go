package serve

import (
	"fmt"
	"math"
	"strings"

	"fastgr/internal/core"
	"fastgr/internal/design"
	"fastgr/internal/fault"
	"fastgr/internal/maze"
	"fastgr/internal/sched"
)

// Job states. A job is born queued, becomes running when a runner picks
// it up, and ends in exactly one of done, failed or cancelled. Journal
// replay maps running back to queued (the work was lost with the
// process), so after a restart every job is either terminal or queued.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// terminal reports whether a state is final.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// JobSpec is the request body of POST /v1/jobs: the full option surface
// of the fastgr CLI, with the same defaults, so a design routed through
// the daemon produces guides byte-identical to the CLI's. Zero values
// mean "CLI default"; RRR is a pointer because 0 iterations is a
// meaningful request distinct from "use the default 3".
type JobSpec struct {
	// Design names a synthetic benchmark to generate (cmd/benchgen
	// -list); DesignText, when non-empty, is an uploaded design in the
	// design.Write text format and takes precedence.
	Design     string  `json:"design,omitempty"`
	Scale      float64 `json:"scale,omitempty"`
	DesignText string  `json:"design_text,omitempty"`

	Router      string  `json:"router,omitempty"` // cugr | fastgrl | fastgrh
	Sort        string  `json:"sort,omitempty"`
	RRR         *int    `json:"rrr,omitempty"`
	T1          int     `json:"t1,omitempty"`
	T2          int     `json:"t2,omitempty"`
	NoSelection bool    `json:"no_selection,omitempty"`
	Shards      int     `json:"shards,omitempty"`
	ExecWorkers int     `json:"exec_workers,omitempty"`
	MazeAlg     string  `json:"maze_alg,omitempty"` // astar | dijkstra
	MazeBudget  int64   `json:"maze_budget,omitempty"`
	FaultProb   float64 `json:"fault_prob,omitempty"`
	FaultSeed   int64   `json:"fault_seed,omitempty"`

	// TimeoutMs, when positive, is the job's routing deadline; a job
	// over it fails with a JobError naming the stage it died in.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// normalize fills CLI defaults into zero fields and validates the rest.
func (sp *JobSpec) normalize() error {
	if sp.DesignText == "" {
		if sp.Design == "" {
			sp.Design = "18test5m"
		}
		if sp.Scale == 0 {
			sp.Scale = 0.01
		}
		if sp.Scale <= 0 || sp.Scale > 1 {
			return fmt.Errorf("scale %v outside (0,1]", sp.Scale)
		}
		if _, err := design.SpecByName(sp.Design); err != nil {
			return err
		}
	}
	if sp.Router == "" {
		sp.Router = "fastgrl"
	}
	if _, err := parseVariant(sp.Router); err != nil {
		return err
	}
	if sp.Sort == "" {
		sp.Sort = "hpwl-asc"
	}
	if _, ok := parseScheme(sp.Sort); !ok {
		return fmt.Errorf("unknown sorting scheme %q", sp.Sort)
	}
	if sp.MazeAlg == "" {
		sp.MazeAlg = "astar"
	}
	if sp.MazeAlg != "astar" && sp.MazeAlg != "dijkstra" {
		return fmt.Errorf("unknown maze algorithm %q", sp.MazeAlg)
	}
	if sp.RRR != nil && *sp.RRR < 0 {
		return fmt.Errorf("rrr %d is negative", *sp.RRR)
	}
	if sp.ExecWorkers < 0 {
		return fmt.Errorf("exec_workers %d is negative", sp.ExecWorkers)
	}
	if sp.Shards < 0 || sp.Shards > 4096 {
		return fmt.Errorf("shards %d outside [0, 4096]", sp.Shards)
	}
	if sp.FaultProb < 0 || sp.FaultProb > 1 {
		return fmt.Errorf("fault_prob %v outside [0,1]", sp.FaultProb)
	}
	if sp.MazeBudget < 0 {
		return fmt.Errorf("maze_budget %d is negative", sp.MazeBudget)
	}
	if sp.TimeoutMs < 0 {
		return fmt.Errorf("timeout_ms %d is negative", sp.TimeoutMs)
	}
	return nil
}

// buildDesign materializes the job's design.
func (sp *JobSpec) buildDesign() (*design.Design, error) {
	if sp.DesignText != "" {
		return design.Read(strings.NewReader(sp.DesignText))
	}
	return design.Generate(sp.Design, sp.Scale)
}

// options resolves the spec into core.Options with exactly the fastgr
// CLI's defaulting — including the T1/T2 threshold scaling for
// generated designs — so the routed output matches the CLI bit for bit.
// The fault layer is NOT armed here: the runner builds a Containment
// itself (see runJob) so it can snapshot per-site accounting afterwards.
func (sp *JobSpec) options() core.Options {
	variant, _ := parseVariant(sp.Router)
	opt := core.DefaultOptions(variant)
	if sp.RRR != nil {
		opt.RRRIters = *sp.RRR
	}
	opt.SelectionOff = sp.NoSelection
	if sp.ExecWorkers > 0 {
		opt.ExecWorkers = sp.ExecWorkers
	}
	opt.Shards = sp.Shards
	if s, ok := parseScheme(sp.Sort); ok {
		opt.Scheme = s
	}
	if sp.MazeAlg == "dijkstra" {
		opt.MazeAlgorithm = maze.Dijkstra
	}
	if sp.T1 > 0 {
		opt.T1 = sp.T1
	} else if sp.DesignText == "" {
		opt.T1 = scaleThreshold(100, sp.Scale)
	}
	if sp.T2 > 0 {
		opt.T2 = sp.T2
	} else if sp.DesignText == "" {
		opt.T2 = scaleThreshold(500, sp.Scale)
	}
	opt.MazeBudget = sp.MazeBudget
	return opt
}

// faultsArmed reports whether the spec requests the containment layer,
// under the CLI's rule (-fault-prob > 0, or -fault-seed alone arming it
// silently).
func (sp *JobSpec) faultsArmed() bool {
	return sp.FaultProb > 0 || sp.FaultSeed != 0
}

// faultOptions is the containment configuration for an armed spec.
func (sp *JobSpec) faultOptions() fault.Options {
	return fault.Options{Seed: sp.FaultSeed, Probs: fault.UniformProbs(sp.FaultProb)}
}

// estimateBytes is the job's admission-control memory estimate: grid
// cost state plus per-net route state at the spec's scaled dimensions,
// computed from the benchmark table without generating the design (the
// accept path must stay cheap). Advisory — admission compares these
// estimates against the queue budget; nothing enforces them at runtime.
func (sp *JobSpec) estimateBytes() int64 {
	const floor = 1 << 20
	if sp.DesignText != "" {
		return int64(len(sp.DesignText))*8 + floor
	}
	spec, err := design.SpecByName(sp.Design)
	if err != nil {
		return floor
	}
	// Mirror design.Generate's scaling: grid side shrinks as scale^0.42,
	// net count linearly.
	side := math.Pow(sp.Scale, 0.42)
	cells := float64(spec.GridW) * side * float64(spec.GridH) * side * float64(spec.Layers)
	nets := float64(spec.Nets) * sp.Scale
	return int64(cells*48+nets*512) + floor
}

// JobResult is the measurable outcome of a finished (or partially
// finished) job, embedded in the status JSON.
type JobResult struct {
	Wirelength int     `json:"wirelength"`
	Vias       int     `json:"vias"`
	Overflow   int     `json:"overflow"`
	Score      float64 `json:"score"`
	// Fault aggregates the run's containment outcomes; FaultSites is the
	// per-site accounting from fault.Snapshot, present only when the
	// spec armed the containment layer and at least one site counted.
	Fault      core.FaultStats            `json:"fault"`
	FaultSites map[string]fault.SiteStats `json:"fault_sites,omitempty"`
	// Partial marks a result captured at a cancellation or deadline
	// checkpoint: the stats cover every stage and iteration that
	// committed before the run stopped.
	Partial bool `json:"partial,omitempty"`
	// RRRIters is the number of rip-up iterations that committed.
	RRRIters int `json:"rrr_iters"`
	// ServiceMs is the job's wall-clock service time (running → terminal),
	// in milliseconds. Observational, like every wall reading.
	ServiceMs int64 `json:"service_ms"`
}

// Job is one submitted routing job. Handlers receive copies snapshotted
// under the store lock; the canonical state lives in the Store.
type Job struct {
	ID   string  `json:"id"`
	Spec JobSpec `json:"spec"`
	// State is one of the State* constants.
	State string `json:"state"`
	// Recovered marks a job requeued by journal replay after a restart.
	Recovered bool `json:"recovered,omitempty"`
	// Error is the terminal error text of a failed or cancelled job.
	Error  string     `json:"error,omitempty"`
	Result *JobResult `json:"result,omitempty"`

	// bytes is the admission estimate reserved in the queue budget,
	// released when the job leaves the queue/runner pipeline.
	bytes int64
	// cancelRequested distinguishes a DELETE-initiated abort from a
	// deadline when the run's context fires. Guarded by the store lock.
	cancelRequested bool
}

// JobError is the typed error a job ends with when its deadline fires
// or a cancel lands mid-run: which pipeline stage the run stopped in,
// and the iteration for rip-up checkpoints.
type JobError struct {
	ID    string `json:"id"`
	State string `json:"state"` // terminal state the job moved to
	Stage string `json:"stage,omitempty"`
	Iter  int    `json:"iter"` // -1 outside rip-up
	Cause string `json:"cause"`
}

func (e *JobError) Error() string {
	if e.Stage == "" {
		return fmt.Sprintf("serve: job %s %s: %s", e.ID, e.State, e.Cause)
	}
	if e.Iter >= 0 {
		return fmt.Sprintf("serve: job %s %s at %s iteration %d: %s", e.ID, e.State, e.Stage, e.Iter, e.Cause)
	}
	return fmt.Sprintf("serve: job %s %s at %s stage: %s", e.ID, e.State, e.Stage, e.Cause)
}

// parseVariant, parseScheme and scaleThreshold mirror the fastgr CLI's
// parsing; keep them in lockstep or the byte-identity contract between
// daemon-routed and CLI-routed guides breaks (serve_test pins it).
func parseVariant(s string) (core.Variant, error) {
	switch strings.ToLower(s) {
	case "cugr":
		return core.CUGR, nil
	case "fastgrl", "l":
		return core.FastGRL, nil
	case "fastgrh", "h":
		return core.FastGRH, nil
	}
	return 0, fmt.Errorf("unknown router %q (want cugr, fastgrl or fastgrh)", s)
}

func parseScheme(s string) (sched.Scheme, bool) {
	for _, sc := range sched.Schemes {
		if sc.String() == s {
			return sc, true
		}
	}
	return 0, false
}

func scaleThreshold(full int, scale float64) int {
	v := int(float64(full)*math.Sqrt(scale) + 0.5)
	if v < 2 {
		v = 2
	}
	return v
}
