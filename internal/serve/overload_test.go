package serve

import (
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestOverloadBackpressureDrainAndLeaks is the overload hygiene proof:
// saturate the admission queue, assert 429s carry a sane Retry-After,
// cancel half the outstanding jobs, drain the server, and verify the
// goroutine count settles back to the pre-server baseline — the accept
// loop, runners and per-connection handlers all joined.
func TestOverloadBackpressureDrainAndLeaks(t *testing.T) {
	settle := func() int {
		runtime.GC()
		n := runtime.NumGoroutine()
		for i := 0; i < 50; i++ {
			time.Sleep(10 * time.Millisecond)
			if m := runtime.NumGoroutine(); m >= n {
				return m
			} else {
				n = m
			}
		}
		return n
	}
	base := settle()

	s := startTestServer(t, Config{Runners: 1, QueueCap: 3})

	// One slow blocker pins the single runner; two more fill the queue
	// to its cap (queued + running <= 3).
	blocker := submitJob(t, s, JobSpec{Design: "18test5m", Scale: 0.04})
	queued := []string{
		submitJob(t, s, JobSpec{Design: "18test5m", Scale: 0.005}),
		submitJob(t, s, JobSpec{Design: "18test5m", Scale: 0.005}),
	}

	// The queue is full: further submissions bounce with 429 and a
	// Retry-After in [1, 3600], never blocking the accept loop.
	for i := 0; i < 4; i++ {
		id, code, body := trySubmit(t, s, JobSpec{Design: "18test5m", Scale: 0.005})
		if code != http.StatusTooManyRequests {
			t.Fatalf("submit %d into full queue: status %d (id %q) body %s", i, code, id, body)
		}
	}
	retry := rejectAndInspect(t, s)
	ra, err := strconv.Atoi(retry)
	if err != nil || ra < 1 || ra > 3600 {
		t.Fatalf("Retry-After %q outside [1, 3600]", retry)
	}

	// Cancel half of what's outstanding: one queued job (journaled
	// tombstone the runner must skip) and the running blocker (context
	// cancellation at a coordinator checkpoint).
	for _, id := range []string{queued[0], blocker} {
		dreq, _ := http.NewRequest(http.MethodDelete, "http://"+s.Addr()+"/v1/jobs/"+id, nil)
		dresp, err := http.DefaultClient.Do(dreq)
		if err != nil {
			t.Fatalf("DELETE %s: %v", id, err)
		}
		dresp.Body.Close()
		if dresp.StatusCode != http.StatusAccepted {
			t.Fatalf("DELETE %s: status %d", id, dresp.StatusCode)
		}
	}
	if j := waitTerminal(t, s, queued[0], 30*time.Second); j.State != StateCancelled {
		t.Fatalf("cancelled queued job ended %s", j.State)
	}
	if j := waitTerminal(t, s, blocker, 120*time.Second); j.State != StateCancelled && j.State != StateDone {
		// done is reachable only if the route finished before the cancel
		// checkpoint fired; either way the job must terminate.
		t.Fatalf("cancelled blocker ended %s: %s", j.State, j.Error)
	}
	// The surviving queued job must still run to completion.
	if j := waitTerminal(t, s, queued[1], 120*time.Second); j.State != StateDone {
		t.Fatalf("surviving job ended %s: %s", j.State, j.Error)
	}

	// After the backlog cleared, admission opens again.
	late := submitJob(t, s, JobSpec{Design: "18test5m", Scale: 0.005, RRR: intp(0)})
	waitTerminal(t, s, late, 60*time.Second)

	// Drain within a generous budget — everything is idle, so this is
	// the clean path: runners join, listener closes.
	if err := s.Drain(30 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	http.DefaultClient.CloseIdleConnections()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := settle(); n <= base {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before server, %d after drain", base, n)
		}
	}
}

// rejectAndInspect submits into the (known-full) queue and returns the
// Retry-After header of the 429.
func rejectAndInspect(t *testing.T, s *Server) string {
	t.Helper()
	resp, err := http.Post("http://"+s.Addr()+"/v1/jobs", "application/json",
		strings.NewReader(`{"design":"18test5m","scale":0.01}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	return resp.Header.Get("Retry-After")
}

// TestDrainRejectsNewWork pins the 503-on-drain contract and that Drain
// checkpoints a straggler back to queued when the budget expires.
func TestDrainRejectsNewWork(t *testing.T) {
	s := startTestServer(t, Config{Runners: 1})
	blocker := submitJob(t, s, JobSpec{Design: "18test5m", Scale: 0.05})
	waitJob(t, s, blocker, func(j Job) bool { return j.State == StateRunning }, 30*time.Second)

	done := make(chan error, 1)
	go func() { done <- s.Drain(2 * time.Second) }()

	// Admission must flip to 503 as soon as draining starts; poll since
	// Drain runs concurrently. A transport error means the listener
	// already closed mid-poll — keep trying until the deadline, the 503
	// window is the whole drain budget.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Post("http://"+s.Addr()+"/v1/jobs", "application/json",
			strings.NewReader(`{"design":"18test5m","scale":0.005}`))
		code := 0
		if err == nil {
			code = resp.StatusCode
			resp.Body.Close()
			if code == http.StatusServiceUnavailable {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("draining server never returned 503 (last status %d, err %v)", code, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := <-done; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// The budget (2s) cannot cover a 0.05-scale route (~12s plain, far
	// more under -race): the blocker must have been checkpointed back
	// to queued for the next start.
	st, err := OpenStore(s.store.Dir())
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	j, ok := st.Get(blocker)
	if !ok {
		t.Fatalf("blocker vanished from the journal")
	}
	if j.State != StateQueued || !j.Recovered {
		t.Fatalf("drained straggler is %s (recovered %v), want queued+recovered", j.State, j.Recovered)
	}
}
