package serve

import "sync"

// queue is the bounded admission queue: a FIFO of at most cap jobs
// whose summed per-job memory estimates stay under a byte budget.
// Admission is a single non-blocking reservation under a mutex — the
// accept loop never waits on a runner — and rejection is the caller's
// signal to answer 429. The byte reservation outlives the queue slot
// on purpose: it is released when the job reaches a terminal state (or
// is dropped), not when a runner pops it, so the budget models jobs in
// the building, not jobs waiting at the door.
type queue struct {
	mu       sync.Mutex
	reserved int   // queued + not-yet-released slots, admission view
	bytes    int64 // reserved estimate sum
	maxJobs  int
	maxBytes int64
	ch       chan *Job
}

func newQueue(maxJobs int, maxBytes int64) *queue {
	return &queue{
		maxJobs:  maxJobs,
		maxBytes: maxBytes,
		ch:       make(chan *Job, maxJobs),
	}
}

// admit reserves a slot and the job's byte estimate, or reports the
// queue full. It never blocks.
func (q *queue) admit(est int64) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.reserved >= q.maxJobs || q.bytes+est > q.maxBytes {
		return false
	}
	q.reserved++
	q.bytes += est
	return true
}

// push hands an admitted job to the runners. The channel send cannot
// block: admit bounds outstanding slots by the channel capacity, and
// slots are only released after the pop.
func (q *queue) push(j *Job) {
	q.ch <- j
}

// release returns an admitted job's reservation, after the job reaches
// a terminal state or its admission is abandoned.
func (q *queue) release(est int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reserved--
	q.bytes -= est
}

// depth is the number of jobs sitting in the channel right now.
func (q *queue) depth() int {
	return len(q.ch)
}
