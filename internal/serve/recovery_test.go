package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fastgr/internal/obs"
)

// TestCrashRecoveryAtEveryJournalPrefix is the crash-safety proof: run
// a workload to completion, then simulate a process killed at every
// possible journal prefix — the store's whole-file atomic republish
// guarantees a crash leaves exactly some prefix of the record stream —
// and assert each prefix reopens into a consistent ledger: every
// submitted job present exactly once, every job either terminal or
// queued-for-recovery, never lost, never duplicated.
//
// Then it restarts a full daemon from a mid-flight prefix (killed with
// one job done and one running) and proves end-to-end recovery: the
// running job re-executes, the finished job serves its guides from disk
// without re-running, and every guide fetched through the recovered
// daemon is byte-identical to the pre-crash bytes — which
// TestJobLifecycleAndGuideByteIdentity separately pins to the fastgr
// CLI's output.
func TestCrashRecoveryAtEveryJournalPrefix(t *testing.T) {
	dir := t.TempDir()

	// Phase 1: a full workload. Distinct designs so re-execution has to
	// get each one right, small scales so the sweep stays fast.
	specs := []JobSpec{
		{Design: "18test5m", Scale: 0.005},
		{Design: "18test8m", Scale: 0.005},
		{Design: "18test5m", Scale: 0.0075, Router: "fastgrh"},
	}
	s := startTestServer(t, Config{Dir: dir, Runners: 1})
	ids := make([]string, len(specs))
	for i, sp := range specs {
		ids[i] = submitJob(t, s, sp)
	}
	wantGuides := map[string][]byte{}
	for _, id := range ids {
		if j := waitTerminal(t, s, id, 120*time.Second); j.State != StateDone {
			t.Fatalf("job %s ended %s: %s", id, j.State, j.Error)
		}
		code, b := fetchGuides(t, s, id)
		if code != http.StatusOK {
			t.Fatalf("guides %s: status %d", id, code)
		}
		wantGuides[id] = b
	}
	if err := s.Drain(time.Minute); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	raw, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	lines := bytes.Split(bytes.TrimRight(raw, "\n"), []byte("\n"))
	if len(lines) < 3*len(specs) {
		t.Fatalf("journal has %d records, want at least %d (submit+running+done per job)", len(lines), 3*len(specs))
	}

	// Track, per prefix, what a correct ledger must contain.
	type expect struct {
		state   string
		hasDone bool
	}
	// Phase 2: every prefix must reopen consistently.
	midPrefix := -1
	for k := 0; k <= len(lines); k++ {
		want := map[string]*expect{}
		var order []string
		for _, line := range lines[:k] {
			var rec journalRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				t.Fatalf("prefix %d: bad journal line: %v", k, err)
			}
			switch rec.Kind {
			case "submit":
				if want[rec.ID] != nil {
					t.Fatalf("prefix %d: duplicate submit for %s in journal", k, rec.ID)
				}
				want[rec.ID] = &expect{state: StateQueued}
				order = append(order, rec.ID)
			case "state":
				want[rec.ID].state = rec.State
				if rec.State == StateDone {
					want[rec.ID].hasDone = true
				}
			}
		}

		pdir := t.TempDir()
		if k > 0 {
			prefix := append(bytes.Join(lines[:k], []byte("\n")), '\n')
			if err := os.WriteFile(filepath.Join(pdir, journalName), prefix, 0o644); err != nil {
				t.Fatalf("prefix %d: write: %v", k, err)
			}
		}
		// A real crash that journaled "done" necessarily wrote the guides
		// first (runJob's write ordering), so the simulation copies them.
		for id, e := range want {
			if e.hasDone {
				b, err := os.ReadFile(filepath.Join(dir, id+".guides"))
				if err != nil {
					t.Fatalf("prefix %d: source guides for %s: %v", k, id, err)
				}
				if err := os.WriteFile(filepath.Join(pdir, id+".guides"), b, 0o644); err != nil {
					t.Fatalf("prefix %d: copy guides: %v", k, err)
				}
			}
		}

		st, err := OpenStore(pdir)
		if err != nil {
			t.Fatalf("prefix %d: OpenStore: %v", k, err)
		}
		jobs := st.List()
		if len(jobs) != len(order) {
			t.Fatalf("prefix %d: %d jobs in store, %d submitted — lost or duplicated", k, len(jobs), len(order))
		}
		seen := map[string]bool{}
		for _, j := range jobs {
			if seen[j.ID] {
				t.Fatalf("prefix %d: job %s duplicated", k, j.ID)
			}
			seen[j.ID] = true
			e := want[j.ID]
			if e == nil {
				t.Fatalf("prefix %d: job %s appeared from nowhere", k, j.ID)
			}
			switch {
			case terminal(e.state):
				if j.State != e.state {
					t.Fatalf("prefix %d: job %s replayed to %s, journal says %s", k, j.ID, j.State, e.state)
				}
			default:
				// queued or running at the crash: must come back queued
				// and flagged for requeue.
				if j.State != StateQueued || !j.Recovered {
					t.Fatalf("prefix %d: in-flight job %s replayed to %s (recovered %v), want queued+recovered",
						k, j.ID, j.State, j.Recovered)
				}
			}
		}
		recov := st.Recovered()
		nq := 0
		for _, e := range want {
			if !terminal(e.state) {
				nq++
			}
		}
		if len(recov) != nq {
			t.Fatalf("prefix %d: Recovered() returned %d jobs, want %d", k, len(recov), nq)
		}

		// Remember a prefix where job 1 finished but job 2 was mid-run:
		// the interesting restart below.
		if midPrefix < 0 && len(order) >= 2 {
			e1, e2 := want[order[0]], want[order[1]]
			if e1 != nil && e1.hasDone && e2 != nil && e2.state == StateRunning {
				midPrefix = k
			}
		}
	}
	if midPrefix < 0 {
		t.Fatal("no journal prefix has job 1 done and job 2 running — workload too small?")
	}

	// Phase 3: full daemon restart from the mid-flight prefix.
	rdir := t.TempDir()
	prefix := append(bytes.Join(lines[:midPrefix], []byte("\n")), '\n')
	if err := os.WriteFile(filepath.Join(rdir, journalName), prefix, 0o644); err != nil {
		t.Fatalf("write mid prefix: %v", err)
	}
	doneGuides, err := os.ReadFile(filepath.Join(dir, ids[0]+".guides"))
	if err != nil {
		t.Fatalf("read done-job guides: %v", err)
	}
	if err := os.WriteFile(filepath.Join(rdir, ids[0]+".guides"), doneGuides, 0o644); err != nil {
		t.Fatalf("copy done-job guides: %v", err)
	}
	// Stamp the artifact so re-execution would be detectable: the done
	// job must be served from disk, not re-routed.
	marker := append([]byte("# recovered-from-disk\n"), doneGuides...)
	if err := os.WriteFile(filepath.Join(rdir, ids[0]+".guides"), marker, 0o644); err != nil {
		t.Fatalf("stamp guides: %v", err)
	}

	rs := startTestServer(t, Config{Dir: rdir, Runners: 2})
	for _, id := range ids {
		if j := waitTerminal(t, rs, id, 180*time.Second); j.State != StateDone {
			t.Fatalf("recovered job %s ended %s: %s", id, j.State, j.Error)
		}
	}
	// The pre-crash-done job serves its (stamped) artifact untouched…
	if code, b := fetchGuides(t, rs, ids[0]); code != http.StatusOK || !bytes.Equal(b, marker) {
		t.Fatalf("done job %s re-executed or lost its artifact (status %d, %d bytes)", ids[0], code, len(b))
	}
	// …and the re-executed jobs reproduce the pre-crash bytes exactly.
	for _, id := range ids[1:] {
		code, b := fetchGuides(t, rs, id)
		if code != http.StatusOK {
			t.Fatalf("recovered guides %s: status %d", id, code)
		}
		if !bytes.Equal(b, wantGuides[id]) {
			t.Fatalf("job %s: recovered guides differ from pre-crash guides (%d vs %d bytes)",
				id, len(b), len(wantGuides[id]))
		}
	}
	// Recovered-job accounting: the restarted daemon counted its requeues.
	recovered := rs.obs.M().Counter(obs.MServeRecovered)
	if recovered.Value() == 0 {
		t.Fatal("restart requeued jobs but serve.jobs.recovered is zero")
	}
}
