// Package serve is the routing-as-a-service layer behind cmd/fastgrd: a
// long-running daemon that accepts routing jobs over HTTP/JSON, runs
// them through internal/core on a fixed pool of runner goroutines, and
// survives overload, deadlines, SIGTERM and crashes.
//
// The robustness contracts, each pinned by its own test:
//
//   - Admission control: a bounded FIFO queue with per-job memory
//     estimates. A full queue rejects with 429 and a Retry-After
//     derived from observed job service times; the accept loop never
//     blocks on a runner.
//   - Deadlines + cancellation: DELETE /v1/jobs/{id} and per-job
//     timeout_ms cancel the run's context, which core.RouteContext
//     polls at coordinator checkpoints only — a completed run is
//     bit-identical with or without a deadline attached, and an
//     aborted one ends with a typed JobError plus the partial stats.
//   - Graceful drain: Drain stops admission (503), lets in-flight jobs
//     finish within a budget, then checkpoints the stragglers back to
//     queued — they re-run after the next start.
//   - Crash safety: every job transition is journaled through the
//     Store (internal/atomicio whole-file republish); a process killed
//     at any instant restarts with every job either terminal (guides
//     served from disk) or requeued. Guides are written to disk before
//     the done record, so a journaled "done" always has its artifact.
//
// Job endpoints (mounted beside the opsrv ops endpoints on one mux):
//
//	POST   /v1/jobs             submit a JobSpec        → 202 {id}
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status JSON
//	GET    /v1/jobs/{id}/guides routing guides of a done job
//	DELETE /v1/jobs/{id}        cancel a queued or running job
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"fastgr/internal/core"
	"fastgr/internal/fault"
	"fastgr/internal/obs"
	"fastgr/internal/obs/opsrv"
)

// Config sizes the daemon. The zero Config is valid: every field has a
// serviceable default and Dir falls back to the OS temp dir pattern
// only in tests — production callers should always set Dir.
type Config struct {
	// Dir is the state directory: the job journal and guide artifacts.
	Dir string
	// Runners is the number of concurrent routing jobs (default 2).
	Runners int
	// QueueCap bounds queued-plus-running jobs (default 16); MaxBytes
	// bounds their summed memory estimates (default 4 GiB).
	QueueCap int
	MaxBytes int64
	// Obs supplies the daemon's metrics registry and health tracker;
	// nil builds a private one. Job runs attach the same registry, so
	// /metrics aggregates routing internals across jobs.
	Obs *obs.Observer
	// StallAfter configures /healthz stall detection (see opsrv).
	StallAfter time.Duration
	// DefaultServiceEstimate seeds the Retry-After estimate before any
	// job has completed (default 2s).
	DefaultServiceEstimate time.Duration
}

// Server is a running daemon.
type Server struct {
	cfg   Config
	obs   *obs.Observer
	store *Store
	q     *queue
	mux   *http.ServeMux

	ln  net.Listener
	srv *http.Server

	wg   sync.WaitGroup // runner goroutines
	quit chan struct{}  // closed to stop runners (drain)

	mu       sync.Mutex
	running  map[string]*runningJob
	draining bool
	requeue  bool // drain timed out: checkpoint in-flight jobs back to queued
}

// runningJob is the server's handle on an in-flight run.
type runningJob struct {
	cancel context.CancelFunc
}

// New builds a server over the state directory: opens (and replays) the
// store, requeues recovered jobs, and assembles the handler mux. It
// does not listen yet — Start does.
func New(cfg Config) (*Server, error) {
	if cfg.Runners <= 0 {
		cfg.Runners = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 4 << 30
	}
	if cfg.DefaultServiceEstimate <= 0 {
		cfg.DefaultServiceEstimate = 2 * time.Second
	}
	if cfg.Obs == nil {
		cfg.Obs = &obs.Observer{Metrics: obs.NewRegistry(), Health: obs.NewHealth()}
	}
	store, err := OpenStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		obs:     cfg.Obs,
		store:   store,
		q:       newQueue(cfg.QueueCap, cfg.MaxBytes),
		quit:    make(chan struct{}),
		running: map[string]*runningJob{},
	}
	for _, j := range store.Recovered() {
		jj := j
		// Recovered jobs bypass admission control: they were admitted
		// once and the journal is their ticket back in. The queue
		// reservation still happens so the budget stays truthful.
		s.q.mu.Lock()
		s.q.reserved++
		s.q.bytes += jj.bytes
		s.q.mu.Unlock()
		s.q.push(&jj)
		s.obs.M().Counter(obs.MServeRecovered).Add(1)
	}
	s.obs.M().Gauge(obs.MServeQueueDepth).Set(int64(s.q.depth()))
	s.mux = opsrv.Mux(opsrv.Config{Obs: s.obs, StallAfter: cfg.StallAfter})
	s.registerHandlers(s.mux)
	return s, nil
}

// Start listens on addr and serves until Drain or Close. The HTTP
// server carries the opsrv slow-client timeouts.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.srv = opsrv.NewHTTPServer(s.mux)
	for i := 0; i < s.cfg.Runners; i++ {
		s.wg.Add(1)
		go s.runnerLoop()
	}
	go s.srv.Serve(ln)
	return nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Drain shuts down gracefully: admission stops (submissions get 503),
// runners finish their current job if they can within the budget, and
// any job still in flight when the budget expires is checkpointed —
// cancelled at its next coordinator checkpoint and journaled back to
// queued so the next start re-runs it. Drain returns once the runners
// have exited and the listener is closed; a clean drain loses no jobs.
func (s *Server) Drain(budget time.Duration) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()
	close(s.quit)

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(budget):
		// Budget expired: flip in-flight jobs to requeue-on-cancel and
		// fire their contexts; the runs stop at their next checkpoint.
		s.mu.Lock()
		s.requeue = true
		for _, rj := range s.running {
			rj.cancel()
		}
		s.mu.Unlock()
		<-done
	}
	if s.srv != nil {
		return s.srv.Close()
	}
	return nil
}

// Close stops immediately: running jobs are cancelled and journaled
// back to queued (crash-equivalent but journaled; either way replay
// requeues them), the listener closes. For tests and fatal paths —
// production shutdown is Drain.
func (s *Server) Close() error {
	s.mu.Lock()
	wasDraining := s.draining
	s.draining = true
	s.requeue = true
	for _, rj := range s.running {
		rj.cancel()
	}
	s.mu.Unlock()
	if !wasDraining {
		close(s.quit)
	}
	s.wg.Wait()
	if s.srv != nil {
		return s.srv.Close()
	}
	return nil
}

// runnerLoop pops jobs until the quit signal. A nil channel read never
// happens: push only sends admitted jobs.
func (s *Server) runnerLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case j := <-s.q.ch:
			s.obs.M().Gauge(obs.MServeQueueDepth).Set(int64(s.q.depth()))
			s.runJob(j)
		}
	}
}

// runJob executes one popped job through core.RouteContext and journals
// its terminal state (or requeues it under a drain checkpoint).
func (s *Server) runJob(j *Job) {
	defer s.q.release(j.bytes)

	// A DELETE that landed while the job sat in the queue already
	// journaled the cancelled state; nothing to run.
	if cur, ok := s.store.Get(j.ID); !ok || terminal(cur.State) {
		return
	}
	if _, err := s.store.SetState(j.ID, StateRunning, "", nil); err != nil {
		return
	}

	var ctx context.Context
	var cancel context.CancelFunc
	if j.Spec.TimeoutMs > 0 {
		// The deadline is a duration from the spec, not wall arithmetic —
		// the run's determinism contract never sees a clock reading.
		ctx, cancel = context.WithTimeout(context.Background(), time.Duration(j.Spec.TimeoutMs)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	s.mu.Lock()
	s.running[j.ID] = &runningJob{cancel: cancel}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.running, j.ID)
		s.mu.Unlock()
		cancel()
	}()

	sw := obs.StartStopwatch()
	res, runErr := s.execute(ctx, j)
	serviceMs := sw.Elapsed().Milliseconds()
	s.obs.M().Histogram(obs.MServeJobNs, obs.Pow2Buckets(1<<20, 24)).
		Observe(sw.Elapsed().Nanoseconds())
	if res != nil {
		res.ServiceMs = serviceMs
	}

	var ce *core.CancelError
	switch {
	case runErr == nil:
		s.store.SetState(j.ID, StateDone, "", res)
		s.obs.M().Counter(obs.MServeDone).Add(1)
	case errors.As(runErr, &ce):
		s.mu.Lock()
		requeue := s.requeue
		s.mu.Unlock()
		if requeue {
			// Drain checkpoint: the run stopped cleanly at a coordinator
			// point; journal the job back to queued for the next start.
			s.store.SetState(j.ID, StateQueued, "", nil)
			return
		}
		if s.store.CancelRequested(j.ID) {
			je := &JobError{ID: j.ID, State: StateCancelled, Stage: ce.Stage, Iter: ce.Iter, Cause: ce.Cause.Error()}
			s.store.SetState(j.ID, StateCancelled, je.Error(), res)
			s.obs.M().Counter(obs.MServeCancelled).Add(1)
			return
		}
		je := &JobError{ID: j.ID, State: StateFailed, Stage: ce.Stage, Iter: ce.Iter, Cause: ce.Cause.Error()}
		s.store.SetState(j.ID, StateFailed, je.Error(), res)
		s.obs.M().Counter(obs.MServeFailed).Add(1)
	default:
		s.store.SetState(j.ID, StateFailed, runErr.Error(), res)
		s.obs.M().Counter(obs.MServeFailed).Add(1)
	}
}

// execute routes the job's design and, on full completion, writes its
// guides to disk BEFORE returning — the caller journals "done" only
// after this returns nil, so a journaled done record always has its
// guides artifact (the recovery proof leans on that ordering). The
// returned JobResult is non-nil whenever core produced a Result,
// including the partial result of a cancelled run.
func (s *Server) execute(ctx context.Context, j *Job) (*JobResult, error) {
	d, err := j.Spec.buildDesign()
	if err != nil {
		return nil, err
	}
	opt := j.Spec.options()
	// Jobs share the daemon's metrics registry and health tracker but
	// not its tracer (per-job lanes would collide across runners).
	opt.Obs = &obs.Observer{Metrics: s.obs.M(), Health: s.obs.H()}
	var fc *fault.Containment
	if j.Spec.faultsArmed() {
		// Build the containment layer here rather than letting core do
		// it, so the per-site accounting survives the run: transient
		// failures retry inside core through this layer, and the job's
		// status JSON reports the sites that bled.
		fo := j.Spec.faultOptions()
		fc = fault.New(fo, opt.Obs)
		opt.Containment = fc
	}
	res, runErr := core.RouteContext(ctx, d, opt)
	if res == nil {
		return nil, runErr
	}
	jr := &JobResult{
		Wirelength: res.Report.Quality.Wirelength,
		Vias:       res.Report.Quality.Vias,
		Overflow:   res.Report.Quality.Shorts,
		Score:      res.Report.Score,
		Fault:      res.Report.Fault,
		FaultSites: fc.Snapshot(),
		Partial:    runErr != nil,
		RRRIters:   len(res.Report.RRR),
	}
	if runErr != nil {
		return jr, runErr
	}
	if err := writeGuides(s.store.GuidePath(j.ID), res); err != nil {
		return jr, fmt.Errorf("serve: guides for %s: %w", j.ID, err)
	}
	return jr, nil
}

// retryAfterSeconds estimates when a rejected client should try again:
// the mean observed job service time (or the configured default before
// any job finished) times the number of jobs ahead of it per runner,
// clamped to [1s, 1h]. Wall-derived and advisory by construction — it
// shapes client politeness, never a routed result.
func (s *Server) retryAfterSeconds() int {
	h := s.obs.M().Histogram(obs.MServeJobNs, obs.Pow2Buckets(1<<20, 24))
	meanNs := float64(s.cfg.DefaultServiceEstimate.Nanoseconds())
	if n := h.Count(); n > 0 {
		meanNs = float64(h.Sum()) / float64(n)
	}
	s.q.mu.Lock()
	ahead := s.q.reserved
	s.q.mu.Unlock()
	waves := float64(ahead)/float64(s.cfg.Runners) + 1
	sec := int(meanNs * waves / float64(time.Second))
	if sec < 1 {
		sec = 1
	}
	if sec > 3600 {
		sec = 3600
	}
	return sec
}
