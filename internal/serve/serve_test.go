package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"fastgr/internal/core"
	"fastgr/internal/design"
	"fastgr/internal/guide"
)

// startTestServer boots a daemon on an ephemeral port over a fresh
// temp state dir and tears it down with the test.
func startTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func submitJob(t *testing.T, s *Server, spec JobSpec) string {
	t.Helper()
	id, code, body := trySubmit(t, s, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", code, body)
	}
	return id
}

func trySubmit(t *testing.T, s *Server, spec JobSpec) (id string, code int, body string) {
	t.Helper()
	raw, _ := json.Marshal(spec)
	resp, err := http.Post("http://"+s.Addr()+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusAccepted {
		var sr submitResponse
		if err := json.Unmarshal(b, &sr); err != nil {
			t.Fatalf("submit response: %v (%s)", err, b)
		}
		return sr.ID, resp.StatusCode, string(b)
	}
	return "", resp.StatusCode, string(b)
}

func getJob(t *testing.T, s *Server, id string) Job {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET job %s: status %d body %s", id, resp.StatusCode, b)
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatalf("job decode: %v", err)
	}
	return j
}

// waitJob polls until the job's state satisfies pred.
func waitJob(t *testing.T, s *Server, id string, pred func(Job) bool, within time.Duration) Job {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		j := getJob(t, s, id)
		if pred(j) {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s (error %q)", id, j.State, j.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitTerminal(t *testing.T, s *Server, id string, within time.Duration) Job {
	t.Helper()
	return waitJob(t, s, id, func(j Job) bool { return terminal(j.State) }, within)
}

func fetchGuides(t *testing.T, s *Server, id string) (int, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + "/v1/jobs/" + id + "/guides")
	if err != nil {
		t.Fatalf("GET guides: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// cliGuideBytes routes the named benchmark exactly as the fastgr CLI
// would (same defaulting, same threshold scaling, same guide writer)
// and returns the guide bytes — the reference for the byte-identity
// contract.
func cliGuideBytes(t *testing.T, name string, scale float64) []byte {
	t.Helper()
	d, err := design.Generate(name, scale)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	opt := core.DefaultOptions(core.FastGRL)
	opt.T1 = scaleThreshold(100, scale)
	opt.T2 = scaleThreshold(500, scale)
	res, err := core.Route(d, opt)
	if err != nil {
		t.Fatalf("route: %v", err)
	}
	guides := guide.FromResult(res)
	if err := guide.Covers(res, guides); err != nil {
		t.Fatalf("guide contract: %v", err)
	}
	var buf bytes.Buffer
	if err := guide.Write(&buf, guides); err != nil {
		t.Fatalf("guide write: %v", err)
	}
	return buf.Bytes()
}

func TestJobLifecycleAndGuideByteIdentity(t *testing.T) {
	s := startTestServer(t, Config{})
	id := submitJob(t, s, JobSpec{Design: "18test5m", Scale: 0.005})
	j := waitTerminal(t, s, id, 60*time.Second)
	if j.State != StateDone {
		t.Fatalf("job ended %s: %s", j.State, j.Error)
	}
	if j.Result == nil || j.Result.Wirelength == 0 {
		t.Fatalf("done job has no result: %+v", j.Result)
	}
	if j.Result.Partial {
		t.Fatal("completed job marked partial")
	}

	code, got := fetchGuides(t, s, id)
	if code != http.StatusOK {
		t.Fatalf("guides status %d", code)
	}
	want := cliGuideBytes(t, "18test5m", 0.005)
	if !bytes.Equal(got, want) {
		t.Fatalf("daemon guides differ from CLI-path guides: %d vs %d bytes", len(got), len(want))
	}

	// The status endpoint must also serve uploaded designs.
	var buf bytes.Buffer
	d, _ := design.Generate("18test8m", 0.005)
	if err := design.Write(&buf, d); err != nil {
		t.Fatalf("design write: %v", err)
	}
	id2 := submitJob(t, s, JobSpec{DesignText: buf.String()})
	j2 := waitTerminal(t, s, id2, 60*time.Second)
	if j2.State != StateDone {
		t.Fatalf("uploaded-design job ended %s: %s", j2.State, j2.Error)
	}
}

func TestGuidesUnavailableBeforeDone(t *testing.T) {
	// One runner pinned by a slow job keeps the second job queued.
	s := startTestServer(t, Config{Runners: 1})
	blocker := submitJob(t, s, JobSpec{Design: "18test5m", Scale: 0.02})
	queued := submitJob(t, s, JobSpec{Design: "18test5m", Scale: 0.005})
	if code, body := fetchGuides(t, s, queued); code != http.StatusConflict {
		t.Fatalf("guides of queued job: status %d body %s", code, body)
	}
	waitTerminal(t, s, blocker, 120*time.Second)
	waitTerminal(t, s, queued, 120*time.Second)
}

func TestCancelQueuedJob(t *testing.T) {
	s := startTestServer(t, Config{Runners: 1})
	blocker := submitJob(t, s, JobSpec{Design: "18test5m", Scale: 0.02})
	target := submitJob(t, s, JobSpec{Design: "18test5m", Scale: 0.005})

	req, _ := http.NewRequest(http.MethodDelete, "http://"+s.Addr()+"/v1/jobs/"+target, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE queued job: status %d", resp.StatusCode)
	}
	j := waitTerminal(t, s, target, 10*time.Second)
	if j.State != StateCancelled {
		t.Fatalf("cancelled queued job ended %s", j.State)
	}
	// The runner must skip the tombstone without flapping it back to
	// running, and the blocker must be unaffected.
	if b := waitTerminal(t, s, blocker, 120*time.Second); b.State != StateDone {
		t.Fatalf("blocker ended %s: %s", b.State, b.Error)
	}
	if j2 := getJob(t, s, target); j2.State != StateCancelled {
		t.Fatalf("cancelled job resurrected to %s", j2.State)
	}
}

func TestCancelRunningJobKeepsPartialStats(t *testing.T) {
	s := startTestServer(t, Config{})
	id := submitJob(t, s, JobSpec{Design: "18test5m", Scale: 0.05})
	waitJob(t, s, id, func(j Job) bool { return j.State == StateRunning }, 30*time.Second)

	req, _ := http.NewRequest(http.MethodDelete, "http://"+s.Addr()+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	j := waitTerminal(t, s, id, 120*time.Second)
	if j.State != StateCancelled {
		t.Fatalf("job ended %s (error %q), want cancelled", j.State, j.Error)
	}
	if !strings.Contains(j.Error, "cancelled") {
		t.Fatalf("cancelled job error %q lacks the typed JobError text", j.Error)
	}
	if j.Result != nil && !j.Result.Partial {
		t.Fatal("cancelled job carries a result not marked partial")
	}
}

func TestDeadlineFailsWithTypedError(t *testing.T) {
	s := startTestServer(t, Config{})
	// 1ms expires before the first coordinator checkpoint on any design.
	id := submitJob(t, s, JobSpec{Design: "18test5m", Scale: 0.005, TimeoutMs: 1})
	j := waitTerminal(t, s, id, 60*time.Second)
	if j.State != StateFailed {
		t.Fatalf("deadline job ended %s, want failed", j.State)
	}
	if !strings.Contains(j.Error, "deadline") {
		t.Fatalf("deadline error %q does not name the deadline", j.Error)
	}
	if !strings.Contains(j.Error, "failed at ") {
		t.Fatalf("deadline error %q does not name the stage checkpoint", j.Error)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := startTestServer(t, Config{})
	for _, bad := range []JobSpec{
		{Design: "no-such-design"},
		{Design: "18test5m", Scale: 7},
		{Design: "18test5m", Scale: 0.005, Router: "warp"},
		{Design: "18test5m", Scale: 0.005, MazeAlg: "bfs"},
		{Design: "18test5m", Scale: 0.005, FaultProb: 2},
		{Design: "18test5m", Scale: 0.005, TimeoutMs: -1},
	} {
		if _, code, _ := trySubmit(t, s, bad); code != http.StatusBadRequest {
			t.Errorf("spec %+v: status %d, want 400", bad, code)
		}
	}
	resp, err := http.Get("http://" + s.Addr() + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", resp.StatusCode)
	}
}

func TestFaultAccountingInStatus(t *testing.T) {
	s := startTestServer(t, Config{})
	id := submitJob(t, s, JobSpec{Design: "18test5m", Scale: 0.005, FaultProb: 0.05, FaultSeed: 42})
	j := waitTerminal(t, s, id, 120*time.Second)
	if j.State != StateDone {
		t.Fatalf("faulted job ended %s: %s", j.State, j.Error)
	}
	if j.Result == nil || len(j.Result.FaultSites) == 0 {
		t.Fatalf("faulted job reports no per-site accounting: %+v", j.Result)
	}
	var injected, recovered, degraded int64
	for site, st := range j.Result.FaultSites {
		if st.Injected < 0 || st.Recovered < 0 || st.Degraded < 0 {
			t.Fatalf("site %s has negative counters: %+v", site, st)
		}
		injected += st.Injected
		recovered += st.Recovered
		degraded += st.Degraded
	}
	if injected == 0 {
		t.Fatal("fault_prob 0.05 injected nothing across the run")
	}
	if injected != recovered+degraded {
		t.Fatalf("containment accounting broken: injected %d != recovered %d + degraded %d",
			injected, recovered, degraded)
	}
}

func TestListJobs(t *testing.T) {
	s := startTestServer(t, Config{})
	a := submitJob(t, s, JobSpec{Design: "18test5m", Scale: 0.005})
	b := submitJob(t, s, JobSpec{Design: "18test5m", Scale: 0.005, RRR: intp(0)})
	waitTerminal(t, s, a, 60*time.Second)
	waitTerminal(t, s, b, 60*time.Second)
	resp, err := http.Get("http://" + s.Addr() + "/v1/jobs")
	if err != nil {
		t.Fatalf("GET list: %v", err)
	}
	defer resp.Body.Close()
	var jobs []Job
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatalf("list decode: %v", err)
	}
	if len(jobs) != 2 || jobs[0].ID != a || jobs[1].ID != b {
		t.Fatalf("list = %v, want [%s %s] in submission order", ids(jobs), a, b)
	}
}

func ids(jobs []Job) []string {
	out := make([]string, len(jobs))
	for i, j := range jobs {
		out[i] = fmt.Sprintf("%s:%s", j.ID, j.State)
	}
	return out
}

func intp(v int) *int { return &v }
