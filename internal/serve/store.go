package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"fastgr/internal/atomicio"
)

// Store is the crash-safe job ledger. Every state transition is one
// JSON-lines record, and every append republishes the whole journal
// through internal/atomicio (temp file + rename), the obs.Journal
// pattern: a crash at any instant leaves a complete, parseable prefix
// of the transition history — never a torn line. OpenStore replays that
// prefix; because the replay maps running back to queued, any journal
// prefix reconstructs a consistent ledger where every job is either
// terminal (its guides are on disk — see the write ordering in runJob)
// or queued for re-execution. Jobs are never lost or duplicated: the
// submit record is journaled before the client learns the job ID, and
// IDs come from the journaled sequence.
//
// Journal record schema (one per line):
//
//	{"seq": 1, "kind": "submit", "id": "job-000001", "spec": {...}}
//	{"seq": 2, "kind": "state", "id": "job-000001", "state": "running"}
//	{"seq": 3, "kind": "state", "id": "job-000001", "state": "done",
//	 "result": {...}}
//
// seq increases by one per record; terminal state records carry the
// result and/or error. The cadence is a handful of records per job, so
// the quadratic rewrite cost is noise next to one routing run.
type Store struct {
	mu      sync.Mutex
	dir     string
	path    string
	buf     bytes.Buffer
	jobs    map[string]*Job
	order   []string // insertion order, for deterministic listings
	nextSeq int64
	nextID  int64
}

type journalRecord struct {
	Seq    int64      `json:"seq"`
	Kind   string     `json:"kind"` // "submit" or "state"
	ID     string     `json:"id"`
	Spec   *JobSpec   `json:"spec,omitempty"`
	State  string     `json:"state,omitempty"`
	Error  string     `json:"error,omitempty"`
	Result *JobResult `json:"result,omitempty"`
}

// journalName is the ledger file inside the store directory.
const journalName = "jobs.jsonl"

// OpenStore opens (creating if needed) the job store rooted at dir and
// replays its journal. Jobs whose last journaled state is queued or
// running come back queued with Recovered set — the caller requeues
// them; terminal jobs are served from the ledger (and their guides from
// disk) without re-execution.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:  dir,
		path: filepath.Join(dir, journalName),
		jobs: make(map[string]*Job),
	}
	raw, err := os.ReadFile(s.path)
	if err != nil {
		if os.IsNotExist(err) {
			return s, nil
		}
		return nil, err
	}
	for i, line := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("serve: journal %s line %d: %w", s.path, i+1, err)
		}
		s.replay(rec)
	}
	s.buf.Write(raw)
	if s.buf.Len() > 0 && raw[len(raw)-1] != '\n' {
		s.buf.WriteByte('\n')
	}
	for _, id := range s.order {
		j := s.jobs[id]
		if j.State == StateRunning {
			// The process died mid-run; the work is lost, the job is not.
			j.State = StateQueued
		}
		if j.State == StateQueued {
			j.Recovered = true
			j.bytes = j.Spec.estimateBytes()
		}
	}
	return s, nil
}

// Dir returns the store's root directory (guides live beside the journal).
func (s *Store) Dir() string { return s.dir }

// GuidePath returns where a job's guides file lives.
func (s *Store) GuidePath(id string) string {
	return filepath.Join(s.dir, id+".guides")
}

// replay applies one journal record to the in-memory ledger.
func (s *Store) replay(rec journalRecord) {
	if rec.Seq >= s.nextSeq {
		s.nextSeq = rec.Seq + 1
	}
	switch rec.Kind {
	case "submit":
		if rec.Spec == nil {
			return
		}
		j := &Job{ID: rec.ID, Spec: *rec.Spec, State: StateQueued}
		if _, dup := s.jobs[rec.ID]; dup {
			return
		}
		s.jobs[rec.ID] = j
		s.order = append(s.order, rec.ID)
		var n int64
		if _, err := fmt.Sscanf(rec.ID, "job-%d", &n); err == nil && n >= s.nextID {
			s.nextID = n
		}
	case "state":
		j := s.jobs[rec.ID]
		if j == nil {
			return
		}
		j.State = rec.State
		j.Error = rec.Error
		if rec.Result != nil {
			j.Result = rec.Result
		}
	}
}

// emit journals one record: append to the buffer, atomically republish
// the whole file. Called with the lock held.
func (s *Store) emit(rec journalRecord) error {
	rec.Seq = s.nextSeq
	s.nextSeq++
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	s.buf.Write(line)
	s.buf.WriteByte('\n')
	return atomicio.WriteFile(s.path, s.buf.Bytes())
}

// Submit journals a new job and returns it (a snapshot). The journal
// write happens before the caller sees the ID, so an accepted job is
// always recoverable.
func (s *Store) Submit(spec JobSpec, estBytes int64) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	j := &Job{
		ID:    fmt.Sprintf("job-%06d", s.nextID),
		Spec:  spec,
		State: StateQueued,
		bytes: estBytes,
	}
	if err := s.emit(journalRecord{Kind: "submit", ID: j.ID, Spec: &spec}); err != nil {
		s.nextID--
		return Job{}, err
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	return *j, nil
}

// SetState journals a state transition. Transitions out of a terminal
// state are refused (the first terminal record wins — a drain-requeue
// racing a DELETE cannot resurrect a cancelled job). It returns the
// state the job is left in.
func (s *Store) SetState(id, state, errText string, result *JobResult) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return "", fmt.Errorf("serve: unknown job %s", id)
	}
	if terminal(j.State) {
		return j.State, nil
	}
	if err := s.emit(journalRecord{Kind: "state", ID: id, State: state, Error: errText, Result: result}); err != nil {
		return j.State, err
	}
	j.State = state
	j.Error = errText
	if result != nil {
		j.Result = result
	}
	return state, nil
}

// Get returns a snapshot of one job.
func (s *Store) Get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// List returns snapshots of every job in submission order.
func (s *Store) List() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.jobs[id])
	}
	return out
}

// Recovered returns the jobs journal replay left queued, in submission
// order, for the server to requeue at startup.
func (s *Store) Recovered() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Job
	for _, id := range s.order {
		if j := s.jobs[id]; j.State == StateQueued && j.Recovered {
			out = append(out, *j)
		}
	}
	return out
}

// RequestCancel marks a job for cancellation. For a queued job it
// journals the cancelled state directly (the runner skips it on pop);
// for a running job it only flags the intent — the caller cancels the
// run's context and the runner journals the terminal state with the
// partial result. Returns the job's state as the cancel found it, so
// the handler can distinguish a fresh cancel from one landing on an
// already-terminal job.
func (s *Store) RequestCancel(id string) (string, bool) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return "", false
	}
	j.cancelRequested = true
	prev := j.State
	s.mu.Unlock()
	if prev == StateQueued {
		s.SetState(id, StateCancelled, "cancelled while queued", nil)
	}
	return prev, true
}

// CancelRequested reports whether a DELETE landed on the job.
func (s *Store) CancelRequested(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	return j != nil && j.cancelRequested
}
