// Package shard partitions the G-cell grid into rectangular regions for
// sharded routing — the partition-based parallelization GANGR argues is the
// path past a single monolithic cost field. A Plan is a recursive-bisection
// cut tree over pin density: leaves are the atomic routing regions, and
// Groups coarsens the leaves into K work groups for execution.
//
// Determinism contract. The cut tree is a pure function of the design and
// the maze margin — never of the shard count, the worker count, or any
// runtime state. K only selects how leaves are grouped for concurrent
// execution; every per-leaf decision (net classification, fragment
// splitting, intra-leaf work order) derives from the leaves alone, which is
// what makes routed output invariant across shard counts.
package shard

import (
	"fastgr/internal/design"
	"fastgr/internal/geom"
)

const (
	// MaxDepth bounds the bisection: at most 2^MaxDepth leaves.
	MaxDepth = 4
	// minLeafSideFloor is the smallest leaf edge regardless of margin.
	minLeafSideFloor = 8
)

// MinLeafSide is the smallest allowed leaf edge length for a given maze
// margin: a leaf must be able to contain a maze window inflated by the
// margin on both sides plus one interior cell.
func MinLeafSide(margin int) int {
	return geom.Max(minLeafSideFloor, 2*margin+2)
}

// node is one cut-tree vertex. Internal nodes carry their cut; leaves carry
// their ordinal in DFS (left-before-right) order.
type node struct {
	rect        geom.Rect
	pins        int
	left, right int // node ids; -1 on leaves
	leaf        int // leaf ordinal; -1 on internal nodes
}

// Plan is the cut tree plus its leaf list.
type Plan struct {
	W, H  int
	nodes []node
	root  int
	// leaves[i] is the node id of leaf ordinal i.
	leaves []int
}

// BuildPlan bisects the design's grid on pin density. margin is the maze
// window margin the router will use; it floors the leaf size so every
// intra-leaf maze window fits its leaf.
func BuildPlan(d *design.Design, margin int) *Plan {
	p := &Plan{W: d.GridW, H: d.GridH}
	minSide := MinLeafSide(margin)

	// Summed-area table over per-cell pin counts: sat[(y+1)*(W+1)+x+1] holds
	// the pin count of [0..x]×[0..y], so any rectangle sum is four reads.
	sat := make([]int64, (p.W+1)*(p.H+1))
	for _, n := range d.Nets {
		for _, pin := range n.Pins {
			if pin.Pos.X >= 0 && pin.Pos.X < p.W && pin.Pos.Y >= 0 && pin.Pos.Y < p.H {
				sat[(pin.Pos.Y+1)*(p.W+1)+pin.Pos.X+1]++
			}
		}
	}
	for y := 1; y <= p.H; y++ {
		row := y * (p.W + 1)
		prev := row - (p.W + 1)
		for x := 1; x <= p.W; x++ {
			sat[row+x] += sat[row+x-1] + sat[prev+x] - sat[prev+x-1]
		}
	}
	rectPins := func(r geom.Rect) int64 {
		w1 := p.W + 1
		return sat[(r.Hi.Y+1)*w1+r.Hi.X+1] - sat[(r.Hi.Y+1)*w1+r.Lo.X] -
			sat[r.Lo.Y*w1+r.Hi.X+1] + sat[r.Lo.Y*w1+r.Lo.X]
	}

	var build func(r geom.Rect, depth int) int
	build = func(r geom.Rect, depth int) int {
		id := len(p.nodes)
		p.nodes = append(p.nodes, node{rect: r, pins: int(rectPins(r)), left: -1, right: -1, leaf: -1})
		if depth >= MaxDepth {
			return id
		}
		// Cut across the longer side; ties cut X (a vertical cut line).
		cutX := r.Width() >= r.Height()
		var lo, hi int
		if cutX {
			lo, hi = r.Lo.X, r.Hi.X
		} else {
			lo, hi = r.Lo.Y, r.Hi.Y
		}
		cutLo, cutHi := lo+minSide-1, hi-minSide
		if cutLo > cutHi {
			return id
		}
		cut := weightedMedian(r, cutX, lo, hi, rectPins)
		cut = geom.Clamp(cut, cutLo, cutHi)
		var a, b geom.Rect
		if cutX {
			a = geom.Rect{Lo: r.Lo, Hi: geom.Point{X: cut, Y: r.Hi.Y}}
			b = geom.Rect{Lo: geom.Point{X: cut + 1, Y: r.Lo.Y}, Hi: r.Hi}
		} else {
			a = geom.Rect{Lo: r.Lo, Hi: geom.Point{X: r.Hi.X, Y: cut}}
			b = geom.Rect{Lo: geom.Point{X: r.Lo.X, Y: cut + 1}, Hi: r.Hi}
		}
		left := build(a, depth+1)
		right := build(b, depth+1)
		p.nodes[id].left, p.nodes[id].right = left, right
		return id
	}
	p.root = build(geom.Rect{Hi: geom.Point{X: p.W - 1, Y: p.H - 1}}, 0)

	// Number the leaves in DFS order, left before right.
	var collect func(id int)
	collect = func(id int) {
		n := &p.nodes[id]
		if n.left < 0 {
			n.leaf = len(p.leaves)
			p.leaves = append(p.leaves, id)
			return
		}
		collect(n.left)
		collect(n.right)
	}
	collect(p.root)
	return p
}

// weightedMedian returns the smallest coordinate c along the cut axis such
// that the pins of r at coordinates <= c reach half of r's total; the
// middle of the span when r holds no pins.
func weightedMedian(r geom.Rect, cutX bool, lo, hi int, rectPins func(geom.Rect) int64) int {
	total := rectPins(r)
	if total == 0 {
		return (lo + hi) / 2
	}
	half := (total + 1) / 2
	// Binary search on the prefix sum, which is monotone in c.
	c := lo
	for s, e := lo, hi; s <= e; {
		m := (s + e) / 2
		var pre geom.Rect
		if cutX {
			pre = geom.Rect{Lo: r.Lo, Hi: geom.Point{X: m, Y: r.Hi.Y}}
		} else {
			pre = geom.Rect{Lo: r.Lo, Hi: geom.Point{X: r.Hi.X, Y: m}}
		}
		if rectPins(pre) >= half {
			c = m
			e = m - 1
		} else {
			s = m + 1
		}
	}
	return c
}

// NumLeaves returns the number of atomic regions.
func (p *Plan) NumLeaves() int { return len(p.leaves) }

// Leaf returns the rectangle of leaf ordinal i.
func (p *Plan) Leaf(i int) geom.Rect { return p.nodes[p.leaves[i]].rect }

// LeafPins returns the pin count inside leaf ordinal i.
func (p *Plan) LeafPins(i int) int { return p.nodes[p.leaves[i]].pins }

// LeafContaining returns the ordinal of the leaf holding pt. The cut tree
// tiles the grid, so every in-bounds point lies in exactly one leaf.
func (p *Plan) LeafContaining(pt geom.Point) int {
	id := p.root
	for p.nodes[id].left >= 0 {
		if p.nodes[p.nodes[id].left].rect.Contains(pt) {
			id = p.nodes[id].left
		} else {
			id = p.nodes[id].right
		}
	}
	return p.nodes[id].leaf
}

// Groups coarsens the leaves into at most k contiguous groups for
// execution: starting from the root, the internal node with the most pins
// (ties to the lower node id) is expanded into its two children until k
// parts exist or every part is a leaf. Each group is a cut-tree node, so
// its leaves form a contiguous ordinal range and its footprint is a
// rectangle. The result is a pure function of (plan, k).
func (p *Plan) Groups(k int) [][]int {
	if k < 1 {
		k = 1
	}
	parts := []int{p.root}
	for len(parts) < k {
		best := -1
		for i, id := range parts {
			if p.nodes[id].left < 0 {
				continue
			}
			if best < 0 || p.nodes[id].pins > p.nodes[parts[best]].pins ||
				(p.nodes[id].pins == p.nodes[parts[best]].pins && id < parts[best]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		id := parts[best]
		expanded := make([]int, 0, len(parts)+1)
		expanded = append(expanded, parts[:best]...)
		expanded = append(expanded, p.nodes[id].left, p.nodes[id].right)
		expanded = append(expanded, parts[best+1:]...)
		parts = expanded
	}
	groups := make([][]int, len(parts))
	for i, id := range parts {
		groups[i] = p.leavesUnder(id)
	}
	return groups
}

// leavesUnder lists the leaf ordinals below node id in DFS order.
func (p *Plan) leavesUnder(id int) []int {
	n := &p.nodes[id]
	if n.left < 0 {
		return []int{n.leaf}
	}
	return append(p.leavesUnder(n.left), p.leavesUnder(n.right)...)
}
