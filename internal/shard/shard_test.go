package shard

import (
	"testing"

	"fastgr/internal/design"
	"fastgr/internal/geom"
)

// testDesign builds a small design with pins clustered so the bisection
// has real density to follow.
func testDesign(w, h int) *design.Design {
	d := &design.Design{
		Name:          "shardtest",
		GridW:         w,
		GridH:         h,
		NumLayers:     3,
		LayerCapacity: []int{1, 8, 8},
		ViaCapacity:   8,
	}
	id := 0
	addNet := func(pts ...geom.Point) {
		n := &design.Net{ID: id, Name: "n"}
		for _, p := range pts {
			n.Pins = append(n.Pins, design.Pin{Pos: p, Layer: 1})
		}
		d.Nets = append(d.Nets, n)
		id++
	}
	for i := 0; i < 40; i++ {
		// A dense cluster near the origin and a sparse spread elsewhere.
		addNet(geom.Point{X: i % 7, Y: (i * 3) % 11},
			geom.Point{X: (i * 5) % w, Y: (i * 7) % h})
	}
	return d
}

// TestBuildPlanTiles checks the structural invariants of the cut tree: the
// leaves tile the grid exactly (every cell in exactly one leaf), and every
// leaf respects the minimum side length.
func TestBuildPlanTiles(t *testing.T) {
	for _, margin := range []int{0, 4, 9} {
		d := testDesign(64, 48)
		p := BuildPlan(d, margin)
		if p.NumLeaves() < 2 {
			t.Fatalf("margin %d: expected a real partition, got %d leaves", margin, p.NumLeaves())
		}
		minSide := MinLeafSide(margin)
		area := 0
		for i := 0; i < p.NumLeaves(); i++ {
			r := p.Leaf(i)
			if r.Width() < minSide || r.Height() < minSide {
				t.Errorf("margin %d: leaf %d %v smaller than min side %d", margin, i, r, minSide)
			}
			area += r.Area()
			for j := i + 1; j < p.NumLeaves(); j++ {
				if r.Overlaps(p.Leaf(j)) {
					t.Errorf("margin %d: leaves %d and %d overlap", margin, i, j)
				}
			}
		}
		if area != 64*48 {
			t.Errorf("margin %d: leaves cover %d cells, grid has %d", margin, area, 64*48)
		}
		for y := 0; y < 48; y += 5 {
			for x := 0; x < 64; x += 5 {
				pt := geom.Point{X: x, Y: y}
				leaf := p.LeafContaining(pt)
				if !p.Leaf(leaf).Contains(pt) {
					t.Fatalf("LeafContaining(%v) = %d, but leaf rect %v misses it", pt, leaf, p.Leaf(leaf))
				}
			}
		}
	}
}

// TestGroupsPartition checks that Groups(k) partitions the leaf ordinals
// into contiguous ascending ranges for every k, and that the leaf set
// itself — identity, order, rectangles — never depends on k. That
// independence is the heart of the shard-count-invariance contract.
func TestGroupsPartition(t *testing.T) {
	d := testDesign(96, 96)
	p := BuildPlan(d, 4)
	for k := 1; k <= 2*p.NumLeaves(); k++ {
		groups := p.Groups(k)
		want := geom.Min(k, p.NumLeaves())
		if len(groups) != want {
			t.Fatalf("Groups(%d): got %d groups, want %d", k, len(groups), want)
		}
		next := 0
		for gi, g := range groups {
			if len(g) == 0 {
				t.Fatalf("Groups(%d): group %d empty", k, gi)
			}
			for _, leaf := range g {
				if leaf != next {
					t.Fatalf("Groups(%d): group %d holds leaf %d, want contiguous %d", k, gi, leaf, next)
				}
				next++
			}
		}
		if next != p.NumLeaves() {
			t.Fatalf("Groups(%d): covered %d leaves of %d", k, next, p.NumLeaves())
		}
	}
}

// TestPlanIsPureFunction rebuilds the plan and checks leaf-for-leaf
// equality: nothing about the partition may depend on runtime state.
func TestPlanIsPureFunction(t *testing.T) {
	a := BuildPlan(testDesign(80, 60), 4)
	b := BuildPlan(testDesign(80, 60), 4)
	if a.NumLeaves() != b.NumLeaves() {
		t.Fatalf("leaf counts differ: %d vs %d", a.NumLeaves(), b.NumLeaves())
	}
	for i := 0; i < a.NumLeaves(); i++ {
		if a.Leaf(i) != b.Leaf(i) {
			t.Fatalf("leaf %d differs: %v vs %v", i, a.Leaf(i), b.Leaf(i))
		}
	}
}
