package shard

import (
	"fastgr/internal/geom"
	"fastgr/internal/stt"
)

// Crossing is one grid edge where a net's canonical path steps from one
// leaf into an adjacent one — the deterministic halo point the fragments
// are cut at. A and B are adjacent G-cells in different leaves, in the
// order the splitting walk discovered them.
type Crossing struct {
	A, B geom.Point
}

// Fragment is the portion of one net that lies inside one leaf: one or more
// Steiner trees (the leaf may hold several disconnected pieces of the net).
type Fragment struct {
	Leaf  int
	Trees []*stt.Tree
}

// Split is the decomposition of one boundary net across leaves.
type Split struct {
	NetID     int
	Fragments []Fragment // ascending leaf ordinal
	Crossings []Crossing // discovery order, deduplicated
}

// LeafOf returns the ordinal of the leaf fully containing r, or -1 when r
// straddles a cut — the intra/boundary classifier.
func (p *Plan) LeafOf(r geom.Rect) int {
	leaf := p.LeafContaining(r.Lo)
	if p.Leaf(leaf).ContainsRect(r) {
		return leaf
	}
	return -1
}

// leafBuilder accumulates one leaf's chain endpoints and chain edges in
// insertion order (maps only deduplicate; iteration never ranges over them).
type leafBuilder struct {
	nodes   []geom.Point
	nodeIdx map[geom.Point]int
	edges   [][2]int
	edgeSet map[[2]int]bool
}

func (b *leafBuilder) node(p geom.Point) int {
	if i, ok := b.nodeIdx[p]; ok {
		return i
	}
	i := len(b.nodes)
	b.nodes = append(b.nodes, p)
	b.nodeIdx[p] = i
	return i
}

func (b *leafBuilder) edge(a, c int) {
	if a == c {
		return
	}
	k := [2]int{geom.Min(a, c), geom.Max(a, c)}
	if !b.edgeSet[k] {
		b.edgeSet[k] = true
		b.edges = append(b.edges, k)
	}
}

// SplitTree cuts a boundary net's Steiner tree at the leaf boundaries its
// canonical paths cross. Each tree edge is walked along its horizontal-first
// L-path; every maximal same-leaf run of cells becomes a chain registered in
// that leaf, and every step between leaves becomes a Crossing. Per leaf, the
// chains' connected components are rebuilt into Steiner trees whose chain
// endpoints inside a cut carry no pins (pseudo terminals). The result is a
// pure function of (plan, tree): it never depends on shard count, worker
// count, or grid state.
func SplitTree(p *Plan, t *stt.Tree) *Split {
	s := &Split{NetID: t.NetID}

	pinLayers := make(map[geom.Point][]int)
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.IsPin() {
			pinLayers[n.Pos] = append(pinLayers[n.Pos], n.PinLayers...)
		}
	}

	builders := make(map[int]*leafBuilder)
	var leafOrder []int
	builderFor := func(leaf int) *leafBuilder {
		if b, ok := builders[leaf]; ok {
			return b
		}
		b := &leafBuilder{nodeIdx: make(map[geom.Point]int), edgeSet: make(map[[2]int]bool)}
		builders[leaf] = b
		leafOrder = append(leafOrder, leaf)
		return b
	}
	crossSeen := make(map[[2]geom.Point]bool)

	walk := func(c, q geom.Point) {
		cells := lPathCells(c, q)
		chainStart := 0
		leafPrev := p.LeafContaining(cells[0])
		for i := 1; i < len(cells); i++ {
			leaf := p.LeafContaining(cells[i])
			if leaf == leafPrev {
				continue
			}
			b := builderFor(leafPrev)
			b.edge(b.node(cells[chainStart]), b.node(cells[i-1]))
			key := [2]geom.Point{cells[i-1], cells[i]}
			if cells[i].X < cells[i-1].X || cells[i].Y < cells[i-1].Y {
				key = [2]geom.Point{cells[i], cells[i-1]}
			}
			if !crossSeen[key] {
				crossSeen[key] = true
				s.Crossings = append(s.Crossings, Crossing{A: cells[i-1], B: cells[i]})
			}
			chainStart, leafPrev = i, leaf
		}
		b := builderFor(leafPrev)
		b.edge(b.node(cells[chainStart]), b.node(cells[len(cells)-1]))
	}
	for i := range t.Nodes {
		if par := t.Nodes[i].Parent; par >= 0 {
			walk(t.Nodes[i].Pos, t.Nodes[par].Pos)
		}
	}
	if len(t.Nodes) == 1 {
		// A degenerate single-node tree registers its lone position so the
		// fragment set is never empty.
		b := builderFor(p.LeafContaining(t.Nodes[0].Pos))
		b.node(t.Nodes[0].Pos)
	}

	// Emit fragments in ascending leaf order; within a leaf, connected
	// components of the chain graph in node-insertion order.
	leaves := append([]int(nil), leafOrder...)
	for i := 1; i < len(leaves); i++ {
		for j := i; j > 0 && leaves[j] < leaves[j-1]; j-- {
			leaves[j], leaves[j-1] = leaves[j-1], leaves[j]
		}
	}
	for _, leaf := range leaves {
		b := builders[leaf]
		frag := Fragment{Leaf: leaf}
		adj := make([][]int, len(b.nodes))
		for _, e := range b.edges {
			adj[e[0]] = append(adj[e[0]], e[1])
			adj[e[1]] = append(adj[e[1]], e[0])
		}
		visited := make([]bool, len(b.nodes))
		for start := 0; start < len(b.nodes); start++ {
			if visited[start] {
				continue
			}
			comp := []int{start}
			visited[start] = true
			for qi := 0; qi < len(comp); qi++ {
				for _, nb := range adj[comp[qi]] {
					if !visited[nb] {
						visited[nb] = true
						comp = append(comp, nb)
					}
				}
			}
			frag.Trees = append(frag.Trees, buildFragTree(t.NetID, b, adj, comp, pinLayers))
		}
		s.Fragments = append(s.Fragments, frag)
	}
	return s
}

// buildFragTree assembles one connected component into a rooted Steiner
// tree. The root is the component's first pin-carrying node in insertion
// order, else its first node; parent/child links come from a BFS over the
// chain edges, visiting neighbors in edge-insertion order.
func buildFragTree(netID int, b *leafBuilder, adj [][]int, comp []int, pinLayers map[geom.Point][]int) *stt.Tree {
	local := make(map[int]int, len(comp))
	ft := &stt.Tree{NetID: netID, Nodes: make([]stt.Node, len(comp))}
	for j, ni := range comp {
		local[ni] = j
		pos := b.nodes[ni]
		ft.Nodes[j] = stt.Node{ID: j, Pos: pos, PinLayers: pinLayers[pos], Parent: -1}
	}
	root := 0
	for j := range ft.Nodes {
		if ft.Nodes[j].IsPin() {
			root = j
			break
		}
	}
	ft.Root = root
	visited := make([]bool, len(comp))
	queue := []int{root}
	visited[root] = true
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, nb := range adj[comp[u]] {
			v := local[nb]
			if !visited[v] {
				visited[v] = true
				ft.Nodes[v].Parent = u
				ft.Nodes[u].Children = append(ft.Nodes[u].Children, v)
				queue = append(queue, v)
			}
		}
	}
	return ft
}

// lPathCells lists the cells of the horizontal-first L-path from a to b in
// walk order: the x run at a's row, then the y run at b's column. The turn
// cell appears once.
func lPathCells(a, b geom.Point) []geom.Point {
	cells := make([]geom.Point, 0, geom.ManhattanDist(a, b)+1)
	dx := 1
	if b.X < a.X {
		dx = -1
	}
	for x := a.X; x != b.X; x += dx {
		cells = append(cells, geom.Point{X: x, Y: a.Y})
	}
	cells = append(cells, geom.Point{X: b.X, Y: a.Y})
	dy := 1
	if b.Y < a.Y {
		dy = -1
	}
	for y := a.Y; y != b.Y; y += dy {
		if y != a.Y {
			cells = append(cells, geom.Point{X: b.X, Y: y})
		}
	}
	if b.Y != a.Y {
		cells = append(cells, geom.Point{X: b.X, Y: b.Y})
	}
	return cells
}
