package shard

import (
	"testing"

	"fastgr/internal/design"
	"fastgr/internal/geom"
	"fastgr/internal/stt"
)

// TestSplitTreeInvariants splits trees that deliberately straddle the
// cuts and checks the decomposition invariants: every fragment lies
// wholly inside its leaf, fragments come in ascending leaf order, every
// crossing joins adjacent cells in different leaves, and no pin is lost.
func TestSplitTreeInvariants(t *testing.T) {
	d := testDesign(64, 64)
	p := BuildPlan(d, 4)
	if p.NumLeaves() < 2 {
		t.Fatal("partition degenerate; test exercises nothing")
	}

	nets := []*design.Net{
		{ID: 0, Name: "diag", Pins: []design.Pin{
			{Pos: geom.Point{X: 2, Y: 2}, Layer: 1},
			{Pos: geom.Point{X: 61, Y: 61}, Layer: 2},
		}},
		{ID: 1, Name: "cross", Pins: []design.Pin{
			{Pos: geom.Point{X: 2, Y: 31}, Layer: 1},
			{Pos: geom.Point{X: 61, Y: 31}, Layer: 1},
			{Pos: geom.Point{X: 31, Y: 2}, Layer: 1},
			{Pos: geom.Point{X: 31, Y: 61}, Layer: 1},
		}},
		{ID: 2, Name: "corner", Pins: []design.Pin{
			{Pos: geom.Point{X: 0, Y: 63}, Layer: 1},
			{Pos: geom.Point{X: 63, Y: 0}, Layer: 1},
			{Pos: geom.Point{X: 63, Y: 63}, Layer: 1},
		}},
	}
	for _, n := range nets {
		tree := stt.Build(n)
		if p.LeafOf(tree.BBox()) >= 0 {
			t.Fatalf("net %s does not straddle a cut; pick wider pins", n.Name)
		}
		s := SplitTree(p, tree)
		if s.NetID != n.ID {
			t.Errorf("net %s: split carries net ID %d", n.Name, s.NetID)
		}
		if len(s.Fragments) < 2 || len(s.Crossings) == 0 {
			t.Fatalf("net %s: expected a real decomposition, got %d fragments, %d crossings",
				n.Name, len(s.Fragments), len(s.Crossings))
		}
		prev := -1
		for _, f := range s.Fragments {
			if f.Leaf <= prev {
				t.Errorf("net %s: fragments out of leaf order (%d after %d)", n.Name, f.Leaf, prev)
			}
			prev = f.Leaf
			leafRect := p.Leaf(f.Leaf)
			if len(f.Trees) == 0 {
				t.Errorf("net %s: leaf %d fragment holds no trees", n.Name, f.Leaf)
			}
			for _, ft := range f.Trees {
				if !leafRect.ContainsRect(ft.BBox()) {
					t.Errorf("net %s: fragment tree bbox %v escapes leaf %v", n.Name, ft.BBox(), leafRect)
				}
				for i := range ft.Nodes {
					node := &ft.Nodes[i]
					if node.Parent < 0 && i != ft.Root {
						t.Errorf("net %s: fragment node %d disconnected from root", n.Name, i)
					}
				}
			}
		}
		for _, c := range s.Crossings {
			if geom.ManhattanDist(c.A, c.B) != 1 {
				t.Errorf("net %s: crossing %v-%v is not one grid step", n.Name, c.A, c.B)
			}
			if p.LeafContaining(c.A) == p.LeafContaining(c.B) {
				t.Errorf("net %s: crossing %v-%v stays inside one leaf", n.Name, c.A, c.B)
			}
		}
		// Every pin position of the original tree must survive, with its
		// layers, in exactly the fragment of its own leaf.
		for i := range tree.Nodes {
			node := &tree.Nodes[i]
			if !node.IsPin() {
				continue
			}
			found := false
			for _, f := range s.Fragments {
				if f.Leaf != p.LeafContaining(node.Pos) {
					continue
				}
				for _, ft := range f.Trees {
					for j := range ft.Nodes {
						if ft.Nodes[j].Pos == node.Pos && ft.Nodes[j].IsPin() {
							found = true
						}
					}
				}
			}
			if !found {
				t.Errorf("net %s: pin at %v lost in the split", n.Name, node.Pos)
			}
		}
	}
}

// TestSplitTreeIntraDegenerate covers the degenerate shapes: a net whose
// tree is a single cell still yields one fragment holding its position.
func TestSplitTreeIntraDegenerate(t *testing.T) {
	d := testDesign(64, 64)
	p := BuildPlan(d, 4)
	n := &design.Net{ID: 7, Name: "dot", Pins: []design.Pin{
		{Pos: geom.Point{X: 5, Y: 5}, Layer: 1},
		{Pos: geom.Point{X: 5, Y: 5}, Layer: 2},
	}}
	s := SplitTree(p, stt.Build(n))
	if len(s.Fragments) != 1 || len(s.Crossings) != 0 {
		t.Fatalf("single-cell net: got %d fragments, %d crossings", len(s.Fragments), len(s.Crossings))
	}
	ft := s.Fragments[0].Trees[0]
	if len(ft.Nodes) != 1 || ft.Nodes[0].Pos != (geom.Point{X: 5, Y: 5}) || !ft.Nodes[0].IsPin() {
		t.Fatalf("single-cell fragment malformed: %+v", ft.Nodes)
	}
}
