package stt

import (
	"sort"

	"fastgr/internal/geom"
)

// Exact rectilinear Steiner minimal trees for small nets — the role FLUTE's
// lookup tables play in CUGR ([17]; the published tables are not
// redistributable, but for the 2-4 pin nets that dominate standard-cell
// netlists exact construction is cheap): Hanan's theorem guarantees an RSMT
// using only Hanan-grid points, and a net with k pins needs at most k-2
// Steiner points, so enumerating Hanan subsets of size <= k-2 and taking
// the best spanning tree is exact.

// exactThreshold is the largest distinct-position count routed exactly;
// larger nets fall back to Prim + Steinerization.
const exactThreshold = 4

// exactRSMT returns the points (pins first, chosen Steiner points appended)
// and MST adjacency of an optimal rectilinear Steiner tree. It assumes
// 2 <= len(pins) <= exactThreshold.
func exactRSMT(pins []geom.Point) ([]geom.Point, [][]int) {
	hanan := hananPoints(pins)
	maxSteiner := len(pins) - 2

	bestLen := -1
	var bestPts []geom.Point
	var bestAdj [][]int

	try := func(steiner []geom.Point) {
		pts := append(append([]geom.Point(nil), pins...), steiner...)
		adj := primMST(pts)
		length := 0
		for u := range adj {
			for _, v := range adj[u] {
				if u < v {
					length += geom.ManhattanDist(pts[u], pts[v])
				}
			}
		}
		if bestLen < 0 || length < bestLen {
			bestLen = length
			bestPts, bestAdj = pts, adj
		}
	}

	try(nil)
	if maxSteiner >= 1 {
		for i := range hanan {
			try([]geom.Point{hanan[i]})
		}
	}
	if maxSteiner >= 2 {
		for i := range hanan {
			for j := i + 1; j < len(hanan); j++ {
				try([]geom.Point{hanan[i], hanan[j]})
			}
		}
	}
	return pruneUselessSteiner(bestPts, bestAdj, len(pins))
}

// hananPoints enumerates the Hanan grid of the pins minus the pins
// themselves, in deterministic order.
func hananPoints(pins []geom.Point) []geom.Point {
	xs := map[int]bool{}
	ys := map[int]bool{}
	onPin := map[geom.Point]bool{}
	for _, p := range pins {
		xs[p.X] = true
		ys[p.Y] = true
		onPin[p] = true
	}
	var xv, yv []int
	for x := range xs {
		xv = append(xv, x)
	}
	for y := range ys {
		yv = append(yv, y)
	}
	sort.Ints(xv)
	sort.Ints(yv)
	var out []geom.Point
	for _, x := range xv {
		for _, y := range yv {
			p := geom.Point{X: x, Y: y}
			if !onPin[p] {
				out = append(out, p)
			}
		}
	}
	return out
}

// pruneUselessSteiner removes Steiner points of degree <= 2: a degree-1
// Steiner leaf never survives an optimal tree, and a degree-2 point just
// splits an edge, constraining pattern routing for no benefit (contract it).
func pruneUselessSteiner(pts []geom.Point, adj [][]int, numPins int) ([]geom.Point, [][]int) {
	for {
		victim := -1
		for i := numPins; i < len(pts); i++ {
			if len(adj[i]) <= 2 {
				victim = i
				break
			}
		}
		if victim < 0 {
			return pts, adj
		}
		nbs := append([]int(nil), adj[victim]...)
		for _, nb := range nbs {
			removeEdge(adj, victim, nb)
		}
		if len(nbs) == 2 {
			addEdge(adj, nbs[0], nbs[1])
		}
		// Swap-remove the victim, fixing indices of the moved node.
		last := len(pts) - 1
		if victim != last {
			pts[victim] = pts[last]
			adj[victim] = adj[last]
			for _, nb := range adj[victim] {
				for k, x := range adj[nb] {
					if x == last {
						adj[nb][k] = victim
					}
				}
			}
		}
		pts = pts[:last]
		adj = adj[:last]
	}
}
