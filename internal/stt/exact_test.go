package stt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastgr/internal/design"
	"fastgr/internal/geom"
)

func TestExactThreePinsKnownOptimal(t *testing.T) {
	cases := []struct {
		pins []geom.Point
		want int
	}{
		// Classic star: Steiner point at the median saves 5.
		{[]geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 5, Y: 8}}, 18},
		// Collinear pins: no Steiner point can help.
		{[]geom.Point{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 9, Y: 0}}, 9},
		// L-shaped: median point is a pin, MST is optimal.
		{[]geom.Point{{X: 0, Y: 0}, {X: 6, Y: 0}, {X: 6, Y: 7}}, 13},
	}
	for _, c := range cases {
		net := netOf(c.pins...)
		tr := Build(net)
		if err := tr.Validate(net); err != nil {
			t.Fatal(err)
		}
		if tr.WL() != c.want {
			t.Errorf("pins %v: WL = %d, want %d", c.pins, tr.WL(), c.want)
		}
	}
}

func TestExactFourPinsCross(t *testing.T) {
	// Four corner pins of a rectangle: two Steiner points on one median
	// line give WL = W + 2H (or H + 2W); MST alone is W + 2H as well for a
	// square? Corners of 10x4: optimal = 10 + 2*4 = 18.
	net := netOf(geom.Point{X: 0, Y: 0}, geom.Point{X: 10, Y: 0},
		geom.Point{X: 0, Y: 4}, geom.Point{X: 10, Y: 4})
	tr := Build(net)
	if err := tr.Validate(net); err != nil {
		t.Fatal(err)
	}
	if tr.WL() != 18 {
		t.Fatalf("rectangle corners WL = %d, want 18", tr.WL())
	}
	// A plus-sign pin set: center Steiner point connects all four arms.
	net = netOf(geom.Point{X: 5, Y: 0}, geom.Point{X: 5, Y: 10},
		geom.Point{X: 0, Y: 5}, geom.Point{X: 10, Y: 5})
	tr = Build(net)
	if tr.WL() != 20 {
		t.Fatalf("plus-sign WL = %d, want 20", tr.WL())
	}
}

// TestExactNeverWorseThanHeuristic: the exact builder must never lose to
// Prim+Steinerize on nets it covers.
func TestExactNeverWorseThanHeuristic(t *testing.T) {
	f := func(raw [4]struct{ X, Y uint8 }, n uint8) bool {
		k := 2 + int(n)%3 // 2..4 pins
		seen := map[geom.Point]bool{}
		var pins []geom.Point
		for i := 0; i < 4 && len(pins) < k; i++ {
			p := geom.Point{X: int(raw[i].X) % 40, Y: int(raw[i].Y) % 40}
			if !seen[p] {
				seen[p] = true
				pins = append(pins, p)
			}
		}
		if len(pins) < 2 {
			return true
		}
		pts, adj := exactRSMT(pins)
		exact := 0
		for u := range adj {
			for _, v := range adj[u] {
				if u < v {
					exact += geom.ManhattanDist(pts[u], pts[v])
				}
			}
		}
		// Heuristic on the same pins.
		hAdj := primMST(pins)
		hPts, hAdj := steinerize(append([]geom.Point(nil), pins...), hAdj)
		heur := 0
		for u := range hAdj {
			for _, v := range hAdj[u] {
				if u < v {
					heur += geom.ManhattanDist(hPts[u], hPts[v])
				}
			}
		}
		return exact <= heur && exact >= geom.BoundingBox(pins).HPWL()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExactTreesValidOnGeneratedNets(t *testing.T) {
	d := design.MustGenerate("18test8", 0.002)
	count := 0
	for _, net := range d.Nets {
		if len(net.Points()) > exactThreshold || count > 300 {
			continue
		}
		count++
		tr := Build(net)
		if err := tr.Validate(net); err != nil {
			t.Fatalf("net %s: %v", net.Name, err)
		}
		// No useless Steiner points survive.
		deg := make([]int, len(tr.Nodes))
		for i := range tr.Nodes {
			if p := tr.Nodes[i].Parent; p >= 0 {
				deg[i]++
				deg[p]++
			}
		}
		for i := range tr.Nodes {
			if !tr.Nodes[i].IsPin() && deg[i] <= 2 {
				t.Fatalf("net %s: useless Steiner node of degree %d", net.Name, deg[i])
			}
		}
	}
	if count < 50 {
		t.Fatalf("only %d small nets exercised", count)
	}
}

func TestExactDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		var pins []geom.Point
		seen := map[geom.Point]bool{}
		for len(pins) < 4 {
			p := geom.Point{X: rng.Intn(30), Y: rng.Intn(30)}
			if !seen[p] {
				seen[p] = true
				pins = append(pins, p)
			}
		}
		a := Build(netOf(pins...))
		b := Build(netOf(pins...))
		if a.WL() != b.WL() || len(a.Nodes) != len(b.Nodes) {
			t.Fatalf("exact builder nondeterministic on %v", pins)
		}
		for j := range a.Nodes {
			if a.Nodes[j].Pos != b.Nodes[j].Pos {
				t.Fatalf("node order differs on %v", pins)
			}
		}
	}
}
