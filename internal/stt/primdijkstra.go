package stt

import (
	"math"

	"fastgr/internal/design"
	"fastgr/internal/geom"
)

// Prim-Dijkstra trade-off trees ([16], [18] in the paper): pure Prim
// minimizes wirelength but can make source-to-sink paths long, pure
// Dijkstra minimizes path lengths but wastes wire. The PD blend weights a
// candidate edge (u,v) as
//
//	cost(v) = alpha * pathlen(u) + dist(u, v)
//
// with alpha in [0,1]: alpha=0 is Prim (the default Build), alpha=1 biases
// fully toward shortest paths from the driver. Timing-driven global routing
// flows pick intermediate alphas; BuildPD exposes the knob.

// BuildPD constructs a Steiner tree with the Prim-Dijkstra trade-off rooted
// at the net's first pin (the driver). alpha is clamped to [0,1]; alpha = 0
// is equivalent to Build.
func BuildPD(net *design.Net, alpha float64) *Tree {
	if alpha <= 0 {
		return Build(net)
	}
	if alpha > 1 {
		alpha = 1
	}

	pos := make([]geom.Point, 0, len(net.Pins))
	layers := make(map[geom.Point][]int, len(net.Pins))
	for _, p := range net.Pins {
		if _, ok := layers[p.Pos]; !ok {
			pos = append(pos, p.Pos)
		}
		layers[p.Pos] = append(layers[p.Pos], p.Layer)
	}

	adj := pdTree(pos, alpha)
	pos, adj = steinerize(pos, adj)

	t := &Tree{NetID: net.ID, Nodes: make([]Node, len(pos))}
	for i, p := range pos {
		t.Nodes[i] = Node{ID: i, Pos: p, PinLayers: layers[p], Parent: -1}
	}
	t.rootAt(0, adj)
	return t
}

// pdTree grows the tree from point 0 with the PD edge weight.
func pdTree(pts []geom.Point, alpha float64) [][]int {
	n := len(pts)
	adj := make([][]int, n)
	if n <= 1 {
		return adj
	}
	inTree := make([]bool, n)
	pathLen := make([]float64, n) // driver-to-node rectilinear path length
	bestCost := make([]float64, n)
	from := make([]int, n)
	for i := range bestCost {
		bestCost[i] = math.Inf(1)
	}
	bestCost[0] = 0
	from[0] = -1
	for k := 0; k < n; k++ {
		best := -1
		for i := 0; i < n; i++ {
			if !inTree[i] && (best < 0 || bestCost[i] < bestCost[best]) {
				best = i
			}
		}
		inTree[best] = true
		if p := from[best]; p >= 0 {
			adj[best] = append(adj[best], p)
			adj[p] = append(adj[p], best)
			pathLen[best] = pathLen[p] + float64(geom.ManhattanDist(pts[p], pts[best]))
		}
		for i := 0; i < n; i++ {
			if inTree[i] {
				continue
			}
			c := alpha*pathLen[best] + float64(geom.ManhattanDist(pts[best], pts[i]))
			if c < bestCost[i] {
				bestCost[i] = c
				from[i] = best
			}
		}
	}
	return adj
}

// PathLengths returns, per tree node, the rectilinear tree-path length from
// the root — the metric PD trades wirelength against.
func (t *Tree) PathLengths() []int {
	out := make([]int, len(t.Nodes))
	// Parents always precede children in a DFS from the root.
	stack := []int{t.Root}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range t.Nodes[u].Children {
			out[c] = out[u] + geom.ManhattanDist(t.Nodes[u].Pos, t.Nodes[c].Pos)
			stack = append(stack, c)
		}
	}
	return out
}

// MaxPathLength is the longest driver-to-node path in the tree.
func (t *Tree) MaxPathLength() int {
	mx := 0
	for _, v := range t.PathLengths() {
		if v > mx {
			mx = v
		}
	}
	return mx
}
