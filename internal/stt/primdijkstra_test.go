package stt

import (
	"math/rand"
	"testing"

	"fastgr/internal/design"
	"fastgr/internal/geom"
)

func randomNet(rng *rand.Rand, pins int) *design.Net {
	seen := map[geom.Point]bool{}
	net := &design.Net{ID: 1, Name: "pd"}
	for len(net.Pins) < pins {
		p := geom.Point{X: rng.Intn(100), Y: rng.Intn(100)}
		if !seen[p] {
			seen[p] = true
			net.Pins = append(net.Pins, design.Pin{Pos: p, Layer: 1})
		}
	}
	return net
}

func TestBuildPDAlphaZeroEqualsBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 10; i++ {
		net := randomNet(rng, 6)
		a := Build(net)
		b := BuildPD(net, 0)
		if a.WL() != b.WL() {
			t.Fatalf("alpha=0 PD differs from Build: %d vs %d", a.WL(), b.WL())
		}
	}
}

func TestBuildPDValidTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, alpha := range []float64{0.25, 0.5, 1.0, 2.0 /* clamped */} {
		for i := 0; i < 10; i++ {
			net := randomNet(rng, 3+rng.Intn(8))
			tr := BuildPD(net, alpha)
			if err := tr.Validate(net); err != nil {
				t.Fatalf("alpha=%v: %v", alpha, err)
			}
		}
	}
}

func TestPDTradeoffMonotonicity(t *testing.T) {
	// The defining trade-off: raising alpha never lengthens the worst
	// driver-to-sink path on average, and never shortens total wirelength.
	// Individual nets can violate monotonicity (it is a heuristic), so the
	// check is aggregated over many nets.
	rng := rand.New(rand.NewSource(10))
	var wl0, wl1, path0, path1 int
	for i := 0; i < 60; i++ {
		net := randomNet(rng, 7)
		prim := BuildPD(net, 0)
		dij := BuildPD(net, 1)
		wl0 += prim.WL()
		wl1 += dij.WL()
		path0 += prim.MaxPathLength()
		path1 += dij.MaxPathLength()
	}
	if wl1 < wl0 {
		t.Fatalf("alpha=1 produced less total wirelength (%d) than Prim (%d)", wl1, wl0)
	}
	if path1 > path0 {
		t.Fatalf("alpha=1 produced longer paths (%d) than Prim (%d)", path1, path0)
	}
	if wl1 == wl0 && path1 == path0 {
		t.Fatal("alpha had no effect at all")
	}
}

func TestPathLengths(t *testing.T) {
	// Chain 0-(5,0)-(5,7): path lengths 0, 5, 12 from the root.
	net := netOf(geom.Point{X: 0, Y: 0}, geom.Point{X: 5, Y: 0}, geom.Point{X: 5, Y: 7})
	tr := Build(net)
	pl := tr.PathLengths()
	if pl[tr.Root] != 0 {
		t.Fatal("root path length nonzero")
	}
	if tr.MaxPathLength() != 12 {
		t.Fatalf("MaxPathLength = %d, want 12", tr.MaxPathLength())
	}
	_ = pl
}

func TestBuildPDDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := randomNet(rng, 9)
	a := BuildPD(net, 0.5)
	b := BuildPD(net, 0.5)
	if a.WL() != b.WL() || len(a.Nodes) != len(b.Nodes) {
		t.Fatal("BuildPD nondeterministic")
	}
}
